#include "cache/mshr.hpp"

#include "common/error.hpp"

namespace sttgpu::cache {

MshrFile::MshrFile(unsigned num_entries, unsigned max_merged)
    : num_entries_(num_entries), max_merged_(max_merged) {
  STTGPU_REQUIRE(num_entries > 0, "MshrFile: need at least one entry");
  STTGPU_REQUIRE(max_merged > 0, "MshrFile: need at least one merge slot");
}

bool MshrFile::can_merge(Addr line_addr) const noexcept {
  const auto it = entries_.find(line_addr);
  return it != entries_.end() && it->second.size() < max_merged_;
}

void MshrFile::allocate(Addr line_addr, RequestId first) {
  STTGPU_ASSERT_MSG(!full(), "MSHR allocate on full file");
  STTGPU_ASSERT_MSG(!has_entry(line_addr), "MSHR allocate on existing entry");
  entries_[line_addr] = {first};
}

void MshrFile::merge(Addr line_addr, RequestId req) {
  auto it = entries_.find(line_addr);
  STTGPU_ASSERT_MSG(it != entries_.end(), "MSHR merge without entry");
  STTGPU_ASSERT_MSG(it->second.size() < max_merged_, "MSHR merge beyond capacity");
  it->second.push_back(req);
}

std::vector<RequestId> MshrFile::release(Addr line_addr) {
  auto it = entries_.find(line_addr);
  STTGPU_ASSERT_MSG(it != entries_.end(), "MSHR release without entry");
  std::vector<RequestId> reqs = std::move(it->second);
  entries_.erase(it);
  return reqs;
}

}  // namespace sttgpu::cache
