#include "cache/cache.hpp"

namespace sttgpu::cache {

SetAssocCache::SetAssocCache(const CacheGeometry& geometry, const CachePolicies& policies,
                             std::uint64_t seed)
    : tags_(geometry, policies.replacement, seed),
      policies_(policies),
      write_stats_(geometry.num_sets(), geometry.associativity()) {}

AccessOutcome SetAssocCache::access(Addr addr, AccessKind kind, Cycle now) {
  AccessOutcome out;
  const auto way = tags_.probe(addr);

  if (kind == AccessKind::kLoad) {
    if (way) {
      ++counters_.load_hits;
      tags_.touch(addr, *way);
      out.hit = true;
      return out;
    }
    ++counters_.load_misses;
    out = do_fill(addr, now, /*dirty=*/false);
    out.forward_downstream = true;  // fetch the line
    return out;
  }

  // Store path.
  if (way) {
    ++counters_.store_hits;
    out.hit = true;
    LineMeta& line = tags_.line(geometry().set_index(addr), *way);
    switch (policies_.write_hit) {
      case WriteHitPolicy::kWriteBack:
        tags_.touch(addr, *way);
        line.dirty = true;
        line.write_count += 1;
        line.last_write_cycle = now;
        write_stats_.record_write(geometry().set_index(addr), *way);
        break;
      case WriteHitPolicy::kWriteThrough:
        tags_.touch(addr, *way);
        line.write_count += 1;
        line.last_write_cycle = now;
        write_stats_.record_write(geometry().set_index(addr), *way);
        out.forward_downstream = true;
        break;
      case WriteHitPolicy::kWriteEvict:
        // GPU L1 global-store policy: drop the (now stale) copy, forward.
        tags_.invalidate(addr, *way);
        out.forward_downstream = true;
        break;
    }
    return out;
  }

  ++counters_.store_misses;
  if (policies_.write_miss == WriteMissPolicy::kAllocate) {
    out = do_fill(addr, now, /*dirty=*/true);
    const auto filled = tags_.probe(addr);
    STTGPU_ASSERT(filled.has_value());
    write_stats_.record_write(geometry().set_index(addr), *filled);
    out.forward_downstream = true;  // fetch-on-write
  } else {
    out.forward_downstream = true;  // write-no-allocate: pass through
  }
  return out;
}

AccessOutcome SetAssocCache::do_fill(Addr addr, Cycle now, bool dirty) {
  AccessOutcome out;
  const unsigned victim = tags_.pick_victim(addr);
  const std::uint64_t set = geometry().set_index(addr);
  if (tags_.valid(set, victim)) {
    ++counters_.evictions;
    out.evicted = true;
    out.evicted_addr = tags_.addr_of(set, victim);
    if (tags_.line(set, victim).dirty) {
      ++counters_.writebacks;
      out.writeback = true;
      out.writeback_addr = out.evicted_addr;
    }
  }
  LineMeta& line = tags_.fill(addr, victim, now);
  line.dirty = dirty;
  if (dirty) {
    line.write_count = 1;
    line.last_write_cycle = now;
  }
  return out;
}

AccessOutcome SetAssocCache::fill_line(Addr addr, Cycle now, bool dirty) {
  if (tags_.probe(addr)) return {};  // already resident (racing fill)
  return do_fill(addr, now, dirty);
}

bool SetAssocCache::invalidate_line(Addr addr) {
  const auto way = tags_.probe(addr);
  if (!way) return false;
  const bool dirty = tags_.line(geometry().set_index(addr), *way).dirty;
  tags_.invalidate(addr, *way);
  return dirty;
}

}  // namespace sttgpu::cache
