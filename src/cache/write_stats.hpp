// Write-variation statistics after i2WAP (Wang et al., HPCA'13), which the
// paper uses for its Figure 3 characterization:
//
//   * inter-set variation: coefficient of variation of total write counts
//     across cache sets;
//   * intra-set variation: the average over sets of the COV of write counts
//     across the ways within the set.
//
// Way-level attribution uses the physical way a write landed in, which is
// how i2WAP's lifetime argument is framed (cells wear, not logical blocks).
#pragma once

#include <cstdint>
#include <vector>

namespace sttgpu::cache {

class WriteVariationTracker {
 public:
  WriteVariationTracker(std::uint64_t sets, unsigned ways);

  void record_write(std::uint64_t set, unsigned way) noexcept;

  std::uint64_t total_writes() const noexcept { return total_; }
  std::uint64_t set_writes(std::uint64_t set) const;
  std::uint64_t way_writes(std::uint64_t set, unsigned way) const;

  /// COV of per-set write totals across all sets.
  double inter_set_cov() const;

  /// Mean over sets (with at least one write) of the per-set COV across ways.
  double intra_set_cov() const;

  std::uint64_t sets() const noexcept { return sets_; }
  unsigned ways() const noexcept { return ways_; }

  void reset();

 private:
  std::uint64_t sets_;
  unsigned ways_;
  std::vector<std::uint64_t> counts_;  // sets x ways
  std::uint64_t total_ = 0;
};

}  // namespace sttgpu::cache
