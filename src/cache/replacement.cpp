#include "cache/replacement.hpp"

#include "common/error.hpp"
#include "common/types.hpp"

namespace sttgpu::cache {

// ---------------------------------------------------------------- LRU

LruPolicy::LruPolicy(std::uint64_t sets, unsigned ways)
    : ways_(ways), stamp_(sets * ways, 0) {
  STTGPU_REQUIRE(sets > 0 && ways > 0, "LruPolicy: empty geometry");
}

void LruPolicy::on_access(std::uint64_t set, unsigned way) {
  stamp_[set * ways_ + way] = ++tick_;
}

void LruPolicy::on_insert(std::uint64_t set, unsigned way) { on_access(set, way); }

void LruPolicy::on_invalidate(std::uint64_t set, unsigned way) {
  stamp_[set * ways_ + way] = 0;
}

unsigned LruPolicy::victim(std::uint64_t set, ValidBits valid) {
  STTGPU_ASSERT(valid.ways == ways_);
  const unsigned inv = first_invalid(valid);
  if (inv < ways_) return inv;
  unsigned best = 0;
  std::uint64_t best_stamp = stamp_[set * ways_];
  for (unsigned w = 1; w < ways_; ++w) {
    const std::uint64_t s = stamp_[set * ways_ + w];
    if (s < best_stamp) {
      best_stamp = s;
      best = w;
    }
  }
  return best;
}

// ---------------------------------------------------------------- FIFO

FifoPolicy::FifoPolicy(std::uint64_t sets, unsigned ways)
    : ways_(ways), stamp_(sets * ways, 0) {
  STTGPU_REQUIRE(sets > 0 && ways > 0, "FifoPolicy: empty geometry");
}

void FifoPolicy::on_insert(std::uint64_t set, unsigned way) {
  stamp_[set * ways_ + way] = ++tick_;
}

void FifoPolicy::on_invalidate(std::uint64_t set, unsigned way) {
  stamp_[set * ways_ + way] = 0;
}

unsigned FifoPolicy::victim(std::uint64_t set, ValidBits valid) {
  STTGPU_ASSERT(valid.ways == ways_);
  const unsigned inv = first_invalid(valid);
  if (inv < ways_) return inv;
  unsigned best = 0;
  std::uint64_t best_stamp = stamp_[set * ways_];
  for (unsigned w = 1; w < ways_; ++w) {
    const std::uint64_t s = stamp_[set * ways_ + w];
    if (s < best_stamp) {
      best_stamp = s;
      best = w;
    }
  }
  return best;
}

// ---------------------------------------------------------------- Random

RandomPolicy::RandomPolicy(std::uint64_t sets, unsigned ways, std::uint64_t seed)
    : ways_(ways), rng_(seed) {
  STTGPU_REQUIRE(sets > 0 && ways > 0, "RandomPolicy: empty geometry");
}

unsigned RandomPolicy::victim(std::uint64_t /*set*/, ValidBits valid) {
  STTGPU_ASSERT(valid.ways == ways_);
  const unsigned inv = first_invalid(valid);
  if (inv < ways_) return inv;
  return static_cast<unsigned>(rng_.next_below(ways_));
}

// ---------------------------------------------------------------- Tree PLRU

TreePlruPolicy::TreePlruPolicy(std::uint64_t sets, unsigned ways)
    : ways_(ways), levels_(log2_exact(ways)), bits_(sets * (ways - 1), false) {
  STTGPU_REQUIRE(sets > 0 && ways > 1, "TreePlruPolicy: need at least 2 ways");
  STTGPU_REQUIRE(is_pow2(ways), "TreePlruPolicy: way count must be a power of two");
}

void TreePlruPolicy::touch(std::uint64_t set, unsigned way) {
  // Walk root->leaf; at each node, point the bit *away* from the touched way.
  const std::size_t base = set * (ways_ - 1);
  unsigned node = 0;
  for (unsigned level = 0; level < levels_; ++level) {
    const bool right = (way >> (levels_ - 1 - level)) & 1u;
    bits_[base + node] = !right;  // bit points to the *less* recently used side
    node = 2 * node + 1 + (right ? 1 : 0);
  }
}

void TreePlruPolicy::on_access(std::uint64_t set, unsigned way) { touch(set, way); }
void TreePlruPolicy::on_insert(std::uint64_t set, unsigned way) { touch(set, way); }
void TreePlruPolicy::on_invalidate(std::uint64_t /*set*/, unsigned /*way*/) {}

unsigned TreePlruPolicy::victim(std::uint64_t set, ValidBits valid) {
  STTGPU_ASSERT(valid.ways == ways_);
  const unsigned inv = first_invalid(valid);
  if (inv < ways_) return inv;
  const std::size_t base = set * (ways_ - 1);
  unsigned node = 0;
  unsigned way = 0;
  for (unsigned level = 0; level < levels_; ++level) {
    const bool right = bits_[base + node];
    way = (way << 1) | (right ? 1u : 0u);
    node = 2 * node + 1 + (right ? 1 : 0);
  }
  return way;
}

// ---------------------------------------------------------------- factory

std::unique_ptr<ReplacementPolicy> make_replacement(ReplacementKind kind, std::uint64_t sets,
                                                    unsigned ways, std::uint64_t seed) {
  switch (kind) {
    case ReplacementKind::kLru: return std::make_unique<LruPolicy>(sets, ways);
    case ReplacementKind::kFifo: return std::make_unique<FifoPolicy>(sets, ways);
    case ReplacementKind::kRandom: return std::make_unique<RandomPolicy>(sets, ways, seed);
    case ReplacementKind::kTreePlru: return std::make_unique<TreePlruPolicy>(sets, ways);
  }
  throw SimError("make_replacement: unknown kind");
}

}  // namespace sttgpu::cache
