// Replacement policies for set-associative arrays.
//
// Policies are stateful per (set, way) and are driven by three events:
// access (hit), insert (fill), and invalidate. Victim selection prefers an
// invalid way if the caller says one exists; otherwise the policy picks
// among valid ways.
//
// Victim selection takes a ValidBits view — a borrowed pointer into the
// caller's packed valid bitmap (TagArray keeps one per set as a hot lane) —
// so picking a victim never allocates. Callers without a bitmap to lend
// (tests, benches) build one with WayMask.
#pragma once

#include <bit>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace sttgpu::cache {

/// Non-owning view of one set's valid bits: way w is bit (w % 64) of
/// words[w / 64]. Bits at positions >= ways are ignored (callers may lend a
/// word with stale high bits; every reader masks to `ways`).
struct ValidBits {
  const std::uint64_t* words = nullptr;
  unsigned ways = 0;

  static constexpr unsigned words_for(unsigned ways) noexcept { return (ways + 63u) / 64u; }

  bool test(unsigned way) const noexcept {
    return ((words[way >> 6] >> (way & 63u)) & 1u) != 0;
  }
};

/// Owning packed bitmap convertible to ValidBits, for callers that do not
/// borrow a TagArray lane (tests, benches, ad-hoc victim queries).
class WayMask {
 public:
  explicit WayMask(unsigned ways, bool value = false)
      : ways_(ways), words_(ValidBits::words_for(ways), value ? ~std::uint64_t{0} : 0) {}

  void set(unsigned way, bool v) {
    const std::uint64_t bit = std::uint64_t{1} << (way & 63u);
    if (v) {
      words_[way >> 6] |= bit;
    } else {
      words_[way >> 6] &= ~bit;
    }
  }
  ValidBits bits() const noexcept { return {words_.data(), ways_}; }

 private:
  unsigned ways_;
  std::vector<std::uint64_t> words_;
};

class ReplacementPolicy {
 public:
  virtual ~ReplacementPolicy() = default;

  virtual void on_access(std::uint64_t set, unsigned way) = 0;
  virtual void on_insert(std::uint64_t set, unsigned way) = 0;
  virtual void on_invalidate(std::uint64_t set, unsigned way) = 0;

  /// Chooses a victim way within @p set. @p valid has one bit per way; the
  /// policy must return an invalid way if any exists.
  virtual unsigned victim(std::uint64_t set, ValidBits valid) = 0;

  virtual std::string name() const = 0;

 protected:
  /// Returns the first invalid way, or valid.ways if all are valid.
  static unsigned first_invalid(ValidBits valid) noexcept {
    for (unsigned wi = 0; wi * 64u < valid.ways; ++wi) {
      const std::uint64_t clear = ~valid.words[wi];
      if (clear != 0) {
        const unsigned w = wi * 64u + static_cast<unsigned>(std::countr_zero(clear));
        if (w < valid.ways) return w;
        return valid.ways;  // only out-of-range (stale high) bits were clear
      }
    }
    return valid.ways;
  }
};

/// True LRU via per-way last-use stamps (works for any associativity).
class LruPolicy final : public ReplacementPolicy {
 public:
  LruPolicy(std::uint64_t sets, unsigned ways);
  void on_access(std::uint64_t set, unsigned way) override;
  void on_insert(std::uint64_t set, unsigned way) override;
  void on_invalidate(std::uint64_t set, unsigned way) override;
  unsigned victim(std::uint64_t set, ValidBits valid) override;
  std::string name() const override { return "lru"; }

 private:
  unsigned ways_;
  std::uint64_t tick_ = 0;
  std::vector<std::uint64_t> stamp_;  // sets x ways
};

/// FIFO: victim is the oldest insertion.
class FifoPolicy final : public ReplacementPolicy {
 public:
  FifoPolicy(std::uint64_t sets, unsigned ways);
  void on_access(std::uint64_t set, unsigned way) override {(void)set; (void)way;}
  void on_insert(std::uint64_t set, unsigned way) override;
  void on_invalidate(std::uint64_t set, unsigned way) override;
  unsigned victim(std::uint64_t set, ValidBits valid) override;
  std::string name() const override { return "fifo"; }

 private:
  unsigned ways_;
  std::uint64_t tick_ = 0;
  std::vector<std::uint64_t> stamp_;
};

/// Uniform-random victim among valid ways (deterministic given the seed).
class RandomPolicy final : public ReplacementPolicy {
 public:
  RandomPolicy(std::uint64_t sets, unsigned ways, std::uint64_t seed = 1);
  void on_access(std::uint64_t set, unsigned way) override {(void)set; (void)way;}
  void on_insert(std::uint64_t set, unsigned way) override {(void)set; (void)way;}
  void on_invalidate(std::uint64_t set, unsigned way) override {(void)set; (void)way;}
  unsigned victim(std::uint64_t set, ValidBits valid) override;
  std::string name() const override { return "random"; }

 private:
  unsigned ways_;
  Rng rng_;
};

/// Tree pseudo-LRU; requires a power-of-two way count.
class TreePlruPolicy final : public ReplacementPolicy {
 public:
  TreePlruPolicy(std::uint64_t sets, unsigned ways);
  void on_access(std::uint64_t set, unsigned way) override;
  void on_insert(std::uint64_t set, unsigned way) override;
  void on_invalidate(std::uint64_t set, unsigned way) override;
  unsigned victim(std::uint64_t set, ValidBits valid) override;
  std::string name() const override { return "tree-plru"; }

 private:
  void touch(std::uint64_t set, unsigned way);

  unsigned ways_;
  unsigned levels_;
  std::vector<bool> bits_;  // sets x (ways - 1) tree bits
};

enum class ReplacementKind { kLru, kFifo, kRandom, kTreePlru };

std::unique_ptr<ReplacementPolicy> make_replacement(ReplacementKind kind, std::uint64_t sets,
                                                    unsigned ways, std::uint64_t seed = 1);

}  // namespace sttgpu::cache
