// Replacement policies for set-associative arrays.
//
// Policies are stateful per (set, way) and are driven by three events:
// access (hit), insert (fill), and invalidate. Victim selection prefers an
// invalid way if the caller says one exists; otherwise the policy picks
// among valid ways.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace sttgpu::cache {

class ReplacementPolicy {
 public:
  virtual ~ReplacementPolicy() = default;

  virtual void on_access(std::uint64_t set, unsigned way) = 0;
  virtual void on_insert(std::uint64_t set, unsigned way) = 0;
  virtual void on_invalidate(std::uint64_t set, unsigned way) = 0;

  /// Chooses a victim way within @p set. @p valid has one flag per way; the
  /// policy must return an invalid way if any exists.
  virtual unsigned victim(std::uint64_t set, const std::vector<bool>& valid) = 0;

  virtual std::string name() const = 0;

 protected:
  /// Returns the first invalid way, or ways() if all are valid.
  static unsigned first_invalid(const std::vector<bool>& valid);
};

/// True LRU via per-way last-use stamps (works for any associativity).
class LruPolicy final : public ReplacementPolicy {
 public:
  LruPolicy(std::uint64_t sets, unsigned ways);
  void on_access(std::uint64_t set, unsigned way) override;
  void on_insert(std::uint64_t set, unsigned way) override;
  void on_invalidate(std::uint64_t set, unsigned way) override;
  unsigned victim(std::uint64_t set, const std::vector<bool>& valid) override;
  std::string name() const override { return "lru"; }

 private:
  unsigned ways_;
  std::uint64_t tick_ = 0;
  std::vector<std::uint64_t> stamp_;  // sets x ways
};

/// FIFO: victim is the oldest insertion.
class FifoPolicy final : public ReplacementPolicy {
 public:
  FifoPolicy(std::uint64_t sets, unsigned ways);
  void on_access(std::uint64_t set, unsigned way) override {(void)set; (void)way;}
  void on_insert(std::uint64_t set, unsigned way) override;
  void on_invalidate(std::uint64_t set, unsigned way) override;
  unsigned victim(std::uint64_t set, const std::vector<bool>& valid) override;
  std::string name() const override { return "fifo"; }

 private:
  unsigned ways_;
  std::uint64_t tick_ = 0;
  std::vector<std::uint64_t> stamp_;
};

/// Uniform-random victim among valid ways (deterministic given the seed).
class RandomPolicy final : public ReplacementPolicy {
 public:
  RandomPolicy(std::uint64_t sets, unsigned ways, std::uint64_t seed = 1);
  void on_access(std::uint64_t set, unsigned way) override {(void)set; (void)way;}
  void on_insert(std::uint64_t set, unsigned way) override {(void)set; (void)way;}
  void on_invalidate(std::uint64_t set, unsigned way) override {(void)set; (void)way;}
  unsigned victim(std::uint64_t set, const std::vector<bool>& valid) override;
  std::string name() const override { return "random"; }

 private:
  unsigned ways_;
  Rng rng_;
};

/// Tree pseudo-LRU; requires a power-of-two way count.
class TreePlruPolicy final : public ReplacementPolicy {
 public:
  TreePlruPolicy(std::uint64_t sets, unsigned ways);
  void on_access(std::uint64_t set, unsigned way) override;
  void on_insert(std::uint64_t set, unsigned way) override;
  void on_invalidate(std::uint64_t set, unsigned way) override;
  unsigned victim(std::uint64_t set, const std::vector<bool>& valid) override;
  std::string name() const override { return "tree-plru"; }

 private:
  void touch(std::uint64_t set, unsigned way);

  unsigned ways_;
  unsigned levels_;
  std::vector<bool> bits_;  // sets x (ways - 1) tree bits
};

enum class ReplacementKind { kLru, kFifo, kRandom, kTreePlru };

std::unique_ptr<ReplacementPolicy> make_replacement(ReplacementKind kind, std::uint64_t sets,
                                                    unsigned ways, std::uint64_t seed = 1);

}  // namespace sttgpu::cache
