#include "cache/tag_array.hpp"

#include "common/error.hpp"

namespace sttgpu::cache {

TagArray::TagArray(const CacheGeometry& geometry, ReplacementKind replacement,
                   std::uint64_t seed)
    : geom_(geometry),
      assoc_(geometry.associativity()),
      words_per_set_(ValidBits::words_for(geometry.associativity())),
      tags_(geometry.num_lines(), 0),
      valid_(geometry.num_sets() * ValidBits::words_for(geometry.associativity()), 0),
      meta_(geometry.num_lines()),
      repl_(make_replacement(replacement, geometry.num_sets(), geometry.associativity(),
                             seed)) {}

void TagArray::touch(Addr addr, unsigned way) {
  repl_->on_access(geom_.set_index(addr), way);
}

unsigned TagArray::pick_victim(Addr addr) {
  const std::uint64_t set = geom_.set_index(addr);
  return repl_->victim(set, valid_bits(set));
}

LineMeta& TagArray::fill(Addr addr, unsigned way, Cycle now) {
  const std::uint64_t set = geom_.set_index(addr);
  STTGPU_ASSERT(way < assoc_);
  tags_[set * assoc_ + way] = geom_.tag_of(addr);
  valid_[set * words_per_set_ + (way >> 6)] |= std::uint64_t{1} << (way & 63u);
  LineMeta& line = meta_[set * assoc_ + way];
  line = LineMeta{};
  line.insert_cycle = now;
  repl_->on_insert(set, way);
  return line;
}

void TagArray::invalidate(Addr addr, unsigned way) {
  const std::uint64_t set = geom_.set_index(addr);
  STTGPU_ASSERT(way < assoc_);
  valid_[set * words_per_set_ + (way >> 6)] &= ~(std::uint64_t{1} << (way & 63u));
  repl_->on_invalidate(set, way);
}

LineMeta& TagArray::line(std::uint64_t set, unsigned way) {
  STTGPU_ASSERT(set < geom_.num_sets() && way < assoc_);
  return meta_[set * assoc_ + way];
}

const LineMeta& TagArray::line(std::uint64_t set, unsigned way) const {
  STTGPU_ASSERT(set < geom_.num_sets() && way < assoc_);
  return meta_[set * assoc_ + way];
}

std::vector<bool> TagArray::valid_mask(std::uint64_t set) const {
  std::vector<bool> mask(assoc_);
  for (unsigned w = 0; w < assoc_; ++w) mask[w] = valid(set, w);
  return mask;
}

std::uint64_t TagArray::valid_count() const noexcept {
  std::uint64_t n = 0;
  for (const std::uint64_t word : valid_) n += static_cast<unsigned>(std::popcount(word));
  return n;
}

}  // namespace sttgpu::cache
