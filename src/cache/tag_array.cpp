#include "cache/tag_array.hpp"

#include "common/error.hpp"

namespace sttgpu::cache {

TagArray::TagArray(const CacheGeometry& geometry, ReplacementKind replacement,
                   std::uint64_t seed)
    : geom_(geometry),
      lines_(geometry.num_lines()),
      repl_(make_replacement(replacement, geometry.num_sets(), geometry.associativity(),
                             seed)) {}

std::optional<unsigned> TagArray::probe(Addr addr) const noexcept {
  const std::uint64_t set = geom_.set_index(addr);
  const Addr tag = geom_.tag_of(addr);
  const std::size_t base = set * geom_.associativity();
  for (unsigned w = 0; w < geom_.associativity(); ++w) {
    const LineMeta& line = lines_[base + w];
    if (line.valid && line.tag == tag) return w;
  }
  return std::nullopt;
}

void TagArray::touch(Addr addr, unsigned way) {
  repl_->on_access(geom_.set_index(addr), way);
}

unsigned TagArray::pick_victim(Addr addr) {
  const std::uint64_t set = geom_.set_index(addr);
  return repl_->victim(set, valid_mask(set));
}

LineMeta& TagArray::fill(Addr addr, unsigned way, Cycle now) {
  const std::uint64_t set = geom_.set_index(addr);
  STTGPU_ASSERT(way < geom_.associativity());
  LineMeta& line = lines_[set * geom_.associativity() + way];
  line = LineMeta{};
  line.tag = geom_.tag_of(addr);
  line.valid = true;
  line.insert_cycle = now;
  repl_->on_insert(set, way);
  return line;
}

void TagArray::invalidate(Addr addr, unsigned way) {
  const std::uint64_t set = geom_.set_index(addr);
  STTGPU_ASSERT(way < geom_.associativity());
  lines_[set * geom_.associativity() + way].valid = false;
  repl_->on_invalidate(set, way);
}

LineMeta& TagArray::line(std::uint64_t set, unsigned way) {
  STTGPU_ASSERT(set < geom_.num_sets() && way < geom_.associativity());
  return lines_[set * geom_.associativity() + way];
}

const LineMeta& TagArray::line(std::uint64_t set, unsigned way) const {
  STTGPU_ASSERT(set < geom_.num_sets() && way < geom_.associativity());
  return lines_[set * geom_.associativity() + way];
}

std::vector<bool> TagArray::valid_mask(std::uint64_t set) const {
  std::vector<bool> mask(geom_.associativity());
  const std::size_t base = set * geom_.associativity();
  for (unsigned w = 0; w < geom_.associativity(); ++w) mask[w] = lines_[base + w].valid;
  return mask;
}

std::uint64_t TagArray::valid_count() const noexcept {
  std::uint64_t n = 0;
  for (const auto& line : lines_) n += line.valid ? 1 : 0;
  return n;
}

void TagArray::for_each_valid(
    const std::function<void(std::uint64_t, unsigned, LineMeta&)>& fn) {
  for (std::uint64_t set = 0; set < geom_.num_sets(); ++set) {
    for (unsigned w = 0; w < geom_.associativity(); ++w) {
      LineMeta& line = lines_[set * geom_.associativity() + w];
      if (line.valid) fn(set, w, line);
    }
  }
}

}  // namespace sttgpu::cache
