// Miss Status Holding Registers: merges outstanding misses to the same line
// and bounds the number of in-flight misses per cache.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"

namespace sttgpu::cache {

/// Opaque request handle owned by the caller.
using RequestId = std::uint64_t;

class MshrFile {
 public:
  /// @p num_entries distinct missing lines; @p max_merged requests per line.
  MshrFile(unsigned num_entries, unsigned max_merged);

  /// True if no new line entry can be allocated.
  bool full() const noexcept { return entries_.size() >= num_entries_; }

  /// True if @p line_addr already has an entry (a secondary miss can merge).
  bool has_entry(Addr line_addr) const noexcept { return entries_.count(line_addr) != 0; }

  /// True if @p line_addr has an entry with merge capacity left.
  bool can_merge(Addr line_addr) const noexcept;

  /// Allocates an entry (primary miss). Precondition: !full() && !has_entry().
  void allocate(Addr line_addr, RequestId first);

  /// Merges a secondary miss. Precondition: can_merge(line_addr).
  void merge(Addr line_addr, RequestId req);

  /// Completes the miss: removes the entry and returns all merged requests.
  std::vector<RequestId> release(Addr line_addr);

  std::size_t outstanding_lines() const noexcept { return entries_.size(); }
  unsigned capacity() const noexcept { return num_entries_; }

 private:
  unsigned num_entries_;
  unsigned max_merged_;
  std::unordered_map<Addr, std::vector<RequestId>> entries_;
};

}  // namespace sttgpu::cache
