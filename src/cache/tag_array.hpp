// Tag array: storage + lookup for a set-associative structure, decoupled
// from any particular timing or write policy so both the conventional
// caches (L1s, SRAM L2) and the two-part STT-RAM L2 can build on it.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "cache/geometry.hpp"
#include "cache/replacement.hpp"
#include "common/types.hpp"

namespace sttgpu::cache {

/// Per-line metadata. The simulator tracks metadata only; data payloads are
/// not simulated (the paper's questions are about timing/energy, not values).
struct LineMeta {
  Addr tag = 0;               ///< full line number (exact, no aliasing)
  bool valid = false;
  bool dirty = false;
  std::uint32_t write_count = 0;   ///< writes since insertion (WWS monitor input)
  Cycle insert_cycle = 0;
  Cycle last_write_cycle = kNoCycle;   ///< kNoCycle until first write
  Cycle retention_deadline = kNoCycle; ///< cycle at which data expires (STT parts)
  Cycle fault_check_cycle = kNoCycle;  ///< last fault evaluation (fault injection only)
};

class TagArray {
 public:
  TagArray(const CacheGeometry& geometry, ReplacementKind replacement,
           std::uint64_t seed = 1);

  const CacheGeometry& geometry() const noexcept { return geom_; }

  /// Finds the way holding @p addr's line, if resident. Does not touch
  /// replacement state (use touch() on a decided hit).
  std::optional<unsigned> probe(Addr addr) const noexcept;

  /// Marks (set, way) most-recently-used.
  void touch(Addr addr, unsigned way);

  /// Picks the victim way for @p addr's set (an invalid way if any).
  unsigned pick_victim(Addr addr);

  /// Installs @p addr's line into (its set, @p way), overwriting whatever is
  /// there. Caller is responsible for having handled the previous occupant.
  LineMeta& fill(Addr addr, unsigned way, Cycle now);

  /// Invalidates (set-of-addr, way).
  void invalidate(Addr addr, unsigned way);

  LineMeta& line(std::uint64_t set, unsigned way);
  const LineMeta& line(std::uint64_t set, unsigned way) const;

  /// Valid-bit vector for @p set (for victim selection and tests).
  std::vector<bool> valid_mask(std::uint64_t set) const;

  /// Number of valid lines across the whole array.
  std::uint64_t valid_count() const noexcept;

  /// Applies @p fn to every valid line (used by refresh/expiry scans).
  void for_each_valid(const std::function<void(std::uint64_t set, unsigned way, LineMeta&)>& fn);

 private:
  CacheGeometry geom_;
  std::vector<LineMeta> lines_;  // sets x ways
  std::unique_ptr<ReplacementPolicy> repl_;
};

}  // namespace sttgpu::cache
