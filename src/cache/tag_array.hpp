// Tag array: storage + lookup for a set-associative structure, decoupled
// from any particular timing or write policy so both the conventional
// caches (L1s, SRAM L2) and the two-part STT-RAM L2 can build on it.
//
// Storage is struct-of-arrays: the fields every probe and victim selection
// reads — tags and packed per-set valid bitmaps — live in dense hot lanes,
// while the per-line bookkeeping touched only on decided hits and
// evictions (dirty bit, write counts, retention/fault deadlines) sits in a
// parallel cold LineMeta array. A probe walks one 64-bit valid word and a
// few adjacent tags instead of dragging full metadata structs through the
// cache, and victim selection lends the valid word straight to the
// replacement policy without materialising a mask.
#pragma once

#include <bit>
#include <cstdint>
#include <optional>
#include <vector>

#include "cache/geometry.hpp"
#include "cache/replacement.hpp"
#include "common/simd.hpp"
#include "common/types.hpp"

namespace sttgpu::cache {

/// Per-line cold metadata. The line's identity (tag + valid bit) lives in
/// the TagArray hot lanes; everything here is read only after a probe or
/// victim selection has already decided which line is being operated on.
/// The simulator tracks metadata only; data payloads are not simulated
/// (the paper's questions are about timing/energy, not values).
struct LineMeta {
  bool dirty = false;
  std::uint32_t write_count = 0;   ///< writes since insertion (WWS monitor input)
  Cycle insert_cycle = 0;
  Cycle last_write_cycle = kNoCycle;   ///< kNoCycle until first write
  Cycle retention_deadline = kNoCycle; ///< cycle at which data expires (STT parts)
  Cycle fault_check_cycle = kNoCycle;  ///< last fault evaluation (fault injection only)
};

class TagArray {
 public:
  TagArray(const CacheGeometry& geometry, ReplacementKind replacement,
           std::uint64_t seed = 1);

  const CacheGeometry& geometry() const noexcept { return geom_; }

  /// Finds the way holding @p addr's line, if resident. Does not touch
  /// replacement state (use touch() on a decided hit). The tag lane is
  /// compared word-parallel (SIMD where available, scalar otherwise — same
  /// result either way) and masked with the packed valid bits, so a probe
  /// is straight-line compares instead of a branchy per-way walk.
  std::optional<unsigned> probe(Addr addr) const noexcept {
    const std::uint64_t set = geom_.set_index(addr);
    const Addr tag = geom_.tag_of(addr);
    const Addr* tags = tags_.data() + set * assoc_;
    const std::uint64_t* words = valid_.data() + set * words_per_set_;
    for (unsigned wi = 0; wi < words_per_set_; ++wi) {
      const unsigned lanes = assoc_ - wi * 64u < 64u ? assoc_ - wi * 64u : 64u;
      const std::uint64_t m =
          simd::match_u64(tags + wi * 64u, lanes, tag) & words[wi];
      if (m != 0) return wi * 64u + static_cast<unsigned>(std::countr_zero(m));
    }
    return std::nullopt;
  }

  /// Marks (set, way) most-recently-used.
  void touch(Addr addr, unsigned way);

  /// Picks the victim way for @p addr's set (an invalid way if any).
  /// Allocation-free: the set's packed valid word is lent to the policy.
  unsigned pick_victim(Addr addr);

  /// Installs @p addr's line into (its set, @p way), overwriting whatever is
  /// there. Caller is responsible for having handled the previous occupant.
  LineMeta& fill(Addr addr, unsigned way, Cycle now);

  /// Invalidates (set-of-addr, way).
  void invalidate(Addr addr, unsigned way);

  LineMeta& line(std::uint64_t set, unsigned way);
  const LineMeta& line(std::uint64_t set, unsigned way) const;

  /// Hot-lane accessors for a line's identity.
  Addr tag(std::uint64_t set, unsigned way) const noexcept {
    return tags_[set * assoc_ + way];
  }
  bool valid(std::uint64_t set, unsigned way) const noexcept {
    return ((valid_[set * words_per_set_ + (way >> 6)] >> (way & 63u)) & 1u) != 0;
  }
  /// Representative byte address of the line resident at (set, way).
  Addr addr_of(std::uint64_t set, unsigned way) const noexcept {
    return geom_.addr_of_tag(tag(set, way));
  }

  /// Borrowed view of @p set's packed valid bits.
  ValidBits valid_bits(std::uint64_t set) const noexcept {
    return {valid_.data() + set * words_per_set_, assoc_};
  }

  /// Valid-bit vector for @p set (tests/diagnostics; hot paths use
  /// valid_bits()).
  std::vector<bool> valid_mask(std::uint64_t set) const;

  /// Number of valid lines across the whole array.
  std::uint64_t valid_count() const noexcept;

  /// Applies fn(set, way, LineMeta&) to every valid line (refresh/expiry
  /// scans). Statically dispatched; fn needing the line's identity reads it
  /// via tag()/addr_of(). fn must not invalidate lines it has not been
  /// handed yet (the packed words are snapshotted one at a time).
  template <typename Fn>
  void for_each_valid(Fn&& fn) {
    for (std::uint64_t set = 0; set < geom_.num_sets(); ++set) {
      for (unsigned wi = 0; wi < words_per_set_; ++wi) {
        std::uint64_t m = valid_[set * words_per_set_ + wi];
        while (m != 0) {
          const unsigned w = wi * 64u + static_cast<unsigned>(std::countr_zero(m));
          fn(set, w, meta_[set * assoc_ + w]);
          m &= m - 1;
        }
      }
    }
  }

 private:
  CacheGeometry geom_;
  unsigned assoc_;
  unsigned words_per_set_;
  std::vector<Addr> tags_;            // hot: sets x ways
  std::vector<std::uint64_t> valid_;  // hot: sets x words_per_set_ packed bits
  std::vector<LineMeta> meta_;        // cold: sets x ways
  std::unique_ptr<ReplacementPolicy> repl_;
};

}  // namespace sttgpu::cache
