#include "cache/geometry.hpp"

#include "common/error.hpp"

namespace sttgpu::cache {

CacheGeometry::CacheGeometry(std::uint64_t size_bytes, unsigned associativity,
                             unsigned line_bytes)
    : size_bytes_(size_bytes), assoc_(associativity), line_bytes_(line_bytes) {
  STTGPU_REQUIRE(size_bytes_ > 0, "CacheGeometry: size must be positive");
  STTGPU_REQUIRE(assoc_ > 0, "CacheGeometry: associativity must be positive");
  STTGPU_REQUIRE(line_bytes_ > 0 && is_pow2(line_bytes_),
                 "CacheGeometry: line size must be a power of two");
  STTGPU_REQUIRE(size_bytes_ % line_bytes_ == 0,
                 "CacheGeometry: size must be a multiple of line size");
  const std::uint64_t lines = size_bytes_ / line_bytes_;
  STTGPU_REQUIRE(lines % assoc_ == 0,
                 "CacheGeometry: line count must be a multiple of associativity");
  STTGPU_REQUIRE(assoc_ <= lines, "CacheGeometry: associativity exceeds line count");
  sets_ = lines / assoc_;
  offset_bits_ = log2_exact(line_bytes_);
  pow2_sets_ = is_pow2(sets_);
}

}  // namespace sttgpu::cache
