// Cache geometry: size / associativity / line size with the derived
// index/tag address arithmetic used by every array in the hierarchy.
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace sttgpu::cache {

class CacheGeometry {
 public:
  /// Throws SimError on inconsistent parameters (non-power-of-two line,
  /// capacity not divisible into whole sets, ...).
  CacheGeometry(std::uint64_t size_bytes, unsigned associativity, unsigned line_bytes);

  std::uint64_t size_bytes() const noexcept { return size_bytes_; }
  unsigned associativity() const noexcept { return assoc_; }
  unsigned line_bytes() const noexcept { return line_bytes_; }
  std::uint64_t num_sets() const noexcept { return sets_; }
  std::uint64_t num_lines() const noexcept { return sets_ * assoc_; }
  bool fully_associative() const noexcept { return sets_ == 1; }

  /// Line-aligned base address of @p addr.
  Addr line_base(Addr addr) const noexcept { return align_down(addr, line_bytes_); }

  /// Set index for @p addr. For a non-power-of-two set count (e.g. a 7-way
  /// array carved out of a power-of-two capacity) a modulo mapping is used.
  std::uint64_t set_index(Addr addr) const noexcept {
    const Addr line = addr >> offset_bits_;
    return pow2_sets_ ? (line & (sets_ - 1)) : (line % sets_);
  }

  /// Tag for @p addr: everything above the offset bits except the index is
  /// folded into a single integer key. Keeping the full line number as the
  /// tag is exact and avoids aliasing in the model.
  Addr tag_of(Addr addr) const noexcept { return addr >> offset_bits_; }

  /// Reconstructs a representative byte address from a tag (line number).
  Addr addr_of_tag(Addr tag) const noexcept { return tag << offset_bits_; }

  unsigned offset_bits() const noexcept { return offset_bits_; }

 private:
  std::uint64_t size_bytes_;
  unsigned assoc_;
  unsigned line_bytes_;
  std::uint64_t sets_;
  unsigned offset_bits_;
  bool pow2_sets_;
};

}  // namespace sttgpu::cache
