#include "cache/write_stats.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/stats.hpp"

namespace sttgpu::cache {

WriteVariationTracker::WriteVariationTracker(std::uint64_t sets, unsigned ways)
    : sets_(sets), ways_(ways), counts_(sets * ways, 0) {
  STTGPU_REQUIRE(sets > 0 && ways > 0, "WriteVariationTracker: empty geometry");
}

void WriteVariationTracker::record_write(std::uint64_t set, unsigned way) noexcept {
  counts_[set * ways_ + way] += 1;
  ++total_;
}

std::uint64_t WriteVariationTracker::set_writes(std::uint64_t set) const {
  STTGPU_ASSERT(set < sets_);
  std::uint64_t sum = 0;
  for (unsigned w = 0; w < ways_; ++w) sum += counts_[set * ways_ + w];
  return sum;
}

std::uint64_t WriteVariationTracker::way_writes(std::uint64_t set, unsigned way) const {
  STTGPU_ASSERT(set < sets_ && way < ways_);
  return counts_[set * ways_ + way];
}

double WriteVariationTracker::inter_set_cov() const {
  std::vector<std::uint64_t> per_set(sets_);
  for (std::uint64_t s = 0; s < sets_; ++s) per_set[s] = set_writes(s);
  return coefficient_of_variation(per_set);
}

double WriteVariationTracker::intra_set_cov() const {
  StreamStats covs;
  std::vector<std::uint64_t> per_way(ways_);
  for (std::uint64_t s = 0; s < sets_; ++s) {
    bool any = false;
    for (unsigned w = 0; w < ways_; ++w) {
      per_way[w] = counts_[s * ways_ + w];
      any = any || per_way[w] != 0;
    }
    if (!any) continue;  // untouched sets carry no intra-set signal
    covs.add(coefficient_of_variation(per_way));
  }
  return covs.count() ? covs.mean() : 0.0;
}

void WriteVariationTracker::reset() {
  std::fill(counts_.begin(), counts_.end(), 0);
  total_ = 0;
}

}  // namespace sttgpu::cache
