// A functional set-associative cache with configurable write policies.
//
// This class models hit/miss/eviction *behaviour* (no timing): the timing
// wrappers in src/gpu attach latencies and queues around it. The write
// policies cover the GPU hierarchy of the paper's Figure 1b:
//
//   * global-data stores at L1: write-evict on hit, write-no-allocate on
//     miss (both forward the store to L2);
//   * local-data stores at L1: write-back, write-allocate;
//   * the SRAM L2: write-back, write-allocate.
#pragma once

#include <cstdint>

#include "cache/geometry.hpp"
#include "cache/tag_array.hpp"
#include "cache/write_stats.hpp"
#include "common/types.hpp"

namespace sttgpu::cache {

enum class AccessKind : std::uint8_t { kLoad, kStore };

/// What a store does on a hit.
enum class WriteHitPolicy : std::uint8_t {
  kWriteBack,     ///< mark dirty, absorb the write
  kWriteThrough,  ///< keep line clean, forward the write downstream
  kWriteEvict,    ///< invalidate the line, forward the write downstream
};

/// Whether a store miss allocates the line.
enum class WriteMissPolicy : std::uint8_t { kAllocate, kNoAllocate };

struct CachePolicies {
  WriteHitPolicy write_hit = WriteHitPolicy::kWriteBack;
  WriteMissPolicy write_miss = WriteMissPolicy::kAllocate;
  ReplacementKind replacement = ReplacementKind::kLru;
};

/// Result of one access against the functional cache.
struct AccessOutcome {
  bool hit = false;
  /// The access must be forwarded downstream (fill fetch or written-through /
  /// evicted / non-allocated store).
  bool forward_downstream = false;
  /// A dirty victim must be written back downstream.
  bool writeback = false;
  Addr writeback_addr = 0;
  /// A (possibly clean) victim was displaced by a fill.
  bool evicted = false;
  Addr evicted_addr = 0;
};

struct CacheCounters {
  std::uint64_t load_hits = 0;
  std::uint64_t load_misses = 0;
  std::uint64_t store_hits = 0;
  std::uint64_t store_misses = 0;
  std::uint64_t writebacks = 0;
  std::uint64_t evictions = 0;

  std::uint64_t accesses() const noexcept {
    return load_hits + load_misses + store_hits + store_misses;
  }
  double miss_rate() const noexcept {
    const auto a = accesses();
    return a ? static_cast<double>(load_misses + store_misses) / static_cast<double>(a) : 0.0;
  }
};

class SetAssocCache {
 public:
  SetAssocCache(const CacheGeometry& geometry, const CachePolicies& policies,
                std::uint64_t seed = 1);

  /// Performs one access at time @p now and returns what must happen
  /// downstream. Loads always allocate on miss.
  AccessOutcome access(Addr addr, AccessKind kind, Cycle now);

  /// Invalidates @p addr's line if resident; returns true if it was dirty
  /// (the caller owns the resulting writeback).
  bool invalidate_line(Addr addr);

  /// Direct fill used when a miss response returns in the timing model and
  /// the line was not pre-allocated. Returns eviction info like access().
  AccessOutcome fill_line(Addr addr, Cycle now, bool dirty);

  bool contains(Addr addr) const noexcept { return tags_.probe(addr).has_value(); }

  const CacheGeometry& geometry() const noexcept { return tags_.geometry(); }
  const CacheCounters& counters() const noexcept { return counters_; }
  const WriteVariationTracker& write_stats() const noexcept { return write_stats_; }
  TagArray& tags() noexcept { return tags_; }
  const TagArray& tags() const noexcept { return tags_; }

 private:
  AccessOutcome do_fill(Addr addr, Cycle now, bool dirty);

  TagArray tags_;
  CachePolicies policies_;
  CacheCounters counters_;
  WriteVariationTracker write_stats_;
};

}  // namespace sttgpu::cache
