// Client side of the sweep-service protocol: connect, one framed
// request/response exchange, and the watch event stream. Used by the
// `sttgpu submit|status|watch|cancel|result` verbs and the server tests.
#pragma once

#include <functional>
#include <string>
#include <string_view>

#include "common/json.hpp"

namespace sttgpu::serve {

class Client {
 public:
  /// Connects to a server: @p tcp_port > 0 dials 127.0.0.1:<port>,
  /// otherwise the unix socket at @p socket_path. Throws SimError when
  /// nothing is listening (the CLI tells the user to start `sttgpu serve`).
  static Client connect(const std::string& socket_path, int tcp_port = 0);

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  ~Client();

  /// One exchange: frames @p request_json, reads the response frame, parses
  /// it, and runs check_response (throws ProtocolMismatch / SimError on an
  /// error envelope). Returns the parsed response.
  JsonValue request(std::string_view request_json);

  /// The watch exchange: frames the request, checks the framed
  /// acknowledgement, then parses each newline-delimited event line into
  /// @p on_event until the terminal "complete" event (returned) or EOF.
  /// @p on_event receives both the raw line (so `sttgpu watch` can relay
  /// the NDJSON stream byte-for-byte) and the parsed event.
  JsonValue stream(std::string_view request_json,
                   const std::function<void(const std::string& line,
                                            const JsonValue& event)>& on_event);

 private:
  explicit Client(int fd) : fd_(fd) {}
  int fd_ = -1;
};

}  // namespace sttgpu::serve
