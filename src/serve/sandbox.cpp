#include "serve/sandbox.hpp"

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <sstream>
#include <thread>
#include <vector>

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/prctl.h>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include "common/error.hpp"
#include "common/json.hpp"
#include "sim/supervisor.hpp"
#include "store/record.hpp"

namespace sttgpu::serve {

namespace {

std::int64_t now_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Collapses a multi-line error message into one pipe line.
std::string one_line(std::string s) {
  for (char& c : s) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  return s;
}

// --- child side ------------------------------------------------------------

/// Serializes pipe lines from the simulation thread and the heartbeat
/// forwarder. One write(2) per line: lines stay well under PIPE_BUF, so the
/// mutex is belt on top of the kernel's own atomicity braces.
struct LineWriter {
  int fd;
  std::mutex mu;

  void line(std::string s) {
    s.push_back('\n');
    std::lock_guard<std::mutex> lk(mu);
    const char* p = s.data();
    std::size_t n = s.size();
    while (n > 0) {
      const ssize_t k = ::write(fd, p, n);
      if (k < 0) {
        if (errno == EINTR) continue;
        return;  // parent is gone; PDEATHSIG will reap us shortly
      }
      p += k;
      n -= static_cast<std::size_t>(k);
    }
  }
};

/// STTGPU_SANDBOX_FAULT="<arch>/<bench>=<abort|oom|hang>[@attempt],..." —
/// returns the fault mode matching this (job, attempt), or "".
std::string fault_mode(const std::string& arch, const std::string& bench,
                       unsigned attempt) {
  const char* env = std::getenv("STTGPU_SANDBOX_FAULT");
  if (env == nullptr || *env == '\0') return "";
  const std::string want = arch + "/" + bench + "=";
  std::istringstream is(env);
  std::string entry;
  while (std::getline(is, entry, ',')) {
    if (entry.compare(0, want.size(), want) != 0) continue;
    std::string mode = entry.substr(want.size());
    const std::size_t at = mode.find('@');
    if (at != std::string::npos) {
      const unsigned only = static_cast<unsigned>(std::atoi(mode.c_str() + at + 1));
      if (only != attempt) continue;
      mode.resize(at);
    }
    return mode;
  }
  return "";
}

[[noreturn]] void apply_fault(const std::string& mode) {
  if (mode == "abort") std::abort();
  if (mode == "hang") {
    for (;;) std::this_thread::sleep_for(std::chrono::seconds(1));
  }
  // "oom": allocate until the RLIMIT_AS installed above makes operator new
  // throw (tests always pair this mode with a mem_limit).
  std::vector<std::unique_ptr<char[]>> hog;
  for (;;) hog.push_back(std::make_unique<char[]>(16u << 20));
}

[[noreturn]] void run_child(const SandboxJob& job, const SandboxOptions& opts,
                            unsigned attempt, int wfd) {
  // Die with the daemon: an orphaned child must never outlive a SIGKILLed
  // parent holding the store lock or a listener backlog open.
  ::prctl(PR_SET_PDEATHSIG, SIGKILL);
  if (::getppid() == 1) ::_exit(1);  // parent already gone before prctl
  if (opts.in_child) opts.in_child();
  if (opts.mem_limit_bytes > 0) {
    rlimit rl{};
    rl.rlim_cur = opts.mem_limit_bytes;
    rl.rlim_max = opts.mem_limit_bytes;
    ::setrlimit(RLIMIT_AS, &rl);
  }

  LineWriter out{wfd, {}};
  std::atomic<std::uint64_t> hb{0};
  std::atomic<bool> done{false};
  // Forward heartbeat progress; the parent's watchdog only cares about
  // *changes*, so unchanged values are not re-sent.
  std::thread beat([&] {
    std::uint64_t last = ~0ull;
    while (!done.load(std::memory_order_relaxed)) {
      const std::uint64_t v = hb.load(std::memory_order_relaxed);
      if (v != last) {
        last = v;
        out.line("beat " + std::to_string(v));
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  });

  int code = 0;
  try {
    const std::string mode = fault_mode(job.arch, job.bench, attempt);
    if (!mode.empty()) apply_fault(mode);
    sim::RunOptions ro = job.base;
    ro.heartbeat = &hb;
    std::unique_ptr<Telemetry> tel;
    if (job.want_telemetry) {
      tel = std::make_unique<Telemetry>(job.interval);
      tel->set_on_frame([&](const Telemetry& T, std::size_t frame) {
        out.line("tel " + telemetry_event_json(job.arch, job.bench, T, frame));
      });
      ro.telemetry = tel.get();
    }
    const sim::Metrics m = sim::run_one(job.arch_id, job.bench, ro);
    out.line("row " + store::encode_put(job.fp, job.scale17, sim::to_store_row(m)));
  } catch (const std::bad_alloc&) {
    out.line("err address-space limit reached (mem_limit)");
    code = 3;
  } catch (const std::exception& e) {
    out.line("err " + one_line(e.what()));
    code = 2;
  }
  done.store(true, std::memory_order_relaxed);
  beat.join();
  // _exit: never run the daemon's static destructors (store, listeners)
  // from inside a forked copy.
  ::_exit(code);
}

// --- parent side -----------------------------------------------------------

struct AttemptOutcome {
  SandboxStatus status = SandboxStatus::kFailed;
  std::string error;
  std::string row_line;
  bool killed = false;
};

AttemptOutcome run_attempt(const SandboxJob& job, const SandboxOptions& opts,
                           unsigned attempt,
                           const std::function<void(const std::string&)>& on_event) {
  int p[2];
  if (::pipe2(p, O_CLOEXEC) != 0) {
    return {SandboxStatus::kFailed,
            std::string("sandbox pipe failed: ") + std::strerror(errno), "", false};
  }
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(p[0]);
    ::close(p[1]);
    return {SandboxStatus::kFailed,
            std::string("sandbox fork failed: ") + std::strerror(errno), "", false};
  }
  if (pid == 0) {
    ::close(p[0]);
    run_child(job, opts, attempt, p[1]);  // never returns
  }
  ::close(p[1]);

  AttemptOutcome out;
  std::string buf;
  std::uint64_t last_beat = ~0ull;
  const std::int64_t start = now_ms();
  std::int64_t last_progress = start;
  bool eof = false;
  while (!eof && !out.killed) {
    pollfd pfd{p[0], POLLIN, 0};
    const int rc = ::poll(&pfd, 1, /*ms=*/50);
    if (rc > 0) {
      char chunk[4096];
      const ssize_t k = ::read(p[0], chunk, sizeof chunk);
      if (k > 0) {
        buf.append(chunk, static_cast<std::size_t>(k));
        std::size_t nl;
        while ((nl = buf.find('\n')) != std::string::npos) {
          const std::string line = buf.substr(0, nl);
          buf.erase(0, nl + 1);
          if (line.rfind("beat ", 0) == 0) {
            const std::uint64_t v = std::strtoull(line.c_str() + 5, nullptr, 10);
            if (v != last_beat) {
              last_beat = v;
              last_progress = now_ms();
            }
          } else if (line.rfind("tel ", 0) == 0) {
            if (on_event) on_event(line.substr(4));
          } else if (line.rfind("row ", 0) == 0) {
            out.row_line = line.substr(4);
            last_progress = now_ms();
          } else if (line.rfind("err ", 0) == 0) {
            out.error = line.substr(4);
            last_progress = now_ms();
          }
        }
      } else if (k == 0 || (k < 0 && errno != EINTR)) {
        eof = true;
      }
    }
    const std::int64_t now = now_ms();
    if (!eof && opts.cancel != nullptr && opts.cancel->requested()) {
      out.status = SandboxStatus::kCancelled;
      out.error = "cancelled";
      out.killed = true;
    } else if (!eof && opts.watchdog_s > 0 &&
               now - last_progress > static_cast<std::int64_t>(opts.watchdog_s * 1000.0)) {
      out.status = SandboxStatus::kWatchdog;
      out.error = "no heartbeat progress for " + std::to_string(opts.watchdog_s) +
                  "s — child killed";
      out.killed = true;
    } else if (!eof && opts.job_timeout_s > 0 &&
               now - start > static_cast<std::int64_t>(opts.job_timeout_s * 1000.0)) {
      out.status = SandboxStatus::kTimeout;
      out.error = "attempt exceeded " + std::to_string(opts.job_timeout_s) +
                  "s — child killed";
      out.killed = true;
    }
  }
  if (out.killed) ::kill(pid, SIGKILL);
  ::close(p[0]);
  int st = 0;
  while (::waitpid(pid, &st, 0) < 0 && errno == EINTR) {
  }
  if (out.killed) return out;

  if (WIFSIGNALED(st)) {
    const int sig = WTERMSIG(st);
    const char* name = ::strsignal(sig);
    out.status = SandboxStatus::kCrashed;
    out.error = "child killed by signal " + std::to_string(sig) +
                (name != nullptr ? std::string(" (") + name + ")" : "");
    return out;
  }
  const int code = WIFEXITED(st) ? WEXITSTATUS(st) : -1;
  if (code == 0 && !out.row_line.empty()) {
    out.status = SandboxStatus::kOk;
    out.error.clear();
    return out;
  }
  if (code == 3) {
    out.status = SandboxStatus::kOom;
    if (out.error.empty()) out.error = "address-space limit reached (mem_limit)";
    return out;
  }
  out.status = SandboxStatus::kFailed;
  if (out.error.empty()) {
    out.error = code == 0 ? "child exited without a result row"
                          : "child exited with status " + std::to_string(code);
  }
  return out;
}

}  // namespace

const char* sandbox_status_name(SandboxStatus s) noexcept {
  switch (s) {
    case SandboxStatus::kOk: return "ok";
    case SandboxStatus::kFailed: return "failed";
    case SandboxStatus::kCrashed: return "crashed";
    case SandboxStatus::kOom: return "oom";
    case SandboxStatus::kWatchdog: return "watchdog";
    case SandboxStatus::kTimeout: return "timeout";
    case SandboxStatus::kCancelled: return "cancelled";
  }
  return "unknown";
}

SandboxResult run_sandboxed(const SandboxJob& job, const SandboxOptions& opts,
                            const std::function<void(const std::string&)>& on_event) {
  SandboxResult res;
  const std::string label = job.arch + "/" + job.bench;
  for (unsigned attempt = 0;; ++attempt) {
    if (opts.cancel != nullptr && opts.cancel->requested()) {
      res.status = SandboxStatus::kCancelled;
      res.error = "cancelled before start";
      return res;
    }
    const AttemptOutcome a = run_attempt(job, opts, attempt + 1, on_event);
    res.attempts = attempt + 1;
    res.status = a.status;
    res.error = a.error;
    res.row_line = a.row_line;
    if (a.killed) ++res.kills;
    if (a.status == SandboxStatus::kCrashed || a.status == SandboxStatus::kOom) {
      ++res.crashes;
    }
    switch (a.status) {
      case SandboxStatus::kOk:
      case SandboxStatus::kCancelled:
      case SandboxStatus::kWatchdog:  // a livelocked run would livelock again
      case SandboxStatus::kTimeout:
        return res;
      default:
        break;
    }
    if (attempt >= opts.retries) return res;
    // Same deterministic pacing as the thread supervisor's retries.
    const std::int64_t deadline =
        now_ms() + static_cast<std::int64_t>(
                       sim::retry_backoff_seconds(opts.retry_backoff_s, label, attempt) *
                       1000.0);
    while (now_ms() < deadline) {
      if (opts.cancel != nullptr && opts.cancel->requested()) {
        res.status = SandboxStatus::kCancelled;
        res.error = "cancelled during retry backoff";
        return res;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
}

std::string telemetry_event_json(const std::string& arch, const std::string& bench,
                                 const Telemetry& tel, std::size_t frame) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.key("event").value("telemetry");
  w.key("arch").value(arch);
  w.key("benchmark").value(bench);
  w.key("cycle").value(static_cast<std::uint64_t>(tel.frame_cycle(frame)));
  w.key("counters").begin_object();
  for (std::size_t k = 0; k < tel.track_count(); ++k) {
    if (!tel.track_is_counter(k)) continue;
    const auto& s = tel.track_samples(k);
    const double prev = frame > 0 ? s[frame - 1] : 0.0;
    w.key(tel.track_name(k)).value(s[frame] - prev);
  }
  w.end_object();
  w.key("gauges").begin_object();
  for (std::size_t k = 0; k < tel.track_count(); ++k) {
    if (tel.track_is_counter(k)) continue;
    w.key(tel.track_name(k)).value(tel.track_samples(k)[frame]);
  }
  w.end_object();
  w.end_object();
  return os.str();
}

}  // namespace sttgpu::serve
