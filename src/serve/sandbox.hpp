// Process-isolated simulation for the sweep service.
//
// run_sandboxed() executes one cache-miss simulation in a forked child, so
// a run that SIGSEGVs, exhausts memory, or wedges in an infinite loop can
// never take the daemon — and every other client's in-flight work — down
// with it. The parent supervises the child over a pipe with the PR-5
// supervisor's semantics transplanted onto process boundaries:
//
//   * heartbeat — the child forwards its cycle-count heartbeat as "beat"
//     lines; a child whose heartbeat stops advancing for watchdog_s seconds
//     is SIGKILLed (status kWatchdog). job_timeout_s bounds one attempt's
//     wall clock the same way (kTimeout).
//   * retry — crashes, OOMs and ordinary failures are retried up to
//     `retries` extra times with the supervisor's own deterministic
//     backoff curve (sim::retry_backoff_seconds). Watchdog/timeout kills
//     and cancellations are never retried: a livelocked run would livelock
//     again.
//   * cancellation — the per-task CancelToken is polled between pipe reads;
//     a cancelled child is SIGKILLed immediately (kCancelled).
//   * memory — mem_limit_bytes > 0 installs RLIMIT_AS in the child, so a
//     runaway allocation fails *inside the sandbox* (reported as kOom via a
//     caught std::bad_alloc, or as kCrashed if the kernel gets there first)
//     instead of driving the host into swap.
//
// The result travels back as the store's own "put ..." payload line
// (store/record.hpp, max_digits10 round-trip exact), so a row simulated in
// a sandbox is byte-identical to one simulated in-process or by a direct
// `sttgpu matrix` run. Telemetry frames are forwarded live as the watch
// stream's own event JSON.
//
// Fault injection for tests and the CI chaos smoke: the
// STTGPU_SANDBOX_FAULT environment variable holds a comma-separated list of
// "<arch>/<bench>=<abort|oom|hang>[@<attempt>]" entries; a matching child
// aborts, allocates until bad_alloc, or stops beating — on every attempt,
// or only on the 1-based attempt given after '@'.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "common/cancel.hpp"
#include "common/telemetry.hpp"
#include "sim/runner.hpp"

namespace sttgpu::serve {

/// Terminal state of one sandboxed task (after retries).
enum class SandboxStatus {
  kOk,         ///< row produced (possibly after retries)
  kFailed,     ///< child reported an ordinary simulation error
  kCrashed,    ///< child died on a signal (SIGSEGV, SIGABRT, kernel OOM kill)
  kOom,        ///< child hit the RLIMIT_AS mem_limit (std::bad_alloc)
  kWatchdog,   ///< killed: heartbeat made no progress for watchdog_s
  kTimeout,    ///< killed: attempt exceeded job_timeout_s
  kCancelled,  ///< killed or skipped: external cancellation
};

const char* sandbox_status_name(SandboxStatus s) noexcept;

/// What to simulate — everything the child needs to run and to label its
/// result/telemetry lines.
struct SandboxJob {
  sim::Architecture arch_id{};
  std::string arch;
  std::string bench;
  std::uint64_t fp = 0;
  std::string scale17;        ///< canonical scale text for the row line
  sim::RunOptions base;       ///< scale + simulation-shaping knobs, no hooks
  bool want_telemetry = false;
  Cycle interval = 50000;
};

struct SandboxOptions {
  double watchdog_s = 0.0;     ///< 0 = watchdog off
  double job_timeout_s = 0.0;  ///< 0 = no per-attempt wall-clock budget
  unsigned retries = 0;        ///< extra attempts for failed/crashed/OOM runs
  double retry_backoff_s = 0.25;
  std::uint64_t mem_limit_bytes = 0;  ///< 0 = no RLIMIT_AS in the child
  const CancelToken* cancel = nullptr;
  /// Runs in the child immediately after fork — the server closes its
  /// listener fds here so an orphaned child can never hold the socket open.
  std::function<void()> in_child;
};

struct SandboxResult {
  SandboxStatus status = SandboxStatus::kFailed;
  unsigned attempts = 0;  ///< forks actually performed
  unsigned kills = 0;     ///< SIGKILLs we sent (watchdog/timeout/cancel)
  unsigned crashes = 0;   ///< attempts that died on a signal or OOMed
  std::string error;      ///< last failure message ("" on success)
  std::string row_line;   ///< "put ..." payload line (kOk only)
};

/// Runs @p job in forked children until it succeeds, exhausts its retry
/// budget, or is killed/cancelled. @p on_event receives forwarded telemetry
/// event lines (complete JSON objects) on the calling thread. Never throws
/// for child failures — every terminal state is reported in the result.
SandboxResult run_sandboxed(const SandboxJob& job, const SandboxOptions& opts,
                            const std::function<void(const std::string&)>& on_event = {});

/// The watch stream's telemetry event JSON for one closed frame. Shared by
/// the sandbox child and the in-process path so both streams are identical.
std::string telemetry_event_json(const std::string& arch, const std::string& bench,
                                 const Telemetry& tel, std::size_t frame);

}  // namespace sttgpu::serve
