#include "serve/server.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/cancel.hpp"
#include "common/config.hpp"
#include "common/error.hpp"
#include "common/json.hpp"
#include "common/stats.hpp"
#include "common/telemetry.hpp"
#include "serve/fair_queue.hpp"
#include "serve/journal.hpp"
#include "serve/protocol.hpp"
#include "serve/sandbox.hpp"
#include "sim/executor.hpp"
#include "sim/knobs.hpp"
#include "sim/runner.hpp"
#include "sim/supervisor.hpp"
#include "store/record.hpp"
#include "store/result_store.hpp"
#include "workload/benchmarks.hpp"

namespace sttgpu::serve {

namespace {

/// Splits a comma-separated knob value; empty input yields an empty list.
std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::size_t begin = 0;
  while (begin <= s.size()) {
    const std::size_t comma = s.find(',', begin);
    const std::size_t end = comma == std::string::npos ? s.size() : comma;
    if (end > begin) out.push_back(s.substr(begin, end - begin));
    if (comma == std::string::npos) break;
    begin = comma + 1;
  }
  return out;
}

int close_quiet(int fd) noexcept { return fd >= 0 ? ::close(fd) : 0; }

/// Fairness identity of a connection. Unix-socket peers are keyed by
/// SO_PEERCRED (uid + pid: one greedy *process* cannot starve the rest);
/// loopback TCP peers carry no credentials and share one lane.
std::string peer_identity(int fd, bool is_tcp) {
  if (!is_tcp) {
    ucred cred{};
    socklen_t len = sizeof cred;
    if (::getsockopt(fd, SOL_SOCKET, SO_PEERCRED, &cred, &len) == 0 &&
        len == sizeof cred) {
      return "uid:" + std::to_string(cred.uid) + "/pid:" + std::to_string(cred.pid);
    }
  }
  return "tcp:loopback";
}

/// Deterministic JSON of a validated knob set (sorted keys, string values) —
/// the journal's record of an acknowledged submission.
std::string config_json(const Config& cfg) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  for (const auto& [k, v] : cfg.all()) w.key(k).value(v);
  w.end_object();
  return os.str();
}

}  // namespace

struct SweepServer::Impl {
  // --- model ---------------------------------------------------------------

  /// One unique (fingerprint, scale, arch, benchmark) simulation in flight.
  /// Shared by every submission that wants the row; simulated exactly once.
  struct Task {
    std::string key;  ///< store_key — the dedupe identity
    sim::Architecture arch_id{};
    std::string arch;
    std::string bench;
    std::uint64_t fp = 0;
    sim::RunOptions base;  ///< scale + simulation-shaping knobs, no hooks
    bool want_telemetry = false;
    Cycle interval = 50000;
    CancelToken token;                    ///< supervisor external source
    std::vector<std::uint64_t> waiters;   ///< submission ids awaiting the row
  };

  struct Submission {
    std::uint64_t id = 0;
    std::uint64_t fp = 0;
    double scale = 0.5;
    std::string scale17;
    sttl2::FaultInjectionConfig faults;
    std::vector<std::pair<std::string, std::string>> pairs;  ///< (arch, bench)
    std::set<std::string> pending;  ///< outstanding task keys
    std::size_t total = 0, hits = 0, simulated = 0, failed = 0;
    bool touched_store = false;  ///< any task simulated → re-export the CSV
    bool journaled = false;   ///< has an open journal record to retire
    bool recovered = false;   ///< replayed from the journal after a restart
    std::string state = "running";  ///< running|complete|failed|cancelled
    bool complete = false;
    std::vector<std::string> events;  ///< NDJSON backlog for watchers
  };

  explicit Impl(ServerOptions o)
      : opts(std::move(o)), started_at(std::chrono::steady_clock::now()) {}

  ServerOptions opts;
  std::unique_ptr<store::ResultStore> store;
  std::unique_ptr<Journal> journal;
  int unix_fd = -1;
  int tcp_fd = -1;
  unsigned workers = 1;
  std::chrono::steady_clock::time_point started_at;

  std::mutex mu;
  std::condition_variable cv_queue;   ///< workers wait for tasks
  std::condition_variable cv_events;  ///< watchers wait for event appends
  bool stopping = false;
  bool stopped = false;
  bool started = false;
  std::uint64_t next_id = 1;
  std::map<std::uint64_t, Submission> submissions;
  std::map<std::string, std::shared_ptr<Task>> inflight;  ///< key → task
  FairQueue<std::shared_ptr<Task>> queue;  ///< per-client round-robin
  std::set<int> conns;  ///< open connection fds (shutdown on stop)

  // Monotonic counters (mu-free reads for the on_apply hook).
  std::atomic<std::uint64_t> n_submissions{0}, n_simulated{0}, n_failed{0},
      n_store_hits{0}, n_attached{0}, n_applied{0}, n_own_puts{0};
  std::atomic<std::uint64_t> n_shed{0}, n_child_kills{0}, n_child_crashes{0},
      n_retries{0}, n_replayed{0};

  // Interned connection counters (mu held). One slot today; the intern
  // call in the initializer keeps additions one-liners.
  CounterSet conn_counters;
  CounterId read_drop_counter = conn_counters.intern("serve.read_deadline_drops");

  std::thread accept_thread;
  std::vector<std::thread> worker_threads;
  // Connection handler threads: live ones are registered by token; a
  // finishing handler moves its own handle to the zombie list, which the
  // accept loop joins every poll tick — the registry stays bounded by
  // *live* connections instead of growing for the daemon's lifetime.
  std::uint64_t next_conn_token = 1;
  std::map<std::uint64_t, std::thread> conn_live;
  std::vector<std::thread> conn_zombies;

  void say(const std::string& line) const {
    if (opts.log) opts.log("[serve] " + line);
  }

  // --- listeners -----------------------------------------------------------

  void bind_unix() {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (opts.socket_path.size() >= sizeof(addr.sun_path)) {
      throw BindError("socket path too long: " + opts.socket_path);
    }
    std::strncpy(addr.sun_path, opts.socket_path.c_str(), sizeof(addr.sun_path) - 1);

    // A leftover socket file from a dead server would make bind() fail with
    // EADDRINUSE forever. Probe it: a live server accepts the connection
    // (that is a real conflict); a dead one refuses, and the stale file is
    // safe to reclaim.
    const int probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (probe >= 0) {
      if (::connect(probe, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) == 0) {
        close_quiet(probe);
        throw BindError("another server is already listening on " + opts.socket_path);
      }
      close_quiet(probe);
      ::unlink(opts.socket_path.c_str());
    }

    unix_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (unix_fd < 0) throw BindError(std::string("socket: ") + std::strerror(errno));
    if (::bind(unix_fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
      const std::string why = std::strerror(errno);
      close_quiet(unix_fd);
      unix_fd = -1;
      throw BindError("cannot bind " + opts.socket_path + ": " + why);
    }
    if (::listen(unix_fd, 16) != 0) {
      const std::string why = std::strerror(errno);
      close_quiet(unix_fd);
      unix_fd = -1;
      throw BindError("cannot listen on " + opts.socket_path + ": " + why);
    }
  }

  void bind_tcp() {
    tcp_fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (tcp_fd < 0) throw BindError(std::string("socket: ") + std::strerror(errno));
    const int one = 1;
    ::setsockopt(tcp_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // never a public listener
    addr.sin_port = htons(static_cast<std::uint16_t>(opts.tcp_port));
    if (::bind(tcp_fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0 ||
        ::listen(tcp_fd, 16) != 0) {
      const std::string why = std::strerror(errno);
      close_quiet(tcp_fd);
      tcp_fd = -1;
      throw BindError("cannot listen on loopback port " + std::to_string(opts.tcp_port) +
                      ": " + why);
    }
  }

  // --- event plumbing (mu held) --------------------------------------------

  void append_event_locked(Submission& sub, const std::string& line) {
    sub.events.push_back(line);
    cv_events.notify_all();
  }

  static std::string task_event(const char* event, const Task& t, const char* status,
                                const std::string& detail_key,
                                const std::string& detail) {
    std::ostringstream os;
    JsonWriter w(os);
    w.begin_object();
    w.key("event").value(event);
    w.key("arch").value(t.arch);
    w.key("benchmark").value(t.bench);
    if (status != nullptr) w.key("status").value(status);
    if (!detail_key.empty()) w.key(detail_key).value(detail);
    w.end_object();
    return os.str();
  }

  std::string complete_event(const Submission& sub) const {
    std::ostringstream os;
    JsonWriter w(os);
    w.begin_object();
    w.key("event").value("complete");
    w.key("id").value(sub.id);
    w.key("state").value(sub.state);
    w.key("total").value(static_cast<std::uint64_t>(sub.total));
    w.key("hits").value(static_cast<std::uint64_t>(sub.hits));
    w.key("simulated").value(static_cast<std::uint64_t>(sub.simulated));
    w.key("failed").value(static_cast<std::uint64_t>(sub.failed));
    w.end_object();
    return os.str();
  }

  /// Marks @p sub terminal and emits its "complete" event. mu held.
  void complete_submission_locked(Submission& sub) {
    sub.complete = true;
    if (sub.state == "running") sub.state = sub.failed > 0 ? "failed" : "complete";
    append_event_locked(sub, complete_event(sub));
    // Retire the journal record only now — every row of the submission is
    // durably in the store (or accounted failed/cancelled), so a crash
    // after this point loses nothing that was promised.
    if (sub.journaled && journal) journal->record_done(sub.id);
    say("submission " + std::to_string(sub.id) + " " + sub.state + " (" +
        std::to_string(sub.hits) + " hits, " + std::to_string(sub.simulated) +
        " simulated, " + std::to_string(sub.failed) + " failed)");
  }

  // --- CSV export (call WITHOUT mu) ----------------------------------------

  /// The exact export sequence run_matrix performs after a sweep, so the
  /// CSV this daemon publishes is byte-identical to a direct run's.
  void export_csv(std::uint64_t fp, double scale,
                  const sttl2::FaultInjectionConfig& faults) {
    try {
      store->refresh();
      std::vector<sim::Metrics> all;
      for (const store::ResultRow& r : store->rows_for(fp, scale)) {
        all.push_back(sim::from_store_row(r));
      }
      sim::save_cache(opts.cache_path, scale, all, faults);
    } catch (const std::exception& e) {
      // The WAL already holds every row durably; a failed export is a
      // nuisance, not data loss — the next completion retries.
      say(std::string("CSV export failed: ") + e.what());
    }
  }

  // --- task lifecycle ------------------------------------------------------

  /// Records a finished task into every waiting submission. mu held.
  /// Returns the (fp, scale, faults) export jobs for submissions that just
  /// completed (performed by the caller after releasing mu).
  struct ExportJob {
    std::uint64_t fp;
    double scale;
    sttl2::FaultInjectionConfig faults;
  };
  /// Removes @p t from the in-flight table iff it is still the registered
  /// task for its key — a cancelled task may have been replaced by a fresh
  /// one for the same config, which must not be evicted. mu held.
  void drop_inflight_locked(const std::shared_ptr<Task>& t) {
    const auto it = inflight.find(t->key);
    if (it != inflight.end() && it->second == t) inflight.erase(it);
  }

  std::vector<ExportJob> finish_task_locked(const std::shared_ptr<Task>& t,
                                            const char* status,
                                            const std::string& error,
                                            const store::ResultRow* row) {
    drop_inflight_locked(t);
    std::vector<ExportJob> exports;
    for (const std::uint64_t id : t->waiters) {
      const auto it = submissions.find(id);
      if (it == submissions.end()) continue;
      Submission& sub = it->second;
      sub.pending.erase(t->key);
      if (row != nullptr) {
        ++sub.simulated;
        sub.touched_store = true;
        append_event_locked(
            sub, task_event("done", *t, status, "row",
                            store::encode_put(t->fp, sub.scale17, *row)));
      } else {
        ++sub.failed;
        append_event_locked(sub, task_event("failed", *t, status, "error", error));
      }
      if (sub.pending.empty() && !sub.complete) {
        complete_submission_locked(sub);
        if (sub.touched_store) exports.push_back({sub.fp, sub.scale, sub.faults});
      }
    }
    return exports;
  }

  /// Delivers one ready-made event line to every submission waiting on @p t.
  /// Runs on the simulating/supervising thread.
  void fan_out_event(const Task& t, const std::string& line) {
    std::lock_guard<std::mutex> lk(mu);
    for (const std::uint64_t id : t.waiters) {
      const auto it = submissions.find(id);
      if (it != submissions.end()) append_event_locked(it->second, line);
    }
  }

  void run_task(const std::shared_ptr<Task>& t) {
    // One supervised job per task: the per-task token is the supervisor's
    // external cancellation source, so the `cancel` verb, the watchdog, the
    // per-job timeout, and retry/backoff are the matrix runner's own
    // semantics. keep_going: the outcome is recorded per task; a failing
    // task must never tear the service down.
    sim::SupervisorOptions sup;
    sup.external = &t->token;
    sup.watchdog_s = opts.watchdog_s;
    sup.job_timeout_s = opts.job_timeout_s;
    sup.retries = opts.retries;
    sup.keep_going = true;

    std::optional<store::ResultRow> row;
    sim::Job job;
    job.label = t->arch + "/" + t->bench;
    job.supervised = [this, &t, &row](const sim::JobControl& ctl) {
      sim::RunOptions ro = t->base;
      ro.cancel = ctl.cancel;
      ro.heartbeat = ctl.heartbeat;
      std::unique_ptr<Telemetry> tel;
      if (t->want_telemetry) {
        tel = std::make_unique<Telemetry>(t->interval);
        tel->set_on_frame([this, &t](const Telemetry& T, std::size_t frame) {
          fan_out_event(*t, telemetry_event_json(t->arch, t->bench, T, frame));
        });
        ro.telemetry = tel.get();
      }
      const sim::Metrics m = sim::run_one(t->arch_id, t->bench, ro);
      {
        // Durable write-through before the row is announced; the critical
        // section keeps a cooperative watchdog kill from landing between
        // "simulated" and "persisted".
        const sim::CriticalSection cs(ctl);
        n_own_puts.fetch_add(1, std::memory_order_relaxed);
        store->put(t->fp, t->base.scale, sim::to_store_row(m));
      }
      row = sim::to_store_row(m);
    };
    std::vector<sim::Job> jobs;
    jobs.push_back(std::move(job));
    const sim::SupervisedResult res = sim::run_supervised(std::move(jobs), 1, sup);
    const sim::JobOutcome& o = res.outcomes.at(0);

    std::vector<ExportJob> exports;
    {
      std::lock_guard<std::mutex> lk(mu);
      if (o.status == sim::JobStatus::kOk && row) {
        n_simulated.fetch_add(1, std::memory_order_relaxed);
        exports = finish_task_locked(t, "ok", "", &*row);
      } else {
        n_failed.fetch_add(1, std::memory_order_relaxed);
        exports =
            finish_task_locked(t, sim::job_status_name(o.status), o.error, nullptr);
      }
    }
    for (const ExportJob& e : exports) export_csv(e.fp, e.scale, e.faults);
  }

  /// The process-isolated variant of run_task: the simulation runs in a
  /// forked child (serve/sandbox.hpp); a crash, OOM, or wedge kills only the
  /// child, which is reaped/retried and reported with a distinct status.
  void run_task_sandboxed(const std::shared_ptr<Task>& t) {
    SandboxJob job;
    job.arch_id = t->arch_id;
    job.arch = t->arch;
    job.bench = t->bench;
    job.fp = t->fp;
    job.scale17 = store::scale_text(t->base.scale);
    job.base = t->base;
    job.want_telemetry = t->want_telemetry;
    job.interval = t->interval;

    SandboxOptions so;
    so.watchdog_s = opts.watchdog_s;
    so.job_timeout_s = opts.job_timeout_s;
    so.retries = opts.retries;
    so.mem_limit_bytes = opts.mem_limit_bytes;
    so.cancel = &t->token;
    so.in_child = [this] {
      // An orphaned child must not keep the daemon's listeners open: a
      // restarting daemon probes the stale socket file, and a held-open
      // listener would read as "another server is alive".
      close_quiet(unix_fd);
      close_quiet(tcp_fd);
    };

    const SandboxResult res =
        run_sandboxed(job, so, [this, t](const std::string& event) {
          fan_out_event(*t, event);
        });
    n_child_kills.fetch_add(res.kills, std::memory_order_relaxed);
    n_child_crashes.fetch_add(res.crashes, std::memory_order_relaxed);
    if (res.attempts > 1) {
      n_retries.fetch_add(res.attempts - 1, std::memory_order_relaxed);
    }

    // The row crossed the pipe as the store's own put-record line; decoding
    // and re-putting it is byte-exact by the record codec's round-trip
    // contract, so sandboxed rows match direct-run rows bit for bit.
    std::optional<store::ResultRow> row;
    std::string error = res.error;
    const char* status = sandbox_status_name(res.status);
    if (res.status == SandboxStatus::kOk) {
      const auto rec = store::decode_put(res.row_line);
      if (rec && rec->fingerprint == t->fp) {
        n_own_puts.fetch_add(1, std::memory_order_relaxed);
        store->put(t->fp, t->base.scale, rec->row);
        row = rec->row;
      } else {
        status = "failed";
        error = "sandbox returned an undecodable result row";
      }
    }

    std::vector<ExportJob> exports;
    {
      std::lock_guard<std::mutex> lk(mu);
      if (row) {
        n_simulated.fetch_add(1, std::memory_order_relaxed);
        exports = finish_task_locked(t, status, "", &*row);
      } else {
        n_failed.fetch_add(1, std::memory_order_relaxed);
        exports = finish_task_locked(t, status, error, nullptr);
      }
    }
    for (const ExportJob& e : exports) export_csv(e.fp, e.scale, e.faults);
  }

  void worker_loop() {
    for (;;) {
      std::shared_ptr<Task> t;
      {
        std::unique_lock<std::mutex> lk(mu);
        cv_queue.wait(lk, [this] { return stopping || !queue.empty(); });
        std::optional<std::shared_ptr<Task>> popped = queue.pop();
        if (!popped) return;  // stopping and drained
        t = std::move(*popped);
        if (t->waiters.empty()) {
          // Every submitter cancelled before the task started; nothing to
          // report to and nothing worth simulating.
          drop_inflight_locked(t);
          n_failed.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        for (const std::uint64_t id : t->waiters) {
          const auto it = submissions.find(id);
          if (it != submissions.end()) {
            append_event_locked(it->second, task_event("start", *t, nullptr, "", ""));
          }
        }
      }
      if (opts.sandbox) {
        run_task_sandboxed(t);
      } else {
        run_task(t);
      }
    }
  }

  // --- verb handlers -------------------------------------------------------

  /// Shared options plumbing: JSON object → Config → registry validation.
  static Config options_config(const JsonValue& req, sim::KnobCommand cmd,
                               const std::string& name) {
    const JsonValue* ov = req.find("options");
    Config cfg = ov != nullptr ? sim::config_from_json(*ov) : Config{};
    sim::validate_knobs(cfg, cmd, name);
    return cfg;
  }

  /// Backpressure hint for shed submissions: scale with how much queued work
  /// each worker already owns, clamped to something a human would wait.
  std::int64_t retry_after_ms_locked() const {
    const std::size_t per_worker = queue.size() / std::max(1u, workers);
    const std::int64_t ms = 250 + static_cast<std::int64_t>(per_worker) * 250;
    return std::min<std::int64_t>(ms, 30000);
  }

  struct SubmitOutcome {
    std::uint64_t id = 0;
    std::size_t total = 0, hits = 0, scheduled = 0, attached = 0;
  };

  /// The submit core, shared by the `submit` verb and journal replay.
  /// @p client keys the fair-queue lane; @p forced_id reuses a journaled id
  /// (0 = allocate); @p recovered marks a replay — exempt from admission
  /// control and from re-journaling (its record is already on disk).
  SubmitOutcome submit_config(const Config& cfg, const std::string& client,
                              std::uint64_t forced_id, bool recovered) {
    constexpr auto kCmd = sim::kKnobSubmit;
    const sim::RunOptions base = sim::run_options_from_knobs(cfg, kCmd);
    const bool want_telemetry = sim::knob_bool(cfg, kCmd, "telemetry");
    const std::int64_t interval = sim::knob_int(cfg, kCmd, "interval");
    STTGPU_REQUIRE(interval > 0, "interval= must be a positive cycle count");

    std::vector<sim::Architecture> archs;
    const std::string arch_csv = sim::knob_string(cfg, kCmd, "archs");
    if (arch_csv.empty()) {
      archs = sim::all_architectures();
    } else {
      for (const std::string& a : split_csv(arch_csv)) {
        archs.push_back(sim::architecture_from_string(a));
      }
    }
    std::vector<std::string> benchmarks = split_csv(sim::knob_string(cfg, kCmd, "benchmarks"));
    const std::vector<std::string> known = workload::benchmark_names();
    if (benchmarks.empty()) {
      benchmarks = known;
    } else {
      for (const std::string& b : benchmarks) {
        STTGPU_REQUIRE(std::find(known.begin(), known.end(), b) != known.end(),
                       "unknown benchmark '" + b + "' (see `sttgpu list`)");
      }
    }

    const std::uint64_t fp = sim::config_fingerprint(base.faults);
    const std::string scale17 = store::scale_text(base.scale);
    // The journal record is the options object as validated — serialized
    // before taking mu so the lock never covers string building.
    const std::string options_json = config_json(cfg);
    // Observe rows other processes appended before deciding what to run.
    store->refresh();

    SubmitOutcome out;
    std::optional<ExportJob> replay_export;
    {
      std::lock_guard<std::mutex> lk(mu);
      STTGPU_REQUIRE(!stopping, "server is draining — submission refused");

      // Counting pass: decide, under the same lock the mutation pass will
      // hold, how many fresh tasks this submission would enqueue — the
      // admission decision and the later mutation always agree.
      std::size_t would_schedule = 0, would_attach = 0;
      for (const sim::Architecture a : archs) {
        const std::string arch_name = sim::make_arch(a).name;
        for (const std::string& bench : benchmarks) {
          const std::string key = store::store_key(fp, scale17, arch_name, bench);
          if (inflight.find(key) != inflight.end()) {
            ++would_attach;
          } else if (!store->get(fp, base.scale, arch_name, bench)) {
            ++would_schedule;
          }
        }
      }

      // Admission control. Replays are exempt: they were acknowledged in a
      // previous life and shedding them would break the journal's promise.
      if (!recovered && opts.max_queue > 0 &&
          queue.size() + would_schedule > opts.max_queue) {
        n_shed.fetch_add(1, std::memory_order_relaxed);
        say("submission shed: queue " + std::to_string(queue.size()) + " + " +
            std::to_string(would_schedule) + " new > max_queue " +
            std::to_string(opts.max_queue) + " (client " + client + ")");
        throw Overloaded("server overloaded: queue of " + std::to_string(queue.size()) +
                             " task(s) cannot admit " + std::to_string(would_schedule) +
                             " more (max_queue=" + std::to_string(opts.max_queue) + ")",
                         retry_after_ms_locked());
      }

      out.id = forced_id != 0 ? forced_id : next_id++;
      if (forced_id >= next_id) next_id = forced_id + 1;

      // Durable ack BEFORE any state mutation: if the journal append fails
      // the submission is cleanly refused (the skipped id is harmless).
      // Pure store hits are worth journaling too — the promise covers the
      // CSV export, not just simulation work.
      const bool journal_it = !recovered && journal != nullptr;
      if (journal_it) journal->record_submission(out.id, options_json);

      Submission& sub = submissions[out.id];
      sub.id = out.id;
      sub.fp = fp;
      sub.scale = base.scale;
      sub.scale17 = scale17;
      sub.faults = base.faults;
      sub.journaled = journal_it || recovered;
      sub.recovered = recovered;
      // A replayed submission must republish the CSV even when every row is
      // already in the store — the crash may have landed before the export.
      if (recovered) sub.touched_store = true;
      for (const sim::Architecture a : archs) {
        const std::string arch_name = sim::make_arch(a).name;
        for (const std::string& bench : benchmarks) {
          sub.pairs.emplace_back(arch_name, bench);
          const std::string key = store::store_key(fp, scale17, arch_name, bench);
          const auto live = inflight.find(key);
          if (live != inflight.end()) {
            live->second->waiters.push_back(out.id);
            sub.pending.insert(key);
            ++out.attached;
            n_attached.fetch_add(1, std::memory_order_relaxed);
            continue;
          }
          if (store->get(fp, base.scale, arch_name, bench)) {
            ++sub.hits;
            n_store_hits.fetch_add(1, std::memory_order_relaxed);
            continue;
          }
          auto t = std::make_shared<Task>();
          t->key = key;
          t->arch_id = a;
          t->arch = arch_name;
          t->bench = bench;
          t->fp = fp;
          t->base = base;
          t->want_telemetry = want_telemetry;
          t->interval = static_cast<Cycle>(interval);
          t->waiters.push_back(out.id);
          inflight.emplace(key, t);
          queue.push(client, std::move(t));
          sub.pending.insert(key);
          ++out.scheduled;
        }
      }
      sub.total = sub.pairs.size();
      out.total = sub.total;
      out.hits = sub.hits;
      n_submissions.fetch_add(1, std::memory_order_relaxed);

      {
        std::ostringstream os;
        JsonWriter w(os);
        w.begin_object();
        w.key("event").value("scheduled");
        w.key("id").value(out.id);
        w.key("total").value(static_cast<std::uint64_t>(sub.total));
        w.key("hits").value(static_cast<std::uint64_t>(sub.hits));
        w.key("scheduled").value(static_cast<std::uint64_t>(out.scheduled));
        w.key("attached").value(static_cast<std::uint64_t>(out.attached));
        w.end_object();
        append_event_locked(sub, os.str());
      }
      if (sub.pending.empty()) {
        complete_submission_locked(sub);  // pure hit
        if (sub.touched_store) replay_export = ExportJob{sub.fp, sub.scale, sub.faults};
      }
      say("submit " + std::to_string(out.id) + ": " + std::to_string(sub.total) +
          " configs, " + std::to_string(sub.hits) + " store hits, " +
          std::to_string(out.scheduled) + " scheduled, " + std::to_string(out.attached) +
          " attached");
    }
    cv_queue.notify_all();
    if (replay_export) export_csv(replay_export->fp, replay_export->scale,
                                  replay_export->faults);
    return out;
  }

  std::string handle_submit(const JsonValue& req, const std::string& client) {
    const Config cfg = options_config(req, sim::kKnobSubmit, "submit");
    const SubmitOutcome out = submit_config(cfg, client, /*forced_id=*/0,
                                            /*recovered=*/false);
    std::ostringstream os;
    JsonWriter w(os);
    w.begin_object();
    w.key("protocol_version").value(kProtocolVersion);
    w.key("ok").value(true);
    w.key("id").value(out.id);
    w.key("total").value(static_cast<std::uint64_t>(out.total));
    w.key("hits").value(static_cast<std::uint64_t>(out.hits));
    w.key("scheduled").value(static_cast<std::uint64_t>(out.scheduled));
    w.key("attached").value(static_cast<std::uint64_t>(out.attached));
    w.end_object();
    return os.str();
  }

  /// Re-submits every acknowledged-but-unfinished submission found in the
  /// journal. Runs from start() before the accept loop exists, but after the
  /// workers could be spawned — call it before spawning threads so replayed
  /// work is queued when the first worker wakes.
  void replay_journal() {
    if (!journal) return;
    const std::vector<Journal::Pending> pending = journal->recovered();
    if (pending.empty()) return;
    say("journal: replaying " + std::to_string(pending.size()) + " submission(s)");
    for (const Journal::Pending& p : pending) {
      try {
        const JsonValue opts_json = parse_json(p.options_json);
        Config cfg = sim::config_from_json(opts_json);
        sim::validate_knobs(cfg, sim::kKnobSubmit, "submit");
        submit_config(cfg, "journal-replay", p.id, /*recovered=*/true);
        n_replayed.fetch_add(1, std::memory_order_relaxed);
      } catch (const std::exception& e) {
        // A record this build cannot parse any more (or a submit that now
        // fails validation) must not wedge the daemon in a replay loop on
        // every restart: report it loudly and retire it.
        say("journal: replay of submission " + std::to_string(p.id) + " failed (" +
            e.what() + ") — retiring it");
        journal->record_done(p.id);
      }
    }
  }

  ServerStats stats_snapshot() {
    ServerStats s;
    s.submissions = n_submissions.load(std::memory_order_relaxed);
    s.tasks_simulated = n_simulated.load(std::memory_order_relaxed);
    s.tasks_failed = n_failed.load(std::memory_order_relaxed);
    s.store_hits = n_store_hits.load(std::memory_order_relaxed);
    s.attached = n_attached.load(std::memory_order_relaxed);
    const std::uint64_t applied = n_applied.load(std::memory_order_relaxed);
    const std::uint64_t own = n_own_puts.load(std::memory_order_relaxed);
    s.merged_rows = applied > own ? applied - own : 0;
    s.store_rows = store->size();
    s.workers = workers;
    s.shed = n_shed.load(std::memory_order_relaxed);
    s.child_kills = n_child_kills.load(std::memory_order_relaxed);
    s.child_crashes = n_child_crashes.load(std::memory_order_relaxed);
    s.task_retries = n_retries.load(std::memory_order_relaxed);
    s.replayed = n_replayed.load(std::memory_order_relaxed);
    s.sandbox = opts.sandbox;
    s.uptime_s = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                               started_at)
                     .count();
    if (journal) {
      const Journal::Stats js = journal->stats();
      s.journal_pending = js.open;
      s.journal_records = js.records;
    }
    std::lock_guard<std::mutex> lk(mu);
    s.queued = queue.size();
    s.inflight = inflight.size();
    s.connections = conn_live.size();
    s.read_deadline_drops = conn_counters.at(read_drop_counter);
    return s;
  }

  std::string handle_health() {
    const ServerStats s = stats_snapshot();
    std::ostringstream os;
    JsonWriter w(os);
    w.begin_object();
    w.key("protocol_version").value(kProtocolVersion);
    w.key("ok").value(true);
    w.key("health").begin_object();
    w.key("uptime_s").value(s.uptime_s);
    w.key("workers").value(s.workers);
    w.key("sandbox").value(s.sandbox);
    w.key("queued").value(static_cast<std::uint64_t>(s.queued));
    w.key("inflight").value(static_cast<std::uint64_t>(s.inflight));
    w.key("connections").value(static_cast<std::uint64_t>(s.connections));
    w.key("submissions").value(s.submissions);
    w.key("tasks_simulated").value(s.tasks_simulated);
    w.key("tasks_failed").value(s.tasks_failed);
    w.key("store_hits").value(s.store_hits);
    w.key("attached").value(s.attached);
    w.key("shed").value(s.shed);
    w.key("read_deadline_drops").value(s.read_deadline_drops);
    w.key("child_kills").value(s.child_kills);
    w.key("child_crashes").value(s.child_crashes);
    w.key("task_retries").value(s.task_retries);
    w.key("replayed").value(s.replayed);
    w.key("journal_pending").value(s.journal_pending);
    w.key("journal_records").value(s.journal_records);
    w.key("store_rows").value(static_cast<std::uint64_t>(s.store_rows));
    w.end_object();
    w.end_object();
    return os.str();
  }

  std::string handle_status(const JsonValue& req) {
    const JsonValue* idv = req.find("id");
    const std::uint64_t id = idv != nullptr ? static_cast<std::uint64_t>(idv->as_int()) : 0;
    std::ostringstream os;
    JsonWriter w(os);
    if (id == 0) {
      const ServerStats s = stats_snapshot();
      w.begin_object();
      w.key("protocol_version").value(kProtocolVersion);
      w.key("ok").value(true);
      w.key("server").begin_object();
      w.key("submissions").value(s.submissions);
      w.key("tasks_simulated").value(s.tasks_simulated);
      w.key("tasks_failed").value(s.tasks_failed);
      w.key("store_hits").value(s.store_hits);
      w.key("attached").value(s.attached);
      w.key("merged_rows").value(s.merged_rows);
      w.key("queued").value(static_cast<std::uint64_t>(s.queued));
      w.key("store_rows").value(static_cast<std::uint64_t>(s.store_rows));
      w.key("workers").value(s.workers);
      w.end_object();
      w.end_object();
      return os.str();
    }
    std::lock_guard<std::mutex> lk(mu);
    const auto it = submissions.find(id);
    STTGPU_REQUIRE(it != submissions.end(),
                   "no submission with id " + std::to_string(id));
    const Submission& sub = it->second;
    w.begin_object();
    w.key("protocol_version").value(kProtocolVersion);
    w.key("ok").value(true);
    w.key("id").value(sub.id);
    w.key("state").value(sub.state);
    w.key("total").value(static_cast<std::uint64_t>(sub.total));
    w.key("hits").value(static_cast<std::uint64_t>(sub.hits));
    w.key("simulated").value(static_cast<std::uint64_t>(sub.simulated));
    w.key("failed").value(static_cast<std::uint64_t>(sub.failed));
    w.key("pending").value(static_cast<std::uint64_t>(sub.pending.size()));
    w.end_object();
    return os.str();
  }

  std::string handle_cancel(const JsonValue& req) {
    const std::uint64_t id = static_cast<std::uint64_t>(req.at("id").as_int());
    STTGPU_REQUIRE(id > 0, "cancel needs id=<submission>");
    std::lock_guard<std::mutex> lk(mu);
    const auto it = submissions.find(id);
    STTGPU_REQUIRE(it != submissions.end(),
                   "no submission with id " + std::to_string(id));
    Submission& sub = it->second;
    if (!sub.complete) {
      // Detach from every outstanding task; a task nobody waits for any
      // more is cancelled (running: via its token at the next supervision
      // checkpoint; queued: skipped at pop). Tasks other submissions still
      // wait on keep running — cancelling one client never steals another
      // client's result.
      for (const std::string& key : sub.pending) {
        const auto task = inflight.find(key);
        if (task == inflight.end()) continue;
        auto& waiters = task->second->waiters;
        waiters.erase(std::remove(waiters.begin(), waiters.end(), id), waiters.end());
        if (waiters.empty()) {
          // Nobody wants the row any more: cancel the run (queued tasks are
          // skipped at pop) and un-register the key so a later submission
          // of the same config schedules a fresh task.
          task->second->token.request(CancelReason::kUser);
          inflight.erase(task);
        }
      }
      sub.failed += sub.pending.size();
      sub.pending.clear();
      sub.state = "cancelled";
      complete_submission_locked(sub);
    }
    std::ostringstream os;
    JsonWriter w(os);
    w.begin_object();
    w.key("protocol_version").value(kProtocolVersion);
    w.key("ok").value(true);
    w.key("id").value(sub.id);
    w.key("state").value(sub.state);
    w.end_object();
    return os.str();
  }

  std::string handle_result(const JsonValue& req) {
    const JsonValue* idv = req.find("id");
    const std::uint64_t id = idv != nullptr ? static_cast<std::uint64_t>(idv->as_int()) : 0;

    std::uint64_t fp = 0;
    double scale = 0.5;
    std::string scale17;
    std::vector<std::pair<std::string, std::string>> pairs;
    std::string state = "complete";
    if (id > 0) {
      std::lock_guard<std::mutex> lk(mu);
      const auto it = submissions.find(id);
      STTGPU_REQUIRE(it != submissions.end(),
                     "no submission with id " + std::to_string(id));
      const Submission& sub = it->second;
      fp = sub.fp;
      scale = sub.scale;
      scale17 = sub.scale17;
      pairs = sub.pairs;
      state = sub.state;
    } else {
      // Row lookup by (arch, benchmark, scale): the same registry rows the
      // CLI validates against, baseline (fault-free) fingerprint.
      constexpr auto kCmd = sim::kKnobResult;
      const Config cfg = options_config(req, kCmd, "result");
      const sim::RunOptions ro = sim::run_options_from_knobs(cfg, kCmd);
      const std::string arch = sim::knob_string(cfg, kCmd, "arch");
      // Resolve through the registry so an unknown arch fails loudly here.
      sim::architecture_from_string(arch);
      fp = sim::config_fingerprint(ro.faults);
      scale = ro.scale;
      scale17 = store::scale_text(scale);
      pairs.emplace_back(arch, sim::knob_string(cfg, kCmd, "benchmark"));
    }

    store->refresh();
    std::vector<std::string> rows;
    std::vector<std::string> missing;
    for (const auto& [arch, bench] : pairs) {
      const auto row = store->get(fp, scale, arch, bench);
      if (row) {
        rows.push_back(store::encode_put(fp, scale17, *row));
      } else {
        missing.push_back(arch + "/" + bench);
      }
    }
    STTGPU_REQUIRE(id > 0 || !rows.empty(),
                   "no stored result for " + missing.front() + " at scale " + scale17);

    std::ostringstream os;
    JsonWriter w(os);
    w.begin_object();
    w.key("protocol_version").value(kProtocolVersion);
    w.key("ok").value(true);
    if (id > 0) w.key("id").value(id);
    w.key("state").value(state);
    w.key("scale").value(scale17);
    w.key("rows").begin_array();
    for (const std::string& r : rows) w.value(r);
    w.end_array();
    w.key("missing").begin_array();
    for (const std::string& m : missing) w.value(m);
    w.end_array();
    w.end_object();
    return os.str();
  }

  void handle_watch(int fd, const JsonValue& req) {
    const std::uint64_t id = static_cast<std::uint64_t>(req.at("id").as_int());
    {
      std::lock_guard<std::mutex> lk(mu);
      STTGPU_REQUIRE(submissions.find(id) != submissions.end(),
                     "no submission with id " + std::to_string(id));
    }
    {
      std::ostringstream os;
      JsonWriter w(os);
      w.begin_object();
      w.key("protocol_version").value(kProtocolVersion);
      w.key("ok").value(true);
      w.key("id").value(id);
      w.end_object();
      write_frame(fd, os.str());
    }
    // Replay the backlog, then follow live appends. The terminal "complete"
    // event is always the last line; the client stops there.
    std::size_t idx = 0;
    for (;;) {
      std::vector<std::string> batch;
      bool done = false;
      {
        std::unique_lock<std::mutex> lk(mu);
        Submission& sub = submissions.at(id);
        cv_events.wait(lk, [&] { return sub.events.size() > idx || sub.complete; });
        while (idx < sub.events.size()) batch.push_back(sub.events[idx++]);
        done = sub.complete && idx == sub.events.size();
      }
      for (const std::string& line : batch) write_event_line(fd, line);
      if (done) return;
    }
  }

  // --- connection handling -------------------------------------------------

  void handle_connection(int fd, const std::string& client) {
    bool dropped = false;
    try {
      if (opts.read_deadline_s > 0.0) {
        // Pre-frame deadline: a client that connects and says nothing
        // releases this thread instead of holding it forever.
        const int ms = static_cast<int>(opts.read_deadline_s * 1000.0);
        if (!wait_readable(fd, ms)) {
          dropped = true;
        } else {
          // Mid-frame stalls are bounded by the socket receive timeout;
          // read_exact turns EAGAIN into a clean "peer stalled" error.
          timeval tv{};
          tv.tv_sec = static_cast<time_t>(opts.read_deadline_s);
          tv.tv_usec = static_cast<suseconds_t>(
              (opts.read_deadline_s - static_cast<double>(tv.tv_sec)) * 1e6);
          ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
        }
      }
      if (!dropped) {
        const std::optional<std::string> payload = read_frame(fd);
        if (payload) {
          if (payload->empty()) {
            throw ProtocolMismatch("zero-length request frame");
          }
          const JsonValue req = parse_json(*payload);
          require_version(req);
          const std::string verb = req.at("verb").as_string();
          if (verb == "watch") {
            handle_watch(fd, req);
          } else if (verb == "submit") {
            write_frame(fd, handle_submit(req, client));
          } else if (verb == "status") {
            write_frame(fd, handle_status(req));
          } else if (verb == "cancel") {
            write_frame(fd, handle_cancel(req));
          } else if (verb == "result") {
            write_frame(fd, handle_result(req));
          } else if (verb == "health") {
            write_frame(fd, handle_health());
          } else {
            throw SimError("unknown verb '" + verb +
                           "' (expected submit, status, watch, cancel, result or "
                           "health)");
          }
        }
      }
    } catch (const Overloaded& e) {
      try {
        write_frame(fd, overloaded_response(e.what(), e.retry_after_ms()));
      } catch (...) {
      }
    } catch (const ProtocolMismatch& e) {
      try {
        write_frame(fd, error_response(e.what(), /*protocol_mismatch=*/true));
      } catch (...) {
      }
    } catch (const std::exception& e) {
      try {
        write_frame(fd, error_response(e.what()));
      } catch (...) {
      }
    }
    {
      std::lock_guard<std::mutex> lk(mu);
      conns.erase(fd);
      if (dropped) {
        ++conn_counters.at(read_drop_counter);
        say("dropped silent connection (client " + client + ", no request within " +
            std::to_string(opts.read_deadline_s) + "s)");
      }
    }
    close_quiet(fd);
  }

  /// Last act of a connection handler: move its own thread handle from the
  /// live registry to the zombie list the accept loop joins.
  void finish_conn(std::uint64_t token) {
    std::lock_guard<std::mutex> lk(mu);
    const auto it = conn_live.find(token);
    if (it != conn_live.end()) {
      conn_zombies.push_back(std::move(it->second));
      conn_live.erase(it);
    }
  }

  void reap_conn_zombies() {
    std::vector<std::thread> dead;
    {
      std::lock_guard<std::mutex> lk(mu);
      dead.swap(conn_zombies);
    }
    for (std::thread& t : dead) {
      if (t.joinable()) t.join();
    }
  }

  void accept_loop() {
    std::vector<pollfd> fds;
    if (unix_fd >= 0) fds.push_back({unix_fd, POLLIN, 0});
    if (tcp_fd >= 0) fds.push_back({tcp_fd, POLLIN, 0});
    for (;;) {
      {
        std::lock_guard<std::mutex> lk(mu);
        if (stopping) return;
      }
      reap_conn_zombies();
      const int n = ::poll(fds.data(), fds.size(), /*ms=*/200);
      if (n <= 0) continue;  // timeout or EINTR: re-check stopping
      for (const pollfd& p : fds) {
        if ((p.revents & POLLIN) == 0) continue;
        const int conn = ::accept(p.fd, nullptr, nullptr);
        if (conn < 0) continue;
        const std::string client = peer_identity(conn, p.fd == tcp_fd);
        std::lock_guard<std::mutex> lk(mu);
        if (stopping) {
          close_quiet(conn);
          continue;
        }
        conns.insert(conn);
        const std::uint64_t token = next_conn_token++;
        conn_live.emplace(token, std::thread([this, conn, client, token] {
                            handle_connection(conn, client);
                            finish_conn(token);
                          }));
      }
    }
  }
};

SweepServer::SweepServer(ServerOptions opts) : impl_(std::make_unique<Impl>(std::move(opts))) {
  Impl& s = *impl_;
  STTGPU_REQUIRE(!s.opts.cache_path.empty(), "serve: cache= must not be empty");
  s.workers = s.opts.jobs == 0 ? sim::default_jobs() : s.opts.jobs;

  store::StoreOptions so;
  so.log = s.opts.log;
  // A long-lived daemon must not pause submissions for a compaction sweep;
  // `sttgpu store compact` remains available offline.
  so.auto_compact = false;
  s.store = std::make_unique<store::ResultStore>(
      store::ResultStore::derive_path(s.opts.cache_path), so);
  s.store->set_on_apply([impl = impl_.get()](const store::PutRecord&) {
    impl->n_applied.fetch_add(1, std::memory_order_relaxed);
  });

  // Open (and recover) the submission journal before listening: replayed
  // ids must never be reissued, so the id counter seeds past the journal.
  s.journal = std::make_unique<Journal>(Journal::derive_path(s.opts.cache_path),
                                        s.opts.log);
  s.next_id = s.journal->max_id() + 1;

  s.bind_unix();
  if (s.opts.tcp_port > 0) {
    try {
      s.bind_tcp();
    } catch (...) {
      close_quiet(s.unix_fd);
      ::unlink(s.opts.socket_path.c_str());
      throw;
    }
  }
}

SweepServer::~SweepServer() {
  try {
    stop();
  } catch (...) {
  }
}

void SweepServer::start() {
  Impl& s = *impl_;
  {
    std::lock_guard<std::mutex> lk(s.mu);
    STTGPU_REQUIRE(!s.started, "server already started");
    s.started = true;
  }
  // Replay before spawning threads: recovered work is already queued when
  // the first worker wakes, and no client can race the replayed ids.
  s.replay_journal();
  s.accept_thread = std::thread([&s] { s.accept_loop(); });
  for (unsigned i = 0; i < s.workers; ++i) {
    s.worker_threads.emplace_back([&s] { s.worker_loop(); });
  }
  s.say("listening on " + s.opts.socket_path +
        (s.tcp_fd >= 0 ? " and 127.0.0.1:" + std::to_string(s.opts.tcp_port) : "") +
        " (" + std::to_string(s.workers) + " worker" + (s.workers == 1 ? "" : "s") +
        ", store " + s.store->path() + ")");
}

void SweepServer::stop() {
  Impl& s = *impl_;
  {
    std::lock_guard<std::mutex> lk(s.mu);
    if (s.stopped) return;
    s.stopped = true;
    s.stopping = true;
  }
  s.cv_queue.notify_all();
  s.cv_events.notify_all();
  if (s.accept_thread.joinable()) s.accept_thread.join();
  close_quiet(s.unix_fd);
  close_quiet(s.tcp_fd);
  ::unlink(s.opts.socket_path.c_str());
  // Drain: workers finish every queued and running task (completing their
  // submissions and publishing CSV exports) before exiting.
  for (std::thread& t : s.worker_threads) {
    if (t.joinable()) t.join();
  }
  // Idle connections still waiting for a request see EOF; watchers have
  // already streamed their terminal event (every submission is complete).
  {
    std::lock_guard<std::mutex> lk(s.mu);
    for (const int fd : s.conns) ::shutdown(fd, SHUT_RDWR);
  }
  // Handlers unblock (EOF / poll wake), move themselves to the zombie list,
  // and are joined here; loop until the live registry drains.
  for (;;) {
    std::vector<std::thread> dead;
    bool live = false;
    {
      std::lock_guard<std::mutex> lk(s.mu);
      dead.swap(s.conn_zombies);
      live = !s.conn_live.empty();
    }
    for (std::thread& t : dead) {
      if (t.joinable()) t.join();
    }
    if (!live && dead.empty()) break;
    if (dead.empty()) std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  s.say("drained and stopped");
}

const std::string& SweepServer::socket_path() const { return impl_->opts.socket_path; }

ServerStats SweepServer::stats() const { return impl_->stats_snapshot(); }

}  // namespace sttgpu::serve
