#include "serve/server.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/cancel.hpp"
#include "common/config.hpp"
#include "common/error.hpp"
#include "common/json.hpp"
#include "common/telemetry.hpp"
#include "serve/protocol.hpp"
#include "sim/executor.hpp"
#include "sim/knobs.hpp"
#include "sim/runner.hpp"
#include "sim/supervisor.hpp"
#include "store/record.hpp"
#include "store/result_store.hpp"
#include "workload/benchmarks.hpp"

namespace sttgpu::serve {

namespace {

/// Splits a comma-separated knob value; empty input yields an empty list.
std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::size_t begin = 0;
  while (begin <= s.size()) {
    const std::size_t comma = s.find(',', begin);
    const std::size_t end = comma == std::string::npos ? s.size() : comma;
    if (end > begin) out.push_back(s.substr(begin, end - begin));
    if (comma == std::string::npos) break;
    begin = comma + 1;
  }
  return out;
}

int close_quiet(int fd) noexcept { return fd >= 0 ? ::close(fd) : 0; }

}  // namespace

struct SweepServer::Impl {
  // --- model ---------------------------------------------------------------

  /// One unique (fingerprint, scale, arch, benchmark) simulation in flight.
  /// Shared by every submission that wants the row; simulated exactly once.
  struct Task {
    std::string key;  ///< store_key — the dedupe identity
    sim::Architecture arch_id{};
    std::string arch;
    std::string bench;
    std::uint64_t fp = 0;
    sim::RunOptions base;  ///< scale + simulation-shaping knobs, no hooks
    bool want_telemetry = false;
    Cycle interval = 50000;
    CancelToken token;                    ///< supervisor external source
    std::vector<std::uint64_t> waiters;   ///< submission ids awaiting the row
  };

  struct Submission {
    std::uint64_t id = 0;
    std::uint64_t fp = 0;
    double scale = 0.5;
    std::string scale17;
    sttl2::FaultInjectionConfig faults;
    std::vector<std::pair<std::string, std::string>> pairs;  ///< (arch, bench)
    std::set<std::string> pending;  ///< outstanding task keys
    std::size_t total = 0, hits = 0, simulated = 0, failed = 0;
    bool touched_store = false;  ///< any task simulated → re-export the CSV
    std::string state = "running";  ///< running|complete|failed|cancelled
    bool complete = false;
    std::vector<std::string> events;  ///< NDJSON backlog for watchers
  };

  explicit Impl(ServerOptions o) : opts(std::move(o)) {}

  ServerOptions opts;
  std::unique_ptr<store::ResultStore> store;
  int unix_fd = -1;
  int tcp_fd = -1;
  unsigned workers = 1;

  std::mutex mu;
  std::condition_variable cv_queue;   ///< workers wait for tasks
  std::condition_variable cv_events;  ///< watchers wait for event appends
  bool stopping = false;
  bool stopped = false;
  bool started = false;
  std::uint64_t next_id = 1;
  std::map<std::uint64_t, Submission> submissions;
  std::map<std::string, std::shared_ptr<Task>> inflight;  ///< key → task
  std::deque<std::shared_ptr<Task>> queue;
  std::set<int> conns;  ///< open connection fds (shutdown on stop)

  // Monotonic counters (mu-free reads for the on_apply hook).
  std::atomic<std::uint64_t> n_submissions{0}, n_simulated{0}, n_failed{0},
      n_store_hits{0}, n_attached{0}, n_applied{0}, n_own_puts{0};

  std::thread accept_thread;
  std::vector<std::thread> worker_threads;
  std::vector<std::thread> conn_threads;

  void say(const std::string& line) const {
    if (opts.log) opts.log("[serve] " + line);
  }

  // --- listeners -----------------------------------------------------------

  void bind_unix() {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (opts.socket_path.size() >= sizeof(addr.sun_path)) {
      throw BindError("socket path too long: " + opts.socket_path);
    }
    std::strncpy(addr.sun_path, opts.socket_path.c_str(), sizeof(addr.sun_path) - 1);

    // A leftover socket file from a dead server would make bind() fail with
    // EADDRINUSE forever. Probe it: a live server accepts the connection
    // (that is a real conflict); a dead one refuses, and the stale file is
    // safe to reclaim.
    const int probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (probe >= 0) {
      if (::connect(probe, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) == 0) {
        close_quiet(probe);
        throw BindError("another server is already listening on " + opts.socket_path);
      }
      close_quiet(probe);
      ::unlink(opts.socket_path.c_str());
    }

    unix_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (unix_fd < 0) throw BindError(std::string("socket: ") + std::strerror(errno));
    if (::bind(unix_fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
      const std::string why = std::strerror(errno);
      close_quiet(unix_fd);
      unix_fd = -1;
      throw BindError("cannot bind " + opts.socket_path + ": " + why);
    }
    if (::listen(unix_fd, 16) != 0) {
      const std::string why = std::strerror(errno);
      close_quiet(unix_fd);
      unix_fd = -1;
      throw BindError("cannot listen on " + opts.socket_path + ": " + why);
    }
  }

  void bind_tcp() {
    tcp_fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (tcp_fd < 0) throw BindError(std::string("socket: ") + std::strerror(errno));
    const int one = 1;
    ::setsockopt(tcp_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // never a public listener
    addr.sin_port = htons(static_cast<std::uint16_t>(opts.tcp_port));
    if (::bind(tcp_fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0 ||
        ::listen(tcp_fd, 16) != 0) {
      const std::string why = std::strerror(errno);
      close_quiet(tcp_fd);
      tcp_fd = -1;
      throw BindError("cannot listen on loopback port " + std::to_string(opts.tcp_port) +
                      ": " + why);
    }
  }

  // --- event plumbing (mu held) --------------------------------------------

  void append_event_locked(Submission& sub, const std::string& line) {
    sub.events.push_back(line);
    cv_events.notify_all();
  }

  static std::string task_event(const char* event, const Task& t, const char* status,
                                const std::string& detail_key,
                                const std::string& detail) {
    std::ostringstream os;
    JsonWriter w(os);
    w.begin_object();
    w.key("event").value(event);
    w.key("arch").value(t.arch);
    w.key("benchmark").value(t.bench);
    if (status != nullptr) w.key("status").value(status);
    if (!detail_key.empty()) w.key(detail_key).value(detail);
    w.end_object();
    return os.str();
  }

  std::string complete_event(const Submission& sub) const {
    std::ostringstream os;
    JsonWriter w(os);
    w.begin_object();
    w.key("event").value("complete");
    w.key("id").value(sub.id);
    w.key("state").value(sub.state);
    w.key("total").value(static_cast<std::uint64_t>(sub.total));
    w.key("hits").value(static_cast<std::uint64_t>(sub.hits));
    w.key("simulated").value(static_cast<std::uint64_t>(sub.simulated));
    w.key("failed").value(static_cast<std::uint64_t>(sub.failed));
    w.end_object();
    return os.str();
  }

  /// Marks @p sub terminal and emits its "complete" event. mu held.
  void complete_submission_locked(Submission& sub) {
    sub.complete = true;
    if (sub.state == "running") sub.state = sub.failed > 0 ? "failed" : "complete";
    append_event_locked(sub, complete_event(sub));
    say("submission " + std::to_string(sub.id) + " " + sub.state + " (" +
        std::to_string(sub.hits) + " hits, " + std::to_string(sub.simulated) +
        " simulated, " + std::to_string(sub.failed) + " failed)");
  }

  // --- CSV export (call WITHOUT mu) ----------------------------------------

  /// The exact export sequence run_matrix performs after a sweep, so the
  /// CSV this daemon publishes is byte-identical to a direct run's.
  void export_csv(std::uint64_t fp, double scale,
                  const sttl2::FaultInjectionConfig& faults) {
    try {
      store->refresh();
      std::vector<sim::Metrics> all;
      for (const store::ResultRow& r : store->rows_for(fp, scale)) {
        all.push_back(sim::from_store_row(r));
      }
      sim::save_cache(opts.cache_path, scale, all, faults);
    } catch (const std::exception& e) {
      // The WAL already holds every row durably; a failed export is a
      // nuisance, not data loss — the next completion retries.
      say(std::string("CSV export failed: ") + e.what());
    }
  }

  // --- task lifecycle ------------------------------------------------------

  /// Records a finished task into every waiting submission. mu held.
  /// Returns the (fp, scale, faults) export jobs for submissions that just
  /// completed (performed by the caller after releasing mu).
  struct ExportJob {
    std::uint64_t fp;
    double scale;
    sttl2::FaultInjectionConfig faults;
  };
  /// Removes @p t from the in-flight table iff it is still the registered
  /// task for its key — a cancelled task may have been replaced by a fresh
  /// one for the same config, which must not be evicted. mu held.
  void drop_inflight_locked(const std::shared_ptr<Task>& t) {
    const auto it = inflight.find(t->key);
    if (it != inflight.end() && it->second == t) inflight.erase(it);
  }

  std::vector<ExportJob> finish_task_locked(const std::shared_ptr<Task>& t,
                                            const char* status,
                                            const std::string& error,
                                            const store::ResultRow* row) {
    drop_inflight_locked(t);
    std::vector<ExportJob> exports;
    for (const std::uint64_t id : t->waiters) {
      const auto it = submissions.find(id);
      if (it == submissions.end()) continue;
      Submission& sub = it->second;
      sub.pending.erase(t->key);
      if (row != nullptr) {
        ++sub.simulated;
        sub.touched_store = true;
        append_event_locked(
            sub, task_event("done", *t, status, "row",
                            store::encode_put(t->fp, sub.scale17, *row)));
      } else {
        ++sub.failed;
        append_event_locked(sub, task_event("failed", *t, status, "error", error));
      }
      if (sub.pending.empty() && !sub.complete) {
        complete_submission_locked(sub);
        if (sub.touched_store) exports.push_back({sub.fp, sub.scale, sub.faults});
      }
    }
    return exports;
  }

  /// Emits a telemetry frame event to every waiter. Runs on the simulating
  /// thread via Telemetry::set_on_frame.
  void emit_telemetry(const Task& t, const Telemetry& tel, std::size_t frame) {
    std::ostringstream os;
    JsonWriter w(os);
    w.begin_object();
    w.key("event").value("telemetry");
    w.key("arch").value(t.arch);
    w.key("benchmark").value(t.bench);
    w.key("cycle").value(static_cast<std::uint64_t>(tel.frame_cycle(frame)));
    w.key("counters").begin_object();
    for (std::size_t k = 0; k < tel.track_count(); ++k) {
      if (!tel.track_is_counter(k)) continue;
      const auto& s = tel.track_samples(k);
      const double prev = frame > 0 ? s[frame - 1] : 0.0;
      w.key(tel.track_name(k)).value(s[frame] - prev);
    }
    w.end_object();
    w.key("gauges").begin_object();
    for (std::size_t k = 0; k < tel.track_count(); ++k) {
      if (tel.track_is_counter(k)) continue;
      w.key(tel.track_name(k)).value(tel.track_samples(k)[frame]);
    }
    w.end_object();
    w.end_object();
    const std::string line = os.str();
    std::lock_guard<std::mutex> lk(mu);
    for (const std::uint64_t id : t.waiters) {
      const auto it = submissions.find(id);
      if (it != submissions.end()) append_event_locked(it->second, line);
    }
  }

  void run_task(const std::shared_ptr<Task>& t) {
    // One supervised job per task: the per-task token is the supervisor's
    // external cancellation source, so the `cancel` verb, the watchdog, the
    // per-job timeout, and retry/backoff are the matrix runner's own
    // semantics. keep_going: the outcome is recorded per task; a failing
    // task must never tear the service down.
    sim::SupervisorOptions sup;
    sup.external = &t->token;
    sup.watchdog_s = opts.watchdog_s;
    sup.job_timeout_s = opts.job_timeout_s;
    sup.retries = opts.retries;
    sup.keep_going = true;

    std::optional<store::ResultRow> row;
    sim::Job job;
    job.label = t->arch + "/" + t->bench;
    job.supervised = [this, &t, &row](const sim::JobControl& ctl) {
      sim::RunOptions ro = t->base;
      ro.cancel = ctl.cancel;
      ro.heartbeat = ctl.heartbeat;
      std::unique_ptr<Telemetry> tel;
      if (t->want_telemetry) {
        tel = std::make_unique<Telemetry>(t->interval);
        tel->set_on_frame([this, &t](const Telemetry& T, std::size_t frame) {
          emit_telemetry(*t, T, frame);
        });
        ro.telemetry = tel.get();
      }
      const sim::Metrics m = sim::run_one(t->arch_id, t->bench, ro);
      {
        // Durable write-through before the row is announced; the critical
        // section keeps a cooperative watchdog kill from landing between
        // "simulated" and "persisted".
        const sim::CriticalSection cs(ctl);
        n_own_puts.fetch_add(1, std::memory_order_relaxed);
        store->put(t->fp, t->base.scale, sim::to_store_row(m));
      }
      row = sim::to_store_row(m);
    };
    std::vector<sim::Job> jobs;
    jobs.push_back(std::move(job));
    const sim::SupervisedResult res = sim::run_supervised(std::move(jobs), 1, sup);
    const sim::JobOutcome& o = res.outcomes.at(0);

    std::vector<ExportJob> exports;
    {
      std::lock_guard<std::mutex> lk(mu);
      if (o.status == sim::JobStatus::kOk && row) {
        n_simulated.fetch_add(1, std::memory_order_relaxed);
        exports = finish_task_locked(t, "ok", "", &*row);
      } else {
        n_failed.fetch_add(1, std::memory_order_relaxed);
        exports =
            finish_task_locked(t, sim::job_status_name(o.status), o.error, nullptr);
      }
    }
    for (const ExportJob& e : exports) export_csv(e.fp, e.scale, e.faults);
  }

  void worker_loop() {
    for (;;) {
      std::shared_ptr<Task> t;
      {
        std::unique_lock<std::mutex> lk(mu);
        cv_queue.wait(lk, [this] { return stopping || !queue.empty(); });
        if (queue.empty()) return;  // stopping and drained
        t = queue.front();
        queue.pop_front();
        if (t->waiters.empty()) {
          // Every submitter cancelled before the task started; nothing to
          // report to and nothing worth simulating.
          drop_inflight_locked(t);
          n_failed.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        for (const std::uint64_t id : t->waiters) {
          const auto it = submissions.find(id);
          if (it != submissions.end()) {
            append_event_locked(it->second, task_event("start", *t, nullptr, "", ""));
          }
        }
      }
      run_task(t);
    }
  }

  // --- verb handlers -------------------------------------------------------

  /// Shared options plumbing: JSON object → Config → registry validation.
  static Config options_config(const JsonValue& req, sim::KnobCommand cmd,
                               const std::string& name) {
    const JsonValue* ov = req.find("options");
    Config cfg = ov != nullptr ? sim::config_from_json(*ov) : Config{};
    sim::validate_knobs(cfg, cmd, name);
    return cfg;
  }

  std::string handle_submit(const JsonValue& req) {
    constexpr auto kCmd = sim::kKnobSubmit;
    const Config cfg = options_config(req, kCmd, "submit");
    const sim::RunOptions base = sim::run_options_from_knobs(cfg, kCmd);
    const bool want_telemetry = sim::knob_bool(cfg, kCmd, "telemetry");
    const std::int64_t interval = sim::knob_int(cfg, kCmd, "interval");
    STTGPU_REQUIRE(interval > 0, "interval= must be a positive cycle count");

    std::vector<sim::Architecture> archs;
    const std::string arch_csv = sim::knob_string(cfg, kCmd, "archs");
    if (arch_csv.empty()) {
      archs = sim::all_architectures();
    } else {
      for (const std::string& a : split_csv(arch_csv)) {
        archs.push_back(sim::architecture_from_string(a));
      }
    }
    std::vector<std::string> benchmarks = split_csv(sim::knob_string(cfg, kCmd, "benchmarks"));
    const std::vector<std::string> known = workload::benchmark_names();
    if (benchmarks.empty()) {
      benchmarks = known;
    } else {
      for (const std::string& b : benchmarks) {
        STTGPU_REQUIRE(std::find(known.begin(), known.end(), b) != known.end(),
                       "unknown benchmark '" + b + "' (see `sttgpu list`)");
      }
    }

    const std::uint64_t fp = sim::config_fingerprint(base.faults);
    const std::string scale17 = store::scale_text(base.scale);
    // Observe rows other processes appended before deciding what to run.
    store->refresh();

    std::size_t scheduled = 0, attach = 0;
    std::uint64_t id = 0;
    {
      std::lock_guard<std::mutex> lk(mu);
      STTGPU_REQUIRE(!stopping, "server is draining — submission refused");
      id = next_id++;
      Submission& sub = submissions[id];
      sub.id = id;
      sub.fp = fp;
      sub.scale = base.scale;
      sub.scale17 = scale17;
      sub.faults = base.faults;
      for (const sim::Architecture a : archs) {
        const std::string arch_name = sim::make_arch(a).name;
        for (const std::string& bench : benchmarks) {
          sub.pairs.emplace_back(arch_name, bench);
          const std::string key = store::store_key(fp, scale17, arch_name, bench);
          const auto live = inflight.find(key);
          if (live != inflight.end()) {
            live->second->waiters.push_back(id);
            sub.pending.insert(key);
            ++attach;
            n_attached.fetch_add(1, std::memory_order_relaxed);
            continue;
          }
          if (store->get(fp, base.scale, arch_name, bench)) {
            ++sub.hits;
            n_store_hits.fetch_add(1, std::memory_order_relaxed);
            continue;
          }
          auto t = std::make_shared<Task>();
          t->key = key;
          t->arch_id = a;
          t->arch = arch_name;
          t->bench = bench;
          t->fp = fp;
          t->base = base;
          t->want_telemetry = want_telemetry;
          t->interval = static_cast<Cycle>(interval);
          t->waiters.push_back(id);
          inflight.emplace(key, t);
          queue.push_back(std::move(t));
          sub.pending.insert(key);
          ++scheduled;
        }
      }
      sub.total = sub.pairs.size();
      n_submissions.fetch_add(1, std::memory_order_relaxed);

      {
        std::ostringstream os;
        JsonWriter w(os);
        w.begin_object();
        w.key("event").value("scheduled");
        w.key("id").value(id);
        w.key("total").value(static_cast<std::uint64_t>(sub.total));
        w.key("hits").value(static_cast<std::uint64_t>(sub.hits));
        w.key("scheduled").value(static_cast<std::uint64_t>(scheduled));
        w.key("attached").value(static_cast<std::uint64_t>(attach));
        w.end_object();
        append_event_locked(sub, os.str());
      }
      if (sub.pending.empty()) complete_submission_locked(sub);  // pure hit
      say("submit " + std::to_string(id) + ": " + std::to_string(sub.total) +
          " configs, " + std::to_string(sub.hits) + " store hits, " +
          std::to_string(scheduled) + " scheduled, " + std::to_string(attach) +
          " attached");
    }
    cv_queue.notify_all();

    std::ostringstream os;
    JsonWriter w(os);
    w.begin_object();
    w.key("protocol_version").value(kProtocolVersion);
    w.key("ok").value(true);
    w.key("id").value(id);
    w.key("total").value(static_cast<std::uint64_t>(archs.size() * benchmarks.size()));
    w.key("hits").value(static_cast<std::uint64_t>(archs.size() * benchmarks.size() -
                                                   scheduled - attach));
    w.key("scheduled").value(static_cast<std::uint64_t>(scheduled));
    w.key("attached").value(static_cast<std::uint64_t>(attach));
    w.end_object();
    return os.str();
  }

  ServerStats stats_snapshot() {
    ServerStats s;
    s.submissions = n_submissions.load(std::memory_order_relaxed);
    s.tasks_simulated = n_simulated.load(std::memory_order_relaxed);
    s.tasks_failed = n_failed.load(std::memory_order_relaxed);
    s.store_hits = n_store_hits.load(std::memory_order_relaxed);
    s.attached = n_attached.load(std::memory_order_relaxed);
    const std::uint64_t applied = n_applied.load(std::memory_order_relaxed);
    const std::uint64_t own = n_own_puts.load(std::memory_order_relaxed);
    s.merged_rows = applied > own ? applied - own : 0;
    s.store_rows = store->size();
    s.workers = workers;
    std::lock_guard<std::mutex> lk(mu);
    s.queued = queue.size();
    return s;
  }

  std::string handle_status(const JsonValue& req) {
    const JsonValue* idv = req.find("id");
    const std::uint64_t id = idv != nullptr ? static_cast<std::uint64_t>(idv->as_int()) : 0;
    std::ostringstream os;
    JsonWriter w(os);
    if (id == 0) {
      const ServerStats s = stats_snapshot();
      w.begin_object();
      w.key("protocol_version").value(kProtocolVersion);
      w.key("ok").value(true);
      w.key("server").begin_object();
      w.key("submissions").value(s.submissions);
      w.key("tasks_simulated").value(s.tasks_simulated);
      w.key("tasks_failed").value(s.tasks_failed);
      w.key("store_hits").value(s.store_hits);
      w.key("attached").value(s.attached);
      w.key("merged_rows").value(s.merged_rows);
      w.key("queued").value(static_cast<std::uint64_t>(s.queued));
      w.key("store_rows").value(static_cast<std::uint64_t>(s.store_rows));
      w.key("workers").value(s.workers);
      w.end_object();
      w.end_object();
      return os.str();
    }
    std::lock_guard<std::mutex> lk(mu);
    const auto it = submissions.find(id);
    STTGPU_REQUIRE(it != submissions.end(),
                   "no submission with id " + std::to_string(id));
    const Submission& sub = it->second;
    w.begin_object();
    w.key("protocol_version").value(kProtocolVersion);
    w.key("ok").value(true);
    w.key("id").value(sub.id);
    w.key("state").value(sub.state);
    w.key("total").value(static_cast<std::uint64_t>(sub.total));
    w.key("hits").value(static_cast<std::uint64_t>(sub.hits));
    w.key("simulated").value(static_cast<std::uint64_t>(sub.simulated));
    w.key("failed").value(static_cast<std::uint64_t>(sub.failed));
    w.key("pending").value(static_cast<std::uint64_t>(sub.pending.size()));
    w.end_object();
    return os.str();
  }

  std::string handle_cancel(const JsonValue& req) {
    const std::uint64_t id = static_cast<std::uint64_t>(req.at("id").as_int());
    STTGPU_REQUIRE(id > 0, "cancel needs id=<submission>");
    std::lock_guard<std::mutex> lk(mu);
    const auto it = submissions.find(id);
    STTGPU_REQUIRE(it != submissions.end(),
                   "no submission with id " + std::to_string(id));
    Submission& sub = it->second;
    if (!sub.complete) {
      // Detach from every outstanding task; a task nobody waits for any
      // more is cancelled (running: via its token at the next supervision
      // checkpoint; queued: skipped at pop). Tasks other submissions still
      // wait on keep running — cancelling one client never steals another
      // client's result.
      for (const std::string& key : sub.pending) {
        const auto task = inflight.find(key);
        if (task == inflight.end()) continue;
        auto& waiters = task->second->waiters;
        waiters.erase(std::remove(waiters.begin(), waiters.end(), id), waiters.end());
        if (waiters.empty()) {
          // Nobody wants the row any more: cancel the run (queued tasks are
          // skipped at pop) and un-register the key so a later submission
          // of the same config schedules a fresh task.
          task->second->token.request(CancelReason::kUser);
          inflight.erase(task);
        }
      }
      sub.failed += sub.pending.size();
      sub.pending.clear();
      sub.state = "cancelled";
      complete_submission_locked(sub);
    }
    std::ostringstream os;
    JsonWriter w(os);
    w.begin_object();
    w.key("protocol_version").value(kProtocolVersion);
    w.key("ok").value(true);
    w.key("id").value(sub.id);
    w.key("state").value(sub.state);
    w.end_object();
    return os.str();
  }

  std::string handle_result(const JsonValue& req) {
    const JsonValue* idv = req.find("id");
    const std::uint64_t id = idv != nullptr ? static_cast<std::uint64_t>(idv->as_int()) : 0;

    std::uint64_t fp = 0;
    double scale = 0.5;
    std::string scale17;
    std::vector<std::pair<std::string, std::string>> pairs;
    std::string state = "complete";
    if (id > 0) {
      std::lock_guard<std::mutex> lk(mu);
      const auto it = submissions.find(id);
      STTGPU_REQUIRE(it != submissions.end(),
                     "no submission with id " + std::to_string(id));
      const Submission& sub = it->second;
      fp = sub.fp;
      scale = sub.scale;
      scale17 = sub.scale17;
      pairs = sub.pairs;
      state = sub.state;
    } else {
      // Row lookup by (arch, benchmark, scale): the same registry rows the
      // CLI validates against, baseline (fault-free) fingerprint.
      constexpr auto kCmd = sim::kKnobResult;
      const Config cfg = options_config(req, kCmd, "result");
      const sim::RunOptions ro = sim::run_options_from_knobs(cfg, kCmd);
      const std::string arch = sim::knob_string(cfg, kCmd, "arch");
      // Resolve through the registry so an unknown arch fails loudly here.
      sim::architecture_from_string(arch);
      fp = sim::config_fingerprint(ro.faults);
      scale = ro.scale;
      scale17 = store::scale_text(scale);
      pairs.emplace_back(arch, sim::knob_string(cfg, kCmd, "benchmark"));
    }

    store->refresh();
    std::vector<std::string> rows;
    std::vector<std::string> missing;
    for (const auto& [arch, bench] : pairs) {
      const auto row = store->get(fp, scale, arch, bench);
      if (row) {
        rows.push_back(store::encode_put(fp, scale17, *row));
      } else {
        missing.push_back(arch + "/" + bench);
      }
    }
    STTGPU_REQUIRE(id > 0 || !rows.empty(),
                   "no stored result for " + missing.front() + " at scale " + scale17);

    std::ostringstream os;
    JsonWriter w(os);
    w.begin_object();
    w.key("protocol_version").value(kProtocolVersion);
    w.key("ok").value(true);
    if (id > 0) w.key("id").value(id);
    w.key("state").value(state);
    w.key("scale").value(scale17);
    w.key("rows").begin_array();
    for (const std::string& r : rows) w.value(r);
    w.end_array();
    w.key("missing").begin_array();
    for (const std::string& m : missing) w.value(m);
    w.end_array();
    w.end_object();
    return os.str();
  }

  void handle_watch(int fd, const JsonValue& req) {
    const std::uint64_t id = static_cast<std::uint64_t>(req.at("id").as_int());
    {
      std::lock_guard<std::mutex> lk(mu);
      STTGPU_REQUIRE(submissions.find(id) != submissions.end(),
                     "no submission with id " + std::to_string(id));
    }
    {
      std::ostringstream os;
      JsonWriter w(os);
      w.begin_object();
      w.key("protocol_version").value(kProtocolVersion);
      w.key("ok").value(true);
      w.key("id").value(id);
      w.end_object();
      write_frame(fd, os.str());
    }
    // Replay the backlog, then follow live appends. The terminal "complete"
    // event is always the last line; the client stops there.
    std::size_t idx = 0;
    for (;;) {
      std::vector<std::string> batch;
      bool done = false;
      {
        std::unique_lock<std::mutex> lk(mu);
        Submission& sub = submissions.at(id);
        cv_events.wait(lk, [&] { return sub.events.size() > idx || sub.complete; });
        while (idx < sub.events.size()) batch.push_back(sub.events[idx++]);
        done = sub.complete && idx == sub.events.size();
      }
      for (const std::string& line : batch) write_event_line(fd, line);
      if (done) return;
    }
  }

  // --- connection handling -------------------------------------------------

  void handle_connection(int fd) {
    try {
      const std::optional<std::string> payload = read_frame(fd);
      if (payload) {
        const JsonValue req = parse_json(*payload);
        require_version(req);
        const std::string verb = req.at("verb").as_string();
        if (verb == "watch") {
          handle_watch(fd, req);
        } else if (verb == "submit") {
          write_frame(fd, handle_submit(req));
        } else if (verb == "status") {
          write_frame(fd, handle_status(req));
        } else if (verb == "cancel") {
          write_frame(fd, handle_cancel(req));
        } else if (verb == "result") {
          write_frame(fd, handle_result(req));
        } else {
          throw SimError("unknown verb '" + verb +
                         "' (expected submit, status, watch, cancel or result)");
        }
      }
    } catch (const ProtocolMismatch& e) {
      try {
        write_frame(fd, error_response(e.what(), /*protocol_mismatch=*/true));
      } catch (...) {
      }
    } catch (const std::exception& e) {
      try {
        write_frame(fd, error_response(e.what()));
      } catch (...) {
      }
    }
    {
      std::lock_guard<std::mutex> lk(mu);
      conns.erase(fd);
    }
    close_quiet(fd);
  }

  void accept_loop() {
    std::vector<pollfd> fds;
    if (unix_fd >= 0) fds.push_back({unix_fd, POLLIN, 0});
    if (tcp_fd >= 0) fds.push_back({tcp_fd, POLLIN, 0});
    for (;;) {
      {
        std::lock_guard<std::mutex> lk(mu);
        if (stopping) return;
      }
      const int n = ::poll(fds.data(), fds.size(), /*ms=*/200);
      if (n <= 0) continue;  // timeout or EINTR: re-check stopping
      for (const pollfd& p : fds) {
        if ((p.revents & POLLIN) == 0) continue;
        const int conn = ::accept(p.fd, nullptr, nullptr);
        if (conn < 0) continue;
        std::lock_guard<std::mutex> lk(mu);
        if (stopping) {
          close_quiet(conn);
          continue;
        }
        conns.insert(conn);
        conn_threads.emplace_back([this, conn] { handle_connection(conn); });
      }
    }
  }
};

SweepServer::SweepServer(ServerOptions opts) : impl_(std::make_unique<Impl>(std::move(opts))) {
  Impl& s = *impl_;
  STTGPU_REQUIRE(!s.opts.cache_path.empty(), "serve: cache= must not be empty");
  s.workers = s.opts.jobs == 0 ? sim::default_jobs() : s.opts.jobs;

  store::StoreOptions so;
  so.log = s.opts.log;
  // A long-lived daemon must not pause submissions for a compaction sweep;
  // `sttgpu store compact` remains available offline.
  so.auto_compact = false;
  s.store = std::make_unique<store::ResultStore>(
      store::ResultStore::derive_path(s.opts.cache_path), so);
  s.store->set_on_apply([impl = impl_.get()](const store::PutRecord&) {
    impl->n_applied.fetch_add(1, std::memory_order_relaxed);
  });

  s.bind_unix();
  if (s.opts.tcp_port > 0) {
    try {
      s.bind_tcp();
    } catch (...) {
      close_quiet(s.unix_fd);
      ::unlink(s.opts.socket_path.c_str());
      throw;
    }
  }
}

SweepServer::~SweepServer() {
  try {
    stop();
  } catch (...) {
  }
}

void SweepServer::start() {
  Impl& s = *impl_;
  {
    std::lock_guard<std::mutex> lk(s.mu);
    STTGPU_REQUIRE(!s.started, "server already started");
    s.started = true;
  }
  s.accept_thread = std::thread([&s] { s.accept_loop(); });
  for (unsigned i = 0; i < s.workers; ++i) {
    s.worker_threads.emplace_back([&s] { s.worker_loop(); });
  }
  s.say("listening on " + s.opts.socket_path +
        (s.tcp_fd >= 0 ? " and 127.0.0.1:" + std::to_string(s.opts.tcp_port) : "") +
        " (" + std::to_string(s.workers) + " worker" + (s.workers == 1 ? "" : "s") +
        ", store " + s.store->path() + ")");
}

void SweepServer::stop() {
  Impl& s = *impl_;
  {
    std::lock_guard<std::mutex> lk(s.mu);
    if (s.stopped) return;
    s.stopped = true;
    s.stopping = true;
  }
  s.cv_queue.notify_all();
  s.cv_events.notify_all();
  if (s.accept_thread.joinable()) s.accept_thread.join();
  close_quiet(s.unix_fd);
  close_quiet(s.tcp_fd);
  ::unlink(s.opts.socket_path.c_str());
  // Drain: workers finish every queued and running task (completing their
  // submissions and publishing CSV exports) before exiting.
  for (std::thread& t : s.worker_threads) {
    if (t.joinable()) t.join();
  }
  // Idle connections still waiting for a request see EOF; watchers have
  // already streamed their terminal event (every submission is complete).
  {
    std::lock_guard<std::mutex> lk(s.mu);
    for (const int fd : s.conns) ::shutdown(fd, SHUT_RDWR);
  }
  for (std::thread& t : s.conn_threads) {
    if (t.joinable()) t.join();
  }
  s.say("drained and stopped");
}

const std::string& SweepServer::socket_path() const { return impl_->opts.socket_path; }

ServerStats SweepServer::stats() const { return impl_->stats_snapshot(); }

}  // namespace sttgpu::serve
