// Per-client round-robin work queue for the sweep service's admission
// control.
//
// A plain FIFO lets one greedy client front-load thousands of tasks and
// starve everyone behind it. FairQueue keeps one sub-queue per client
// identity (SO_PEERCRED uid/pid for unix-socket peers) and pops in rotating
// round-robin order, so a client submitting 1 config next to a client
// submitting 1000 still gets its task dispatched on the next free worker.
//
// Bookkeeping is bounded by *live* clients: a client's lane is dropped the
// moment its sub-queue drains, so a month of one-shot CLI submissions does
// not accrete empty deques. Not thread-safe — the server guards it with the
// same mutex that protects the rest of its scheduling state.
#pragma once

#include <cstddef>
#include <deque>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace sttgpu::serve {

template <typename T>
class FairQueue {
 public:
  /// Appends @p item to @p client's lane, creating the lane (at the back of
  /// the rotation) on first use.
  void push(const std::string& client, T item) {
    auto it = lanes_.find(client);
    if (it == lanes_.end()) {
      it = lanes_.emplace(client, std::deque<T>{}).first;
      rotation_.push_back(client);
    }
    it->second.push_back(std::move(item));
    ++size_;
  }

  /// Pops the next item in round-robin order across clients; nullopt when
  /// empty. Lanes drained by the pop are removed from the rotation.
  std::optional<T> pop() {
    while (!rotation_.empty()) {
      if (next_ >= rotation_.size()) next_ = 0;
      const auto it = lanes_.find(rotation_[next_]);
      if (it == lanes_.end() || it->second.empty()) {
        // Defensive only — the invariant is that every lane is non-empty.
        if (it != lanes_.end()) lanes_.erase(it);
        rotation_.erase(rotation_.begin() + static_cast<std::ptrdiff_t>(next_));
        continue;
      }
      T item = std::move(it->second.front());
      it->second.pop_front();
      --size_;
      if (it->second.empty()) {
        lanes_.erase(it);
        // Erasing at next_ leaves next_ pointing at the following client.
        rotation_.erase(rotation_.begin() + static_cast<std::ptrdiff_t>(next_));
      } else {
        ++next_;
      }
      return item;
    }
    return std::nullopt;
  }

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }
  std::size_t clients() const noexcept { return lanes_.size(); }

 private:
  std::map<std::string, std::deque<T>> lanes_;
  std::vector<std::string> rotation_;  ///< lane order; index next_ pops next
  std::size_t next_ = 0;
  std::size_t size_ = 0;
};

}  // namespace sttgpu::serve
