// Crash-recovery submission journal for the sweep service.
//
// The result store makes every *finished* row durable, but a daemon that is
// SIGKILLed mid-sweep still silently dropped everything it had accepted and
// not yet simulated. The journal closes that gap: an acknowledged
// submission is first recorded durably ("sub <id> <options-json>"), and only
// when every one of its rows has been put into the store — the moment the
// submission completes — is it retired ("done <id>"). On open, any `sub`
// without a matching `done` is an acknowledged-but-unfinished submission the
// restarted daemon replays before accepting new work: finished rows come
// back as warm store hits, the unfinished tail re-simulates.
//
// The file lives next to the result store ("x.csv" -> "x.journal") and
// reuses the store's CRC-framed WAL discipline verbatim (store/wal.hpp):
// fsync'd single-write appends, torn-tail truncation, bit-rot resync. Open
// compacts the log — retired and corrupt records are dropped by an atomic
// rewrite — so the journal stays proportional to *open* submissions, not to
// the daemon's lifetime.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace sttgpu::serve {

/// The journal cannot be opened/recovered (I/O failure, foreign format).
/// Mapped to exit code 9 by the CLI — a daemon must not start "recovered"
/// while silently ignoring the submissions it promised to keep.
class JournalError : public SimError {
 public:
  using SimError::SimError;
};

class Journal {
 public:
  /// "x.csv" -> "x.journal", mirroring ResultStore::derive_path.
  static std::string derive_path(const std::string& csv_path);

  /// Opens (creating if absent), recovers, and compacts the journal.
  /// Throws JournalError on I/O failure or a foreign/newer format marker.
  explicit Journal(std::string path, std::function<void(const std::string&)> log = {});
  ~Journal();

  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  struct Pending {
    std::uint64_t id = 0;
    std::string options_json;  ///< the submit's options object, as recorded
  };

  /// Acknowledged-but-unfinished submissions found at open, in id order.
  std::vector<Pending> recovered() const;

  /// Highest submission id ever journaled (0 on a fresh log) — the server
  /// seeds its id counter past it so replayed ids are never reissued.
  std::uint64_t max_id() const;

  /// Durably records an acknowledged submission BEFORE the ack is sent.
  /// Throws SimError on append failure (the submission must then be refused).
  void record_submission(std::uint64_t id, const std::string& options_json);

  /// Retires a submission once every row is durably in the store. Append
  /// failure is swallowed (replaying a finished submission is idempotent —
  /// it resolves as pure store hits).
  void record_done(std::uint64_t id) noexcept;

  struct Stats {
    std::size_t open = 0;     ///< submissions recorded and not yet retired
    std::size_t records = 0;  ///< records appended since open (sub + done)
    std::uint64_t bytes = 0;  ///< current file size
  };
  Stats stats() const;

  const std::string& path() const noexcept { return path_; }

 private:
  void say(const std::string& line) const;

  std::string path_;
  std::function<void(const std::string&)> log_;
  mutable std::mutex mu_;
  int fd_ = -1;
  std::map<std::uint64_t, std::string> open_;  ///< id -> options json
  std::vector<Pending> recovered_;
  std::uint64_t max_id_ = 0;
  std::size_t records_ = 0;
  std::uint64_t bytes_ = 0;
};

}  // namespace sttgpu::serve
