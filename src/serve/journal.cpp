#include "serve/journal.hpp"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <string_view>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "store/wal.hpp"

namespace sttgpu::serve {

namespace {

constexpr std::string_view kJournalMeta = "meta sttgpu-journal v1";

std::string sub_payload(std::uint64_t id, const std::string& options_json) {
  return "sub " + std::to_string(id) + " " + options_json;
}

std::string done_payload(std::uint64_t id) { return "done " + std::to_string(id); }

}  // namespace

std::string Journal::derive_path(const std::string& csv_path) {
  constexpr std::string_view kCsv = ".csv";
  if (csv_path.size() > kCsv.size() &&
      csv_path.compare(csv_path.size() - kCsv.size(), kCsv.size(), kCsv) == 0) {
    return csv_path.substr(0, csv_path.size() - kCsv.size()) + ".journal";
  }
  return csv_path + ".journal";
}

void Journal::say(const std::string& line) const {
  if (log_) log_("[serve] " + line);
}

Journal::Journal(std::string path, std::function<void(const std::string&)> log)
    : path_(std::move(path)), log_(std::move(log)) {
  fd_ = ::open(path_.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd_ < 0) {
    throw JournalError("cannot open journal " + path_ + ": " + std::strerror(errno));
  }

  // Read the whole log (journals are proportional to open submissions — a
  // handful of frames — so a full read is the simple, correct choice).
  std::string buf;
  {
    char chunk[4096];
    for (;;) {
      const ssize_t k = ::read(fd_, chunk, sizeof chunk);
      if (k < 0) {
        if (errno == EINTR) continue;
        const std::string why = std::strerror(errno);
        ::close(fd_);
        fd_ = -1;
        throw JournalError("cannot read journal " + path_ + ": " + why);
      }
      if (k == 0) break;
      buf.append(chunk, static_cast<std::size_t>(k));
    }
  }

  bool meta_seen = false;
  std::string bad_meta;
  std::size_t retired = 0;
  const auto on_record = [&](std::uint64_t, std::string_view payload) {
    if (payload.rfind("meta ", 0) == 0) {
      if (payload != kJournalMeta) {
        bad_meta = std::string(payload);
        return;
      }
      meta_seen = true;
      return;
    }
    if (payload.rfind("sub ", 0) == 0) {
      char* end = nullptr;
      const std::uint64_t id = std::strtoull(payload.data() + 4, &end, 10);
      if (id == 0 || end == nullptr || *end != ' ') return;  // malformed: skip
      const char* json = end + 1;
      open_[id] = std::string(json, static_cast<std::size_t>(
                                        payload.data() + payload.size() - json));
      if (id > max_id_) max_id_ = id;
      return;
    }
    if (payload.rfind("done ", 0) == 0) {
      const std::uint64_t id = std::strtoull(payload.data() + 5, nullptr, 10);
      if (open_.erase(id) > 0) ++retired;
      if (id > max_id_) max_id_ = id;
      return;
    }
    // Unknown record kind: ignore (forward compatibility within v1).
  };
  const store::WalScanReport report = store::scan_wal_buffer(buf, 0, on_record);

  if (!bad_meta.empty()) {
    ::close(fd_);
    fd_ = -1;
    throw JournalError("journal " + path_ + " carries unsupported format marker '" +
                       bad_meta + "' (this build writes '" + std::string(kJournalMeta) +
                       "')");
  }
  if (report.torn_tail) {
    // Exactly the crashed-mid-append case: drop the prefix, keep the rest.
    say("journal: truncating torn tail of " + std::to_string(report.torn_bytes) +
        " byte(s) at offset " + std::to_string(report.scanned_end));
  }
  if (report.corrupt_ranges > 0) {
    say("journal: skipped " + std::to_string(report.corrupt_ranges) +
        " corrupt range(s) (" + std::to_string(report.corrupt_bytes) + " byte(s))");
  }

  for (const auto& [id, json] : open_) recovered_.push_back({id, json});

  // Compact: a fresh file needs its meta frame; a dirty one (retired pairs,
  // corruption, torn tail) is rewritten to just the meta + open subs. The
  // rewrite is atomic (temp + rename) and plain write(2) — only live
  // appends go through wal_append and its crash-injection budget.
  const bool fresh = buf.empty();
  const bool dirty = retired > 0 || !report.clean();
  if (fresh || dirty) {
    std::string out;
    out += store::frame_record(kJournalMeta);
    for (const auto& [id, json] : open_) out += store::frame_record(sub_payload(id, json));
    const std::string tmp = path_ + ".tmp";
    const int tfd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (tfd < 0) {
      const std::string why = std::strerror(errno);
      ::close(fd_);
      fd_ = -1;
      throw JournalError("cannot rewrite journal " + tmp + ": " + why);
    }
    const char* p = out.data();
    std::size_t n = out.size();
    while (n > 0) {
      const ssize_t k = ::write(tfd, p, n);
      if (k < 0) {
        if (errno == EINTR) continue;
        const std::string why = std::strerror(errno);
        ::close(tfd);
        ::close(fd_);
        fd_ = -1;
        throw JournalError("cannot rewrite journal " + tmp + ": " + why);
      }
      p += k;
      n -= static_cast<std::size_t>(k);
    }
    ::fsync(tfd);
    ::close(tfd);
    if (::rename(tmp.c_str(), path_.c_str()) != 0) {
      const std::string why = std::strerror(errno);
      ::close(fd_);
      fd_ = -1;
      throw JournalError("cannot install rewritten journal " + path_ + ": " + why);
    }
    ::close(fd_);
    fd_ = ::open(path_.c_str(), O_RDWR, 0644);
    if (fd_ < 0) {
      throw JournalError("cannot reopen journal " + path_ + ": " + std::strerror(errno));
    }
    bytes_ = out.size();
    if (::lseek(fd_, 0, SEEK_END) < 0) {
      throw JournalError("cannot seek journal " + path_ + ": " + std::strerror(errno));
    }
  } else {
    if (!meta_seen) {
      ::close(fd_);
      fd_ = -1;
      throw JournalError("journal " + path_ + " carries no format marker");
    }
    bytes_ = report.scanned_end;
    if (::lseek(fd_, static_cast<off_t>(report.scanned_end), SEEK_SET) < 0) {
      throw JournalError("cannot seek journal " + path_ + ": " + std::strerror(errno));
    }
  }

  if (!recovered_.empty()) {
    say("journal: " + std::to_string(recovered_.size()) +
        " acknowledged submission(s) pending replay");
  }
}

Journal::~Journal() {
  if (fd_ >= 0) ::close(fd_);
}

std::vector<Journal::Pending> Journal::recovered() const {
  std::lock_guard<std::mutex> lk(mu_);
  return recovered_;
}

std::uint64_t Journal::max_id() const {
  std::lock_guard<std::mutex> lk(mu_);
  return max_id_;
}

void Journal::record_submission(std::uint64_t id, const std::string& options_json) {
  const std::string frame = store::frame_record(sub_payload(id, options_json));
  std::lock_guard<std::mutex> lk(mu_);
  store::wal_append(fd_, frame, path_, /*sync=*/true);
  open_[id] = options_json;
  if (id > max_id_) max_id_ = id;
  ++records_;
  bytes_ += frame.size();
}

void Journal::record_done(std::uint64_t id) noexcept {
  try {
    const std::string frame = store::frame_record(done_payload(id));
    std::lock_guard<std::mutex> lk(mu_);
    store::wal_append(fd_, frame, path_, /*sync=*/true);
    open_.erase(id);
    ++records_;
    bytes_ += frame.size();
  } catch (const std::exception& e) {
    // Losing a `done` is harmless: replaying a finished submission resolves
    // as pure store hits. Losing a `sub` would be data loss; this is not.
    say(std::string("journal: done record failed (ignored): ") + e.what());
  }
}

Journal::Stats Journal::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return {open_.size(), records_, bytes_};
}

}  // namespace sttgpu::serve
