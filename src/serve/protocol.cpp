#include "serve/protocol.hpp"

#include <cerrno>
#include <cstring>
#include <sstream>

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace sttgpu::serve {

void write_all(int fd, const void* buf, std::size_t n) {
  const char* p = static_cast<const char*>(buf);
  while (n > 0) {
    // MSG_NOSIGNAL: a peer that hung up surfaces as an EPIPE error we can
    // report, not a SIGPIPE that kills the daemon.
    const ssize_t k = ::send(fd, p, n, MSG_NOSIGNAL);
    if (k < 0) {
      if (errno == EINTR) continue;
      throw SimError(std::string("socket write failed: ") + std::strerror(errno));
    }
    p += k;
    n -= static_cast<std::size_t>(k);
  }
}

bool read_exact(int fd, void* buf, std::size_t n) {
  char* p = static_cast<char*>(buf);
  std::size_t got = 0;
  while (got < n) {
    const ssize_t k = ::read(fd, p + got, n - got);
    if (k < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // SO_RCVTIMEO expired: the peer stalled mid-frame. The server uses
        // this to bound how long a wedged client can pin a handler thread.
        throw SimError("peer stalled mid-frame (receive timeout)");
      }
      throw SimError(std::string("socket read failed: ") + std::strerror(errno));
    }
    if (k == 0) {
      if (got == 0) return false;  // clean EOF at a message boundary
      throw SimError("connection closed mid-frame (" + std::to_string(got) + " of " +
                     std::to_string(n) + " bytes)");
    }
    got += static_cast<std::size_t>(k);
  }
  return true;
}

bool wait_readable(int fd, int timeout_ms) {
  const bool forever = timeout_ms < 0;
  for (;;) {
    pollfd pfd{fd, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, forever ? -1 : timeout_ms);
    if (rc > 0) return true;
    if (rc == 0) return false;
    if (errno != EINTR) {
      throw SimError(std::string("poll failed: ") + std::strerror(errno));
    }
    // EINTR: restart. Deadline precision under signal storms is not worth
    // tracking a clock here — callers treat the timeout as approximate.
  }
}

void write_frame(int fd, std::string_view payload) {
  STTGPU_REQUIRE(payload.size() <= kMaxFramePayload, "frame payload exceeds 16 MiB");
  char header[8];
  std::memcpy(header, kFrameMagic, 4);
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  header[4] = static_cast<char>(len & 0xff);
  header[5] = static_cast<char>((len >> 8) & 0xff);
  header[6] = static_cast<char>((len >> 16) & 0xff);
  header[7] = static_cast<char>((len >> 24) & 0xff);
  // One write for header+payload when small keeps the common case a single
  // syscall; correctness never depends on it (read side reassembles).
  std::string out;
  out.reserve(8 + payload.size());
  out.append(header, 8);
  out.append(payload);
  write_all(fd, out.data(), out.size());
}

std::optional<std::string> read_frame(int fd) {
  char header[8];
  if (!read_exact(fd, header, sizeof header)) return std::nullopt;
  if (std::memcmp(header, kFrameMagic, 4) != 0) {
    throw ProtocolMismatch(
        "bad frame magic — peer is not speaking the sttgpu sweep protocol");
  }
  const std::uint32_t len = static_cast<std::uint32_t>(static_cast<unsigned char>(header[4])) |
                            static_cast<std::uint32_t>(static_cast<unsigned char>(header[5])) << 8 |
                            static_cast<std::uint32_t>(static_cast<unsigned char>(header[6])) << 16 |
                            static_cast<std::uint32_t>(static_cast<unsigned char>(header[7])) << 24;
  if (len > kMaxFramePayload) {
    throw ProtocolMismatch("frame length " + std::to_string(len) +
                           " exceeds the 16 MiB cap");
  }
  std::string payload(len, '\0');
  if (len > 0 && !read_exact(fd, payload.data(), len)) {
    throw SimError("connection closed mid-frame");
  }
  return payload;
}

void write_event_line(int fd, std::string_view line) {
  std::string out(line);
  out.push_back('\n');
  write_all(fd, out.data(), out.size());
}

std::string error_response(const std::string& message, bool protocol_mismatch) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.key("protocol_version").value(kProtocolVersion);
  w.key("ok").value(false);
  w.key("kind").value(protocol_mismatch ? "protocol" : "error");
  w.key("error").value(message);
  w.end_object();
  return os.str();
}

std::string overloaded_response(const std::string& message, std::int64_t retry_after_ms) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.key("protocol_version").value(kProtocolVersion);
  w.key("ok").value(false);
  w.key("kind").value("overloaded");
  w.key("error").value(message);
  w.key("retry_after_ms").value(retry_after_ms);
  w.end_object();
  return os.str();
}

void require_version(const JsonValue& request) {
  const JsonValue* v = request.find("protocol_version");
  if (v == nullptr) {
    throw ProtocolMismatch("request carries no protocol_version (server speaks v" +
                           std::to_string(kProtocolVersion) + ")");
  }
  if (v->as_int() != kProtocolVersion) {
    throw ProtocolMismatch("client speaks protocol v" + std::to_string(v->as_int()) +
                           ", server speaks v" + std::to_string(kProtocolVersion));
  }
}

void check_response(const JsonValue& response) {
  const JsonValue* v = response.find("protocol_version");
  if (v == nullptr || v->as_int() != kProtocolVersion) {
    throw ProtocolMismatch(
        "server response carries protocol v" +
        (v == nullptr ? std::string("<none>") : std::to_string(v->as_int())) +
        ", this client speaks v" + std::to_string(kProtocolVersion));
  }
  const JsonValue* ok = response.find("ok");
  if (ok != nullptr && ok->as_bool()) return;
  const JsonValue* err = response.find("error");
  const std::string msg = err != nullptr ? err->as_string() : "unspecified server error";
  const JsonValue* kind = response.find("kind");
  if (kind != nullptr && kind->as_string() == "protocol") throw ProtocolMismatch(msg);
  if (kind != nullptr && kind->as_string() == "overloaded") {
    const JsonValue* after = response.find("retry_after_ms");
    throw Overloaded(msg, after != nullptr ? after->as_int() : 1000);
  }
  throw SimError(msg);
}

}  // namespace sttgpu::serve
