// The sweep service daemon: a persistent `sttgpu serve` process that turns
// the Fig. 8 result store into a shared simulation service.
//
// Clients connect over a unix socket (optionally loopback TCP) and speak
// the length-framed JSON protocol (serve/protocol.hpp). Every submission —
// a RunOptions-shaped config plus an (archs x benchmarks) slice — is
// deduplicated three ways before any cycle is simulated:
//
//   1. against the crash-safe WAL result store, keyed by
//      (config fingerprint, scale, arch, benchmark): rows simulated by any
//      past run, by a direct `sttgpu matrix`, or by another server are pure
//      store hits;
//   2. against the in-flight task table: two concurrent clients submitting
//      overlapping matrices attach to the same task, so each unique config
//      is simulated exactly once;
//   3. within a submission (a degenerate case of 2).
//
// Misses run on a persistent worker pool. With `sandbox` on (the default)
// each simulation executes in a forked child (serve/sandbox.hpp): a run
// that SIGSEGVs, OOMs against the `mem_limit` RLIMIT_AS, or wedges is
// SIGKILLed/reaped with the PR-5 supervisor's heartbeat-watchdog, timeout
// and retry/backoff semantics, reported as a distinct `failed` watch event,
// and the daemon keeps serving everyone else. Rows travel back over the
// pipe as the store's own put-record lines, so sandboxed results are
// byte-identical to in-process and direct-matrix runs. sandbox=0 keeps the
// original in-process supervised path. The CSV export is regenerated with
// the exact refresh + rows_for + save_cache sequence run_matrix uses.
//
// Admission control: the task queue is capacity-bound (`max_queue`) with
// per-client round-robin fairness keyed on peer identity (SO_PEERCRED for
// unix-socket clients). A submission that would overflow the queue is shed
// with a structured "overloaded" error carrying a retry_after_ms hint.
// Per-connection read deadlines (`read_deadline_s`) drop silent or stalled
// peers so they cannot exhaust handler threads.
//
// Crash recovery: every acknowledged submission is durably recorded in a
// CRC-framed journal next to the store (serve/journal.hpp) and retired only
// when all of its rows are in the store. After a crash — SIGKILL included —
// the restarted daemon replays unfinished submissions before accepting new
// work: finished rows resolve as warm store hits, the tail re-simulates,
// and the final CSV is byte-identical to an uninterrupted run.
//
// Subscribed `watch` clients receive newline-delimited JSON events:
// scheduling, per-task start/done/failed, live telemetry frames (when the
// submission asked for telemetry), and a terminal "complete". The `health`
// verb reports uptime, queue depth, in-flight tasks, shed/retry/child-kill
// counters, and journal lag.
//
// stop() is the SIGTERM drain: stop accepting, refuse new submissions,
// finish every queued and running task, publish the final CSV export, then
// return — the store is always fsck-clean afterwards.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include <memory>

namespace sttgpu::serve {

struct ServerOptions {
  std::string socket_path = "sttgpu.sock";
  /// >0: additionally listen on this loopback TCP port.
  int tcp_port = 0;
  /// CSV export path; the WAL store lives at the derived "<cache>.store".
  std::string cache_path = "fig8_cache.csv";
  /// Worker threads simulating tasks (0 = hardware concurrency).
  unsigned jobs = 1;
  // Supervision applied to every task (sim/supervisor.hpp semantics).
  double watchdog_s = 0.0;
  double job_timeout_s = 0.0;
  unsigned retries = 0;
  /// Run each simulation in a forked sandbox child (serve/sandbox.hpp) so a
  /// crashing/OOMing/wedged run never takes the daemon down. false = the
  /// original in-process supervised path.
  bool sandbox = true;
  /// RLIMIT_AS for sandbox children, in bytes (0 = unlimited).
  std::uint64_t mem_limit_bytes = 0;
  /// Admission control: total queued tasks a submission may not push past
  /// (0 = unbounded). Overflowing submissions are shed with "overloaded".
  std::size_t max_queue = 1024;
  /// Per-connection read deadline in seconds: a client that connects and
  /// sends nothing (or stalls mid-frame) is dropped (0 = no deadline).
  double read_deadline_s = 30.0;
  /// Sink for "[serve] ..." progress lines. Null = silent.
  std::function<void(const std::string&)> log;
};

/// Monotonic service counters, snapshot via SweepServer::stats() or the
/// `status` verb with id=0.
struct ServerStats {
  std::uint64_t submissions = 0;
  std::uint64_t tasks_simulated = 0;  ///< simulations actually run to completion
  std::uint64_t tasks_failed = 0;     ///< failed/cancelled/watchdog-killed tasks
  std::uint64_t store_hits = 0;       ///< submission entries served from the store
  std::uint64_t attached = 0;         ///< entries attached to an in-flight task
  /// Rows other writers (direct matrix runs, other servers) merged into the
  /// store while we served — observed via the store's on_apply hook.
  std::uint64_t merged_rows = 0;
  std::size_t queued = 0;     ///< tasks waiting for a worker
  std::size_t store_rows = 0; ///< live rows in the result store
  unsigned workers = 0;
  // --- robustness counters (health verb) ---
  std::uint64_t shed = 0;              ///< submissions refused by admission control
  std::uint64_t read_deadline_drops = 0;  ///< silent/stalled connections dropped
  std::uint64_t child_kills = 0;       ///< sandbox SIGKILLs (watchdog/timeout/cancel)
  std::uint64_t child_crashes = 0;     ///< sandbox attempts that crashed or OOMed
  std::uint64_t task_retries = 0;      ///< extra sandbox attempts performed
  std::uint64_t replayed = 0;          ///< submissions replayed from the journal
  std::uint64_t journal_pending = 0;   ///< acknowledged, not yet retired
  std::uint64_t journal_records = 0;   ///< journal appends since open
  std::size_t inflight = 0;            ///< unique configs queued or running
  std::size_t connections = 0;         ///< live connection handler threads
  double uptime_s = 0.0;
  bool sandbox = false;
};

class SweepServer {
 public:
  /// Binds the unix socket (and the TCP port when requested) and opens the
  /// result store. Throws BindError when a listener cannot be established —
  /// including when another live server already owns the socket path; a
  /// stale socket file left by a dead server is reclaimed silently.
  explicit SweepServer(ServerOptions opts);

  /// stop()s if still running.
  ~SweepServer();

  SweepServer(const SweepServer&) = delete;
  SweepServer& operator=(const SweepServer&) = delete;

  /// Spawns the accept loop and the worker pool.
  void start();

  /// Graceful drain (the SIGTERM path): stop accepting connections, refuse
  /// new submissions, let every queued and in-flight task finish, publish
  /// the final CSV export, join every thread. Idempotent.
  void stop();

  const std::string& socket_path() const;
  ServerStats stats() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace sttgpu::serve
