// The sweep service daemon: a persistent `sttgpu serve` process that turns
// the Fig. 8 result store into a shared simulation service.
//
// Clients connect over a unix socket (optionally loopback TCP) and speak
// the length-framed JSON protocol (serve/protocol.hpp). Every submission —
// a RunOptions-shaped config plus an (archs x benchmarks) slice — is
// deduplicated three ways before any cycle is simulated:
//
//   1. against the crash-safe WAL result store, keyed by
//      (config fingerprint, scale, arch, benchmark): rows simulated by any
//      past run, by a direct `sttgpu matrix`, or by another server are pure
//      store hits;
//   2. against the in-flight task table: two concurrent clients submitting
//      overlapping matrices attach to the same task, so each unique config
//      is simulated exactly once;
//   3. within a submission (a degenerate case of 2).
//
// Misses run on a persistent supervised worker pool. Each task is executed
// under the PR-5 supervisor (sim/supervisor.hpp) with a per-task
// CancelToken as the external source — the `cancel` verb, the progress
// watchdog, the per-job timeout, and the retry budget are all literally the
// matrix runner's semantics, not a re-implementation. Completed rows are
// persisted write-through to the store under a CriticalSection, and the
// CSV export is regenerated with the exact refresh + rows_for + save_cache
// sequence run_matrix uses, so the served cache file is byte-identical to
// one written by a direct run.
//
// Subscribed `watch` clients receive newline-delimited JSON events:
// scheduling, per-task start/done/failed, live telemetry frames (when the
// submission asked for telemetry), and a terminal "complete".
//
// stop() is the SIGTERM drain: stop accepting, refuse new submissions,
// finish every queued and running task, publish the final CSV export, then
// return — the store is always fsck-clean afterwards.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include <memory>

namespace sttgpu::serve {

struct ServerOptions {
  std::string socket_path = "sttgpu.sock";
  /// >0: additionally listen on this loopback TCP port.
  int tcp_port = 0;
  /// CSV export path; the WAL store lives at the derived "<cache>.store".
  std::string cache_path = "fig8_cache.csv";
  /// Worker threads simulating tasks (0 = hardware concurrency).
  unsigned jobs = 1;
  // Supervision applied to every task (sim/supervisor.hpp semantics).
  double watchdog_s = 0.0;
  double job_timeout_s = 0.0;
  unsigned retries = 0;
  /// Sink for "[serve] ..." progress lines. Null = silent.
  std::function<void(const std::string&)> log;
};

/// Monotonic service counters, snapshot via SweepServer::stats() or the
/// `status` verb with id=0.
struct ServerStats {
  std::uint64_t submissions = 0;
  std::uint64_t tasks_simulated = 0;  ///< simulations actually run to completion
  std::uint64_t tasks_failed = 0;     ///< failed/cancelled/watchdog-killed tasks
  std::uint64_t store_hits = 0;       ///< submission entries served from the store
  std::uint64_t attached = 0;         ///< entries attached to an in-flight task
  /// Rows other writers (direct matrix runs, other servers) merged into the
  /// store while we served — observed via the store's on_apply hook.
  std::uint64_t merged_rows = 0;
  std::size_t queued = 0;     ///< tasks waiting for a worker
  std::size_t store_rows = 0; ///< live rows in the result store
  unsigned workers = 0;
};

class SweepServer {
 public:
  /// Binds the unix socket (and the TCP port when requested) and opens the
  /// result store. Throws BindError when a listener cannot be established —
  /// including when another live server already owns the socket path; a
  /// stale socket file left by a dead server is reclaimed silently.
  explicit SweepServer(ServerOptions opts);

  /// stop()s if still running.
  ~SweepServer();

  SweepServer(const SweepServer&) = delete;
  SweepServer& operator=(const SweepServer&) = delete;

  /// Spawns the accept loop and the worker pool.
  void start();

  /// Graceful drain (the SIGTERM path): stop accepting connections, refuse
  /// new submissions, let every queued and in-flight task finish, publish
  /// the final CSV export, join every thread. Idempotent.
  void stop();

  const std::string& socket_path() const;
  ServerStats stats() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace sttgpu::serve
