#include "serve/client.hpp"

#include <cerrno>
#include <cstring>
#include <utility>

#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/error.hpp"
#include "serve/protocol.hpp"

namespace sttgpu::serve {

Client Client::connect(const std::string& socket_path, int tcp_port) {
  int fd = -1;
  if (tcp_port > 0) {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    STTGPU_REQUIRE(fd >= 0, std::string("socket: ") + std::strerror(errno));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(tcp_port));
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
      const std::string why = std::strerror(errno);
      ::close(fd);
      throw SimError("cannot reach the sweep service on 127.0.0.1:" +
                     std::to_string(tcp_port) + " (" + why +
                     ") — is `sttgpu serve` running?");
    }
  } else {
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    STTGPU_REQUIRE(fd >= 0, std::string("socket: ") + std::strerror(errno));
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    STTGPU_REQUIRE(socket_path.size() < sizeof(addr.sun_path),
                   "socket path too long: " + socket_path);
    std::strncpy(addr.sun_path, socket_path.c_str(), sizeof(addr.sun_path) - 1);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
      const std::string why = std::strerror(errno);
      ::close(fd);
      throw SimError("cannot reach the sweep service at " + socket_path + " (" + why +
                     ") — is `sttgpu serve` running?");
    }
  }
  return Client(fd);
}

Client::Client(Client&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

JsonValue Client::request(std::string_view request_json) {
  write_frame(fd_, request_json);
  const std::optional<std::string> payload = read_frame(fd_);
  STTGPU_REQUIRE(payload.has_value(), "server closed the connection without a response");
  JsonValue response = parse_json(*payload);
  check_response(response);
  return response;
}

JsonValue Client::stream(std::string_view request_json,
                         const std::function<void(const std::string& line,
                                                  const JsonValue& event)>& on_event) {
  write_frame(fd_, request_json);
  const std::optional<std::string> ack = read_frame(fd_);
  STTGPU_REQUIRE(ack.has_value(), "server closed the connection without a response");
  check_response(parse_json(*ack));

  // After the acknowledgement the stream is newline-delimited JSON events.
  std::string buffered;
  char chunk[4096];
  for (;;) {
    const std::size_t nl = buffered.find('\n');
    if (nl != std::string::npos) {
      const std::string line = buffered.substr(0, nl);
      buffered.erase(0, nl + 1);
      if (line.empty()) continue;
      JsonValue event = parse_json(line);
      const JsonValue* kind = event.find("event");
      if (on_event) on_event(line, event);
      if (kind != nullptr && kind->as_string() == "complete") return event;
      continue;
    }
    const ssize_t k = ::read(fd_, chunk, sizeof chunk);
    if (k < 0) {
      if (errno == EINTR) continue;
      throw SimError(std::string("socket read failed: ") + std::strerror(errno));
    }
    STTGPU_REQUIRE(k != 0, "server closed the event stream before the terminal event");
    buffered.append(chunk, static_cast<std::size_t>(k));
  }
}

}  // namespace sttgpu::serve
