// Wire protocol of the sweep service (`sttgpu serve` and its client verbs).
//
// Requests and responses are length-framed JSON documents over a unix
// socket (or a loopback TCP socket):
//
//   +------+----------------+----------------------+
//   | SWP1 | u32 LE length  |  <length> JSON bytes |
//   +------+----------------+----------------------+
//
// The magic rejects stray clients (an HTTP request or a shell echo never
// parses as a frame); the length is capped at 16 MiB so a corrupt header
// cannot make the peer allocate unbounded memory. Every request and every
// response carries "protocol_version": an incompatible peer is refused with
// a "protocol" error the CLI maps to its own exit code instead of
// misinterpreting fields.
//
// A connection carries exactly one request/response exchange. The `watch`
// verb extends the exchange: after the framed acknowledgement the server
// streams newline-delimited JSON events (progress, telemetry frames,
// per-task completions) until the watched submission reaches a terminal
// state, then closes.
//
// Request payloads share their field definitions with the CLI: a submit's
// "options" object is validated against the same knob registry
// (sim/knobs.hpp) that parses argv, so a config can never mean something
// different over the wire than it does at the shell. Result rows travel as
// the store's own "put ..." payload lines (store/record.hpp), which are
// max_digits10 round-trip exact by the store's contract — the service never
// invents a second float serialization.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "common/error.hpp"
#include "common/json.hpp"

namespace sttgpu::serve {

/// Bumped on any incompatible wire change. Both sides send it; both sides
/// refuse a mismatch (ProtocolMismatch / a "protocol" error response).
inline constexpr std::int64_t kProtocolVersion = 1;

/// Frame header magic ("SWeep Protocol 1", framing version — independent of
/// kProtocolVersion, which governs the JSON inside).
inline constexpr char kFrameMagic[4] = {'S', 'W', 'P', '1'};

/// Ceiling on one frame's payload; a malformed length field fails fast
/// instead of asking the peer to allocate gigabytes.
inline constexpr std::uint32_t kMaxFramePayload = 16u << 20;

/// The server could not bind/listen on its socket (path in use, bad
/// directory, privileged port). Mapped to exit code 6 by the CLI.
class BindError : public SimError {
 public:
  using SimError::SimError;
};

/// The peer speaks a different protocol_version (or none) — or sent bytes
/// that are not frames at all. Mapped to exit code 7 by the CLI.
class ProtocolMismatch : public SimError {
 public:
  using SimError::SimError;
};

/// The server shed a submission because its admission queue is full. Carries
/// the server's backoff hint; the CLI retries with jitter and maps an
/// exhausted retry budget to exit code 8.
class Overloaded : public SimError {
 public:
  Overloaded(const std::string& what, std::int64_t retry_after_ms)
      : SimError(what), retry_after_ms_(retry_after_ms) {}
  std::int64_t retry_after_ms() const noexcept { return retry_after_ms_; }

 private:
  std::int64_t retry_after_ms_;
};

// --- EINTR-safe socket I/O -------------------------------------------------

/// Writes all @p n bytes, retrying short writes and EINTR. Throws SimError
/// on any I/O error (including a peer hangup surfacing as EPIPE).
void write_all(int fd, const void* buf, std::size_t n);

/// Reads exactly @p n bytes. Returns false on clean EOF before the first
/// byte; throws SimError on an error or an EOF mid-buffer (torn frame).
/// A receive timeout (SO_RCVTIMEO expiring mid-frame) is reported as a
/// "stalled mid-frame" SimError rather than a raw errno.
bool read_exact(int fd, void* buf, std::size_t n);

/// Polls @p fd for readability. True when at least one byte (or EOF) is
/// ready within @p timeout_ms; false on timeout. EINTR restarts the wait
/// with the remaining budget. timeout_ms < 0 waits forever.
bool wait_readable(int fd, int timeout_ms);

// --- framing ---------------------------------------------------------------

/// Sends one frame: magic, length, payload.
void write_frame(int fd, std::string_view payload);

/// Receives one frame's payload. nullopt on clean EOF at a frame boundary;
/// throws ProtocolMismatch on bad magic or an oversized length (the peer is
/// not speaking frames — the server answers with a "protocol" error), and
/// SimError on a torn frame (the peer is gone; nothing can be answered).
std::optional<std::string> read_frame(int fd);

/// Appends '\n' and writes one event line of a watch stream.
void write_event_line(int fd, std::string_view line);

// --- envelope helpers ------------------------------------------------------

/// Serialized error response: {"protocol_version":N,"ok":false,
/// "error":<msg>,"kind":<"protocol"|"error">}.
std::string error_response(const std::string& message, bool protocol_mismatch = false);

/// Serialized admission-control shed: {"protocol_version":N,"ok":false,
/// "kind":"overloaded","error":<msg>,"retry_after_ms":<hint>}.
std::string overloaded_response(const std::string& message, std::int64_t retry_after_ms);

/// Server side: verifies a parsed request's protocol_version. Throws
/// ProtocolMismatch naming both versions when absent or different.
void require_version(const JsonValue& request);

/// Client side: checks a parsed response envelope. Throws ProtocolMismatch
/// for kind=="protocol" (and for version mismatches), Overloaded for
/// kind=="overloaded" (with the server's retry_after_ms hint), SimError for
/// any other ok=false, and returns normally for ok=true.
void check_response(const JsonValue& response);

}  // namespace sttgpu::serve
