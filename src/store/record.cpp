#include "store/record.hpp"

#include <cctype>
#include <iomanip>
#include <sstream>

#include "common/error.hpp"

namespace sttgpu::store {

std::string scale_text(double scale) {
  std::ostringstream os;
  os << std::setprecision(17) << scale;
  return os.str();
}

std::string fingerprint_hex(std::uint64_t fingerprint) {
  std::ostringstream os;
  os << std::hex << fingerprint;
  return os.str();
}

std::string store_key(std::uint64_t fingerprint, const std::string& scale17,
                      const std::string& arch, const std::string& benchmark) {
  return fingerprint_hex(fingerprint) + ' ' + scale17 + ' ' + arch + ' ' + benchmark;
}

void validate_key_token(const char* what, const std::string& value) {
  STTGPU_REQUIRE(!value.empty(), std::string("store: ") + what + " must not be empty");
  for (const char c : value) {
    const auto u = static_cast<unsigned char>(c);
    STTGPU_REQUIRE(!std::isspace(u) && u >= 0x20,
                   std::string("store: ") + what + " '" + value +
                       "' contains whitespace or control characters");
  }
}

bool is_meta(std::string_view payload) {
  return payload.rfind(kMetaPrefix, 0) == 0;
}

bool meta_supported(std::string_view payload) { return payload == kMetaPayload; }

std::string encode_put(std::uint64_t fingerprint, double scale, const ResultRow& row) {
  return encode_put(fingerprint, scale_text(scale), row);
}

std::string encode_put(std::uint64_t fingerprint, const std::string& scale17,
                       const ResultRow& row) {
  std::ostringstream os;
  os << std::setprecision(17);
  os << "put " << fingerprint_hex(fingerprint) << ' ' << scale17 << ' ' << row.arch
     << ' ' << row.benchmark << ' ' << row.ipc << ' ' << row.cycles << ' '
     << row.dynamic_w << ' ' << row.leakage_w << ' ' << row.total_w << ' '
     << row.write_share << ' ' << row.miss_rate;
  return os.str();
}

namespace {

std::optional<double> parse_double_tok(const std::string& tok) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(tok, &pos);
    if (pos != tok.size()) return std::nullopt;
    return v;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

std::optional<std::uint64_t> parse_u64_tok(const std::string& tok, int base = 10) {
  try {
    std::size_t pos = 0;
    const std::uint64_t v = std::stoull(tok, &pos, base);
    if (pos != tok.size()) return std::nullopt;
    return v;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

}  // namespace

std::optional<PutRecord> decode_put(std::string_view payload) {
  std::istringstream ss{std::string(payload)};
  std::string tag;
  ss >> tag;
  if (tag != "put") return std::nullopt;
  std::string fp_hex, scale17, arch, bench;
  std::string ipc, cycles, dyn, leak, total, ws, mr;
  ss >> fp_hex >> scale17 >> arch >> bench >> ipc >> cycles >> dyn >> leak >> total >>
      ws >> mr;
  if (!ss) return std::nullopt;
  std::string extra;
  if (ss >> extra) return std::nullopt;  // trailing junk

  const auto fp = parse_u64_tok(fp_hex, 16);
  const auto scale = parse_double_tok(scale17);
  const auto v_ipc = parse_double_tok(ipc);
  const auto v_cycles = parse_u64_tok(cycles);
  const auto v_dyn = parse_double_tok(dyn);
  const auto v_leak = parse_double_tok(leak);
  const auto v_total = parse_double_tok(total);
  const auto v_ws = parse_double_tok(ws);
  const auto v_mr = parse_double_tok(mr);
  if (!fp || !scale || !v_ipc || !v_cycles || !v_dyn || !v_leak || !v_total || !v_ws ||
      !v_mr) {
    return std::nullopt;
  }
  PutRecord r;
  r.fingerprint = *fp;
  r.scale17 = scale17;
  r.row.arch = arch;
  r.row.benchmark = bench;
  r.row.ipc = *v_ipc;
  r.row.cycles = *v_cycles;
  r.row.dynamic_w = *v_dyn;
  r.row.leakage_w = *v_leak;
  r.row.total_w = *v_total;
  r.row.write_share = *v_ws;
  r.row.miss_rate = *v_mr;
  return r;
}

}  // namespace sttgpu::store
