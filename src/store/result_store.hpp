// Crash-safe sharded result store.
//
// One append-only WAL (wal.hpp framing) on disk, one sharded hash index in
// memory. The contract the rest of the simulator builds on:
//
//   * put() is durable: by the time it returns, the record is fsync'd. A
//     crash (SIGKILL, power cut) at ANY byte offset loses at most the
//     in-flight record; recovery truncates the torn tail and every earlier
//     record is intact.
//   * Corruption (bit rot, a truncated-then-appended log) is quarantined,
//     never fatal: the damaged byte range moves to "<store>.quarantine",
//     the log is compacted down to its verified records, and the caller
//     simply recomputes whatever went missing.
//   * Multiple processes coordinate through an advisory flock on
//     "<store>.lock": writers append under the exclusive lock (first
//     tail-scanning to pick up other writers' appends), readers snapshot
//     under the shared lock. Two matrix invocations on disjoint slices
//     merge without lost rows.
//
// The in-memory index is sharded (kShards maps, each behind its own mutex)
// so the matrix executor's worker threads can hit get() concurrently
// without contending on one global lock; the append path additionally
// serializes on io_mu_ because flock does not exclude threads sharing a fd.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/cancel.hpp"
#include "store/record.hpp"

namespace sttgpu::store {

struct StoreOptions {
  /// Sink for "[store] ..." progress/repair lines. Null = silent.
  std::function<void(const std::string&)> log;
  const CancelToken* cancel = nullptr;  ///< observed while waiting for the flock
  double lock_timeout_s = 30.0;
  bool auto_compact = true;  ///< compact when dead records dominate
  /// auto_compact only fires once the log holds at least this many applied
  /// records — rewriting a tiny log is churn, not savings.
  std::size_t compact_min_records = 64;
};

struct StoreStats {
  std::uint64_t file_bytes = 0;         ///< current log size
  std::size_t live_rows = 0;            ///< distinct keys in the index
  std::size_t groups = 0;               ///< distinct (fingerprint, scale) pairs
  std::size_t applied_records = 0;      ///< put records applied from the log
  std::size_t dead_records = 0;         ///< applied records since overwritten
  std::size_t compactions = 0;          ///< performed by this handle
  std::uint64_t repaired_torn_bytes = 0;      ///< torn tail truncated by this handle
  std::size_t quarantined_new_incidents = 0;  ///< quarantined by this handle
  std::uint64_t quarantined_new_bytes = 0;
  std::size_t quarantine_incidents = 0;  ///< total in the sidecar (all time)
  std::uint64_t quarantine_bytes = 0;
};

struct FsckReport {
  bool present = false;  ///< the store file exists
  StoreStats stats;

  /// "Nothing needs human attention": no un-acknowledged quarantine.
  bool healthy() const { return stats.quarantine_incidents == 0; }
};

class ResultStore {
 public:
  /// Opens (creating if absent) the store at @p path: takes the exclusive
  /// lock, replays the log, repairs a torn tail, quarantines corruption.
  /// Throws SimError if the log was written by an unsupported (newer)
  /// format version, or on I/O failure.
  ResultStore(std::string path, StoreOptions opts = {});
  ~ResultStore();

  ResultStore(const ResultStore&) = delete;
  ResultStore& operator=(const ResultStore&) = delete;

  /// Index lookup; no I/O. Call refresh() first to observe other processes.
  std::optional<ResultRow> get(std::uint64_t fingerprint, double scale,
                               const std::string& arch,
                               const std::string& benchmark) const;

  /// Durably appends one result (exclusive lock, append, fsync). Last
  /// writer wins on key collision.
  void put(std::uint64_t fingerprint, double scale, const ResultRow& row);

  /// Durably appends a batch under ONE lock acquisition and ONE fsync —
  /// the migration path writes 80 rows as one I/O burst, not 80.
  void put_many(std::uint64_t fingerprint, double scale,
                const std::vector<ResultRow>& rows);

  /// Re-reads the log tail under the shared lock, folding in records other
  /// processes appended. Never repairs (repair mutates; readers must not).
  void refresh();

  /// Observer invoked for every put record applied to the index after this
  /// call — own put()/put_many() appends and rows folded in from other
  /// processes by refresh() alike (a full rescan after compaction replays
  /// every live record through it). Runs with store locks held: keep it
  /// short and never call back into the store. The sweep service uses it to
  /// count rows merged in by concurrent direct `sttgpu matrix` runs.
  void set_on_apply(std::function<void(const PutRecord&)> fn);

  /// All rows for one (fingerprint, scale) group, sorted by
  /// (arch, benchmark) — the CSV export order.
  std::vector<ResultRow> rows_for(std::uint64_t fingerprint, double scale) const;

  /// Rewrites the log to live records only (atomic tmp+fsync+rename), under
  /// the exclusive lock.
  void compact();

  std::size_t size() const;  ///< live rows
  StoreStats stats() const;

  const std::string& path() const { return path_; }

  /// "<x>.csv" -> "<x>.store"; anything else gets ".store" appended. The
  /// store that shadows a given CSV cache path.
  static std::string derive_path(const std::string& csv_path);

  /// "<store>.quarantine" — where corrupt byte ranges are preserved.
  static std::string quarantine_path_for(const std::string& store_path);

  /// Opens the store (running recovery, like the constructor) and reports.
  /// @p report_only_missing: a missing store file yields {present=false}
  /// without creating it.
  static FsckReport fsck(const std::string& path, StoreOptions opts = {});

 private:
  struct Entry {
    std::uint64_t fingerprint = 0;
    std::string scale17;
    ResultRow row;
  };
  static constexpr std::size_t kShards = 16;
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<std::string, Entry> map;
  };
  /// One quarantinable byte range found during a scan.
  struct Incident {
    std::uint64_t offset = 0;
    std::string bytes;
    const char* reason = "corrupt";
  };

  static std::size_t shard_index(const std::string& key);
  void say(const std::string& line) const;

  // All *_locked members require io_mu_ held AND the corresponding flock.
  void open_log_locked();
  bool reopen_if_replaced_locked();
  void rescan_locked(bool repair);
  void catch_up_locked(bool repair);
  void apply_record_locked(std::string_view payload, std::uint64_t offset,
                           std::vector<Incident>* bad);
  void apply_put_locked(const PutRecord& rec);
  void quarantine_locked(const std::vector<Incident>& incidents);
  void compact_locked(const char* reason);
  void maybe_compact_locked();
  std::uint64_t log_size_locked() const;
  std::string read_range_locked(std::uint64_t offset, std::uint64_t len) const;
  StoreStats stats_locked() const;

  std::string path_;
  std::string quarantine_path_;
  StoreOptions opts_;
  std::function<void(const PutRecord&)> on_apply_;
  int lock_fd_ = -1;
  int log_fd_ = -1;

  /// Serializes this handle's I/O state (flock is per-fd, not per-thread).
  mutable std::mutex io_mu_;
  std::uint64_t scanned_end_ = 0;  ///< log offset our index reflects
  std::uint64_t log_dev_ = 0, log_ino_ = 0;
  std::size_t applied_records_ = 0;
  std::size_t dead_records_ = 0;
  std::size_t compactions_ = 0;
  std::uint64_t repaired_torn_bytes_ = 0;
  std::size_t quarantined_new_incidents_ = 0;
  std::uint64_t quarantined_new_bytes_ = 0;

  std::vector<Shard> shards_{kShards};
};

}  // namespace sttgpu::store
