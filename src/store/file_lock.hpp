// Advisory multi-process coordination for the result store.
//
// FileLock is an RAII flock(2) on a dedicated "<store>.lock" sidecar file
// (never on the log itself — compaction renames the log, and a lock that
// moved with the old inode would silently stop excluding anybody).
//
// Acquisition polls LOCK_NB instead of blocking in the kernel, for two
// reasons the supervisor cares about:
//   * a CancelToken (user SIGINT, watchdog) is observed between polls, so a
//     job waiting on a wedged lock can still be cancelled cooperatively;
//   * a timeout bounds the wait, so one crashed-while-locked process (flock
//     releases on process death, but an NFS-ish stuck lock might not) turns
//     into a diagnosable SimError instead of a silent hang.
//
// flock serializes between *processes* (and between distinct fds), not
// between threads sharing one fd — in-process serialization is the
// ResultStore's own mutex.
#pragma once

#include <string>

#include "common/cancel.hpp"

namespace sttgpu::store {

class FileLock {
 public:
  enum class Mode { kShared, kExclusive };

  struct Options {
    const CancelToken* cancel = nullptr;  ///< observed while waiting (may be null)
    double timeout_s = 30.0;              ///< 0 = try once, fail immediately if held
  };

  /// Acquires @p mode on @p fd. Throws Cancelled if @p opts.cancel fires
  /// while waiting, SimError (naming @p what) on timeout or flock failure.
  FileLock(int fd, Mode mode, const Options& opts, const std::string& what);
  ~FileLock();

  FileLock(const FileLock&) = delete;
  FileLock& operator=(const FileLock&) = delete;

 private:
  int fd_ = -1;
};

/// Opens (creating if needed) the lock sidecar for @p store_path and
/// returns its fd (O_CLOEXEC). Throws SimError on failure.
int open_lock_file(const std::string& store_path);

/// The lock sidecar path: "<store_path>.lock".
std::string lock_path_for(const std::string& store_path);

}  // namespace sttgpu::store
