#include "store/wal.hpp"

#include <csignal>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <climits>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "common/error.hpp"
#include "store/crc32.hpp"

namespace sttgpu::store {

namespace {

std::uint32_t read_u32le(const char* p) {
  const auto* u = reinterpret_cast<const unsigned char*>(p);
  return static_cast<std::uint32_t>(u[0]) | (static_cast<std::uint32_t>(u[1]) << 8) |
         (static_cast<std::uint32_t>(u[2]) << 16) |
         (static_cast<std::uint32_t>(u[3]) << 24);
}

void append_u32le(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v & 0xFF));
  out.push_back(static_cast<char>((v >> 8) & 0xFF));
  out.push_back(static_cast<char>((v >> 16) & 0xFF));
  out.push_back(static_cast<char>((v >> 24) & 0xFF));
}

enum class FrameCheck { kValid, kTorn, kBad };

/// Classifies the bytes at @p pos: a complete verified frame (kValid,
/// @p frame_len set), a valid frame prefix hitting end-of-buffer (kTorn —
/// exactly what a crashed append leaves), or neither (kBad).
FrameCheck check_frame(std::string_view buf, std::size_t pos, std::size_t* frame_len) {
  const std::size_t rem = buf.size() - pos;
  static const char kMagicBytes[4] = {'S', 'T', 'R', '1'};
  if (rem < kWalHeaderBytes) {
    // Too short to even hold a header: a torn append's prefix matches the
    // magic byte-for-byte as far as it goes; anything else is corruption.
    const std::size_t check = rem < 4 ? rem : 4;
    return std::memcmp(buf.data() + pos, kMagicBytes, check) == 0 ? FrameCheck::kTorn
                                                                  : FrameCheck::kBad;
  }
  if (read_u32le(buf.data() + pos) != kWalMagic) return FrameCheck::kBad;
  const std::uint32_t len = read_u32le(buf.data() + pos + 4);
  if (len == 0 || len > kWalMaxPayload) return FrameCheck::kBad;
  if (rem < kWalHeaderBytes + len) return FrameCheck::kTorn;
  const std::uint32_t want = read_u32le(buf.data() + pos + 8);
  if (crc32(buf.substr(pos + kWalHeaderBytes, len)) != want) return FrameCheck::kBad;
  *frame_len = kWalHeaderBytes + len;
  return FrameCheck::kValid;
}

}  // namespace

WalScanReport scan_wal_buffer(
    std::string_view buf, std::uint64_t base_offset,
    const std::function<void(std::uint64_t, std::string_view)>& on_record,
    const std::function<void(std::uint64_t, std::string_view)>& on_corrupt) {
  WalScanReport report;
  report.scanned_end = base_offset;
  std::size_t pos = 0;
  while (pos < buf.size()) {
    std::size_t frame_len = 0;
    const FrameCheck fc = check_frame(buf, pos, &frame_len);
    if (fc == FrameCheck::kValid) {
      if (on_record) {
        on_record(base_offset + pos,
                  buf.substr(pos + kWalHeaderBytes, frame_len - kWalHeaderBytes));
      }
      ++report.records;
      pos += frame_len;
      report.scanned_end = base_offset + pos;
      continue;
    }
    if (fc == FrameCheck::kTorn) {
      report.torn_tail = true;
      report.torn_bytes = buf.size() - pos;
      break;
    }
    // Corruption. Resync: the next offset where a verifiable frame (or a
    // valid torn prefix) begins; everything in between is one quarantinable
    // range. Requiring the candidate's CRC to verify makes a stray magic
    // inside corrupt bytes vanishingly unlikely to fool the scanner.
    std::size_t resync = pos + 1;
    for (; resync < buf.size(); ++resync) {
      if (buf.size() - resync >= 4 && read_u32le(buf.data() + resync) == kWalMagic) {
        std::size_t cand_len = 0;
        const FrameCheck cand = check_frame(buf, resync, &cand_len);
        if (cand != FrameCheck::kBad) break;
      }
    }
    if (on_corrupt) on_corrupt(base_offset + pos, buf.substr(pos, resync - pos));
    ++report.corrupt_ranges;
    report.corrupt_bytes += resync - pos;
    pos = resync;
  }
  return report;
}

std::string frame_record(std::string_view payload) {
  STTGPU_REQUIRE(!payload.empty() && payload.size() <= kWalMaxPayload,
                 "store: record payload size out of range");
  std::string frame;
  frame.reserve(kWalHeaderBytes + payload.size());
  append_u32le(frame, kWalMagic);
  append_u32le(frame, static_cast<std::uint32_t>(payload.size()));
  append_u32le(frame, crc32(payload));
  frame.append(payload);
  return frame;
}

// --- crash injection -------------------------------------------------------

namespace {

std::atomic<bool> g_crash_enabled{false};
std::atomic<long long> g_crash_remaining{0};
std::once_flag g_crash_env_once;

void crash_init_from_env() {
  std::call_once(g_crash_env_once, []() {
    const char* env = std::getenv("STTGPU_STORE_CRASH_AT");
    if (env == nullptr || env[0] == '\0') return;
    const long long v = std::strtoll(env, nullptr, 10);
    if (v >= 0) {
      g_crash_remaining.store(v, std::memory_order_relaxed);
      g_crash_enabled.store(true, std::memory_order_relaxed);
    }
  });
}

[[noreturn]] void crash_now() {
  // Simulated power cut: no flush, no cleanup, no exit handlers. Bytes
  // already write(2)ten sit in the page cache exactly as a real torn write
  // would; everything after this instant is lost.
  ::raise(SIGKILL);
  ::_exit(137);  // unreachable unless SIGKILL is somehow not deliverable
}

void write_all(int fd, const char* data, std::size_t n, const std::string& path) {
  std::size_t done = 0;
  while (done < n) {
    const ssize_t w = ::write(fd, data + done, n - done);
    if (w < 0) {
      if (errno == EINTR) continue;
      throw SimError("store: append to " + path + " failed (" + std::strerror(errno) +
                     ")");
    }
    done += static_cast<std::size_t>(w);
  }
}

}  // namespace

void testing_set_crash_at(long long bytes) {
  crash_init_from_env();  // consume the env seed so it cannot override us later
  if (bytes < 0) {
    g_crash_enabled.store(false, std::memory_order_relaxed);
    return;
  }
  g_crash_remaining.store(bytes, std::memory_order_relaxed);
  g_crash_enabled.store(true, std::memory_order_relaxed);
}

void wal_append(int fd, std::string_view bytes, const std::string& path, bool sync) {
  crash_init_from_env();
  std::size_t n = bytes.size();
  bool kill_after_write = false;
  if (g_crash_enabled.load(std::memory_order_relaxed)) {
    const long long before =
        g_crash_remaining.fetch_sub(static_cast<long long>(bytes.size()),
                                    std::memory_order_relaxed);
    if (before < static_cast<long long>(bytes.size())) {
      n = before > 0 ? static_cast<std::size_t>(before) : 0;
      kill_after_write = true;
    }
  }
  write_all(fd, bytes.data(), n, path);
  if (kill_after_write) crash_now();
  if (sync) {
    if (::fsync(fd) != 0) {
      throw SimError("store: fsync of " + path + " failed (" + std::strerror(errno) +
                     ")");
    }
  }
}

}  // namespace sttgpu::store
