#include "store/result_store.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <set>
#include <sstream>
#include <utility>

#include "common/atomic_file.hpp"
#include "common/error.hpp"
#include "store/file_lock.hpp"
#include "store/wal.hpp"

namespace sttgpu::store {

namespace {

constexpr char kQuarantineTag[] = "#quarantine ";

void write_all_fd(int fd, const char* data, std::size_t n, const std::string& path) {
  std::size_t done = 0;
  while (done < n) {
    const ssize_t w = ::write(fd, data + done, n - done);
    if (w < 0) {
      if (errno == EINTR) continue;
      throw SimError("store: write to " + path + " failed (" + std::strerror(errno) +
                     ")");
    }
    done += static_cast<std::size_t>(w);
  }
}

/// Walks the quarantine sidecar counting incidents and their payload bytes.
/// Tolerant by design: a mangled sidecar must never take the store down.
std::pair<std::size_t, std::uint64_t> quarantine_totals(const std::string& qpath) {
  std::ifstream in(qpath, std::ios::binary);
  if (!in) return {0, 0};
  std::size_t incidents = 0;
  std::uint64_t bytes = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind(kQuarantineTag, 0) != 0) continue;
    const std::size_t at = line.find(" bytes=");
    if (at == std::string::npos) continue;
    std::uint64_t n = 0;
    std::istringstream ss(line.substr(at + 7));
    if (!(ss >> n)) continue;
    ++incidents;
    bytes += n;
    // Skip the preserved payload (may itself contain newlines) + its '\n'.
    in.ignore(static_cast<std::streamsize>(n) + 1);
  }
  return {incidents, bytes};
}

}  // namespace

ResultStore::ResultStore(std::string path, StoreOptions opts)
    : path_(std::move(path)),
      quarantine_path_(quarantine_path_for(path_)),
      opts_(std::move(opts)) {
  lock_fd_ = open_lock_file(path_);
  std::lock_guard<std::mutex> io(io_mu_);
  FileLock ex(lock_fd_, FileLock::Mode::kExclusive,
              {opts_.cancel, opts_.lock_timeout_s}, lock_path_for(path_));
  open_log_locked();
  rescan_locked(/*repair=*/true);
}

ResultStore::~ResultStore() {
  if (log_fd_ >= 0) ::close(log_fd_);
  if (lock_fd_ >= 0) ::close(lock_fd_);
}

std::size_t ResultStore::shard_index(const std::string& key) {
  return std::hash<std::string>{}(key) % kShards;
}

void ResultStore::say(const std::string& line) const {
  if (opts_.log) opts_.log(line);
}

std::optional<ResultRow> ResultStore::get(std::uint64_t fingerprint, double scale,
                                          const std::string& arch,
                                          const std::string& benchmark) const {
  const std::string key = store_key(fingerprint, scale_text(scale), arch, benchmark);
  const Shard& s = shards_[shard_index(key)];
  std::lock_guard<std::mutex> g(s.mu);
  const auto it = s.map.find(key);
  if (it == s.map.end()) return std::nullopt;
  return it->second.row;
}

void ResultStore::put(std::uint64_t fingerprint, double scale, const ResultRow& row) {
  put_many(fingerprint, scale, {row});
}

void ResultStore::put_many(std::uint64_t fingerprint, double scale,
                           const std::vector<ResultRow>& rows) {
  if (rows.empty()) return;
  const std::string scale17 = scale_text(scale);
  for (const ResultRow& r : rows) {
    validate_key_token("arch", r.arch);
    validate_key_token("benchmark", r.benchmark);
  }
  std::lock_guard<std::mutex> io(io_mu_);
  FileLock ex(lock_fd_, FileLock::Mode::kExclusive,
              {opts_.cancel, opts_.lock_timeout_s}, lock_path_for(path_));
  // Fold in whatever other writers appended since we last looked — the
  // append must land at the true end of the log, and the dead-record
  // accounting must see their overwrites.
  catch_up_locked(/*repair=*/true);

  std::string batch;
  if (log_size_locked() == 0) batch += frame_record(kMetaPayload);
  for (const ResultRow& r : rows) {
    batch += frame_record(encode_put(fingerprint, scale17, r));
  }
  wal_append(log_fd_, batch, path_, /*sync=*/true);
  scanned_end_ += batch.size();

  for (const ResultRow& r : rows) {
    PutRecord rec;
    rec.fingerprint = fingerprint;
    rec.scale17 = scale17;
    rec.row = r;
    apply_put_locked(rec);
  }
  maybe_compact_locked();
}

void ResultStore::refresh() {
  std::lock_guard<std::mutex> io(io_mu_);
  FileLock sh(lock_fd_, FileLock::Mode::kShared,
              {opts_.cancel, opts_.lock_timeout_s}, lock_path_for(path_));
  catch_up_locked(/*repair=*/false);
}

std::vector<ResultRow> ResultStore::rows_for(std::uint64_t fingerprint,
                                             double scale) const {
  const std::string scale17 = scale_text(scale);
  std::vector<ResultRow> rows;
  for (const Shard& s : shards_) {
    std::lock_guard<std::mutex> g(s.mu);
    for (const auto& [key, e] : s.map) {
      if (e.fingerprint == fingerprint && e.scale17 == scale17) rows.push_back(e.row);
    }
  }
  std::sort(rows.begin(), rows.end(), [](const ResultRow& a, const ResultRow& b) {
    if (a.arch != b.arch) return a.arch < b.arch;
    return a.benchmark < b.benchmark;
  });
  return rows;
}

void ResultStore::compact() {
  std::lock_guard<std::mutex> io(io_mu_);
  FileLock ex(lock_fd_, FileLock::Mode::kExclusive,
              {opts_.cancel, opts_.lock_timeout_s}, lock_path_for(path_));
  catch_up_locked(/*repair=*/true);
  compact_locked("requested");
}

std::size_t ResultStore::size() const {
  std::size_t n = 0;
  for (const Shard& s : shards_) {
    std::lock_guard<std::mutex> g(s.mu);
    n += s.map.size();
  }
  return n;
}

StoreStats ResultStore::stats() const {
  std::lock_guard<std::mutex> io(io_mu_);
  return stats_locked();
}

std::string ResultStore::derive_path(const std::string& csv_path) {
  constexpr std::string_view kCsv = ".csv";
  if (csv_path.size() > kCsv.size() &&
      csv_path.compare(csv_path.size() - kCsv.size(), kCsv.size(), kCsv) == 0) {
    return csv_path.substr(0, csv_path.size() - kCsv.size()) + ".store";
  }
  return csv_path + ".store";
}

std::string ResultStore::quarantine_path_for(const std::string& store_path) {
  return store_path + ".quarantine";
}

FsckReport ResultStore::fsck(const std::string& path, StoreOptions opts) {
  FsckReport r;
  struct stat st {};
  if (::stat(path.c_str(), &st) != 0) {
    // No store — but a lingering quarantine from a since-deleted store still
    // deserves attention.
    const auto [qi, qb] = quarantine_totals(quarantine_path_for(path));
    r.stats.quarantine_incidents = qi;
    r.stats.quarantine_bytes = qb;
    return r;
  }
  r.present = true;
  ResultStore store(path, std::move(opts));  // runs full recovery
  r.stats = store.stats();
  return r;
}

// --- private: I/O under io_mu_ + flock --------------------------------------

void ResultStore::open_log_locked() {
  if (log_fd_ >= 0) ::close(log_fd_);
  log_fd_ = ::open(path_.c_str(), O_RDWR | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  if (log_fd_ < 0) {
    throw SimError("store: cannot open " + path_ + " (" + std::strerror(errno) + ")");
  }
  struct stat st {};
  if (::fstat(log_fd_, &st) != 0) {
    throw SimError("store: fstat of " + path_ + " failed (" + std::strerror(errno) +
                   ")");
  }
  log_dev_ = static_cast<std::uint64_t>(st.st_dev);
  log_ino_ = static_cast<std::uint64_t>(st.st_ino);
}

bool ResultStore::reopen_if_replaced_locked() {
  // Another process compacting renames a fresh file over the log; our fd
  // would keep reading the unlinked old inode forever. stat-by-path vs the
  // fd's identity detects that.
  struct stat st {};
  if (::stat(path_.c_str(), &st) == 0 &&
      static_cast<std::uint64_t>(st.st_dev) == log_dev_ &&
      static_cast<std::uint64_t>(st.st_ino) == log_ino_) {
    return false;
  }
  open_log_locked();
  return true;
}

std::uint64_t ResultStore::log_size_locked() const {
  struct stat st {};
  if (::fstat(log_fd_, &st) != 0) {
    throw SimError("store: fstat of " + path_ + " failed (" + std::strerror(errno) +
                   ")");
  }
  return static_cast<std::uint64_t>(st.st_size);
}

std::string ResultStore::read_range_locked(std::uint64_t offset,
                                           std::uint64_t len) const {
  std::string buf(static_cast<std::size_t>(len), '\0');
  std::size_t done = 0;
  while (done < buf.size()) {
    const ssize_t r = ::pread(log_fd_, buf.data() + done, buf.size() - done,
                              static_cast<off_t>(offset + done));
    if (r < 0) {
      if (errno == EINTR) continue;
      throw SimError("store: read of " + path_ + " failed (" + std::strerror(errno) +
                     ")");
    }
    if (r == 0) {  // shrank under us; scan what we got
      buf.resize(done);
      break;
    }
    done += static_cast<std::size_t>(r);
  }
  return buf;
}

void ResultStore::apply_record_locked(std::string_view payload, std::uint64_t offset,
                                      std::vector<Incident>* bad) {
  if (is_meta(payload)) {
    if (!meta_supported(payload)) {
      throw SimError("store: " + path_ + " is format '" + std::string(payload) +
                     "' but this build reads '" + std::string(kMetaPayload) +
                     "' — refusing to touch a store written by a newer version");
    }
    return;
  }
  const std::optional<PutRecord> rec = decode_put(payload);
  if (!rec) {
    // The frame verified (CRC ok) but the payload is not a record we know.
    // With the version guard above, that means damage, not a newer writer.
    bad->push_back({offset, std::string(payload), "undecodable"});
    return;
  }
  apply_put_locked(*rec);
}

void ResultStore::set_on_apply(std::function<void(const PutRecord&)> fn) {
  std::lock_guard<std::mutex> g(io_mu_);
  on_apply_ = std::move(fn);
}

void ResultStore::apply_put_locked(const PutRecord& rec) {
  const std::string key =
      store_key(rec.fingerprint, rec.scale17, rec.row.arch, rec.row.benchmark);
  Shard& s = shards_[shard_index(key)];
  std::lock_guard<std::mutex> g(s.mu);
  ++applied_records_;
  const auto [it, inserted] =
      s.map.insert_or_assign(key, Entry{rec.fingerprint, rec.scale17, rec.row});
  if (!inserted) ++dead_records_;
  if (on_apply_) on_apply_(rec);
}

void ResultStore::rescan_locked(bool repair) {
  for (Shard& s : shards_) {
    std::lock_guard<std::mutex> g(s.mu);
    s.map.clear();
  }
  applied_records_ = 0;
  dead_records_ = 0;

  const std::uint64_t size = log_size_locked();
  const std::string buf = read_range_locked(0, size);
  std::vector<Incident> bad;
  const WalScanReport report = scan_wal_buffer(
      buf, 0,
      [&](std::uint64_t off, std::string_view payload) {
        apply_record_locked(payload, off, &bad);
      },
      [&](std::uint64_t off, std::string_view bytes) {
        bad.push_back({off, std::string(bytes), "corrupt"});
      });
  scanned_end_ = report.scanned_end;
  if (!repair) return;  // readers observe the verified records, mutate nothing

  if (!bad.empty()) {
    quarantine_locked(bad);
    if (report.torn_tail) repaired_torn_bytes_ += report.torn_bytes;
    // Compacting rewrites the log from the surviving index — this excises
    // the corrupt ranges (and any torn tail) in one atomic replace.
    compact_locked("corruption excised");
    std::uint64_t quarantined = 0;
    for (const Incident& in : bad) quarantined += in.bytes.size();
    say("[store] " + path_ + ": quarantined " + std::to_string(bad.size()) +
        " corrupt range" + (bad.size() == 1 ? "" : "s") + " (" +
        std::to_string(quarantined) + " bytes) to " + quarantine_path_ +
        " — affected results will re-simulate");
  } else if (report.torn_tail) {
    if (::ftruncate(log_fd_, static_cast<off_t>(report.scanned_end)) != 0) {
      throw SimError("store: truncating torn tail of " + path_ + " failed (" +
                     std::strerror(errno) + ")");
    }
    if (::fsync(log_fd_) != 0) {
      throw SimError("store: fsync of " + path_ + " failed (" + std::strerror(errno) +
                     ")");
    }
    repaired_torn_bytes_ += report.torn_bytes;
    say("[store] " + path_ + ": truncated a torn tail of " +
        std::to_string(report.torn_bytes) +
        " bytes (interrupted append) — recovered to the last complete record");
  }
}

void ResultStore::catch_up_locked(bool repair) {
  if (reopen_if_replaced_locked()) {
    rescan_locked(repair);
    return;
  }
  const std::uint64_t size = log_size_locked();
  if (size < scanned_end_) {  // truncated externally: start over
    rescan_locked(repair);
    return;
  }
  if (size == scanned_end_) return;

  const std::string buf = read_range_locked(scanned_end_, size - scanned_end_);
  std::vector<Incident> bad;
  const WalScanReport report = scan_wal_buffer(
      buf, scanned_end_,
      [&](std::uint64_t off, std::string_view payload) {
        apply_record_locked(payload, off, &bad);
      },
      [&](std::uint64_t off, std::string_view bytes) {
        bad.push_back({off, std::string(bytes), "corrupt"});
      });
  scanned_end_ = report.scanned_end;
  if ((!report.clean() || !bad.empty()) && repair) {
    // Anomalies in the tail: redo the whole pass with repair, which owns
    // the quarantine/truncate logic. (Readers just stop at the last
    // verified frame.)
    rescan_locked(true);
  }
}

void ResultStore::quarantine_locked(const std::vector<Incident>& incidents) {
  const int qfd = ::open(quarantine_path_.c_str(),
                         O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  if (qfd < 0) {
    throw SimError("store: cannot open quarantine sidecar " + quarantine_path_ +
                   " (" + std::strerror(errno) + ")");
  }
  std::string blob;
  for (const Incident& in : incidents) {
    blob += kQuarantineTag;
    blob += "offset=" + std::to_string(in.offset) +
            " bytes=" + std::to_string(in.bytes.size()) + " reason=" + in.reason +
            "\n";
    blob += in.bytes;
    blob += '\n';
  }
  try {
    write_all_fd(qfd, blob.data(), blob.size(), quarantine_path_);
  } catch (...) {
    ::close(qfd);
    throw;
  }
  ::fsync(qfd);  // best effort: the log compaction below is the durable step
  ::close(qfd);
  quarantined_new_incidents_ += incidents.size();
  for (const Incident& in : incidents) quarantined_new_bytes_ += in.bytes.size();
}

void ResultStore::compact_locked(const char* reason) {
  std::vector<Entry> live;
  for (Shard& s : shards_) {
    std::lock_guard<std::mutex> g(s.mu);
    for (const auto& [key, e] : s.map) live.push_back(e);
  }
  std::sort(live.begin(), live.end(), [](const Entry& a, const Entry& b) {
    if (a.fingerprint != b.fingerprint) return a.fingerprint < b.fingerprint;
    if (a.scale17 != b.scale17) return a.scale17 < b.scale17;
    if (a.row.arch != b.row.arch) return a.row.arch < b.row.arch;
    return a.row.benchmark < b.row.benchmark;
  });

  const std::uint64_t before = log_size_locked();
  atomic_write_file(path_, [&](std::ostream& out) {
    out << frame_record(kMetaPayload);
    for (const Entry& e : live) {
      out << frame_record(encode_put(e.fingerprint, e.scale17, e.row));
    }
  });
  open_log_locked();  // the old fd points at the replaced (unlinked) inode
  scanned_end_ = log_size_locked();
  applied_records_ = live.size();
  dead_records_ = 0;
  ++compactions_;
  say("[store] " + path_ + ": compacted (" + reason + ") — " +
      std::to_string(live.size()) + " live rows, " + std::to_string(before) +
      " -> " + std::to_string(scanned_end_) + " bytes");
}

void ResultStore::maybe_compact_locked() {
  if (!opts_.auto_compact) return;
  if (applied_records_ < opts_.compact_min_records) return;
  if (dead_records_ * 2 <= applied_records_) return;  // compact once dead > live
  compact_locked("dead records dominate");
}

StoreStats ResultStore::stats_locked() const {
  StoreStats st;
  st.file_bytes = log_size_locked();
  std::set<std::pair<std::uint64_t, std::string>> groups;
  for (const Shard& s : shards_) {
    std::lock_guard<std::mutex> g(s.mu);
    st.live_rows += s.map.size();
    for (const auto& [key, e] : s.map) groups.emplace(e.fingerprint, e.scale17);
  }
  st.groups = groups.size();
  st.applied_records = applied_records_;
  st.dead_records = dead_records_;
  st.compactions = compactions_;
  st.repaired_torn_bytes = repaired_torn_bytes_;
  st.quarantined_new_incidents = quarantined_new_incidents_;
  st.quarantined_new_bytes = quarantined_new_bytes_;
  const auto [qi, qb] = quarantine_totals(quarantine_path_);
  st.quarantine_incidents = qi;
  st.quarantine_bytes = qb;
  return st;
}

}  // namespace sttgpu::store
