#include "store/file_lock.hpp"

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "common/error.hpp"

namespace sttgpu::store {

namespace {

std::int64_t now_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

std::string lock_path_for(const std::string& store_path) { return store_path + ".lock"; }

int open_lock_file(const std::string& store_path) {
  const std::string path = lock_path_for(store_path);
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  STTGPU_REQUIRE(fd >= 0, "store: cannot open lock file " + path + " (" +
                              std::strerror(errno) + ")");
  return fd;
}

FileLock::FileLock(int fd, Mode mode, const Options& opts, const std::string& what) {
  const int op = (mode == Mode::kExclusive ? LOCK_EX : LOCK_SH) | LOCK_NB;
  const std::int64_t deadline =
      opts.timeout_s > 0.0 ? now_ms() + static_cast<std::int64_t>(opts.timeout_s * 1000.0)
                           : now_ms();
  for (;;) {
    if (::flock(fd, op) == 0) {
      fd_ = fd;
      return;
    }
    const int err = errno;
    if (err == EINTR) continue;
    STTGPU_REQUIRE(err == EWOULDBLOCK,
                   "store: flock failed on " + what + " (" + std::strerror(err) + ")");
    if (opts.cancel != nullptr && opts.cancel->requested()) {
      const CancelReason r = opts.cancel->reason();
      throw Cancelled(r, "store: cancelled (" + std::string(cancel_reason_name(r)) +
                             ") while waiting for the lock on " + what);
    }
    STTGPU_REQUIRE(now_ms() < deadline,
                   "store: timed out waiting for the lock on " + what +
                       " — another process holds it (or its lock file is stuck); "
                       "retry, or remove " + what + " if the holder is gone");
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

FileLock::~FileLock() {
  if (fd_ >= 0) ::flock(fd_, LOCK_UN);
}

}  // namespace sttgpu::store
