#include "store/csv_format.hpp"

#include <cctype>
#include <fstream>
#include <iomanip>
#include <optional>
#include <sstream>

#include "common/atomic_file.hpp"

namespace sttgpu::store {

namespace {

constexpr char kCacheMagic[] = "# sttgpu-cache v2";
constexpr int kCacheFields = 9;

std::optional<double> parse_double(const std::string& cell) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(cell, &pos);
    if (pos != cell.size()) return std::nullopt;
    return v;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

std::optional<std::uint64_t> parse_u64(const std::string& cell) {
  try {
    std::size_t pos = 0;
    const std::uint64_t v = std::stoull(cell, &pos);
    if (pos != cell.size()) return std::nullopt;
    return v;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

std::vector<std::string> split_csv(const std::string& row) {
  std::vector<std::string> cells;
  std::istringstream ss(row);
  std::string cell;
  while (std::getline(ss, cell, ',')) cells.push_back(cell);
  if (!row.empty() && row.back() == ',') cells.emplace_back();
  return cells;
}

/// Parses one data row; nullopt (caller warns + skips) on any malformation.
std::optional<ResultRow> parse_row(const std::string& row) {
  const std::vector<std::string> cells = split_csv(row);
  if (cells.size() != kCacheFields) return std::nullopt;
  ResultRow m;
  m.arch = cells[0];
  m.benchmark = cells[1];
  if (m.arch.empty() || m.benchmark.empty()) return std::nullopt;
  const auto ipc = parse_double(cells[2]);
  const auto cycles = parse_u64(cells[3]);
  const auto dynamic_w = parse_double(cells[4]);
  const auto leakage_w = parse_double(cells[5]);
  const auto total_w = parse_double(cells[6]);
  const auto write_share = parse_double(cells[7]);
  const auto miss_rate = parse_double(cells[8]);
  if (!ipc || !cycles || !dynamic_w || !leakage_w || !total_w || !write_share ||
      !miss_rate) {
    return std::nullopt;
  }
  m.ipc = *ipc;
  m.cycles = *cycles;
  m.dynamic_w = *dynamic_w;
  m.leakage_w = *leakage_w;
  m.total_w = *total_w;
  m.write_share = *write_share;
  m.miss_rate = *miss_rate;
  return m;
}

/// Extracts "key=value" from a whitespace-separated header line.
std::optional<std::string> header_field(const std::string& header, const std::string& key) {
  std::istringstream ss(header);
  std::string token;
  while (ss >> token) {
    if (token.rfind(key + "=", 0) == 0) return token.substr(key.size() + 1);
  }
  return std::nullopt;
}

void warn(const LogFn& log, const std::string& line) {
  if (log) log(line);
}

bool whitespace_only(std::istream& in) {
  char c = 0;
  while (in.get(c)) {
    if (std::isspace(static_cast<unsigned char>(c)) == 0) return false;
  }
  return true;
}

}  // namespace

std::vector<ResultRow> read_csv_v2(const std::string& path, double scale,
                                   std::uint64_t fingerprint, const LogFn& log) {
  std::vector<ResultRow> rows;
  std::ifstream in(path);
  if (!in) return rows;

  // An empty or whitespace-only file is a cold cache (e.g. `touch`ed by a
  // wrapper script, or truncated by hand), not a malformed one: start fresh
  // without the scary foreign-format warning.
  if (whitespace_only(in)) return rows;
  in.clear();
  in.seekg(0);

  std::string header;
  std::getline(in, header);
  if (header.rfind(kCacheMagic, 0) != 0) {
    warn(log, "[cache] " + path +
                  ": not a v2 result cache (old or foreign format) — ignoring it;"
                  " the matrix will re-simulate and rewrite it");
    return rows;
  }
  const auto file_scale = header_field(header, "scale");
  const auto file_config = header_field(header, "config");
  if (!file_scale || !file_config) {
    warn(log, "[cache] " + path + ": malformed v2 header — ignoring");
    return rows;
  }
  const auto parsed_scale = parse_double(*file_scale);
  if (!parsed_scale || *parsed_scale != scale) {
    warn(log, "[cache] " + path + ": written at scale=" + *file_scale +
                  ", requested scale=" + scale_text(scale) + " — ignoring stale cache");
    return rows;
  }
  if (*file_config != fingerprint_hex(fingerprint)) {
    warn(log, "[cache] " + path + ": simulator config fingerprint mismatch (cache " +
                  *file_config + ", current " + fingerprint_hex(fingerprint) +
                  ") — ignoring stale cache");
    return rows;
  }

  std::string column_header;
  std::getline(in, column_header);  // column names; ignored

  // Malformed rows are skipped (they will simply re-simulate), but reported
  // as ONE summary line — a corrupted tail would otherwise emit hundreds of
  // per-row warnings and bury the progress log.
  std::size_t skipped = 0;
  constexpr std::size_t kMaxQuoted = 3;
  std::ostringstream offenders;
  std::string row;
  std::size_t lineno = 2;
  while (std::getline(in, row)) {
    ++lineno;
    if (row.empty()) continue;
    const std::optional<ResultRow> m = parse_row(row);
    if (!m) {
      ++skipped;
      if (skipped <= kMaxQuoted) {
        offenders << "\n  line " << lineno << ": " << row;
      }
      continue;
    }
    rows.push_back(*m);
  }
  if (skipped > 0) {
    std::ostringstream os;
    os << "[cache] " << path << ": skipped " << skipped << " malformed row"
       << (skipped == 1 ? "" : "s") << " (will re-simulate)" << offenders.str();
    if (skipped > kMaxQuoted) os << "\n  ... and " << skipped - kMaxQuoted << " more";
    warn(log, os.str());
  }
  return rows;
}

void write_csv_v2(const std::string& path, double scale, std::uint64_t fingerprint,
                  const std::vector<ResultRow>& rows) {
  atomic_write_file(path, [&](std::ostream& out) {
    out << std::setprecision(17);
    out << kCacheMagic << " scale=" << scale_text(scale)
        << " config=" << fingerprint_hex(fingerprint) << '\n';
    out << "arch,benchmark,ipc,cycles,dynamic_w,leakage_w,total_w,write_share,miss_rate\n";
    for (const ResultRow& m : rows) {
      out << m.arch << ',' << m.benchmark << ',' << m.ipc << ',' << m.cycles << ','
          << m.dynamic_w << ',' << m.leakage_w << ',' << m.total_w << ','
          << m.write_share << ',' << m.miss_rate << '\n';
    }
  });
}

}  // namespace sttgpu::store
