// Write-ahead log framing for the result store.
//
// The log is a flat sequence of frames:
//
//     [u32 magic "STR1"] [u32 payload_len] [u32 crc32(payload)] [payload]
//
// all little-endian, 12-byte header. Appends are single write(2) calls
// followed by fsync, performed under the store's exclusive flock — so a
// reader holding the shared lock can only ever observe whole frames, and a
// crash (power cut, SIGKILL) can only ever leave a *prefix* of a frame at
// the tail.
//
// scan_wal_buffer() classifies everything it walks over:
//   * complete frames with a matching CRC    -> on_record
//   * a valid frame prefix at end-of-buffer  -> torn tail (truncate on
//     repair: exactly the crashed-mid-append case)
//   * anything else (bad magic, absurd length, CRC mismatch) -> on_corrupt
//     with the exact byte range, after which the scanner resyncs by
//     searching for the next offset that starts a verifiable frame —
//     bit rot in record 3 never takes records 4..N down with it.
//
// Crash injection: wal_append() honours a byte budget (STTGPU_STORE_CRASH_AT
// or testing_set_crash_at()) and SIGKILLs the process mid-write when the
// budget is crossed — the hook the crash-injection harness and CI smoke use
// to prove recovery at arbitrary torn offsets.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

namespace sttgpu::store {

inline constexpr std::uint32_t kWalMagic = 0x31525453u;  // "STR1" in LE byte order
inline constexpr std::size_t kWalHeaderBytes = 12;
/// Sanity cap on payload_len: a corrupt length field must not make the
/// scanner swallow the rest of the log as one "record".
inline constexpr std::uint32_t kWalMaxPayload = 1u << 20;

struct WalScanReport {
  std::uint64_t scanned_end = 0;   ///< offset just past the last complete frame
  std::size_t records = 0;         ///< complete, CRC-verified frames seen
  std::size_t corrupt_ranges = 0;  ///< distinct quarantinable byte ranges
  std::uint64_t corrupt_bytes = 0;
  bool torn_tail = false;  ///< valid frame prefix at end of buffer
  std::uint64_t torn_bytes = 0;

  bool clean() const { return corrupt_ranges == 0 && !torn_tail; }
};

/// Walks @p buf (the log's bytes starting at file offset @p base_offset).
/// Offsets reported to the callbacks and in the report are file offsets.
/// @p on_corrupt may be null (ranges are still counted).
WalScanReport scan_wal_buffer(
    std::string_view buf, std::uint64_t base_offset,
    const std::function<void(std::uint64_t, std::string_view)>& on_record,
    const std::function<void(std::uint64_t, std::string_view)>& on_corrupt = nullptr);

/// Frames @p payload for appending. Throws SimError if the payload is empty
/// or exceeds kWalMaxPayload.
std::string frame_record(std::string_view payload);

/// Appends @p bytes (one or more complete frames) to @p fd with write(2),
/// then fsyncs when @p sync. Throws SimError (with errno context, naming
/// @p path) on failure. Honours the crash-injection budget.
void wal_append(int fd, std::string_view bytes, const std::string& path,
                bool sync = true);

/// Test hook: SIGKILL the process once @p bytes total have been handed to
/// wal_append() across the whole process (a crossing append is written
/// partially first, simulating a torn write). Negative disables. The
/// STTGPU_STORE_CRASH_AT environment variable seeds the same budget for
/// child processes / the CLI.
void testing_set_crash_at(long long bytes);

}  // namespace sttgpu::store
