// The v2 CSV result format, ported out of sim/runner.cpp.
//
//   # sttgpu-cache v2 scale=<scale> config=<hex fingerprint>
//   arch,benchmark,ipc,cycles,dynamic_w,leakage_w,total_w,write_share,miss_rate
//   <rows ...>
//
// Since the WAL-backed ResultStore became the source of truth, CSV is the
// *export* format: human-diffable, checked in (fig8_cache.csv), and the
// one-time migration source for stores that do not exist yet. The header
// still pins one (scale, config fingerprint) pair per file; a mismatch on
// either means every row is stale and the whole file is ignored. Values are
// written with max_digits10 precision so a load -> save round trip is
// bit-exact — the checked-in cache regenerates byte-identically.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "store/record.hpp"

namespace sttgpu::store {

/// Line-oriented warning sink ("[cache] ..." messages). Null is allowed.
using LogFn = std::function<void(const std::string&)>;

/// Loads a v2 CSV. Returns no rows — with a warning via @p log — if the
/// file is not format v2, or was written at a different scale / config
/// fingerprint. An absent, empty, or whitespace-only file is simply a cold
/// cache: no rows, no warning. Malformed rows are skipped and summarized in
/// one warning.
std::vector<ResultRow> read_csv_v2(const std::string& path, double scale,
                                   std::uint64_t fingerprint, const LogFn& log);

/// Writes @p rows (in the given order) as a v2 CSV via the atomic
/// write-fsync-rename discipline. Throws SimError if the path is not
/// writable.
void write_csv_v2(const std::string& path, double scale, std::uint64_t fingerprint,
                  const std::vector<ResultRow>& rows);

}  // namespace sttgpu::store
