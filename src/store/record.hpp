// Result-store records: the persisted schema of one simulation result and
// its key, plus the text encoding that goes inside a WAL frame.
//
// A store row is keyed by (config fingerprint, workload scale, config-label
// a.k.a. architecture, kernel a.k.a. benchmark) — unlike the v2 CSV export,
// which pins one (scale, fingerprint) pair per file, a single store holds
// results for any number of configurations side by side, so design-space
// sweeps across competing architectures dedupe against one log.
//
// Payloads are single text lines ("put <fp> <scale> <arch> <bench> <nums>")
// rather than packed binary: they are human-inspectable with `strings`, the
// framing layer (wal.hpp) already provides length + CRC32 integrity, and
// numbers are written with max_digits10 precision so a decode -> encode
// round trip is byte-exact.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace sttgpu::store {

/// One persisted simulation result. Mirrors sim::Metrics deliberately *by
/// value, not by type*: this is the on-disk schema, owned by the store
/// module so the simulator can evolve its in-memory Metrics independently.
struct ResultRow {
  std::string arch;       ///< config-label (architecture name, e.g. "C1")
  std::string benchmark;  ///< kernel/workload name (e.g. "bfs")
  double ipc = 0.0;
  std::uint64_t cycles = 0;
  double dynamic_w = 0.0;
  double leakage_w = 0.0;
  double total_w = 0.0;
  double write_share = 0.0;
  double miss_rate = 0.0;
};

/// Canonical 17-significant-digit text form of a scale (or any double):
/// the key uses the text form so exact-equality questions never touch
/// floating-point comparison, and 17 digits round-trip doubles uniquely.
std::string scale_text(double scale);

/// Lower-case hex fingerprint, exactly as the v2 CSV header spells it.
std::string fingerprint_hex(std::uint64_t fingerprint);

/// The in-memory index key: "<fp_hex> <scale17> <arch> <benchmark>".
std::string store_key(std::uint64_t fingerprint, const std::string& scale17,
                      const std::string& arch, const std::string& benchmark);

/// Throws SimError if @p value cannot be a key token (empty, or contains
/// whitespace / control characters that would corrupt the text payload).
void validate_key_token(const char* what, const std::string& value);

// --- payload encode/decode -------------------------------------------------

/// The store format marker written as the first record of every log.
/// Version bumps are a hard stop on open: a store written by a newer format
/// must not be silently misread.
inline constexpr std::string_view kMetaPayload = "meta sttgpu-store v1";
inline constexpr std::string_view kMetaPrefix = "meta ";

bool is_meta(std::string_view payload);
bool meta_supported(std::string_view payload);

/// Encodes one result as a "put" payload line.
std::string encode_put(std::uint64_t fingerprint, double scale, const ResultRow& row);

/// Same, with the scale already in canonical text form (compaction re-emits
/// records without ever round-tripping the scale through a double).
std::string encode_put(std::uint64_t fingerprint, const std::string& scale17,
                       const ResultRow& row);

struct PutRecord {
  std::uint64_t fingerprint = 0;
  std::string scale17;  ///< scale in canonical text form, as stored
  ResultRow row;
};

/// Strict decode of a "put" payload; nullopt on any malformation (wrong
/// field count, unparseable number). The caller quarantines such records.
std::optional<PutRecord> decode_put(std::string_view payload);

}  // namespace sttgpu::store
