// CRC32 (IEEE 802.3: reflected polynomial 0xEDB88320, init and final-xor
// 0xFFFFFFFF) — the per-record checksum of the result-store write-ahead
// log. Table-driven with a constexpr-generated table so the store has no
// runtime initialization order to worry about and no dependencies.
//
// The classic check vector holds: crc32("123456789") == 0xCBF43926.
#pragma once

#include <cstdint>
#include <string_view>

namespace sttgpu::store {

namespace detail {

struct Crc32Table {
  std::uint32_t v[256]{};
  constexpr Crc32Table() {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) != 0 ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
      }
      v[i] = c;
    }
  }
};

inline constexpr Crc32Table kCrc32Table{};

}  // namespace detail

/// CRC32 of @p bytes. Chain blocks by passing the previous result as
/// @p seed (crc32(ab) == crc32(b, crc32(a))).
inline std::uint32_t crc32(std::string_view bytes, std::uint32_t seed = 0) {
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (const char ch : bytes) {
    c = detail::kCrc32Table.v[(c ^ static_cast<unsigned char>(ch)) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace sttgpu::store
