#include "sim/trace.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "sttl2/factories.hpp"

namespace sttgpu::sim {

namespace {

/// L2Bank decorator: records every request, delegates everything.
class TracingBank final : public gpu::L2Bank {
 public:
  TracingBank(std::unique_ptr<gpu::L2Bank> inner, unsigned bank_id,
              std::vector<TraceRecord>* sink)
      : inner_(std::move(inner)), bank_id_(bank_id), sink_(sink) {}

  bool accepting() const override { return inner_->accepting(); }
  void enqueue(const gpu::L2Request& request, Cycle now) override {
    sink_->push_back({now, bank_id_, request.addr, request.is_store, request.sm_id});
    inner_->enqueue(request, now);
  }
  void tick(Cycle now) override { inner_->tick(now); }
  void drain_responses(Cycle now, std::vector<gpu::L2Response>& out) override {
    inner_->drain_responses(now, out);
  }
  void on_dram_read_done(std::uint64_t cookie, Cycle now) override {
    inner_->on_dram_read_done(cookie, now);
  }
  bool idle() const override { return inner_->idle(); }
  Cycle next_event_cycle() const override { return inner_->next_event_cycle(); }
  const gpu::L2BankStats& stats() const override { return inner_->stats(); }
  const power::EnergyLedger& energy() const override { return inner_->energy(); }
  Watt leakage_w() const override { return inner_->leakage_w(); }

  gpu::L2Bank& inner() const { return *inner_; }

 private:
  std::unique_ptr<gpu::L2Bank> inner_;
  unsigned bank_id_;
  std::vector<TraceRecord>* sink_;
};

class TracingFactory final : public gpu::L2BankFactory {
 public:
  TracingFactory(gpu::L2BankFactory& inner, std::vector<TraceRecord>* sink)
      : inner_(&inner), sink_(sink) {}

  std::unique_ptr<gpu::L2Bank> make_bank(unsigned bank_id, gpu::DramChannel& dram) override {
    return std::make_unique<TracingBank>(inner_->make_bank(bank_id, dram), bank_id, sink_);
  }
  void collect(const gpu::L2Bank& bank, CounterSet& out) const override {
    const auto* tracing = dynamic_cast<const TracingBank*>(&bank);
    STTGPU_ASSERT(tracing != nullptr);
    inner_->collect(tracing->inner(), out);
  }

 private:
  gpu::L2BankFactory* inner_;
  std::vector<TraceRecord>* sink_;
};

template <typename FactoryT>
ReplayResult replay_impl(const std::vector<TraceRecord>& records, FactoryT& factory,
                         const gpu::GpuConfig& gpu_cfg) {
  unsigned num_banks = 0;
  for (const TraceRecord& r : records) num_banks = std::max(num_banks, r.bank + 1);
  STTGPU_REQUIRE(num_banks > 0, "replay_trace: empty trace");

  // Per-bank private DRAM channel, wired exactly like gpu::Gpu does it.
  std::vector<std::unique_ptr<gpu::L2Bank>> banks(num_banks);
  std::vector<std::unique_ptr<gpu::DramChannel>> drams;
  drams.reserve(num_banks);
  for (unsigned b = 0; b < num_banks; ++b) {
    drams.push_back(std::make_unique<gpu::DramChannel>(
        gpu_cfg, [&banks, b](std::uint64_t cookie, Cycle now) {
          banks[b]->on_dram_read_done(cookie, now);
        }));
  }
  for (unsigned b = 0; b < num_banks; ++b) banks[b] = factory.make_bank(b, *drams[b]);

  std::vector<TraceRecord> sorted = records;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const TraceRecord& a, const TraceRecord& b) { return a.cycle < b.cycle; });

  std::vector<gpu::L2Response> responses;
  std::uint64_t next_id = 1;
  Cycle now = 0;
  std::size_t i = 0;
  const auto all_idle = [&] {
    for (const auto& bank : banks) {
      if (!bank->idle()) return false;
    }
    for (const auto& d : drams) {
      if (!d->idle()) return false;
    }
    return true;
  };

  while (i < sorted.size() || !all_idle()) {
    while (i < sorted.size() && sorted[i].cycle <= now) {
      const TraceRecord& r = sorted[i];
      gpu::L2Request req;
      req.id = next_id++;
      req.addr = r.addr;
      req.is_store = r.is_store;
      req.sm_id = r.sm;
      req.created = now;
      // Replay is open-loop: if the bank input is momentarily full, we stall
      // the whole feed to the next cycle (preserves order).
      if (!banks[r.bank]->accepting()) break;
      banks[r.bank]->enqueue(req, now);
      ++i;
    }
    for (auto& d : drams) d->tick(now);
    for (auto& bank : banks) {
      bank->tick(now);
      responses.clear();
      bank->drain_responses(now, responses);  // responses are discarded
    }
    ++now;
    STTGPU_REQUIRE(now < 2'000'000'000, "replay_trace: exceeded the cycle ceiling");
  }

  ReplayResult result;
  result.cycles = now;
  for (const auto& bank : banks) {
    result.stats.merge(bank->stats());
    result.dynamic_energy_pj += bank->energy().total_pj();
    result.leakage_w += bank->leakage_w();
    factory.collect(*bank, result.counters);
  }
  return result;
}

}  // namespace

Metrics record_trace(const ArchSpec& spec, const workload::Workload& workload,
                     const std::string& trace_path, const RunOptions& opts) {
  // Run-mode knobs come from opts, exactly as in run_one (runner.cpp).
  ArchSpec s = spec;
  s.gpu.fast_forward = opts.fast_forward;
  s.gpu.telemetry = opts.telemetry;
  if (s.two_part) {
    s.two_part_cfg.faults = opts.faults;
  } else {
    s.uniform.faults = opts.faults;
  }

  std::vector<TraceRecord> records;
  std::unique_ptr<gpu::L2BankFactory> inner;
  const Clock clock = s.gpu.clock();
  if (s.two_part) {
    inner = std::make_unique<sttl2::TwoPartBankFactory>(s.two_part_cfg, clock);
  } else {
    inner = std::make_unique<sttl2::UniformBankFactory>(s.uniform, clock);
  }
  TracingFactory factory(*inner, &records);
  gpu::Gpu g(s.gpu, factory);
  const gpu::RunResult run = g.run(workload);

  save_trace(trace_path, records);

  Metrics m;
  m.arch = spec.name;
  m.benchmark = workload.name;
  m.ipc = run.ipc;
  m.cycles = run.cycles;
  m.leakage_w = run.l2_leakage_w;
  m.dynamic_w = run.runtime_s > 0 ? run.l2_energy.total_pj() * 1e-12 / run.runtime_s : 0.0;
  m.total_w = m.dynamic_w + m.leakage_w;
  m.l2_write_share = run.l2.write_share();
  m.l2_miss_rate = run.l2.miss_rate();
  return m;
}

void save_trace(const std::string& trace_path, const std::vector<TraceRecord>& records) {
  std::ofstream out(trace_path);
  STTGPU_REQUIRE(static_cast<bool>(out), "save_trace: cannot open " + trace_path);
  out << "cycle,bank,addr,is_store,sm\n";
  for (const TraceRecord& r : records) {
    out << r.cycle << ',' << r.bank << ',' << r.addr << ',' << (r.is_store ? 1 : 0) << ','
        << r.sm << '\n';
  }
}

std::vector<TraceRecord> load_trace(const std::string& trace_path) {
  std::ifstream in(trace_path);
  STTGPU_REQUIRE(static_cast<bool>(in), "load_trace: cannot open " + trace_path);
  std::string line;
  STTGPU_REQUIRE(static_cast<bool>(std::getline(in, line)), "load_trace: empty file");
  STTGPU_REQUIRE(line == "cycle,bank,addr,is_store,sm",
                 "load_trace: unrecognized header: " + line);

  std::vector<TraceRecord> records;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream ss(line);
    TraceRecord r;
    char comma = 0;
    int is_store = 0;
    ss >> r.cycle >> comma >> r.bank >> comma >> r.addr >> comma >> is_store >> comma >> r.sm;
    STTGPU_REQUIRE(!ss.fail(), "load_trace: malformed line: " + line);
    r.is_store = is_store != 0;
    records.push_back(r);
  }
  return records;
}

ReplayResult replay_trace(const std::vector<TraceRecord>& records,
                          const sttl2::TwoPartBankConfig& bank_cfg,
                          const gpu::GpuConfig& gpu_cfg) {
  sttl2::TwoPartBankFactory factory(bank_cfg, gpu_cfg.clock());
  return replay_impl(records, factory, gpu_cfg);
}

ReplayResult replay_trace(const std::vector<TraceRecord>& records,
                          const sttl2::UniformBankConfig& bank_cfg,
                          const gpu::GpuConfig& gpu_cfg) {
  sttl2::UniformBankFactory factory(bank_cfg, gpu_cfg.clock());
  return replay_impl(records, factory, gpu_cfg);
}

}  // namespace sttgpu::sim
