#include "sim/probe.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "sttl2/factories.hpp"
#include "sttl2/two_part_bank.hpp"
#include "sttl2/uniform_bank.hpp"

namespace sttgpu::sim {

sttl2::TwoPartBankConfig c1_bank_config() {
  const ArchSpec c1 = make_arch(Architecture::kC1);
  return c1.two_part_cfg;
}

sttl2::UniformBankConfig sram_bank_config() {
  const ArchSpec base = make_arch(Architecture::kSramBaseline);
  return base.uniform;
}

TwoPartProbe run_two_part(const std::string& benchmark,
                          const sttl2::TwoPartBankConfig& bank_cfg, double scale,
                          const gpu::GpuConfig* gpu_cfg) {
  const gpu::GpuConfig gcfg = gpu_cfg ? *gpu_cfg : gpu::GpuConfig{};
  sttl2::TwoPartBankFactory factory(bank_cfg, gcfg.clock());
  gpu::Gpu g(gcfg, factory);
  const workload::Workload w = workload::make_benchmark(benchmark, scale);
  const gpu::RunResult r = g.run(w);

  TwoPartProbe probe;
  probe.metrics.arch = "two-part";
  probe.metrics.benchmark = benchmark;
  probe.metrics.ipc = r.ipc;
  probe.metrics.cycles = r.cycles;
  probe.metrics.leakage_w = r.l2_leakage_w;
  probe.metrics.dynamic_w =
      r.runtime_s > 0.0 ? r.l2_energy.total_pj() * 1e-12 / r.runtime_s : 0.0;
  probe.metrics.total_w = probe.metrics.dynamic_w + probe.metrics.leakage_w;
  probe.metrics.l2_write_share = r.l2.write_share();
  probe.metrics.l2_miss_rate = r.l2.miss_rate();
  probe.counters = r.l2_counters;

  // Merge the per-bank histograms and wear statistics.
  std::vector<std::uint64_t> lr_buckets;
  std::vector<double> lr_edges;
  std::uint64_t hr_within = 0;
  StreamStats wear_inter, wear_intra;
  for (unsigned b = 0; b < g.num_banks(); ++b) {
    const auto* bank = dynamic_cast<const sttl2::TwoPartBank*>(&g.bank(b));
    STTGPU_ASSERT(bank != nullptr);
    const Histogram& lr = bank->lr_rewrites().histogram();
    if (lr_buckets.empty()) {
      lr_buckets.assign(lr.bucket_count(), 0);
      for (std::size_t i = 0; i + 1 < lr.bucket_count(); ++i) {
        lr_edges.push_back(lr.upper_edge(i));
      }
    }
    for (std::size_t i = 0; i < lr.bucket_count(); ++i) lr_buckets[i] += lr.bucket(i);
    probe.lr_intervals += lr.total();

    const Histogram& hr = bank->hr_rewrites().histogram();
    probe.hr_intervals += hr.total();
    // Buckets 0..2 of the HR tracker are <=1ms, <=10ms, <=40ms.
    for (std::size_t i = 0; i < 3 && i < hr.bucket_count(); ++i) hr_within += hr.bucket(i);

    wear_inter.add(bank->lr_wear().inter_set_cov());
    wear_intra.add(bank->lr_wear().intra_set_cov());
    const auto& lw = bank->lr_wear();
    for (std::uint64_t s = 0; s < lw.sets(); ++s) {
      for (unsigned w = 0; w < lw.ways(); ++w) {
        probe.lr_wear_max_line = std::max(probe.lr_wear_max_line, lw.way_writes(s, w));
      }
    }
    const auto& hw = bank->hr_wear();
    for (std::uint64_t s = 0; s < hw.sets(); ++s) {
      for (unsigned w = 0; w < hw.ways(); ++w) {
        probe.hr_wear_max_line = std::max(probe.hr_wear_max_line, hw.way_writes(s, w));
      }
    }
  }
  probe.lr_wear_inter_cov = wear_inter.mean();
  probe.lr_wear_intra_cov = wear_intra.mean();
  if (!lr_edges.empty()) {
    Histogram merged(lr_edges);
    for (std::size_t i = 0; i < lr_buckets.size() && lr_buckets[i] + 1 != 0; ++i) {
      if (lr_buckets[i] == 0) continue;
      // Reinsert each bucket's mass at a representative value.
      const double v = i < lr_edges.size() ? lr_edges[i] : lr_edges.back() * 2;
      merged.add(v, lr_buckets[i]);
    }
    probe.lr_interval_hist = std::move(merged);
  }
  probe.lr_interval_fractions.assign(lr_buckets.size(), 0.0);
  if (probe.lr_intervals) {
    for (std::size_t i = 0; i < lr_buckets.size(); ++i) {
      probe.lr_interval_fractions[i] =
          static_cast<double>(lr_buckets[i]) / static_cast<double>(probe.lr_intervals);
    }
  }
  probe.hr_within_40ms =
      probe.hr_intervals
          ? static_cast<double>(hr_within) / static_cast<double>(probe.hr_intervals)
          : 1.0;

  const std::uint64_t demand = probe.counters.get("w_demand");
  probe.lr_write_utilization =
      demand ? static_cast<double>(probe.counters.get("w_lr_hit")) /
                   static_cast<double>(demand)
             : 0.0;
  return probe;
}

UniformProbe run_uniform(const std::string& benchmark,
                         const sttl2::UniformBankConfig& bank_cfg, double scale) {
  const gpu::GpuConfig gcfg{};
  sttl2::UniformBankFactory factory(bank_cfg, gcfg.clock());
  gpu::Gpu g(gcfg, factory);
  const workload::Workload w = workload::make_benchmark(benchmark, scale);
  const gpu::RunResult r = g.run(w);

  UniformProbe probe;
  probe.metrics.arch = "uniform";
  probe.metrics.benchmark = benchmark;
  probe.metrics.ipc = r.ipc;
  probe.metrics.cycles = r.cycles;
  probe.metrics.l2_write_share = r.l2.write_share();
  probe.metrics.l2_miss_rate = r.l2.miss_rate();
  probe.counters = r.l2_counters;
  probe.write_share = r.l2.write_share();

  StreamStats inter, intra;
  for (unsigned b = 0; b < g.num_banks(); ++b) {
    const auto* bank = dynamic_cast<const sttl2::UniformBank*>(&g.bank(b));
    STTGPU_ASSERT(bank != nullptr);
    inter.add(bank->write_variation().inter_set_cov());
    intra.add(bank->write_variation().intra_set_cov());
  }
  probe.inter_set_cov = inter.mean();
  probe.intra_set_cov = intra.mean();
  return probe;
}

}  // namespace sttgpu::sim
