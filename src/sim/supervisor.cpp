#include "sim/supervisor.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <exception>
#include <thread>

#include "common/error.hpp"

namespace sttgpu::sim {

void JobControl::checkpoint() const {
  if (cancel == nullptr || !cancel->requested()) return;
  const CancelReason r = cancel->reason();
  throw Cancelled(r, std::string("cancelled (") + cancel_reason_name(r) + ")");
}

const char* job_status_name(JobStatus s) noexcept {
  switch (s) {
    case JobStatus::kOk: return "ok";
    case JobStatus::kFailed: return "failed";
    case JobStatus::kCancelled: return "cancelled";
    case JobStatus::kWatchdog: return "watchdog";
    case JobStatus::kTimeout: return "timeout";
    case JobStatus::kSkipped: return "skipped";
  }
  return "?";
}

std::size_t SupervisedResult::count(JobStatus s) const noexcept {
  return static_cast<std::size_t>(
      std::count_if(outcomes.begin(), outcomes.end(),
                    [s](const JobOutcome& o) { return o.status == s; }));
}

bool SupervisedResult::all_ok() const noexcept {
  return count(JobStatus::kOk) == outcomes.size();
}

std::string SupervisedResult::manifest() const {
  if (all_ok()) return {};
  const std::size_t bad = outcomes.size() - count(JobStatus::kOk);
  std::string m = "supervisor: " + std::to_string(bad) + " of " +
                  std::to_string(outcomes.size()) + " jobs did not complete (";
  bool first = true;
  for (const JobStatus s : {JobStatus::kFailed, JobStatus::kCancelled, JobStatus::kWatchdog,
                            JobStatus::kTimeout, JobStatus::kSkipped}) {
    const std::size_t n = count(s);
    if (n == 0) continue;
    if (!first) m += ", ";
    m += std::to_string(n) + " " + job_status_name(s);
    first = false;
  }
  m += ")";
  for (const JobOutcome& o : outcomes) {
    if (o.status == JobStatus::kOk || o.status == JobStatus::kSkipped) continue;
    m += "\n  [" + std::string(job_status_name(o.status)) + "] " + o.label + " after " +
         std::to_string(o.attempts) + (o.attempts == 1 ? " attempt" : " attempts");
    if (!o.error.empty()) m += ": " + o.error;
  }
  return m;
}

namespace {

using SteadyClock = std::chrono::steady_clock;

std::int64_t now_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             SteadyClock::now().time_since_epoch())
      .count();
}

std::string describe(const std::exception_ptr& eptr) {
  try {
    std::rethrow_exception(eptr);
  } catch (const std::exception& e) {
    return e.what();
  } catch (...) {
    return "non-standard exception";
  }
}

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (const unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

/// Interruptible sleep: returns early (false) if the external token fires.
bool backoff_sleep(const SupervisorOptions& opts, const std::string& label,
                   unsigned attempt) {
  const std::int64_t deadline =
      now_ms() + static_cast<std::int64_t>(
                     retry_backoff_seconds(opts.retry_backoff_s, label, attempt) * 1000.0);
  while (now_ms() < deadline) {
    if (opts.external != nullptr && opts.external->requested()) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return true;
}

/// Per-job shared state between its worker thread and the monitor.
struct Slot {
  CancelToken token;                          ///< job-private (merged) token
  std::atomic<std::uint64_t> heartbeat{0};    ///< written by the job
  std::atomic<std::uint32_t> critical{0};     ///< open CriticalSection depth
  std::atomic<std::int64_t> attempt_start_ms{-1};  ///< -1: not running
  // Monitor-private bookkeeping (only the monitor thread touches these).
  std::uint64_t last_seen_beat = 0;
  std::int64_t last_progress_ms = 0;
};

}  // namespace

double retry_backoff_seconds(double base_s, const std::string& label, unsigned attempt) {
  double delay = base_s * std::pow(2.0, static_cast<double>(attempt));
  delay = std::min(delay, 30.0);
  const std::uint64_t h =
      fnv1a(label) ^ (0x9E3779B97F4A7C15ull * static_cast<std::uint64_t>(attempt + 1));
  return delay * (1.0 + 0.5 * static_cast<double>(h % 1024) / 1024.0);
}

SupervisedResult run_supervised(std::vector<Job> jobs, unsigned n_threads,
                                const SupervisorOptions& opts) {
  SupervisedResult result;
  result.outcomes.resize(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) result.outcomes[i].label = jobs[i].label;
  if (jobs.empty()) return result;

  std::vector<Slot> slots(jobs.size());
  std::atomic<std::size_t> next{0};
  std::atomic<bool> stop{false};  ///< fail-fast tripped or externally cancelled

  const auto externally_cancelled = [&]() {
    return opts.external != nullptr && opts.external->requested();
  };

  const auto run_job = [&](std::size_t i) {
    const Job& job = jobs[i];
    Slot& slot = slots[i];
    JobOutcome& out = result.outcomes[i];
    for (unsigned attempt = 0;; ++attempt) {
      if (externally_cancelled() || slot.token.reason() == CancelReason::kUser) {
        out.status = JobStatus::kCancelled;
        if (out.error.empty()) out.error = "cancelled before start";
        return;
      }
      out.attempts = attempt + 1;
      slot.heartbeat.store(0, std::memory_order_relaxed);
      slot.attempt_start_ms.store(now_ms(), std::memory_order_release);
      try {
        const JobControl ctl{&slot.token, &slot.heartbeat, &slot.critical};
        if (job.supervised) {
          job.supervised(ctl);
        } else {
          job.fn();
        }
        slot.attempt_start_ms.store(-1, std::memory_order_release);
        out.status = JobStatus::kOk;
        out.error.clear();
        return;
      } catch (const Cancelled& c) {
        slot.attempt_start_ms.store(-1, std::memory_order_release);
        out.error = c.what();
        switch (c.reason()) {
          case CancelReason::kWatchdog: out.status = JobStatus::kWatchdog; break;
          case CancelReason::kTimeout: out.status = JobStatus::kTimeout; break;
          default: out.status = JobStatus::kCancelled; break;
        }
        // A watchdog/timeout kill is deterministic enough not to retry, and
        // it is a real failure for fail-fast purposes; a user cancellation
        // stops the whole sweep anyway (the monitor has already forwarded).
        if (c.reason() != CancelReason::kUser && !opts.keep_going) {
          stop.store(true, std::memory_order_relaxed);
        }
        return;
      } catch (...) {
        slot.attempt_start_ms.store(-1, std::memory_order_release);
        out.status = JobStatus::kFailed;
        out.error = describe(std::current_exception());
        if (attempt >= opts.retries) {
          if (!opts.keep_going) stop.store(true, std::memory_order_relaxed);
          return;
        }
        if (!backoff_sleep(opts, job.label, attempt)) {
          out.status = JobStatus::kCancelled;
          out.error = "cancelled during retry backoff (last failure: " + out.error + ")";
          return;
        }
      }
    }
  };

  const auto worker = [&]() {
    while (!stop.load(std::memory_order_relaxed)) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= jobs.size()) return;
      run_job(i);
    }
  };

  // The monitor forwards external cancellation into every job token and
  // enforces the watchdog / per-job timeout budgets. Only spawned when one
  // of those features is on, so plain run_jobs() stays thread-free at
  // n_threads == 1.
  const bool need_monitor =
      opts.external != nullptr || opts.watchdog_s > 0.0 || opts.job_timeout_s > 0.0;
  std::atomic<bool> monitor_quit{false};
  std::thread monitor;
  if (need_monitor) {
    monitor = std::thread([&]() {
      const auto watchdog_ms = static_cast<std::int64_t>(opts.watchdog_s * 1000.0);
      const auto timeout_ms = static_cast<std::int64_t>(opts.job_timeout_s * 1000.0);
      bool forwarded = false;
      while (!monitor_quit.load(std::memory_order_relaxed)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        const std::int64_t t = now_ms();
        if (!forwarded && externally_cancelled()) {
          stop.store(true, std::memory_order_relaxed);
          for (Slot& s : slots) s.token.request(CancelReason::kUser);
          forwarded = true;
        }
        for (Slot& s : slots) {
          const std::int64_t start = s.attempt_start_ms.load(std::memory_order_acquire);
          if (start < 0) continue;  // not running
          const std::uint64_t beat = s.heartbeat.load(std::memory_order_relaxed);
          if (beat != s.last_seen_beat) {
            s.last_seen_beat = beat;
            s.last_progress_ms = t;
          }
          // Progress is anchored at the attempt start until the first beat
          // change, so a fresh attempt gets the full budget.
          const std::int64_t anchor = std::max(s.last_progress_ms, start);
          // An open CriticalSection (durable store append in flight) defers
          // watchdog/timeout kills: re-checked on the next tick, the kill
          // lands right after the section closes instead of tearing it.
          const bool in_critical = s.critical.load(std::memory_order_acquire) != 0;
          if (watchdog_ms > 0 && t - anchor > watchdog_ms && !in_critical) {
            s.token.request(CancelReason::kWatchdog);
          }
          if (timeout_ms > 0 && t - start > timeout_ms && !in_critical) {
            s.token.request(CancelReason::kTimeout);
          }
        }
      }
    });
  }

  if (n_threads <= 1) {
    worker();  // inline on the calling thread, as run_jobs always has
  } else {
    std::vector<std::thread> pool;
    const std::size_t want = std::min<std::size_t>(n_threads, jobs.size());
    pool.reserve(want);
    for (std::size_t t = 0; t < want; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }

  monitor_quit.store(true, std::memory_order_relaxed);
  if (monitor.joinable()) monitor.join();

  result.interrupted = externally_cancelled();
  return result;
}

void throw_on_failures(const SupervisedResult& result) {
  std::vector<std::size_t> failed;
  for (std::size_t i = 0; i < result.outcomes.size(); ++i) {
    const JobStatus s = result.outcomes[i].status;
    if (s != JobStatus::kOk && s != JobStatus::kSkipped) failed.push_back(i);
  }
  if (failed.empty()) return;
  if (failed.size() == 1) {
    const JobOutcome& o = result.outcomes[failed[0]];
    throw SimError("job '" + o.label + "' failed: " + o.error);
  }
  constexpr std::size_t kMaxDetailed = 5;
  std::string msg = std::to_string(failed.size()) + " jobs failed:";
  for (std::size_t k = 0; k < failed.size() && k < kMaxDetailed; ++k) {
    const JobOutcome& o = result.outcomes[failed[k]];
    msg += "\n  job '" + o.label + "': " + o.error;
  }
  if (failed.size() > kMaxDetailed) {
    msg += "\n  ... and " + std::to_string(failed.size() - kMaxDetailed) + " more";
  }
  throw SimError(msg);
}

}  // namespace sttgpu::sim
