// Parallel experiment execution: a small fixed-size thread-pool job runner
// used by the Fig. 8 matrix and the ablation benches. Every simulation in
// this repo is a self-contained gpu::Gpu with no global mutable state, so
// an (arch, benchmark) sweep is embarrassingly parallel.
//
// Guarantees:
//   * Deterministic results — callers collect output by job index (each
//     job writes its own pre-allocated slot), never by completion order.
//   * n_threads == 1 runs every job inline on the calling thread, with no
//     threads spawned — bit-for-bit the old sequential behaviour.
//   * Per-job exception capture: a throwing job does not tear down the
//     pool. After all in-flight work drains, every captured failure is
//     aggregated into one SimError, ordered by job index (labels for the
//     first 5, then a count of the rest); a single failure keeps the exact
//     "job '<label>' failed: <what>" message. Once a failure is recorded,
//     not-yet-started jobs are skipped (fail fast), matching sequential
//     semantics — in-flight jobs may still fail and are all reported.
//   * Serialized progress: log_line() writes whole lines to stderr under a
//     mutex so concurrent jobs never interleave mid-line.
//
// run_jobs() is the simple fail-fast entry point. Long unattended sweeps
// that need cancellation, a progress watchdog, retry, or quarantine use the
// supervised runner in sim/supervisor.hpp, which run_jobs() is a thin
// wrapper over.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/cancel.hpp"

namespace sttgpu::sim {

/// Handles a supervised job uses to cooperate with the supervisor: publish
/// forward progress through the heartbeat and honour cancellation requests
/// (user interrupt, watchdog, per-job timeout). Both pointers stay null for
/// unsupervised runs, making every helper a no-op.
struct JobControl {
  const CancelToken* cancel = nullptr;
  std::atomic<std::uint64_t>* heartbeat = nullptr;
  /// Critical-section depth (see CriticalSection below); owned by the
  /// supervisor's Slot, null for unsupervised runs.
  std::atomic<std::uint32_t>* critical = nullptr;

  bool cancelled() const noexcept { return cancel != nullptr && cancel->requested(); }

  /// Publishes a monotonic progress value (e.g. the simulated cycle). The
  /// watchdog treats an unchanged heartbeat as "no forward progress".
  void beat(std::uint64_t value) const noexcept {
    if (heartbeat != nullptr) heartbeat->store(value, std::memory_order_relaxed);
  }

  /// Throws Cancelled (with the requested reason) if cancellation was
  /// requested; otherwise returns.
  void checkpoint() const;
};

/// RAII marker for a span that must not be torn by a *cooperative* kill —
/// e.g. a durable result-store append between the simulation finishing and
/// its row being fsync'd. While at least one CriticalSection is open on a
/// job, the supervisor's monitor defers watchdog/timeout cancellation; the
/// kill lands the moment the last section closes, so a completed run always
/// gets to persist its result. (A SIGKILL obviously ignores this — that
/// case is what the store's own crash recovery is for.) User cancellation
/// is NOT deferred: interrupts stay prompt, and the store's append sequence
/// is crash-safe anyway. No-op when the job is unsupervised.
class CriticalSection {
 public:
  explicit CriticalSection(const JobControl& ctl) noexcept : critical_(ctl.critical) {
    if (critical_ != nullptr) critical_->fetch_add(1, std::memory_order_acq_rel);
  }
  ~CriticalSection() {
    if (critical_ != nullptr) critical_->fetch_sub(1, std::memory_order_acq_rel);
  }
  CriticalSection(const CriticalSection&) = delete;
  CriticalSection& operator=(const CriticalSection&) = delete;

 private:
  std::atomic<std::uint32_t>* critical_;
};

/// One unit of work. @p label identifies the job in error messages and
/// progress lines (the matrix uses "arch/benchmark"). Exactly one of fn /
/// supervised should be set; supervised is preferred when both are.
struct Job {
  std::string label;
  std::function<void()> fn;
  std::function<void(const JobControl&)> supervised;
};

/// Worker count used for jobs=auto: hardware_concurrency, floor 1.
unsigned default_jobs() noexcept;

/// Maps a user-facing `jobs=` value to a worker count: <= 0 means auto
/// (default_jobs()). Absurd literals (e.g. jobs=100000) are clamped to a
/// small multiple of the hardware concurrency with a stderr note instead of
/// spawning an unbounded thread pool.
unsigned resolve_jobs(std::int64_t requested) noexcept;

/// Largest worker count resolve_jobs() will grant: 4x the hardware
/// concurrency (floor 8, so explicit small values always pass through).
unsigned max_jobs() noexcept;

/// Runs @p jobs on a fixed pool of @p n_threads workers and returns when
/// all dispatched work has finished. See the header comment for ordering,
/// sequential-mode and failure semantics.
void run_jobs(std::vector<Job> jobs, unsigned n_threads);

/// Writes @p line (plus '\n') to stderr atomically with respect to other
/// log_line() callers.
void log_line(const std::string& line);

}  // namespace sttgpu::sim
