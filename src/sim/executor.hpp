// Parallel experiment execution: a small fixed-size thread-pool job runner
// used by the Fig. 8 matrix and the ablation benches. Every simulation in
// this repo is a self-contained gpu::Gpu with no global mutable state, so
// an (arch, benchmark) sweep is embarrassingly parallel.
//
// Guarantees:
//   * Deterministic results — callers collect output by job index (each
//     job writes its own pre-allocated slot), never by completion order.
//   * n_threads == 1 runs every job inline on the calling thread, with no
//     threads spawned — bit-for-bit the old sequential behaviour.
//   * Per-job exception capture: a throwing job does not tear down the
//     pool. After all in-flight work drains, every captured failure is
//     aggregated into one SimError, ordered by job index (labels for the
//     first 5, then a count of the rest); a single failure keeps the exact
//     "job '<label>' failed: <what>" message. Once a failure is recorded,
//     not-yet-started jobs are skipped (fail fast), matching sequential
//     semantics — in-flight jobs may still fail and are all reported.
//   * Serialized progress: log_line() writes whole lines to stderr under a
//     mutex so concurrent jobs never interleave mid-line.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace sttgpu::sim {

/// One unit of work. @p label identifies the job in error messages and
/// progress lines (the matrix uses "arch/benchmark").
struct Job {
  std::string label;
  std::function<void()> fn;
};

/// Worker count used for jobs=auto: hardware_concurrency, floor 1.
unsigned default_jobs() noexcept;

/// Maps a user-facing `jobs=` value to a worker count: <= 0 means auto
/// (default_jobs()), anything else is taken literally.
unsigned resolve_jobs(std::int64_t requested) noexcept;

/// Runs @p jobs on a fixed pool of @p n_threads workers and returns when
/// all dispatched work has finished. See the header comment for ordering,
/// sequential-mode and failure semantics.
void run_jobs(std::vector<Job> jobs, unsigned n_threads);

/// Writes @p line (plus '\n') to stderr atomically with respect to other
/// log_line() callers.
void log_line(const std::string& line);

}  // namespace sttgpu::sim
