// The evaluated architectures (paper Table 2).
//
//   * SRAM baseline — 384KB 8-way SRAM L2 (64KB per bank), 32K regs/SM.
//   * STT baseline  — naive replacement: 4x capacity (1536KB) of 10-year
//     high-retention STT-RAM, same area as the SRAM L2, 32K regs/SM.
//   * C1 — two-part STT L2 using all saved area for capacity:
//     1344KB 7-way HR + 192KB 2-way LR (4x the SRAM capacity).
//   * C2 — same-capacity two-part STT L2 (336KB HR + 48KB LR); the saved
//     area becomes extra registers per SM.
//   * C3 — 2x capacity (672KB HR + 96KB LR) plus a smaller register boost.
//
// Register counts for C2/C3 are *derived* from the stated area rule (the
// saved SRAM area, at SRAM register-file density, split across 15 SMs and
// rounded down to the 64-register allocation granularity); the source text
// of the paper's Table 2 dropped these digits (see DESIGN.md).
#pragma once

#include <string>
#include <vector>

#include "gpu/gpu_config.hpp"
#include "power/array_model.hpp"
#include "sttl2/config.hpp"

namespace sttgpu::sim {

enum class Architecture { kSramBaseline, kSttBaseline, kC1, kC2, kC3 };

const char* to_string(Architecture a) noexcept;
Architecture architecture_from_string(const std::string& name);
std::vector<Architecture> all_architectures();

/// Fully resolved description of one architecture.
struct ArchSpec {
  Architecture id = Architecture::kSramBaseline;
  std::string name;
  gpu::GpuConfig gpu;

  bool two_part = false;
  sttl2::UniformBankConfig uniform;       ///< valid when !two_part
  sttl2::TwoPartBankConfig two_part_cfg;  ///< valid when two_part

  // Area bookkeeping (Table 2 / fairness check)
  MilliMeter2 l2_data_area_mm2 = 0.0;
  MilliMeter2 regfile_extra_mm2 = 0.0;
  unsigned extra_regs_per_sm = 0;

  std::uint64_t l2_total_bytes() const noexcept {
    return two_part ? (two_part_cfg.hr_bytes + two_part_cfg.lr_bytes) * gpu.num_l2_banks
                    : uniform.capacity_bytes * gpu.num_l2_banks;
  }
};

/// Baseline L2 capacity the whole Table 2 is scaled from (total, bytes).
inline constexpr std::uint64_t kBaselineL2Bytes = 384 * 1024;

/// Builds the spec for @p arch with the default (GTX480-class) GPU model.
ArchSpec make_arch(Architecture arch);

}  // namespace sttgpu::sim
