// Machine-readable result export: metrics and bank counters as JSON, for
// plotting / regression tooling outside the repo.
#pragma once

#include <ostream>
#include <vector>

#include "sim/runner.hpp"

namespace sttgpu::sim {

/// The human-readable metrics block `sttgpu run` prints:
///   <arch> / <benchmark> (scale <scale>)
///     IPC / cycles / L2 power / writes / miss rate
/// Shared with `sttgpu result` so a row fetched from the sweep service
/// prints byte-identically to a direct run.
void print_metrics_block(std::ostream& os, const Metrics& metrics, double scale);

/// One metrics row as a JSON object.
void write_metrics_json(std::ostream& os, const Metrics& metrics);

/// A matrix of runs: {"runs": [ {...}, ... ]}.
void write_matrix_json(std::ostream& os, const std::vector<Metrics>& rows);

/// Aggregated fault-injection outcome of one run (summed over every bank
/// and array part), with the analytic cross-check: `predicted` re-scores
/// the exact lifetimes the injector evaluated with analyze_reliability, so
/// injected/predicted converging is the end-to-end validation of the
/// subsystem (tests/test_sttl2_faults.cpp automates it).
struct FaultSummary {
  bool enabled = false;
  std::uint64_t trials = 0;     ///< evaluated data lifetimes
  std::uint64_t collapses = 0;  ///< injected retention collapses
  double expected = 0.0;        ///< exact analytic expectation (sum of p_i)
  double predicted = 0.0;       ///< analyze_reliability over the same lifetimes
  std::uint64_t ecc_corrected = 0;
  std::uint64_t ecc_detected = 0;
  std::uint64_t clean_refetch = 0;
  std::uint64_t data_loss = 0;
  std::uint64_t wv_retries = 0;
  std::uint64_t wv_escalations = 0;
};

/// Walks the live GPU's banks (TwoPartBank / UniformBank) and sums their
/// fault streams. enabled stays false when no bank injects faults.
FaultSummary collect_fault_summary(gpu::Gpu& g);

/// A full run with the implementation counters and per-category energy:
/// {"arch": ..., "benchmark": ..., "metrics": {...}, "counters": {...},
///  "energy_pj": {...}}. When @p faults is non-null and enabled, a
/// "faults" object with the injected/predicted cross-check is appended;
/// when @p telemetry is non-null its interval time series is appended as a
/// "telemetry" object (output is byte-identical to before when both are
/// absent).
void write_run_json(std::ostream& os, const Metrics& metrics, const gpu::RunResult& run,
                    const FaultSummary* faults = nullptr,
                    const Telemetry* telemetry = nullptr);

}  // namespace sttgpu::sim
