// Machine-readable result export: metrics and bank counters as JSON, for
// plotting / regression tooling outside the repo.
#pragma once

#include <ostream>
#include <vector>

#include "sim/runner.hpp"

namespace sttgpu::sim {

/// One metrics row as a JSON object.
void write_metrics_json(std::ostream& os, const Metrics& metrics);

/// A matrix of runs: {"runs": [ {...}, ... ]}.
void write_matrix_json(std::ostream& os, const std::vector<Metrics>& rows);

/// A full run with the implementation counters and per-category energy:
/// {"arch": ..., "benchmark": ..., "metrics": {...}, "counters": {...},
///  "energy_pj": {...}}.
void write_run_json(std::ostream& os, const Metrics& metrics, const gpu::RunResult& run);

}  // namespace sttgpu::sim
