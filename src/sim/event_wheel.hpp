// Hierarchical event wheel: the hotpath=2 scheduler primitive that replaces
// the per-cycle linear min-scan over component event lanes.
//
// Near wheel: kBuckets one-cycle buckets (power of two), each a 64-bit mask
// of component ids with an entry at that cycle, plus a bucket-occupancy
// bitmap so both popping and the next-deadline query touch only occupied
// buckets. Deadlines at or beyond the horizon go to a far min-heap and are
// promoted into the near wheel as it advances.
//
// Laziness contract: posted_[id] holds the earliest outstanding posted
// cycle per id. A bucket (or far-heap) entry is live iff it matches
// posted_[id]; re-posting an earlier deadline simply strands the old entry,
// which is skipped when its bucket pops (or pruned at the far-heap top).
// This makes post() O(1) amortized with no deletion bookkeeping, at the
// cost of occasional spurious wake-ups — which the hot path already
// tolerates by construction (a wake with nothing due is a no-op cycle).
//
// Capacity: ids must fit a 64-bit due mask. The GPU maps banks to ids
// [0, B) and SMs to [B, B+S), so popping a cycle yields the due set in the
// exact bank-then-SM, ascending-id order the per-cycle loop uses.
#pragma once

#include <bit>
#include <cstdint>
#include <queue>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"

namespace sttgpu::sim {

class EventWheel {
 public:
  static constexpr unsigned kBuckets = 1024;  ///< near-wheel horizon (cycles)
  static constexpr unsigned kMaxIds = 64;

  explicit EventWheel(unsigned num_ids) : num_ids_(num_ids) {
    STTGPU_REQUIRE(num_ids >= 1 && num_ids <= kMaxIds,
                   "EventWheel: id count must be in [1, 64]");
    posted_.assign(num_ids_, kNoCycle);
  }

  /// Posts (or tightens) id's deadline to @p when. Deadlines in the past
  /// are clamped to the wheel's current cycle — "due on the next pop" —
  /// which is exactly when a per-cycle loop would next visit the component.
  /// A no-op if an entry at or before @p when is already outstanding.
  void post(unsigned id, Cycle when) {
    STTGPU_ASSERT(id < num_ids_);
    if (when < cur_) when = cur_;
    if (posted_[id] <= when) return;
    posted_[id] = when;
    if (when - cur_ < kBuckets) {
      insert_near(id, when);
    } else {
      far_.push({when, id});
      if (far_.size() > far_high_water_) far_high_water_ = far_.size();
    }
  }

  /// Withdraws id's outstanding deadline (entries go stale in place).
  void cancel(unsigned id) {
    STTGPU_ASSERT(id < num_ids_);
    posted_[id] = kNoCycle;
  }

  /// Earliest outstanding posted cycle for @p id; kNoCycle when none.
  Cycle posted(unsigned id) const {
    STTGPU_ASSERT(id < num_ids_);
    return posted_[id];
  }

  /// Pops every id with a live entry at or before @p now and advances the
  /// wheel to now + 1. Returns the due set as a bitmask (bit i = id i), so
  /// the caller iterates ids in ascending order via countr_zero. The common
  /// per-cycle call (now == current()) tests exactly one occupancy bit;
  /// short fast-forward jumps walk just the spanned buckets; only jumps
  /// past kSmallSpan fall back to the full occupancy-bitmap sweep.
  std::uint64_t pop_due(Cycle now) {
    std::uint64_t due = 0;
    if (now >= cur_) {
      const Cycle span = now - cur_ + 1;
      if (occupied_ == 0) {
        // nothing near: just advance
      } else if (span <= kSmallSpan) {
        for (Cycle c = cur_; c <= now; ++c) {
          const unsigned idx = static_cast<unsigned>(c) & (kBuckets - 1);
          if ((occ_[idx >> 6] & (1ull << (idx & 63))) != 0) {
            due |= take_bucket(idx, c);
          }
        }
      } else {
        const unsigned i0 = static_cast<unsigned>(cur_) & (kBuckets - 1);
        for (unsigned w = 0; w < kWords; ++w) {
          std::uint64_t occ = occ_[w];
          while (occ != 0) {
            const unsigned idx = w * 64 + static_cast<unsigned>(std::countr_zero(occ));
            occ &= occ - 1;
            // Every occupied bucket maps to exactly one cycle in
            // [cur_, cur_ + kBuckets): the unique one congruent to its index.
            const Cycle cycle = cur_ + ((idx - i0) & (kBuckets - 1));
            if (cycle > now) continue;
            due |= take_bucket(idx, cycle);
          }
        }
      }
      cur_ = now + 1;
    }
    // Far heap: deliver matured entries, prune stale ones, and promote
    // everything now inside the near horizon.
    while (!far_.empty()) {
      const FarEntry top = far_.top();
      if (posted_[top.id] != top.when) {
        far_.pop();  // stale (cancelled or re-posted earlier)
        continue;
      }
      if (top.when <= now) {
        posted_[top.id] = kNoCycle;
        due |= 1ull << top.id;
        far_.pop();
        continue;
      }
      if (top.when - cur_ < kBuckets) {
        insert_near(top.id, top.when);
        far_.pop();
        continue;
      }
      break;
    }
    return due;
  }

  /// Earliest cycle holding any entry; kNoCycle when the wheel is empty.
  /// Conservative-early: a stale (stranded) entry can make this report a
  /// cycle whose pop turns out empty — a safe spurious wake. Prunes stale
  /// far-heap tops as a side effect, hence non-const.
  Cycle next_deadline() {
    Cycle best = kNoCycle;
    const unsigned i0 = static_cast<unsigned>(cur_) & (kBuckets - 1);
    const unsigned w0 = i0 >> 6;
    const unsigned b0 = i0 & 63;
    // Circular scan from cur_'s bucket: distances grow word by word, and the
    // low bits of the starting word (distances just under kBuckets) go last.
    for (unsigned k = 0; k <= kWords; ++k) {
      const unsigned wi = (w0 + k) & (kWords - 1);
      std::uint64_t word = occ_[wi];
      if (k == 0) {
        word &= ~0ull << b0;
      } else if (k == kWords) {
        word &= (b0 != 0) ? ((1ull << b0) - 1) : 0;
      }
      if (word != 0) {
        const unsigned idx = wi * 64 + static_cast<unsigned>(std::countr_zero(word));
        best = cur_ + ((idx - i0) & (kBuckets - 1));
        break;
      }
    }
    while (!far_.empty() && posted_[far_.top().id] != far_.top().when) {
      far_.pop();
    }
    if (!far_.empty() && far_.top().when < best) best = far_.top().when;
    return best;
  }

  Cycle current() const noexcept { return cur_; }

  // --- diagnostics (describe_state / run-report counters) ---

  /// Occupied near-wheel buckets right now (live + stranded entries).
  unsigned occupied_buckets() const noexcept { return occupied_; }
  std::size_t far_size() const noexcept { return far_.size(); }
  unsigned bucket_high_water() const noexcept { return bucket_high_water_; }
  std::size_t far_high_water() const noexcept { return far_high_water_; }
  /// Ids with an outstanding (not yet consumed/cancelled) deadline.
  unsigned posted_ids() const noexcept {
    unsigned n = 0;
    for (const Cycle c : posted_) n += (c != kNoCycle) ? 1u : 0u;
    return n;
  }

 private:
  static constexpr unsigned kWords = kBuckets / 64;
  /// Jump length up to which pop_due walks buckets directly instead of
  /// sweeping the whole occupancy bitmap (kWords word loads).
  static constexpr Cycle kSmallSpan = 64;

  struct FarEntry {
    Cycle when;
    unsigned id;
    bool operator>(const FarEntry& o) const noexcept { return when > o.when; }
  };

  /// Empties occupied bucket @p idx (whose unique mapped cycle is @p cycle)
  /// and returns the mask of live ids it held; stranded entries evaporate.
  std::uint64_t take_bucket(unsigned idx, Cycle cycle) {
    std::uint64_t due = 0;
    std::uint64_t ids = bucket_[idx];
    bucket_[idx] = 0;
    occ_[idx >> 6] &= ~(1ull << (idx & 63));
    --occupied_;
    while (ids != 0) {
      const unsigned id = static_cast<unsigned>(std::countr_zero(ids));
      ids &= ids - 1;
      if (posted_[id] == cycle) {  // live entry: consume
        posted_[id] = kNoCycle;
        due |= 1ull << id;
      }
    }
    return due;
  }

  void insert_near(unsigned id, Cycle when) {
    const unsigned idx = static_cast<unsigned>(when) & (kBuckets - 1);
    bucket_[idx] |= 1ull << id;
    const std::uint64_t bit = 1ull << (idx & 63);
    if ((occ_[idx >> 6] & bit) == 0) {
      occ_[idx >> 6] |= bit;
      if (++occupied_ > bucket_high_water_) bucket_high_water_ = occupied_;
    }
  }

  unsigned num_ids_;
  Cycle cur_ = 0;  ///< earliest cycle a new entry may land on
  std::uint64_t bucket_[kBuckets] = {};
  std::uint64_t occ_[kWords] = {};
  unsigned occupied_ = 0;  ///< occupied near buckets (maintained on post/pop)
  std::vector<Cycle> posted_;
  std::priority_queue<FarEntry, std::vector<FarEntry>, std::greater<>> far_;
  unsigned bucket_high_water_ = 0;
  std::size_t far_high_water_ = 0;
};

}  // namespace sttgpu::sim
