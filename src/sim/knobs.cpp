#include "sim/knobs.hpp"

#include <sstream>

#include "common/error.hpp"

namespace sttgpu::sim {

namespace {

using Type = KnobSpec::Type;

constexpr unsigned kRunMatrix = kKnobRun | kKnobMatrix;
constexpr unsigned kRunRecord = kKnobRun | kKnobRecord;
constexpr unsigned kRunMatrixRecord = kKnobRun | kKnobMatrix | kKnobRecord;

const char* type_name(Type t) {
  switch (t) {
    case Type::kBool: return "bool";
    case Type::kInt: return "int";
    case Type::kDouble: return "float";
    case Type::kString: return "string";
  }
  return "?";
}

const char* command_name(KnobCommand c) {
  switch (c) {
    case kKnobRun: return "run";
    case kKnobMatrix: return "matrix";
    case kKnobRecord: return "record";
    case kKnobReplay: return "replay";
    case kKnobStore: return "store";
  }
  return "?";
}

}  // namespace

const std::vector<KnobSpec>& knob_registry() {
  static const std::vector<KnobSpec> kKnobs = {
      {"arch", Type::kString, "C1", "architecture (sram|stt-base|C1|C2|C3)",
       kKnobRun | kKnobReplay},
      {"arch", Type::kString, "sram", "architecture to record under", kKnobRecord},
      {"benchmark", Type::kString, "bfs", "benchmark model (see `sttgpu list`)", kRunRecord},
      {"scale", Type::kDouble, "0.5", "workload scale in (0, 1]", kRunMatrixRecord},
      {"json", Type::kString, "", "write the result as JSON to this path", kRunMatrix},
      {"cache", Type::kString, "fig8_cache.csv", "matrix result cache (empty disables)",
       kKnobMatrix},
      {"jobs", Type::kInt, "0", "worker threads (0 = all hardware threads)", kKnobMatrix},
      {"watchdog", Type::kDouble, "0",
       "abort a job with no forward progress for this many seconds (0 = off)",
       kKnobMatrix},
      {"job_timeout", Type::kDouble, "0",
       "per-job wall-clock budget in seconds (0 = unlimited)", kKnobMatrix},
      {"retry", Type::kInt, "0", "extra attempts for a job that fails transiently",
       kKnobMatrix},
      {"keep_going", Type::kBool, "0",
       "quarantine failing jobs and report a manifest instead of failing fast",
       kKnobMatrix},
      {"store", Type::kString, "fig8_cache.store",
       "result store path (WAL log; sidecars <store>.lock / <store>.quarantine)",
       kKnobStore},
      {"trace", Type::kString, "l2.trace", "L2 demand-stream trace path",
       kKnobRecord | kKnobReplay},
      {"fastforward", Type::kBool, "1",
       "event-driven idle-cycle skip; results are identical either way", kRunMatrixRecord},
      {"hotpath", Type::kInt, "2",
       "hot-path level: 0=plain loop, 1=event lanes, 2=event wheel; results are "
       "identical at every level",
       kRunMatrixRecord},
      {"tick_jobs", Type::kInt, "1",
       "threads for the per-cycle L2 bank tick batch (hotpath only); results are "
       "identical at any value",
       kRunMatrixRecord},
      {"faults", Type::kBool, "0", "seeded STT-RAM retention/write-failure injector",
       kRunMatrix},
      {"fault_seed", Type::kInt, "42", "fault injector RNG seed", kRunMatrix},
      {"fault_accel", Type::kDouble, "1", "error-rate acceleration factor", kRunMatrix},
      {"ecc", Type::kBool, "1", "SECDED recovery on collapsed lines", kRunMatrix},
      {"telemetry", Type::kBool, "0", "per-interval telemetry sampling (observational)",
       kRunRecord},
      {"interval", Type::kInt, "50000", "telemetry sampling window in cycles", kRunRecord},
      {"trace_out", Type::kString, "", "write a Chrome trace-event JSON (Perfetto-loadable)",
       kRunRecord},
      {"telemetry_csv", Type::kString, "", "write the interval series as CSV", kRunRecord},
  };
  return kKnobs;
}

namespace {

const KnobSpec* find_knob(KnobCommand command, const std::string& name) {
  for (const KnobSpec& k : knob_registry()) {
    if ((k.commands & command) != 0 && name == k.name) return &k;
  }
  return nullptr;
}

const KnobSpec& require_knob(KnobCommand command, const std::string& name, Type type) {
  const KnobSpec* k = find_knob(command, name);
  STTGPU_ASSERT(k != nullptr);
  STTGPU_ASSERT(k->type == type);
  return *k;
}

}  // namespace

void validate_knobs(const Config& cfg, KnobCommand command, const std::string& cmd_name) {
  for (const auto& [key, value] : cfg.all()) {
    const KnobSpec* k = find_knob(command, key);
    if (k == nullptr) {
      std::string msg =
          "unknown knob '" + key + "' for 'sttgpu " + cmd_name + "'; valid knobs:";
      for (const KnobSpec& spec : knob_registry()) {
        if ((spec.commands & command) != 0) {
          msg += ' ';
          msg += spec.name;
        }
      }
      throw SimError(msg);
    }
    // Force a parse so a bad value fails here, before any simulation runs.
    switch (k->type) {
      case Type::kBool: cfg.get_bool(key, false); break;
      case Type::kInt: cfg.get_int(key, 0); break;
      case Type::kDouble: cfg.get_double(key, 0.0); break;
      case Type::kString: break;
    }
  }
}

std::string knob_string(const Config& cfg, KnobCommand command, const std::string& name) {
  return cfg.get_string(name, require_knob(command, name, Type::kString).def);
}

std::int64_t knob_int(const Config& cfg, KnobCommand command, const std::string& name) {
  const KnobSpec& k = require_knob(command, name, Type::kInt);
  return cfg.get_int(name, std::strtoll(k.def, nullptr, 0));
}

double knob_double(const Config& cfg, KnobCommand command, const std::string& name) {
  const KnobSpec& k = require_knob(command, name, Type::kDouble);
  return cfg.get_double(name, std::strtod(k.def, nullptr));
}

bool knob_bool(const Config& cfg, KnobCommand command, const std::string& name) {
  const KnobSpec& k = require_knob(command, name, Type::kBool);
  return cfg.get_bool(name, k.def[0] == '1');
}

std::string knob_usage() {
  std::ostringstream os;
  os << "usage: sttgpu <list|run|matrix|record|replay|store|help> [key=value ...]\n"
        "       sttgpu store <fsck|compact|stats> [store=<path>]\n";
  for (const KnobCommand cmd :
       {kKnobRun, kKnobMatrix, kKnobRecord, kKnobReplay, kKnobStore}) {
    os << "  " << command_name(cmd) << ":\n";
    for (const KnobSpec& k : knob_registry()) {
      if ((k.commands & cmd) == 0) continue;
      os << "    " << k.name << "=<" << type_name(k.type) << ">";
      if (k.def[0] != '\0') os << " (default " << k.def << ")";
      os << "  " << k.help << "\n";
    }
  }
  os << "  unknown or unparseable key=value knobs are rejected with the valid list\n"
        "  for the command. See EXPERIMENTS.md for fault-injection and telemetry\n"
        "  recipes.\n";
  return os.str();
}

sttl2::FaultInjectionConfig fault_knobs(const Config& cfg, KnobCommand command) {
  sttl2::FaultInjectionConfig f;
  f.enabled = knob_bool(cfg, command, "faults");
  f.seed = static_cast<std::uint64_t>(knob_int(cfg, command, "fault_seed"));
  f.accel = knob_double(cfg, command, "fault_accel");
  f.ecc = knob_bool(cfg, command, "ecc");
  return f;
}

}  // namespace sttgpu::sim
