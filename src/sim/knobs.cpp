#include "sim/knobs.hpp"

#include <iomanip>
#include <limits>
#include <sstream>

#include "common/error.hpp"
#include "common/json.hpp"

namespace sttgpu::sim {

namespace {

using Type = KnobSpec::Type;

constexpr unsigned kRunMatrix = kKnobRun | kKnobMatrix;
constexpr unsigned kRunRecord = kKnobRun | kKnobRecord;
constexpr unsigned kRunMatrixRecord = kKnobRun | kKnobMatrix | kKnobRecord;
// Simulation-shaping knobs a submit request shares with run/matrix.
constexpr unsigned kRunMatrixSubmit = kKnobRun | kKnobMatrix | kKnobSubmit;
constexpr unsigned kRunMatrixRecordSubmit = kRunMatrixRecord | kKnobSubmit;
// Every verb that talks to a running sweep service.
constexpr unsigned kClientVerbs =
    kKnobSubmit | kKnobStatus | kKnobWatch | kKnobCancel | kKnobResult | kKnobHealth;

const char* type_name(Type t) {
  switch (t) {
    case Type::kBool: return "bool";
    case Type::kInt: return "int";
    case Type::kDouble: return "float";
    case Type::kString: return "string";
  }
  return "?";
}

const char* command_name(KnobCommand c) {
  switch (c) {
    case kKnobRun: return "run";
    case kKnobMatrix: return "matrix";
    case kKnobRecord: return "record";
    case kKnobReplay: return "replay";
    case kKnobStore: return "store";
    case kKnobServe: return "serve";
    case kKnobSubmit: return "submit";
    case kKnobStatus: return "status";
    case kKnobWatch: return "watch";
    case kKnobCancel: return "cancel";
    case kKnobResult: return "result";
    case kKnobHealth: return "health";
  }
  return "?";
}

}  // namespace

const std::vector<KnobSpec>& knob_registry() {
  static const std::vector<KnobSpec> kKnobs = {
      {"arch", Type::kString, "C1", "architecture (sram|stt-base|C1|C2|C3)",
       kKnobRun | kKnobReplay | kKnobResult},
      {"arch", Type::kString, "sram", "architecture to record under", kKnobRecord},
      {"benchmark", Type::kString, "bfs", "benchmark model (see `sttgpu list`)",
       kRunRecord | kKnobResult},
      {"scale", Type::kDouble, "0.5", "workload scale in (0, 1]",
       kRunMatrixRecord | kKnobSubmit | kKnobResult},
      {"json", Type::kString, "", "write the result as JSON to this path",
       kRunMatrix | kKnobSubmit},
      {"cache", Type::kString, "fig8_cache.csv", "matrix result cache (empty disables)",
       kKnobMatrix},
      {"cache", Type::kString, "fig8_cache.csv",
       "result cache the service dedupes against and re-exports", kKnobServe},
      {"jobs", Type::kInt, "0", "worker threads (0 = all hardware threads)",
       kKnobMatrix | kKnobServe},
      {"watchdog", Type::kDouble, "0",
       "abort a job with no forward progress for this many seconds (0 = off)",
       kKnobMatrix | kKnobServe},
      {"job_timeout", Type::kDouble, "0",
       "per-job wall-clock budget in seconds (0 = unlimited)", kKnobMatrix | kKnobServe},
      {"retry", Type::kInt, "0", "extra attempts for a job that fails transiently",
       kKnobMatrix | kKnobServe},
      {"keep_going", Type::kBool, "0",
       "quarantine failing jobs and report a manifest instead of failing fast",
       kKnobMatrix},
      {"sandbox", Type::kBool, "1",
       "run each simulation in a forked child so a crash/OOM/wedge never takes "
       "the daemon down (0 = in-process)",
       kKnobServe},
      {"mem_limit", Type::kInt, "0",
       "address-space limit per sandbox child, in MiB (0 = unlimited)", kKnobServe},
      {"max_queue", Type::kInt, "1024",
       "admission control: shed submissions that would push the task queue past "
       "this depth (0 = unbounded)",
       kKnobServe},
      {"read_deadline", Type::kDouble, "30",
       "drop a connection that sends no complete request within this many "
       "seconds (0 = no deadline)",
       kKnobServe},
      {"store", Type::kString, "fig8_cache.store",
       "result store path (WAL log; sidecars <store>.lock / <store>.quarantine)",
       kKnobStore},
      {"socket", Type::kString, "sttgpu.sock",
       "unix socket the sweep service listens on / clients connect to",
       kKnobServe | kClientVerbs},
      {"port", Type::kInt, "0",
       "loopback TCP port (serve: also listen; clients: connect via TCP instead "
       "of the unix socket; 0 = unix socket only)",
       kKnobServe | kClientVerbs},
      {"archs", Type::kString, "",
       "comma-separated architecture subset to submit (empty = all)", kKnobSubmit},
      {"benchmarks", Type::kString, "",
       "comma-separated benchmark subset to submit (empty = all)", kKnobSubmit},
      {"wait", Type::kBool, "1",
       "block until the submission completes and print the result rows", kKnobSubmit},
      {"id", Type::kInt, "0",
       "submission id (status: 0 = whole-server stats; result: 0 = look up by "
       "arch/benchmark/scale)",
       kKnobStatus | kKnobWatch | kKnobCancel | kKnobResult},
      {"trace", Type::kString, "l2.trace", "L2 demand-stream trace path",
       kKnobRecord | kKnobReplay},
      {"fastforward", Type::kBool, "1",
       "event-driven idle-cycle skip; results are identical either way",
       kRunMatrixRecordSubmit},
      {"hotpath", Type::kInt, "2",
       "hot-path level: 0=plain loop, 1=event lanes, 2=event wheel; results are "
       "identical at every level",
       kRunMatrixRecordSubmit},
      {"tick_jobs", Type::kInt, "1",
       "threads for the per-cycle L2 bank tick batch (hotpath only); results are "
       "identical at any value",
       kRunMatrixRecordSubmit},
      {"faults", Type::kBool, "0", "seeded STT-RAM retention/write-failure injector",
       kRunMatrixSubmit},
      {"fault_seed", Type::kInt, "42", "fault injector RNG seed", kRunMatrixSubmit},
      {"fault_accel", Type::kDouble, "1", "error-rate acceleration factor",
       kRunMatrixSubmit},
      {"ecc", Type::kBool, "1", "SECDED recovery on collapsed lines", kRunMatrixSubmit},
      {"telemetry", Type::kBool, "0", "per-interval telemetry sampling (observational)",
       kRunRecord | kKnobSubmit},
      {"interval", Type::kInt, "50000", "telemetry sampling window in cycles",
       kRunRecord | kKnobSubmit},
      {"trace_out", Type::kString, "", "write a Chrome trace-event JSON (Perfetto-loadable)",
       kRunRecord},
      {"telemetry_csv", Type::kString, "", "write the interval series as CSV", kRunRecord},
  };
  return kKnobs;
}

namespace {

const KnobSpec* find_knob(KnobCommand command, const std::string& name) {
  for (const KnobSpec& k : knob_registry()) {
    if ((k.commands & command) != 0 && name == k.name) return &k;
  }
  return nullptr;
}

const KnobSpec& require_knob(KnobCommand command, const std::string& name, Type type) {
  const KnobSpec* k = find_knob(command, name);
  STTGPU_ASSERT(k != nullptr);
  STTGPU_ASSERT(k->type == type);
  return *k;
}

}  // namespace

void validate_knobs(const Config& cfg, KnobCommand command, const std::string& cmd_name) {
  for (const auto& [key, value] : cfg.all()) {
    const KnobSpec* k = find_knob(command, key);
    if (k == nullptr) {
      std::string msg =
          "unknown knob '" + key + "' for 'sttgpu " + cmd_name + "'; valid knobs:";
      for (const KnobSpec& spec : knob_registry()) {
        if ((spec.commands & command) != 0) {
          msg += ' ';
          msg += spec.name;
        }
      }
      throw SimError(msg);
    }
    // Force a parse so a bad value fails here, before any simulation runs.
    switch (k->type) {
      case Type::kBool: cfg.get_bool(key, false); break;
      case Type::kInt: cfg.get_int(key, 0); break;
      case Type::kDouble: cfg.get_double(key, 0.0); break;
      case Type::kString: break;
    }
  }
}

std::string knob_string(const Config& cfg, KnobCommand command, const std::string& name) {
  return cfg.get_string(name, require_knob(command, name, Type::kString).def);
}

std::int64_t knob_int(const Config& cfg, KnobCommand command, const std::string& name) {
  const KnobSpec& k = require_knob(command, name, Type::kInt);
  return cfg.get_int(name, std::strtoll(k.def, nullptr, 0));
}

double knob_double(const Config& cfg, KnobCommand command, const std::string& name) {
  const KnobSpec& k = require_knob(command, name, Type::kDouble);
  return cfg.get_double(name, std::strtod(k.def, nullptr));
}

bool knob_bool(const Config& cfg, KnobCommand command, const std::string& name) {
  const KnobSpec& k = require_knob(command, name, Type::kBool);
  return cfg.get_bool(name, k.def[0] == '1');
}

std::string knob_usage() {
  std::ostringstream os;
  os << "usage: sttgpu <list|run|matrix|record|replay|store|serve|submit|status|"
        "watch|cancel|result|health|help> [key=value ...]\n"
        "       sttgpu store <fsck|compact|stats> [store=<path>]\n"
        "       sttgpu serve socket=<path> [port=<tcp>] [cache=<csv>] [jobs=N]\n";
  for (const KnobCommand cmd :
       {kKnobRun, kKnobMatrix, kKnobRecord, kKnobReplay, kKnobStore, kKnobServe,
        kKnobSubmit, kKnobStatus, kKnobWatch, kKnobCancel, kKnobResult, kKnobHealth}) {
    os << "  " << command_name(cmd) << ":\n";
    for (const KnobSpec& k : knob_registry()) {
      if ((k.commands & cmd) == 0) continue;
      os << "    " << k.name << "=<" << type_name(k.type) << ">";
      if (k.def[0] != '\0') os << " (default " << k.def << ")";
      os << "  " << k.help << "\n";
    }
  }
  os << "  unknown or unparseable key=value knobs are rejected with the valid list\n"
        "  for the command. See EXPERIMENTS.md for fault-injection and telemetry\n"
        "  recipes.\n";
  return os.str();
}

sttl2::FaultInjectionConfig fault_knobs(const Config& cfg, KnobCommand command) {
  sttl2::FaultInjectionConfig f;
  f.enabled = knob_bool(cfg, command, "faults");
  f.seed = static_cast<std::uint64_t>(knob_int(cfg, command, "fault_seed"));
  f.accel = knob_double(cfg, command, "fault_accel");
  f.ecc = knob_bool(cfg, command, "ecc");
  return f;
}

Config config_from_json(const JsonValue& obj) {
  STTGPU_REQUIRE(obj.is_object(), "options must be a JSON object of knob values");
  Config cfg;
  for (const auto& [key, value] : obj.members()) {
    switch (value.kind()) {
      case JsonValue::Kind::kBool: cfg.set(key, value.as_bool() ? "1" : "0"); break;
      // Raw source text, not a re-formatted double: "0.05" submitted over
      // the wire is the same token the CLI would have parsed from argv.
      case JsonValue::Kind::kNumber: cfg.set(key, value.raw_number()); break;
      case JsonValue::Kind::kString: cfg.set(key, value.as_string()); break;
      default:
        throw SimError("knob '" + key + "' must be a scalar, got " +
                       JsonValue::kind_name(value.kind()));
    }
  }
  return cfg;
}

RunOptions run_options_from_knobs(const Config& cfg, KnobCommand command) {
  RunOptions opts;
  // Only resolve knobs the command's mask declares; the rest keep their
  // RunOptions defaults (e.g. record has no fault knobs).
  if (find_knob(command, "scale") != nullptr) {
    opts.scale = knob_double(cfg, command, "scale");
    STTGPU_REQUIRE(opts.scale > 0.0 && opts.scale <= 1.0, "scale= must be in (0, 1]");
  }
  if (find_knob(command, "fastforward") != nullptr) {
    opts.fast_forward = knob_bool(cfg, command, "fastforward");
  }
  if (find_knob(command, "hotpath") != nullptr) {
    opts.hotpath = static_cast<unsigned>(knob_int(cfg, command, "hotpath"));
  }
  if (find_knob(command, "tick_jobs") != nullptr) {
    opts.tick_jobs = static_cast<unsigned>(knob_int(cfg, command, "tick_jobs"));
  }
  if (find_knob(command, "faults") != nullptr) {
    opts.faults = fault_knobs(cfg, command);
  }
  return opts;
}

void run_options_to_json(JsonWriter& w, const RunOptions& opts) {
  // max_digits10 so scale/accel round-trip exactly through the wire.
  std::ostringstream scale, accel;
  scale << std::setprecision(std::numeric_limits<double>::max_digits10) << opts.scale;
  accel << std::setprecision(std::numeric_limits<double>::max_digits10)
        << opts.faults.accel;
  w.begin_object();
  // Raw number tokens: route through Config-style strings so the receiving
  // side's strtod sees the identical text.
  w.key("scale").value(scale.str());
  w.key("fastforward").value(opts.fast_forward);
  w.key("hotpath").value(static_cast<std::uint64_t>(opts.hotpath));
  w.key("tick_jobs").value(static_cast<std::uint64_t>(opts.tick_jobs));
  w.key("faults").value(opts.faults.enabled);
  w.key("fault_seed").value(static_cast<std::uint64_t>(opts.faults.seed));
  w.key("fault_accel").value(accel.str());
  w.key("ecc").value(opts.faults.ecc);
  w.end_object();
}

}  // namespace sttgpu::sim
