#include "sim/runner.hpp"

#include <atomic>
#include <cstdio>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <mutex>
#include <optional>
#include <sstream>

#include "common/atomic_file.hpp"
#include "common/cancel.hpp"
#include "common/error.hpp"
#include "sim/executor.hpp"
#include "sttl2/factories.hpp"

namespace sttgpu::sim {

namespace {

std::unique_ptr<gpu::L2BankFactory> make_factory(const ArchSpec& spec) {
  const Clock clock = spec.gpu.clock();
  if (spec.two_part) {
    return std::make_unique<sttl2::TwoPartBankFactory>(spec.two_part_cfg, clock);
  }
  return std::make_unique<sttl2::UniformBankFactory>(spec.uniform, clock);
}

/// RunOptions is the single source of truth for run-mode knobs: overwrite
/// the spec's copies so a pre-mutated spec cannot silently diverge from
/// what the caller asked for.
ArchSpec configured(const ArchSpec& spec, const RunOptions& opts) {
  STTGPU_REQUIRE(opts.hotpath <= 2,
                 "hotpath must be 0 (plain loop), 1 (event lanes) or 2 (event wheel)");
  ArchSpec s = spec;
  s.gpu.fast_forward = opts.fast_forward;
  s.gpu.hotpath = opts.hotpath;
  s.gpu.tick_jobs = opts.tick_jobs;
  s.gpu.telemetry = opts.telemetry;
  s.gpu.cancel = opts.cancel;
  s.gpu.heartbeat = opts.heartbeat;
  if (s.two_part) {
    s.two_part_cfg.faults = opts.faults;
  } else {
    s.uniform.faults = opts.faults;
  }
  return s;
}

}  // namespace

namespace {

Metrics metrics_from(const ArchSpec& spec, const workload::Workload& workload,
                     const gpu::RunResult& r);

}  // namespace

Metrics run_one(const ArchSpec& spec, const workload::Workload& workload,
                const RunOptions& opts) {
  gpu::RunResult run;
  return run_one_detailed(spec, workload, run, opts);
}

Metrics run_one_detailed(const ArchSpec& spec, const workload::Workload& workload,
                         gpu::RunResult& out_run, const RunOptions& opts) {
  const ArchSpec s = configured(spec, opts);
  auto factory = make_factory(s);
  gpu::Gpu g(s.gpu, *factory);
  out_run = g.run(workload);
  const Metrics m = metrics_from(s, workload, out_run);
  if (opts.inspect) opts.inspect(g);
  return m;
}

namespace {

Metrics metrics_from(const ArchSpec& spec, const workload::Workload& workload,
                     const gpu::RunResult& r) {
  Metrics m;
  m.arch = spec.name;
  m.benchmark = workload.name;
  m.ipc = r.ipc;
  m.cycles = r.cycles;
  m.leakage_w = r.l2_leakage_w;
  m.dynamic_w = r.runtime_s > 0.0 ? r.l2_energy.total_pj() * 1e-12 / r.runtime_s : 0.0;
  m.total_w = m.dynamic_w + m.leakage_w;
  m.l2_write_share = r.l2.write_share();
  m.l2_miss_rate = r.l2.miss_rate();
  return m;
}

}  // namespace

Metrics run_one(Architecture arch, const std::string& benchmark,
                const RunOptions& opts) {
  const ArchSpec spec = make_arch(arch);
  const workload::Workload w = workload::make_benchmark(benchmark, opts.scale);
  return run_one(spec, w, opts);
}

// ---------------------------------------------------------------------------
// Result cache, format v2.
//
//   # sttgpu-cache v2 scale=<scale> config=<hex fingerprint>
//   arch,benchmark,ipc,cycles,dynamic_w,leakage_w,total_w,write_share,miss_rate
//   <rows ...>
//
// The header pins the workload scale and the simulator configuration; a
// mismatch on either means every cached number is stale, so the whole file
// is discarded. Values are written with max_digits10 precision so a
// load -> save round trip is bit-exact.
// ---------------------------------------------------------------------------

namespace {

constexpr char kCacheMagic[] = "# sttgpu-cache v2";
constexpr int kCacheFields = 9;

// FNV-1a, 64-bit: stable across platforms, no dependencies.
std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (const unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

std::string format_scale(double scale) {
  std::ostringstream os;
  os << std::setprecision(17) << scale;
  return os.str();
}

std::optional<double> parse_double(const std::string& cell) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(cell, &pos);
    if (pos != cell.size()) return std::nullopt;
    return v;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

std::optional<std::uint64_t> parse_u64(const std::string& cell) {
  try {
    std::size_t pos = 0;
    const std::uint64_t v = std::stoull(cell, &pos);
    if (pos != cell.size()) return std::nullopt;
    return v;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

std::vector<std::string> split_csv(const std::string& row) {
  std::vector<std::string> cells;
  std::istringstream ss(row);
  std::string cell;
  while (std::getline(ss, cell, ',')) cells.push_back(cell);
  if (!row.empty() && row.back() == ',') cells.emplace_back();
  return cells;
}

/// Parses one data row; nullopt (caller warns + skips) on any malformation.
std::optional<Metrics> parse_row(const std::string& row) {
  const std::vector<std::string> cells = split_csv(row);
  if (cells.size() != kCacheFields) return std::nullopt;
  Metrics m;
  m.arch = cells[0];
  m.benchmark = cells[1];
  if (m.arch.empty() || m.benchmark.empty()) return std::nullopt;
  const auto ipc = parse_double(cells[2]);
  const auto cycles = parse_u64(cells[3]);
  const auto dynamic_w = parse_double(cells[4]);
  const auto leakage_w = parse_double(cells[5]);
  const auto total_w = parse_double(cells[6]);
  const auto write_share = parse_double(cells[7]);
  const auto miss_rate = parse_double(cells[8]);
  if (!ipc || !cycles || !dynamic_w || !leakage_w || !total_w || !write_share || !miss_rate) {
    return std::nullopt;
  }
  m.ipc = *ipc;
  m.cycles = *cycles;
  m.dynamic_w = *dynamic_w;
  m.leakage_w = *leakage_w;
  m.total_w = *total_w;
  m.l2_write_share = *write_share;
  m.l2_miss_rate = *miss_rate;
  return m;
}

/// Extracts "key=value" from a whitespace-separated header line.
std::optional<std::string> header_field(const std::string& header, const std::string& key) {
  std::istringstream ss(header);
  std::string token;
  while (ss >> token) {
    if (token.rfind(key + "=", 0) == 0) return token.substr(key.size() + 1);
  }
  return std::nullopt;
}

}  // namespace

namespace {

// Serializes everything a cached Metrics row depends on: the resolved
// architecture registry (cache geometry, cell/energy parameters, GPU
// model) and the benchmark suite. Any change to these invalidates caches.
std::string compute_config_serialization() {
  std::ostringstream os;
  os << std::setprecision(17);
  os << kCacheMagic;
  // Simulation-core revision: bumped when the cycle loop's semantics change
  // (core:2 = per-cycle kernel-completion check instead of the old 64-cycle
  // polling batch), so caches simulated by an older core are discarded.
  os << "|core:2";
  for (const Architecture arch : all_architectures()) {
    const ArchSpec s = make_arch(arch);
    const gpu::GpuConfig& g = s.gpu;
    os << "|arch:" << s.name << ':' << s.two_part << ':' << s.l2_total_bytes() << ':'
       << s.extra_regs_per_sm << ":gpu:" << g.num_sms << ':' << g.warp_size << ':'
       << g.max_warps_per_sm << ':' << g.max_threads_per_sm << ':' << g.registers_per_sm
       << ':' << g.shared_mem_per_sm << ':' << g.core_clock_hz << ':'
       << static_cast<int>(g.scheduler) << ':' << g.l1d_size << ':' << g.l1d_assoc << ':'
       << g.l1_hit_latency << ':' << g.l1_mshr_entries << ':' << g.icnt_latency << ':'
       << g.num_l2_banks << ':' << g.l2_line_bytes << ':' << g.l2_input_queue << ':'
       << g.dram_latency << ':' << g.dram_service_gap << ':' << g.dram_open_page << ':'
       << g.dram_row_bytes << ':' << g.dram_row_hit_latency;
    if (s.two_part) {
      const sttl2::TwoPartBankConfig& c = s.two_part_cfg;
      os << ":tp:" << c.hr_bytes << ':' << c.hr_assoc << ':' << c.hr_retention_s << ':'
         << c.hr_counter_bits << ':' << c.lr_bytes << ':' << c.lr_assoc << ':'
         << c.lr_retention_s << ':' << c.lr_counter_bits << ':' << c.line_bytes << ':'
         << c.write_threshold << ':' << c.adaptive_threshold << ':'
         << c.early_write_termination << ':' << c.lr_wear_leveling << ':' << c.buffer_lines
         << ':' << static_cast<int>(c.search) << ':' << c.pipeline_cycles << ':'
         << c.hr_subbanks << ':' << c.lr_subbanks;
    } else {
      const sttl2::UniformBankConfig& c = s.uniform;
      os << ":un:" << c.capacity_bytes << ':' << c.associativity << ':' << c.line_bytes
         << ':' << c.cell.name << ':' << c.cell.read_energy_pj_per_bit << ':'
         << c.cell.write_energy_pj_per_bit << ':' << c.cell.read_latency_ns << ':'
         << c.cell.write_latency_ns << ':' << c.cell.leakage_nw_per_bit << ':'
         << c.early_write_termination << ':' << c.pipeline_cycles << ':' << c.subbanks;
    }
  }
  for (const std::string& name : workload::benchmark_names()) {
    const workload::Workload w = workload::make_benchmark(name);
    os << "|bench:" << w.name << ':' << w.region << ':' << w.seed << ':'
       << w.kernels.size() << ':' << w.total_instructions();
  }
  return os.str();
}

const std::string& config_serialization() {
  // The registry and suite are compile-time fixed, so serialize them once;
  // write-through persistence fingerprints after every completed run.
  static const std::string s = compute_config_serialization();
  return s;
}

}  // namespace

std::uint64_t config_fingerprint() { return fnv1a(config_serialization()); }

std::uint64_t config_fingerprint(const sttl2::FaultInjectionConfig& faults) {
  // Disabled faults contribute no tokens: the hash — and therefore every
  // existing baseline cache — is exactly what it was before the fault
  // subsystem existed.
  if (!faults.enabled) return config_fingerprint();
  std::ostringstream os;
  os << std::setprecision(17);
  os << "|faults:1:" << faults.seed << ':' << faults.accel << ':' << faults.ecc << ':'
     << faults.spec_margin << ':' << faults.write_fail_prob << ':'
     << faults.write_retry_limit;
  return fnv1a(config_serialization() + os.str());
}

std::map<std::pair<std::string, std::string>, Metrics> load_cache(
    const std::string& path, double scale, const sttl2::FaultInjectionConfig& faults) {
  std::map<std::pair<std::string, std::string>, Metrics> cache;
  std::ifstream in(path);
  if (!in) return cache;

  std::string header;
  std::getline(in, header);
  if (header.rfind(kCacheMagic, 0) != 0) {
    log_line("[cache] " + path +
             ": not a v2 result cache (old or foreign format) — ignoring it;"
             " the matrix will re-simulate and rewrite it");
    return cache;
  }
  const auto file_scale = header_field(header, "scale");
  const auto file_config = header_field(header, "config");
  if (!file_scale || !file_config) {
    log_line("[cache] " + path + ": malformed v2 header — ignoring");
    return cache;
  }
  const auto parsed_scale = parse_double(*file_scale);
  if (!parsed_scale || *parsed_scale != scale) {
    log_line("[cache] " + path + ": written at scale=" + *file_scale +
             ", requested scale=" + format_scale(scale) + " — ignoring stale cache");
    return cache;
  }
  std::ostringstream want;
  want << std::hex << config_fingerprint(faults);
  if (*file_config != want.str()) {
    log_line("[cache] " + path + ": simulator config fingerprint mismatch (cache " +
             *file_config + ", current " + want.str() + ") — ignoring stale cache");
    return cache;
  }

  std::string column_header;
  std::getline(in, column_header);  // column names; ignored

  // Malformed rows are skipped (they will simply re-simulate), but reported
  // as ONE summary line — a corrupted tail would otherwise emit hundreds of
  // per-row warnings and bury the progress log.
  std::size_t skipped = 0;
  constexpr std::size_t kMaxQuoted = 3;
  std::ostringstream offenders;
  std::string row;
  std::size_t lineno = 2;
  while (std::getline(in, row)) {
    ++lineno;
    if (row.empty()) continue;
    const std::optional<Metrics> m = parse_row(row);
    if (!m) {
      ++skipped;
      if (skipped <= kMaxQuoted) {
        offenders << "\n  line " << lineno << ": " << row;
      }
      continue;
    }
    cache[{m->arch, m->benchmark}] = *m;
  }
  if (skipped > 0) {
    std::ostringstream os;
    os << "[cache] " << path << ": skipped " << skipped << " malformed row"
       << (skipped == 1 ? "" : "s") << " (will re-simulate)" << offenders.str();
    if (skipped > kMaxQuoted) os << "\n  ... and " << skipped - kMaxQuoted << " more";
    log_line(os.str());
  }
  return cache;
}

void save_cache(const std::string& path, double scale, const std::vector<Metrics>& rows,
                const sttl2::FaultInjectionConfig& faults) {
  // Write-through callers persist after every run; atomic_write_file's
  // fsync + rename + directory-fsync sequence means a crash (or SIGKILL) at
  // any instant leaves either the previous cache or the complete new one.
  atomic_write_file(path, [&](std::ostream& out) {
    out << std::setprecision(17);
    out << kCacheMagic << " scale=" << format_scale(scale) << " config=" << std::hex
        << config_fingerprint(faults) << std::dec << '\n';
    out << "arch,benchmark,ipc,cycles,dynamic_w,leakage_w,total_w,write_share,miss_rate\n";
    for (const Metrics& m : rows) {
      out << m.arch << ',' << m.benchmark << ',' << m.ipc << ',' << m.cycles << ','
          << m.dynamic_w << ',' << m.leakage_w << ',' << m.total_w << ','
          << m.l2_write_share << ',' << m.l2_miss_rate << '\n';
    }
  });
}

std::vector<Metrics> run_matrix(const std::vector<Architecture>& archs,
                                const RunOptions& opts) {
  return run_matrix(archs, workload::benchmark_names(), opts);
}

std::vector<Metrics> run_matrix(const std::vector<Architecture>& archs,
                                const std::vector<std::string>& benchmarks,
                                const RunOptions& opts) {
  STTGPU_REQUIRE(opts.telemetry == nullptr,
                 "run_matrix: telemetry is per-run — parallel matrix runs would "
                 "interleave samples into one sink; use run_one with a fresh "
                 "Telemetry instead");
  STTGPU_REQUIRE(!opts.inspect,
                 "run_matrix: the inspect hook is per-run; use run_one");
  STTGPU_REQUIRE(opts.heartbeat == nullptr,
                 "run_matrix: heartbeat is per-run — the matrix wires a private "
                 "per-job heartbeat for the watchdog itself");
  const double scale = opts.scale;
  const std::string& cache_path = opts.cache_path;
  const sttl2::FaultInjectionConfig& faults = opts.faults;
  const unsigned n_threads = opts.jobs == 0 ? default_jobs() : opts.jobs;
  auto cache = cache_path.empty()
                   ? std::map<std::pair<std::string, std::string>, Metrics>{}
                   : load_cache(cache_path, scale, faults);

  // Lay out the result slots up front: results are collected by slot index,
  // so the returned order is (arch, benchmark) regardless of completion
  // order or thread count.
  struct Pending {
    std::size_t slot;
    ArchSpec spec;
    std::string benchmark;
  };
  std::vector<Metrics> rows(archs.size() * benchmarks.size());
  std::vector<Pending> pending;
  std::size_t slot = 0;
  for (const Architecture arch : archs) {
    const ArchSpec spec = make_arch(arch);
    for (const std::string& name : benchmarks) {
      // Prefill the identity columns so a quarantined (keep_going) or
      // interrupted slot still says which (arch, benchmark) it was.
      rows[slot].arch = spec.name;
      rows[slot].benchmark = name;
      if (const auto it = cache.find({spec.name, name}); it != cache.end()) {
        rows[slot] = it->second;
      } else {
        pending.push_back(Pending{slot, spec, name});
      }
      ++slot;
    }
  }

  const auto persist = [&cache, &cache_path, scale, &faults]() {
    std::vector<Metrics> all;
    all.reserve(cache.size());
    for (const auto& [k, v] : cache) all.push_back(v);
    save_cache(cache_path, scale, all, faults);
  };

  if (!pending.empty() && !cache_path.empty()) {
    // Fail loudly on an unwritable cache path *before* burning simulation
    // time; this also upgrades a discarded stale/v1 file to a v2 header.
    persist();
  }

  std::mutex cache_mutex;
  std::atomic<std::size_t> completed{0};
  std::vector<Job> work;
  work.reserve(pending.size());
  for (const Pending& p : pending) {
    Job job;
    job.label = p.spec.name + "/" + p.benchmark;
    job.supervised = [&, p](const JobControl& ctl) {
      const workload::Workload w = workload::make_benchmark(p.benchmark, scale);
      // opts.telemetry/inspect are guaranteed null above; run_one applies
      // the shared fast_forward/faults knobs to this run's spec copy. The
      // supervisor's per-job token/heartbeat are threaded into the Gpu so
      // the cycle loop observes cancellation and publishes progress.
      RunOptions job_opts = opts;
      job_opts.cancel = ctl.cancel;
      job_opts.heartbeat = ctl.heartbeat;
      Metrics m = run_one(p.spec, w, job_opts);
      {
        const std::lock_guard<std::mutex> lock(cache_mutex);
        cache[{p.spec.name, p.benchmark}] = m;
        // Write-through: a crash in run 79 of 80 keeps the first 78.
        if (!cache_path.empty()) persist();
      }
      const std::size_t k = completed.fetch_add(1) + 1;
      std::ostringstream os;
      os << "[run " << k << '/' << pending.size() << "] " << p.spec.name << '/'
         << p.benchmark << " ipc=" << m.ipc << " cycles=" << m.cycles;
      log_line(os.str());
      rows[p.slot] = std::move(m);
    };
    work.push_back(std::move(job));
  }

  SupervisorOptions sup;
  sup.external = opts.cancel;
  sup.watchdog_s = opts.watchdog_s;
  sup.job_timeout_s = opts.job_timeout_s;
  sup.retries = opts.retries;
  sup.keep_going = opts.keep_going;
  const SupervisedResult result = run_supervised(std::move(work), n_threads, sup);
  if (opts.report != nullptr) *opts.report = result;

  if (result.interrupted) {
    // Completed rows are already persisted write-through; tell the caller
    // (and the user, via the CLI) that the sweep is resumable.
    std::ostringstream os;
    os << "matrix interrupted — " << cache.size() << " of " << rows.size()
       << " rows completed";
    if (!cache_path.empty()) {
      os << " and cached; rerun with the same cache= to resume";
    }
    throw Cancelled(CancelReason::kUser, os.str());
  }
  if (!opts.keep_going) {
    // A watchdog/timeout kill outranks ordinary failures: surface it as a
    // Cancelled so the CLI maps it to its own exit code.
    for (const JobOutcome& o : result.outcomes) {
      if (o.status == JobStatus::kWatchdog || o.status == JobStatus::kTimeout) {
        throw Cancelled(o.status == JobStatus::kWatchdog ? CancelReason::kWatchdog
                                                         : CancelReason::kTimeout,
                        "job '" + o.label + "': " + o.error);
      }
    }
    throw_on_failures(result);
  } else if (!result.all_ok()) {
    // Quarantine mode: report the manifest, return the partial matrix
    // (failed slots keep their prefilled identity and zero metrics).
    log_line(result.manifest());
  }
  return rows;
}

std::map<std::string, Metrics> by_benchmark(const std::vector<Metrics>& rows,
                                            const std::string& arch) {
  std::map<std::string, Metrics> out;
  for (const Metrics& m : rows) {
    if (m.arch == arch) out[m.benchmark] = m;
  }
  return out;
}

}  // namespace sttgpu::sim
