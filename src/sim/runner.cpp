#include "sim/runner.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <iomanip>
#include <iostream>
#include <memory>
#include <mutex>
#include <optional>
#include <sstream>

#include "common/cancel.hpp"
#include "common/error.hpp"
#include "sim/executor.hpp"
#include "store/csv_format.hpp"
#include "store/result_store.hpp"
#include "sttl2/factories.hpp"

namespace sttgpu::sim {

namespace {

std::unique_ptr<gpu::L2BankFactory> make_factory(const ArchSpec& spec) {
  const Clock clock = spec.gpu.clock();
  if (spec.two_part) {
    return std::make_unique<sttl2::TwoPartBankFactory>(spec.two_part_cfg, clock);
  }
  return std::make_unique<sttl2::UniformBankFactory>(spec.uniform, clock);
}

/// RunOptions is the single source of truth for run-mode knobs: overwrite
/// the spec's copies so a pre-mutated spec cannot silently diverge from
/// what the caller asked for.
ArchSpec configured(const ArchSpec& spec, const RunOptions& opts) {
  STTGPU_REQUIRE(opts.hotpath <= 2,
                 "hotpath must be 0 (plain loop), 1 (event lanes) or 2 (event wheel)");
  ArchSpec s = spec;
  s.gpu.fast_forward = opts.fast_forward;
  s.gpu.hotpath = opts.hotpath;
  s.gpu.tick_jobs = opts.tick_jobs;
  s.gpu.telemetry = opts.telemetry;
  s.gpu.cancel = opts.cancel;
  s.gpu.heartbeat = opts.heartbeat;
  if (s.two_part) {
    s.two_part_cfg.faults = opts.faults;
  } else {
    s.uniform.faults = opts.faults;
  }
  return s;
}

}  // namespace

namespace {

Metrics metrics_from(const ArchSpec& spec, const workload::Workload& workload,
                     const gpu::RunResult& r);

}  // namespace

Metrics run_one(const ArchSpec& spec, const workload::Workload& workload,
                const RunOptions& opts) {
  gpu::RunResult run;
  return run_one_detailed(spec, workload, run, opts);
}

Metrics run_one_detailed(const ArchSpec& spec, const workload::Workload& workload,
                         gpu::RunResult& out_run, const RunOptions& opts) {
  const ArchSpec s = configured(spec, opts);
  auto factory = make_factory(s);
  gpu::Gpu g(s.gpu, *factory);
  out_run = g.run(workload);
  const Metrics m = metrics_from(s, workload, out_run);
  if (opts.inspect) opts.inspect(g);
  return m;
}

namespace {

Metrics metrics_from(const ArchSpec& spec, const workload::Workload& workload,
                     const gpu::RunResult& r) {
  Metrics m;
  m.arch = spec.name;
  m.benchmark = workload.name;
  m.ipc = r.ipc;
  m.cycles = r.cycles;
  m.leakage_w = r.l2_leakage_w;
  m.dynamic_w = r.runtime_s > 0.0 ? r.l2_energy.total_pj() * 1e-12 / r.runtime_s : 0.0;
  m.total_w = m.dynamic_w + m.leakage_w;
  m.l2_write_share = r.l2.write_share();
  m.l2_miss_rate = r.l2.miss_rate();
  return m;
}

}  // namespace

Metrics run_one(Architecture arch, const std::string& benchmark,
                const RunOptions& opts) {
  const ArchSpec spec = make_arch(arch);
  const workload::Workload w = workload::make_benchmark(benchmark, opts.scale);
  return run_one(spec, w, opts);
}

// ---------------------------------------------------------------------------
// Result persistence.
//
// The durable source of truth is the crash-safe WAL-backed result store
// (store/result_store.hpp); the v2 CSV (store/csv_format.hpp) is kept as
// the human-diffable *export* format and as the one-time migration source
// for stores that do not exist yet. load_cache/save_cache keep their CSV
// semantics for callers (and tests) that speak CSV directly.
// ---------------------------------------------------------------------------

namespace {

// The former on-disk cache magic, retained verbatim as the leading token of
// the config serialization: the fingerprint of an unchanged configuration
// must stay bit-identical across the CSV -> store port.
constexpr char kCacheMagic[] = "# sttgpu-cache v2";

// FNV-1a, 64-bit: stable across platforms, no dependencies.
std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (const unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

store::ResultRow to_store_row(const Metrics& m) {
  store::ResultRow r;
  r.arch = m.arch;
  r.benchmark = m.benchmark;
  r.ipc = m.ipc;
  r.cycles = m.cycles;
  r.dynamic_w = m.dynamic_w;
  r.leakage_w = m.leakage_w;
  r.total_w = m.total_w;
  r.write_share = m.l2_write_share;
  r.miss_rate = m.l2_miss_rate;
  return r;
}

Metrics from_store_row(const store::ResultRow& r) {
  Metrics m;
  m.arch = r.arch;
  m.benchmark = r.benchmark;
  m.ipc = r.ipc;
  m.cycles = r.cycles;
  m.dynamic_w = r.dynamic_w;
  m.leakage_w = r.leakage_w;
  m.total_w = r.total_w;
  m.l2_write_share = r.write_share;
  m.l2_miss_rate = r.miss_rate;
  return m;
}

namespace {

// Serializes everything a cached Metrics row depends on: the resolved
// architecture registry (cache geometry, cell/energy parameters, GPU
// model) and the benchmark suite. Any change to these invalidates caches.
std::string compute_config_serialization() {
  std::ostringstream os;
  os << std::setprecision(17);
  os << kCacheMagic;
  // Simulation-core revision: bumped when the cycle loop's semantics change
  // (core:2 = per-cycle kernel-completion check instead of the old 64-cycle
  // polling batch), so caches simulated by an older core are discarded.
  os << "|core:2";
  for (const Architecture arch : all_architectures()) {
    const ArchSpec s = make_arch(arch);
    const gpu::GpuConfig& g = s.gpu;
    os << "|arch:" << s.name << ':' << s.two_part << ':' << s.l2_total_bytes() << ':'
       << s.extra_regs_per_sm << ":gpu:" << g.num_sms << ':' << g.warp_size << ':'
       << g.max_warps_per_sm << ':' << g.max_threads_per_sm << ':' << g.registers_per_sm
       << ':' << g.shared_mem_per_sm << ':' << g.core_clock_hz << ':'
       << static_cast<int>(g.scheduler) << ':' << g.l1d_size << ':' << g.l1d_assoc << ':'
       << g.l1_hit_latency << ':' << g.l1_mshr_entries << ':' << g.icnt_latency << ':'
       << g.num_l2_banks << ':' << g.l2_line_bytes << ':' << g.l2_input_queue << ':'
       << g.dram_latency << ':' << g.dram_service_gap << ':' << g.dram_open_page << ':'
       << g.dram_row_bytes << ':' << g.dram_row_hit_latency;
    if (s.two_part) {
      const sttl2::TwoPartBankConfig& c = s.two_part_cfg;
      os << ":tp:" << c.hr_bytes << ':' << c.hr_assoc << ':' << c.hr_retention_s << ':'
         << c.hr_counter_bits << ':' << c.lr_bytes << ':' << c.lr_assoc << ':'
         << c.lr_retention_s << ':' << c.lr_counter_bits << ':' << c.line_bytes << ':'
         << c.write_threshold << ':' << c.adaptive_threshold << ':'
         << c.early_write_termination << ':' << c.lr_wear_leveling << ':' << c.buffer_lines
         << ':' << static_cast<int>(c.search) << ':' << c.pipeline_cycles << ':'
         << c.hr_subbanks << ':' << c.lr_subbanks;
    } else {
      const sttl2::UniformBankConfig& c = s.uniform;
      os << ":un:" << c.capacity_bytes << ':' << c.associativity << ':' << c.line_bytes
         << ':' << c.cell.name << ':' << c.cell.read_energy_pj_per_bit << ':'
         << c.cell.write_energy_pj_per_bit << ':' << c.cell.read_latency_ns << ':'
         << c.cell.write_latency_ns << ':' << c.cell.leakage_nw_per_bit << ':'
         << c.early_write_termination << ':' << c.pipeline_cycles << ':' << c.subbanks;
    }
  }
  for (const std::string& name : workload::benchmark_names()) {
    const workload::Workload w = workload::make_benchmark(name);
    os << "|bench:" << w.name << ':' << w.region << ':' << w.seed << ':'
       << w.kernels.size() << ':' << w.total_instructions();
  }
  return os.str();
}

const std::string& config_serialization() {
  // The registry and suite are compile-time fixed, so serialize them once;
  // write-through persistence fingerprints after every completed run.
  static const std::string s = compute_config_serialization();
  return s;
}

}  // namespace

std::uint64_t config_fingerprint() { return fnv1a(config_serialization()); }

std::uint64_t config_fingerprint(const sttl2::FaultInjectionConfig& faults) {
  // Disabled faults contribute no tokens: the hash — and therefore every
  // existing baseline cache — is exactly what it was before the fault
  // subsystem existed.
  if (!faults.enabled) return config_fingerprint();
  std::ostringstream os;
  os << std::setprecision(17);
  os << "|faults:1:" << faults.seed << ':' << faults.accel << ':' << faults.ecc << ':'
     << faults.spec_margin << ':' << faults.write_fail_prob << ':'
     << faults.write_retry_limit;
  return fnv1a(config_serialization() + os.str());
}

std::map<std::pair<std::string, std::string>, Metrics> load_cache(
    const std::string& path, double scale, const sttl2::FaultInjectionConfig& faults) {
  std::map<std::pair<std::string, std::string>, Metrics> cache;
  const std::vector<store::ResultRow> rows = store::read_csv_v2(
      path, scale, config_fingerprint(faults),
      [](const std::string& line) { log_line(line); });
  for (const store::ResultRow& r : rows) {
    cache[{r.arch, r.benchmark}] = from_store_row(r);
  }
  return cache;
}

void save_cache(const std::string& path, double scale, const std::vector<Metrics>& rows,
                const sttl2::FaultInjectionConfig& faults) {
  std::vector<store::ResultRow> out;
  out.reserve(rows.size());
  for (const Metrics& m : rows) out.push_back(to_store_row(m));
  store::write_csv_v2(path, scale, config_fingerprint(faults), out);
}

std::vector<Metrics> run_matrix(const std::vector<Architecture>& archs,
                                const RunOptions& opts) {
  return run_matrix(archs, workload::benchmark_names(), opts);
}

std::vector<Metrics> run_matrix(const std::vector<Architecture>& archs,
                                const std::vector<std::string>& benchmarks,
                                const RunOptions& opts) {
  STTGPU_REQUIRE(opts.telemetry == nullptr,
                 "run_matrix: telemetry is per-run — parallel matrix runs would "
                 "interleave samples into one sink; use run_one with a fresh "
                 "Telemetry instead");
  STTGPU_REQUIRE(!opts.inspect,
                 "run_matrix: the inspect hook is per-run; use run_one");
  STTGPU_REQUIRE(opts.heartbeat == nullptr,
                 "run_matrix: heartbeat is per-run — the matrix wires a private "
                 "per-job heartbeat for the watchdog itself");
  const double scale = opts.scale;
  const std::string& cache_path = opts.cache_path;
  const sttl2::FaultInjectionConfig& faults = opts.faults;
  const std::uint64_t fp = config_fingerprint(faults);
  const unsigned n_threads = opts.jobs == 0 ? default_jobs() : opts.jobs;

  // Open (creating and recovering if needed) the WAL-backed store that
  // shadows the CSV path, then fold in any rows the CSV has that the store
  // lacks — the one-time migration for pre-store caches. On key conflicts
  // the store wins: it is the durable source of truth, the CSV an export.
  std::unique_ptr<store::ResultStore> db;
  bool csv_fresh = true;  ///< CSV export already mirrors the store's rows
  if (!cache_path.empty()) {
    store::StoreOptions so;
    so.log = [](const std::string& line) { log_line(line); };
    so.cancel = opts.cancel;
    db = std::make_unique<store::ResultStore>(store::ResultStore::derive_path(cache_path),
                                              so);
    const std::vector<store::ResultRow> csv_rows =
        store::read_csv_v2(cache_path, scale, fp, so.log);
    std::vector<store::ResultRow> migrate;
    for (const store::ResultRow& r : csv_rows) {
      if (!db->get(fp, scale, r.arch, r.benchmark)) migrate.push_back(r);
    }
    if (!migrate.empty()) {
      db->put_many(fp, scale, migrate);
      log_line("[store] " + db->path() + ": migrated " + std::to_string(migrate.size()) +
               " row" + (migrate.size() == 1 ? "" : "s") + " from " + cache_path);
    }
    // Is the CSV already a faithful export? Compare through the canonical
    // record encoding so float formatting can never lie. If not (truncated
    // by hand, store ahead of CSV, value conflict), re-export after the run
    // even when every slot comes from the store.
    std::vector<std::string> csv_enc, store_enc;
    for (const store::ResultRow& r : csv_rows) {
      csv_enc.push_back(store::encode_put(fp, scale, r));
    }
    for (const store::ResultRow& r : db->rows_for(fp, scale)) {
      store_enc.push_back(store::encode_put(fp, scale, r));
    }
    std::sort(csv_enc.begin(), csv_enc.end());
    std::sort(store_enc.begin(), store_enc.end());
    csv_fresh = csv_enc == store_enc;
  }

  // Lay out the result slots up front: results are collected by slot index,
  // so the returned order is (arch, benchmark) regardless of completion
  // order or thread count.
  struct Pending {
    std::size_t slot;
    ArchSpec spec;
    std::string benchmark;
  };
  std::vector<Metrics> rows(archs.size() * benchmarks.size());
  std::vector<Pending> pending;
  std::size_t slot = 0;
  for (const Architecture arch : archs) {
    const ArchSpec spec = make_arch(arch);
    for (const std::string& name : benchmarks) {
      // Prefill the identity columns so a quarantined (keep_going) or
      // interrupted slot still says which (arch, benchmark) it was.
      rows[slot].arch = spec.name;
      rows[slot].benchmark = name;
      const auto hit = db ? db->get(fp, scale, spec.name, name) : std::nullopt;
      if (hit) {
        rows[slot] = from_store_row(*hit);
      } else {
        pending.push_back(Pending{slot, spec, name});
      }
      ++slot;
    }
  }

  const auto export_csv = [&]() {
    // Snapshot other processes' appends first (disjoint-slice merges), then
    // publish the CSV export: same v2 bytes and (arch, benchmark) order as
    // the CSV-native cache always wrote.
    db->refresh();
    std::vector<Metrics> all;
    for (const store::ResultRow& r : db->rows_for(fp, scale)) {
      all.push_back(from_store_row(r));
    }
    save_cache(cache_path, scale, all, faults);
  };

  if (!pending.empty() && db) {
    // Fail loudly on an unwritable cache path *before* burning simulation
    // time; this also upgrades a discarded stale/v1 file to a v2 header.
    export_csv();
  }

  std::atomic<std::size_t> completed{0};
  std::vector<Job> work;
  work.reserve(pending.size());
  for (const Pending& p : pending) {
    Job job;
    job.label = p.spec.name + "/" + p.benchmark;
    job.supervised = [&, p](const JobControl& ctl) {
      const workload::Workload w = workload::make_benchmark(p.benchmark, scale);
      // opts.telemetry/inspect are guaranteed null above; run_one applies
      // the shared fast_forward/faults knobs to this run's spec copy. The
      // supervisor's per-job token/heartbeat are threaded into the Gpu so
      // the cycle loop observes cancellation and publishes progress.
      RunOptions job_opts = opts;
      job_opts.cancel = ctl.cancel;
      job_opts.heartbeat = ctl.heartbeat;
      Metrics m = run_one(p.spec, w, job_opts);
      if (db) {
        // Durable write-through: by the time the progress line prints, the
        // row is fsync'd in the WAL — a crash in run 79 of 80 keeps the
        // first 78. The critical section keeps a watchdog/timeout kill from
        // landing cooperatively between "simulated" and "persisted".
        const CriticalSection cs(ctl);
        db->put(fp, scale, to_store_row(m));
      }
      const std::size_t k = completed.fetch_add(1) + 1;
      std::ostringstream os;
      os << "[run " << k << '/' << pending.size() << "] " << p.spec.name << '/'
         << p.benchmark << " ipc=" << m.ipc << " cycles=" << m.cycles;
      log_line(os.str());
      rows[p.slot] = std::move(m);
    };
    work.push_back(std::move(job));
  }

  SupervisorOptions sup;
  sup.external = opts.cancel;
  sup.watchdog_s = opts.watchdog_s;
  sup.job_timeout_s = opts.job_timeout_s;
  sup.retries = opts.retries;
  sup.keep_going = opts.keep_going;
  const SupervisedResult result = run_supervised(std::move(work), n_threads, sup);
  if (opts.report != nullptr) *opts.report = result;

  if (db && (!pending.empty() || !csv_fresh)) {
    try {
      export_csv();
    } catch (const Cancelled&) {
      // Interrupted while re-acquiring the store lock. Harmless: the upfront
      // export already left a valid CSV, and every completed row is fsync'd
      // in the WAL — a warm rerun resumes from the store, losing nothing.
    }
  }

  if (result.interrupted) {
    // Completed rows are already persisted write-through; tell the caller
    // (and the user, via the CLI) that the sweep is resumable.
    const std::size_t done = rows.size() - pending.size() + completed.load();
    std::ostringstream os;
    os << "matrix interrupted — " << done << " of " << rows.size()
       << " rows completed";
    if (db) {
      os << " and cached; rerun with the same cache= to resume";
    }
    throw Cancelled(CancelReason::kUser, os.str());
  }
  if (!opts.keep_going) {
    // A watchdog/timeout kill outranks ordinary failures: surface it as a
    // Cancelled so the CLI maps it to its own exit code.
    for (const JobOutcome& o : result.outcomes) {
      if (o.status == JobStatus::kWatchdog || o.status == JobStatus::kTimeout) {
        throw Cancelled(o.status == JobStatus::kWatchdog ? CancelReason::kWatchdog
                                                         : CancelReason::kTimeout,
                        "job '" + o.label + "': " + o.error);
      }
    }
    throw_on_failures(result);
  } else if (!result.all_ok()) {
    // Quarantine mode: report the manifest, return the partial matrix
    // (failed slots keep their prefilled identity and zero metrics).
    log_line(result.manifest());
  }
  return rows;
}

std::map<std::string, Metrics> by_benchmark(const std::vector<Metrics>& rows,
                                            const std::string& arch) {
  std::map<std::string, Metrics> out;
  for (const Metrics& m : rows) {
    if (m.arch == arch) out[m.benchmark] = m;
  }
  return out;
}

}  // namespace sttgpu::sim
