#include "sim/runner.hpp"

#include <fstream>
#include <iostream>
#include <sstream>

#include "common/error.hpp"
#include "sttl2/factories.hpp"

namespace sttgpu::sim {

namespace {

std::unique_ptr<gpu::L2BankFactory> make_factory(const ArchSpec& spec) {
  const Clock clock = spec.gpu.clock();
  if (spec.two_part) {
    return std::make_unique<sttl2::TwoPartBankFactory>(spec.two_part_cfg, clock);
  }
  return std::make_unique<sttl2::UniformBankFactory>(spec.uniform, clock);
}

}  // namespace

namespace {

Metrics metrics_from(const ArchSpec& spec, const workload::Workload& workload,
                     const gpu::RunResult& r);

}  // namespace

Metrics run_one(const ArchSpec& spec, const workload::Workload& workload,
                const BankInspector& inspect) {
  auto factory = make_factory(spec);
  gpu::Gpu g(spec.gpu, *factory);
  const gpu::RunResult r = g.run(workload);
  const Metrics m = metrics_from(spec, workload, r);
  if (inspect) inspect(g);
  return m;
}

Metrics run_one_detailed(const ArchSpec& spec, const workload::Workload& workload,
                         gpu::RunResult& out_run) {
  auto factory = make_factory(spec);
  gpu::Gpu g(spec.gpu, *factory);
  out_run = g.run(workload);
  return metrics_from(spec, workload, out_run);
}

namespace {

Metrics metrics_from(const ArchSpec& spec, const workload::Workload& workload,
                     const gpu::RunResult& r) {
  Metrics m;
  m.arch = spec.name;
  m.benchmark = workload.name;
  m.ipc = r.ipc;
  m.cycles = r.cycles;
  m.leakage_w = r.l2_leakage_w;
  m.dynamic_w = r.runtime_s > 0.0 ? r.l2_energy.total_pj() * 1e-12 / r.runtime_s : 0.0;
  m.total_w = m.dynamic_w + m.leakage_w;
  m.l2_write_share = r.l2.write_share();
  m.l2_miss_rate = r.l2.miss_rate();
  return m;
}

}  // namespace

Metrics run_one(Architecture arch, const std::string& benchmark, double scale,
                const BankInspector& inspect) {
  const ArchSpec spec = make_arch(arch);
  const workload::Workload w = workload::make_benchmark(benchmark, scale);
  return run_one(spec, w, inspect);
}

std::map<std::pair<std::string, std::string>, Metrics> load_cache(const std::string& path) {
  std::map<std::pair<std::string, std::string>, Metrics> cache;
  std::ifstream in(path);
  if (!in) return cache;
  std::string header;
  std::getline(in, header);
  std::string row;
  while (std::getline(in, row)) {
    std::istringstream ss(row);
    Metrics m;
    std::string cell;
    const auto next = [&]() -> std::string {
      std::getline(ss, cell, ',');
      return cell;
    };
    m.arch = next();
    m.benchmark = next();
    m.ipc = std::stod(next());
    m.cycles = std::stoull(next());
    m.dynamic_w = std::stod(next());
    m.leakage_w = std::stod(next());
    m.total_w = std::stod(next());
    m.l2_write_share = std::stod(next());
    m.l2_miss_rate = std::stod(next());
    cache[{m.arch, m.benchmark}] = m;
  }
  return cache;
}

void save_cache(const std::string& path, const std::vector<Metrics>& rows) {
  std::ofstream out(path);
  if (!out) return;
  out << "arch,benchmark,ipc,cycles,dynamic_w,leakage_w,total_w,write_share,miss_rate\n";
  for (const Metrics& m : rows) {
    out << m.arch << ',' << m.benchmark << ',' << m.ipc << ',' << m.cycles << ','
        << m.dynamic_w << ',' << m.leakage_w << ',' << m.total_w << ','
        << m.l2_write_share << ',' << m.l2_miss_rate << '\n';
  }
}

std::vector<Metrics> run_matrix(const std::vector<Architecture>& archs, double scale,
                                const std::string& cache_path) {
  auto cache = cache_path.empty()
                   ? std::map<std::pair<std::string, std::string>, Metrics>{}
                   : load_cache(cache_path);
  std::vector<Metrics> rows;
  bool ran_anything = false;

  for (const Architecture arch : archs) {
    const ArchSpec spec = make_arch(arch);
    for (const std::string& name : workload::benchmark_names()) {
      const auto key = std::make_pair(spec.name, name);
      if (const auto it = cache.find(key); it != cache.end()) {
        rows.push_back(it->second);
        continue;
      }
      std::cerr << "[run] " << spec.name << " / " << name << " ..." << std::flush;
      const workload::Workload w = workload::make_benchmark(name, scale);
      Metrics m = run_one(spec, w);
      std::cerr << " ipc=" << m.ipc << " cycles=" << m.cycles << '\n';
      cache[key] = m;
      rows.push_back(std::move(m));
      ran_anything = true;
    }
  }

  if (ran_anything && !cache_path.empty()) {
    std::vector<Metrics> all;
    all.reserve(cache.size());
    for (const auto& [k, v] : cache) all.push_back(v);
    save_cache(cache_path, all);
  }
  return rows;
}

std::map<std::string, Metrics> by_benchmark(const std::vector<Metrics>& rows,
                                            const std::string& arch) {
  std::map<std::string, Metrics> out;
  for (const Metrics& m : rows) {
    if (m.arch == arch) out[m.benchmark] = m;
  }
  return out;
}

}  // namespace sttgpu::sim
