// Declarative knob registry for the sttgpu CLI.
//
// Every key=value knob any subcommand accepts is declared exactly once in
// knob_registry(): name, type, default, one-line help, and the subcommands
// it applies to. The registry replaces the hand-written valid-knob lists
// that tools/sttgpu.cpp used to repeat per command — parsing, typo
// rejection, type validation, default resolution, and the usage text are
// all generated from the same table, so they can never drift apart.
//
// A knob whose default differs per subcommand (e.g. `arch`: C1 for
// run/replay, sram for record) appears as multiple rows with disjoint
// command masks.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "sim/runner.hpp"
#include "sttl2/config.hpp"

namespace sttgpu {
class JsonValue;
class JsonWriter;
}  // namespace sttgpu

namespace sttgpu::sim {

/// Bitmask of CLI subcommands a knob applies to. The sweep-service verbs
/// (serve and its clients) are commands like any other: their wire-protocol
/// request fields validate against the same registry rows as the CLI knobs.
enum KnobCommand : unsigned {
  kKnobRun = 1u << 0,
  kKnobMatrix = 1u << 1,
  kKnobRecord = 1u << 2,
  kKnobReplay = 1u << 3,
  kKnobStore = 1u << 4,
  kKnobServe = 1u << 5,
  kKnobSubmit = 1u << 6,
  kKnobStatus = 1u << 7,
  kKnobWatch = 1u << 8,
  kKnobCancel = 1u << 9,
  kKnobResult = 1u << 10,
  kKnobHealth = 1u << 11,
};

struct KnobSpec {
  const char* name;
  enum class Type { kBool, kInt, kDouble, kString } type;
  const char* def;    ///< default, spelled as it would be typed (may be "")
  const char* help;   ///< one-line description for the generated usage text
  unsigned commands;  ///< bitmask of KnobCommand values
};

/// The full knob table, in usage-text order.
const std::vector<KnobSpec>& knob_registry();

/// Rejects unknown keys and unparseable values for @p command: every key in
/// @p cfg must name a registry knob whose mask includes @p command, and its
/// value must parse as the declared type. Throws SimError naming the bad
/// knob and listing the valid ones for @p command_name.
void validate_knobs(const Config& cfg, KnobCommand command, const std::string& command_name);

/// Typed getters that resolve the default from the registry row matching
/// (@p name, @p command). Asserts the knob exists with the declared type —
/// a mismatch is a programming error, not user input.
std::string knob_string(const Config& cfg, KnobCommand command, const std::string& name);
std::int64_t knob_int(const Config& cfg, KnobCommand command, const std::string& name);
double knob_double(const Config& cfg, KnobCommand command, const std::string& name);
bool knob_bool(const Config& cfg, KnobCommand command, const std::string& name);

/// Usage text generated from the registry: one block per subcommand listing
/// its knobs with type, default, and help.
std::string knob_usage();

/// Builds the fault-injection config from the faults/fault_seed/
/// fault_accel/ecc knobs (registry defaults: injection disabled).
sttl2::FaultInjectionConfig fault_knobs(const Config& cfg, KnobCommand command);

// --- RunOptions <-> JSON, built on the registry -----------------------------
//
// The wire protocol and the CLI share one definition of every simulation-
// shaping knob: a submit request's "options" object is converted to a
// Config (config_from_json), validated against the registry exactly like
// argv knobs (validate_knobs), and resolved into RunOptions with the same
// defaults the CLI applies (run_options_from_knobs). A config submitted
// over the socket therefore can never parse, default, or validate
// differently from the same config typed at the shell.

/// Converts a flat JSON object into a string-keyed Config: booleans become
/// "1"/"0", numbers keep their raw source text (no reformatting), strings
/// pass through. Nested arrays/objects and null are rejected with SimError.
Config config_from_json(const JsonValue& obj);

/// Resolves the simulation-shaping RunOptions fields — scale, fastforward,
/// hotpath, tick_jobs and the fault knobs — from @p cfg using the registry
/// defaults for @p command. Knobs outside @p command's mask keep their
/// RunOptions defaults. Orchestration knobs (cache/jobs/watchdog/...) are
/// intentionally not resolved here; they belong to the caller.
RunOptions run_options_from_knobs(const Config& cfg, KnobCommand command);

/// Serializes those same fields as one JSON object keyed by knob names —
/// the inverse of run_options_from_knobs (round-trip exact: numbers are
/// written at max_digits10).
void run_options_to_json(JsonWriter& w, const RunOptions& opts);

}  // namespace sttgpu::sim
