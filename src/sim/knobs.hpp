// Declarative knob registry for the sttgpu CLI.
//
// Every key=value knob any subcommand accepts is declared exactly once in
// knob_registry(): name, type, default, one-line help, and the subcommands
// it applies to. The registry replaces the hand-written valid-knob lists
// that tools/sttgpu.cpp used to repeat per command — parsing, typo
// rejection, type validation, default resolution, and the usage text are
// all generated from the same table, so they can never drift apart.
//
// A knob whose default differs per subcommand (e.g. `arch`: C1 for
// run/replay, sram for record) appears as multiple rows with disjoint
// command masks.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "sttl2/config.hpp"

namespace sttgpu::sim {

/// Bitmask of CLI subcommands a knob applies to.
enum KnobCommand : unsigned {
  kKnobRun = 1u << 0,
  kKnobMatrix = 1u << 1,
  kKnobRecord = 1u << 2,
  kKnobReplay = 1u << 3,
  kKnobStore = 1u << 4,
};

struct KnobSpec {
  const char* name;
  enum class Type { kBool, kInt, kDouble, kString } type;
  const char* def;    ///< default, spelled as it would be typed (may be "")
  const char* help;   ///< one-line description for the generated usage text
  unsigned commands;  ///< bitmask of KnobCommand values
};

/// The full knob table, in usage-text order.
const std::vector<KnobSpec>& knob_registry();

/// Rejects unknown keys and unparseable values for @p command: every key in
/// @p cfg must name a registry knob whose mask includes @p command, and its
/// value must parse as the declared type. Throws SimError naming the bad
/// knob and listing the valid ones for @p command_name.
void validate_knobs(const Config& cfg, KnobCommand command, const std::string& command_name);

/// Typed getters that resolve the default from the registry row matching
/// (@p name, @p command). Asserts the knob exists with the declared type —
/// a mismatch is a programming error, not user input.
std::string knob_string(const Config& cfg, KnobCommand command, const std::string& name);
std::int64_t knob_int(const Config& cfg, KnobCommand command, const std::string& name);
double knob_double(const Config& cfg, KnobCommand command, const std::string& name);
bool knob_bool(const Config& cfg, KnobCommand command, const std::string& name);

/// Usage text generated from the registry: one block per subcommand listing
/// its knobs with type, default, and help.
std::string knob_usage();

/// Builds the fault-injection config from the faults/fault_seed/
/// fault_accel/ecc knobs (registry defaults: injection disabled).
sttl2::FaultInjectionConfig fault_knobs(const Config& cfg, KnobCommand command);

}  // namespace sttgpu::sim
