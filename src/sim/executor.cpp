#include "sim/executor.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <iostream>
#include <mutex>
#include <thread>
#include <utility>

#include "common/error.hpp"

namespace sttgpu::sim {

namespace {

std::mutex& stderr_mutex() {
  static std::mutex m;
  return m;
}

[[noreturn]] void rethrow_labelled(const Job& job, const std::exception_ptr& eptr) {
  try {
    std::rethrow_exception(eptr);
  } catch (const std::exception& e) {
    throw SimError("job '" + job.label + "' failed: " + e.what());
  } catch (...) {
    throw SimError("job '" + job.label + "' failed with a non-standard exception");
  }
}

}  // namespace

unsigned default_jobs() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1u : hw;
}

unsigned resolve_jobs(std::int64_t requested) noexcept {
  if (requested <= 0) return default_jobs();
  return static_cast<unsigned>(requested);
}

void run_jobs(std::vector<Job> jobs, unsigned n_threads) {
  if (jobs.empty()) return;

  if (n_threads <= 1) {
    // Inline sequential mode: no threads, fail at the first throwing job
    // (later jobs do not start) — the pre-executor behaviour.
    for (const Job& job : jobs) {
      try {
        job.fn();
      } catch (...) {
        rethrow_labelled(job, std::current_exception());
      }
    }
    return;
  }

  std::vector<std::exception_ptr> errors(jobs.size());
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};

  const auto worker = [&]() {
    while (!failed.load(std::memory_order_relaxed)) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= jobs.size()) return;
      try {
        jobs[i].fn();
      } catch (...) {
        errors[i] = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
      }
    }
  };

  std::vector<std::thread> pool;
  const std::size_t want = std::min<std::size_t>(n_threads, jobs.size());
  pool.reserve(want);
  for (std::size_t t = 0; t < want; ++t) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();

  // Report deterministically: the failure with the lowest job index, even
  // if a later job happened to fail first in wall-clock order.
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (errors[i]) rethrow_labelled(jobs[i], errors[i]);
  }
}

void log_line(const std::string& line) {
  const std::lock_guard<std::mutex> lock(stderr_mutex());
  std::cerr << line << '\n';
}

}  // namespace sttgpu::sim
