#include "sim/executor.hpp"

#include <algorithm>
#include <iostream>
#include <mutex>
#include <thread>
#include <utility>

#include "sim/supervisor.hpp"

namespace sttgpu::sim {

namespace {

std::mutex& stderr_mutex() {
  static std::mutex m;
  return m;
}

}  // namespace

unsigned default_jobs() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1u : hw;
}

unsigned max_jobs() noexcept { return std::max(default_jobs() * 4u, 8u); }

unsigned resolve_jobs(std::int64_t requested) noexcept {
  if (requested <= 0) return default_jobs();
  const unsigned cap = max_jobs();
  if (static_cast<std::uint64_t>(requested) > cap) {
    // Oversubscribing simulation threads only adds scheduler churn and
    // memory pressure; clamp absurd literals instead of spawning them.
    log_line("[jobs] requested " + std::to_string(requested) +
             " worker threads; clamping to " + std::to_string(cap) +
             " (4x hardware concurrency)");
    return cap;
  }
  return static_cast<unsigned>(requested);
}

void run_jobs(std::vector<Job> jobs, unsigned n_threads) {
  // Unsupervised fail-fast mode: no cancellation, no watchdog, no retries —
  // run_supervised degenerates to the plain pool (and to a thread-free
  // inline loop at n_threads <= 1); failures become the aggregate SimError.
  throw_on_failures(run_supervised(std::move(jobs), n_threads));
}

void log_line(const std::string& line) {
  const std::lock_guard<std::mutex> lock(stderr_mutex());
  std::cerr << line << '\n';
}

}  // namespace sttgpu::sim
