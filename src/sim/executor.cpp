#include "sim/executor.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <iostream>
#include <mutex>
#include <thread>
#include <utility>

#include "common/error.hpp"

namespace sttgpu::sim {

namespace {

std::mutex& stderr_mutex() {
  static std::mutex m;
  return m;
}

std::string describe(const std::exception_ptr& eptr) {
  try {
    std::rethrow_exception(eptr);
  } catch (const std::exception& e) {
    return e.what();
  } catch (...) {
    return "non-standard exception";
  }
}

[[noreturn]] void rethrow_labelled(const Job& job, const std::exception_ptr& eptr) {
  throw SimError("job '" + job.label + "' failed: " + describe(eptr));
}

}  // namespace

unsigned default_jobs() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1u : hw;
}

unsigned resolve_jobs(std::int64_t requested) noexcept {
  if (requested <= 0) return default_jobs();
  return static_cast<unsigned>(requested);
}

void run_jobs(std::vector<Job> jobs, unsigned n_threads) {
  if (jobs.empty()) return;

  if (n_threads <= 1) {
    // Inline sequential mode: no threads, fail at the first throwing job
    // (later jobs do not start) — the pre-executor behaviour.
    for (const Job& job : jobs) {
      try {
        job.fn();
      } catch (...) {
        rethrow_labelled(job, std::current_exception());
      }
    }
    return;
  }

  std::vector<std::exception_ptr> errors(jobs.size());
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};

  const auto worker = [&]() {
    while (!failed.load(std::memory_order_relaxed)) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= jobs.size()) return;
      try {
        jobs[i].fn();
      } catch (...) {
        errors[i] = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
      }
    }
  };

  std::vector<std::thread> pool;
  const std::size_t want = std::min<std::size_t>(n_threads, jobs.size());
  pool.reserve(want);
  for (std::size_t t = 0; t < want; ++t) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();

  // Aggregate every captured failure into one deterministic SimError,
  // ordered by job index (not wall-clock failure order): a sweep that lost
  // three runs reports all three, not just the lowest-index one.
  std::vector<std::size_t> failed_idx;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (errors[i]) failed_idx.push_back(i);
  }
  if (failed_idx.empty()) return;
  if (failed_idx.size() == 1) rethrow_labelled(jobs[failed_idx[0]], errors[failed_idx[0]]);

  constexpr std::size_t kMaxDetailed = 5;
  std::string msg = std::to_string(failed_idx.size()) + " jobs failed:";
  for (std::size_t k = 0; k < failed_idx.size() && k < kMaxDetailed; ++k) {
    const std::size_t i = failed_idx[k];
    msg += "\n  job '" + jobs[i].label + "': " + describe(errors[i]);
  }
  if (failed_idx.size() > kMaxDetailed) {
    msg += "\n  ... and " + std::to_string(failed_idx.size() - kMaxDetailed) + " more";
  }
  throw SimError(msg);
}

void log_line(const std::string& line) {
  const std::lock_guard<std::mutex> lock(stderr_mutex());
  std::cerr << line << '\n';
}

}  // namespace sttgpu::sim
