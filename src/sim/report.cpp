#include "sim/report.hpp"

#include "common/json.hpp"

namespace sttgpu::sim {

namespace {

void metrics_fields(JsonWriter& w, const Metrics& m) {
  w.key("arch").value(m.arch);
  w.key("benchmark").value(m.benchmark);
  w.key("ipc").value(m.ipc);
  w.key("cycles").value(m.cycles);
  w.key("dynamic_w").value(m.dynamic_w);
  w.key("leakage_w").value(m.leakage_w);
  w.key("total_w").value(m.total_w);
  w.key("l2_write_share").value(m.l2_write_share);
  w.key("l2_miss_rate").value(m.l2_miss_rate);
}

}  // namespace

void write_metrics_json(std::ostream& os, const Metrics& metrics) {
  JsonWriter w(os);
  w.begin_object();
  metrics_fields(w, metrics);
  w.end_object();
}

void write_matrix_json(std::ostream& os, const std::vector<Metrics>& rows) {
  JsonWriter w(os);
  w.begin_object();
  w.key("runs").begin_array();
  for (const Metrics& m : rows) {
    w.begin_object();
    metrics_fields(w, m);
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

void write_run_json(std::ostream& os, const Metrics& metrics, const gpu::RunResult& run) {
  JsonWriter w(os);
  w.begin_object();
  w.key("metrics").begin_object();
  metrics_fields(w, metrics);
  w.end_object();

  w.key("counters").begin_object();
  for (const auto& [name, value] : run.l2_counters.all()) {
    w.key(name).value(value);
  }
  w.end_object();

  w.key("energy_pj").begin_object();
  for (const auto& [category, pj] : run.l2_energy.categories()) {
    w.key(category).value(pj);
  }
  w.end_object();

  w.key("l2").begin_object();
  w.key("read_hits").value(run.l2.read_hits);
  w.key("read_misses").value(run.l2.read_misses);
  w.key("write_hits").value(run.l2.write_hits);
  w.key("write_misses").value(run.l2.write_misses);
  w.key("dram_reads").value(run.l2.dram_reads);
  w.key("dram_writebacks").value(run.l2.dram_writebacks);
  w.end_object();

  w.key("sm").begin_object();
  w.key("instructions").value(run.sm.issued_instructions);
  w.key("loads").value(run.sm.issued_loads);
  w.key("stores").value(run.sm.issued_stores);
  w.key("idle_cycles").value(run.sm.idle_cycles);
  w.key("stall_cycles").value(run.sm.stall_cycles);
  w.end_object();
  w.end_object();
}

}  // namespace sttgpu::sim
