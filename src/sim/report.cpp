#include "sim/report.hpp"

#include "common/json.hpp"
#include "common/telemetry.hpp"
#include "sttl2/reliability.hpp"
#include "sttl2/two_part_bank.hpp"
#include "sttl2/uniform_bank.hpp"

namespace sttgpu::sim {

namespace {

void add_fault_stream(FaultSummary& s, const sttl2::FaultModel& fm) {
  if (!fm.enabled()) return;
  s.enabled = true;
  s.trials += fm.trials();
  s.collapses += fm.collapses();
  s.expected += fm.expected_collapses();
  // Re-score the injector's own lifetime histogram with the analytic model:
  // refresh_period 0 because realized lifetimes are already refresh-truncated.
  s.predicted += sttl2::analyze_reliability(fm.lifetimes_ns(), fm.retention_s(),
                                            /*refresh_period_s=*/0.0,
                                            fm.overflow_lifetime_ns(),
                                            fm.effective_spec_margin())
                     .expected_failures;
}

void add_fault_counters(FaultSummary& s, const CounterSet& c) {
  s.ecc_corrected += c.get("fault_ecc_corrected");
  s.ecc_detected += c.get("fault_ecc_detected");
  s.clean_refetch += c.get("fault_clean_refetch");
  s.data_loss += c.get("fault_data_loss");
  s.wv_retries += c.get("fault_wv_retries");
  s.wv_escalations += c.get("fault_wv_escalations");
}

}  // namespace

FaultSummary collect_fault_summary(gpu::Gpu& g) {
  FaultSummary s;
  for (unsigned i = 0; i < g.num_banks(); ++i) {
    gpu::L2Bank& bank = g.bank(i);
    if (const auto* tp = dynamic_cast<const sttl2::TwoPartBank*>(&bank)) {
      add_fault_stream(s, tp->lr_faults());
      add_fault_stream(s, tp->hr_faults());
      if (tp->lr_faults().enabled() || tp->hr_faults().enabled()) {
        add_fault_counters(s, tp->counters());
      }
    } else if (const auto* un = dynamic_cast<const sttl2::UniformBank*>(&bank)) {
      add_fault_stream(s, un->faults());
      if (un->faults().enabled()) add_fault_counters(s, un->counters());
    }
  }
  return s;
}

namespace {

void metrics_fields(JsonWriter& w, const Metrics& m) {
  w.key("arch").value(m.arch);
  w.key("benchmark").value(m.benchmark);
  w.key("ipc").value(m.ipc);
  w.key("cycles").value(m.cycles);
  w.key("dynamic_w").value(m.dynamic_w);
  w.key("leakage_w").value(m.leakage_w);
  w.key("total_w").value(m.total_w);
  w.key("l2_write_share").value(m.l2_write_share);
  w.key("l2_miss_rate").value(m.l2_miss_rate);
}

}  // namespace

void print_metrics_block(std::ostream& os, const Metrics& metrics, double scale) {
  os << metrics.arch << " / " << metrics.benchmark << " (scale " << scale << ")\n"
     << "  IPC        " << metrics.ipc << "\n"
     << "  cycles     " << metrics.cycles << "\n"
     << "  L2 power   " << metrics.total_w << " W (dyn " << metrics.dynamic_w
     << " + leak " << metrics.leakage_w << ")\n"
     << "  writes     " << metrics.l2_write_share * 100 << "% of L2 accesses\n"
     << "  miss rate  " << metrics.l2_miss_rate * 100 << "%\n";
}

void write_metrics_json(std::ostream& os, const Metrics& metrics) {
  JsonWriter w(os);
  w.begin_object();
  metrics_fields(w, metrics);
  w.end_object();
}

void write_matrix_json(std::ostream& os, const std::vector<Metrics>& rows) {
  JsonWriter w(os);
  w.begin_object();
  w.key("runs").begin_array();
  for (const Metrics& m : rows) {
    w.begin_object();
    metrics_fields(w, m);
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

void write_run_json(std::ostream& os, const Metrics& metrics, const gpu::RunResult& run,
                    const FaultSummary* faults, const Telemetry* telemetry) {
  JsonWriter w(os);
  w.begin_object();
  w.key("metrics").begin_object();
  metrics_fields(w, metrics);
  w.end_object();

  w.key("counters").begin_object();
  for (const auto& [name, value] : run.l2_counters.all()) {
    w.key(name).value(value);
  }
  w.end_object();

  w.key("energy_pj").begin_object();
  for (const auto& [category, pj] : run.l2_energy.categories()) {
    w.key(category).value(pj);
  }
  w.end_object();

  w.key("l2").begin_object();
  w.key("read_hits").value(run.l2.read_hits);
  w.key("read_misses").value(run.l2.read_misses);
  w.key("write_hits").value(run.l2.write_hits);
  w.key("write_misses").value(run.l2.write_misses);
  w.key("dram_reads").value(run.l2.dram_reads);
  w.key("dram_writebacks").value(run.l2.dram_writebacks);
  w.end_object();

  w.key("sm").begin_object();
  w.key("instructions").value(run.sm.issued_instructions);
  w.key("loads").value(run.sm.issued_loads);
  w.key("stores").value(run.sm.issued_stores);
  w.key("idle_cycles").value(run.sm.idle_cycles);
  w.key("stall_cycles").value(run.sm.stall_cycles);
  w.end_object();

  // Transport/scheduler observability: express vs queued splits are
  // contention facts of the simulated machine (identical at every hotpath
  // level); the wheel high-water marks describe the hotpath=2 scheduler and
  // read zero at lower levels.
  w.key("scheduler").begin_object();
  w.key("icnt_request_express").value(run.sched.icnt_request_express);
  w.key("icnt_request_queued").value(run.sched.icnt_request_queued);
  w.key("icnt_response_express").value(run.sched.icnt_response_express);
  w.key("icnt_response_queued").value(run.sched.icnt_response_queued);
  w.key("dram_express_reads").value(run.sched.dram_express_reads);
  w.key("dram_queued_reads").value(run.sched.dram_queued_reads);
  w.key("wheel_bucket_high_water")
      .value(static_cast<std::uint64_t>(run.sched.wheel_bucket_high_water));
  w.key("wheel_far_high_water").value(run.sched.wheel_far_high_water);
  w.end_object();

  if (faults != nullptr && faults->enabled) {
    w.key("faults").begin_object();
    w.key("trials").value(faults->trials);
    w.key("injected_collapses").value(faults->collapses);
    w.key("expected_collapses").value(faults->expected);
    w.key("predicted_collapses").value(faults->predicted);
    w.key("ecc_corrected").value(faults->ecc_corrected);
    w.key("ecc_detected").value(faults->ecc_detected);
    w.key("clean_refetch").value(faults->clean_refetch);
    w.key("data_loss").value(faults->data_loss);
    w.key("write_verify_retries").value(faults->wv_retries);
    w.key("write_verify_escalations").value(faults->wv_escalations);
    w.end_object();
  }

  if (telemetry != nullptr) {
    w.key("telemetry");
    telemetry->write_json(w);
  }
  w.end_object();
}

}  // namespace sttgpu::sim
