// Run supervision for long unattended sweeps: cooperative cancellation, a
// progress watchdog, bounded retry with deterministic backoff jitter, and
// failure quarantine.
//
// run_supervised() executes a job list on the executor's thread-pool model
// (same by-index determinism and inline jobs=1 mode as run_jobs) and layers
// on:
//   * Cancellation — an external CancelToken (typically installed from
//     SIGINT/SIGTERM handlers) is forwarded into every job's private token;
//     jobs observe it at their next checkpoint, unwind with Cancelled, and
//     the result is marked interrupted. Not-yet-started jobs never start.
//   * Watchdog — each job publishes a heartbeat (the Gpu publishes its cycle
//     count at supervision points); a monitor thread cancels any running job
//     whose heartbeat has not advanced for watchdog_s seconds of wall clock,
//     with reason kWatchdog. The job reports a diagnostic state dump from
//     the throw site (the Gpu appends per-bank queue depths and swap-buffer
//     state). job_timeout_s bounds an attempt's total wall clock the same
//     way with reason kTimeout.
//   * Retry — a job failing with an ordinary exception is re-run up to
//     `retries` extra times, with exponential backoff and deterministic
//     per-(label, attempt) jitter so a fleet of flaky jobs does not retry in
//     lockstep. Cancellations and watchdog/timeout kills are never retried
//     (a livelocked job would livelock again).
//   * Quarantine — with keep_going, a permanently failing job is recorded in
//     its outcome slot and the rest of the sweep still runs to completion;
//     without it the pool fails fast exactly like run_jobs.
//
// Supervision is cooperative: it cancels jobs, it cannot destroy a thread
// that never reaches a checkpoint. The Gpu checkpoints every few thousand
// cycles, so any simulation that is still executing its cycle loop — the
// livelock case the watchdog exists for — observes the request promptly.
//
// Everything here is run-mode only: no knob participates in the result-
// cache fingerprint and supervised runs produce byte-identical simulation
// results.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "sim/executor.hpp"

namespace sttgpu::sim {

/// Terminal state of one supervised job.
enum class JobStatus {
  kOk,         ///< completed (possibly after retries)
  kFailed,     ///< ordinary failure, retries exhausted
  kCancelled,  ///< external (user) cancellation
  kWatchdog,   ///< killed: no heartbeat progress for watchdog_s
  kTimeout,    ///< killed: attempt exceeded job_timeout_s
  kSkipped,    ///< never started (fail-fast or cancelled sweep)
};

const char* job_status_name(JobStatus s) noexcept;

struct JobOutcome {
  std::string label;
  JobStatus status = JobStatus::kSkipped;
  unsigned attempts = 0;  ///< attempts actually made (0 when skipped)
  std::string error;      ///< last failure message ("" on success)
};

struct SupervisorOptions {
  /// Shared cancellation source (e.g. flipped by a SIGINT handler); null
  /// disables external cancellation.
  const CancelToken* external = nullptr;

  /// Kill a job whose heartbeat shows no forward progress for this many
  /// wall-clock seconds (0 = watchdog off).
  double watchdog_s = 0.0;

  /// Kill a job attempt running longer than this many wall-clock seconds
  /// regardless of progress (0 = no per-job timeout).
  double job_timeout_s = 0.0;

  /// Extra attempts for a job failing with an ordinary exception.
  unsigned retries = 0;

  /// Base backoff before the first retry; doubles per attempt (capped) and
  /// is stretched by a deterministic per-(label, attempt) jitter.
  double retry_backoff_s = 0.25;

  /// Quarantine permanent failures and keep running the rest of the sweep
  /// instead of failing fast.
  bool keep_going = false;
};

struct SupervisedResult {
  std::vector<JobOutcome> outcomes;  ///< by job index
  bool interrupted = false;          ///< external cancellation observed

  std::size_t count(JobStatus s) const noexcept;
  bool all_ok() const noexcept;

  /// Multi-line failure manifest ("" when every job succeeded): a summary
  /// line plus one "[status] label after N attempts: error" entry per
  /// non-OK job, in index order.
  std::string manifest() const;
};

/// Retry pacing shared by the thread supervisor and the serve sandbox:
/// base * 2^attempt capped at 30 s, stretched by up to +50% of deterministic
/// per-(label, attempt) jitter so a fleet of flaky jobs never retries in
/// lockstep yet paces identically on every rerun.
double retry_backoff_seconds(double base_s, const std::string& label, unsigned attempt);

/// Runs @p jobs under supervision. Never throws for job failures — every
/// terminal state is reported in the result (callers decide whether to
/// throw; see throw_on_failures).
SupervisedResult run_supervised(std::vector<Job> jobs, unsigned n_threads,
                                const SupervisorOptions& opts = {});

/// Converts a result with failures into the deterministic aggregate
/// SimError run_jobs has always thrown: single failure keeps the exact
/// "job '<label>' failed: <what>" message; multiple failures are listed in
/// index order (first 5 labelled, then a count). No-op when all jobs
/// succeeded.
void throw_on_failures(const SupervisedResult& result);

}  // namespace sttgpu::sim
