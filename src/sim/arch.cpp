#include "sim/arch.hpp"

#include "common/error.hpp"
#include "common/types.hpp"
#include "nvm/cell.hpp"

namespace sttgpu::sim {

const char* to_string(Architecture a) noexcept {
  switch (a) {
    case Architecture::kSramBaseline: return "sram";
    case Architecture::kSttBaseline: return "stt-base";
    case Architecture::kC1: return "C1";
    case Architecture::kC2: return "C2";
    case Architecture::kC3: return "C3";
  }
  return "?";
}

Architecture architecture_from_string(const std::string& name) {
  for (const Architecture a : all_architectures()) {
    if (name == to_string(a)) return a;
  }
  throw SimError("unknown architecture: " + name);
}

std::vector<Architecture> all_architectures() {
  return {Architecture::kSramBaseline, Architecture::kSttBaseline, Architecture::kC1,
          Architecture::kC2, Architecture::kC3};
}

namespace {

/// Data-array silicon area of an L2 of @p bytes built from @p cell.
MilliMeter2 l2_data_area(std::uint64_t total_bytes, const nvm::CellParams& cell,
                         unsigned line_bytes, unsigned assoc, unsigned banks) {
  power::ArraySpec spec;
  spec.capacity_bytes = total_bytes / banks;
  spec.associativity = assoc;
  spec.line_bytes = line_bytes;
  spec.data_cell = cell;
  return power::evaluate_array(spec).data_area_mm2 * banks;
}

/// Registers per SM bought with @p area_mm2 of SRAM, rounded down to the
/// 64-register warp allocation granularity.
unsigned extra_regs_per_sm(MilliMeter2 area_mm2, unsigned num_sms) {
  const std::uint64_t total = power::registers_for_area(area_mm2);
  const std::uint64_t per_sm = total / num_sms;
  return static_cast<unsigned>(per_sm - per_sm % 64);
}

}  // namespace

ArchSpec make_arch(Architecture arch) {
  ArchSpec spec;
  spec.id = arch;
  spec.name = to_string(arch);
  spec.gpu = gpu::GpuConfig{};  // GTX480-class baseline

  const unsigned banks = spec.gpu.num_l2_banks;
  const unsigned line = spec.gpu.l2_line_bytes;
  const MilliMeter2 sram_area =
      l2_data_area(kBaselineL2Bytes, nvm::sram_cell(), line, 8, banks);

  const auto lr_cell_capacity = [&](std::uint64_t total_l2) {
    // Two-part split: 1/8 of the capacity is LR, 7/8 HR — Table 2's
    // 192/1536, 48/384 and 96/768 ratios.
    return std::pair<std::uint64_t, std::uint64_t>{total_l2 * 7 / 8 / banks,
                                                   total_l2 / 8 / banks};
  };

  const auto setup_two_part = [&](std::uint64_t total_l2) {
    spec.two_part = true;
    auto [hr, lr] = lr_cell_capacity(total_l2);
    spec.two_part_cfg = sttl2::TwoPartBankConfig{};
    spec.two_part_cfg.hr_bytes = hr;
    spec.two_part_cfg.lr_bytes = lr;
    spec.two_part_cfg.line_bytes = line;
    spec.l2_data_area_mm2 =
        l2_data_area(total_l2 * 7 / 8, nvm::stt_cell(nvm::RetentionClass::kMs40), line, 7,
                     banks) +
        l2_data_area(total_l2 / 8, nvm::stt_cell(nvm::RetentionClass::kUs26), line, 2, banks);
  };

  switch (arch) {
    case Architecture::kSramBaseline: {
      spec.two_part = false;
      spec.uniform = sttl2::UniformBankConfig{};
      spec.uniform.capacity_bytes = kBaselineL2Bytes / banks;
      spec.uniform.associativity = 8;
      spec.uniform.line_bytes = line;
      spec.uniform.cell = nvm::sram_cell();
      spec.l2_data_area_mm2 = sram_area;
      break;
    }
    case Architecture::kSttBaseline: {
      // Same area as the SRAM baseline: 4x capacity of 10-year cells.
      spec.two_part = false;
      spec.uniform = sttl2::UniformBankConfig{};
      spec.uniform.capacity_bytes = 4 * kBaselineL2Bytes / banks;
      spec.uniform.associativity = 8;
      spec.uniform.line_bytes = line;
      spec.uniform.cell = nvm::stt_cell(nvm::RetentionClass::kYears10);
      spec.l2_data_area_mm2 =
          l2_data_area(4 * kBaselineL2Bytes, spec.uniform.cell, line, 8, banks);
      break;
    }
    case Architecture::kC1:
      setup_two_part(4 * kBaselineL2Bytes);  // 1344KB HR + 192KB LR
      break;
    case Architecture::kC2: {
      setup_two_part(kBaselineL2Bytes);  // 336KB HR + 48KB LR
      spec.regfile_extra_mm2 = sram_area - spec.l2_data_area_mm2;
      spec.extra_regs_per_sm = extra_regs_per_sm(spec.regfile_extra_mm2, spec.gpu.num_sms);
      spec.gpu.registers_per_sm += spec.extra_regs_per_sm;
      break;
    }
    case Architecture::kC3: {
      setup_two_part(2 * kBaselineL2Bytes);  // 672KB HR + 96KB LR
      spec.regfile_extra_mm2 = sram_area - spec.l2_data_area_mm2;
      spec.extra_regs_per_sm = extra_regs_per_sm(spec.regfile_extra_mm2, spec.gpu.num_sms);
      spec.gpu.registers_per_sm += spec.extra_regs_per_sm;
      break;
    }
  }
  return spec;
}

}  // namespace sttgpu::sim
