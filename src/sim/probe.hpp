// Probe helpers: run a workload and harvest bank-implementation internals
// (rewrite histograms, write-variation COV, LR utilization) aggregated over
// all banks. These feed the characterization figures (3, 4, 5, 6) and the
// ablation benches.
#pragma once

#include <string>
#include <vector>

#include "common/stats.hpp"
#include "sim/runner.hpp"
#include "sttl2/config.hpp"

namespace sttgpu::sim {

/// Results of running one workload on a two-part L2 (C1 geometry unless a
/// custom config is given).
struct TwoPartProbe {
  Metrics metrics;
  CounterSet counters;  ///< merged implementation counters (w_lr, migrations, ...)

  /// Fig. 6 bucket fractions: <=10us, <=50us, <=100us, <=1ms, <=2.5ms, >2.5ms.
  std::vector<double> lr_interval_fractions;
  std::uint64_t lr_intervals = 0;
  /// The same distribution as a histogram (for reliability analysis).
  Histogram lr_interval_hist{{1.0}};

  /// Fraction of HR rewrite intervals within 40ms (Section 4 claim).
  double hr_within_40ms = 0.0;
  std::uint64_t hr_intervals = 0;

  /// Fraction of demand stores whose data ended in the LR part.
  double lr_write_utilization = 0.0;

  // Endurance view (merged across banks): write-variation COV of the
  // physical writes each part's cells absorb, and the hottest-line counts.
  double lr_wear_inter_cov = 0.0;
  double lr_wear_intra_cov = 0.0;
  std::uint64_t lr_wear_max_line = 0;  ///< writes into the most-worn LR line
  std::uint64_t hr_wear_max_line = 0;
};

/// Runs @p benchmark on a GPU with @p bank_cfg two-part banks. @p gpu_cfg
/// defaults to the baseline GPU model. Probes build their own Gpu (they do
/// not go through RunOptions); to sample interval telemetry from a probe
/// run, point gpu_cfg->telemetry at a fresh sink before calling.
TwoPartProbe run_two_part(const std::string& benchmark, const sttl2::TwoPartBankConfig& bank_cfg,
                          double scale, const gpu::GpuConfig* gpu_cfg = nullptr);

/// Convenience: the C1 per-bank config (224KB HR + 32KB LR).
sttl2::TwoPartBankConfig c1_bank_config();

/// Results of running one workload on a uniform bank (SRAM baseline by
/// default) and reading its write-variation statistics.
struct UniformProbe {
  Metrics metrics;
  CounterSet counters;
  double inter_set_cov = 0.0;  ///< mean across banks
  double intra_set_cov = 0.0;
  double write_share = 0.0;    ///< writes / L2 accesses
};

UniformProbe run_uniform(const std::string& benchmark, const sttl2::UniformBankConfig& bank_cfg,
                         double scale);

/// The SRAM baseline per-bank config (64KB 8-way).
sttl2::UniformBankConfig sram_bank_config();

}  // namespace sttgpu::sim
