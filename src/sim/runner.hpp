// Experiment runner: builds a GPU for an architecture, runs one workload,
// and extracts the metrics the paper's figures plot. Also provides the
// shared Fig. 8 (arch x benchmark) matrix with a CSV result cache so the
// three Fig. 8 bench binaries do not re-simulate the same 80 runs.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "gpu/gpu.hpp"
#include "sim/arch.hpp"
#include "workload/benchmarks.hpp"

namespace sttgpu::sim {

struct Metrics {
  std::string arch;
  std::string benchmark;
  double ipc = 0.0;
  std::uint64_t cycles = 0;
  double dynamic_w = 0.0;   ///< L2 dynamic power over the run
  double leakage_w = 0.0;   ///< L2 leakage
  double total_w = 0.0;
  double l2_write_share = 0.0;
  double l2_miss_rate = 0.0;
};

/// Hook type: runs with the live Gpu after simulation, before teardown —
/// used by benches that need bank internals (histograms, utilizations).
using BankInspector = std::function<void(gpu::Gpu&)>;

/// Runs @p workload on @p spec. @p inspect (optional) sees the finished GPU.
Metrics run_one(const ArchSpec& spec, const workload::Workload& workload,
                const BankInspector& inspect = {});

/// Convenience: build + run by ids.
Metrics run_one(Architecture arch, const std::string& benchmark, double scale,
                const BankInspector& inspect = {});

/// Like run_one, but also hands back the full gpu::RunResult (counters,
/// per-category energy, SM stats) for detailed reporting.
Metrics run_one_detailed(const ArchSpec& spec, const workload::Workload& workload,
                         gpu::RunResult& out_run);

/// The Fig. 8 matrix: every benchmark on every listed architecture.
/// Results are cached in @p cache_path (CSV) keyed by (arch, benchmark);
/// pass an empty path to disable caching. Progress lines go to stderr.
std::vector<Metrics> run_matrix(const std::vector<Architecture>& archs, double scale,
                                const std::string& cache_path);

/// Cache helpers (exposed for tests).
std::map<std::pair<std::string, std::string>, Metrics> load_cache(const std::string& path);
void save_cache(const std::string& path, const std::vector<Metrics>& rows);

/// Index @p rows by benchmark for one architecture.
std::map<std::string, Metrics> by_benchmark(const std::vector<Metrics>& rows,
                                            const std::string& arch);

}  // namespace sttgpu::sim
