// Experiment runner: builds a GPU for an architecture, runs one workload,
// and extracts the metrics the paper's figures plot. Also provides the
// shared Fig. 8 (arch x benchmark) matrix with a persistent result cache so
// the three Fig. 8 bench binaries do not re-simulate the same 80 runs.
//
// Persistence is two-layered. The durable source of truth is the
// crash-safe WAL-backed result store (store/result_store.hpp) living at
// "<cache>.store" next to the CSV: every completed run is appended and
// fsync'd write-through, so a crash — SIGKILL included — in run 79 of 80
// keeps the first 78, and concurrent matrix processes merge through the
// store's file lock. The v2 CSV (header = format version + workload
// `scale` + config fingerprint; stale on any mismatch) remains as the
// human-diffable export, regenerated after the sweep; a pre-existing CSV
// with rows the store lacks is migrated into the store once. Runs fan out
// onto the sim::run_jobs thread pool (executor.hpp); jobs=1 reproduces the
// old strictly sequential behaviour.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "gpu/gpu.hpp"
#include "sim/arch.hpp"
#include "sim/supervisor.hpp"
#include "store/record.hpp"
#include "workload/benchmarks.hpp"

namespace sttgpu {
class Telemetry;
}

namespace sttgpu::sim {

struct Metrics {
  std::string arch;
  std::string benchmark;
  double ipc = 0.0;
  std::uint64_t cycles = 0;
  double dynamic_w = 0.0;   ///< L2 dynamic power over the run
  double leakage_w = 0.0;   ///< L2 leakage
  double total_w = 0.0;
  double l2_write_share = 0.0;
  double l2_miss_rate = 0.0;
};

/// Hook type: runs with the live Gpu after simulation, before teardown —
/// used by benches that need bank internals (histograms, utilizations).
using BankInspector = std::function<void(gpu::Gpu&)>;

/// Every run-mode knob of the runner entry points in one place, with named
/// defaults — replaces the old positional (cache_path, jobs, fast_forward,
/// faults, ...) parameter accretion. RunOptions is the single source of
/// truth for these knobs: run_one/run_matrix overwrite the corresponding
/// ArchSpec fields (gpu.fast_forward, gpu.telemetry, *.faults) from it, so
/// pre-mutating a spec for run-mode settings no longer has any effect.
/// C++20 designated initializers keep call sites readable:
///   run_one(spec, w, {.fast_forward = false});
///   run_matrix(archs, {.scale = 0.1, .cache_path = "c.csv", .jobs = 4});
struct RunOptions {
  /// Workload scale in (0, 1] — used by the by-name/matrix entry points
  /// that construct their own benchmarks.
  double scale = 0.5;

  /// Matrix result cache path (CSV export, format v2); the durable
  /// WAL-backed store lives at the derived "<cache>.store" path next to
  /// it. Empty disables caching entirely.
  std::string cache_path{};

  /// Matrix worker threads: 0 = hardware concurrency, 1 = sequential.
  unsigned jobs = 1;

  /// Event-driven fast-forward in the simulator core. A pure scheduling
  /// optimization — results are identical either way (so it is not part of
  /// the cache fingerprint); `false` exists for A/B validation.
  bool fast_forward = true;

  /// Hot-path stepping level (see GpuConfig::hotpath): 0 = plain per-cycle
  /// loop, 1 = per-component event lanes, 2 = hierarchical event wheel
  /// (default). Like fast_forward a pure scheduling optimization with
  /// byte-identical results across levels, excluded from the cache
  /// fingerprint; lower levels exist for A/B validation.
  unsigned hotpath = 2;

  /// Worker threads for the per-cycle L2 bank tick batch (hotpath only;
  /// 1 = sequential). Results are bit-identical at any value, so this too
  /// stays out of the cache fingerprint.
  unsigned tick_jobs = 1;

  /// In-simulation fault injection on every bank (sttl2/fault_model.hpp).
  /// Unlike fast_forward it changes results, so its knobs ARE part of the
  /// cache fingerprint: a fault run can never reuse or pollute a baseline
  /// cache (and vice versa).
  sttl2::FaultInjectionConfig faults{};

  /// Interval-telemetry sink (common/telemetry.hpp); not owned, must
  /// outlive the run, one fresh Telemetry per run. Purely observational —
  /// aggregates are byte-identical with or without it. Rejected by
  /// run_matrix (parallel runs would interleave samples into one sink).
  Telemetry* telemetry = nullptr;

  /// Optional hook that sees the finished GPU before teardown.
  BankInspector inspect{};

  // --- run supervision (supervisor.hpp) ---
  // All run-mode only: none of these change simulation results or the cache
  // fingerprint; they only decide whether/when a run is allowed to finish.

  /// Cooperative cancellation token (e.g. installed from a SIGINT handler);
  /// not owned, must outlive the run. The simulator polls it at supervision
  /// points and unwinds with a Cancelled error.
  const CancelToken* cancel = nullptr;

  /// Cycle-count heartbeat published at supervision points (single runs;
  /// run_matrix wires per-job heartbeats itself and rejects this).
  std::atomic<std::uint64_t>* heartbeat = nullptr;

  /// Matrix watchdog: abort a job that makes no forward progress (heartbeat
  /// unchanged) for this many wall-clock seconds. 0 disables.
  double watchdog_s = 0.0;

  /// Matrix per-attempt wall-clock budget in seconds. 0 disables.
  double job_timeout_s = 0.0;

  /// Matrix retry budget per job (transient failures; exponential backoff
  /// with deterministic jitter). 0 = no retries.
  unsigned retries = 0;

  /// Matrix failure policy: quarantine deterministic failures and return
  /// partial results with a failure manifest instead of failing fast.
  bool keep_going = false;

  /// Optional out-param: per-job outcomes of the matrix run (not owned).
  SupervisedResult* report = nullptr;
};

/// Runs @p workload on @p spec under @p opts (opts.scale is ignored here —
/// the workload is already built).
Metrics run_one(const ArchSpec& spec, const workload::Workload& workload,
                const RunOptions& opts = {});

/// Convenience: build + run by ids; the benchmark is built at opts.scale.
Metrics run_one(Architecture arch, const std::string& benchmark,
                const RunOptions& opts = {});

/// Like run_one, but also hands back the full gpu::RunResult (counters,
/// per-category energy, SM stats) for detailed reporting.
Metrics run_one_detailed(const ArchSpec& spec, const workload::Workload& workload,
                         gpu::RunResult& out_run, const RunOptions& opts = {});

/// The Fig. 8 matrix: every benchmark on every listed architecture, run
/// under @p opts (scale, cache_path, jobs, fast_forward, faults). Results
/// are ordered by (arch, benchmark) index regardless of job count; progress
/// lines go to stderr. Throws SimError (naming the failing arch/benchmark)
/// if a run fails, if opts.cache_path is not writable, or if opts sets
/// telemetry/inspect (both are per-run hooks, meaningless across a fanned-
/// out matrix).
std::vector<Metrics> run_matrix(const std::vector<Architecture>& archs,
                                const RunOptions& opts = {});

/// Same, restricted to an explicit benchmark subset (tests, quick sweeps).
std::vector<Metrics> run_matrix(const std::vector<Architecture>& archs,
                                const std::vector<std::string>& benchmarks,
                                const RunOptions& opts = {});

/// Fingerprint of the simulator configuration that cached results depend
/// on: hashes the resolved Table-2 architecture registry (cache geometry,
/// cell parameters, GPU model) and the benchmark suite. Caches whose
/// recorded fingerprint differs are stale and must be discarded.
std::uint64_t config_fingerprint();

/// Fault-aware fingerprint: identical to config_fingerprint() when faults
/// are disabled (so existing caches stay valid) and folds every fault knob
/// in when enabled.
std::uint64_t config_fingerprint(const sttl2::FaultInjectionConfig& faults);

/// Loads a v2 result cache (CSV layer only; run_matrix reads the store).
/// Returns an empty map — with a stderr warning — if the file is not
/// format v2 (e.g. a pre-versioning v1 file) or was written at a different
/// scale / config fingerprint. A missing, empty, or whitespace-only file is
/// simply a cold cache: empty map, no warning. Malformed rows (wrong field
/// count, non-numeric cells) are skipped with a warning instead of
/// corrupting neighbouring values.
std::map<std::pair<std::string, std::string>, Metrics> load_cache(
    const std::string& path, double scale, const sttl2::FaultInjectionConfig& faults = {});

/// Saves @p rows as a v2 cache: header line first, then one CSV row per
/// Metrics, written to a temp file and atomically renamed over @p path.
/// Throws SimError if the path is not writable.
void save_cache(const std::string& path, double scale, const std::vector<Metrics>& rows,
                const sttl2::FaultInjectionConfig& faults = {});

/// Index @p rows by benchmark for one architecture.
std::map<std::string, Metrics> by_benchmark(const std::vector<Metrics>& rows,
                                            const std::string& arch);

/// Metrics <-> store-row conversion (the store schema mirrors Metrics by
/// value, not by type; see store/record.hpp). Shared by the matrix runner
/// and the sweep service so both persist identical bytes.
store::ResultRow to_store_row(const Metrics& m);
Metrics from_store_row(const store::ResultRow& r);

}  // namespace sttgpu::sim
