// L2 request-trace capture and replay.
//
// Capture wraps any L2 bank with a recorder so a full GPU run writes the
// exact demand stream each bank saw (cycle, address, read/write, SM) to a
// CSV trace. Replay drives a stand-alone bank from such a trace — no GPU
// needed — which makes cache-architecture studies (sweeps over bank
// configurations) orders of magnitude faster and lets traces be shared.
//
// Format (one header line, then one line per request):
//   cycle,bank,addr,is_store,sm
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "gpu/gpu.hpp"
#include "sim/runner.hpp"
#include "sttl2/config.hpp"

namespace sttgpu::sim {

struct TraceRecord {
  Cycle cycle = 0;
  unsigned bank = 0;
  Addr addr = 0;
  bool is_store = false;
  unsigned sm = 0;
};

/// Runs @p workload on @p spec while recording every L2 bank request to
/// @p trace_path. Returns the run metrics (the recording adds no timing).
/// Honours the run-mode knobs of @p opts (fast_forward, faults, telemetry);
/// scale/cache/jobs/inspect are ignored.
Metrics record_trace(const ArchSpec& spec, const workload::Workload& workload,
                     const std::string& trace_path, const RunOptions& opts = {});

/// Loads a trace written by record_trace. Throws SimError on parse errors.
std::vector<TraceRecord> load_trace(const std::string& trace_path);

/// Saves records (mostly useful for synthesizing traces in tests).
void save_trace(const std::string& trace_path, const std::vector<TraceRecord>& records);

/// Result of a trace-driven bank replay.
struct ReplayResult {
  gpu::L2BankStats stats;     ///< merged across banks
  CounterSet counters;        ///< implementation counters, merged
  Cycle cycles = 0;           ///< last request cycle + drain time
  double dynamic_energy_pj = 0.0;
  Watt leakage_w = 0.0;
};

/// Replays @p records against fresh two-part banks (one per bank id seen).
ReplayResult replay_trace(const std::vector<TraceRecord>& records,
                          const sttl2::TwoPartBankConfig& bank_cfg,
                          const gpu::GpuConfig& gpu_cfg = {});

/// Replays against uniform banks (SRAM or naive STT).
ReplayResult replay_trace(const std::vector<TraceRecord>& records,
                          const sttl2::UniformBankConfig& bank_cfg,
                          const gpu::GpuConfig& gpu_cfg = {});

}  // namespace sttgpu::sim
