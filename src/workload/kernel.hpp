// Kernel / grid / warp model of a GPGPU application.
//
// The paper evaluates CUDA benchmarks (GPGPU-Sim suite, Rodinia, Parboil) on
// GPGPU-Sim. We replace the PTX front end with *synthetic kernel models*:
// each benchmark is described by the statistics that determine its behaviour
// in the memory hierarchy — instruction mix, footprint, reuse, write working
// set, coalescing, and per-thread resource usage (which drives occupancy).
// A (workload, seed, warp-id) triple always generates the same instruction
// stream, so every architecture sees an identical trace.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/small_vec.hpp"
#include "common/types.hpp"
#include "workload/pattern.hpp"

namespace sttgpu::workload {

/// Memory spaces relevant to the L1 write-policy diagram (paper Fig. 1b).
enum class MemSpace : std::uint8_t {
  kGlobal,   ///< write-evict (hit) / write-no-allocate (miss) at L1
  kLocal,    ///< write-back at L1
  kConstant, ///< read-only, served by the 8KB constant cache
  kTexture,  ///< read-only, served by the 12KB texture cache
  kShared,   ///< software-managed scratchpad: intra-SM, never reaches L2
};

/// One warp-level instruction as seen by the SM issue stage.
struct WarpInstr {
  enum class Kind : std::uint8_t { kCompute, kLoad, kStore };
  Kind kind = Kind::kCompute;
  MemSpace space = MemSpace::kGlobal;
  /// Line-aligned base addresses of the coalesced 128B transactions this
  /// warp instruction generates (empty for compute). Inline capacity covers
  /// the full warp width, so instruction synthesis never heap-allocates.
  SmallVec<Addr, 32> transactions;
  /// Result latency for compute instructions (cycles).
  unsigned latency = 1;
};

/// Static description of one kernel (one grid launch).
struct KernelSpec {
  std::string name;

  // --- grid shape / resources (drive occupancy) ---
  unsigned grid_blocks = 1;          ///< thread blocks in the grid
  unsigned threads_per_block = 256;  ///< multiple of the 32-thread warp size
  unsigned regs_per_thread = 20;     ///< architectural registers per thread
  unsigned shared_bytes_per_block = 0;

  // --- per-warp work ---
  unsigned instructions_per_warp = 1500;  ///< warp-instructions each warp runs
  unsigned compute_latency = 8;           ///< cycles to ready after a compute op

  // --- instruction mix ---
  double mem_fraction = 0.25;     ///< P(instruction is a memory op)
  double store_fraction = 0.20;   ///< P(memory op is a store), of global/local ops
  double const_fraction = 0.02;   ///< P(memory op is a constant-cache read)
  double texture_fraction = 0.0;  ///< P(memory op is a texture read)
  double shared_fraction = 0.0;   ///< P(memory op is a shared-memory access)
  double local_fraction = 0.0;    ///< P(memory op addresses local space)

  /// Shared-memory timing: base access latency and the average bank-conflict
  /// serialization degree (1.0 = conflict free; k = k-way serialized).
  unsigned shared_latency = 2;
  double shared_conflict_avg = 1.0;

  /// Fraction of this kernel's stores concentrated in the epilogue phase
  /// (the paper: grids write their results near the end of execution).
  double stores_at_end_fraction = 0.35;
  /// The epilogue is the last this fraction of each warp's instructions.
  double epilogue_fraction = 0.12;

  // --- addressing behaviour ---
  AccessPatternSpec pattern;

  unsigned warps_per_block() const noexcept { return threads_per_block / 32; }
};

/// A full application: kernels launched sequentially (possibly repeated),
/// exactly the paper's "grids run sequentially" structure.
struct Workload {
  std::string name;
  std::string region;  ///< paper Fig. 8 region tag (documentation/reporting)
  std::vector<KernelSpec> kernels;
  std::uint64_t seed = 42;

  /// Total warp-instructions across all kernels (the work is architecture-
  /// independent; only the speed of executing it changes).
  std::uint64_t total_instructions() const noexcept {
    std::uint64_t sum = 0;
    for (const auto& k : kernels) {
      sum += static_cast<std::uint64_t>(k.grid_blocks) * k.warps_per_block() *
             k.instructions_per_warp;
    }
    return sum;
  }
};

}  // namespace sttgpu::workload
