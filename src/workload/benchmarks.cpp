#include "workload/benchmarks.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace sttgpu::workload {

namespace {

constexpr std::uint64_t KB = 1024;
constexpr std::uint64_t MB = 1024 * 1024;

/// Applies the scale knob: shrink grid and per-warp work, keeping shape.
void apply_scale(Workload& w, double scale) {
  STTGPU_REQUIRE(scale > 0.0 && scale <= 1.0, "benchmark scale must be in (0, 1]");
  if (scale == 1.0) return;
  for (auto& k : w.kernels) {
    k.grid_blocks = std::max(1u, static_cast<unsigned>(std::lround(k.grid_blocks * scale)));
    k.instructions_per_warp =
        std::max(64u, static_cast<unsigned>(std::lround(k.instructions_per_warp * scale)));
  }
}

KernelSpec base_kernel(const std::string& name) {
  KernelSpec k;
  k.name = name;
  k.grid_blocks = 360;
  k.threads_per_block = 256;
  k.instructions_per_warp = 533;
  return k;
}

// ------------------------------------------------------------------
// Region 1 — neither cache- nor register-sensitive (streaming giants).
// ------------------------------------------------------------------

Workload make_sad() {
  // Parboil `sad` (sum of absolute differences, video encoding): streaming
  // image reads with texture locality, few writes, footprint >> any L2.
  Workload w{.name = "sad", .region = "1:insensitive", .kernels = {}};
  KernelSpec k = base_kernel("sad_calc");
  k.grid_blocks = 396;
  k.regs_per_thread = 16;
  k.mem_fraction = 0.32;
  k.store_fraction = 0.08;
  k.texture_fraction = 0.06;
  k.stores_at_end_fraction = 0.5;
  k.pattern.kind = PatternKind::kStreaming;
  k.pattern.footprint_bytes = 24 * MB;
  k.pattern.reuse_fraction = 0.05;
  k.pattern.wws_lines = 0;  // writes are one-shot output blocks: no hot set
  k.pattern.transactions_per_access = 1.2;
  w.kernels.push_back(k);
  return w;
}

Workload make_mum() {
  // MUMmerGPU (suffix-tree matching): pointer chasing over a huge tree,
  // badly coalesced, almost read-only.
  Workload w{.name = "mum", .region = "1:insensitive", .kernels = {}};
  KernelSpec k = base_kernel("mummergpu_kernel");
  k.grid_blocks = 420;
  k.threads_per_block = 192;
  k.regs_per_thread = 20;
  k.mem_fraction = 0.38;
  k.store_fraction = 0.03;
  k.pattern.kind = PatternKind::kRandom;
  k.pattern.footprint_bytes = 32 * MB;
  k.pattern.reuse_fraction = 0.03;
  k.pattern.wws_lines = 0;
  k.pattern.transactions_per_access = 5.0;  // divergent tree walks
  w.kernels.push_back(k);
  return w;
}

Workload make_lbm() {
  // Parboil `lbm` (lattice-Boltzmann): streaming read-modify-write over a
  // lattice far larger than L2 — *single-touch* write traffic. This is the
  // class the paper calls out as paying HR write energy with no LR benefit.
  Workload w{.name = "lbm", .region = "1:insensitive", .kernels = {}};
  KernelSpec k = base_kernel("lbm_timestep");
  k.grid_blocks = 390;
  k.regs_per_thread = 24;
  k.mem_fraction = 0.36;
  k.store_fraction = 0.32;
  k.stores_at_end_fraction = 0.15;  // writes spread through the timestep
  k.pattern.kind = PatternKind::kStreaming;
  k.pattern.footprint_bytes = 24 * MB;
  k.pattern.reuse_fraction = 0.03;
  k.pattern.wws_lines = 0;
  w.kernels.push_back(k);
  return w;
}

// ------------------------------------------------------------------
// Region 2 — register-file limited, cache insensitive.
// All use 6656 registers per block (256thr x 26 or 128thr x 52): the
// baseline 32K-register file fits 4 blocks; the C2/C3 files fit 5.
// ------------------------------------------------------------------

Workload make_tpacf() {
  // Parboil `tpacf` (two-point angular correlation): compute heavy, large
  // per-thread state, histogram updates form a small hot write set.
  Workload w{.name = "tpacf", .region = "2:reg-limited", .kernels = {}};
  KernelSpec k = base_kernel("gen_hists");
  k.grid_blocks = 300;
  k.threads_per_block = 256;
  k.regs_per_thread = 43;
  k.instructions_per_warp = 733;
  k.mem_fraction = 0.26;
  k.store_fraction = 0.14;
  k.const_fraction = 0.04;
  k.stores_at_end_fraction = 0.2;
  k.pattern.kind = PatternKind::kRandom;
  k.pattern.footprint_bytes = 192 * KB;  // fits every L2 (even C2 HR): cache insensitive
  k.pattern.reuse_fraction = 0.3;
  k.pattern.hot_store_fraction = 0.9;
  k.pattern.wws_lines = 128;  // histogram bins
  k.pattern.zipf_s = 1.1;
  w.kernels.push_back(k);
  return w;
}

Workload make_mri_g() {
  // Parboil `mri-gridding`: scattered accumulation of samples onto a 3D
  // grid — a classic hot, skewed write-working-set. Write heavy: the naive
  // high-retention STT-RAM baseline degrades it (paper Section 6).
  Workload w{.name = "mri-g", .region = "2:reg-limited", .kernels = {}};
  KernelSpec k = base_kernel("binning");
  k.grid_blocks = 330;
  k.threads_per_block = 256;
  k.regs_per_thread = 43;
  k.instructions_per_warp = 600;
  k.mem_fraction = 0.3;
  k.store_fraction = 0.36;
  k.stores_at_end_fraction = 0.25;
  k.pattern.kind = PatternKind::kRandom;
  k.pattern.footprint_bytes = 2 * MB;
  k.pattern.reuse_fraction = 0.25;
  k.pattern.hot_store_fraction = 0.8;
  k.pattern.wws_lines = 512;
  k.pattern.zipf_s = 0.8;
  k.pattern.transactions_per_access = 1.5;
  w.kernels.push_back(k);
  return w;
}

Workload make_backprop() {
  // Rodinia `backprop`: a forward pass (read mostly) then a weight-update
  // pass whose writes hammer the shared weight matrix.
  Workload w{.name = "backprop", .region = "2:reg-limited", .kernels = {}};
  KernelSpec fwd = base_kernel("bpnn_layerforward");
  fwd.grid_blocks = 300;
  fwd.threads_per_block = 256;
  fwd.regs_per_thread = 43;
  fwd.instructions_per_warp = 400;
  fwd.mem_fraction = 0.3;
  fwd.store_fraction = 0.06;
  fwd.pattern.kind = PatternKind::kStreaming;
  fwd.pattern.footprint_bytes = 4 * MB;
  fwd.pattern.reuse_fraction = 0.12;
  fwd.pattern.wws_lines = 0;
  w.kernels.push_back(fwd);

  KernelSpec adj = base_kernel("bpnn_adjust_weights");
  adj.grid_blocks = 300;
  adj.threads_per_block = 256;
  adj.regs_per_thread = 43;
  adj.instructions_per_warp = 400;
  adj.mem_fraction = 0.32;
  adj.store_fraction = 0.45;
  adj.stores_at_end_fraction = 0.3;
  adj.pattern.kind = PatternKind::kStreaming;
  adj.pattern.footprint_bytes = 4 * MB;
  adj.pattern.reuse_fraction = 0.12;
  adj.pattern.hot_store_fraction = 0.75;
  adj.pattern.wws_lines = 384;
  adj.pattern.zipf_s = 0.9;
  w.kernels.push_back(adj);
  return w;
}

Workload make_histo() {
  // Parboil `histo`: streaming input, tiny violently-hot histogram output.
  Workload w{.name = "histo", .region = "2:reg-limited", .kernels = {}};
  KernelSpec k = base_kernel("histo_main");
  k.grid_blocks = 330;
  k.threads_per_block = 256;
  k.regs_per_thread = 43;
  k.mem_fraction = 0.34;
  k.store_fraction = 0.40;
  k.stores_at_end_fraction = 0.15;
  k.pattern.kind = PatternKind::kStreaming;
  k.pattern.footprint_bytes = 6 * MB;
  k.pattern.reuse_fraction = 0.05;
  k.pattern.hot_store_fraction = 0.95;
  k.pattern.wws_lines = 96;
  k.pattern.zipf_s = 1.2;
  w.kernels.push_back(k);
  return w;
}

// ------------------------------------------------------------------
// Region 3 — cache friendly AND register-file limited.
// Footprints fit the 4x (1536KB) STT L2 but thrash the 384KB baseline.
// ------------------------------------------------------------------

Workload make_kmeans() {
  // Rodinia `kmeans`: point set re-read every iteration (cache friendly),
  // centroid accumulators form a tiny hot write set.
  Workload w{.name = "kmeans", .region = "3:cache+reg", .kernels = {}};
  for (int iter = 0; iter < 2; ++iter) {
    KernelSpec k = base_kernel(iter == 0 ? "kmeans_assign" : "kmeans_update");
    k.grid_blocks = 312;
    k.threads_per_block = 256;
    k.regs_per_thread = 43;
    k.instructions_per_warp = 433;
    k.mem_fraction = 0.3;
    k.store_fraction = iter == 0 ? 0.10 : 0.34;
    k.stores_at_end_fraction = 0.4;
    k.pattern.kind = PatternKind::kRandom;
    k.pattern.footprint_bytes = 820 * KB;
    k.pattern.reuse_fraction = 0.45;
    k.pattern.hot_store_fraction = 0.85;
    k.pattern.wws_lines = 64;
    k.pattern.zipf_s = 1.0;
    w.kernels.push_back(k);
  }
  return w;
}

Workload make_sradv2() {
  // Rodinia `srad_v2` (speckle-reducing anisotropic diffusion): stencil
  // passes over an image that fits the enlarged L2; moderate writes.
  Workload w{.name = "sradv2", .region = "3:cache+reg", .kernels = {}};
  KernelSpec k = base_kernel("srad_cuda");
  k.grid_blocks = 330;
  k.threads_per_block = 256;
  k.regs_per_thread = 43;
  k.mem_fraction = 0.3;
  k.store_fraction = 0.22;
  k.pattern.kind = PatternKind::kTiled;
  k.pattern.footprint_bytes = 700 * KB;
  k.pattern.tile_bytes = 24 * KB;
  k.pattern.reuse_fraction = 0.4;
  k.pattern.hot_store_fraction = 0.5;
  k.pattern.wws_lines = 256;
  k.pattern.zipf_s = 0.7;
  w.kernels.push_back(k);
  return w;
}

Workload make_streamcluster() {
  // Rodinia `streamcluster`: distance computations against a resident point
  // block — strong reuse, light writes.
  Workload w{.name = "streamcl", .region = "3:cache+reg", .kernels = {}};
  KernelSpec k = base_kernel("pgain_kernel");
  k.grid_blocks = 312;
  k.threads_per_block = 256;
  k.regs_per_thread = 43;
  k.instructions_per_warp = 600;
  k.mem_fraction = 0.26;
  k.store_fraction = 0.12;
  k.pattern.kind = PatternKind::kRandom;
  k.pattern.footprint_bytes = 900 * KB;
  k.pattern.reuse_fraction = 0.5;
  k.pattern.hot_store_fraction = 0.7;
  k.pattern.wws_lines = 128;
  k.pattern.zipf_s = 0.9;
  w.kernels.push_back(k);
  return w;
}

// ------------------------------------------------------------------
// Region 4 — cache friendly (not register limited).
// ------------------------------------------------------------------

Workload make_bfs() {
  // Rodinia `bfs`: frontier expansion — divergent random reads, and the
  // suite's heaviest write share (~63% of L2 accesses) updating the
  // cost/visited arrays, concentrated on the active frontier.
  Workload w{.name = "bfs", .region = "4:cache-friendly", .kernels = {}};
  KernelSpec k = base_kernel("bfs_kernel");
  k.grid_blocks = 384;
  k.regs_per_thread = 18;
  k.mem_fraction = 0.42;
  k.store_fraction = 0.45;
  k.stores_at_end_fraction = 0.2;
  k.pattern.kind = PatternKind::kRandom;
  k.pattern.footprint_bytes = 1 * MB;
  k.pattern.reuse_fraction = 0.35;
  k.pattern.hot_store_fraction = 0.65;
  k.pattern.wws_lines = 512;
  k.pattern.zipf_s = 0.7;
  k.pattern.transactions_per_access = 4.0;
  w.kernels.push_back(k);
  return w;
}

Workload make_cfd() {
  // Rodinia `cfd` (Euler solver): flux computation sweeping the element
  // arrays — writes are spread *evenly* (low COV class in Fig. 3).
  Workload w{.name = "cfd", .region = "4:cache-friendly", .kernels = {}};
  KernelSpec k = base_kernel("cuda_compute_flux");
  k.grid_blocks = 360;
  k.regs_per_thread = 20;
  k.mem_fraction = 0.34;
  k.store_fraction = 0.24;
  k.stores_at_end_fraction = 0.2;
  k.pattern.kind = PatternKind::kStreaming;
  k.pattern.footprint_bytes = 1200 * KB;
  k.pattern.reuse_fraction = 0.35;
  k.pattern.wws_lines = 0;  // even writes over the whole footprint
  w.kernels.push_back(k);
  return w;
}

Workload make_stencil() {
  // Parboil `stencil` (7-point 3D Jacobi): tiled neighbour reuse, writes
  // sweep the output grid evenly (low COV class).
  Workload w{.name = "stencil", .region = "4:cache-friendly", .kernels = {}};
  KernelSpec k = base_kernel("block2D_hybrid");
  k.grid_blocks = 360;
  k.regs_per_thread = 20;
  k.mem_fraction = 0.33;
  k.store_fraction = 0.26;
  k.stores_at_end_fraction = 0.2;
  k.pattern.kind = PatternKind::kTiled;
  k.pattern.footprint_bytes = 1 * MB;
  k.pattern.tile_bytes = 32 * KB;
  k.pattern.reuse_fraction = 0.45;
  k.pattern.wws_lines = 0;
  w.kernels.push_back(k);
  return w;
}

Workload make_pathfinder() {
  // Rodinia `pathfinder` (dynamic programming over rows): row-tile reuse,
  // modest writes to the active row.
  Workload w{.name = "pathfind", .region = "4:cache-friendly", .kernels = {}};
  KernelSpec k = base_kernel("dynproc_kernel");
  k.grid_blocks = 348;
  k.regs_per_thread = 18;
  k.mem_fraction = 0.3;
  k.store_fraction = 0.18;
  k.pattern.kind = PatternKind::kTiled;
  k.pattern.footprint_bytes = 800 * KB;
  k.pattern.tile_bytes = 20 * KB;
  k.pattern.reuse_fraction = 0.4;
  k.pattern.hot_store_fraction = 0.6;
  k.pattern.wws_lines = 64;
  k.pattern.zipf_s = 0.8;
  w.kernels.push_back(k);
  return w;
}

Workload make_hotspot() {
  // Rodinia `hotspot` (thermal simulation): tiled stencil with a hot
  // region of the temperature grid rewritten every sweep.
  Workload w{.name = "hotspot", .region = "4:cache-friendly", .kernels = {}};
  KernelSpec k = base_kernel("calculate_temp");
  k.grid_blocks = 336;
  k.regs_per_thread = 24;
  k.mem_fraction = 0.3;
  k.store_fraction = 0.25;
  k.pattern.kind = PatternKind::kTiled;
  k.pattern.footprint_bytes = 640 * KB;
  k.pattern.tile_bytes = 24 * KB;
  k.pattern.reuse_fraction = 0.5;
  k.pattern.hot_store_fraction = 0.6;
  k.pattern.wws_lines = 128;
  k.pattern.zipf_s = 0.8;
  w.kernels.push_back(k);
  return w;
}

Workload make_nw() {
  // Rodinia `nw` (Needleman-Wunsch): near-zero write share — the suite's
  // "near zero" end of the write-intensity range.
  Workload w{.name = "nw", .region = "4:cache-friendly", .kernels = {}};
  KernelSpec k = base_kernel("needle_cuda");
  k.grid_blocks = 330;
  k.regs_per_thread = 18;
  k.mem_fraction = 0.3;
  k.store_fraction = 0.015;
  k.pattern.kind = PatternKind::kTiled;
  k.pattern.footprint_bytes = 512 * KB;
  k.pattern.tile_bytes = 16 * KB;
  k.pattern.reuse_fraction = 0.45;
  k.pattern.wws_lines = 0;
  w.kernels.push_back(k);
  return w;
}

using Maker = Workload (*)();

struct Entry {
  const char* name;
  Maker make;
};

// Order: region 1, 2, 3, 4 — the order the paper's Fig. 8 groups bars.
constexpr Entry kRegistry[] = {
    {"sad", &make_sad},           {"mum", &make_mum},
    {"lbm", &make_lbm},           {"tpacf", &make_tpacf},
    {"mri-g", &make_mri_g},       {"backprop", &make_backprop},
    {"histo", &make_histo},       {"kmeans", &make_kmeans},
    {"sradv2", &make_sradv2},     {"streamcl", &make_streamcluster},
    {"bfs", &make_bfs},           {"cfd", &make_cfd},
    {"stencil", &make_stencil},   {"pathfind", &make_pathfinder},
    {"hotspot", &make_hotspot},   {"nw", &make_nw},
};

}  // namespace

std::vector<std::string> benchmark_names() {
  std::vector<std::string> names;
  names.reserve(std::size(kRegistry));
  for (const auto& e : kRegistry) names.emplace_back(e.name);
  return names;
}

Workload make_benchmark(const std::string& name, double scale) {
  for (const auto& e : kRegistry) {
    if (name == e.name) {
      Workload w = e.make();
      apply_scale(w, scale);
      return w;
    }
  }
  throw SimError("unknown benchmark: " + name);
}

std::vector<Workload> all_benchmarks(double scale) {
  std::vector<Workload> out;
  out.reserve(std::size(kRegistry));
  for (const auto& e : kRegistry) {
    Workload w = e.make();
    apply_scale(w, scale);
    out.push_back(std::move(w));
  }
  return out;
}

}  // namespace sttgpu::workload
