#include "workload/stream.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace sttgpu::workload {

namespace {
constexpr Addr kRegionBase = 0x1000'0000;  // keep address 0 unused
constexpr std::uint64_t kTransactionBytes = 128;
}  // namespace

WarpStream::WarpStream(const KernelSpec& kernel, std::uint64_t warp_global_index,
                       std::uint64_t num_warps_in_grid, std::uint64_t seed)
    : kernel_(&kernel),
      rng_(seed ^ (0x9E3779B97F4A7C15ull * (warp_global_index + 0x51ull))),
      gen_(kernel.pattern, kRegionBase, warp_global_index, num_warps_in_grid, seed) {
  STTGPU_REQUIRE(kernel.threads_per_block % 32 == 0,
                 "KernelSpec: threads_per_block must be a multiple of 32");
  STTGPU_REQUIRE(kernel.instructions_per_warp > 0, "KernelSpec: empty kernel");

  // Split the overall store probability between main phase and epilogue such
  // that `stores_at_end_fraction` of all stores fall in the epilogue.
  const double epi = std::clamp(kernel.epilogue_fraction, 0.01, 0.9);
  const double at_end = std::clamp(kernel.stores_at_end_fraction, 0.0, 0.95);
  const double base_p = std::clamp(kernel.store_fraction, 0.0, 1.0);
  // expected stores = mem_ops * base_p = mem_main * p_main + mem_epi * p_epi
  // with mem_epi/mem_total = epi; choose p_epi so the epilogue share is at_end.
  epi_store_p_ = std::min(1.0, base_p * at_end / epi);
  main_store_p_ = std::max(0.0, base_p * (1.0 - at_end) / (1.0 - epi));
}

bool WarpStream::in_epilogue() const noexcept {
  const double progress =
      static_cast<double>(issued_) / static_cast<double>(kernel_->instructions_per_warp);
  return progress >= 1.0 - kernel_->epilogue_fraction;
}

void WarpStream::fill_transactions(WarpInstr& instr, Addr base) {
  // Coalescing model: the warp's 32 lanes fall into k consecutive-ish 128B
  // segments; k is 1 + geometric spread around transactions_per_access.
  const double target = std::max(1.0, kernel_->pattern.transactions_per_access);
  unsigned k = 1;
  if (target > 1.0) {
    // Draw k with mean ~= target, capped at 32.
    const double extra = rng_.next_exponential(target - 1.0);
    k = static_cast<unsigned>(std::min(31.0, extra)) + 1;
  }
  instr.transactions.reserve(k);
  for (unsigned i = 0; i < k; ++i) {
    // Diverged lanes scatter; coalesced ones stay consecutive.
    const Addr a = (i == 0 || k <= 4)
                       ? base + i * kTransactionBytes
                       : base + rng_.next_below(64) * kTransactionBytes;
    instr.transactions.push_back(align_down(a, kTransactionBytes));
  }
}

WarpInstr WarpStream::next() {
  STTGPU_ASSERT_MSG(!done(), "WarpStream::next past end of stream");
  ++issued_;

  WarpInstr instr;
  if (!rng_.chance(kernel_->mem_fraction)) {
    instr.kind = WarpInstr::Kind::kCompute;
    instr.latency = kernel_->compute_latency;
    return instr;
  }

  // Memory operation: decide space first.
  const double r = rng_.next_double();
  if (r < kernel_->const_fraction) {
    instr.kind = WarpInstr::Kind::kLoad;
    instr.space = MemSpace::kConstant;
    fill_transactions(instr, gen_.next_const_addr(rng_));
    return instr;
  }
  if (r < kernel_->const_fraction + kernel_->texture_fraction) {
    instr.kind = WarpInstr::Kind::kLoad;
    instr.space = MemSpace::kTexture;
    fill_transactions(instr, gen_.next_texture_addr(rng_));
    return instr;
  }
  if (r < kernel_->const_fraction + kernel_->texture_fraction + kernel_->shared_fraction) {
    // Shared-memory access: resolved inside the SM. The latency carries the
    // bank-conflict serialization (1 + exponential spread around the mean).
    instr.kind = rng_.chance(0.5) ? WarpInstr::Kind::kLoad : WarpInstr::Kind::kStore;
    instr.space = MemSpace::kShared;
    double degree = 1.0;
    if (kernel_->shared_conflict_avg > 1.0) {
      degree += rng_.next_exponential(kernel_->shared_conflict_avg - 1.0);
    }
    instr.latency = static_cast<unsigned>(kernel_->shared_latency * std::min(degree, 32.0));
    return instr;
  }

  const bool is_local = rng_.chance(kernel_->local_fraction);
  instr.space = is_local ? MemSpace::kLocal : MemSpace::kGlobal;

  const double store_p = in_epilogue() ? epi_store_p_ : main_store_p_;
  const bool is_store = rng_.chance(store_p);
  instr.kind = is_store ? WarpInstr::Kind::kStore : WarpInstr::Kind::kLoad;

  Addr base = 0;
  if (is_store && !is_local && gen_.store_goes_hot(rng_)) {
    base = gen_.next_wws_addr(rng_);
  } else if (!is_store && gen_.try_reuse(rng_, &base)) {
    // reused address already in `base`
  } else {
    base = gen_.next_main_addr(rng_, is_store);
  }
  gen_.remember(base);
  fill_transactions(instr, base);
  return instr;
}

}  // namespace sttgpu::workload
