// Per-warp instruction stream generation.
//
// A WarpStream deterministically expands a KernelSpec into the sequence of
// warp instructions one warp executes. Determinism contract: the stream is a
// pure function of (kernel, warp global index, workload seed) — it does not
// depend on simulation timing, so every architecture replays the same trace.
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "workload/kernel.hpp"
#include "workload/pattern.hpp"

namespace sttgpu::workload {

class WarpStream {
 public:
  WarpStream(const KernelSpec& kernel, std::uint64_t warp_global_index,
             std::uint64_t num_warps_in_grid, std::uint64_t seed);

  /// True when the warp has executed all its instructions.
  bool done() const noexcept { return issued_ >= kernel_->instructions_per_warp; }

  /// Generates the next instruction. Precondition: !done().
  WarpInstr next();

  std::uint64_t issued() const noexcept { return issued_; }
  std::uint64_t remaining() const noexcept {
    return kernel_->instructions_per_warp - issued_;
  }

 private:
  bool in_epilogue() const noexcept;
  void fill_transactions(WarpInstr& instr, Addr base);

  const KernelSpec* kernel_;
  Rng rng_;
  AddressGenerator gen_;
  std::uint64_t issued_ = 0;
  /// Store probability in main phase / epilogue, precomputed so that the
  /// requested stores_at_end_fraction of stores land in the epilogue.
  double main_store_p_ = 0.0;
  double epi_store_p_ = 0.0;
};

}  // namespace sttgpu::workload
