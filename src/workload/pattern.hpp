// Address-stream synthesis.
//
// An AccessPatternSpec captures where a kernel's loads and stores land in
// the flat global address space. It is designed so that the statistics the
// paper's characterization (Section 4) depends on are directly controllable:
//
//   * footprint_bytes + reuse behaviour  -> cache sensitivity (Fig. 8 regions)
//   * wws_lines + hot_store_fraction + zipf_s
//                                        -> write-working-set size & skew
//                                           (Fig. 3 COV, Fig. 4/5 utilization)
//   * the hot set being revisited continuously -> short rewrite intervals
//                                           (Fig. 6 distribution)
//   * coalesced_fraction                 -> memory-transaction pressure
//
// Address layout of one kernel's data region:
//
//   [ read/write main footprint ........ | WWS region | constant | texture ]
#pragma once

#include <cstdint>
#include <memory>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace sttgpu::workload {

enum class PatternKind : std::uint8_t {
  kStreaming,  ///< each warp walks a private partition sequentially
  kTiled,      ///< block-shared tiles with neighbour reuse (stencil-like)
  kRandom,     ///< uniform random over the footprint (graph/pointer chasing)
};

struct AccessPatternSpec {
  PatternKind kind = PatternKind::kStreaming;

  /// Main data footprint shared by the whole grid.
  std::uint64_t footprint_bytes = 8ull << 20;

  /// Probability that a load re-reads one of the warp's recent lines
  /// (creates L1/L2 temporal locality beyond the structural pattern).
  double reuse_fraction = 0.2;
  unsigned reuse_window = 8;  ///< how many recent lines a warp remembers

  /// Probability a *store* goes to the hot write-working-set region instead
  /// of following the structural pattern.
  double hot_store_fraction = 0.7;
  /// Size of the WWS region in 256B L2 lines; 0 disables the hot region.
  std::uint64_t wws_lines = 256;
  /// Zipf skew of accesses within the WWS (higher = more concentrated).
  double zipf_s = 0.9;

  /// Average number of 128B transactions per warp memory instruction
  /// (1.0 = perfectly coalesced; 32 = fully diverged).
  double transactions_per_access = 1.0;

  /// Tile size for kTiled, in bytes of contiguous neighbourhood.
  std::uint64_t tile_bytes = 16384;

  /// Constant/texture region sizes (read-only, high locality).
  std::uint64_t const_bytes = 8192;
  std::uint64_t texture_bytes = 512 << 10;
};

/// Stateful per-warp address generator for one kernel execution.
class AddressGenerator {
 public:
  AddressGenerator(const AccessPatternSpec& spec, Addr region_base,
                   std::uint64_t warp_global_index, std::uint64_t num_warps,
                   std::uint64_t seed);

  /// Base address for the next structural (non-hot) access.
  Addr next_main_addr(Rng& rng, bool is_store);

  /// Address within the hot WWS region (Zipf-skewed).
  Addr next_wws_addr(Rng& rng);

  /// Addresses in the constant / texture regions (small, heavily reused).
  Addr next_const_addr(Rng& rng);
  Addr next_texture_addr(Rng& rng);

  /// Chance that this store is a hot-WWS store.
  bool store_goes_hot(Rng& rng);

  /// Record / draw reuse of recent lines.
  bool try_reuse(Rng& rng, Addr* out);
  void remember(Addr line_addr);

  Addr wws_base() const noexcept { return wws_base_; }

 private:
  const AccessPatternSpec* spec_;  // non-owning; outlives the generator
  Addr region_base_;
  Addr wws_base_;
  Addr const_base_;
  Addr texture_base_;
  std::uint64_t warp_index_;
  std::uint64_t num_warps_;
  std::uint64_t cursor_ = 0;     ///< streaming/tiled progress
  std::uint64_t tile_origin_;    ///< tiled: current tile base offset
  std::shared_ptr<const ZipfSampler> zipf_;  // shared per (n, s); see pattern.cpp
  std::vector<Addr> recent_;     ///< reuse ring buffer
  std::size_t recent_next_ = 0;
};

}  // namespace sttgpu::workload
