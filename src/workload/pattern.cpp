#include "workload/pattern.hpp"

#include <algorithm>
#include <bit>
#include <map>
#include <mutex>

#include "common/error.hpp"

namespace sttgpu::workload {

namespace {
constexpr std::uint64_t kLineBytes = 128;  // L1 transaction granularity
constexpr std::uint64_t kL2LineBytes = 256;

// Zipf CDF tables are pure functions of (n, s) and identical for every warp
// of a kernel, but building one costs n pow() calls — per-warp construction
// was a measurable slice of short-run setup. Share one immutable table per
// distinct (n, s); the handful of distinct shapes across all benchmarks is
// retained for the process lifetime.
std::shared_ptr<const ZipfSampler> shared_zipf(std::size_t n, double s) {
  static std::mutex mu;
  static std::map<std::pair<std::size_t, std::uint64_t>,
                  std::shared_ptr<const ZipfSampler>>
      cache;
  const std::scoped_lock lock(mu);
  auto& slot = cache[{n, std::bit_cast<std::uint64_t>(s)}];
  if (slot == nullptr) slot = std::make_shared<const ZipfSampler>(n, s);
  return slot;
}
}  // namespace

AddressGenerator::AddressGenerator(const AccessPatternSpec& spec, Addr region_base,
                                   std::uint64_t warp_global_index, std::uint64_t num_warps,
                                   std::uint64_t seed)
    : spec_(&spec),
      region_base_(region_base),
      warp_index_(warp_global_index),
      num_warps_(std::max<std::uint64_t>(num_warps, 1)),
      zipf_(shared_zipf(std::max<std::uint64_t>(spec.wws_lines, 1), spec.zipf_s)),
      recent_(std::max(1u, spec.reuse_window), 0) {
  STTGPU_REQUIRE(spec.footprint_bytes >= kLineBytes,
                 "AccessPatternSpec: footprint smaller than one transaction");
  wws_base_ = region_base_ + align_up(spec_->footprint_bytes, kL2LineBytes);
  const_base_ = wws_base_ + spec_->wws_lines * kL2LineBytes;
  texture_base_ = const_base_ + align_up(std::max<std::uint64_t>(spec_->const_bytes, 128), 256);
  // Deterministic per-warp phase so warps do not start on the same tile.
  Rng boot(seed ^ (0x5851F42D4C957F2Dull * (warp_global_index + 1)));
  tile_origin_ = spec_->tile_bytes
                     ? align_down(boot.next_below(std::max<std::uint64_t>(
                                      spec_->footprint_bytes, spec_->tile_bytes)),
                                  kLineBytes)
                     : 0;
  cursor_ = 0;
}

Addr AddressGenerator::next_main_addr(Rng& rng, bool is_store) {
  const std::uint64_t footprint = spec_->footprint_bytes;
  switch (spec_->kind) {
    case PatternKind::kStreaming: {
      // Warp-partitioned sequential walk: warp w covers slice w of the array.
      const std::uint64_t slice = std::max<std::uint64_t>(footprint / num_warps_, kLineBytes);
      const std::uint64_t offset =
          (warp_index_ * slice + cursor_ * kLineBytes) % footprint;
      ++cursor_;
      return region_base_ + align_down(offset, kLineBytes);
    }
    case PatternKind::kTiled: {
      // Walk within the current tile; hop tiles occasionally. Stores follow
      // loads spatially (read-modify-write stencils).
      const std::uint64_t tile = std::max<std::uint64_t>(spec_->tile_bytes, kLineBytes);
      if (!is_store && rng.chance(0.02)) {
        tile_origin_ = align_down(rng.next_below(footprint), kLineBytes);
      }
      const std::uint64_t within = rng.next_below(tile);
      const std::uint64_t offset = (tile_origin_ + within) % footprint;
      return region_base_ + align_down(offset, kLineBytes);
    }
    case PatternKind::kRandom:
      return region_base_ + align_down(rng.next_below(footprint), kLineBytes);
  }
  return region_base_;
}

Addr AddressGenerator::next_wws_addr(Rng& rng) {
  if (spec_->wws_lines == 0) return next_main_addr(rng, /*is_store=*/true);
  const std::uint64_t rank = zipf_->sample(rng);
  return wws_base_ + rank * kL2LineBytes;
}

Addr AddressGenerator::next_const_addr(Rng& rng) {
  const std::uint64_t span = std::max<std::uint64_t>(spec_->const_bytes, 128);
  return const_base_ + align_down(rng.next_below(span), kLineBytes);
}

Addr AddressGenerator::next_texture_addr(Rng& rng) {
  const std::uint64_t span = std::max<std::uint64_t>(spec_->texture_bytes, 128);
  // Textures have strong 2D locality; approximate with a tile walk.
  const std::uint64_t tile = std::min<std::uint64_t>(span, 4096);
  const std::uint64_t origin = (cursor_ * 64) % (span - tile + 1);
  return texture_base_ + align_down(origin + rng.next_below(tile), kLineBytes);
}

bool AddressGenerator::store_goes_hot(Rng& rng) {
  return spec_->wws_lines != 0 && rng.chance(spec_->hot_store_fraction);
}

bool AddressGenerator::try_reuse(Rng& rng, Addr* out) {
  if (!rng.chance(spec_->reuse_fraction)) return false;
  const Addr candidate = recent_[rng.next_below(recent_.size())];
  if (candidate == 0) return false;
  *out = candidate;
  return true;
}

void AddressGenerator::remember(Addr line_addr) {
  recent_[recent_next_] = line_addr;
  recent_next_ = (recent_next_ + 1) % recent_.size();
}

}  // namespace sttgpu::workload
