// Named synthetic models of the paper's benchmark suite.
//
// The paper evaluates CUDA benchmarks from the GPGPU-Sim distribution,
// Rodinia and Parboil. We model sixteen of them as parameterized synthetic
// kernels. Each model is tuned to the *published* characteristics the
// paper's figures depend on, per benchmark:
//
//   * its Fig. 8 region —
//       region 1: gains from neither bigger L2 nor bigger register file,
//       region 2: register-file limited,
//       region 3: cache friendly AND register-file limited,
//       region 4: cache friendly;
//   * its write intensity (the suite spans ~0% to ~63% of L2 accesses);
//   * its write-variation class (Fig. 3: hot-spot writers like bfs/kmeans
//     vs. even writers like stencil/cfd);
//   * its write-working-set behaviour (Fig. 6 rewrite intervals).
//
// See each preset's comment in benchmarks.cpp for the mapping rationale.
#pragma once

#include <string>
#include <vector>

#include "workload/kernel.hpp"

namespace sttgpu::workload {

/// Names of all modelled benchmarks, in the order the paper's plots use
/// (grouped by Fig. 8 region).
std::vector<std::string> benchmark_names();

/// Builds a benchmark by name. @p scale in (0, 1] shrinks the work (fewer
/// blocks / instructions) for fast tests; 1.0 is the evaluation size.
/// Throws SimError for unknown names.
Workload make_benchmark(const std::string& name, double scale = 1.0);

/// All benchmarks at the given scale.
std::vector<Workload> all_benchmarks(double scale = 1.0);

}  // namespace sttgpu::workload
