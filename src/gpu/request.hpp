// Memory request/response types flowing between SMs, the interconnect,
// L2 banks and DRAM channels.
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace sttgpu::gpu {

/// One 128-byte memory transaction headed to (or answered by) an L2 bank.
struct L2Request {
  std::uint64_t id = 0;   ///< GPU-global request id (routes the response)
  Addr addr = 0;          ///< transaction address (128B aligned)
  bool is_store = false;
  unsigned sm_id = 0;
  Cycle created = 0;
};

struct L2Response {
  std::uint64_t id = 0;
  Addr addr = 0;
  bool is_store = false;
  unsigned sm_id = 0;
  Cycle ready = 0;        ///< cycle the bank finished the access
};

/// Aggregate statistics every L2 bank implementation reports.
struct L2BankStats {
  std::uint64_t read_hits = 0;
  std::uint64_t read_misses = 0;
  std::uint64_t write_hits = 0;
  std::uint64_t write_misses = 0;
  std::uint64_t dram_reads = 0;
  std::uint64_t dram_writebacks = 0;

  std::uint64_t accesses() const noexcept {
    return read_hits + read_misses + write_hits + write_misses;
  }
  std::uint64_t writes() const noexcept { return write_hits + write_misses; }
  double miss_rate() const noexcept {
    const auto a = accesses();
    return a ? static_cast<double>(read_misses + write_misses) / static_cast<double>(a) : 0.0;
  }
  double write_share() const noexcept {
    const auto a = accesses();
    return a ? static_cast<double>(writes()) / static_cast<double>(a) : 0.0;
  }

  void merge(const L2BankStats& o) noexcept {
    read_hits += o.read_hits;
    read_misses += o.read_misses;
    write_hits += o.write_hits;
    write_misses += o.write_misses;
    dram_reads += o.dram_reads;
    dram_writebacks += o.dram_writebacks;
  }
};

}  // namespace sttgpu::gpu
