#include "gpu/occupancy.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace sttgpu::gpu {

Occupancy compute_occupancy(const workload::KernelSpec& kernel, const GpuConfig& config) {
  STTGPU_REQUIRE(kernel.threads_per_block > 0 &&
                     kernel.threads_per_block % config.warp_size == 0,
                 "occupancy: threads_per_block must be a positive multiple of the warp size");

  const unsigned by_threads = config.max_threads_per_sm / kernel.threads_per_block;
  const unsigned by_blocks = config.max_blocks_per_sm;

  const std::uint64_t regs_per_block =
      static_cast<std::uint64_t>(kernel.regs_per_thread) * kernel.threads_per_block;
  const unsigned by_regs =
      regs_per_block == 0
          ? config.max_blocks_per_sm
          : static_cast<unsigned>(config.registers_per_sm / regs_per_block);

  const unsigned by_shared =
      kernel.shared_bytes_per_block == 0
          ? config.max_blocks_per_sm
          : config.shared_mem_per_sm / kernel.shared_bytes_per_block;

  Occupancy occ;
  occ.blocks_per_sm = std::min({by_threads, by_blocks, by_regs, by_shared});
  STTGPU_REQUIRE(occ.blocks_per_sm >= 1,
                 "occupancy: kernel '" + kernel.name + "' does not fit on an SM");

  if (occ.blocks_per_sm == by_regs) occ.limiter = "registers";
  else if (occ.blocks_per_sm == by_threads) occ.limiter = "threads";
  else if (occ.blocks_per_sm == by_blocks) occ.limiter = "blocks";
  else occ.limiter = "shared";

  // Cap resident warps at the scheduler's limit.
  const unsigned warps_per_block = kernel.warps_per_block();
  while (occ.blocks_per_sm * warps_per_block > config.max_warps_per_sm &&
         occ.blocks_per_sm > 1) {
    --occ.blocks_per_sm;
    occ.limiter = "warp-slots";
  }
  occ.warps_per_sm = occ.blocks_per_sm * warps_per_block;
  return occ;
}

}  // namespace sttgpu::gpu
