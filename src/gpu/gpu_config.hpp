// Top-level GPU configuration (GTX480-class defaults, matching Table 2's
// "baseline GPU model": 15 SM clusters, 16KB 4-way L1D with 128B lines,
// 8KB constant / 12KB texture caches, 48KB shared memory, 6 memory
// controllers, butterfly interconnect, 40nm, 32K 32-bit registers per SM).
#pragma once

#include <atomic>
#include <cstdint>

#include "common/units.hpp"

namespace sttgpu {
class CancelToken;
class Telemetry;
}

namespace sttgpu::gpu {

/// Warp scheduler policy.
enum class SchedulerKind : unsigned char {
  kGto,  ///< greedy-then-oldest: stick to the last warp, else oldest ready
  kLrr,  ///< loose round-robin: rotate through ready warps
};

struct GpuConfig {
  // --- compute resources ---
  unsigned num_sms = 15;
  unsigned warp_size = 32;
  unsigned max_warps_per_sm = 48;
  unsigned max_blocks_per_sm = 8;
  unsigned max_threads_per_sm = 1536;
  unsigned registers_per_sm = 32768;        ///< 32-bit registers
  unsigned shared_mem_per_sm = 48 * 1024;   ///< bytes
  double core_clock_hz = kDefaultCoreClockHz;
  SchedulerKind scheduler = SchedulerKind::kGto;

  // --- L1 complex (per SM) ---
  unsigned l1d_size = 16 * 1024;
  unsigned l1d_assoc = 4;
  unsigned l1d_line = 128;
  unsigned l1c_size = 8 * 1024;   ///< constant cache, 128B lines
  unsigned l1c_assoc = 2;
  unsigned l1t_size = 12 * 1024;  ///< texture cache, 64B lines
  unsigned l1t_assoc = 4;
  unsigned l1t_line = 64;
  unsigned l1_hit_latency = 24;   ///< cycles, Fermi-class pipelined hit
  unsigned l1_mshr_entries = 32;
  unsigned l1_mshr_merge = 8;

  // --- interconnect (SM <-> L2 banks, butterfly modelled as latency+BW) ---
  unsigned icnt_latency = 8;       ///< cycles one way
  unsigned icnt_service_gap = 1;   ///< cycles between transactions per port

  // --- L2 / memory partition ---
  unsigned num_l2_banks = 6;       ///< one per memory controller
  unsigned l2_line_bytes = 256;
  unsigned l2_input_queue = 32;    ///< per-bank request queue entries

  // --- DRAM (per controller) ---
  unsigned dram_latency = 220;      ///< cycles, closed-page / row-miss access
  unsigned dram_service_gap = 6;    ///< cycles per 256B transfer (~30 GB/s/MC)
  /// Open-page mode: accesses hitting the last-activated row of the channel
  /// complete in dram_row_hit_latency instead of dram_latency.
  bool dram_open_page = false;
  unsigned dram_row_bytes = 2048;
  unsigned dram_row_hit_latency = 140;

  // --- SM-side memory credits (bound in-flight traffic) ---
  unsigned max_outstanding_load_txn = 64;   ///< per SM
  unsigned max_outstanding_store_txn = 64;  ///< per SM

  /// Event-driven fast-forward: when every component is quiescent, the GPU
  /// jumps directly to the earliest scheduled event instead of ticking
  /// cycle-by-cycle. A pure scheduling optimization — all reported metrics
  /// are identical either way (the equivalence is tested); disable to A/B
  /// against the plain loop.
  bool fast_forward = true;

  /// Hot-path stepping level. 0: plain per-cycle loop over every component.
  /// 1: per-component event lanes (one per SM, one per L2 bank partition)
  /// gate the per-cycle component ticks, so a busy cycle only touches
  /// components with something actually due. 2 (default): a hierarchical
  /// event wheel replaces the per-cycle lane min-scan — each cycle pops the
  /// exact due set, skipped SMs get their idle/stall accounting in deferred
  /// batches, and fast-forward reads the wheel's next deadline in O(1).
  /// Like fast_forward this is a pure scheduling optimization — every
  /// skipped call is provably a no-op and all reported metrics are
  /// byte-identical across levels (tested); lower to A/B against the
  /// simpler loops. Levels above 2 behave as 2.
  unsigned hotpath = 2;

  /// Worker threads for the per-cycle L2 bank tick batch (hotpath mode
  /// only; 1 = sequential). Banks own disjoint state (private DRAM channel,
  /// private queues), so any thread count produces bit-identical results;
  /// >1 trades per-cycle wake overhead for parallelism on wide configs.
  unsigned tick_jobs = 1;

  /// Optional interval-telemetry sink (not owned; must outlive the Gpu).
  /// Purely observational: attaching one never changes simulated results,
  /// so it is not part of the result-cache config fingerprint. Use a fresh
  /// Telemetry per run.
  Telemetry* telemetry = nullptr;

  /// Optional cooperative-cancellation token (not owned; must outlive the
  /// run). Checked at supervision points — every few thousand cycles in the
  /// run loops, so fast-forwarded gaps observe it too. When requested, the
  /// run unwinds with Cancelled (a watchdog/timeout reason additionally
  /// carries a diagnostic state dump). Never changes simulated results.
  const CancelToken* cancel = nullptr;

  /// Optional cycle-count heartbeat (not owned): the Gpu publishes now_ at
  /// every supervision point so a watchdog can tell a long simulation from
  /// a livelocked one. Never changes simulated results.
  std::atomic<std::uint64_t>* heartbeat = nullptr;

  Clock clock() const noexcept { return Clock{core_clock_hz}; }
};

}  // namespace sttgpu::gpu
