#include "gpu/pipe.hpp"

#include "common/error.hpp"

namespace sttgpu::gpu {

ThroughputPipe::ThroughputPipe(Cycle latency, Cycle service_gap)
    : latency_(latency), gap_(service_gap) {
  STTGPU_REQUIRE(service_gap > 0, "ThroughputPipe: service gap must be positive");
}

}  // namespace sttgpu::gpu
