#include "gpu/pipe.hpp"

#include "common/error.hpp"

namespace sttgpu::gpu {

ThroughputPipe::ThroughputPipe(Cycle latency, Cycle service_gap)
    : latency_(latency), gap_(service_gap) {
  STTGPU_REQUIRE(service_gap > 0, "ThroughputPipe: service gap must be positive");
}

Cycle ThroughputPipe::admit(Cycle now) noexcept {
  const Cycle start = next_free_ > now ? next_free_ : now;
  next_free_ = start + gap_;
  ++admitted_;
  return start + latency_;
}

Cycle ThroughputPipe::peek_departure(Cycle now) const noexcept {
  const Cycle start = next_free_ > now ? next_free_ : now;
  return start + latency_;
}

Cycle ThroughputPipe::backlog(Cycle now) const noexcept {
  return next_free_ > now ? next_free_ - now : 0;
}

}  // namespace sttgpu::gpu
