// Streaming Multiprocessor model.
//
// The SM abstracts the SIMT ALU pipelines to an issue/latency model (one
// warp instruction issued per cycle, compute results ready after a fixed
// latency) and models the memory side in detail: coalesced transactions,
// the L1 complex, MSHR merging, and credit-bounded traffic to the L2. This
// is the level at which warp-parallelism hides memory latency — the effect
// the paper's C2/C3 register-file configurations exploit.
//
// Thread blocks are assigned to the SM as a queue; `resident` slots run
// concurrently (the occupancy limit) and a finished block slot immediately
// launches the next queued block.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <queue>
#include <vector>

#include "common/flat_map.hpp"
#include "common/small_vec.hpp"
#include "common/types.hpp"
#include "gpu/gpu_config.hpp"
#include "gpu/l1_complex.hpp"
#include "gpu/request.hpp"
#include "workload/stream.hpp"

namespace sttgpu {
class Telemetry;
}

namespace sttgpu::gpu {

/// Emits one 128B transaction toward the L2; returns the global request id.
using SendTxnFn = std::function<std::uint64_t(Addr addr, bool is_store)>;

struct SmStats {
  std::uint64_t issued_instructions = 0;
  std::uint64_t issued_loads = 0;
  std::uint64_t issued_stores = 0;
  std::uint64_t load_transactions = 0;
  std::uint64_t store_transactions = 0;
  std::uint64_t idle_cycles = 0;        ///< no warp ready
  std::uint64_t stall_cycles = 0;       ///< warps ready but none issuable
  std::uint64_t mshr_merges = 0;
  std::uint64_t shared_accesses = 0;
};

class Sm {
 public:
  Sm(unsigned id, const GpuConfig& config, std::uint64_t seed);

  /// Begins executing @p kernel with the given block queue and residency.
  /// The spec is copied: the caller's object need not outlive the kernel
  /// (warp streams launched later reference the SM's own copy).
  void start_kernel(const workload::KernelSpec& kernel, std::deque<unsigned> block_queue,
                    unsigned resident_blocks, std::uint64_t warps_in_grid,
                    std::uint64_t workload_seed);

  /// All blocks finished and no instruction remains (memory may still be
  /// in flight; the GPU tracks that separately).
  bool kernel_done() const noexcept { return active_warps_ == 0 && block_queue_.empty(); }

  /// One scheduler cycle: try to issue one warp instruction.
  void cycle(Cycle now, const SendTxnFn& send);

  /// Memory response delivered by the interconnect.
  void on_response(const L2Response& response, Cycle now, const SendTxnFn& send);

  /// Batch form: all of this SM's responses for one cycle in arrival order,
  /// with the stalled-walk recheck run once at the end instead of per
  /// response. Equivalent to calling on_response() per element: credit and
  /// MSHR levels only improve across a batch and the recheck predicate is
  /// monotone in them, so "unstuck after some response" and "unstuck after
  /// the whole batch" coincide.
  void on_responses(const L2Response* responses, std::size_t n, Cycle now,
                    const SendTxnFn& send);

  /// End-of-kernel L1 flush; dirty local lines go to L2 as writes.
  void flush_l1(Cycle now, const SendTxnFn& send);

  /// In-flight transactions this SM is still waiting on (loads + stores).
  unsigned inflight() const noexcept { return inflight_loads_ + inflight_stores_; }

  /// Earliest absolute cycle at which this SM can make progress on its own:
  /// 0 (i.e. "every cycle") while a warp is ready AND the last stall walk's
  /// outcome may have changed, the earliest sleeper's wake-up otherwise,
  /// kNoCycle when nothing is scheduled (blocked warps are woken by
  /// responses, which the memory side reports). A stalled SM whose walk
  /// already completed with no state change (stall_clean_) is skippable:
  /// re-walking is a pure check that fails identically until a wake or a
  /// memory response dirties it, and responses show up as interconnect
  /// arrivals in the caller's event lane. Stale sleep-heap entries only make
  /// this conservative (an early no-op tick), exactly as the per-cycle loop
  /// would pop them.
  Cycle next_event_cycle() const noexcept {
    if (ready_count_ > 0 && !stall_clean_) return 0;
    if (!sleep_heap_.empty()) return sleep_heap_.top().first;
    return kNoCycle;
  }

  /// Accounts @p skipped fast-forwarded cycles exactly as the per-cycle loop
  /// would have. Ready warps during a skip imply a clean stall (that is the
  /// only way next_event_cycle() lets a skip happen), where cycle() would
  /// count a stall cycle; otherwise no warp is ready and — with live warps —
  /// cycle() would count an idle cycle.
  void account_skipped_cycles(Cycle skipped) noexcept {
    if (ready_count_ > 0) {
      stats_.stall_cycles += skipped;
    } else if (active_warps_ > 0) {
      stats_.idle_cycles += skipped;
    }
  }

  /// Contributes this SM's counter tracks ("smN.instructions", ...) to the
  /// open telemetry frame; per-interval IPC falls out as the increment of
  /// instructions over the interval length.
  void sample_telemetry(Telemetry& out) const;

  const SmStats& stats() const noexcept { return stats_; }
  const L1Complex& l1() const noexcept { return l1_; }
  unsigned id() const noexcept { return id_; }

 private:
  enum class WarpState : std::uint8_t { kInactive, kReady, kSleeping, kBlocked };

  struct WarpCtx {
    std::optional<workload::WarpStream> stream;
    std::optional<workload::WarpInstr> pending;
    WarpState state = WarpState::kInactive;
    Cycle ready_at = 0;
    unsigned awaiting = 0;   ///< load transactions outstanding
    unsigned block_slot = 0;
  };

  /// Bookkeeping for one in-flight L2 transaction.
  struct TxnMeta {
    Addr line_addr = 0;            ///< L1-line address (fill key), loads only
    workload::MemSpace space = workload::MemSpace::kGlobal;
    bool is_store = false;
    bool is_writeback = false;     ///< L1 dirty eviction (uses no credit)
  };

  void launch_block(unsigned slot, Cycle now);
  void process_response(const L2Response& response, Cycle now, const SendTxnFn& send);
  /// Clears stall_clean_ if the cheapest stalled candidate of either kind
  /// now passes its prechecks with the live credit/MSHR levels.
  void recheck_stall() noexcept;
  void wake_due(Cycle now);
  bool issue_precheck_fails(const WarpCtx& ctx) const noexcept;
  bool try_issue(unsigned warp, Cycle now, const SendTxnFn& send);
  void sleep_warp(unsigned warp, Cycle until);
  void finish_warp(unsigned warp, Cycle now);
  void send_writeback(Addr addr, Cycle now, const SendTxnFn& send);

  // The ready set is a packed bitmap (one bit per warp slot), kept exactly
  // in sync with WarpState::kReady. Iterating set bits ascending reproduces
  // the old sorted-vector candidate order without the per-cycle sort.
  bool is_ready(unsigned warp) const noexcept {
    return ((ready_bits_[warp >> 6] >> (warp & 63u)) & 1u) != 0;
  }
  void set_ready(unsigned warp) noexcept {
    std::uint64_t& word = ready_bits_[warp >> 6];
    const std::uint64_t bit = std::uint64_t{1} << (warp & 63u);
    if ((word & bit) == 0) {
      word |= bit;
      ++ready_count_;
    }
    // A new candidate can change a stalled walk's outcome.
    stall_clean_ = false;
  }
  void clear_ready(unsigned warp) noexcept {
    std::uint64_t& word = ready_bits_[warp >> 6];
    const std::uint64_t bit = std::uint64_t{1} << (warp & 63u);
    if ((word & bit) != 0) {
      word &= ~bit;
      --ready_count_;
    }
  }
  /// Appends the ready warps with index in [lo, hi) to issue_order_.
  void append_ready_range(unsigned lo, unsigned hi);

  unsigned id_;
  const GpuConfig* config_;
  std::uint64_t seed_;
  L1Complex l1_;

  // Kernel state
  workload::KernelSpec kernel_;  ///< owned copy; WarpStreams point into it
  std::deque<unsigned> block_queue_;
  std::uint64_t warps_in_grid_ = 0;
  std::uint64_t workload_seed_ = 0;
  unsigned warps_per_block_ = 0;
  std::vector<WarpCtx> warps_;
  std::vector<unsigned> block_live_warps_;  ///< per resident slot
  unsigned active_warps_ = 0;

  // Scheduling structures
  using SleepEntry = std::pair<Cycle, unsigned>;  // (ready_at, warp)
  std::priority_queue<SleepEntry, std::vector<SleepEntry>, std::greater<>> sleep_heap_;
  std::vector<std::uint64_t> ready_bits_;  ///< packed kReady set, one bit per warp
  unsigned ready_count_ = 0;               ///< population count of ready_bits_
  std::vector<unsigned> issue_order_;      ///< per-cycle candidate scratch
  int last_issued_ = -1;  // GTO greedy preference
  /// The last cycle() walk stalled (ready warps, none issuable) and nothing
  /// has changed since: a failed walk is a pure check — every candidate has
  /// its pending instruction materialized and fails a credit/MSHR precheck
  /// before touching any state — so until set_ready() or a response that can
  /// actually satisfy a candidate clears this, repeating the walk is a
  /// provable no-op.
  bool stall_clean_ = false;
  /// Smallest transaction count over the stalled load (resp. store)
  /// candidates of the last failed walk; kNoNeed when none of that kind.
  /// Valid only while stall_clean_ — any walk or candidate-set change
  /// recomputes them. The precheck pass condition is monotone in a
  /// candidate's transaction count, so if the min-need candidate still fails
  /// with the live credit/MSHR levels, every candidate does, and a response
  /// that cannot satisfy the min need provably leaves the stall stuck.
  static constexpr unsigned kNoNeed = ~0u;
  unsigned stall_load_need_ = kNoNeed;
  unsigned stall_store_need_ = kNoNeed;

  // Memory-side state
  SmallVec<Addr, 2> writeback_scratch_;     ///< per-fill eviction scratch
  FlatU64Map<SmallVec<unsigned, 8>> mshr_;  ///< line -> waiting warps
  FlatU64Map<TxnMeta> inflight_meta_;       ///< req id -> meta
  unsigned inflight_loads_ = 0;   ///< primary load transactions in flight
  unsigned inflight_stores_ = 0;  ///< store transactions in flight

  SmStats stats_;
};

}  // namespace sttgpu::gpu
