// Streaming Multiprocessor model.
//
// The SM abstracts the SIMT ALU pipelines to an issue/latency model (one
// warp instruction issued per cycle, compute results ready after a fixed
// latency) and models the memory side in detail: coalesced transactions,
// the L1 complex, MSHR merging, and credit-bounded traffic to the L2. This
// is the level at which warp-parallelism hides memory latency — the effect
// the paper's C2/C3 register-file configurations exploit.
//
// Thread blocks are assigned to the SM as a queue; `resident` slots run
// concurrently (the occupancy limit) and a finished block slot immediately
// launches the next queued block.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "gpu/gpu_config.hpp"
#include "gpu/l1_complex.hpp"
#include "gpu/request.hpp"
#include "workload/stream.hpp"

namespace sttgpu {
class Telemetry;
}

namespace sttgpu::gpu {

/// Emits one 128B transaction toward the L2; returns the global request id.
using SendTxnFn = std::function<std::uint64_t(Addr addr, bool is_store)>;

struct SmStats {
  std::uint64_t issued_instructions = 0;
  std::uint64_t issued_loads = 0;
  std::uint64_t issued_stores = 0;
  std::uint64_t load_transactions = 0;
  std::uint64_t store_transactions = 0;
  std::uint64_t idle_cycles = 0;        ///< no warp ready
  std::uint64_t stall_cycles = 0;       ///< warps ready but none issuable
  std::uint64_t mshr_merges = 0;
  std::uint64_t shared_accesses = 0;
};

class Sm {
 public:
  Sm(unsigned id, const GpuConfig& config, std::uint64_t seed);

  /// Begins executing @p kernel with the given block queue and residency.
  /// The spec is copied: the caller's object need not outlive the kernel
  /// (warp streams launched later reference the SM's own copy).
  void start_kernel(const workload::KernelSpec& kernel, std::deque<unsigned> block_queue,
                    unsigned resident_blocks, std::uint64_t warps_in_grid,
                    std::uint64_t workload_seed);

  /// All blocks finished and no instruction remains (memory may still be
  /// in flight; the GPU tracks that separately).
  bool kernel_done() const noexcept { return active_warps_ == 0 && block_queue_.empty(); }

  /// One scheduler cycle: try to issue one warp instruction.
  void cycle(Cycle now, const SendTxnFn& send);

  /// Memory response delivered by the interconnect.
  void on_response(const L2Response& response, Cycle now, const SendTxnFn& send);

  /// End-of-kernel L1 flush; dirty local lines go to L2 as writes.
  void flush_l1(Cycle now, const SendTxnFn& send);

  /// In-flight transactions this SM is still waiting on (loads + stores).
  unsigned inflight() const noexcept { return inflight_loads_ + inflight_stores_; }

  /// Earliest absolute cycle at which this SM can make progress on its own:
  /// 0 (i.e. "every cycle") while any warp is ready to issue, the earliest
  /// sleeper's wake-up otherwise, kNoCycle when nothing is scheduled
  /// (blocked warps are woken by responses, which the memory side reports).
  /// Stale sleep-heap entries only make this conservative (an early no-op
  /// tick), exactly as the per-cycle loop would pop them.
  Cycle next_event_cycle() const noexcept {
    if (!ready_.empty()) return 0;
    if (!sleep_heap_.empty()) return sleep_heap_.top().first;
    return kNoCycle;
  }

  /// Accounts @p skipped fast-forwarded cycles exactly as the per-cycle loop
  /// would have: each skipped cycle, cycle() would find no ready warp and —
  /// with live warps — count an idle cycle. (No ready warp is a precondition
  /// for skipping: next_event_cycle() returns 0 otherwise.)
  void account_skipped_cycles(Cycle skipped) noexcept {
    if (active_warps_ > 0) stats_.idle_cycles += skipped;
  }

  /// Contributes this SM's counter tracks ("smN.instructions", ...) to the
  /// open telemetry frame; per-interval IPC falls out as the increment of
  /// instructions over the interval length.
  void sample_telemetry(Telemetry& out) const;

  const SmStats& stats() const noexcept { return stats_; }
  const L1Complex& l1() const noexcept { return l1_; }
  unsigned id() const noexcept { return id_; }

 private:
  enum class WarpState : std::uint8_t { kInactive, kReady, kSleeping, kBlocked };

  struct WarpCtx {
    std::optional<workload::WarpStream> stream;
    std::optional<workload::WarpInstr> pending;
    WarpState state = WarpState::kInactive;
    Cycle ready_at = 0;
    unsigned awaiting = 0;   ///< load transactions outstanding
    unsigned block_slot = 0;
  };

  /// Bookkeeping for one in-flight L2 transaction.
  struct TxnMeta {
    Addr line_addr = 0;            ///< L1-line address (fill key), loads only
    workload::MemSpace space = workload::MemSpace::kGlobal;
    bool is_store = false;
    bool is_writeback = false;     ///< L1 dirty eviction (uses no credit)
  };

  void launch_block(unsigned slot, Cycle now);
  void wake_due(Cycle now);
  bool try_issue(unsigned warp, Cycle now, const SendTxnFn& send);
  void sleep_warp(unsigned warp, Cycle until);
  void finish_warp(unsigned warp, Cycle now);
  void send_writeback(Addr addr, Cycle now, const SendTxnFn& send);

  unsigned id_;
  const GpuConfig* config_;
  std::uint64_t seed_;
  L1Complex l1_;

  // Kernel state
  workload::KernelSpec kernel_;  ///< owned copy; WarpStreams point into it
  std::deque<unsigned> block_queue_;
  std::uint64_t warps_in_grid_ = 0;
  std::uint64_t workload_seed_ = 0;
  unsigned warps_per_block_ = 0;
  std::vector<WarpCtx> warps_;
  std::vector<unsigned> block_live_warps_;  ///< per resident slot
  unsigned active_warps_ = 0;

  // Scheduling structures
  using SleepEntry = std::pair<Cycle, unsigned>;  // (ready_at, warp)
  std::priority_queue<SleepEntry, std::vector<SleepEntry>, std::greater<>> sleep_heap_;
  std::vector<unsigned> ready_;
  int last_issued_ = -1;  // GTO greedy preference

  // Memory-side state
  std::unordered_map<Addr, std::vector<unsigned>> mshr_;  ///< line -> waiting warps
  std::unordered_map<std::uint64_t, TxnMeta> inflight_meta_;  ///< req id -> meta
  unsigned inflight_loads_ = 0;   ///< primary load transactions in flight
  unsigned inflight_stores_ = 0;  ///< store transactions in flight

  SmStats stats_;
};

}  // namespace sttgpu::gpu
