#include "gpu/dram.hpp"

#include <string>

#include "common/error.hpp"
#include "common/telemetry.hpp"

namespace sttgpu::gpu {

DramChannel::DramChannel(const GpuConfig& config, ReadCallback on_read_done)
    : pipe_(0, config.dram_service_gap),
      on_read_done_(std::move(on_read_done)),
      open_page_(config.dram_open_page),
      row_bytes_(config.dram_row_bytes),
      miss_latency_(config.dram_latency),
      hit_latency_(config.dram_row_hit_latency) {
  STTGPU_REQUIRE(static_cast<bool>(on_read_done_), "DramChannel: callback required");
  STTGPU_REQUIRE(!open_page_ || is_pow2(row_bytes_),
                 "DramChannel: row size must be a power of two");
}

Cycle DramChannel::access_latency(Addr addr) noexcept {
  if (!open_page_) return miss_latency_;
  const Addr row = addr / row_bytes_;
  const bool hit = have_open_row_ && row == open_row_;
  have_open_row_ = true;
  open_row_ = row;
  if (hit) {
    ++row_hits_;
    return hit_latency_;
  }
  ++row_misses_;
  return miss_latency_;
}

void DramChannel::read(Addr addr, std::uint64_t cookie, Cycle now) {
  // The pipe models bank/bus occupancy (zero latency); the page policy
  // decides the access latency added on top.
  express_reads_ += pipe_.backlog(now) == 0 ? 1 : 0;
  const Cycle ready = pipe_.admit(now) + access_latency(addr);
  pending_.push_back({ready, cookie});
  if (ready < min_ready_) min_ready_ = ready;
  ++reads_;
}

void DramChannel::write(Addr addr, Cycle now) {
  // Writebacks consume channel bandwidth but need no completion signal.
  (void)pipe_.admit(now);
  (void)access_latency(addr);  // they still move the open row
  ++writes_;
}

void DramChannel::deliver_due(Cycle now) {
  // Open-page hits can complete before earlier row misses; scan the small
  // pending window rather than assuming FIFO completion order. The scan and
  // swap-remove order are unchanged from the unconditional version, so the
  // delivery order (and everything downstream of it) is identical.
  for (std::size_t i = 0; i < pending_.size();) {
    if (pending_[i].ready <= now) {
      const Pending p = pending_[i];
      pending_[i] = pending_.back();
      pending_.pop_back();
      on_read_done_(p.cookie, now);
    } else {
      ++i;
    }
  }
  min_ready_ = kNoCycle;
  for (const Pending& p : pending_) min_ready_ = p.ready < min_ready_ ? p.ready : min_ready_;
}

void DramChannel::sample_telemetry(unsigned channel, Telemetry& out) const {
  const std::string p = "dram" + std::to_string(channel) + '.';
  out.counter(p + "reads", reads_);
  out.counter(p + "writes", writes_);
  out.counter(p + "express_reads", express_reads_);
  if (open_page_) {
    out.counter(p + "row_hits", row_hits_);
    out.counter(p + "row_misses", row_misses_);
  }
}

}  // namespace sttgpu::gpu
