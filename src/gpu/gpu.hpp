// Top-level GPU: SM cluster + interconnect + pluggable L2 banks + DRAM
// channels, executing a Workload's kernels sequentially and reporting the
// performance/energy metrics the paper's evaluation uses.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"
#include "gpu/dram.hpp"
#include "gpu/gpu_config.hpp"
#include "gpu/interconnect.hpp"
#include "gpu/l2_bank.hpp"
#include "gpu/sm.hpp"
#include "gpu/tick_pool.hpp"
#include "sim/event_wheel.hpp"
#include "workload/benchmarks.hpp"

namespace sttgpu::gpu {

/// Scheduler/transport diagnostics of a run. Purely observational: the
/// express/queued splits are contention properties of the simulated machine
/// (identical at every hotpath level); the wheel fields describe the
/// hotpath=2 scheduler itself and are zero at lower levels.
struct SchedulerDiag {
  std::uint64_t icnt_request_express = 0;  ///< admits with zero port backlog
  std::uint64_t icnt_request_queued = 0;   ///< admits behind earlier traffic
  std::uint64_t icnt_response_express = 0;
  std::uint64_t icnt_response_queued = 0;
  std::uint64_t dram_express_reads = 0;
  std::uint64_t dram_queued_reads = 0;
  unsigned wheel_bucket_high_water = 0;     ///< peak occupied near buckets
  std::uint64_t wheel_far_high_water = 0;   ///< peak far-heap size
};

/// Everything a run produces.
struct RunResult {
  Cycle cycles = 0;
  std::uint64_t instructions = 0;
  double ipc = 0.0;
  double runtime_s = 0.0;

  L2BankStats l2;              ///< merged across banks
  Watt l2_leakage_w = 0.0;     ///< summed across banks
  CounterSet l2_counters;      ///< implementation-specific bank counters
  power::EnergyLedger l2_energy;  ///< merged dynamic-energy ledger

  std::uint64_t dram_reads = 0;
  std::uint64_t dram_writes = 0;

  std::uint64_t l1d_hits = 0;
  std::uint64_t l1d_misses = 0;

  SmStats sm;                  ///< merged across SMs
  SchedulerDiag sched;         ///< transport/scheduler observability
};

/// Factory that builds one L2 bank. @p dram is the bank's private channel;
/// implementations must deliver their DRAM read completions through it and
/// accept them via L2Bank-internal callbacks (see sttl2::BankDramPort).
class L2BankFactory {
 public:
  virtual ~L2BankFactory() = default;
  virtual std::unique_ptr<L2Bank> make_bank(unsigned bank_id, DramChannel& dram) = 0;
  /// Extra counters the implementation wants surfaced in RunResult.
  virtual void collect(const L2Bank& bank, CounterSet& out) const {
    (void)bank;
    (void)out;
  }
};

class Gpu {
 public:
  Gpu(const GpuConfig& config, L2BankFactory& l2_factory);

  /// Runs all kernels of @p workload to completion; cumulative across calls
  /// is not supported — construct a fresh Gpu per run.
  RunResult run(const workload::Workload& workload);

  /// Direct access for tests / benches needing implementation details.
  L2Bank& bank(unsigned i) { return *banks_[i]; }
  unsigned num_banks() const noexcept { return static_cast<unsigned>(banks_.size()); }
  const GpuConfig& config() const noexcept { return config_; }

 private:
  void run_kernel(const workload::KernelSpec& kernel, std::uint64_t seed);
  void drain_memory();
  bool memory_idle() const;
  void step();  ///< advance one cycle (dispatches to step_hot under hotpath)

  /// Hot-path cycle: identical phase order to the plain step(), but each
  /// component only runs when its event lane says something is due —
  /// skipped calls are provably no-ops (the same conservative-next-event
  /// contract fast_forward relies on, applied per component per cycle).
  /// Due bank partitions (bank + private DRAM channel + private input
  /// queue) are independent, so their ticks batch onto the TickPool when
  /// tick_jobs > 1; responses are still drained sequentially in bank order,
  /// which keeps every downstream order byte-identical.
  void step_hot();

  /// hotpath=2 cycle: the event wheel pops the exact due set (banks then
  /// SMs, ascending id — the plain loop's order), so a cycle touches only
  /// components with something due and pays no per-cycle lane scan. Every
  /// schedule-advancing mutation re-posts to the wheel; skipped SMs get
  /// their idle/stall accounting in deferred batches (exact: between
  /// activations nothing mutates an SM, so the per-cycle classification is
  /// constant over the gap), flushed at every observation point.
  void step_hot2();

  /// Catches up deferred SM idle/stall accounting to @p at (exclusive) —
  /// hotpath=2 only. Called before anything observes SM stats or mutates SM
  /// state: telemetry samples, kernel starts, L1 flushes, result assembly.
  void flush_sm_accounting(Cycle at);

  /// Earliest event over the incrementally maintained lanes — the hotpath
  /// replacement for the next_event_cycle() component scan. Lanes are lower
  /// bounds (never later than the component's true next event), so the
  /// value is safe for fast_forward: a conservative jump lands on a no-op
  /// cycle at worst.
  Cycle next_event_cycle_hot() const;

  /// Earliest absolute cycle at which any component has work; kNoCycle when
  /// nothing at all is scheduled. May return any value <= now_ (not the
  /// exact minimum) when an event is already due — the scan stops as soon
  /// as skipping is ruled out.
  Cycle next_event_cycle() const;

  /// Event-driven fast-forward: if every component's next event lies in the
  /// future, jump now_ straight to the earliest one (skipped cycles would
  /// have been pure no-ops except SM idle accounting, which is applied).
  /// No-op when config_.fast_forward is off or an event is due now.
  /// When telemetry is attached, interval boundaries inside the skipped
  /// stretch are walked in closed form: each boundary gets the SM idle
  /// accounting up to it and a sample at exactly the cycle the plain loop
  /// would have sampled, so the series is identical in both modes.
  void fast_forward();

  /// Opens a telemetry frame at @p at and polls every component.
  void telemetry_sample(Cycle at);

  /// Supervision point: publishes the cycle-count heartbeat and unwinds
  /// with Cancelled if config_.cancel was requested (appending a diagnostic
  /// state dump for watchdog/timeout kills). Reached every
  /// kSupervisionInterval cycles in the run loops; a no-op single compare
  /// when neither cancel nor heartbeat is configured.
  void supervision_point();

  /// Human-readable in-flight state (cycle, per-bank queue depths and
  /// swap-buffer fill, interconnect/DRAM idleness) for watchdog dumps.
  std::string state_dump() const;

  /// After a failed skip attempt the next one waits this many cycles, so the
  /// component scan stays off the critical path of busy stretches. Stepping
  /// a skippable cycle plainly is a no-op, so this affects speed only.
  static constexpr Cycle kFastForwardBackoff = 16;

  /// Cycles between supervision points: frequent enough that cancellation
  /// latency is microseconds of wall clock, far too coarse to profile.
  static constexpr Cycle kSupervisionInterval = 16384;

  unsigned bank_of(Addr addr) const noexcept;

  GpuConfig config_;
  L2BankFactory* factory_;
  Interconnect icnt_;
  std::vector<std::unique_ptr<DramChannel>> dram_;
  std::vector<std::unique_ptr<L2Bank>> banks_;
  std::vector<std::unique_ptr<Sm>> sms_;

  Cycle now_ = 0;
  Cycle ff_next_try_ = 0;  ///< earliest cycle for the next fast-forward scan

  // Interval telemetry (null/kNoCycle when disabled, so the per-cycle cost
  // of the disabled path is a single integer compare in step()).
  Telemetry* tel_ = nullptr;
  Cycle tel_interval_ = 0;
  Cycle tel_next_ = kNoCycle;  ///< next interval boundary to sample

  // Supervision (kNoCycle when neither cancel nor heartbeat is configured,
  // so the unsupervised run loop pays a single integer compare).
  Cycle sup_next_ = kNoCycle;  ///< next supervision point


  std::uint64_t next_request_id_ = 1;
  std::vector<L2Response> response_scratch_;
  std::vector<L2Response> sm_resp_scratch_;  ///< per-SM same-cycle batch
  std::vector<SendTxnFn> senders_;  ///< one bound sender per SM

  // Hot-path event lanes: per-component lower bounds on the next event
  // cycle. bank_lane_[b] covers bank b's partition (its interconnect
  // request queue, DRAM channel and the bank itself); sm_lane_[s] covers
  // SM s plus its interconnect response queue. A lane is recomputed after
  // its component runs and lowered in place when a packet is sent toward
  // the component; it may go stale-low (an extra no-op tick) but never
  // stale-high (a missed event).
  std::vector<Cycle> bank_lane_;
  std::vector<Cycle> sm_lane_;
  std::vector<unsigned> due_banks_;  ///< per-cycle scratch
  std::unique_ptr<TickPool> tick_pool_;  ///< non-null iff tick_jobs > 1

  // hotpath=2 state. Component ids: bank b -> b, SM s -> sm_id_base_ + s.
  // The wheel holds one live deadline per id (see sim/event_wheel.hpp);
  // due_now_mask_ arms components for the *current* cycle out of band
  // (kernel starts, zero-latency sends landing behind this cycle's pop).
  // sm_acct_[s] is the first cycle not yet covered by SM s's idle/stall
  // accounting; see flush_sm_accounting().
  unsigned hot_level_ = 0;  ///< effective level (clamped if ids overflow 64)
  std::optional<sim::EventWheel> wheel_;
  std::uint64_t due_now_mask_ = 0;
  std::uint64_t bank_mask_ = 0;
  std::uint64_t sm_mask_ = 0;
  unsigned sm_id_base_ = 0;
  std::vector<Cycle> sm_acct_;
};

}  // namespace sttgpu::gpu
