#include "gpu/tick_pool.hpp"

#include "common/error.hpp"

namespace sttgpu::gpu {

TickPool::TickPool(unsigned workers) : workers_(workers == 0 ? 1 : workers) {
  threads_.reserve(workers_ - 1);
  for (unsigned i = 1; i < workers_; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

TickPool::~TickPool() {
  {
    const std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void TickPool::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(unsigned)>* fn = nullptr;
    unsigned n = 0;
    {
      std::unique_lock<std::mutex> lk(mu_);
      // fn_ is nulled once a batch fully completes: a worker that slept
      // through the whole batch must keep sleeping instead of adopting a
      // finished generation (and dereferencing a dead function).
      start_cv_.wait(lk, [&] { return stop_ || (generation_ != seen && fn_ != nullptr); });
      if (stop_) return;
      seen = generation_;
      fn = fn_;
      n = batch_size_;
      ++in_batch_;
    }
    work_off(*fn, n);
  }
}

void TickPool::work_off(const std::function<void(unsigned)>& fn, unsigned n) {
  unsigned completed = 0;
  std::exception_ptr err;
  for (;;) {
    const unsigned i = next_item_.fetch_add(1, std::memory_order_relaxed);
    if (i >= n) break;
    try {
      fn(i);
    } catch (...) {
      if (!err) err = std::current_exception();
    }
    ++completed;
  }
  const std::lock_guard<std::mutex> lk(mu_);
  done_items_ += completed;
  if (err != nullptr && first_error_ == nullptr) first_error_ = err;
  --in_batch_;
  if (done_items_ == batch_size_ && in_batch_ == 0) done_cv_.notify_all();
}

void TickPool::run(unsigned n, const std::function<void(unsigned)>& fn) {
  if (n == 0) return;
  if (workers_ == 1 || n == 1) {
    // No point in a wake round-trip: run inline (still bit-identical — the
    // contract demands order independence anyway).
    for (unsigned i = 0; i < n; ++i) fn(i);
    return;
  }
  {
    const std::lock_guard<std::mutex> lk(mu_);
    STTGPU_ASSERT_MSG(in_batch_ == 0, "TickPool: overlapping run() calls");
    fn_ = &fn;
    batch_size_ = n;
    next_item_.store(0, std::memory_order_relaxed);
    done_items_ = 0;
    first_error_ = nullptr;
    ++generation_;
    ++in_batch_;  // the calling thread participates
  }
  start_cv_.notify_all();
  work_off(fn, n);
  std::exception_ptr err;
  {
    std::unique_lock<std::mutex> lk(mu_);
    done_cv_.wait(lk, [&] { return done_items_ == batch_size_ && in_batch_ == 0; });
    err = first_error_;
    fn_ = nullptr;
  }
  if (err != nullptr) std::rethrow_exception(err);
}

}  // namespace sttgpu::gpu
