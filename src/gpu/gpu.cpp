#include "gpu/gpu.hpp"

#include <bit>
#include <sstream>

#include "common/cancel.hpp"
#include "common/error.hpp"
#include "common/telemetry.hpp"
#include "gpu/occupancy.hpp"

namespace sttgpu::gpu {

namespace {
/// Hard ceiling against livelock bugs; far above any expected run length.
constexpr Cycle kMaxCycles = 2'000'000'000;
}  // namespace

Gpu::Gpu(const GpuConfig& config, L2BankFactory& l2_factory)
    : config_(config), factory_(&l2_factory), icnt_(config_) {
  banks_.resize(config_.num_l2_banks);
  dram_.reserve(config_.num_l2_banks);
  for (unsigned b = 0; b < config_.num_l2_banks; ++b) {
    dram_.push_back(std::make_unique<DramChannel>(
        config_, [this, b](std::uint64_t cookie, Cycle now) {
          banks_[b]->on_dram_read_done(cookie, now);
        }));
  }
  for (unsigned b = 0; b < config_.num_l2_banks; ++b) {
    banks_[b] = l2_factory.make_bank(b, *dram_[b]);
    STTGPU_REQUIRE(banks_[b] != nullptr, "L2BankFactory returned a null bank");
  }
  sms_.reserve(config_.num_sms);
  senders_.reserve(config_.num_sms);
  for (unsigned s = 0; s < config_.num_sms; ++s) {
    sms_.push_back(std::make_unique<Sm>(s, config_, /*seed=*/1000 + s));
    senders_.push_back([this, s](Addr addr, bool is_store) -> std::uint64_t {
      const std::uint64_t id = next_request_id_++;
      L2Request req;
      req.id = id;
      req.addr = addr;
      req.is_store = is_store;
      req.sm_id = s;
      req.created = now_;
      const unsigned b = bank_of(addr);
      const Cycle arrival = icnt_.send_request(b, req, now_);
      if (arrival < bank_lane_[b]) bank_lane_[b] = arrival;
      if (hot_level_ >= 2) {
        // Sends fired outside a step (L1 flush at now_) must land this very
        // cycle when the fabric is latency-free; the wheel's clamp would
        // defer them to the next pop, so arm due_now_mask_ out of band.
        // Next-cycle arrivals ride the same mask: it is consumed by the
        // very next pop, which skips the wheel's bucket round trip for the
        // back-to-back case.
        if (arrival <= now_ + 1) {
          due_now_mask_ |= 1ull << b;
        } else {
          wheel_->post(b, arrival);
        }
      }
      return id;
    });
  }
  // Everything is "due" at cycle 0; the first hot step recomputes each lane.
  bank_lane_.assign(config_.num_l2_banks, 0);
  sm_lane_.assign(config_.num_sms, 0);
  hot_level_ = config_.hotpath;
  if (hot_level_ >= 2) {
    const unsigned ids = config_.num_l2_banks + config_.num_sms;
    if (ids <= sim::EventWheel::kMaxIds) {
      wheel_.emplace(ids);
      sm_id_base_ = config_.num_l2_banks;
      bank_mask_ = (config_.num_l2_banks == 64)
                       ? ~0ull
                       : ((1ull << config_.num_l2_banks) - 1);
      sm_mask_ = ((ids == 64) ? ~0ull : ((1ull << ids) - 1)) & ~bank_mask_;
      due_now_mask_ = bank_mask_ | sm_mask_;  // everything due at cycle 0
      sm_acct_.assign(config_.num_sms, 0);
    } else {
      hot_level_ = 1;  // wheel ids overflow a 64-bit due mask: fall back
    }
  }
  if (config_.tick_jobs > 1) tick_pool_ = std::make_unique<TickPool>(config_.tick_jobs);
  if (config_.telemetry != nullptr) {
    tel_ = config_.telemetry;
    STTGPU_REQUIRE(tel_->frame_count() == 0 && !tel_->in_frame(),
                   "Gpu: telemetry sink already holds frames — attach a fresh "
                   "Telemetry per run");
    tel_->set_us_per_cycle(1e6 / config_.core_clock_hz);
    tel_interval_ = tel_->interval();
    tel_next_ = tel_interval_;
    for (auto& bank : banks_) bank->attach_telemetry(tel_);
  }
  if (config_.cancel != nullptr || config_.heartbeat != nullptr) sup_next_ = 0;
}

void Gpu::supervision_point() {
  sup_next_ = now_ + kSupervisionInterval;
  if (config_.heartbeat != nullptr) {
    config_.heartbeat->store(now_, std::memory_order_relaxed);
  }
  if (config_.cancel == nullptr) return;
  const CancelReason reason = config_.cancel->reason();
  if (reason == CancelReason::kNone) return;
  std::ostringstream os;
  switch (reason) {
    case CancelReason::kUser:
      // Clean interrupt: no dump — the artifacts already on disk are the
      // useful output, and the matrix prints its own resume summary.
      os << "cancelled at cycle " << now_;
      break;
    case CancelReason::kWatchdog:
      os << "watchdog abort (no forward progress) at cycle " << now_ << state_dump();
      break;
    default:
      os << "job timeout at cycle " << now_ << state_dump();
      break;
  }
  throw Cancelled(reason, os.str());
}

std::string Gpu::state_dump() const {
  std::ostringstream os;
  os << "\n  diagnostic state at cycle " << now_ << ':';
  for (unsigned b = 0; b < banks_.size(); ++b) {
    os << "\n    l2b" << b << ": ";
    banks_[b]->describe_state(os, now_);
  }
  os << "\n    icnt " << (icnt_.idle() ? "idle" : "busy");
  os << ", dram";
  for (unsigned c = 0; c < dram_.size(); ++c) {
    os << ' ' << c << ':' << (dram_[c]->idle() ? "idle" : "busy");
  }
  std::uint64_t inflight = 0;
  for (const auto& sm : sms_) inflight += sm->inflight();
  os << "\n    sm in-flight transactions " << inflight;
  os << "\n    icnt express/queued: requests " << icnt_.request_express() << '/'
     << icnt_.request_queued() << ", responses " << icnt_.response_express() << '/'
     << icnt_.response_queued();
  if (wheel_.has_value()) {
    // The wheel cannot be mutated here (state_dump is const), so report the
    // cheap O(1) gauges; a stale far-heap top only matters for the next
    // deadline, which pop/next_deadline prune on the hot path.
    os << "\n    wheel: posted ids " << wheel_->posted_ids() << ", occupied buckets "
       << wheel_->occupied_buckets() << " (high water " << wheel_->bucket_high_water()
       << "), far heap " << wheel_->far_size() << " (high water "
       << wheel_->far_high_water() << "), due-now mask 0x" << std::hex << due_now_mask_
       << std::dec;
  }
  return os.str();
}

void Gpu::telemetry_sample(Cycle at) {
  // The sampled SM counters must cover every cycle before the boundary, so
  // deferred accounting is flushed first — the series stays byte-identical
  // with the per-cycle accounting the lower hotpath levels do.
  if (hot_level_ >= 2) flush_sm_accounting(at);
  tel_->begin_frame(at);
  for (const auto& sm : sms_) sm->sample_telemetry(*tel_);
  for (auto& bank : banks_) bank->sample_telemetry(at, *tel_);
  for (unsigned c = 0; c < dram_.size(); ++c) dram_[c]->sample_telemetry(c, *tel_);
  icnt_.sample_telemetry(*tel_);
  tel_->end_frame();
}

unsigned Gpu::bank_of(Addr addr) const noexcept {
  return static_cast<unsigned>((addr / config_.l2_line_bytes) % config_.num_l2_banks);
}

void Gpu::step() {
  if (hot_level_ >= 2) {
    step_hot2();
    return;
  }
  if (hot_level_ == 1) {
    step_hot();
    return;
  }
  // Memory side first so that this cycle's completions can wake warps.
  for (unsigned b = 0; b < banks_.size(); ++b) {
    icnt_.deliver_requests(
        b, now_, [&] { return banks_[b]->accepting(); },
        [&](const L2Request& req) { banks_[b]->enqueue(req, now_); });
  }
  for (auto& d : dram_) d->tick(now_);
  for (auto& bank : banks_) bank->tick(now_);
  response_scratch_.clear();
  for (auto& bank : banks_) bank->drain_responses(now_, response_scratch_);
  for (const L2Response& resp : response_scratch_) icnt_.send_response(resp, now_);

  for (unsigned s = 0; s < sms_.size(); ++s) {
    icnt_.deliver_responses(s, now_, [&](const L2Response& resp) {
      sms_[s]->on_response(resp, now_, senders_[s]);
    });
    sms_[s]->cycle(now_, senders_[s]);
  }
  ++now_;
  // Interval boundary: every cycle < now_ is fully processed, cycle now_ has
  // not started — the exact state the fast-forward walk reproduces.
  // tel_next_ is kNoCycle when telemetry is off, so this never fires then.
  if (now_ == tel_next_) {
    telemetry_sample(now_);
    tel_next_ += tel_interval_;
  }
}

void Gpu::step_hot() {
  // Same phase order as the plain step(); each skipped call is a no-op by
  // the conservative-next-event contract (nothing delivered, nothing due).
  due_banks_.clear();
  for (unsigned b = 0; b < banks_.size(); ++b) {
    if (bank_lane_[b] <= now_) due_banks_.push_back(b);
  }
  for (const unsigned b : due_banks_) {
    icnt_.deliver_requests(
        b, now_, [&] { return banks_[b]->accepting(); },
        [&](const L2Request& req) { banks_[b]->enqueue(req, now_); });
  }
  // Due bank partitions are pairwise independent (private DRAM channel,
  // private queues), so the tick batch may fan out onto the pool. With a
  // telemetry sink attached the banks share it for timeline events, so the
  // batch stays sequential — attaching telemetry never changes results
  // either way.
  const auto tick_bank = [this](unsigned i) {
    const unsigned b = due_banks_[i];
    dram_[b]->tick(now_);
    banks_[b]->tick(now_);
  };
  if (tick_pool_ != nullptr && tel_ == nullptr && due_banks_.size() > 1) {
    tick_pool_->run(static_cast<unsigned>(due_banks_.size()), tick_bank);
  } else {
    for (unsigned i = 0; i < due_banks_.size(); ++i) tick_bank(i);
  }
  response_scratch_.clear();
  for (const unsigned b : due_banks_) {
    banks_[b]->drain_responses(now_, response_scratch_);
    const Cycle dram_next = dram_[b]->next_event_cycle();
    const Cycle bank_next = banks_[b]->next_event_cycle();
    Cycle lane = icnt_.next_request_arrival(b);
    if (dram_next < lane) lane = dram_next;
    if (bank_next < lane) lane = bank_next;
    bank_lane_[b] = lane;
  }
  for (const L2Response& resp : response_scratch_) {
    const Cycle arrival = icnt_.send_response(resp, now_);
    if (arrival < sm_lane_[resp.sm_id]) sm_lane_[resp.sm_id] = arrival;
  }

  for (unsigned s = 0; s < sms_.size(); ++s) {
    if (sm_lane_[s] > now_) {
      // No response arrival, no sleeper due, and either no ready warp or a
      // clean stall: cycle() would only apply idle/stall accounting, which
      // this replicates exactly.
      sms_[s]->account_skipped_cycles(1);
      continue;
    }
    icnt_.deliver_responses(s, now_, [&](const L2Response& resp) {
      sms_[s]->on_response(resp, now_, senders_[s]);
    });
    sms_[s]->cycle(now_, senders_[s]);
    const Cycle sm_next = sms_[s]->next_event_cycle();
    const Cycle resp_next = icnt_.next_response_arrival(s);
    sm_lane_[s] = sm_next < resp_next ? sm_next : resp_next;
  }
  ++now_;
  if (now_ == tel_next_) {
    telemetry_sample(now_);
    tel_next_ += tel_interval_;
  }
}

void Gpu::step_hot2() {
  // Same phase order as step_hot(), but the due set comes from the wheel:
  // one pop yields the exact components with something at or before now_
  // (plus out-of-band arrivals armed via due_now_mask_ and any stranded
  // stale entries, whose spurious wakes are no-op ticks by the same
  // conservative contract the lanes rely on).
  std::uint64_t due = wheel_->pop_due(now_) | due_now_mask_;
  due_now_mask_ = 0;

  due_banks_.clear();
  for (std::uint64_t bits = due & bank_mask_; bits != 0; bits &= bits - 1) {
    due_banks_.push_back(static_cast<unsigned>(std::countr_zero(bits)));
  }
  for (const unsigned b : due_banks_) {
    icnt_.deliver_requests(
        b, now_, [&] { return banks_[b]->accepting(); },
        [&](const L2Request& req) { banks_[b]->enqueue(req, now_); });
  }
  const auto tick_bank = [this](unsigned i) {
    const unsigned b = due_banks_[i];
    dram_[b]->tick(now_);
    banks_[b]->tick(now_);
  };
  if (tick_pool_ != nullptr && tel_ == nullptr && due_banks_.size() > 1) {
    tick_pool_->run(static_cast<unsigned>(due_banks_.size()), tick_bank);
  } else {
    for (unsigned i = 0; i < due_banks_.size(); ++i) tick_bank(i);
  }
  response_scratch_.clear();
  for (const unsigned b : due_banks_) {
    banks_[b]->drain_responses(now_, response_scratch_);
    const Cycle dram_next = dram_[b]->next_event_cycle();
    const Cycle bank_next = banks_[b]->next_event_cycle();
    Cycle lane = icnt_.next_request_arrival(b);
    if (dram_next < lane) lane = dram_next;
    if (bank_next < lane) lane = bank_next;
    // Due-next components ride due_now_mask_ (consumed by the very next
    // pop), skipping a wheel bucket round trip for the dominant
    // back-to-back case; deadlines at or before now_ (e.g. a backpressured
    // queue front) fold into the same mask — exactly the wheel's clamp.
    if (lane <= now_ + 1) {
      due_now_mask_ |= 1ull << b;
    } else if (lane != kNoCycle) {
      wheel_->post(b, lane);
    }
  }
  std::uint64_t sm_bits = due & sm_mask_;
  for (const L2Response& resp : response_scratch_) {
    const Cycle arrival = icnt_.send_response(resp, now_);
    const unsigned id = sm_id_base_ + resp.sm_id;
    if (arrival <= now_) {
      sm_bits |= 1ull << id;  // latency-free fabric: deliver this cycle
    } else if (arrival == now_ + 1) {
      due_now_mask_ |= 1ull << id;
    } else {
      wheel_->post(id, arrival);
    }
  }
  while (sm_bits != 0) {
    const unsigned id = static_cast<unsigned>(std::countr_zero(sm_bits));
    sm_bits &= sm_bits - 1;
    const unsigned s = id - sm_id_base_;
    // Catch up the idle/stall accounting for the skipped stretch, with the
    // state the SM had throughout it (nothing mutates an inactive SM, so
    // the per-cycle classification is constant over the gap). cycle()
    // accounts the current cycle itself.
    if (now_ > sm_acct_[s]) {
      sms_[s]->account_skipped_cycles(now_ - sm_acct_[s]);
    }
    sm_acct_[s] = now_ + 1;
    // Batch-drain: all of this SM's same-cycle responses in one call, so the
    // stalled-walk recheck runs once per batch (see Sm::on_responses for the
    // monotonicity argument that makes this byte-identical).
    sm_resp_scratch_.clear();
    icnt_.deliver_responses(s, now_, [&](const L2Response& resp) {
      sm_resp_scratch_.push_back(resp);
    });
    if (!sm_resp_scratch_.empty()) {
      sms_[s]->on_responses(sm_resp_scratch_.data(), sm_resp_scratch_.size(), now_,
                            senders_[s]);
    }
    sms_[s]->cycle(now_, senders_[s]);
    const Cycle sm_next = sms_[s]->next_event_cycle();
    const Cycle resp_next = icnt_.next_response_arrival(s);
    const Cycle lane = sm_next < resp_next ? sm_next : resp_next;
    if (lane <= now_ + 1) {
      due_now_mask_ |= 1ull << id;
    } else if (lane != kNoCycle) {
      wheel_->post(id, lane);
    }
  }
  ++now_;
  if (now_ == tel_next_) {
    telemetry_sample(now_);
    tel_next_ += tel_interval_;
  }
}

void Gpu::flush_sm_accounting(Cycle at) {
  for (unsigned s = 0; s < sms_.size(); ++s) {
    if (at > sm_acct_[s]) {
      sms_[s]->account_skipped_cycles(at - sm_acct_[s]);
      sm_acct_[s] = at;
    }
  }
}

Cycle Gpu::next_event_cycle_hot() const {
  Cycle next = kNoCycle;
  for (const Cycle lane : sm_lane_) next = lane < next ? lane : next;
  for (const Cycle lane : bank_lane_) next = lane < next ? lane : next;
  return next;
}

Cycle Gpu::next_event_cycle() const {
  // Early-out scan: once the running minimum is <= now_ an event is already
  // due and no skip is possible, so the exact minimum no longer matters.
  // SMs go first — on busy cycles a ready warp (next event 0) is the common
  // case, and bailing on the first one keeps this scan out of the profile.
  Cycle next = kNoCycle;
  const auto due = [&](Cycle c) {
    if (c < next) next = c;
    return next <= now_;
  };
  for (const auto& sm : sms_) {
    if (due(sm->next_event_cycle())) return next;
  }
  for (const auto& bank : banks_) {
    if (due(bank->next_event_cycle())) return next;
  }
  if (due(icnt_.next_event_cycle())) return next;
  for (const auto& d : dram_) {
    if (due(d->next_event_cycle())) return next;
  }
  return next;
}

void Gpu::fast_forward() {
  if (!config_.fast_forward) return;
  if (hot_level_ >= 2) {
    // The wheel answers "earliest deadline" in O(1)-ish (circular occupancy
    // scan), so there is no backoff: every quiescent cycle gets a skip
    // attempt. Skipped SM idle accounting is deferred (sm_acct_), so only
    // telemetry boundaries need closed-form walking here — each sample
    // flushes the accounting up to its own boundary.
    if (due_now_mask_ != 0) return;
    const Cycle next = wheel_->next_deadline();
    if (next == kNoCycle || next <= now_) return;
    while (tel_next_ <= next) {
      telemetry_sample(tel_next_);
      tel_next_ += tel_interval_;
    }
    now_ = next;
    return;
  }
  if (now_ < ff_next_try_) return;
  const Cycle next = hot_level_ != 0 ? next_event_cycle_hot() : next_event_cycle();
  // kNoCycle (nothing scheduled anywhere) falls through to plain stepping so
  // a livelocked configuration still hits the cycle ceiling diagnostics.
  if (next == kNoCycle || next <= now_) {
    // An event is already due: this is a busy stretch, and re-scanning every
    // cycle would cost more than it saves. Back off — stepping through a
    // skippable cycle plainly produces the identical state (it is a no-op
    // either way), so delaying the next attempt never changes results.
    ff_next_try_ = now_ + kFastForwardBackoff;
    return;
  }
  // Every skipped cycle is provably a no-op: no packet arrives, no bank has
  // input or a maturing deadline, no warp is ready or due to wake — the only
  // architected effect of stepping through them would be SM idle accounting.
  // Interval boundaries inside (now_, next] are walked in closed form: the
  // plain loop samples when its post-increment now_ reaches tel_next_, i.e.
  // after processing cycle tel_next_-1 — inside this gap that state is
  // exactly "idle accounting applied up to the boundary". Boundary == next
  // is included (the plain loop samples there before executing cycle next);
  // account_skipped_cycles is linear, so the split sums to next - now_.
  Cycle cur = now_;
  while (tel_next_ <= next) {
    for (auto& sm : sms_) sm->account_skipped_cycles(tel_next_ - cur);
    cur = tel_next_;
    telemetry_sample(cur);
    tel_next_ += tel_interval_;
  }
  for (auto& sm : sms_) sm->account_skipped_cycles(next - cur);
  now_ = next;
}

bool Gpu::memory_idle() const {
  if (!icnt_.idle()) return false;
  for (const auto& bank : banks_) {
    if (!bank->idle()) return false;
  }
  for (const auto& d : dram_) {
    if (!d->idle()) return false;
  }
  for (const auto& sm : sms_) {
    if (sm->inflight() != 0) return false;
  }
  return true;
}

void Gpu::drain_memory() {
  while (!memory_idle()) {
    step();
    STTGPU_REQUIRE(now_ < kMaxCycles, "Gpu: memory drain exceeded the cycle ceiling");
    // Skip only while the drain continues: once the step above emptied the
    // memory system, jumping to some future event (e.g. a stale SM sleep
    // entry) would inflate now_ past where the plain loop stops.
    if (!memory_idle()) fast_forward();
    if (now_ >= sup_next_) supervision_point();
  }
}

void Gpu::run_kernel(const workload::KernelSpec& kernel, std::uint64_t seed) {
  // start_kernel mutates SM state, so any deferred idle accounting still
  // carrying the pre-launch classification must be applied first.
  if (hot_level_ >= 2) flush_sm_accounting(now_);
  const Cycle kernel_start = now_;
  const Occupancy occ = compute_occupancy(kernel, config_);

  std::vector<std::deque<unsigned>> queues(config_.num_sms);
  for (unsigned blk = 0; blk < kernel.grid_blocks; ++blk) {
    queues[blk % config_.num_sms].push_back(blk);
  }
  const std::uint64_t warps_in_grid =
      static_cast<std::uint64_t>(kernel.grid_blocks) * kernel.warps_per_block();
  for (unsigned s = 0; s < config_.num_sms; ++s) {
    sms_[s]->start_kernel(kernel, std::move(queues[s]), occ.blocks_per_sm, warps_in_grid,
                          seed);
  }
  // Fresh warps are ready immediately: pull every SM lane down to "due now".
  for (Cycle& lane : sm_lane_) lane = 0;
  due_now_mask_ |= sm_mask_;  // hotpath=2: arm every SM for this very cycle

  const auto all_done = [&] {
    for (const auto& sm : sms_) {
      if (!sm->kernel_done()) return false;
    }
    return true;
  };
  // Event-driven completion: check every cycle (kernel_done() can only flip
  // during a step, never during a fast-forwarded gap, so both the plain and
  // the fast-forwarded loop stop at the same cycle) and skip quiescent
  // stretches — long memory waits — in one jump.
  while (!all_done()) {
    step();
    STTGPU_REQUIRE(now_ < kMaxCycles, "Gpu: kernel exceeded the cycle ceiling");
    // Same guard as drain_memory(): never jump past the completion cycle.
    if (!all_done()) fast_forward();
    if (now_ >= sup_next_) supervision_point();
  }

  if (tel_ != nullptr) tel_->slice("kernel", kernel.name, kernel_start, now_);

  // Inter-kernel boundary: L1s are flushed (no coherence across launches).
  // flush_l1 mutates SM state, so deferred accounting flushes first.
  if (hot_level_ >= 2) flush_sm_accounting(now_);
  const Cycle drain_start = now_;
  for (unsigned s = 0; s < config_.num_sms; ++s) sms_[s]->flush_l1(now_, senders_[s]);
  drain_memory();
  if (tel_ != nullptr && now_ > drain_start) {
    tel_->slice("drain", kernel.name, drain_start, now_);
  }
}

RunResult Gpu::run(const workload::Workload& workload) {
  STTGPU_REQUIRE(!workload.kernels.empty(), "Gpu::run: workload has no kernels");

  for (std::size_t k = 0; k < workload.kernels.size(); ++k) {
    run_kernel(workload.kernels[k], workload.seed + 0x1000 * (k + 1));
  }

  // Final partial interval: both loop modes end at the identical now_, so
  // this closing frame is identical too. Skipped when the run happened to
  // end exactly on a sampled boundary.
  if (tel_ != nullptr && now_ > tel_next_ - tel_interval_) telemetry_sample(now_);

  // hotpath=2: idle/stall tallies must cover every cycle before assembly.
  if (hot_level_ >= 2) flush_sm_accounting(now_);

  RunResult r;
  r.cycles = now_;
  for (const auto& sm : sms_) {
    r.instructions += sm->stats().issued_instructions;
    r.sm.issued_instructions += sm->stats().issued_instructions;
    r.sm.issued_loads += sm->stats().issued_loads;
    r.sm.issued_stores += sm->stats().issued_stores;
    r.sm.load_transactions += sm->stats().load_transactions;
    r.sm.store_transactions += sm->stats().store_transactions;
    r.sm.idle_cycles += sm->stats().idle_cycles;
    r.sm.stall_cycles += sm->stats().stall_cycles;
    r.sm.mshr_merges += sm->stats().mshr_merges;
    r.l1d_hits += sm->l1().data_counters().load_hits;
    r.l1d_misses += sm->l1().data_counters().load_misses;
  }
  r.ipc = r.cycles ? static_cast<double>(r.instructions) / static_cast<double>(r.cycles)
                   : 0.0;
  r.runtime_s = config_.clock().seconds_for_cycles(r.cycles);
  for (const auto& bank : banks_) {
    r.l2.merge(bank->stats());
    r.l2_leakage_w += bank->leakage_w();
    r.l2_energy.merge(bank->energy());
    factory_->collect(*bank, r.l2_counters);
  }
  for (const auto& d : dram_) {
    r.dram_reads += d->reads();
    r.dram_writes += d->writes();
    r.sched.dram_express_reads += d->express_reads();
    r.sched.dram_queued_reads += d->queued_reads();
  }
  r.sched.icnt_request_express = icnt_.request_express();
  r.sched.icnt_request_queued = icnt_.request_queued();
  r.sched.icnt_response_express = icnt_.response_express();
  r.sched.icnt_response_queued = icnt_.response_queued();
  if (wheel_.has_value()) {
    r.sched.wheel_bucket_high_water = wheel_->bucket_high_water();
    r.sched.wheel_far_high_water = wheel_->far_high_water();
  }
  return r;
}

}  // namespace sttgpu::gpu
