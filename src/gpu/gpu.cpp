#include "gpu/gpu.hpp"

#include <sstream>

#include "common/cancel.hpp"
#include "common/error.hpp"
#include "common/telemetry.hpp"
#include "gpu/occupancy.hpp"

namespace sttgpu::gpu {

namespace {
/// Hard ceiling against livelock bugs; far above any expected run length.
constexpr Cycle kMaxCycles = 2'000'000'000;
}  // namespace

Gpu::Gpu(const GpuConfig& config, L2BankFactory& l2_factory)
    : config_(config), factory_(&l2_factory), icnt_(config_) {
  banks_.resize(config_.num_l2_banks);
  dram_.reserve(config_.num_l2_banks);
  for (unsigned b = 0; b < config_.num_l2_banks; ++b) {
    dram_.push_back(std::make_unique<DramChannel>(
        config_, [this, b](std::uint64_t cookie, Cycle now) {
          banks_[b]->on_dram_read_done(cookie, now);
        }));
  }
  for (unsigned b = 0; b < config_.num_l2_banks; ++b) {
    banks_[b] = l2_factory.make_bank(b, *dram_[b]);
    STTGPU_REQUIRE(banks_[b] != nullptr, "L2BankFactory returned a null bank");
  }
  sms_.reserve(config_.num_sms);
  senders_.reserve(config_.num_sms);
  for (unsigned s = 0; s < config_.num_sms; ++s) {
    sms_.push_back(std::make_unique<Sm>(s, config_, /*seed=*/1000 + s));
    senders_.push_back([this, s](Addr addr, bool is_store) -> std::uint64_t {
      const std::uint64_t id = next_request_id_++;
      L2Request req;
      req.id = id;
      req.addr = addr;
      req.is_store = is_store;
      req.sm_id = s;
      req.created = now_;
      const unsigned b = bank_of(addr);
      const Cycle arrival = icnt_.send_request(b, req, now_);
      if (arrival < bank_lane_[b]) bank_lane_[b] = arrival;
      return id;
    });
  }
  // Everything is "due" at cycle 0; the first hot step recomputes each lane.
  bank_lane_.assign(config_.num_l2_banks, 0);
  sm_lane_.assign(config_.num_sms, 0);
  if (config_.tick_jobs > 1) tick_pool_ = std::make_unique<TickPool>(config_.tick_jobs);
  if (config_.telemetry != nullptr) {
    tel_ = config_.telemetry;
    STTGPU_REQUIRE(tel_->frame_count() == 0 && !tel_->in_frame(),
                   "Gpu: telemetry sink already holds frames — attach a fresh "
                   "Telemetry per run");
    tel_->set_us_per_cycle(1e6 / config_.core_clock_hz);
    tel_interval_ = tel_->interval();
    tel_next_ = tel_interval_;
    for (auto& bank : banks_) bank->attach_telemetry(tel_);
  }
  if (config_.cancel != nullptr || config_.heartbeat != nullptr) sup_next_ = 0;
}

void Gpu::supervision_point() {
  sup_next_ = now_ + kSupervisionInterval;
  if (config_.heartbeat != nullptr) {
    config_.heartbeat->store(now_, std::memory_order_relaxed);
  }
  if (config_.cancel == nullptr) return;
  const CancelReason reason = config_.cancel->reason();
  if (reason == CancelReason::kNone) return;
  std::ostringstream os;
  switch (reason) {
    case CancelReason::kUser:
      // Clean interrupt: no dump — the artifacts already on disk are the
      // useful output, and the matrix prints its own resume summary.
      os << "cancelled at cycle " << now_;
      break;
    case CancelReason::kWatchdog:
      os << "watchdog abort (no forward progress) at cycle " << now_ << state_dump();
      break;
    default:
      os << "job timeout at cycle " << now_ << state_dump();
      break;
  }
  throw Cancelled(reason, os.str());
}

std::string Gpu::state_dump() const {
  std::ostringstream os;
  os << "\n  diagnostic state at cycle " << now_ << ':';
  for (unsigned b = 0; b < banks_.size(); ++b) {
    os << "\n    l2b" << b << ": ";
    banks_[b]->describe_state(os, now_);
  }
  os << "\n    icnt " << (icnt_.idle() ? "idle" : "busy");
  os << ", dram";
  for (unsigned c = 0; c < dram_.size(); ++c) {
    os << ' ' << c << ':' << (dram_[c]->idle() ? "idle" : "busy");
  }
  std::uint64_t inflight = 0;
  for (const auto& sm : sms_) inflight += sm->inflight();
  os << "\n    sm in-flight transactions " << inflight;
  return os.str();
}

void Gpu::telemetry_sample(Cycle at) {
  tel_->begin_frame(at);
  for (const auto& sm : sms_) sm->sample_telemetry(*tel_);
  for (auto& bank : banks_) bank->sample_telemetry(at, *tel_);
  for (unsigned c = 0; c < dram_.size(); ++c) dram_[c]->sample_telemetry(c, *tel_);
  icnt_.sample_telemetry(*tel_);
  tel_->end_frame();
}

unsigned Gpu::bank_of(Addr addr) const noexcept {
  return static_cast<unsigned>((addr / config_.l2_line_bytes) % config_.num_l2_banks);
}

void Gpu::step() {
  if (config_.hotpath) {
    step_hot();
    return;
  }
  // Memory side first so that this cycle's completions can wake warps.
  for (unsigned b = 0; b < banks_.size(); ++b) {
    icnt_.deliver_requests(
        b, now_, [&] { return banks_[b]->accepting(); },
        [&](const L2Request& req) { banks_[b]->enqueue(req, now_); });
  }
  for (auto& d : dram_) d->tick(now_);
  for (auto& bank : banks_) bank->tick(now_);
  response_scratch_.clear();
  for (auto& bank : banks_) bank->drain_responses(now_, response_scratch_);
  for (const L2Response& resp : response_scratch_) icnt_.send_response(resp, now_);

  for (unsigned s = 0; s < sms_.size(); ++s) {
    icnt_.deliver_responses(s, now_, [&](const L2Response& resp) {
      sms_[s]->on_response(resp, now_, senders_[s]);
    });
    sms_[s]->cycle(now_, senders_[s]);
  }
  ++now_;
  // Interval boundary: every cycle < now_ is fully processed, cycle now_ has
  // not started — the exact state the fast-forward walk reproduces.
  // tel_next_ is kNoCycle when telemetry is off, so this never fires then.
  if (now_ == tel_next_) {
    telemetry_sample(now_);
    tel_next_ += tel_interval_;
  }
}

void Gpu::step_hot() {
  // Same phase order as the plain step(); each skipped call is a no-op by
  // the conservative-next-event contract (nothing delivered, nothing due).
  due_banks_.clear();
  for (unsigned b = 0; b < banks_.size(); ++b) {
    if (bank_lane_[b] <= now_) due_banks_.push_back(b);
  }
  for (const unsigned b : due_banks_) {
    icnt_.deliver_requests(
        b, now_, [&] { return banks_[b]->accepting(); },
        [&](const L2Request& req) { banks_[b]->enqueue(req, now_); });
  }
  // Due bank partitions are pairwise independent (private DRAM channel,
  // private queues), so the tick batch may fan out onto the pool. With a
  // telemetry sink attached the banks share it for timeline events, so the
  // batch stays sequential — attaching telemetry never changes results
  // either way.
  const auto tick_bank = [this](unsigned i) {
    const unsigned b = due_banks_[i];
    dram_[b]->tick(now_);
    banks_[b]->tick(now_);
  };
  if (tick_pool_ != nullptr && tel_ == nullptr && due_banks_.size() > 1) {
    tick_pool_->run(static_cast<unsigned>(due_banks_.size()), tick_bank);
  } else {
    for (unsigned i = 0; i < due_banks_.size(); ++i) tick_bank(i);
  }
  response_scratch_.clear();
  for (const unsigned b : due_banks_) {
    banks_[b]->drain_responses(now_, response_scratch_);
    const Cycle dram_next = dram_[b]->next_event_cycle();
    const Cycle bank_next = banks_[b]->next_event_cycle();
    Cycle lane = icnt_.next_request_arrival(b);
    if (dram_next < lane) lane = dram_next;
    if (bank_next < lane) lane = bank_next;
    bank_lane_[b] = lane;
  }
  for (const L2Response& resp : response_scratch_) {
    const Cycle arrival = icnt_.send_response(resp, now_);
    if (arrival < sm_lane_[resp.sm_id]) sm_lane_[resp.sm_id] = arrival;
  }

  for (unsigned s = 0; s < sms_.size(); ++s) {
    if (sm_lane_[s] > now_) {
      // No response arrival, no sleeper due, and either no ready warp or a
      // clean stall: cycle() would only apply idle/stall accounting, which
      // this replicates exactly.
      sms_[s]->account_skipped_cycles(1);
      continue;
    }
    icnt_.deliver_responses(s, now_, [&](const L2Response& resp) {
      sms_[s]->on_response(resp, now_, senders_[s]);
    });
    sms_[s]->cycle(now_, senders_[s]);
    const Cycle sm_next = sms_[s]->next_event_cycle();
    const Cycle resp_next = icnt_.next_response_arrival(s);
    sm_lane_[s] = sm_next < resp_next ? sm_next : resp_next;
  }
  ++now_;
  if (now_ == tel_next_) {
    telemetry_sample(now_);
    tel_next_ += tel_interval_;
  }
}

Cycle Gpu::next_event_cycle_hot() const {
  Cycle next = kNoCycle;
  for (const Cycle lane : sm_lane_) next = lane < next ? lane : next;
  for (const Cycle lane : bank_lane_) next = lane < next ? lane : next;
  return next;
}

Cycle Gpu::next_event_cycle() const {
  // Early-out scan: once the running minimum is <= now_ an event is already
  // due and no skip is possible, so the exact minimum no longer matters.
  // SMs go first — on busy cycles a ready warp (next event 0) is the common
  // case, and bailing on the first one keeps this scan out of the profile.
  Cycle next = kNoCycle;
  const auto due = [&](Cycle c) {
    if (c < next) next = c;
    return next <= now_;
  };
  for (const auto& sm : sms_) {
    if (due(sm->next_event_cycle())) return next;
  }
  for (const auto& bank : banks_) {
    if (due(bank->next_event_cycle())) return next;
  }
  if (due(icnt_.next_event_cycle())) return next;
  for (const auto& d : dram_) {
    if (due(d->next_event_cycle())) return next;
  }
  return next;
}

void Gpu::fast_forward() {
  if (!config_.fast_forward || now_ < ff_next_try_) return;
  const Cycle next = config_.hotpath ? next_event_cycle_hot() : next_event_cycle();
  // kNoCycle (nothing scheduled anywhere) falls through to plain stepping so
  // a livelocked configuration still hits the cycle ceiling diagnostics.
  if (next == kNoCycle || next <= now_) {
    // An event is already due: this is a busy stretch, and re-scanning every
    // cycle would cost more than it saves. Back off — stepping through a
    // skippable cycle plainly produces the identical state (it is a no-op
    // either way), so delaying the next attempt never changes results.
    ff_next_try_ = now_ + kFastForwardBackoff;
    return;
  }
  // Every skipped cycle is provably a no-op: no packet arrives, no bank has
  // input or a maturing deadline, no warp is ready or due to wake — the only
  // architected effect of stepping through them would be SM idle accounting.
  // Interval boundaries inside (now_, next] are walked in closed form: the
  // plain loop samples when its post-increment now_ reaches tel_next_, i.e.
  // after processing cycle tel_next_-1 — inside this gap that state is
  // exactly "idle accounting applied up to the boundary". Boundary == next
  // is included (the plain loop samples there before executing cycle next);
  // account_skipped_cycles is linear, so the split sums to next - now_.
  Cycle cur = now_;
  while (tel_next_ <= next) {
    for (auto& sm : sms_) sm->account_skipped_cycles(tel_next_ - cur);
    cur = tel_next_;
    telemetry_sample(cur);
    tel_next_ += tel_interval_;
  }
  for (auto& sm : sms_) sm->account_skipped_cycles(next - cur);
  now_ = next;
}

bool Gpu::memory_idle() const {
  if (!icnt_.idle()) return false;
  for (const auto& bank : banks_) {
    if (!bank->idle()) return false;
  }
  for (const auto& d : dram_) {
    if (!d->idle()) return false;
  }
  for (const auto& sm : sms_) {
    if (sm->inflight() != 0) return false;
  }
  return true;
}

void Gpu::drain_memory() {
  while (!memory_idle()) {
    step();
    STTGPU_REQUIRE(now_ < kMaxCycles, "Gpu: memory drain exceeded the cycle ceiling");
    // Skip only while the drain continues: once the step above emptied the
    // memory system, jumping to some future event (e.g. a stale SM sleep
    // entry) would inflate now_ past where the plain loop stops.
    if (!memory_idle()) fast_forward();
    if (now_ >= sup_next_) supervision_point();
  }
}

void Gpu::run_kernel(const workload::KernelSpec& kernel, std::uint64_t seed) {
  const Cycle kernel_start = now_;
  const Occupancy occ = compute_occupancy(kernel, config_);

  std::vector<std::deque<unsigned>> queues(config_.num_sms);
  for (unsigned blk = 0; blk < kernel.grid_blocks; ++blk) {
    queues[blk % config_.num_sms].push_back(blk);
  }
  const std::uint64_t warps_in_grid =
      static_cast<std::uint64_t>(kernel.grid_blocks) * kernel.warps_per_block();
  for (unsigned s = 0; s < config_.num_sms; ++s) {
    sms_[s]->start_kernel(kernel, std::move(queues[s]), occ.blocks_per_sm, warps_in_grid,
                          seed);
  }
  // Fresh warps are ready immediately: pull every SM lane down to "due now".
  for (Cycle& lane : sm_lane_) lane = 0;

  const auto all_done = [&] {
    for (const auto& sm : sms_) {
      if (!sm->kernel_done()) return false;
    }
    return true;
  };
  // Event-driven completion: check every cycle (kernel_done() can only flip
  // during a step, never during a fast-forwarded gap, so both the plain and
  // the fast-forwarded loop stop at the same cycle) and skip quiescent
  // stretches — long memory waits — in one jump.
  while (!all_done()) {
    step();
    STTGPU_REQUIRE(now_ < kMaxCycles, "Gpu: kernel exceeded the cycle ceiling");
    // Same guard as drain_memory(): never jump past the completion cycle.
    if (!all_done()) fast_forward();
    if (now_ >= sup_next_) supervision_point();
  }

  if (tel_ != nullptr) tel_->slice("kernel", kernel.name, kernel_start, now_);

  // Inter-kernel boundary: L1s are flushed (no coherence across launches).
  const Cycle drain_start = now_;
  for (unsigned s = 0; s < config_.num_sms; ++s) sms_[s]->flush_l1(now_, senders_[s]);
  drain_memory();
  if (tel_ != nullptr && now_ > drain_start) {
    tel_->slice("drain", kernel.name, drain_start, now_);
  }
}

RunResult Gpu::run(const workload::Workload& workload) {
  STTGPU_REQUIRE(!workload.kernels.empty(), "Gpu::run: workload has no kernels");

  for (std::size_t k = 0; k < workload.kernels.size(); ++k) {
    run_kernel(workload.kernels[k], workload.seed + 0x1000 * (k + 1));
  }

  // Final partial interval: both loop modes end at the identical now_, so
  // this closing frame is identical too. Skipped when the run happened to
  // end exactly on a sampled boundary.
  if (tel_ != nullptr && now_ > tel_next_ - tel_interval_) telemetry_sample(now_);

  RunResult r;
  r.cycles = now_;
  for (const auto& sm : sms_) {
    r.instructions += sm->stats().issued_instructions;
    r.sm.issued_instructions += sm->stats().issued_instructions;
    r.sm.issued_loads += sm->stats().issued_loads;
    r.sm.issued_stores += sm->stats().issued_stores;
    r.sm.load_transactions += sm->stats().load_transactions;
    r.sm.store_transactions += sm->stats().store_transactions;
    r.sm.idle_cycles += sm->stats().idle_cycles;
    r.sm.stall_cycles += sm->stats().stall_cycles;
    r.sm.mshr_merges += sm->stats().mshr_merges;
    r.l1d_hits += sm->l1().data_counters().load_hits;
    r.l1d_misses += sm->l1().data_counters().load_misses;
  }
  r.ipc = r.cycles ? static_cast<double>(r.instructions) / static_cast<double>(r.cycles)
                   : 0.0;
  r.runtime_s = config_.clock().seconds_for_cycles(r.cycles);
  for (const auto& bank : banks_) {
    r.l2.merge(bank->stats());
    r.l2_leakage_w += bank->leakage_w();
    r.l2_energy.merge(bank->energy());
    factory_->collect(*bank, r.l2_counters);
  }
  for (const auto& d : dram_) {
    r.dram_reads += d->reads();
    r.dram_writes += d->writes();
  }
  return r;
}

}  // namespace sttgpu::gpu
