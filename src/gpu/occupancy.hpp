// CUDA-style occupancy calculation: how many thread blocks of a kernel fit
// on one SM given its register file, shared memory, thread and block limits.
//
// This is the mechanism behind the paper's C2/C3 configurations: spending
// the area saved by STT-RAM density on a larger register file raises the
// per-SM block count of register-limited kernels, adding warps that hide
// memory latency.
#pragma once

#include "gpu/gpu_config.hpp"
#include "workload/kernel.hpp"

namespace sttgpu::gpu {

struct Occupancy {
  unsigned blocks_per_sm = 0;
  unsigned warps_per_sm = 0;
  /// Which resource bound first ("registers", "threads", "blocks", "shared").
  const char* limiter = "";
};

/// Computes occupancy; throws SimError if even a single block does not fit.
Occupancy compute_occupancy(const workload::KernelSpec& kernel, const GpuConfig& config);

}  // namespace sttgpu::gpu
