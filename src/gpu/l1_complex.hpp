// Per-SM first-level cache complex: L1 data cache plus the read-only
// constant and texture caches, with the GPU write policies of the paper's
// Figure 1b:
//
//   * global-data store, L1 hit  -> write-evict (invalidate, forward to L2);
//   * global-data store, L1 miss -> write-no-allocate (forward to L2);
//   * local-data accesses        -> write-back, write-allocate;
//   * constant/texture           -> read-only allocate-on-miss.
//
// L1s are not coherent (paper Section 2); nothing here needs invalidation
// traffic. The class is purely functional — the SM attaches timing.
#pragma once

#include <cstdint>
#include <vector>

#include "common/small_vec.hpp"

#include "cache/cache.hpp"
#include "common/types.hpp"
#include "gpu/gpu_config.hpp"
#include "workload/kernel.hpp"

namespace sttgpu::gpu {

/// What one L1 transaction requires from the rest of the hierarchy.
struct L1Outcome {
  bool hit = false;        ///< satisfied locally (loads only)
  bool send_read = false;  ///< fetch this line from L2
  bool send_write = false; ///< forward a store to L2
  /// Dirty local lines displaced by this operation (write them to L2).
  /// At most one per access (a miss fill evicts one victim), so the inline
  /// capacity keeps the per-transaction path allocation-free.
  SmallVec<Addr, 2> writebacks;
};

class L1Complex {
 public:
  L1Complex(const GpuConfig& config, std::uint64_t seed);

  /// One 128B (64B for texture) transaction against the right cache.
  L1Outcome access(Addr addr, workload::WarpInstr::Kind kind, workload::MemSpace space,
                   Cycle now);

  /// Installs a returned miss line; appends dirty evictions to @p writebacks.
  void fill(Addr addr, workload::MemSpace space, Cycle now, SmallVec<Addr, 2>& writebacks);

  /// End-of-kernel flush: invalidates everything, returning dirty local
  /// lines that must be written back to L2.
  std::vector<Addr> flush();

  const cache::CacheCounters& data_counters() const noexcept { return l1d_.counters(); }
  const cache::CacheCounters& const_counters() const noexcept { return l1c_.counters(); }
  const cache::CacheCounters& texture_counters() const noexcept { return l1t_.counters(); }

 private:
  cache::SetAssocCache& cache_for(workload::MemSpace space);

  cache::SetAssocCache l1d_;
  cache::SetAssocCache l1c_;
  cache::SetAssocCache l1t_;
};

}  // namespace sttgpu::gpu
