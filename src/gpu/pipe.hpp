// ThroughputPipe: the analytic queue primitive used to model every
// bandwidth-limited, fixed-latency resource (interconnect ports, DRAM
// channels). A transaction entering at time t departs at
//
//     depart = max(next_free, t) + latency,   next_free += service_gap
//
// i.e. the resource serves one transaction per `service_gap` cycles and adds
// `latency` cycles of pipeline delay. Departures are monotone in arrival
// order, which downstream FIFOs rely on.
#pragma once

#include "common/types.hpp"

namespace sttgpu::gpu {

class ThroughputPipe {
 public:
  ThroughputPipe(Cycle latency, Cycle service_gap);

  // Defined here (not in pipe.cpp): admit/peek/backlog run millions of times
  // per simulated second on the request path and must inline into callers.

  /// Admits a transaction arriving at @p now; returns its departure cycle.
  Cycle admit(Cycle now) noexcept {
    const Cycle start = next_free_ > now ? next_free_ : now;
    next_free_ = start + gap_;
    ++admitted_;
    return start + latency_;
  }

  /// Earliest cycle at which a transaction arriving at @p now would depart.
  Cycle peek_departure(Cycle now) const noexcept {
    const Cycle start = next_free_ > now ? next_free_ : now;
    return start + latency_;
  }

  /// Cycles of queueing delay a transaction arriving at @p now would see.
  Cycle backlog(Cycle now) const noexcept {
    return next_free_ > now ? next_free_ - now : 0;
  }

  std::uint64_t admitted() const noexcept { return admitted_; }

 private:
  Cycle latency_;
  Cycle gap_;
  Cycle next_free_ = 0;
  std::uint64_t admitted_ = 0;
};

}  // namespace sttgpu::gpu
