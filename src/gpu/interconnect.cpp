#include "gpu/interconnect.hpp"

#include "common/error.hpp"
#include "common/telemetry.hpp"

namespace sttgpu::gpu {

Interconnect::Interconnect(const GpuConfig& config) {
  STTGPU_REQUIRE(config.num_l2_banks > 0 && config.num_sms > 0,
                 "Interconnect: need at least one SM and one bank");
  to_bank_.reserve(config.num_l2_banks);
  for (unsigned b = 0; b < config.num_l2_banks; ++b) {
    to_bank_.emplace_back(config.icnt_latency, config.icnt_service_gap);
  }
  to_sm_.reserve(config.num_sms);
  for (unsigned s = 0; s < config.num_sms; ++s) {
    to_sm_.emplace_back(config.icnt_latency, config.icnt_service_gap);
  }
  request_q_.resize(config.num_l2_banks);
  response_q_.resize(config.num_sms);
}

Cycle Interconnect::send_request(unsigned bank, const L2Request& request, Cycle now) {
  STTGPU_ASSERT(bank < to_bank_.size());
  request_express_ += to_bank_[bank].backlog(now) == 0 ? 1 : 0;
  const Cycle arrival = to_bank_[bank].admit(now);
  request_q_[bank].push_back({arrival, request});
  ++request_flits_;
  ++in_flight_;
  return arrival;
}

Cycle Interconnect::send_response(const L2Response& response, Cycle now) {
  STTGPU_ASSERT(response.sm_id < to_sm_.size());
  response_express_ += to_sm_[response.sm_id].backlog(now) == 0 ? 1 : 0;
  const Cycle arrival = to_sm_[response.sm_id].admit(now);
  response_q_[response.sm_id].push_back({arrival, response});
  ++response_flits_;
  ++in_flight_;
  return arrival;
}

Cycle Interconnect::next_event_cycle() const noexcept {
  // Arrivals are monotone per queue (each port's pipe admits in order), so
  // the earliest packet of each queue is its front.
  Cycle next = kNoCycle;
  for (const auto& q : request_q_) {
    if (!q.empty() && q.front().arrival < next) next = q.front().arrival;
  }
  for (const auto& q : response_q_) {
    if (!q.empty() && q.front().arrival < next) next = q.front().arrival;
  }
  return next;
}

void Interconnect::sample_telemetry(Telemetry& out) const {
  out.counter("icnt.request_flits", request_flits_);
  out.counter("icnt.response_flits", response_flits_);
  out.counter("icnt.request_express", request_express_);
  out.counter("icnt.response_express", response_express_);
  out.gauge("icnt.in_flight", static_cast<double>(in_flight_));
}

}  // namespace sttgpu::gpu
