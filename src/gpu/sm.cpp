#include "gpu/sm.hpp"

#include <algorithm>
#include <bit>

#include "common/error.hpp"
#include "common/telemetry.hpp"

namespace sttgpu::gpu {

using workload::MemSpace;
using workload::WarpInstr;

namespace {
/// Cycles from "last awaited response arrived" to the warp being schedulable.
constexpr Cycle kWakeLatency = 4;
}  // namespace

Sm::Sm(unsigned id, const GpuConfig& config, std::uint64_t seed)
    : id_(id), config_(&config), seed_(seed), l1_(config, seed * 7919 + id) {}

void Sm::start_kernel(const workload::KernelSpec& kernel, std::deque<unsigned> block_queue,
                      unsigned resident_blocks, std::uint64_t warps_in_grid,
                      std::uint64_t workload_seed) {
  STTGPU_REQUIRE(resident_blocks > 0, "Sm: need at least one resident block slot");
  STTGPU_ASSERT_MSG(active_warps_ == 0, "Sm: previous kernel still running");

  kernel_ = kernel;
  block_queue_ = std::move(block_queue);
  warps_in_grid_ = warps_in_grid;
  workload_seed_ = workload_seed;
  warps_per_block_ = kernel.warps_per_block();

  warps_.assign(static_cast<std::size_t>(resident_blocks) * warps_per_block_, WarpCtx{});
  block_live_warps_.assign(resident_blocks, 0);
  ready_bits_.assign((warps_.size() + 63) / 64, 0);
  ready_count_ = 0;
  stall_clean_ = false;
  while (!sleep_heap_.empty()) sleep_heap_.pop();
  last_issued_ = -1;

  for (unsigned slot = 0; slot < resident_blocks && !block_queue_.empty(); ++slot) {
    launch_block(slot, 0);
  }
}

void Sm::launch_block(unsigned slot, Cycle /*now*/) {
  STTGPU_ASSERT(!block_queue_.empty());
  const unsigned block_id = block_queue_.front();
  block_queue_.pop_front();

  for (unsigned w = 0; w < warps_per_block_; ++w) {
    const unsigned idx = slot * warps_per_block_ + w;
    WarpCtx& ctx = warps_[idx];
    const std::uint64_t warp_global =
        static_cast<std::uint64_t>(block_id) * warps_per_block_ + w;
    ctx.stream.emplace(kernel_, warp_global, warps_in_grid_, workload_seed_);
    ctx.pending.reset();
    ctx.state = WarpState::kReady;
    ctx.ready_at = 0;
    ctx.awaiting = 0;
    ctx.block_slot = slot;
    set_ready(idx);
    // A launch during cycle()'s issue loop must add the fresh warps to the
    // tail of this cycle's candidate list (they are issue candidates right
    // away); outside the loop the scratch is rebuilt before use anyway.
    issue_order_.push_back(idx);
    ++active_warps_;
  }
  block_live_warps_[slot] = warps_per_block_;
}

void Sm::wake_due(Cycle now) {
  while (!sleep_heap_.empty() && sleep_heap_.top().first <= now) {
    const unsigned warp = sleep_heap_.top().second;
    sleep_heap_.pop();
    WarpCtx& ctx = warps_[warp];
    // Stale entries can exist if a warp was re-slept; only the entry whose
    // time matches wakes it.
    if (ctx.state == WarpState::kSleeping && ctx.ready_at <= now) {
      ctx.state = WarpState::kReady;
      set_ready(warp);
    }
  }
}

void Sm::sleep_warp(unsigned warp, Cycle until) {
  WarpCtx& ctx = warps_[warp];
  clear_ready(warp);
  ctx.state = WarpState::kSleeping;
  ctx.ready_at = until;
  sleep_heap_.emplace(until, warp);
}

void Sm::finish_warp(unsigned warp, Cycle now) {
  WarpCtx& ctx = warps_[warp];
  STTGPU_ASSERT(ctx.state != WarpState::kInactive);
  clear_ready(warp);
  ctx.state = WarpState::kInactive;
  ctx.stream.reset();
  STTGPU_ASSERT(active_warps_ > 0);
  --active_warps_;
  STTGPU_ASSERT(block_live_warps_[ctx.block_slot] > 0);
  if (--block_live_warps_[ctx.block_slot] == 0 && !block_queue_.empty()) {
    launch_block(ctx.block_slot, now);
  }
}

void Sm::append_ready_range(unsigned lo, unsigned hi) {
  if (lo >= hi) return;
  const unsigned first = lo >> 6;
  const unsigned last = (hi - 1) >> 6;
  for (unsigned wi = first; wi <= last; ++wi) {
    std::uint64_t m = ready_bits_[wi];
    if (wi == first) m &= ~std::uint64_t{0} << (lo & 63u);
    const unsigned word_end = (wi + 1) * 64u;
    if (word_end > hi) m &= ~std::uint64_t{0} >> (word_end - hi);
    while (m != 0) {
      issue_order_.push_back(wi * 64u + static_cast<unsigned>(std::countr_zero(m)));
      m &= m - 1;
    }
  }
}

void Sm::cycle(Cycle now, const SendTxnFn& send) {
  // Inline fast path for the common no-sleeper-due case; wake_due's loop
  // keeps the compiler from inlining it wholesale.
  if (!sleep_heap_.empty() && sleep_heap_.top().first <= now) wake_due(now);
  if (ready_count_ == 0) {
    if (active_warps_ > 0) ++stats_.idle_cycles;
    return;
  }
  // Still stalled with nothing changed since the failed walk: re-walking
  // would fail identically (pure prechecks), so only the accounting remains.
  if (stall_clean_) {
    ++stats_.stall_cycles;
    return;
  }

  // Candidate ordering per scheduler policy, rebuilt from the ready bitmap:
  // ascending slot order IS the GTO oldest-first sort, and the circular walk
  // starting just past the last issued warp IS the LRR rotated sort. NOTE:
  // try_issue may finish a warp, which can launch a new block — launch_block
  // then appends the fresh warps to issue_order_, so they become candidates
  // at the tail of this cycle exactly as before.
  issue_order_.clear();
  const unsigned n = static_cast<unsigned>(warps_.size());
  if (config_->scheduler == SchedulerKind::kLrr && last_issued_ >= 0) {
    const unsigned start = (static_cast<unsigned>(last_issued_) + 1) % n;
    append_ready_range(start, n);
    append_ready_range(0, start);
  } else {
    append_ready_range(0, n);
  }
  bool issued = false;

  if (config_->scheduler == SchedulerKind::kGto && last_issued_ >= 0) {
    const unsigned greedy = static_cast<unsigned>(last_issued_);
    if (is_ready(greedy) && warps_[greedy].state == WarpState::kReady &&
        !issue_precheck_fails(warps_[greedy]) && try_issue(greedy, now, send)) {
      issued = true;
    }
  }
  for (std::size_t i = 0; !issued && i < issue_order_.size(); ++i) {
    const unsigned warp = issue_order_[i];
    const WarpCtx& ctx = warps_[warp];
    if (ctx.state != WarpState::kReady || issue_precheck_fails(ctx)) continue;
    if (try_issue(warp, now, send)) {
      issued = true;
      last_issued_ = static_cast<int>(warp);
    }
  }

  if (!issued && ready_count_ > 0) {
    ++stats_.stall_cycles;
    // The walk left stable state behind: every surviving candidate has its
    // pending instruction materialized and failed a pure precheck. Until a
    // wake or a response changes the inputs, skip the walk entirely. Record
    // the smallest per-kind transaction need so on_response() can tell
    // whether a freed credit can actually unstick anything: a walk failing
    // means every candidate is a non-shared load/store (anything else would
    // have issued), so the two mins cover the whole candidate set.
    stall_clean_ = true;
    stall_load_need_ = kNoNeed;
    stall_store_need_ = kNoNeed;
    for (const unsigned warp : issue_order_) {
      const WarpCtx& ctx = warps_[warp];
      if (ctx.state != WarpState::kReady) continue;
      STTGPU_ASSERT(ctx.pending.has_value());
      const WarpInstr& instr = *ctx.pending;
      const unsigned need = static_cast<unsigned>(instr.transactions.size());
      if (instr.kind == WarpInstr::Kind::kLoad) {
        stall_load_need_ = need < stall_load_need_ ? need : stall_load_need_;
      } else {
        stall_store_need_ = need < stall_store_need_ ? need : stall_store_need_;
      }
    }
  }
}

// Mirrors try_issue's structural prechecks for a warp whose pending
// instruction is already materialized: a true return means try_issue would
// fail those same checks before touching any state, so the call (and its
// overhead) can be skipped on the issue walk. Warps without a materialized
// instruction must go through try_issue (it may finish the warp or issue).
bool Sm::issue_precheck_fails(const WarpCtx& ctx) const noexcept {
  if (!ctx.pending) return false;
  const WarpInstr& instr = *ctx.pending;
  if (instr.kind == WarpInstr::Kind::kCompute || instr.space == MemSpace::kShared) {
    return false;
  }
  const unsigned n = static_cast<unsigned>(instr.transactions.size());
  if (instr.kind == WarpInstr::Kind::kLoad) {
    return inflight_loads_ + n > config_->max_outstanding_load_txn ||
           mshr_.size() + n > config_->l1_mshr_entries;
  }
  return inflight_stores_ + n > config_->max_outstanding_store_txn;
}

bool Sm::try_issue(unsigned warp, Cycle now, const SendTxnFn& send) {
  WarpCtx& ctx = warps_[warp];
  STTGPU_ASSERT(ctx.state == WarpState::kReady);

  if (!ctx.pending) {
    if (ctx.stream->done()) {
      finish_warp(warp, now);
      return false;
    }
    ctx.pending = ctx.stream->next();
  }
  const WarpInstr& instr = *ctx.pending;

  if (instr.kind == WarpInstr::Kind::kCompute) {
    ++stats_.issued_instructions;
    ctx.pending.reset();
    sleep_warp(warp, now + instr.latency);
    return true;
  }

  if (instr.space == MemSpace::kShared) {
    // Scratchpad access: entirely intra-SM; the generated latency already
    // includes bank-conflict serialization.
    ++stats_.issued_instructions;
    ++stats_.shared_accesses;
    ctx.pending.reset();
    sleep_warp(warp, now + std::max(1u, instr.latency));
    return true;
  }

  const unsigned l1_line = instr.space == MemSpace::kTexture ? config_->l1t_line
                                                             : config_->l1d_line;
  const unsigned n = static_cast<unsigned>(instr.transactions.size());
  STTGPU_ASSERT(n >= 1);

  if (instr.kind == WarpInstr::Kind::kLoad) {
    // Structural precheck: enough load credits for the worst case (every
    // transaction is a primary miss) and MSHR space for new entries.
    if (inflight_loads_ + n > config_->max_outstanding_load_txn) return false;
    if (mshr_.size() + n > config_->l1_mshr_entries) return false;

    ++stats_.issued_instructions;
    ++stats_.issued_loads;
    unsigned awaiting = 0;
    for (const Addr t : instr.transactions) {
      const Addr line = align_down(t, l1_line);
      ++stats_.load_transactions;
      const L1Outcome out = l1_.access(line, WarpInstr::Kind::kLoad, instr.space, now);
      if (out.hit) continue;
      auto* waiters = mshr_.find(line);
      if (waiters != nullptr) {
        if (waiters->size() < config_->l1_mshr_merge) {
          waiters->push_back(warp);
          ++stats_.mshr_merges;
          ++awaiting;
          continue;
        }
        // Merge list full: fall through and issue a duplicate fetch; rare.
      } else {
        mshr_[line].push_back(warp);
        ++awaiting;
      }
      const std::uint64_t id = send(line, /*is_store=*/false);
      inflight_meta_[id] = TxnMeta{line, instr.space, false, false};
      ++inflight_loads_;
    }
    ctx.pending.reset();
    if (awaiting > 0) {
      ctx.awaiting = awaiting;
      clear_ready(warp);
      ctx.state = WarpState::kBlocked;
    } else {
      sleep_warp(warp, now + config_->l1_hit_latency);
    }
    return true;
  }

  // Store.
  if (inflight_stores_ + n > config_->max_outstanding_store_txn) return false;

  ++stats_.issued_instructions;
  ++stats_.issued_stores;
  for (const Addr t : instr.transactions) {
    const Addr line = align_down(t, l1_line);
    ++stats_.store_transactions;
    const L1Outcome out = l1_.access(line, WarpInstr::Kind::kStore, instr.space, now);
    if (out.send_write) {
      const std::uint64_t id = send(line, /*is_store=*/true);
      inflight_meta_[id] = TxnMeta{line, instr.space, true, false};
      ++inflight_stores_;
    }
    for (const Addr wb : out.writebacks) send_writeback(wb, now, send);
  }
  ctx.pending.reset();
  sleep_warp(warp, now + 1);  // stores retire into the memory system
  return true;
}

void Sm::send_writeback(Addr addr, Cycle /*now*/, const SendTxnFn& send) {
  const std::uint64_t id = send(addr, /*is_store=*/true);
  inflight_meta_[id] = TxnMeta{addr, MemSpace::kLocal, true, true};
}

void Sm::process_response(const L2Response& response, Cycle now, const SendTxnFn& send) {
  const TxnMeta* it = inflight_meta_.find(response.id);
  STTGPU_ASSERT_MSG(it != nullptr, "Sm: response for unknown request");
  const TxnMeta meta = *it;
  inflight_meta_.erase(response.id);

  if (meta.is_store) {
    if (!meta.is_writeback) {
      STTGPU_ASSERT(inflight_stores_ > 0);
      --inflight_stores_;
    }
    return;
  }

  // Load fill: install in L1 and wake every merged waiter.
  STTGPU_ASSERT(inflight_loads_ > 0);
  --inflight_loads_;
  writeback_scratch_.clear();
  l1_.fill(meta.line_addr, meta.space, now, writeback_scratch_);
  for (const Addr wb : writeback_scratch_) send_writeback(wb, now, send);

  auto* mit = mshr_.find(meta.line_addr);
  if (mit != nullptr) {  // else: duplicate fetch (merge overflow) case
    const auto waiters = std::move(*mit);
    mshr_.erase(meta.line_addr);
    for (const unsigned warp : waiters) {
      WarpCtx& ctx = warps_[warp];
      STTGPU_ASSERT(ctx.state == WarpState::kBlocked && ctx.awaiting > 0);
      if (--ctx.awaiting == 0) sleep_warp(warp, now + kWakeLatency);
    }
  }
}

void Sm::recheck_stall() noexcept {
  // Completions free load/store credits and possibly MSHR entries — the
  // precheck inputs. A stalled walk unsticks only if the cheapest candidate
  // of some kind now fits at the live levels. (Writeback completions use no
  // credit and touch nothing the prechecks read, so after a writeback-only
  // batch the levels are those the failed walk already rejected and the
  // stall correctly stays clean.)
  if (!stall_clean_) return;
  if (stall_store_need_ != kNoNeed &&
      inflight_stores_ + stall_store_need_ <= config_->max_outstanding_store_txn) {
    stall_clean_ = false;
    return;
  }
  if (stall_load_need_ != kNoNeed &&
      inflight_loads_ + stall_load_need_ <= config_->max_outstanding_load_txn &&
      mshr_.size() + stall_load_need_ <= config_->l1_mshr_entries) {
    stall_clean_ = false;
  }
}

void Sm::on_response(const L2Response& response, Cycle now, const SendTxnFn& send) {
  process_response(response, now, send);
  recheck_stall();
}

void Sm::on_responses(const L2Response* responses, std::size_t n, Cycle now,
                      const SendTxnFn& send) {
  for (std::size_t i = 0; i < n; ++i) process_response(responses[i], now, send);
  if (n != 0) recheck_stall();
}

void Sm::flush_l1(Cycle now, const SendTxnFn& send) {
  for (const Addr wb : l1_.flush()) send_writeback(wb, now, send);
}

void Sm::sample_telemetry(Telemetry& out) const {
  const std::string p = "sm" + std::to_string(id_) + '.';
  out.counter(p + "instructions", stats_.issued_instructions);
  out.counter(p + "load_txns", stats_.load_transactions);
  out.counter(p + "store_txns", stats_.store_transactions);
  out.counter(p + "idle_cycles", stats_.idle_cycles);
  out.counter(p + "stall_cycles", stats_.stall_cycles);
}

}  // namespace sttgpu::gpu
