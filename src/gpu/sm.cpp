#include "gpu/sm.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/telemetry.hpp"

namespace sttgpu::gpu {

using workload::MemSpace;
using workload::WarpInstr;

namespace {
/// Cycles from "last awaited response arrived" to the warp being schedulable.
constexpr Cycle kWakeLatency = 4;
}  // namespace

Sm::Sm(unsigned id, const GpuConfig& config, std::uint64_t seed)
    : id_(id), config_(&config), seed_(seed), l1_(config, seed * 7919 + id) {}

void Sm::start_kernel(const workload::KernelSpec& kernel, std::deque<unsigned> block_queue,
                      unsigned resident_blocks, std::uint64_t warps_in_grid,
                      std::uint64_t workload_seed) {
  STTGPU_REQUIRE(resident_blocks > 0, "Sm: need at least one resident block slot");
  STTGPU_ASSERT_MSG(active_warps_ == 0, "Sm: previous kernel still running");

  kernel_ = kernel;
  block_queue_ = std::move(block_queue);
  warps_in_grid_ = warps_in_grid;
  workload_seed_ = workload_seed;
  warps_per_block_ = kernel.warps_per_block();

  warps_.assign(static_cast<std::size_t>(resident_blocks) * warps_per_block_, WarpCtx{});
  block_live_warps_.assign(resident_blocks, 0);
  ready_.clear();
  while (!sleep_heap_.empty()) sleep_heap_.pop();
  last_issued_ = -1;

  for (unsigned slot = 0; slot < resident_blocks && !block_queue_.empty(); ++slot) {
    launch_block(slot, 0);
  }
}

void Sm::launch_block(unsigned slot, Cycle /*now*/) {
  STTGPU_ASSERT(!block_queue_.empty());
  const unsigned block_id = block_queue_.front();
  block_queue_.pop_front();

  for (unsigned w = 0; w < warps_per_block_; ++w) {
    const unsigned idx = slot * warps_per_block_ + w;
    WarpCtx& ctx = warps_[idx];
    const std::uint64_t warp_global =
        static_cast<std::uint64_t>(block_id) * warps_per_block_ + w;
    ctx.stream.emplace(kernel_, warp_global, warps_in_grid_, workload_seed_);
    ctx.pending.reset();
    ctx.state = WarpState::kReady;
    ctx.ready_at = 0;
    ctx.awaiting = 0;
    ctx.block_slot = slot;
    ready_.push_back(idx);
    ++active_warps_;
  }
  block_live_warps_[slot] = warps_per_block_;
}

void Sm::wake_due(Cycle now) {
  while (!sleep_heap_.empty() && sleep_heap_.top().first <= now) {
    const unsigned warp = sleep_heap_.top().second;
    sleep_heap_.pop();
    WarpCtx& ctx = warps_[warp];
    // Stale entries can exist if a warp was re-slept; only the entry whose
    // time matches wakes it.
    if (ctx.state == WarpState::kSleeping && ctx.ready_at <= now) {
      ctx.state = WarpState::kReady;
      ready_.push_back(warp);
    }
  }
}

void Sm::sleep_warp(unsigned warp, Cycle until) {
  WarpCtx& ctx = warps_[warp];
  ctx.state = WarpState::kSleeping;
  ctx.ready_at = until;
  sleep_heap_.emplace(until, warp);
}

void Sm::finish_warp(unsigned warp, Cycle now) {
  WarpCtx& ctx = warps_[warp];
  STTGPU_ASSERT(ctx.state != WarpState::kInactive);
  ctx.state = WarpState::kInactive;
  ctx.stream.reset();
  STTGPU_ASSERT(active_warps_ > 0);
  --active_warps_;
  STTGPU_ASSERT(block_live_warps_[ctx.block_slot] > 0);
  if (--block_live_warps_[ctx.block_slot] == 0 && !block_queue_.empty()) {
    launch_block(ctx.block_slot, now);
  }
}

void Sm::cycle(Cycle now, const SendTxnFn& send) {
  wake_due(now);
  if (ready_.empty()) {
    if (active_warps_ > 0) ++stats_.idle_cycles;
    return;
  }

  // Candidate ordering per scheduler policy. NOTE: try_issue may finish a
  // warp, which can launch a new block and push fresh warps into ready_ —
  // hence the index-based loops below.
  if (config_->scheduler == SchedulerKind::kLrr && last_issued_ >= 0) {
    // Loose round-robin: rotate the priority order to start just after the
    // last issued warp.
    const unsigned pivot = static_cast<unsigned>(last_issued_);
    const unsigned n = static_cast<unsigned>(warps_.size());
    std::sort(ready_.begin(), ready_.end(), [&](unsigned a, unsigned b) {
      return (a + n - pivot - 1) % n < (b + n - pivot - 1) % n;
    });
  } else {
    // GTO: oldest-first (lowest slot); greedy preference handled below.
    std::sort(ready_.begin(), ready_.end());
  }
  bool issued = false;

  if (config_->scheduler == SchedulerKind::kGto && last_issued_ >= 0) {
    const auto it = std::find(ready_.begin(), ready_.end(),
                              static_cast<unsigned>(last_issued_));
    if (it != ready_.end() && warps_[*it].state == WarpState::kReady &&
        try_issue(*it, now, send)) {
      issued = true;
    }
  }
  for (std::size_t i = 0; !issued && i < ready_.size(); ++i) {
    const unsigned warp = ready_[i];
    if (warps_[warp].state == WarpState::kReady && try_issue(warp, now, send)) {
      issued = true;
      last_issued_ = static_cast<int>(warp);
    }
  }

  // Keep whatever is still ready (stalled warps, freshly launched warps).
  std::size_t keep = 0;
  for (std::size_t i = 0; i < ready_.size(); ++i) {
    const unsigned warp = ready_[i];
    if (warps_[warp].state == WarpState::kReady) ready_[keep++] = warp;
  }
  ready_.resize(keep);

  if (!issued && !ready_.empty()) ++stats_.stall_cycles;
}

bool Sm::try_issue(unsigned warp, Cycle now, const SendTxnFn& send) {
  WarpCtx& ctx = warps_[warp];
  STTGPU_ASSERT(ctx.state == WarpState::kReady);

  if (!ctx.pending) {
    if (ctx.stream->done()) {
      finish_warp(warp, now);
      return false;
    }
    ctx.pending = ctx.stream->next();
  }
  const WarpInstr& instr = *ctx.pending;

  if (instr.kind == WarpInstr::Kind::kCompute) {
    ++stats_.issued_instructions;
    ctx.pending.reset();
    sleep_warp(warp, now + instr.latency);
    return true;
  }

  if (instr.space == MemSpace::kShared) {
    // Scratchpad access: entirely intra-SM; the generated latency already
    // includes bank-conflict serialization.
    ++stats_.issued_instructions;
    ++stats_.shared_accesses;
    ctx.pending.reset();
    sleep_warp(warp, now + std::max(1u, instr.latency));
    return true;
  }

  const unsigned l1_line = instr.space == MemSpace::kTexture ? config_->l1t_line
                                                             : config_->l1d_line;
  const unsigned n = static_cast<unsigned>(instr.transactions.size());
  STTGPU_ASSERT(n >= 1);

  if (instr.kind == WarpInstr::Kind::kLoad) {
    // Structural precheck: enough load credits for the worst case (every
    // transaction is a primary miss) and MSHR space for new entries.
    if (inflight_loads_ + n > config_->max_outstanding_load_txn) return false;
    if (mshr_.size() + n > config_->l1_mshr_entries) return false;

    ++stats_.issued_instructions;
    ++stats_.issued_loads;
    unsigned awaiting = 0;
    for (const Addr t : instr.transactions) {
      const Addr line = align_down(t, l1_line);
      ++stats_.load_transactions;
      const L1Outcome out = l1_.access(line, WarpInstr::Kind::kLoad, instr.space, now);
      if (out.hit) continue;
      auto it = mshr_.find(line);
      if (it != mshr_.end()) {
        if (it->second.size() < config_->l1_mshr_merge) {
          it->second.push_back(warp);
          ++stats_.mshr_merges;
          ++awaiting;
          continue;
        }
        // Merge list full: fall through and issue a duplicate fetch; rare.
      } else {
        it = mshr_.emplace(line, std::vector<unsigned>{}).first;
        it->second.push_back(warp);
        ++awaiting;
      }
      const std::uint64_t id = send(line, /*is_store=*/false);
      inflight_meta_[id] = TxnMeta{line, instr.space, false, false};
      ++inflight_loads_;
    }
    ctx.pending.reset();
    if (awaiting > 0) {
      ctx.awaiting = awaiting;
      ctx.state = WarpState::kBlocked;
    } else {
      sleep_warp(warp, now + config_->l1_hit_latency);
    }
    return true;
  }

  // Store.
  if (inflight_stores_ + n > config_->max_outstanding_store_txn) return false;

  ++stats_.issued_instructions;
  ++stats_.issued_stores;
  for (const Addr t : instr.transactions) {
    const Addr line = align_down(t, l1_line);
    ++stats_.store_transactions;
    const L1Outcome out = l1_.access(line, WarpInstr::Kind::kStore, instr.space, now);
    if (out.send_write) {
      const std::uint64_t id = send(line, /*is_store=*/true);
      inflight_meta_[id] = TxnMeta{line, instr.space, true, false};
      ++inflight_stores_;
    }
    for (const Addr wb : out.writebacks) send_writeback(wb, now, send);
  }
  ctx.pending.reset();
  sleep_warp(warp, now + 1);  // stores retire into the memory system
  return true;
}

void Sm::send_writeback(Addr addr, Cycle /*now*/, const SendTxnFn& send) {
  const std::uint64_t id = send(addr, /*is_store=*/true);
  inflight_meta_[id] = TxnMeta{addr, MemSpace::kLocal, true, true};
}

void Sm::on_response(const L2Response& response, Cycle now, const SendTxnFn& send) {
  const auto it = inflight_meta_.find(response.id);
  STTGPU_ASSERT_MSG(it != inflight_meta_.end(), "Sm: response for unknown request");
  const TxnMeta meta = it->second;
  inflight_meta_.erase(it);

  if (meta.is_store) {
    if (!meta.is_writeback) {
      STTGPU_ASSERT(inflight_stores_ > 0);
      --inflight_stores_;
    }
    return;
  }

  // Load fill: install in L1 and wake every merged waiter.
  STTGPU_ASSERT(inflight_loads_ > 0);
  --inflight_loads_;
  std::vector<Addr> writebacks;
  l1_.fill(meta.line_addr, meta.space, now, writebacks);
  for (const Addr wb : writebacks) send_writeback(wb, now, send);

  const auto mit = mshr_.find(meta.line_addr);
  if (mit == mshr_.end()) return;  // duplicate fetch (merge overflow) case
  const std::vector<unsigned> waiters = std::move(mit->second);
  mshr_.erase(mit);
  for (const unsigned warp : waiters) {
    WarpCtx& ctx = warps_[warp];
    STTGPU_ASSERT(ctx.state == WarpState::kBlocked && ctx.awaiting > 0);
    if (--ctx.awaiting == 0) sleep_warp(warp, now + kWakeLatency);
  }
}

void Sm::flush_l1(Cycle now, const SendTxnFn& send) {
  for (const Addr wb : l1_.flush()) send_writeback(wb, now, send);
}

void Sm::sample_telemetry(Telemetry& out) const {
  const std::string p = "sm" + std::to_string(id_) + '.';
  out.counter(p + "instructions", stats_.issued_instructions);
  out.counter(p + "load_txns", stats_.load_transactions);
  out.counter(p + "store_txns", stats_.store_transactions);
  out.counter(p + "idle_cycles", stats_.idle_cycles);
  out.counter(p + "stall_cycles", stats_.stall_cycles);
}

}  // namespace sttgpu::gpu
