// On-chip interconnect between the SM clusters and the L2 banks.
//
// The paper's configuration uses a butterfly network; at the abstraction
// level of this simulator what matters is per-port bandwidth and pipeline
// latency, so each direction is modelled as a ThroughputPipe per L2-bank
// port (requests) and per SM port (responses), plus FIFO delivery queues
// with backpressure toward the banks.
#pragma once

#include <cstdint>
#include <vector>

#include "common/ring_queue.hpp"
#include "common/types.hpp"
#include "gpu/gpu_config.hpp"
#include "gpu/pipe.hpp"
#include "gpu/request.hpp"

namespace sttgpu {
class Telemetry;
}

namespace sttgpu::gpu {

class Interconnect {
 public:
  explicit Interconnect(const GpuConfig& config);

  /// SM -> bank direction. The network itself always accepts (the SM-side
  /// credit system bounds in-flight traffic); delivery to a bank is gated
  /// by the bank's accepting() via deliver_requests(). Returns the packet's
  /// arrival cycle at the bank so the caller can schedule its next event.
  Cycle send_request(unsigned bank, const L2Request& request, Cycle now);

  /// Pops requests that have arrived at @p bank by @p now, while @p accepting
  /// allows; returns them in arrival order.
  template <typename AcceptFn, typename DeliverFn>
  void deliver_requests(unsigned bank, Cycle now, AcceptFn&& accepting,
                        DeliverFn&& deliver) {
    auto& q = request_q_[bank];
    while (!q.empty() && q.front().arrival <= now && accepting()) {
      deliver(q.front().req);
      q.pop_front();
      --in_flight_;
    }
  }

  /// Bank -> SM direction. Returns the arrival cycle at the SM.
  Cycle send_response(const L2Response& response, Cycle now);

  /// Pops responses that have arrived at SM @p sm by @p now.
  template <typename DeliverFn>
  void deliver_responses(unsigned sm, Cycle now, DeliverFn&& deliver) {
    auto& q = response_q_[sm];
    while (!q.empty() && q.front().arrival <= now) {
      deliver(q.front().resp);
      q.pop_front();
      --in_flight_;
    }
  }

  /// No packet anywhere in the network. O(1): a counter maintained on
  /// send/deliver, instead of scanning every per-bank/per-SM queue on every
  /// drain cycle.
  bool idle() const noexcept { return in_flight_ == 0; }

  /// Earliest absolute arrival cycle over all queued packets; kNoCycle when
  /// the network is empty. An undelivered packet whose arrival has already
  /// passed (bank backpressure) reports that past cycle, which correctly
  /// blocks fast-forwarding over it.
  Cycle next_event_cycle() const noexcept;

  /// Earliest arrival at bank @p bank (its queue's front — arrivals are
  /// monotone per queue); kNoCycle when empty. O(1) peek for per-bank
  /// event lanes.
  Cycle next_request_arrival(unsigned bank) const noexcept {
    return request_q_[bank].empty() ? kNoCycle : request_q_[bank].front().arrival;
  }

  /// Earliest arrival at SM @p sm; kNoCycle when its queue is empty.
  Cycle next_response_arrival(unsigned sm) const noexcept {
    return response_q_[sm].empty() ? kNoCycle : response_q_[sm].front().arrival;
  }

  /// Contributes network counter tracks and the in-flight gauge to the open
  /// telemetry frame.
  void sample_telemetry(Telemetry& out) const;

  std::uint64_t request_flits() const noexcept { return request_flits_; }
  std::uint64_t response_flits() const noexcept { return response_flits_; }

  // Express-path effectiveness: a send whose port had zero backlog at admit
  // got the closed-form ("express") delivery schedule; one admitted behind
  // other traffic was queued by the bandwidth model. Pure contention
  // properties of the simulated run — identical at every hotpath level.
  std::uint64_t request_express() const noexcept { return request_express_; }
  std::uint64_t request_queued() const noexcept {
    return request_flits_ - request_express_;
  }
  std::uint64_t response_express() const noexcept { return response_express_; }
  std::uint64_t response_queued() const noexcept {
    return response_flits_ - response_express_;
  }

 private:
  struct TimedRequest {
    Cycle arrival;
    L2Request req;
  };
  struct TimedResponse {
    Cycle arrival;
    L2Response resp;
  };

  std::vector<ThroughputPipe> to_bank_;
  std::vector<ThroughputPipe> to_sm_;
  std::vector<RingQueue<TimedRequest>> request_q_;    // per bank
  std::vector<RingQueue<TimedResponse>> response_q_;  // per SM
  std::uint64_t request_flits_ = 0;
  std::uint64_t response_flits_ = 0;
  std::uint64_t request_express_ = 0;   ///< admits that saw zero port backlog
  std::uint64_t response_express_ = 0;
  std::uint64_t in_flight_ = 0;  ///< packets sent but not yet delivered
};

}  // namespace sttgpu::gpu
