// On-chip interconnect between the SM clusters and the L2 banks.
//
// The paper's configuration uses a butterfly network; at the abstraction
// level of this simulator what matters is per-port bandwidth and pipeline
// latency, so each direction is modelled as a ThroughputPipe per L2-bank
// port (requests) and per SM port (responses), plus FIFO delivery queues
// with backpressure toward the banks.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "common/types.hpp"
#include "gpu/gpu_config.hpp"
#include "gpu/pipe.hpp"
#include "gpu/request.hpp"

namespace sttgpu {
class Telemetry;
}

namespace sttgpu::gpu {

class Interconnect {
 public:
  explicit Interconnect(const GpuConfig& config);

  /// SM -> bank direction. The network itself always accepts (the SM-side
  /// credit system bounds in-flight traffic); delivery to a bank is gated
  /// by the bank's accepting() via deliver_requests().
  void send_request(unsigned bank, const L2Request& request, Cycle now);

  /// Pops requests that have arrived at @p bank by @p now, while @p accepting
  /// allows; returns them in arrival order.
  template <typename AcceptFn, typename DeliverFn>
  void deliver_requests(unsigned bank, Cycle now, AcceptFn&& accepting,
                        DeliverFn&& deliver) {
    auto& q = request_q_[bank];
    while (!q.empty() && q.front().arrival <= now && accepting()) {
      deliver(q.front().req);
      q.pop_front();
      --in_flight_;
    }
  }

  /// Bank -> SM direction.
  void send_response(const L2Response& response, Cycle now);

  /// Pops responses that have arrived at SM @p sm by @p now.
  template <typename DeliverFn>
  void deliver_responses(unsigned sm, Cycle now, DeliverFn&& deliver) {
    auto& q = response_q_[sm];
    while (!q.empty() && q.front().arrival <= now) {
      deliver(q.front().resp);
      q.pop_front();
      --in_flight_;
    }
  }

  /// No packet anywhere in the network. O(1): a counter maintained on
  /// send/deliver, instead of scanning every per-bank/per-SM queue on every
  /// drain cycle.
  bool idle() const noexcept { return in_flight_ == 0; }

  /// Earliest absolute arrival cycle over all queued packets; kNoCycle when
  /// the network is empty. An undelivered packet whose arrival has already
  /// passed (bank backpressure) reports that past cycle, which correctly
  /// blocks fast-forwarding over it.
  Cycle next_event_cycle() const noexcept;

  /// Contributes network counter tracks and the in-flight gauge to the open
  /// telemetry frame.
  void sample_telemetry(Telemetry& out) const;

  std::uint64_t request_flits() const noexcept { return request_flits_; }
  std::uint64_t response_flits() const noexcept { return response_flits_; }

 private:
  struct TimedRequest {
    Cycle arrival;
    L2Request req;
  };
  struct TimedResponse {
    Cycle arrival;
    L2Response resp;
  };

  std::vector<ThroughputPipe> to_bank_;
  std::vector<ThroughputPipe> to_sm_;
  std::vector<std::deque<TimedRequest>> request_q_;    // per bank
  std::vector<std::deque<TimedResponse>> response_q_;  // per SM
  std::uint64_t request_flits_ = 0;
  std::uint64_t response_flits_ = 0;
  std::uint64_t in_flight_ = 0;  ///< packets sent but not yet delivered
};

}  // namespace sttgpu::gpu
