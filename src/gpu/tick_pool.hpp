// Persistent worker pool for per-cycle tick batching.
//
// sim::run_jobs (executor.hpp) spawns fresh threads per call, which is fine
// for minutes-long matrix jobs but useless at per-cycle granularity. This
// pool keeps its workers alive across run() calls: each call publishes a
// task batch under one mutex, wakes the workers, and the items are claimed
// off a shared atomic index. run() returns only when every item finished,
// so the caller can treat the batch as one sequential phase.
//
// Determinism contract: the pool decides only WHICH THREAD runs an item,
// never whether or with what arguments — callers must pass items whose
// effects are confined to disjoint state (e.g. one L2 bank + its private
// DRAM channel each). Under that contract results are bit-identical to a
// sequential loop in any interleaving.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sttgpu::gpu {

class TickPool {
 public:
  /// Runs batches on @p workers threads total (the calling thread counts as
  /// one of them, so `workers` == 1 means no threads are spawned at all).
  explicit TickPool(unsigned workers);
  ~TickPool();

  TickPool(const TickPool&) = delete;
  TickPool& operator=(const TickPool&) = delete;

  /// Runs fn(i) for every i in [0, n), distributed over the workers and the
  /// calling thread; blocks until all n items completed. Exceptions thrown
  /// by fn on a worker are rethrown here (first one wins).
  void run(unsigned n, const std::function<void(unsigned)>& fn);

  unsigned workers() const noexcept { return workers_; }

 private:
  void worker_loop();
  void work_off(const std::function<void(unsigned)>& fn, unsigned n);

  unsigned workers_;
  std::vector<std::thread> threads_;

  std::mutex mu_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  std::uint64_t generation_ = 0;  ///< bumped per batch; workers wait on it
  bool stop_ = false;

  // Current batch. fn_/batch_size_ are published under mu_ with the
  // generation bump; next_item_ is the shared claim counter. in_batch_
  // counts workers still inside the batch — run() returns only once it
  // drops to zero, so a straggler can never claim items (or dereference
  // fn_) across a batch boundary.
  const std::function<void(unsigned)>* fn_ = nullptr;
  unsigned batch_size_ = 0;
  std::atomic<unsigned> next_item_{0};
  unsigned done_items_ = 0;   ///< guarded by mu_
  unsigned in_batch_ = 0;     ///< guarded by mu_
  std::exception_ptr first_error_;
};

}  // namespace sttgpu::gpu
