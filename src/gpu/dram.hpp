// Off-chip DRAM channel model: one channel per memory controller / L2 bank
// (Table 2: each L2 bank has a point-to-point link to its own controller).
//
// Bandwidth is a ThroughputPipe (per-256B service gap); the access latency
// on top is either a fixed closed-page latency (default) or, in open-page
// mode, a row-buffer model where hits to the channel's last-activated row
// are faster. Reads complete with a callback to the owning L2 bank;
// writebacks are fire and forget (they still consume bandwidth and move the
// open row).
#pragma once

#include <cstdint>
#include <vector>
#include <functional>

#include "common/types.hpp"
#include "gpu/gpu_config.hpp"
#include "gpu/pipe.hpp"

namespace sttgpu {
class Telemetry;
}

namespace sttgpu::gpu {

class DramChannel {
 public:
  using ReadCallback = std::function<void(std::uint64_t cookie, Cycle now)>;

  DramChannel(const GpuConfig& config, ReadCallback on_read_done);

  /// Issues a line read; @p cookie is returned through the callback.
  void read(Addr addr, std::uint64_t cookie, Cycle now);

  /// Issues a writeback (no completion callback).
  void write(Addr addr, Cycle now);

  /// Delivers read completions due at or before @p now. Inline single
  /// compare when nothing is due (the earliest pending completion is
  /// cached); the delivery scan stays out of line.
  void tick(Cycle now) {
    if (now < min_ready_) return;
    deliver_due(now);
  }

  /// Earliest absolute cycle at which this channel has a completion to
  /// deliver; kNoCycle when nothing is pending. O(1): maintained on read()
  /// and recomputed when tick() delivers.
  Cycle next_event_cycle() const noexcept { return min_ready_; }

  /// Contributes this channel's counter tracks ("dramN.reads", ...) to the
  /// open telemetry frame; per-interval bandwidth is the increment times the
  /// line size over the interval's wall time.
  void sample_telemetry(unsigned channel, Telemetry& out) const;

  std::uint64_t reads() const noexcept { return reads_; }
  std::uint64_t writes() const noexcept { return writes_; }
  /// Reads admitted with zero channel backlog — the closed-form ("express")
  /// completion schedule; the rest queued behind earlier transfers. A pure
  /// contention property of the run, identical at every hotpath level.
  std::uint64_t express_reads() const noexcept { return express_reads_; }
  std::uint64_t queued_reads() const noexcept { return reads_ - express_reads_; }
  std::uint64_t row_hits() const noexcept { return row_hits_; }
  std::uint64_t row_misses() const noexcept { return row_misses_; }
  bool idle() const noexcept { return pending_.empty(); }

 private:
  struct Pending {
    Cycle ready;
    std::uint64_t cookie;
  };

  Cycle access_latency(Addr addr) noexcept;
  void deliver_due(Cycle now);

  ThroughputPipe pipe_;
  ReadCallback on_read_done_;
  std::vector<Pending> pending_;  // small unordered window (open-page reorders)
  Cycle min_ready_ = kNoCycle;    // min over pending_ ready cycles
  std::uint64_t reads_ = 0;
  std::uint64_t writes_ = 0;
  std::uint64_t express_reads_ = 0;

  // Row-buffer state (open-page mode)
  bool open_page_ = false;
  std::uint64_t row_bytes_ = 2048;
  Cycle miss_latency_ = 220;
  Cycle hit_latency_ = 140;
  bool have_open_row_ = false;
  Addr open_row_ = 0;
  std::uint64_t row_hits_ = 0;
  std::uint64_t row_misses_ = 0;
};

}  // namespace sttgpu::gpu
