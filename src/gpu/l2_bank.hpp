// Abstract interface every L2 bank implementation plugs into the GPU.
//
// Implementations (src/sttl2):
//   * UniformL2Bank  — conventional single-array bank; with SRAM cells it is
//     the paper's SRAM baseline, with 10-year STT cells the naive "STT-RAM
//     baseline" (4x capacity);
//   * TwoPartL2Bank  — the paper's proposed LR + HR architecture.
//
// Contract: the GPU pushes requests with enqueue() when accepting() is
// true, calls tick(now) once per simulated cycle, and drains completed
// responses. Banks talk to their private DRAM channel directly (injected at
// construction) and charge dynamic energy to the injected EnergyLedger.
#pragma once

#include <cstdint>
#include <ostream>
#include <vector>

#include "common/types.hpp"
#include "gpu/request.hpp"
#include "power/energy.hpp"

namespace sttgpu {
class Telemetry;
}

namespace sttgpu::gpu {

class L2Bank {
 public:
  virtual ~L2Bank() = default;

  /// True while the bank's input queue has room.
  virtual bool accepting() const = 0;

  /// Hands the bank a request (precondition: accepting()).
  virtual void enqueue(const L2Request& request, Cycle now) = 0;

  /// Advances internal state to @p now (process input, fills, refresh, ...).
  virtual void tick(Cycle now) = 0;

  /// Appends responses that completed at or before @p now to @p out.
  virtual void drain_responses(Cycle now, std::vector<L2Response>& out) = 0;

  /// Completion callback for a DRAM line read the bank issued on its
  /// private channel (wired up by the GPU at construction).
  virtual void on_dram_read_done(std::uint64_t cookie, Cycle now) = 0;

  /// True when the bank holds no in-flight work (used for run termination).
  virtual bool idle() const = 0;

  /// Earliest absolute cycle at which this bank has something to do
  /// (queued input, a response maturing, a refresh/expiry deadline...).
  /// Returning a cycle <= now means "tick me every cycle"; kNoCycle means
  /// nothing is scheduled. The default is the always-safe 0, which simply
  /// disables fast-forward around implementations that don't model events.
  virtual Cycle next_event_cycle() const { return 0; }

  /// Interval-telemetry hookup (optional; default: banks emit nothing).
  /// attach_telemetry is called once by the GPU before the run starts so
  /// implementations can mark timeline events (refresh storms, fault data
  /// loss) as they happen; sample_telemetry is called inside an open frame
  /// at every interval boundary and contributes this bank's counter/gauge
  /// samples. Both must be purely observational.
  virtual void attach_telemetry(Telemetry* /*sink*/) {}
  virtual void sample_telemetry(Cycle /*now*/, Telemetry& /*out*/) {}

  /// Writes a one-line diagnostic summary of in-flight state (input-queue
  /// depth, outstanding fills, buffered responses, swap-buffer fill) for
  /// watchdog / cancellation dumps. Purely observational.
  virtual void describe_state(std::ostream& os, Cycle /*now*/) const {
    os << "(no state reported)";
  }

  virtual const L2BankStats& stats() const = 0;

  /// Dynamic energy charged by this bank during the run.
  virtual const power::EnergyLedger& energy() const = 0;

  /// Static leakage of this bank's arrays (for the total-power report).
  virtual Watt leakage_w() const = 0;
};

}  // namespace sttgpu::gpu
