#include "gpu/l1_complex.hpp"

#include "common/error.hpp"

namespace sttgpu::gpu {

namespace {

cache::CacheGeometry l1d_geom(const GpuConfig& c) {
  return {c.l1d_size, c.l1d_assoc, c.l1d_line};
}
cache::CacheGeometry l1c_geom(const GpuConfig& c) {
  return {c.l1c_size, c.l1c_assoc, c.l1d_line};
}
cache::CacheGeometry l1t_geom(const GpuConfig& c) {
  return {c.l1t_size, c.l1t_assoc, c.l1t_line};
}

cache::CachePolicies writeback_policies() {
  // Local-data policy; loads always allocate.
  return {cache::WriteHitPolicy::kWriteBack, cache::WriteMissPolicy::kAllocate,
          cache::ReplacementKind::kLru};
}

}  // namespace

L1Complex::L1Complex(const GpuConfig& config, std::uint64_t seed)
    : l1d_(l1d_geom(config), writeback_policies(), seed),
      l1c_(l1c_geom(config), writeback_policies(), seed + 1),
      l1t_(l1t_geom(config), writeback_policies(), seed + 2) {}

cache::SetAssocCache& L1Complex::cache_for(workload::MemSpace space) {
  switch (space) {
    case workload::MemSpace::kConstant: return l1c_;
    case workload::MemSpace::kTexture: return l1t_;
    default: return l1d_;
  }
}

L1Outcome L1Complex::access(Addr addr, workload::WarpInstr::Kind kind,
                            workload::MemSpace space, Cycle now) {
  using Kind = workload::WarpInstr::Kind;
  L1Outcome out;
  cache::SetAssocCache& c = cache_for(space);

  if (kind == Kind::kLoad) {
    // Loads allocate on miss once the fill returns; the access here only
    // decides hit/miss (the fill happens via fill() on response).
    if (c.contains(addr)) {
      const auto r = c.access(addr, cache::AccessKind::kLoad, now);
      STTGPU_ASSERT(r.hit);
      out.hit = true;
      return out;
    }
    // Count the miss without perturbing the array until the line returns.
    out.send_read = true;
    (void)c.counters();  // miss is recorded on fill()
    return out;
  }

  // Stores.
  STTGPU_ASSERT(kind == Kind::kStore);
  if (space == workload::MemSpace::kGlobal) {
    // Fig. 1b: write-evict on hit, write-no-allocate on miss; both forward.
    (void)c.invalidate_line(addr);  // global lines are never dirty in L1
    out.send_write = true;
    return out;
  }

  // Local data: write-back, write-allocate (no fetch-on-write: the model
  // treats a local store miss as allocating the line directly).
  const auto r = c.access(addr, cache::AccessKind::kStore, now);
  out.hit = r.hit;
  if (r.writeback) out.writebacks.push_back(r.writeback_addr);
  return out;
}

void L1Complex::fill(Addr addr, workload::MemSpace space, Cycle now,
                     SmallVec<Addr, 2>& writebacks) {
  cache::SetAssocCache& c = cache_for(space);
  // Record the load miss in the counters via a regular access, then the
  // resulting fill happens inside access() itself (allocate-on-miss).
  const auto r = c.access(addr, cache::AccessKind::kLoad, now);
  if (r.writeback) writebacks.push_back(r.writeback_addr);
}

std::vector<Addr> L1Complex::flush() {
  std::vector<Addr> dirty;
  for (cache::SetAssocCache* c : {&l1d_, &l1c_, &l1t_}) {
    cache::TagArray& tags = c->tags();
    std::vector<std::pair<std::uint64_t, unsigned>> valid;
    tags.for_each_valid([&](std::uint64_t set, unsigned way, cache::LineMeta& line) {
      if (line.dirty) dirty.push_back(tags.addr_of(set, way));
      valid.emplace_back(set, way);
    });
    for (const auto& [set, way] : valid) {
      if (tags.valid(set, way)) tags.invalidate(tags.addr_of(set, way), way);
    }
  }
  return dirty;
}

}  // namespace sttgpu::gpu
