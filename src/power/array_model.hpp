// CACTI-lite: an analytic area / energy / latency / leakage model for cache
// arrays built from a given cell technology.
//
// The paper used CACTI 6.5 "slightly modified for STT-RAM". We reproduce the
// quantities its evaluation depends on rather than CACTI's full internals:
//
//   * array area (data + SRAM tag), used for the equal-area configurations
//     C1/C2/C3 (Table 2);
//   * per-access dynamic energy, split into tag-probe and data-line terms so
//     the sequential-search optimisation has something to save;
//   * access latency = size-dependent periphery (decode + wordline + sense,
//     scaling with sqrt of the bank size as in CACTI's H-tree) + the cell's
//     intrinsic read/write pulse;
//   * leakage power (per-bit dominated for SRAM, periphery-only for STT).
//
// All technology constants live in this header, documented, so the model is
// auditable and unit-testable for the *relations* the paper relies on
// (4x density, leakage-dominated SRAM, retention-dependent write cost).
#pragma once

#include <cstdint>

#include "common/units.hpp"
#include "nvm/cell.hpp"

namespace sttgpu::power {

/// Technology constants for the 40 nm node used throughout.
struct TechConstants {
  double feature_nm = 40.0;       ///< feature size F
  double wiring_overhead = 1.35;  ///< array area overhead (drivers, spacing)
  /// Peripheral dynamic energy per access: e = periph_pj_per_sqrt_kb * sqrt(KB).
  double periph_pj_per_sqrt_kb = 1.1;
  /// Peripheral latency per access: t = periph_ns_per_sqrt_64kb * sqrt(bytes/64KB).
  double periph_ns_per_sqrt_64kb = 0.8;
  /// Peripheral leakage as a fraction of the cell-array leakage, plus a
  /// capacity-independent floor per bank (sense amps, control).
  double periph_leak_fraction = 0.10;
  double periph_leak_floor_mw = 1.2;
  /// Physical address width assumed when sizing tags.
  unsigned address_bits = 40;
  /// Per-line state bits beyond the tag (valid, dirty, LRU, ...).
  unsigned state_bits_per_line = 8;
};

/// Geometry of one cache bank to be costed.
struct ArraySpec {
  std::uint64_t capacity_bytes = 0;
  unsigned associativity = 1;
  unsigned line_bytes = 256;
  nvm::CellParams data_cell;                 ///< technology of the data array
  nvm::CellParams tag_cell = nvm::sram_cell();  ///< tags stay SRAM (paper §5)
  /// Extra per-line bookkeeping bits held in the tag array (e.g. the paper's
  /// 2-bit / 4-bit retention counters); costed at tag-cell rates.
  unsigned extra_tag_bits_per_line = 0;
};

/// Fully evaluated costs for one bank.
struct ArrayCosts {
  // Geometry
  std::uint64_t sets = 0;
  unsigned tag_bits_per_line = 0;

  // Area
  MilliMeter2 data_area_mm2 = 0.0;
  MilliMeter2 tag_area_mm2 = 0.0;
  MilliMeter2 total_area_mm2 = 0.0;

  // Dynamic energy per event
  PicoJoule tag_probe_pj = 0.0;    ///< read all ways' tags of one set
  PicoJoule tag_update_pj = 0.0;   ///< write one tag entry (insert/state change)
  PicoJoule data_read_pj = 0.0;    ///< read one full line
  PicoJoule data_write_pj = 0.0;   ///< write one full line

  // Latency per event (periphery + cell pulse)
  NanoSec tag_latency_ns = 0.0;
  NanoSec data_read_latency_ns = 0.0;
  NanoSec data_write_latency_ns = 0.0;

  // Static
  Watt leakage_w = 0.0;
};

/// Evaluates the CACTI-lite model for one bank.
ArrayCosts evaluate_array(const ArraySpec& spec, const TechConstants& tech = TechConstants{});

/// Area of a register file of @p num_registers 32-bit SRAM registers (mm^2).
/// Used for the Table 2 equal-area conversions (saved L2 area -> registers).
MilliMeter2 register_file_area_mm2(std::uint64_t num_registers,
                                   const TechConstants& tech = TechConstants{});

/// Inverse of register_file_area_mm2: how many 32-bit registers fit in
/// @p area_mm2 of SRAM (floored).
std::uint64_t registers_for_area(MilliMeter2 area_mm2,
                                 const TechConstants& tech = TechConstants{});

}  // namespace sttgpu::power
