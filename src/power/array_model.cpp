#include "power/array_model.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/types.hpp"

namespace sttgpu::power {

namespace {

MilliMeter2 bits_area_mm2(double bits, double area_f2_per_bit, const TechConstants& tech) {
  const double f_m = tech.feature_nm * 1e-9;
  const double area_m2 = bits * area_f2_per_bit * f_m * f_m * tech.wiring_overhead;
  return area_m2 * 1e6;  // m^2 -> mm^2
}

PicoJoule periph_energy_pj(double bytes, const TechConstants& tech) {
  return tech.periph_pj_per_sqrt_kb * std::sqrt(bytes / 1024.0);
}

NanoSec periph_latency_ns(double bytes, const TechConstants& tech) {
  return tech.periph_ns_per_sqrt_64kb * std::sqrt(bytes / 65536.0);
}

}  // namespace

ArrayCosts evaluate_array(const ArraySpec& spec, const TechConstants& tech) {
  STTGPU_REQUIRE(spec.capacity_bytes > 0, "ArraySpec: capacity must be positive");
  STTGPU_REQUIRE(spec.line_bytes > 0 && is_pow2(spec.line_bytes),
                 "ArraySpec: line size must be a power of two");
  STTGPU_REQUIRE(spec.associativity > 0, "ArraySpec: associativity must be positive");
  const std::uint64_t lines = spec.capacity_bytes / spec.line_bytes;
  STTGPU_REQUIRE(lines % spec.associativity == 0,
                 "ArraySpec: capacity/line must be a multiple of associativity");

  ArrayCosts c;
  c.sets = lines / spec.associativity;

  // Tag entry width: address tag + state. A fully-associative array indexes
  // nothing, so the whole line address is tag.
  const unsigned index_bits = c.sets > 1 ? log2_floor(c.sets) : 0;
  const unsigned offset_bits = log2_exact(spec.line_bytes);
  STTGPU_REQUIRE(tech.address_bits > index_bits + offset_bits,
                 "ArraySpec: address too narrow for this geometry");
  c.tag_bits_per_line = tech.address_bits - index_bits - offset_bits +
                        tech.state_bits_per_line + spec.extra_tag_bits_per_line;

  const double data_bits = static_cast<double>(spec.capacity_bytes) * 8.0;
  const double tag_bits = static_cast<double>(lines) * c.tag_bits_per_line;
  c.data_area_mm2 = bits_area_mm2(data_bits, spec.data_cell.area_f2_per_bit, tech);
  c.tag_area_mm2 = bits_area_mm2(tag_bits, spec.tag_cell.area_f2_per_bit, tech);
  c.total_area_mm2 = c.data_area_mm2 + c.tag_area_mm2;

  // --- dynamic energy ---
  const double line_bits = spec.line_bytes * 8.0;
  const double tag_bytes = tag_bits / 8.0;
  // A probe reads every way's tag entry of one set.
  c.tag_probe_pj = spec.associativity * c.tag_bits_per_line * spec.tag_cell.read_energy_pj_per_bit +
                   periph_energy_pj(tag_bytes, tech);
  c.tag_update_pj = c.tag_bits_per_line * spec.tag_cell.write_energy_pj_per_bit +
                    periph_energy_pj(tag_bytes, tech);
  c.data_read_pj = line_bits * spec.data_cell.read_energy_pj_per_bit +
                   periph_energy_pj(static_cast<double>(spec.capacity_bytes), tech);
  c.data_write_pj = line_bits * spec.data_cell.write_energy_pj_per_bit +
                    periph_energy_pj(static_cast<double>(spec.capacity_bytes), tech);

  // --- latency ---
  c.tag_latency_ns = periph_latency_ns(tag_bytes, tech) + spec.tag_cell.read_latency_ns;
  c.data_read_latency_ns =
      periph_latency_ns(static_cast<double>(spec.capacity_bytes), tech) +
      spec.data_cell.read_latency_ns;
  c.data_write_latency_ns =
      periph_latency_ns(static_cast<double>(spec.capacity_bytes), tech) +
      spec.data_cell.write_latency_ns;

  // --- leakage ---
  const double cell_leak_w = data_bits * spec.data_cell.leakage_nw_per_bit * 1e-9 +
                             tag_bits * spec.tag_cell.leakage_nw_per_bit * 1e-9;
  c.leakage_w = cell_leak_w * (1.0 + tech.periph_leak_fraction) +
                tech.periph_leak_floor_mw * 1e-3;
  return c;
}

MilliMeter2 register_file_area_mm2(std::uint64_t num_registers, const TechConstants& tech) {
  // Register files are SRAM-based; multiported cells are bigger than the 6T
  // cache cell — use 1.6x the cache-SRAM cell area per bit.
  const double bits = static_cast<double>(num_registers) * 32.0;
  return bits_area_mm2(bits, nvm::sram_cell().area_f2_per_bit * 1.6, tech);
}

std::uint64_t registers_for_area(MilliMeter2 area_mm2, const TechConstants& tech) {
  if (area_mm2 <= 0.0) return 0;
  const MilliMeter2 one = register_file_area_mm2(1, tech);
  return static_cast<std::uint64_t>(area_mm2 / one);
}

}  // namespace sttgpu::power
