// Dynamic-energy accounting and power reporting.
//
// Components charge events to an EnergyLedger under named categories
// ("l2.tag_probe", "l2.data_write", "l2.refresh", ...). At the end of a run
// PowerReport converts accumulated energy plus static leakage into the
// dynamic / leakage / total wattages the paper's Figures 8b and 8c plot.
#pragma once

#include <map>
#include <string>

#include "common/units.hpp"

namespace sttgpu::power {

class EnergyLedger {
 public:
  void add(const std::string& category, PicoJoule pj) {
    categories_[category] += pj;
    total_pj_ += pj;
  }

  PicoJoule total_pj() const noexcept { return total_pj_; }
  PicoJoule category_pj(const std::string& category) const;
  const std::map<std::string, PicoJoule>& categories() const noexcept { return categories_; }

  void merge(const EnergyLedger& other);
  void reset();

 private:
  std::map<std::string, PicoJoule> categories_;
  PicoJoule total_pj_ = 0.0;
};

/// Power summary over a run of known duration.
struct PowerReport {
  Watt dynamic_w = 0.0;
  Watt leakage_w = 0.0;
  Watt total_w = 0.0;
  double runtime_s = 0.0;

  static PowerReport from_run(const EnergyLedger& ledger, Watt leakage_w, double runtime_s);
};

}  // namespace sttgpu::power
