// Dynamic-energy accounting and power reporting.
//
// Components charge events to an EnergyLedger under named categories
// ("l2.tag_probe", "l2.data_write", "l2.refresh", ...). At the end of a run
// PowerReport converts accumulated energy plus static leakage into the
// dynamic / leakage / total wattages the paper's Figures 8b and 8c plot.
//
// Hot-path interning: the per-access charge sites (the L2 banks) resolve
// their category names to dense EnergyId handles once at construction and
// charge through add(EnergyId, pj) — a vector index, no string hashing or
// tree walk per access. All charging goes through EnergyId handles; the
// string-keyed readers (category_pj, categories) remain for reports.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/units.hpp"

namespace sttgpu::power {

/// Dense handle for one ledger category (valid only for the ledger that
/// interned it).
using EnergyId = std::uint32_t;

class EnergyLedger {
 public:
  /// Resolves @p category to a dense id, creating it (at 0 pJ) on first use.
  /// Intended to be called once per category at component construction.
  EnergyId intern(const std::string& category) {
    const auto it = index_.find(category);
    if (it != index_.end()) return it->second;
    const EnergyId id = static_cast<EnergyId>(values_.size());
    index_.emplace(category, id);
    names_.push_back(category);
    values_.push_back(0.0);
    return id;
  }

  /// Hot path: charge through a pre-interned handle.
  void add(EnergyId id, PicoJoule pj) noexcept {
    values_[id] += pj;
    total_pj_ += pj;
  }

  PicoJoule total_pj() const noexcept { return total_pj_; }
  PicoJoule category_pj(const std::string& category) const;

  /// Report-time view: category name -> accumulated pJ, sorted by name.
  /// Materialized on demand (the hot path never touches a map).
  std::map<std::string, PicoJoule> categories() const;

  void merge(const EnergyLedger& other);
  void reset();

 private:
  std::vector<std::string> names_;   ///< id -> category name
  std::vector<PicoJoule> values_;    ///< id -> accumulated energy
  std::unordered_map<std::string, EnergyId> index_;
  PicoJoule total_pj_ = 0.0;
};

/// Power summary over a run of known duration.
struct PowerReport {
  Watt dynamic_w = 0.0;
  Watt leakage_w = 0.0;
  Watt total_w = 0.0;
  double runtime_s = 0.0;

  static PowerReport from_run(const EnergyLedger& ledger, Watt leakage_w, double runtime_s);
};

}  // namespace sttgpu::power
