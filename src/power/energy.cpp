#include "power/energy.hpp"

#include "common/error.hpp"

namespace sttgpu::power {

PicoJoule EnergyLedger::category_pj(const std::string& category) const {
  const auto it = categories_.find(category);
  return it == categories_.end() ? 0.0 : it->second;
}

void EnergyLedger::merge(const EnergyLedger& other) {
  for (const auto& [k, v] : other.categories_) categories_[k] += v;
  total_pj_ += other.total_pj_;
}

void EnergyLedger::reset() {
  categories_.clear();
  total_pj_ = 0.0;
}

PowerReport PowerReport::from_run(const EnergyLedger& ledger, Watt leakage_w,
                                  double runtime_s) {
  STTGPU_REQUIRE(runtime_s > 0.0, "PowerReport: runtime must be positive");
  PowerReport r;
  r.runtime_s = runtime_s;
  r.dynamic_w = ledger.total_pj() * 1e-12 / runtime_s;
  r.leakage_w = leakage_w;
  r.total_w = r.dynamic_w + r.leakage_w;
  return r;
}

}  // namespace sttgpu::power
