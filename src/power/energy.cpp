#include "power/energy.hpp"

#include "common/error.hpp"

namespace sttgpu::power {

PicoJoule EnergyLedger::category_pj(const std::string& category) const {
  const auto it = index_.find(category);
  return it == index_.end() ? 0.0 : values_[it->second];
}

std::map<std::string, PicoJoule> EnergyLedger::categories() const {
  std::map<std::string, PicoJoule> out;
  for (std::size_t i = 0; i < names_.size(); ++i) out.emplace(names_[i], values_[i]);
  return out;
}

void EnergyLedger::merge(const EnergyLedger& other) {
  for (std::size_t i = 0; i < other.names_.size(); ++i) {
    values_[intern(other.names_[i])] += other.values_[i];
  }
  total_pj_ += other.total_pj_;
}

void EnergyLedger::reset() {
  names_.clear();
  values_.clear();
  index_.clear();
  total_pj_ = 0.0;
}

PowerReport PowerReport::from_run(const EnergyLedger& ledger, Watt leakage_w,
                                  double runtime_s) {
  STTGPU_REQUIRE(runtime_s > 0.0, "PowerReport: runtime must be positive");
  PowerReport r;
  r.runtime_s = runtime_s;
  r.dynamic_w = ledger.total_pj() * 1e-12 / runtime_s;
  r.leakage_w = leakage_w;
  r.total_w = r.dynamic_w + r.leakage_w;
  return r;
}

}  // namespace sttgpu::power
