#include "nvm/cell.hpp"

#include "common/error.hpp"

namespace sttgpu::nvm {

const char* to_string(RetentionClass rc) noexcept {
  switch (rc) {
    case RetentionClass::kYears10: return "10-year";
    case RetentionClass::kMs40: return "40ms";
    case RetentionClass::kUs26: return "26.5us";
  }
  return "?";
}

double retention_seconds(RetentionClass rc) noexcept {
  switch (rc) {
    case RetentionClass::kYears10: return 10.0 * 365.25 * 24 * 3600;  // 3.156e8 s
    case RetentionClass::kMs40: return 40e-3;
    case RetentionClass::kUs26: return 26.5e-6;
  }
  return 0.0;
}

CellParams sram_cell() {
  CellParams p;
  p.name = "sram-6t";
  // 6T SRAM at 40nm: ~146 F^2/bit is the classic high-density figure.
  p.area_f2_per_bit = 146.0;
  // High-performance 40nm SRAM leaks on the order of 100 nW per bit once
  // local periphery (precharge, wordline drivers, sense amps kept hot) is
  // amortized in; this constant is what makes SRAM LLC power leakage-
  // dominated at these capacities — the premise of the paper ("entering
  // deep nanometer technology era where leakage current increases by 10x
  // per technology node").
  p.leakage_nw_per_bit = 95.0;
  p.read_energy_pj_per_bit = 0.11;
  p.write_energy_pj_per_bit = 0.11;
  p.read_latency_ns = 0.65;
  p.write_latency_ns = 0.65;
  p.needs_refresh = false;
  p.retention_s = 0.0;
  return p;
}

CellParams stt_cell_for_retention(double retention_s, const MtjModel& mtj) {
  STTGPU_REQUIRE(retention_s > 0.0, "stt_cell_for_retention: retention must be positive");
  const double delta = mtj.delta_for_retention(retention_s);
  const double line_bits = kReferenceLineBytes * 8.0;

  CellParams p;
  p.name = "stt-1t1j";
  // The paper: STT-RAM is "about 4x denser than the SRAM cell".
  p.area_f2_per_bit = sram_cell().area_f2_per_bit / 4.0;
  // "near zero leakage power": only the access transistor / local periphery.
  p.leakage_nw_per_bit = 0.9;
  p.read_energy_pj_per_bit = nanojoule_to_pj(mtj.read_energy_nj_per_line()) / line_bits;
  p.write_energy_pj_per_bit = nanojoule_to_pj(mtj.write_energy_nj_per_line(delta)) / line_bits;
  p.read_latency_ns = mtj.read_pulse_ns();
  p.write_latency_ns = mtj.write_pulse_ns(delta);
  // Anything that expires within a simulation-relevant horizon needs refresh
  // bookkeeping; we draw the line at one minute.
  p.needs_refresh = retention_s < 60.0;
  p.retention_s = retention_s;
  return p;
}

CellParams stt_cell(RetentionClass rc, const MtjModel& mtj) {
  CellParams p = stt_cell_for_retention(retention_seconds(rc), mtj);
  p.name = std::string("stt-1t1j-") + to_string(rc);
  return p;
}

}  // namespace sttgpu::nvm
