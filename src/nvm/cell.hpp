// Memory cell technology parameters consumed by the CACTI-lite array model.
//
// Two technologies are modelled:
//   * 6T SRAM    — fast, leaky, ~146 F^2 per bit;
//   * 1T1J STT   — 4x denser (the paper's density claim), near-zero cell
//                  leakage, slow/expensive writes whose cost depends on the
//                  retention class (MtjModel).
//
// All per-bit energies are stated for the data array core; peripheral
// (decoder/wordline/sense) costs are added by power::ArrayModel as a
// size-dependent term, matching how CACTI decomposes access energy.
#pragma once

#include <string>

#include "common/units.hpp"
#include "nvm/mtj.hpp"

namespace sttgpu::nvm {

/// The paper's Table 1 rows: three retention classes of STT-RAM cell.
enum class RetentionClass {
  kYears10,   ///< fully non-volatile (Δ ≈ 40.3): conventional STT-RAM
  kMs40,      ///< ~40 ms  (Δ ≈ 17.5): the proposed HR (high-retention) part
  kUs26,      ///< ~26.5 µs (Δ ≈ 10.2): the proposed LR (low-retention) part
};

const char* to_string(RetentionClass rc) noexcept;

/// Retention time in seconds for a Table 1 class.
double retention_seconds(RetentionClass rc) noexcept;

/// Flat description of a cell technology instance.
struct CellParams {
  std::string name;

  // Geometry / static power
  double area_f2_per_bit = 0.0;     ///< layout area in technology-F^2 per bit
  double leakage_nw_per_bit = 0.0;  ///< static power per bit (nW), cell + local periphery

  // Data-array core access cost, per *bit* touched
  double read_energy_pj_per_bit = 0.0;
  double write_energy_pj_per_bit = 0.0;

  // Raw cell access latencies (array periphery latency is added by ArrayModel)
  NanoSec read_latency_ns = 0.0;
  NanoSec write_latency_ns = 0.0;

  // Volatility
  bool needs_refresh = false;
  double retention_s = 0.0;  ///< 0 => effectively non-volatile for our horizons
};

/// 6T SRAM at the default 40 nm node.
CellParams sram_cell();

/// STT-RAM cell of the given Table 1 retention class, derived from @p mtj.
CellParams stt_cell(RetentionClass rc, const MtjModel& mtj = MtjModel{});

/// STT-RAM cell for an arbitrary retention target (seconds).
CellParams stt_cell_for_retention(double retention_s, const MtjModel& mtj = MtjModel{});

}  // namespace sttgpu::nvm
