#include "nvm/mtj.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace sttgpu::nvm {

namespace {

// Default calibration anchors (see header). Deltas are derived from the
// target retention times via delta = ln(t_ret / tau0), tau0 = 1 ns:
//   26.5 us -> ln(2.65e4)  = 10.185
//   40 ms   -> ln(4.0e7)   = 17.504
//   10 yr   -> ln(3.156e17)= 40.293
// Write energy grows superlinearly with Δ: the switching current rises with
// the thermal barrier while the pulse also lengthens (E ~ I^2 * R * t_pulse).
// The 10-year anchor (~0.7 pJ/bit) is what makes the paper's naive
// high-retention STT baseline *more* power hungry in total than the leaky
// SRAM it replaces (Fig. 8c: +19%), despite near-zero leakage.
std::vector<MtjAnchor> default_anchors() {
  return {
      {10.185, 2.3, 0.19},
      {17.504, 5.0, 0.55},
      {40.293, 10.0, 1.45},
  };
}

}  // namespace

MtjModel::MtjModel() : MtjModel(default_anchors()) {}

MtjModel::MtjModel(std::vector<MtjAnchor> anchors) : anchors_(std::move(anchors)) {
  STTGPU_REQUIRE(anchors_.size() >= 2, "MtjModel: need at least two anchors");
  for (std::size_t i = 1; i < anchors_.size(); ++i) {
    STTGPU_REQUIRE(anchors_[i].delta > anchors_[i - 1].delta,
                   "MtjModel: anchors must be sorted by increasing delta");
    STTGPU_REQUIRE(anchors_[i].write_pulse_ns >= anchors_[i - 1].write_pulse_ns &&
                       anchors_[i].write_energy_nj >= anchors_[i - 1].write_energy_nj,
                   "MtjModel: write cost must be monotone in delta");
  }
}

double MtjModel::retention_seconds(double delta) const noexcept {
  return tau0_s_ * std::exp(delta);
}

double MtjModel::delta_for_retention(double retention_s) const {
  STTGPU_REQUIRE(retention_s > 0.0, "MtjModel: retention must be positive");
  return std::log(retention_s / tau0_s_);
}

double MtjModel::interpolate(double delta, double MtjAnchor::*field) const noexcept {
  // Locate the segment [i, i+1] containing delta; extrapolate on the ends.
  std::size_t i = 0;
  while (i + 2 < anchors_.size() && delta > anchors_[i + 1].delta) ++i;
  const MtjAnchor& a = anchors_[i];
  const MtjAnchor& b = anchors_[i + 1];
  const double t = (delta - a.delta) / (b.delta - a.delta);
  const double v = a.*field + t * (b.*field - a.*field);
  // Physical floor: even the weakest cell needs a finite, positive pulse.
  return std::max(v, 0.05 * (anchors_.front().*field));
}

NanoSec MtjModel::write_pulse_ns(double delta) const noexcept {
  return interpolate(delta, &MtjAnchor::write_pulse_ns);
}

double MtjModel::write_energy_nj_per_line(double delta) const noexcept {
  return interpolate(delta, &MtjAnchor::write_energy_nj);
}

double MtjModel::failure_probability(double delta, double elapsed_s) const noexcept {
  if (elapsed_s <= 0.0) return 0.0;
  return 1.0 - std::exp(-elapsed_s / retention_seconds(delta));
}

}  // namespace sttgpu::nvm
