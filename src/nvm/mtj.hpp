// Magnetic-tunnel-junction (MTJ) device model.
//
// The paper's key device-level lever (its Table 1) is the trade-off between
// the MTJ's thermal stability factor Δ and the write pulse needed to flip the
// free layer:
//
//   * retention time grows exponentially with Δ:  t_ret = tau0 * exp(Δ)
//     with the attempt period tau0 ≈ 1 ns (standard Néel–Arrhenius form, as
//     in Smullen et al. HPCA'11 and Sun et al. MICRO'11 — the paper's
//     references [12] and [14]);
//   * the write current/pulse needed for reliable switching grows with Δ, so
//     lowering Δ makes writes faster *and* cheaper at the cost of volatility.
//
// Absolute write latency/energy values are anchored at three calibration
// points corresponding to the paper's Table 1 rows (10-year, ~40 ms and
// ~26.5 µs retention) and interpolated piecewise-linearly in Δ between them.
// The anchors follow the published numbers of refs [12]/[14]; the source OCR
// of the paper's own Table 1 dropped its digits (see DESIGN.md).
#pragma once

#include <vector>

#include "common/units.hpp"

namespace sttgpu::nvm {

/// Size of the cache line the per-line write/read energies are quoted for.
inline constexpr unsigned kReferenceLineBytes = 256;

/// One calibration anchor: a Δ with its measured write pulse and energy.
struct MtjAnchor {
  double delta;              ///< thermal stability factor
  NanoSec write_pulse_ns;    ///< write pulse width
  double write_energy_nj;    ///< energy to write one 256B line region
};

/// Analytic MTJ model: Δ <-> retention plus calibrated write cost curves.
class MtjModel {
 public:
  /// Constructs the default model with the Table 1 calibration anchors.
  MtjModel();

  /// Custom anchors (must be sorted by increasing delta, size >= 2).
  explicit MtjModel(std::vector<MtjAnchor> anchors);

  /// Néel–Arrhenius retention time for stability factor @p delta (seconds).
  double retention_seconds(double delta) const noexcept;

  /// Inverse: the Δ required for a target retention time (seconds).
  double delta_for_retention(double retention_s) const;

  /// Write pulse width for a cell of stability @p delta.
  NanoSec write_pulse_ns(double delta) const noexcept;

  /// Energy to write one 256-byte line region at stability @p delta.
  double write_energy_nj_per_line(double delta) const noexcept;

  /// Probability that a cell written at t=0 has *not* retained its value
  /// after @p elapsed_s seconds: P = 1 - exp(-elapsed / t_ret).
  double failure_probability(double delta, double elapsed_s) const noexcept;

  /// Read pulse / energy are retention-independent in this model.
  NanoSec read_pulse_ns() const noexcept { return read_pulse_ns_; }
  double read_energy_nj_per_line() const noexcept { return read_energy_nj_; }

  /// Attempt period tau0 of the Néel–Arrhenius law (seconds).
  double tau0_seconds() const noexcept { return tau0_s_; }

 private:
  /// Piecewise-linear interpolation over the anchors in Δ; @p field selects
  /// which anchor quantity is interpolated. Extrapolates linearly and clamps
  /// to a small positive floor.
  double interpolate(double delta, double MtjAnchor::*field) const noexcept;

  std::vector<MtjAnchor> anchors_;
  double tau0_s_ = 1e-9;
  NanoSec read_pulse_ns_ = 1.1;
  double read_energy_nj_ = 0.083;
};

}  // namespace sttgpu::nvm
