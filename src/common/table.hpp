// Plain-text table printer used by the bench binaries so that every
// regenerated paper table/figure prints as an aligned, copy-pasteable grid
// (plus optional CSV output for plotting).
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace sttgpu {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  /// Appends a row; must have the same arity as the headers.
  void add_row(std::vector<std::string> cells);

  /// Formats a double with the given precision (helper for row building).
  static std::string fmt(double value, int precision = 3);
  static std::string fmt_percent(double fraction, int precision = 1);

  void print(std::ostream& os) const;
  void print_csv(std::ostream& os) const;

  std::size_t row_count() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace sttgpu
