// Open-addressed hash map for the simulator's per-transaction bookkeeping
// (request id -> metadata, line address -> waiter list). std::unordered_map
// allocates and frees one node per insert/erase, which on the hot paths
// means several heap round-trips per simulated memory transaction; this map
// stores entries inline in one flat array (linear probing, backward-shift
// deletion, power-of-two capacity), so the steady state allocates nothing
// once the table reaches its high-water size.
//
// Deliberately minimal: u64 keys only, no iteration. The lack of iteration
// is a feature — probe order can never leak into simulation results, so
// swapping this in for std::unordered_map is byte-identical by construction.
//
// One key value (kEmptyKey, ~0) is reserved to mark empty slots; the
// simulator's keys — monotonically assigned request ids and line-aligned
// physical addresses — never reach it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/error.hpp"

namespace sttgpu {

template <typename V>
class FlatU64Map {
 public:
  static constexpr std::uint64_t kEmptyKey = ~std::uint64_t{0};

  FlatU64Map() { rehash(kMinCapacity); }

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  bool contains(std::uint64_t key) const noexcept { return find(key) != nullptr; }

  /// Pointer to the mapped value, or nullptr. Invalidated by any mutating
  /// call (operator[] may rehash, erase shifts entries).
  V* find(std::uint64_t key) noexcept {
    std::size_t i = home(key);
    while (true) {
      Entry& e = entries_[i];
      if (e.key == key) return &e.value;
      if (e.key == kEmptyKey) return nullptr;
      i = (i + 1) & mask_;
    }
  }
  const V* find(std::uint64_t key) const noexcept {
    return const_cast<FlatU64Map*>(this)->find(key);
  }

  /// Value for @p key, default-constructed and inserted if missing.
  V& operator[](std::uint64_t key) {
    STTGPU_ASSERT(key != kEmptyKey);
    // Grow at 3/4 load so probe chains stay short.
    if ((size_ + 1) * 4 > entries_.size() * 3) rehash(entries_.size() * 2);
    std::size_t i = home(key);
    while (true) {
      Entry& e = entries_[i];
      if (e.key == key) return e.value;
      if (e.key == kEmptyKey) {
        e.key = key;
        ++size_;
        return e.value;
      }
      i = (i + 1) & mask_;
    }
  }

  /// Removes @p key (which must be present), closing the probe gap by
  /// backward shifting so later lookups stay reachable.
  void erase(std::uint64_t key) {
    std::size_t gap = home(key);
    while (entries_[gap].key != key) {
      STTGPU_ASSERT_MSG(entries_[gap].key != kEmptyKey, "FlatU64Map: erase of absent key");
      gap = (gap + 1) & mask_;
    }
    std::size_t i = (gap + 1) & mask_;
    while (entries_[i].key != kEmptyKey) {
      // Entry i may fill the gap iff the gap lies on its probe path, i.e.
      // cyclically between its home slot and i.
      const std::size_t dist_home = (i - home(entries_[i].key)) & mask_;
      const std::size_t dist_gap = (i - gap) & mask_;
      if (dist_home >= dist_gap) {
        entries_[gap].key = entries_[i].key;
        entries_[gap].value = std::move(entries_[i].value);
        gap = i;
      }
      i = (i + 1) & mask_;
    }
    entries_[gap].key = kEmptyKey;
    entries_[gap].value = V{};  // release held resources (e.g. vector buffers)
    --size_;
  }

 private:
  struct Entry {
    std::uint64_t key = kEmptyKey;
    V value{};
  };

  static constexpr std::size_t kMinCapacity = 16;

  /// Fibonacci multiplicative hash: the high bits of the product mix every
  /// key bit, which matters because the keys are often sequential ids.
  std::size_t home(std::uint64_t key) const noexcept {
    return static_cast<std::size_t>((key * 0x9E3779B97F4A7C15ull) >> shift_);
  }

  void rehash(std::size_t new_capacity) {
    std::vector<Entry> old = std::move(entries_);
    entries_.clear();
    entries_.resize(new_capacity);
    mask_ = new_capacity - 1;
    shift_ = 64;
    for (std::size_t c = new_capacity; c > 1; c >>= 1) --shift_;
    for (Entry& e : old) {
      if (e.key == kEmptyKey) continue;
      std::size_t i = home(e.key);
      while (entries_[i].key != kEmptyKey) i = (i + 1) & mask_;
      entries_[i].key = e.key;
      entries_[i].value = std::move(e.value);
    }
  }

  std::vector<Entry> entries_;
  std::size_t size_ = 0;
  std::size_t mask_ = 0;
  unsigned shift_ = 64;
};

}  // namespace sttgpu
