// Fundamental scalar types and small address-math helpers shared by every
// subsystem of the simulator.
#pragma once

#include <cstdint>
#include <cstddef>

namespace sttgpu {

/// Simulation time in GPU core clock cycles.
using Cycle = std::uint64_t;

/// Byte address in the (flat) simulated global address space.
using Addr = std::uint64_t;

/// Sentinel for "no cycle scheduled".
inline constexpr Cycle kNoCycle = ~Cycle{0};

/// True iff @p v is a power of two (zero is not).
constexpr bool is_pow2(std::uint64_t v) noexcept { return v != 0 && (v & (v - 1)) == 0; }

/// Floor of log2 for a non-zero value.
constexpr unsigned log2_floor(std::uint64_t v) noexcept {
  unsigned r = 0;
  while (v >>= 1) ++r;
  return r;
}

/// Exact log2; only meaningful when is_pow2(v).
constexpr unsigned log2_exact(std::uint64_t v) noexcept { return log2_floor(v); }

/// Round @p v down to a multiple of @p align (align must be a power of two).
constexpr std::uint64_t align_down(std::uint64_t v, std::uint64_t align) noexcept {
  return v & ~(align - 1);
}

/// Round @p v up to a multiple of @p align (align must be a power of two).
constexpr std::uint64_t align_up(std::uint64_t v, std::uint64_t align) noexcept {
  return (v + align - 1) & ~(align - 1);
}

/// Ceiling integer division.
constexpr std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) noexcept {
  return (a + b - 1) / b;
}

}  // namespace sttgpu
