// Crash-consistent file replacement.
//
// atomic_write_file() is the single durability primitive every artifact
// writer (result cache, telemetry CSV, Chrome trace, JSON reports) goes
// through: the bytes are written to "<path>.tmp", fsync'd, atomically
// renamed over the destination, and the parent directory entry is fsync'd.
// A crash or SIGKILL at any instant leaves either the previous file or the
// complete new one on disk — never a zero-length or torn artifact.
#pragma once

#include <functional>
#include <iosfwd>
#include <string>

namespace sttgpu {

/// Replaces @p path with the bytes @p produce writes to the given stream.
/// Throws SimError if the temp file cannot be written, synced, or renamed
/// into place.
void atomic_write_file(const std::string& path,
                       const std::function<void(std::ostream&)>& produce);

}  // namespace sttgpu
