// Interval telemetry: a per-interval sampler every timed component feeds.
//
// The GPU opens a frame at each interval boundary (and once at the end of
// the run for the final partial interval); components then record
//   * counter tracks — cumulative event counts (instructions, hits, reads,
//     migrations, refreshes...). Exports report per-interval increments.
//   * gauge tracks   — instantaneous values (occupancy, buffer depth,
//     current migration threshold, queue fill).
// Outside frames, components may add duration slices (kernels, refresh
// storms) and instant markers (fault data loss) to the timeline.
//
// Sampling is pull-based and purely observational: no component changes
// behaviour when a Telemetry sink is attached, so every aggregate metric is
// byte-identical with telemetry on or off (tests/test_sim_telemetry.cpp).
// The event-driven fast-forward walks interval boundaries inside skipped
// stretches in closed form, so the sampled series is also identical between
// fastforward=0 and fastforward=1.
//
// Exports:
//   * write_json(JsonWriter&) — time-series block for the run JSON report;
//   * write_chrome_trace(os)  — Chrome trace-event JSON (load in Perfetto:
//     counter tracks + kernel/refresh slices), timestamps in microseconds;
//   * write_csv(os)           — one row per interval, for quick plotting.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"

namespace sttgpu {

class JsonWriter;

class Telemetry {
 public:
  /// Samples every @p interval_cycles cycles (must be >= 1). One Telemetry
  /// instance observes exactly one run — attach a fresh one per Gpu.
  explicit Telemetry(Cycle interval_cycles);

  Cycle interval() const noexcept { return interval_; }

  /// Wall-time scale for trace export; set by the Gpu from its core clock.
  void set_us_per_cycle(double us_per_cycle);
  double us_per_cycle() const noexcept { return us_per_cycle_; }

  // --- sampling (driven at interval boundaries) ---

  /// Opens the frame ending at cycle @p now (strictly after the previous
  /// frame's cycle). All counter()/gauge() calls until end_frame() belong
  /// to this frame.
  void begin_frame(Cycle now);

  /// Records the *cumulative* value of a counter track; exports derive the
  /// per-interval increment. One sample per track per frame.
  void counter(std::string_view track, std::uint64_t cumulative);

  /// Records an instantaneous value. One sample per track per frame.
  void gauge(std::string_view track, double value);

  /// Closes the frame. Tracks not sampled this frame carry their previous
  /// value forward (a zero increment), so late-registered tracks are safe.
  void end_frame();

  bool in_frame() const noexcept { return in_frame_; }

  /// Observer invoked synchronously at the end of end_frame() with the
  /// just-closed frame index — the sweep service streams live telemetry
  /// events from it. Purely observational (no effect on sampling); runs on
  /// the simulating thread, so keep it short.
  void set_on_frame(std::function<void(const Telemetry&, std::size_t frame)> fn) {
    on_frame_ = std::move(fn);
  }

  // --- timeline events (any time, frames not required) ---

  /// A duration slice [begin, end] on @p track (e.g. "kernel" / "l2b0.refresh").
  void slice(std::string_view track, std::string_view name, Cycle begin, Cycle end);

  /// An instant marker at @p at (e.g. a fault-model data-loss event).
  void instant(std::string_view track, std::string_view name, Cycle at);

  // --- inspection (report writer, tests) ---

  std::size_t frame_count() const noexcept { return frame_cycles_.size(); }
  Cycle frame_cycle(std::size_t frame) const { return frame_cycles_.at(frame); }

  std::size_t track_count() const noexcept { return tracks_.size(); }
  const std::string& track_name(std::size_t track) const { return tracks_.at(track).name; }
  bool track_is_counter(std::size_t track) const { return tracks_.at(track).is_counter; }

  /// Raw per-frame samples: cumulative values for counter tracks,
  /// instantaneous values for gauges. Size == frame_count().
  const std::vector<double>& track_samples(std::size_t track) const {
    return tracks_.at(track).samples;
  }

  /// Per-interval increments of a counter track (== samples for gauges).
  std::vector<double> track_deltas(std::size_t track) const;

  /// Index of the track named @p name; npos when absent.
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  std::size_t find_track(std::string_view name) const;

  std::size_t slice_count() const noexcept { return slices_.size(); }
  std::size_t instant_count() const noexcept { return instants_.size(); }

  // --- export ---

  /// Writes the time-series block as one JSON value (the caller has just
  /// written the enclosing key): {"interval":..,"cycle":[..],
  /// "counters":{name:[increments..]},"gauges":{name:[values..]}}.
  void write_json(JsonWriter& w) const;

  /// Chrome trace-event JSON ({"traceEvents":[...]}); open in Perfetto or
  /// chrome://tracing. Counter events carry per-interval increments; events
  /// are emitted in non-decreasing timestamp order.
  void write_chrome_trace(std::ostream& os) const;

  /// CSV: header "cycle,<track>..." then one row per frame (counter columns
  /// hold per-interval increments, gauge columns instantaneous values).
  void write_csv(std::ostream& os) const;

 private:
  struct Track {
    std::string name;
    bool is_counter = false;
    std::vector<double> samples;  ///< one per frame (padded by end_frame)
  };
  struct Slice {
    std::string track;
    std::string name;
    Cycle begin = 0;
    Cycle end = 0;
  };
  struct Instant {
    std::string track;
    std::string name;
    Cycle at = 0;
  };

  Track& track_for(std::string_view name, bool is_counter);
  void record(std::string_view name, bool is_counter, double value);

  Cycle interval_;
  double us_per_cycle_ = 1.0;
  bool in_frame_ = false;
  std::vector<Cycle> frame_cycles_;
  std::vector<Track> tracks_;
  std::unordered_map<std::string, std::size_t> index_;
  std::vector<Slice> slices_;
  std::vector<Instant> instants_;
  std::function<void(const Telemetry&, std::size_t)> on_frame_;
};

}  // namespace sttgpu
