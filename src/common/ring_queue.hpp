// Fixed-layout FIFO ring buffer for the interconnect's in-flight packet
// queues. std::deque allocates and frees chunk blocks as a queue drains and
// refills, and its iterator-based front() pays a double indirection on
// every peek; this ring keeps one contiguous power-of-two array that only
// ever grows to the queue's high-water mark, so the steady state performs
// no allocations and front()/push/pop are single-index operations.
//
// FIFO order is exactly std::deque's push_back/pop_front order, so this is
// a drop-in replacement wherever elements are only appended at the tail and
// consumed at the head.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

namespace sttgpu {

template <typename T>
class RingQueue {
 public:
  bool empty() const noexcept { return size_ == 0; }
  std::size_t size() const noexcept { return size_; }

  T& front() noexcept { return buf_[head_]; }
  const T& front() const noexcept { return buf_[head_]; }

  void push_back(T value) {
    if (size_ == buf_.size()) grow();
    buf_[(head_ + size_) & mask_] = std::move(value);
    ++size_;
  }

  void pop_front() noexcept {
    head_ = (head_ + 1) & mask_;
    --size_;
  }

 private:
  void grow() {
    const std::size_t new_cap = buf_.empty() ? kMinCapacity : buf_.size() * 2;
    std::vector<T> next(new_cap);
    for (std::size_t i = 0; i < size_; ++i) {
      next[i] = std::move(buf_[(head_ + i) & mask_]);
    }
    buf_ = std::move(next);
    head_ = 0;
    mask_ = new_cap - 1;
  }

  static constexpr std::size_t kMinCapacity = 8;

  std::vector<T> buf_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
  std::size_t mask_ = 0;
};

}  // namespace sttgpu
