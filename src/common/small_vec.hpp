// Inline-capacity vector for the simulator's per-event value types
// (coalesced transaction lists, L1 writeback lists, MSHR waiter lists).
// std::vector heap-allocates its buffer even for a handful of elements,
// which on the hot paths means a malloc/free round-trip per simulated
// instruction; SmallVec stores up to N elements inline and only touches the
// heap when a value outgrows that (rare: the users' sizes are bounded by
// warp width or MSHR merge limits).
//
// Restricted to trivially copyable element types so growth and moves are
// memcpys; the API is the subset the simulator uses (no insert/erase).
#pragma once

#include <cstdint>
#include <cstring>
#include <type_traits>

namespace sttgpu {

template <typename T, unsigned N>
class SmallVec {
  static_assert(std::is_trivially_copyable_v<T>,
                "SmallVec is memcpy-based; use std::vector for non-trivial types");

 public:
  SmallVec() noexcept = default;
  ~SmallVec() {
    if (data_ != inline_) delete[] data_;
  }

  SmallVec(const SmallVec& o) { assign_from(o); }
  SmallVec& operator=(const SmallVec& o) {
    if (this != &o) {
      clear_storage();
      assign_from(o);
    }
    return *this;
  }
  SmallVec(SmallVec&& o) noexcept { steal_from(o); }
  SmallVec& operator=(SmallVec&& o) noexcept {
    if (this != &o) {
      clear_storage();
      steal_from(o);
    }
    return *this;
  }

  T* begin() noexcept { return data_; }
  T* end() noexcept { return data_ + size_; }
  const T* begin() const noexcept { return data_; }
  const T* end() const noexcept { return data_ + size_; }
  T& operator[](std::size_t i) noexcept { return data_[i]; }
  const T& operator[](std::size_t i) const noexcept { return data_[i]; }

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  void clear() noexcept { size_ = 0; }  // keeps any spilled buffer

  /// Growth is doubling from max(N, needed); reserve is advisory as in
  /// std::vector.
  void reserve(std::size_t n) {
    if (n > cap_) grow(n);
  }

  void push_back(const T& v) {
    if (size_ == cap_) grow(cap_ * 2);
    data_[size_++] = v;
  }

  friend bool operator==(const SmallVec& a, const SmallVec& b) noexcept {
    if (a.size_ != b.size_) return false;
    return std::memcmp(a.data_, b.data_, a.size_ * sizeof(T)) == 0;
  }
  friend bool operator!=(const SmallVec& a, const SmallVec& b) noexcept { return !(a == b); }

 private:
  void grow(std::size_t new_cap) {
    T* fresh = new T[new_cap];
    std::memcpy(fresh, data_, size_ * sizeof(T));
    if (data_ != inline_) delete[] data_;
    data_ = fresh;
    cap_ = static_cast<std::uint32_t>(new_cap);
  }

  void clear_storage() noexcept {
    if (data_ != inline_) delete[] data_;
    data_ = inline_;
    cap_ = N;
    size_ = 0;
  }

  void assign_from(const SmallVec& o) {
    if (o.size_ > N) grow(o.size_);
    std::memcpy(data_, o.data_, o.size_ * sizeof(T));
    size_ = o.size_;
  }

  // Spilled buffers transfer ownership; inline contents are copied (the
  // source is left empty either way).
  void steal_from(SmallVec& o) noexcept {
    if (o.data_ != o.inline_) {
      data_ = o.data_;
      cap_ = o.cap_;
      size_ = o.size_;
      o.data_ = o.inline_;
      o.cap_ = N;
      o.size_ = 0;
    } else {
      std::memcpy(inline_, o.inline_, o.size_ * sizeof(T));
      size_ = o.size_;
      o.size_ = 0;
    }
  }

  T inline_[N];
  T* data_ = inline_;
  std::uint32_t size_ = 0;
  std::uint32_t cap_ = N;
};

}  // namespace sttgpu
