#include "common/atomic_file.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "common/error.hpp"

namespace sttgpu {

namespace {

std::string errno_text() {
  return std::string(" (") + std::strerror(errno) + ")";
}

/// fsyncs @p path (a file or directory). Directory fsync failures are
/// ignored on filesystems that do not support them (EINVAL); data-file sync
/// failures are fatal — returning from "persist" without durability is the
/// bug this module exists to prevent.
void fsync_path(const std::string& path, bool required) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    STTGPU_REQUIRE(!required, "cannot open for fsync: " + path + errno_text());
    return;
  }
  const int rc = ::fsync(fd);
  ::close(fd);
  STTGPU_REQUIRE(rc == 0 || !required, "fsync failed: " + path + errno_text());
}

std::string parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

}  // namespace

void atomic_write_file(const std::string& path,
                       const std::function<void(std::ostream&)>& produce) {
  const std::string tmp = path + ".tmp";
  // On any failure past this point, unlink the temp file: a dead ".tmp"
  // left behind would be overwritten by the next attempt anyway, but in
  // the meantime it looks like data and confuses humans and backups.
  try {
    {
      std::ofstream out(tmp, std::ios::trunc | std::ios::binary);
      STTGPU_REQUIRE(static_cast<bool>(out), "cannot write file: " + tmp + errno_text());
      produce(out);
      out.flush();
      STTGPU_REQUIRE(out.good(), "write failed: " + tmp + errno_text());
    }
    // The stream is closed; force the bytes to stable storage before the
    // rename publishes them, so the rename can never expose a torn file.
    fsync_path(tmp, /*required=*/true);
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
      throw SimError("cannot move file into place: " + path + errno_text());
    }
  } catch (...) {
    ::unlink(tmp.c_str());
    throw;
  }
  // Persist the directory entry too: without this a crash right after the
  // rename can roll the whole file back on some filesystems.
  fsync_path(parent_dir(path), /*required=*/false);
}

}  // namespace sttgpu
