// Physical units used throughout the device/power models.
//
// Energies are carried in picojoules, times in nanoseconds, power in watts
// and areas in mm^2. Helper conversion functions keep call sites explicit
// about which unit they hold, without the syntactic weight of a full
// dimensional-analysis library.
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace sttgpu {

using PicoJoule = double;  ///< dynamic energy quantum
using NanoSec = double;    ///< latency / pulse width
using Watt = double;       ///< (leakage) power
using MilliMeter2 = double;///< silicon area

inline constexpr double kNanoJoulePerPicoJoule = 1e-3;

constexpr PicoJoule nanojoule_to_pj(double nj) noexcept { return nj * 1e3; }
constexpr double pj_to_nanojoule(PicoJoule pj) noexcept { return pj * 1e-3; }

constexpr double ns_to_seconds(NanoSec ns) noexcept { return ns * 1e-9; }
constexpr NanoSec seconds_to_ns(double s) noexcept { return s * 1e9; }
constexpr NanoSec us_to_ns(double us) noexcept { return us * 1e3; }
constexpr NanoSec ms_to_ns(double ms) noexcept { return ms * 1e6; }

/// Clock domain: converts between wall-clock time and core cycles.
class Clock {
 public:
  constexpr explicit Clock(double freq_hz) noexcept : freq_hz_(freq_hz) {}

  constexpr double frequency_hz() const noexcept { return freq_hz_; }
  constexpr NanoSec period_ns() const noexcept { return 1e9 / freq_hz_; }

  /// Number of whole cycles that cover @p ns of wall time (rounds up,
  /// minimum 1 so that no physical latency ever becomes free).
  constexpr Cycle cycles_for_ns(NanoSec ns) const noexcept {
    const double c = ns / period_ns();
    const auto whole = static_cast<Cycle>(c);
    const Cycle rounded = (static_cast<double>(whole) < c) ? whole + 1 : whole;
    return rounded == 0 ? 1 : rounded;
  }

  constexpr NanoSec ns_for_cycles(Cycle c) const noexcept {
    return static_cast<double>(c) * period_ns();
  }

  constexpr double seconds_for_cycles(Cycle c) const noexcept {
    return ns_to_seconds(ns_for_cycles(c));
  }

 private:
  double freq_hz_;
};

/// GTX480-class shader-domain clock used by the whole memory hierarchy model.
inline constexpr double kDefaultCoreClockHz = 700e6;

}  // namespace sttgpu
