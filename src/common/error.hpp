// Error handling for the simulator.
//
// Configuration mistakes (bad geometry, inconsistent parameters) throw
// SimError at construction time; internal invariant violations use
// STTGPU_ASSERT which is active in all build types — a silently wrong
// simulator is worse than a dead one.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace sttgpu {

/// Thrown for user-visible configuration / usage errors.
class SimError : public std::runtime_error {
 public:
  explicit SimError(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void assert_fail(const char* expr, const char* file, int line,
                                     const std::string& msg) {
  std::ostringstream os;
  os << "STTGPU_ASSERT failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::logic_error(os.str());
}
}  // namespace detail

}  // namespace sttgpu

/// Internal invariant check, active in every build type.
#define STTGPU_ASSERT(expr)                                                  \
  do {                                                                       \
    if (!(expr)) ::sttgpu::detail::assert_fail(#expr, __FILE__, __LINE__, ""); \
  } while (false)

#define STTGPU_ASSERT_MSG(expr, msg)                                          \
  do {                                                                        \
    if (!(expr)) ::sttgpu::detail::assert_fail(#expr, __FILE__, __LINE__, msg); \
  } while (false)

/// Configuration validation: throws SimError with the given message.
#define STTGPU_REQUIRE(expr, msg)                      \
  do {                                                 \
    if (!(expr)) throw ::sttgpu::SimError(msg);        \
  } while (false)
