#include "common/config.hpp"

#include <cstdlib>

#include "common/error.hpp"

namespace sttgpu {

Config Config::from_args(int argc, const char* const* argv) {
  Config cfg;
  for (int i = 1; i < argc; ++i) {
    const std::string token = argv[i];
    const auto eq = token.find('=');
    STTGPU_REQUIRE(eq != std::string::npos && eq > 0,
                   "expected key=value argument, got: " + token);
    cfg.set(token.substr(0, eq), token.substr(eq + 1));
  }
  return cfg;
}

std::string Config::get_string(const std::string& key, const std::string& fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t Config::get_int(const std::string& key, std::int64_t fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const std::int64_t v = std::strtoll(it->second.c_str(), &end, 0);
  STTGPU_REQUIRE(end && *end == '\0', "config value for '" + key + "' is not an integer");
  return v;
}

double Config::get_double(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  STTGPU_REQUIRE(end && *end == '\0', "config value for '" + key + "' is not a number");
  return v;
}

bool Config::get_bool(const std::string& key, bool fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  const std::string& v = it->second;
  if (v == "1" || v == "true" || v == "yes" || v == "on") return true;
  if (v == "0" || v == "false" || v == "no" || v == "off") return false;
  throw SimError("config value for '" + key + "' is not a boolean: " + v);
}

}  // namespace sttgpu
