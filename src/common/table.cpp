#include "common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/error.hpp"

namespace sttgpu {

TextTable::TextTable(std::vector<std::string> headers) : headers_(std::move(headers)) {
  STTGPU_REQUIRE(!headers_.empty(), "TextTable: need at least one column");
}

void TextTable::add_row(std::vector<std::string> cells) {
  STTGPU_REQUIRE(cells.size() == headers_.size(), "TextTable: row arity mismatch");
  rows_.push_back(std::move(cells));
}

std::string TextTable::fmt(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

std::string TextTable::fmt_percent(double fraction, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << fraction * 100.0 << '%';
  return os.str();
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }

  const auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ") << std::left << std::setw(static_cast<int>(widths[c]))
         << row[c];
    }
    os << " |\n";
  };

  print_row(headers_);
  os << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << '|';
  }
  os << '\n';
  for (const auto& row : rows_) print_row(row);
}

void TextTable::print_csv(std::ostream& os) const {
  const auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  print_row(headers_);
  for (const auto& row : rows_) print_row(row);
}

}  // namespace sttgpu
