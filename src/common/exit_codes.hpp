// Process exit codes for the sttgpu CLI — the one place their numeric
// values are assigned. Scripts, CI greps and tests key off these numbers,
// so they are append-only: a code never changes meaning once shipped.
#pragma once

namespace sttgpu {

inline constexpr int kExitOk = 0;           ///< success
inline constexpr int kExitError = 1;        ///< simulation/setup error
inline constexpr int kExitUsage = 2;        ///< unknown command or knob
inline constexpr int kExitInterrupted = 3;  ///< SIGINT/SIGTERM; cached rows resume
inline constexpr int kExitWatchdog = 4;     ///< watchdog / per-job timeout kill
inline constexpr int kExitQuarantine = 5;   ///< store fsck: unacknowledged quarantine
inline constexpr int kExitBind = 6;         ///< serve: cannot bind the socket/port
inline constexpr int kExitProtocol = 7;     ///< client/server protocol version mismatch
inline constexpr int kExitOverloaded = 8;   ///< submission shed by admission control
inline constexpr int kExitJournal = 9;      ///< serve: submission journal unusable

}  // namespace sttgpu
