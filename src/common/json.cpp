#include "common/json.hpp"

#include <cmath>

#include "common/error.hpp"

namespace sttgpu {

void JsonWriter::before_value() {
  if (expecting_value_) {
    expecting_value_ = false;
    return;
  }
  STTGPU_REQUIRE(stack_.empty() || stack_.back() == Scope::kArray,
                 "JsonWriter: value inside an object requires a key");
  STTGPU_REQUIRE(!(stack_.empty() && wrote_root_),
                 "JsonWriter: only one root value allowed");
  if (!stack_.empty()) {
    if (!first_in_scope_.back()) *os_ << ',';
    first_in_scope_.back() = false;
  }
  if (stack_.empty()) wrote_root_ = true;
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  *os_ << '{';
  stack_.push_back(Scope::kObject);
  first_in_scope_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  STTGPU_REQUIRE(!stack_.empty() && stack_.back() == Scope::kObject && !expecting_value_,
                 "JsonWriter: unbalanced end_object");
  *os_ << '}';
  stack_.pop_back();
  first_in_scope_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  *os_ << '[';
  stack_.push_back(Scope::kArray);
  first_in_scope_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  STTGPU_REQUIRE(!stack_.empty() && stack_.back() == Scope::kArray && !expecting_value_,
                 "JsonWriter: unbalanced end_array");
  *os_ << ']';
  stack_.pop_back();
  first_in_scope_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  STTGPU_REQUIRE(!stack_.empty() && stack_.back() == Scope::kObject,
                 "JsonWriter: key outside an object");
  STTGPU_REQUIRE(!expecting_value_, "JsonWriter: consecutive keys");
  if (!first_in_scope_.back()) *os_ << ',';
  first_in_scope_.back() = false;
  write_escaped(name);
  *os_ << ':';
  expecting_value_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view s) {
  before_value();
  write_escaped(s);
  return *this;
}

JsonWriter& JsonWriter::value(double d) {
  before_value();
  if (std::isfinite(d)) {
    *os_ << d;
  } else {
    *os_ << "null";  // JSON has no NaN/Inf
  }
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t i) {
  before_value();
  *os_ << i;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t u) {
  before_value();
  *os_ << u;
  return *this;
}

JsonWriter& JsonWriter::value(bool b) {
  before_value();
  *os_ << (b ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::null() {
  before_value();
  *os_ << "null";
  return *this;
}

void JsonWriter::write_escaped(std::string_view s) {
  *os_ << '"';
  for (const char c : s) {
    switch (c) {
      case '"': *os_ << "\\\""; break;
      case '\\': *os_ << "\\\\"; break;
      case '\n': *os_ << "\\n"; break;
      case '\r': *os_ << "\\r"; break;
      case '\t': *os_ << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *os_ << buf;
        } else {
          *os_ << c;
        }
    }
  }
  *os_ << '"';
}

}  // namespace sttgpu
