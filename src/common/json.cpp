#include "common/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/error.hpp"

namespace sttgpu {

void JsonWriter::before_value() {
  if (expecting_value_) {
    expecting_value_ = false;
    return;
  }
  STTGPU_REQUIRE(stack_.empty() || stack_.back() == Scope::kArray,
                 "JsonWriter: value inside an object requires a key");
  STTGPU_REQUIRE(!(stack_.empty() && wrote_root_),
                 "JsonWriter: only one root value allowed");
  if (!stack_.empty()) {
    if (!first_in_scope_.back()) *os_ << ',';
    first_in_scope_.back() = false;
  }
  if (stack_.empty()) wrote_root_ = true;
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  *os_ << '{';
  stack_.push_back(Scope::kObject);
  first_in_scope_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  STTGPU_REQUIRE(!stack_.empty() && stack_.back() == Scope::kObject && !expecting_value_,
                 "JsonWriter: unbalanced end_object");
  *os_ << '}';
  stack_.pop_back();
  first_in_scope_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  *os_ << '[';
  stack_.push_back(Scope::kArray);
  first_in_scope_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  STTGPU_REQUIRE(!stack_.empty() && stack_.back() == Scope::kArray && !expecting_value_,
                 "JsonWriter: unbalanced end_array");
  *os_ << ']';
  stack_.pop_back();
  first_in_scope_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  STTGPU_REQUIRE(!stack_.empty() && stack_.back() == Scope::kObject,
                 "JsonWriter: key outside an object");
  STTGPU_REQUIRE(!expecting_value_, "JsonWriter: consecutive keys");
  if (!first_in_scope_.back()) *os_ << ',';
  first_in_scope_.back() = false;
  write_escaped(name);
  *os_ << ':';
  expecting_value_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view s) {
  before_value();
  write_escaped(s);
  return *this;
}

JsonWriter& JsonWriter::value(double d) {
  before_value();
  if (std::isfinite(d)) {
    *os_ << d;
  } else {
    *os_ << "null";  // JSON has no NaN/Inf
  }
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t i) {
  before_value();
  *os_ << i;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t u) {
  before_value();
  *os_ << u;
  return *this;
}

JsonWriter& JsonWriter::value(bool b) {
  before_value();
  *os_ << (b ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::null() {
  before_value();
  *os_ << "null";
  return *this;
}

void JsonWriter::write_escaped(std::string_view s) {
  *os_ << '"';
  for (const char c : s) {
    switch (c) {
      case '"': *os_ << "\\\""; break;
      case '\\': *os_ << "\\\\"; break;
      case '\n': *os_ << "\\n"; break;
      case '\r': *os_ << "\\r"; break;
      case '\t': *os_ << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *os_ << buf;
        } else {
          *os_ << c;
        }
    }
  }
  *os_ << '"';
}

// ---------------------------------------------------------------------------
// Parser.
// ---------------------------------------------------------------------------

const char* JsonValue::kind_name(Kind k) noexcept {
  switch (k) {
    case Kind::kNull: return "null";
    case Kind::kBool: return "bool";
    case Kind::kNumber: return "number";
    case Kind::kString: return "string";
    case Kind::kArray: return "array";
    case Kind::kObject: return "object";
  }
  return "?";
}

namespace {

[[noreturn]] void type_error(JsonValue::Kind want, JsonValue::Kind got) {
  throw SimError(std::string("JSON: expected ") + JsonValue::kind_name(want) + ", got " +
                 JsonValue::kind_name(got));
}

}  // namespace

bool JsonValue::as_bool() const {
  if (kind_ != Kind::kBool) type_error(Kind::kBool, kind_);
  return bool_;
}

double JsonValue::as_double() const {
  if (kind_ != Kind::kNumber) type_error(Kind::kNumber, kind_);
  return num_;
}

std::int64_t JsonValue::as_int() const {
  if (kind_ != Kind::kNumber) type_error(Kind::kNumber, kind_);
  const auto i = static_cast<std::int64_t>(num_);
  STTGPU_REQUIRE(static_cast<double>(i) == num_,
                 "JSON: number " + text_ + " is not an exact integer");
  return i;
}

const std::string& JsonValue::as_string() const {
  if (kind_ != Kind::kString) type_error(Kind::kString, kind_);
  return text_;
}

const std::string& JsonValue::raw_number() const {
  if (kind_ != Kind::kNumber) type_error(Kind::kNumber, kind_);
  return text_;
}

std::size_t JsonValue::size() const {
  if (kind_ == Kind::kArray) return items_.size();
  if (kind_ == Kind::kObject) return members_.size();
  type_error(Kind::kArray, kind_);
}

const JsonValue& JsonValue::at(std::size_t i) const {
  if (kind_ != Kind::kArray) type_error(Kind::kArray, kind_);
  STTGPU_REQUIRE(i < items_.size(), "JSON: array index out of range");
  return items_[i];
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind_ != Kind::kObject) type_error(Kind::kObject, kind_);
  for (const auto& [name, value] : members_) {
    if (name == key) return &value;
  }
  return nullptr;
}

const JsonValue& JsonValue::at(std::string_view key) const {
  const JsonValue* v = find(key);
  STTGPU_REQUIRE(v != nullptr, "JSON: missing key '" + std::string(key) + "'");
  return *v;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::members() const {
  if (kind_ != Kind::kObject) type_error(Kind::kObject, kind_);
  return members_;
}

/// Strict recursive-descent parser. Depth is bounded so hostile input (the
/// server parses bytes off a socket) cannot blow the stack.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing bytes after the JSON document");
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  [[noreturn]] void fail(const std::string& what) const {
    throw SimError("JSON parse error at byte " + std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    STTGPU_REQUIRE(depth_ < kMaxDepth, "JSON: nesting deeper than 64 levels");
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        JsonValue v;
        v.kind_ = JsonValue::Kind::kString;
        v.text_ = parse_string();
        return v;
      }
      case 't':
      case 'f': {
        JsonValue v;
        v.kind_ = JsonValue::Kind::kBool;
        if (consume_literal("true")) {
          v.bool_ = true;
        } else if (consume_literal("false")) {
          v.bool_ = false;
        } else {
          fail("invalid literal");
        }
        return v;
      }
      case 'n':
        if (!consume_literal("null")) fail("invalid literal");
        return JsonValue{};
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    ++depth_;
    JsonValue v;
    v.kind_ = JsonValue::Kind::kObject;
    if (peek() == '}') {
      ++pos_;
      --depth_;
      return v;
    }
    for (;;) {
      if (peek() != '"') fail("expected a string object key");
      std::string key = parse_string();
      for (const auto& [name, ignored] : v.members_) {
        if (name == key) fail("duplicate object key '" + key + "'");
      }
      expect(':');
      v.members_.emplace_back(std::move(key), parse_value());
      const char c = peek();
      ++pos_;
      if (c == '}') break;
      if (c != ',') fail("expected ',' or '}' in object");
    }
    --depth_;
    return v;
  }

  JsonValue parse_array() {
    expect('[');
    ++depth_;
    JsonValue v;
    v.kind_ = JsonValue::Kind::kArray;
    if (peek() == ']') {
      ++pos_;
      --depth_;
      return v;
    }
    for (;;) {
      v.items_.push_back(parse_value());
      const char c = peek();
      ++pos_;
      if (c == ']') break;
      if (c != ',') fail("expected ',' or ']' in array");
    }
    --depth_;
    return v;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control character in string");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("invalid hex digit in \\u escape");
            }
          }
          // UTF-8 encode the BMP code point (surrogate pairs are rejected —
          // nothing in the protocol produces them).
          if (code >= 0xD800 && code <= 0xDFFF) fail("surrogate \\u escapes unsupported");
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: fail("invalid escape character");
      }
    }
  }

  JsonValue parse_number() {
    skip_ws();
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    const auto digits = [&]() {
      std::size_t n = 0;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
        ++n;
      }
      return n;
    };
    const std::size_t int_digits = digits();
    if (int_digits == 0) fail("invalid number");
    // JSON forbids leading zeros ("01"); a lone zero is fine.
    if (int_digits > 1 && text_[start + (text_[start] == '-' ? 1 : 0)] == '0') {
      fail("leading zero in number");
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (digits() == 0) fail("digits required after decimal point");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      if (digits() == 0) fail("digits required in exponent");
    }
    JsonValue v;
    v.kind_ = JsonValue::Kind::kNumber;
    v.text_ = std::string(text_.substr(start, pos_ - start));
    char* end = nullptr;
    v.num_ = std::strtod(v.text_.c_str(), &end);
    if (end == nullptr || *end != '\0') fail("unparseable number");
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

JsonValue parse_json(std::string_view text) {
  return JsonParser(text).parse_document();
}

}  // namespace sttgpu
