// Portable SIMD helpers for the simulator's hot scans. Each primitive has a
// scalar fallback with identical results, so every target architecture (and
// every sanitizer build) computes the same answer — SIMD here is purely a
// throughput lever, never a semantic one.
//
// Detection is compile-time: SSE2 on x86-64 (baseline, no runtime dispatch
// needed), NEON on AArch64, scalar everywhere else. Define STTGPU_NO_SIMD to
// force the scalar path (used by the equivalence test to cross-check).
#pragma once

#include <bit>
#include <cstdint>

#if !defined(STTGPU_NO_SIMD)
#if defined(__SSE2__) || (defined(_M_X64) && !defined(_M_ARM64EC))
#define STTGPU_SIMD_SSE2 1
#include <emmintrin.h>
#elif defined(__aarch64__) || defined(_M_ARM64)
#define STTGPU_SIMD_NEON 1
#include <arm_neon.h>
#endif
#endif

namespace sttgpu::simd {

/// True when a vector path is compiled in (diagnostics/tests only).
constexpr bool kVectorized =
#if defined(STTGPU_SIMD_SSE2) || defined(STTGPU_SIMD_NEON)
    true;
#else
    false;
#endif

/// Returns a bitmask with bit i set iff a[i] == key, for i in [0, n).
/// n must be <= 64. The workhorse of tag-array probes: the caller ANDs the
/// result with its packed valid bits and takes countr_zero, replacing the
/// branchy per-way compare loop with straight-line compares.
inline std::uint64_t match_u64(const std::uint64_t* a, unsigned n,
                               std::uint64_t key) noexcept {
  std::uint64_t m = 0;
  unsigned i = 0;
#if defined(STTGPU_SIMD_SSE2)
  // SSE2 lacks a 64-bit compare; emulate with a 32-bit compare whose lane
  // pairs are ANDed (both halves equal <=> the 64-bit lanes are equal), then
  // movemask_pd extracts one bit per 64-bit lane.
  const __m128i vkey = _mm_set1_epi64x(static_cast<long long>(key));
  for (; i + 2 <= n; i += 2) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    const __m128i eq32 = _mm_cmpeq_epi32(v, vkey);
    const __m128i eq64 =
        _mm_and_si128(eq32, _mm_shuffle_epi32(eq32, _MM_SHUFFLE(2, 3, 0, 1)));
    const unsigned bits =
        static_cast<unsigned>(_mm_movemask_pd(_mm_castsi128_pd(eq64)));
    m |= static_cast<std::uint64_t>(bits) << i;
  }
#elif defined(STTGPU_SIMD_NEON)
  const uint64x2_t vkey = vdupq_n_u64(key);
  for (; i + 2 <= n; i += 2) {
    const uint64x2_t eq = vceqq_u64(vld1q_u64(a + i), vkey);
    m |= (vgetq_lane_u64(eq, 0) & 1u) << i;
    m |= (vgetq_lane_u64(eq, 1) & 1u) << (i + 1);
  }
#endif
  for (; i < n; ++i) {
    m |= static_cast<std::uint64_t>(a[i] == key ? 1u : 0u) << i;
  }
  return m;
}

}  // namespace sttgpu::simd
