// Statistics plumbing: counters, streaming mean/variance, histograms with
// user-defined bucket edges, and a coefficient-of-variation helper used for
// the paper's Figure 3 (inter/intra-set write variation, after i2WAP).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace sttgpu {

/// Welford streaming mean / variance accumulator.
class StreamStats {
 public:
  void add(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (x < min_ || n_ == 1) min_ = x;
    if (x > max_ || n_ == 1) max_ = x;
  }

  std::uint64_t count() const noexcept { return n_; }
  double mean() const noexcept { return mean_; }
  double variance() const noexcept { return n_ > 1 ? m2_ / static_cast<double>(n_) : 0.0; }
  double stddev() const noexcept;
  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }

  /// Coefficient of variation (stddev / mean); zero when mean is zero.
  double cov() const noexcept;

  void reset() noexcept { *this = StreamStats{}; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Histogram over explicit upper-edge buckets plus an implicit overflow
/// bucket. Edges must be strictly increasing. Example (Fig. 6 buckets):
///   Histogram h({10e3, 50e3, 100e3, 1e6, 2.5e6});  // ns edges
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_edges);

  void add(double value, std::uint64_t weight = 1) noexcept;

  std::size_t bucket_count() const noexcept { return counts_.size(); }
  std::uint64_t bucket(std::size_t i) const noexcept { return counts_[i]; }
  std::uint64_t overflow() const noexcept { return counts_.back(); }
  std::uint64_t total() const noexcept { return total_; }
  double upper_edge(std::size_t i) const noexcept { return edges_[i]; }

  /// Fraction of all samples falling in bucket @p i (0 if empty histogram).
  double fraction(std::size_t i) const noexcept;

  /// Fraction of samples with value <= edges_[i].
  double cumulative_fraction(std::size_t i) const noexcept;

  void reset() noexcept;

 private:
  std::vector<double> edges_;        // strictly increasing upper edges
  std::vector<std::uint64_t> counts_;  // edges_.size() + 1 (last = overflow)
  std::uint64_t total_ = 0;
};

/// Computes the coefficient of variation of a vector of counts.
/// Returns 0 when the mean is zero (an all-cold region has no variation).
double coefficient_of_variation(const std::vector<std::uint64_t>& counts) noexcept;

/// Geometric mean of strictly positive values; returns 0 for empty input.
double geometric_mean(const std::vector<double>& values) noexcept;

/// A named bag of integral counters, suitable for dumping after a run.
class CounterSet {
 public:
  std::uint64_t& operator[](const std::string& name) { return counters_[name]; }
  std::uint64_t get(const std::string& name) const;
  const std::map<std::string, std::uint64_t>& all() const noexcept { return counters_; }
  void merge(const CounterSet& other);

 private:
  std::map<std::string, std::uint64_t> counters_;
};

}  // namespace sttgpu
