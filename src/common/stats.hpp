// Statistics plumbing: counters, streaming mean/variance, histograms with
// user-defined bucket edges, and a coefficient-of-variation helper used for
// the paper's Figure 3 (inter/intra-set write variation, after i2WAP).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

namespace sttgpu {

/// Welford streaming mean / variance accumulator.
class StreamStats {
 public:
  void add(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (x < min_ || n_ == 1) min_ = x;
    if (x > max_ || n_ == 1) max_ = x;
  }

  std::uint64_t count() const noexcept { return n_; }
  double mean() const noexcept { return mean_; }
  double variance() const noexcept { return n_ > 1 ? m2_ / static_cast<double>(n_) : 0.0; }
  double stddev() const noexcept;
  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }

  /// Coefficient of variation (stddev / mean); zero when mean is zero.
  double cov() const noexcept;

  void reset() noexcept { *this = StreamStats{}; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Histogram over explicit upper-edge buckets plus an implicit overflow
/// bucket. Edges must be strictly increasing. Example (Fig. 6 buckets):
///   Histogram h({10e3, 50e3, 100e3, 1e6, 2.5e6});  // ns edges
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_edges);

  void add(double value, std::uint64_t weight = 1) noexcept;

  std::size_t bucket_count() const noexcept { return counts_.size(); }
  std::uint64_t bucket(std::size_t i) const noexcept { return counts_[i]; }
  std::uint64_t overflow() const noexcept { return counts_.back(); }
  std::uint64_t total() const noexcept { return total_; }
  double upper_edge(std::size_t i) const noexcept { return edges_[i]; }

  /// Fraction of all samples falling in bucket @p i (0 if empty histogram).
  double fraction(std::size_t i) const noexcept;

  /// Fraction of samples with value <= edges_[i]. Prefix sums are computed
  /// once after the last add() and cached, so report loops calling this for
  /// every bucket stay O(n) total instead of O(n^2).
  double cumulative_fraction(std::size_t i) const noexcept;

  void reset() noexcept;

 private:
  std::vector<double> edges_;        // strictly increasing upper edges
  std::vector<std::uint64_t> counts_;  // edges_.size() + 1 (last = overflow)
  std::uint64_t total_ = 0;
  // Lazily rebuilt inclusive prefix sums over counts_; invalidated by add().
  mutable std::vector<std::uint64_t> prefix_;
  mutable bool prefix_valid_ = false;
};

/// Computes the coefficient of variation of a vector of counts.
/// Returns 0 when the mean is zero (an all-cold region has no variation).
double coefficient_of_variation(const std::vector<std::uint64_t>& counts) noexcept;

/// Geometric mean of strictly positive values; returns 0 for empty input.
double geometric_mean(const std::vector<double>& values) noexcept;

/// Dense handle for one counter in a CounterSet (valid only for the set that
/// interned it).
using CounterId = std::uint32_t;

/// A named bag of integral counters, suitable for dumping after a run.
///
/// Hot paths intern their counter names once (at component construction) and
/// bump through at(CounterId) — a vector index, no string lookup per event.
/// There is no string-keyed mutator: every writer holds a CounterId.
class CounterSet {
 public:
  /// Resolves @p name to a dense id, creating the counter (at 0) on first use.
  CounterId intern(const std::string& name) {
    const auto it = index_.find(name);
    if (it != index_.end()) return it->second;
    const CounterId id = static_cast<CounterId>(values_.size());
    index_.emplace(name, id);
    names_.push_back(name);
    values_.push_back(0);
    return id;
  }

  /// Hot path: counter slot for a pre-interned handle.
  std::uint64_t& at(CounterId id) noexcept { return values_[id]; }
  std::uint64_t at(CounterId id) const noexcept { return values_[id]; }

  std::uint64_t get(const std::string& name) const;

  /// Enumeration by dense id (telemetry sampling, report loops): ids are
  /// 0..size()-1 in interning order.
  std::size_t size() const noexcept { return values_.size(); }
  const std::string& name(CounterId id) const noexcept { return names_[id]; }

  /// Report-time view: name -> value, sorted by name. Materialized on demand.
  std::map<std::string, std::uint64_t> all() const;
  bool empty() const noexcept { return values_.empty(); }

  void merge(const CounterSet& other);

 private:
  std::vector<std::string> names_;      ///< id -> counter name
  std::vector<std::uint64_t> values_;   ///< id -> value
  std::unordered_map<std::string, CounterId> index_;
};

}  // namespace sttgpu
