// Minimal JSON support — a streaming writer plus a strict parser, enough to
// export run results and speak the sweep-service wire protocol without
// pulling in a JSON library.
//
// Writer usage:
//   JsonWriter w(os);
//   w.begin_object();
//   w.key("ipc").value(3.14);
//   w.key("rows").begin_array();
//   w.value("bfs").value(42);
//   w.end_array();
//   w.end_object();
//
// The writer validates nesting (unbalanced begin/end throws) and escapes
// strings. Output is compact (no pretty printing).
//
// Parser usage:
//   JsonValue v = parse_json(R"({"verb":"submit","scale":0.05})");
//   v.at("verb").as_string();          // "submit"
//   v.find("missing");                 // nullptr, no throw
//
// parse_json is strict (one root value, no trailing bytes, no comments) and
// throws SimError with a byte offset on malformed input. Numbers keep their
// raw source text alongside the parsed double, so forwarding a number into
// a string-keyed Config never reformats it ("0.05" stays "0.05").
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace sttgpu {

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os) : os_(&os) {}

  /// Destructor checks balance only in tests; incomplete output is the
  /// caller's bug but must not throw during unwinding.
  ~JsonWriter() = default;

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Emits an object key; must be inside an object and followed by a value.
  JsonWriter& key(std::string_view name);

  JsonWriter& value(std::string_view s);
  JsonWriter& value(const char* s) { return value(std::string_view(s)); }
  JsonWriter& value(double d);
  JsonWriter& value(std::int64_t i);
  JsonWriter& value(std::uint64_t u);
  JsonWriter& value(int i) { return value(static_cast<std::int64_t>(i)); }
  JsonWriter& value(unsigned u) { return value(static_cast<std::uint64_t>(u)); }
  JsonWriter& value(bool b);
  JsonWriter& null();

  /// True once every begin has been matched by an end.
  bool complete() const noexcept { return stack_.empty() && wrote_root_; }

 private:
  enum class Scope : unsigned char { kObject, kArray };

  void before_value();
  void write_escaped(std::string_view s);

  std::ostream* os_;
  std::vector<Scope> stack_;
  std::vector<bool> first_in_scope_;
  bool expecting_value_ = false;  ///< a key was just written
  bool wrote_root_ = false;
};

/// One parsed JSON value. Objects preserve member order (vector of pairs,
/// linear find — protocol payloads have a handful of keys); duplicate keys
/// are rejected at parse time.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind() const noexcept { return kind_; }
  bool is_null() const noexcept { return kind_ == Kind::kNull; }
  bool is_bool() const noexcept { return kind_ == Kind::kBool; }
  bool is_number() const noexcept { return kind_ == Kind::kNumber; }
  bool is_string() const noexcept { return kind_ == Kind::kString; }
  bool is_array() const noexcept { return kind_ == Kind::kArray; }
  bool is_object() const noexcept { return kind_ == Kind::kObject; }

  /// Typed accessors; throw SimError naming the expected type on mismatch.
  bool as_bool() const;
  double as_double() const;
  std::int64_t as_int() const;  ///< throws when not an exact integer
  const std::string& as_string() const;

  /// The number exactly as it appeared in the source text ("0.05", "1e-3").
  const std::string& raw_number() const;

  // --- arrays ---
  std::size_t size() const;  ///< array length / object member count
  const JsonValue& at(std::size_t i) const;

  // --- objects ---
  /// Member lookup: nullptr when absent (find) or SimError (at).
  const JsonValue* find(std::string_view key) const;
  const JsonValue& at(std::string_view key) const;
  const std::vector<std::pair<std::string, JsonValue>>& members() const;

  static const char* kind_name(Kind k) noexcept;

 private:
  friend class JsonParser;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::string text_;  ///< string value, or a number's raw source text
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// Parses exactly one JSON document (surrounding whitespace allowed, nothing
/// else). Throws SimError with a byte offset on malformed input, duplicate
/// object keys, or nesting deeper than 64 levels.
JsonValue parse_json(std::string_view text);

}  // namespace sttgpu
