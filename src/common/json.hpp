// A minimal streaming JSON writer — enough to export run results and figure
// data for external plotting without pulling in a JSON library.
//
// Usage:
//   JsonWriter w(os);
//   w.begin_object();
//   w.key("ipc").value(3.14);
//   w.key("rows").begin_array();
//   w.value("bfs").value(42);
//   w.end_array();
//   w.end_object();
//
// The writer validates nesting (unbalanced begin/end throws) and escapes
// strings. Output is compact (no pretty printing).
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace sttgpu {

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os) : os_(&os) {}

  /// Destructor checks balance only in tests; incomplete output is the
  /// caller's bug but must not throw during unwinding.
  ~JsonWriter() = default;

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Emits an object key; must be inside an object and followed by a value.
  JsonWriter& key(std::string_view name);

  JsonWriter& value(std::string_view s);
  JsonWriter& value(const char* s) { return value(std::string_view(s)); }
  JsonWriter& value(double d);
  JsonWriter& value(std::int64_t i);
  JsonWriter& value(std::uint64_t u);
  JsonWriter& value(int i) { return value(static_cast<std::int64_t>(i)); }
  JsonWriter& value(unsigned u) { return value(static_cast<std::uint64_t>(u)); }
  JsonWriter& value(bool b);
  JsonWriter& null();

  /// True once every begin has been matched by an end.
  bool complete() const noexcept { return stack_.empty() && wrote_root_; }

 private:
  enum class Scope : unsigned char { kObject, kArray };

  void before_value();
  void write_escaped(std::string_view s);

  std::ostream* os_;
  std::vector<Scope> stack_;
  std::vector<bool> first_in_scope_;
  bool expecting_value_ = false;  ///< a key was just written
  bool wrote_root_ = false;
};

}  // namespace sttgpu
