// Cooperative cancellation for long simulations.
//
// A CancelToken is a lock-free tri-state flag shared between the party that
// wants a run to stop (a SIGINT/SIGTERM handler, the supervisor's watchdog
// thread, a test) and the code doing the work (the Gpu cycle loop, executor
// jobs). Requesting is async-signal-safe; the first reason to arrive wins so
// a user interrupt and a watchdog firing at the same time stay deterministic
// on the requester side.
//
// Work that observes a requested token unwinds by throwing Cancelled, which
// carries the reason so the CLI can map it to a distinct exit code
// (interrupted-resumable vs watchdog-killed) and callers can tell a clean
// user interrupt from a supervision kill.
#pragma once

#include <atomic>
#include <string>

#include "common/error.hpp"

namespace sttgpu {

/// Why a cancellation was requested. Order matters only for naming; the
/// first request on a token wins regardless of reason.
enum class CancelReason : int {
  kNone = 0,      ///< token not requested
  kUser = 1,      ///< SIGINT/SIGTERM or an explicit caller request
  kWatchdog = 2,  ///< supervisor: no forward progress within the budget
  kTimeout = 3,   ///< supervisor: per-job wall-clock budget exceeded
};

inline const char* cancel_reason_name(CancelReason r) noexcept {
  switch (r) {
    case CancelReason::kNone: return "none";
    case CancelReason::kUser: return "user";
    case CancelReason::kWatchdog: return "watchdog";
    case CancelReason::kTimeout: return "timeout";
  }
  return "?";
}

class CancelToken {
 public:
  /// Requests cancellation. The first reason wins; later requests are
  /// ignored. Safe to call from a signal handler and from any thread.
  void request(CancelReason reason) noexcept {
    int expected = 0;
    reason_.compare_exchange_strong(expected, static_cast<int>(reason),
                                    std::memory_order_relaxed);
  }

  bool requested() const noexcept {
    return reason_.load(std::memory_order_relaxed) != 0;
  }

  CancelReason reason() const noexcept {
    return static_cast<CancelReason>(reason_.load(std::memory_order_relaxed));
  }

 private:
  std::atomic<int> reason_{static_cast<int>(CancelReason::kNone)};
  static_assert(std::atomic<int>::is_always_lock_free,
                "CancelToken must be async-signal-safe");
};

/// Thrown by supervised work when its CancelToken is requested. Derives
/// SimError so unaware callers treat an interrupt as a failed run; aware
/// callers (the CLI, run_matrix) read reason() to pick the exit path.
class Cancelled : public SimError {
 public:
  Cancelled(CancelReason reason, const std::string& what)
      : SimError(what), reason_(reason) {}
  CancelReason reason() const noexcept { return reason_; }

 private:
  CancelReason reason_;
};

}  // namespace sttgpu
