// A tiny string-keyed configuration store with typed getters.
//
// Benches and examples accept "key=value" command-line overrides; this class
// parses them and hands typed values to the experiment builders.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace sttgpu {

class Config {
 public:
  Config() = default;

  /// Parses argv-style "key=value" tokens; unknown tokens throw SimError.
  static Config from_args(int argc, const char* const* argv);

  void set(const std::string& key, const std::string& value) { values_[key] = value; }

  bool has(const std::string& key) const { return values_.count(key) != 0; }

  std::string get_string(const std::string& key, const std::string& fallback) const;
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

  const std::map<std::string, std::string>& all() const noexcept { return values_; }

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace sttgpu
