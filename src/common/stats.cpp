#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace sttgpu {

double StreamStats::stddev() const noexcept { return std::sqrt(variance()); }

double StreamStats::cov() const noexcept {
  if (n_ == 0 || mean_ == 0.0) return 0.0;
  return stddev() / mean_;
}

Histogram::Histogram(std::vector<double> upper_edges) : edges_(std::move(upper_edges)) {
  STTGPU_REQUIRE(!edges_.empty(), "Histogram: need at least one bucket edge");
  for (std::size_t i = 1; i < edges_.size(); ++i) {
    STTGPU_REQUIRE(edges_[i] > edges_[i - 1], "Histogram: edges must be strictly increasing");
  }
  counts_.assign(edges_.size() + 1, 0);
}

void Histogram::add(double value, std::uint64_t weight) noexcept {
  const auto it = std::lower_bound(edges_.begin(), edges_.end(), value);
  const std::size_t idx = static_cast<std::size_t>(it - edges_.begin());
  counts_[idx] += weight;
  total_ += weight;
  prefix_valid_ = false;
}

double Histogram::fraction(std::size_t i) const noexcept {
  if (total_ == 0) return 0.0;
  return static_cast<double>(counts_[i]) / static_cast<double>(total_);
}

double Histogram::cumulative_fraction(std::size_t i) const noexcept {
  if (total_ == 0) return 0.0;
  if (!prefix_valid_) {
    prefix_.resize(counts_.size());
    std::uint64_t running = 0;
    for (std::size_t k = 0; k < counts_.size(); ++k) {
      running += counts_[k];
      prefix_[k] = running;
    }
    prefix_valid_ = true;
  }
  const std::size_t idx = i < prefix_.size() ? i : prefix_.size() - 1;
  return static_cast<double>(prefix_[idx]) / static_cast<double>(total_);
}

void Histogram::reset() noexcept {
  std::fill(counts_.begin(), counts_.end(), 0);
  total_ = 0;
  prefix_valid_ = false;
}

double coefficient_of_variation(const std::vector<std::uint64_t>& counts) noexcept {
  if (counts.empty()) return 0.0;
  StreamStats s;
  for (auto c : counts) s.add(static_cast<double>(c));
  return s.cov();
}

double geometric_mean(const std::vector<double>& values) noexcept {
  if (values.empty()) return 0.0;
  double log_sum = 0.0;
  for (double v : values) {
    if (v <= 0.0) return 0.0;
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

std::uint64_t CounterSet::get(const std::string& name) const {
  const auto it = index_.find(name);
  return it == index_.end() ? 0 : values_[it->second];
}

std::map<std::string, std::uint64_t> CounterSet::all() const {
  std::map<std::string, std::uint64_t> out;
  for (std::size_t i = 0; i < names_.size(); ++i) out.emplace(names_[i], values_[i]);
  return out;
}

void CounterSet::merge(const CounterSet& other) {
  for (std::size_t i = 0; i < other.names_.size(); ++i) {
    values_[intern(other.names_[i])] += other.values_[i];
  }
}

}  // namespace sttgpu
