// Deterministic pseudo-random number generation for workload synthesis.
//
// All simulator randomness flows through Rng so that a (seed, workload)
// pair always replays the identical address trace — a prerequisite for the
// paper's architecture comparisons, where every architecture must see the
// same access stream.
#pragma once

#include <cstdint>
#include <cmath>
#include <vector>

#include "common/error.hpp"

namespace sttgpu {

/// xoshiro256** with splitmix64 seeding. Small, fast, reproducible.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t x = seed;
    for (auto& word : s_) {
      // splitmix64 step
      x += 0x9E3779B97F4A7C15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t next_u64() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound == 0 is invalid.
  std::uint64_t next_below(std::uint64_t bound) noexcept {
    // Multiply-shift bounded generation (Lemire); bias is negligible for
    // simulation purposes and the method is branch-free.
    const unsigned __int128 m =
        static_cast<unsigned __int128>(next_u64()) * static_cast<unsigned __int128>(bound);
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  double next_double() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability @p p of returning true.
  bool chance(double p) noexcept { return next_double() < p; }

  /// Geometric-ish exponential variate with the given mean (> 0).
  double next_exponential(double mean) noexcept {
    double u = next_double();
    if (u >= 1.0) u = 0.9999999999;
    return -mean * std::log(1.0 - u);
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4]{};
};

/// Precomputed Zipf(s) sampler over {0, .., n-1}. Used to synthesize hot
/// write-working-sets: a small set of ranks receives most accesses.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double s) : cdf_(n) {
    STTGPU_REQUIRE(n > 0, "ZipfSampler: n must be positive");
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i + 1), s);
      cdf_[i] = sum;
    }
    for (auto& v : cdf_) v /= sum;
  }

  std::size_t sample(Rng& rng) const noexcept {
    const double u = rng.next_double();
    // Binary search for the first CDF entry >= u.
    std::size_t lo = 0, hi = cdf_.size() - 1;
    while (lo < hi) {
      const std::size_t mid = (lo + hi) / 2;
      if (cdf_[mid] < u) lo = mid + 1; else hi = mid;
    }
    return lo;
  }

  std::size_t size() const noexcept { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace sttgpu
