#include "common/telemetry.hpp"

#include <algorithm>
#include <ostream>

#include "common/error.hpp"
#include "common/json.hpp"

namespace sttgpu {

Telemetry::Telemetry(Cycle interval_cycles) : interval_(interval_cycles) {
  STTGPU_REQUIRE(interval_ >= 1, "Telemetry: interval must be >= 1 cycle");
}

void Telemetry::set_us_per_cycle(double us_per_cycle) {
  STTGPU_REQUIRE(us_per_cycle > 0.0, "Telemetry: us_per_cycle must be positive");
  us_per_cycle_ = us_per_cycle;
}

void Telemetry::begin_frame(Cycle now) {
  STTGPU_REQUIRE(!in_frame_, "Telemetry: begin_frame with a frame already open");
  STTGPU_REQUIRE(frame_cycles_.empty() || now > frame_cycles_.back(),
                 "Telemetry: frames must advance in time");
  frame_cycles_.push_back(now);
  in_frame_ = true;
}

Telemetry::Track& Telemetry::track_for(std::string_view name, bool is_counter) {
  const auto it = index_.find(std::string(name));
  if (it != index_.end()) {
    Track& t = tracks_[it->second];
    STTGPU_REQUIRE(t.is_counter == is_counter,
                   "Telemetry: track '" + t.name + "' sampled as both counter and gauge");
    return t;
  }
  const std::size_t id = tracks_.size();
  index_.emplace(std::string(name), id);
  Track t;
  t.name = std::string(name);
  t.is_counter = is_counter;
  // Frames before this track first appeared read as zero (counters started
  // cumulative at zero; a gauge nobody sampled was not meaningful yet).
  t.samples.assign(frame_cycles_.empty() ? 0 : frame_cycles_.size() - 1, 0.0);
  tracks_.push_back(std::move(t));
  return tracks_.back();
}

void Telemetry::record(std::string_view name, bool is_counter, double value) {
  STTGPU_REQUIRE(in_frame_, "Telemetry: sample outside begin_frame/end_frame");
  Track& t = track_for(name, is_counter);
  STTGPU_REQUIRE(t.samples.size() < frame_cycles_.size(),
                 "Telemetry: track '" + t.name + "' sampled twice in one frame");
  t.samples.push_back(value);
}

void Telemetry::counter(std::string_view track, std::uint64_t cumulative) {
  record(track, /*is_counter=*/true, static_cast<double>(cumulative));
}

void Telemetry::gauge(std::string_view track, double value) {
  record(track, /*is_counter=*/false, value);
}

void Telemetry::end_frame() {
  STTGPU_REQUIRE(in_frame_, "Telemetry: end_frame without an open frame");
  for (Track& t : tracks_) {
    // Not sampled this frame: carry the last value forward (zero increment
    // for counters, held reading for gauges).
    if (t.samples.size() < frame_cycles_.size()) {
      t.samples.push_back(t.samples.empty() ? 0.0 : t.samples.back());
    }
  }
  in_frame_ = false;
  if (on_frame_) on_frame_(*this, frame_cycles_.size() - 1);
}

void Telemetry::slice(std::string_view track, std::string_view name, Cycle begin, Cycle end) {
  STTGPU_REQUIRE(end >= begin, "Telemetry: slice ends before it begins");
  slices_.push_back(Slice{std::string(track), std::string(name), begin, end});
}

void Telemetry::instant(std::string_view track, std::string_view name, Cycle at) {
  instants_.push_back(Instant{std::string(track), std::string(name), at});
}

std::vector<double> Telemetry::track_deltas(std::size_t track) const {
  const Track& t = tracks_.at(track);
  std::vector<double> out;
  out.reserve(t.samples.size());
  double prev = 0.0;
  for (const double v : t.samples) {
    out.push_back(t.is_counter ? v - prev : v);
    prev = v;
  }
  return out;
}

std::size_t Telemetry::find_track(std::string_view name) const {
  const auto it = index_.find(std::string(name));
  return it == index_.end() ? npos : it->second;
}

void Telemetry::write_json(JsonWriter& w) const {
  w.begin_object();
  w.key("interval").value(static_cast<std::uint64_t>(interval_));
  w.key("us_per_cycle").value(us_per_cycle_);
  w.key("cycle").begin_array();
  for (const Cycle c : frame_cycles_) w.value(static_cast<std::uint64_t>(c));
  w.end_array();
  w.key("counters").begin_object();
  for (std::size_t t = 0; t < tracks_.size(); ++t) {
    if (!tracks_[t].is_counter) continue;
    w.key(tracks_[t].name).begin_array();
    for (const double v : track_deltas(t)) w.value(v);
    w.end_array();
  }
  w.end_object();
  w.key("gauges").begin_object();
  for (const Track& t : tracks_) {
    if (t.is_counter) continue;
    w.key(t.name).begin_array();
    for (const double v : t.samples) w.value(v);
    w.end_array();
  }
  w.end_object();
  w.end_object();
}

namespace {

/// One pre-sorted trace event; `kind` disambiguates the payload.
struct TraceEvent {
  enum Kind { kCounter, kSlice, kInstant } kind = kCounter;
  double ts = 0.0;
  double dur = 0.0;           ///< slices
  double value = 0.0;         ///< counters
  const std::string* name = nullptr;
  unsigned tid = 0;           ///< slices / instants
};

}  // namespace

void Telemetry::write_chrome_trace(std::ostream& os) const {
  // Slice/instant tracks become named threads so Perfetto draws each on its
  // own row; counter tracks are grouped by event name automatically.
  std::unordered_map<std::string, unsigned> tids;
  std::vector<const std::string*> tid_names;
  const auto tid_of = [&](const std::string& track) {
    const auto it = tids.find(track);
    if (it != tids.end()) return it->second;
    const unsigned tid = static_cast<unsigned>(tids.size()) + 1;
    tids.emplace(track, tid);
    tid_names.push_back(&tids.find(track)->first);
    return tid;
  };

  std::vector<TraceEvent> events;
  std::vector<std::vector<double>> deltas(tracks_.size());
  for (std::size_t t = 0; t < tracks_.size(); ++t) deltas[t] = track_deltas(t);
  events.reserve(frame_cycles_.size() * tracks_.size() + slices_.size() + instants_.size());
  for (std::size_t f = 0; f < frame_cycles_.size(); ++f) {
    const double ts = static_cast<double>(frame_cycles_[f]) * us_per_cycle_;
    for (std::size_t t = 0; t < tracks_.size(); ++t) {
      TraceEvent e;
      e.kind = TraceEvent::kCounter;
      e.ts = ts;
      e.value = deltas[t][f];
      e.name = &tracks_[t].name;
      events.push_back(e);
    }
  }
  for (const Slice& s : slices_) {
    TraceEvent e;
    e.kind = TraceEvent::kSlice;
    e.ts = static_cast<double>(s.begin) * us_per_cycle_;
    e.dur = static_cast<double>(s.end - s.begin) * us_per_cycle_;
    e.name = &s.name;
    e.tid = tid_of(s.track);
    events.push_back(e);
  }
  for (const Instant& i : instants_) {
    TraceEvent e;
    e.kind = TraceEvent::kInstant;
    e.ts = static_cast<double>(i.at) * us_per_cycle_;
    e.name = &i.name;
    e.tid = tid_of(i.track);
    events.push_back(e);
  }
  // Trace viewers require non-decreasing timestamps; stable sort keeps the
  // deterministic emission order among same-cycle events.
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) { return a.ts < b.ts; });

  JsonWriter w(os);
  w.begin_object();
  w.key("displayTimeUnit").value("ms");
  w.key("traceEvents").begin_array();
  w.begin_object();
  w.key("name").value("process_name");
  w.key("ph").value("M");
  w.key("pid").value(0u);
  w.key("args").begin_object().key("name").value("sttgpu").end_object();
  w.end_object();
  for (unsigned tid = 1; tid <= tid_names.size(); ++tid) {
    w.begin_object();
    w.key("name").value("thread_name");
    w.key("ph").value("M");
    w.key("pid").value(0u);
    w.key("tid").value(tid);
    w.key("args").begin_object().key("name").value(*tid_names[tid - 1]).end_object();
    w.end_object();
  }
  for (const TraceEvent& e : events) {
    w.begin_object();
    w.key("name").value(*e.name);
    switch (e.kind) {
      case TraceEvent::kCounter:
        w.key("ph").value("C");
        w.key("pid").value(0u);
        w.key("ts").value(e.ts);
        w.key("args").begin_object().key("value").value(e.value).end_object();
        break;
      case TraceEvent::kSlice:
        w.key("ph").value("X");
        w.key("pid").value(0u);
        w.key("tid").value(e.tid);
        w.key("ts").value(e.ts);
        w.key("dur").value(e.dur);
        break;
      case TraceEvent::kInstant:
        w.key("ph").value("i");
        w.key("pid").value(0u);
        w.key("tid").value(e.tid);
        w.key("ts").value(e.ts);
        w.key("s").value("t");
        break;
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

void Telemetry::write_csv(std::ostream& os) const {
  os << "cycle";
  for (const Track& t : tracks_) os << ',' << t.name;
  os << '\n';
  std::vector<std::vector<double>> deltas(tracks_.size());
  for (std::size_t t = 0; t < tracks_.size(); ++t) deltas[t] = track_deltas(t);
  for (std::size_t f = 0; f < frame_cycles_.size(); ++f) {
    os << frame_cycles_[f];
    for (std::size_t t = 0; t < tracks_.size(); ++t) os << ',' << deltas[t][f];
    os << '\n';
  }
}

}  // namespace sttgpu
