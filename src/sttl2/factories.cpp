#include "sttl2/factories.hpp"

#include "common/error.hpp"

namespace sttgpu::sttl2 {

const char* to_string(SearchPolicy p) noexcept {
  switch (p) {
    case SearchPolicy::kParallel: return "parallel";
    case SearchPolicy::kSequential: return "sequential";
  }
  return "?";
}

void UniformBankFactory::collect(const gpu::L2Bank& bank, CounterSet& out) const {
  const auto* base = dynamic_cast<const BankBase*>(&bank);
  STTGPU_ASSERT(base != nullptr);
  out.merge(base->counters());
}

void TwoPartBankFactory::collect(const gpu::L2Bank& bank, CounterSet& out) const {
  const auto* base = dynamic_cast<const BankBase*>(&bank);
  STTGPU_ASSERT(base != nullptr);
  out.merge(base->counters());
}

}  // namespace sttgpu::sttl2
