// L2BankFactory implementations wiring the bank types into gpu::Gpu.
#pragma once

#include "common/units.hpp"
#include "gpu/gpu.hpp"
#include "sttl2/config.hpp"
#include "sttl2/two_part_bank.hpp"
#include "sttl2/uniform_bank.hpp"

namespace sttgpu::sttl2 {

/// Builds identical UniformBank instances (SRAM or naive STT baseline).
class UniformBankFactory final : public gpu::L2BankFactory {
 public:
  UniformBankFactory(UniformBankConfig per_bank, Clock clock)
      : config_(per_bank), clock_(clock) {}

  std::unique_ptr<gpu::L2Bank> make_bank(unsigned bank_id, gpu::DramChannel& dram) override {
    return std::make_unique<UniformBank>(bank_id, config_, clock_, dram);
  }
  void collect(const gpu::L2Bank& bank, CounterSet& out) const override;

  const UniformBankConfig& config() const noexcept { return config_; }

 private:
  UniformBankConfig config_;
  Clock clock_;
};

/// Builds identical TwoPartBank instances (the proposed architecture).
class TwoPartBankFactory final : public gpu::L2BankFactory {
 public:
  TwoPartBankFactory(TwoPartBankConfig per_bank, Clock clock)
      : config_(per_bank), clock_(clock) {}

  std::unique_ptr<gpu::L2Bank> make_bank(unsigned bank_id, gpu::DramChannel& dram) override {
    return std::make_unique<TwoPartBank>(bank_id, config_, clock_, dram);
  }
  void collect(const gpu::L2Bank& bank, CounterSet& out) const override;

  const TwoPartBankConfig& config() const noexcept { return config_; }

 private:
  TwoPartBankConfig config_;
  Clock clock_;
};

}  // namespace sttgpu::sttl2
