// The paper's proposed two-part STT-RAM L2 bank (Section 5, Figure 7).
//
// Two parallel arrays with independent ports:
//   * LR — small, low-retention (default 26.5us), 2-way: fast/cheap writes,
//     holds the running application's write working set. Needs refresh,
//     tracked by 4-bit per-line retention counters; the refresh is postponed
//     to the last counter period and staged through the LR->HR buffer.
//   * HR — large, high-retention (default 40ms), 7-way: read-mostly data.
//     Expired lines are invalidated (clean) or written back (dirty) — no
//     refresh in HR.
//
// WWS monitor: a per-line saturating write counter in HR; a write arriving
// at a line whose counter has already reached the threshold migrates the
// line to LR (threshold 1 == the conventional modified bit, the paper's
// free monitor). Fills always install into HR; LR is populated exclusively
// by migration, so one-shot streaming writes never pollute it.
//
// Swap buffers: HR->LR (migrations) and LR->HR (LR evictions + refresh
// staging) of `buffer_lines` entries each. A full LR->HR buffer forces
// dirty lines straight to DRAM (the paper's worst case: ~1% of writes).
//
// Search: sequential (writes probe LR tags first, reads probe HR first;
// miss probes the other serially) or parallel (both probed at once).
#pragma once

#include <queue>

#include "cache/tag_array.hpp"
#include "cache/write_stats.hpp"
#include "power/array_model.hpp"
#include "sttl2/bank_base.hpp"
#include "sttl2/config.hpp"
#include "sttl2/fault_model.hpp"
#include "sttl2/retention.hpp"
#include "sttl2/rewrite_tracker.hpp"

namespace sttgpu::sttl2 {

/// Sliding-window occupancy model of a small swap buffer: each staged line
/// occupies a slot until the cycle its destination write completes.
class BufferWindow {
 public:
  explicit BufferWindow(unsigned capacity) : capacity_(capacity) {}

  bool full(Cycle now) noexcept {
    prune(now);
    return busy_until_.size() >= capacity_;
  }
  void add(Cycle done) { busy_until_.push_back(done); }
  std::size_t in_use(Cycle now) noexcept {
    prune(now);
    return busy_until_.size();
  }
  /// Non-mutating occupancy count (diagnostic dumps on const paths).
  std::size_t in_use_at(Cycle now) const noexcept {
    std::size_t n = 0;
    for (const Cycle c : busy_until_) n += c > now ? 1 : 0;
    return n;
  }
  unsigned capacity() const noexcept { return capacity_; }

 private:
  void prune(Cycle now) noexcept {
    std::erase_if(busy_until_, [now](Cycle c) { return c <= now; });
  }
  unsigned capacity_;
  std::vector<Cycle> busy_until_;
};

class TwoPartBank final : public BankBase {
 public:
  TwoPartBank(unsigned bank_id, const TwoPartBankConfig& config, const Clock& clock,
              gpu::DramChannel& dram);

  Watt leakage_w() const override { return hr_costs_.leakage_w + lr_costs_.leakage_w; }

  /// Base counters plus the two-part gauges: LR/HR occupancy, swap-buffer
  /// depths and the current (possibly adapted) migration threshold.
  void sample_telemetry(Cycle now, Telemetry& out) override;

  /// Base queue depths plus swap-buffer fill, migration threshold and the
  /// refresh/expiry backlog (watchdog diagnostic dumps).
  void describe_state(std::ostream& os, Cycle now) const override;

  // --- figure hooks ---
  const RewriteTracker& lr_rewrites() const noexcept { return lr_rewrites_; }
  const RewriteTracker& hr_rewrites() const noexcept { return hr_rewrites_; }

  /// Fraction of demand stores served directly by an LR write hit (a
  /// migration does not count: it means the block had fallen out of LR).
  /// The quantity of Figs. 4/5.
  double lr_write_utilization() const noexcept;

  const TwoPartBankConfig& config() const noexcept { return config_; }
  const power::ArrayCosts& hr_costs() const noexcept { return hr_costs_; }
  const power::ArrayCosts& lr_costs() const noexcept { return lr_costs_; }
  const cache::TagArray& lr_tags() const noexcept { return lr_tags_; }
  const cache::TagArray& hr_tags() const noexcept { return hr_tags_; }

  /// Physical-write (wear) distribution over each part's cells, including
  /// fills, migrations and refreshes — the endurance view of i2WAP.
  const cache::WriteVariationTracker& lr_wear() const noexcept { return lr_wear_; }
  const cache::WriteVariationTracker& hr_wear() const noexcept { return hr_wear_; }

  /// Current (possibly adapted) migration threshold.
  unsigned current_threshold() const noexcept { return threshold_; }

  /// Current LR index rotation (wear-leveling extension).
  std::uint64_t lr_rotation_offset() const noexcept { return lr_offset_; }

  /// Fault-injection streams (inert when config().faults.enabled is false).
  const FaultModel& lr_faults() const noexcept { return lr_faults_; }
  const FaultModel& hr_faults() const noexcept { return hr_faults_; }

 protected:
  void process_request(const gpu::L2Request& request, Cycle now) override;
  void process_fill(Addr line_addr, Cycle now) override;
  void maintenance(Cycle now) override;
  Cycle impl_next_event() const override;

 private:
  struct TimedLineRef {
    Cycle when;
    std::uint64_t set;
    unsigned way;
    Cycle deadline;  ///< entry valid only if it matches the line's deadline
    bool operator>(const TimedLineRef& o) const noexcept { return when > o.when; }
  };

  void service(const gpu::L2Request& request, Cycle now, bool replay);
  /// Write into an LR-resident line (way known).
  Cycle lr_write_hit(Addr line_addr, unsigned way, Cycle now);
  /// Write into an HR-resident line; may trigger migration. Returns the
  /// completion cycle for the triggering store's ack.
  Cycle hr_write_hit(Addr line_addr, unsigned way, Cycle now);
  /// Installs @p addr into LR (migration target), evicting as needed.
  Cycle lr_install(Addr addr, bool dirty, std::uint32_t write_count, Cycle last_write,
                   Cycle now);
  /// Evicts the LR line at (set, way) toward HR via the LR->HR buffer (or
  /// forces it to DRAM if the buffer is full).
  void lr_evict(std::uint64_t set, unsigned way, Cycle now);
  /// Installs a line into HR (fills and LR evictions land here).
  Cycle hr_install(Addr addr, bool dirty, std::uint32_t write_count, Cycle now);

  void do_refresh(Cycle now);
  void do_hr_expiry(Cycle now);
  void adapt_threshold(Cycle now);
  void rotate_lr_mapping(Cycle now);

  /// LR set-mapping rotation (wear leveling): the LR tag array is keyed by
  /// a shifted address so the same line lands in a different physical set
  /// after each rotation.
  Addr to_lr(Addr a) const noexcept { return a + lr_offset_ * config_.line_bytes; }
  Addr from_lr(Addr a) const noexcept { return a - lr_offset_ * config_.line_bytes; }

  /// Charges one physical line write in the given part, honouring EWT.
  void charge_lr_write(Addr addr);
  void charge_hr_write(Addr addr);

  // --- fault injection (every helper is a no-op when faults are disabled) ---

  /// One physical data-array write (occupancy + energy + write-verify
  /// retries). Replaces the occupy/charge pair on every write path; returns
  /// the completion cycle of the last pulse.
  Cycle lr_data_write(Addr key, Cycle now);
  Cycle hr_data_write(Addr addr, Cycle now);

  /// Evaluates the decay interval of the hit line ending at @p now and
  /// applies recovery: ECC-corrects a single-bit collapse with a scrub
  /// write; invalidates unrecoverable lines (clean -> the demand access
  /// falls through to a transparent DRAM re-fetch; dirty -> counted data
  /// loss). Returns true if the line was invalidated.
  bool fault_read_check(bool lr_part, Addr key, unsigned way, Cycle now);

  enum class Carry { kOk, kDrop };
  /// Evaluates the decay interval of a line whose data was just read out to
  /// be carried elsewhere (eviction, writeback, refresh). kDrop: the data is
  /// unrecoverable (or clean and re-fetchable) and must not be propagated.
  Carry fault_carry_trial(FaultModel& fm, cache::LineMeta& line, Cycle retention_cycles,
                          Cycle now);

  /// Applies the write-verify retry policy to a write finishing at @p done.
  Cycle apply_write_verify(FaultModel& fm, SubbankedServer& data, Addr key, Cycle done,
                           Cycle occ, power::EnergyId cat, PicoJoule pulse_pj);

  TwoPartBankConfig config_;
  Clock clock_;

  power::ArrayCosts hr_costs_;
  power::ArrayCosts lr_costs_;
  cache::TagArray hr_tags_;
  cache::TagArray lr_tags_;

  RetentionClock hr_retention_;
  RetentionClock lr_retention_;

  FaultModel lr_faults_;
  FaultModel hr_faults_;

  SubbankedServer hr_data_;
  SubbankedServer lr_data_;

  // cycles, precomputed from the array models
  Cycle hr_tag_lat_, lr_tag_lat_;
  Cycle hr_read_occ_, hr_write_occ_;
  Cycle lr_read_occ_, lr_write_occ_;
  PicoJoule buffer_entry_pj_;

  BufferWindow hr2lr_;
  BufferWindow lr2hr_;

  std::priority_queue<TimedLineRef, std::vector<TimedLineRef>, std::greater<>> refresh_q_;
  std::priority_queue<TimedLineRef, std::vector<TimedLineRef>, std::greater<>> hr_expiry_q_;

  RewriteTracker lr_rewrites_;
  RewriteTracker hr_rewrites_;

  cache::WriteVariationTracker lr_wear_;
  cache::WriteVariationTracker hr_wear_;

  // Adaptive-threshold state (extension; inert when disabled).
  unsigned threshold_;
  Cycle next_adapt_ = 0;
  std::uint64_t interval_migrations_ = 0;
  std::uint64_t interval_evictions_ = 0;

  double write_energy_scale_ = 1.0;  ///< EWT factor (1.0 when disabled)

  // Wear-leveling state (extension; inert when disabled).
  std::uint64_t lr_offset_ = 0;
  std::uint64_t lr_writes_since_rotation_ = 0;

  // Ledger/counter handles, interned once at construction so the per-access
  // path indexes vectors instead of hashing category/counter names.
  struct EnergyIds {
    power::EnergyId lr_data_write, lr_tag_update, lr_tag_probe, lr_data_read, lr_refresh;
    power::EnergyId hr_data_write, hr_tag_update, hr_tag_probe, hr_data_read;
    power::EnergyId buffer;
    // Interned only when fault injection is enabled, so disabled runs report
    // the exact same category set as before the subsystem existed.
    power::EnergyId fault_scrub = 0;
  } e_;
  struct CounterIds {
    CounterId w_demand, w_lr, w_lr_hit, w_hr;
    CounterId tag_probes_lr, tag_probes_hr;
    CounterId lr_phys_writes, hr_phys_writes;
    CounterId migrations, migrations_blocked, lr_evictions;
    CounterId lr_forced_wb, lr_forced_drop;
    CounterId hr_evict_dirty, hr_evict_clean;
    CounterId refreshes, refresh_forced_wb, refresh_forced_drop;
    CounterId hr_expired_dirty, hr_expired_clean;
    CounterId wear_rotations, threshold_up, threshold_down;
    // Fault-injection counters; interned only when enabled (a CounterId of 0
    // would alias the first real counter, so every use is gated).
    CounterId fault_ecc_corrected = 0, fault_ecc_detected = 0;
    CounterId fault_clean_refetch = 0, fault_data_loss = 0;
    CounterId fault_wv_retries = 0, fault_wv_escalations = 0;
  } c_;
};

}  // namespace sttgpu::sttl2
