#include "sttl2/fault_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace sttgpu::sttl2 {

namespace {

// Lifetime histogram edges: geometric, 50 ns .. 10 s at ratio 1.05. Fine
// enough that analyze_reliability's bucket-midpoint assessment differs from
// the exact per-lifetime expectation by under ~2.5% in the linear (p ~ t)
// regime — well inside the cross-validation tolerance.
std::vector<double> lifetime_edges_ns() {
  std::vector<double> edges;
  for (double e = 50.0; e < 1e10; e *= 1.05) edges.push_back(e);
  return edges;
}

std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t salt) {
  // splitmix64 finalizer over the xor — decorrelates per-part streams that
  // share a user-facing seed.
  std::uint64_t z = seed ^ (salt * 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

Cycle fault_interval_start(const cache::LineMeta& line, Cycle retention_cycles) noexcept {
  Cycle origin;
  if (line.retention_deadline != kNoCycle) {
    origin = line.retention_deadline - retention_cycles;
  } else if (line.last_write_cycle != kNoCycle) {
    origin = line.last_write_cycle;
  } else {
    origin = line.insert_cycle;
  }
  // A fault check from a *previous* interval (before the latest rewrite) is
  // stale; max() keeps whichever event is more recent without the write
  // paths having to reset the field.
  if (line.fault_check_cycle != kNoCycle && line.fault_check_cycle > origin) {
    origin = line.fault_check_cycle;
  }
  return origin;
}

FaultModel::FaultModel(const FaultInjectionConfig& config, double retention_s,
                       const Clock& clock, std::uint64_t stream_salt)
    : config_(config),
      retention_s_(retention_s > 0.0 ? retention_s : 1.0),
      clock_(clock),
      rng_(mix_seed(config.seed, stream_salt)),
      lifetimes_(lifetime_edges_ns()),
      overflow_ns_(1e10) {
  if (retention_s <= 0.0) config_.enabled = false;  // SRAM: no retention physics
  if (config_.enabled) {
    STTGPU_REQUIRE(config_.accel >= 0.0, "FaultModel: accel must be non-negative");
    STTGPU_REQUIRE(config_.spec_margin >= 1.0, "FaultModel: spec margin must be >= 1");
    STTGPU_REQUIRE(config_.write_fail_prob >= 0.0 && config_.write_fail_prob <= 1.0,
                   "FaultModel: write_fail_prob must be a probability");
  }
  thermal_life_s_ = retention_s_ * config_.spec_margin;
  write_fail_p_ = std::min(config_.write_fail_prob * std::max(config_.accel, 1.0), 1.0);
}

double FaultModel::collapse_probability(Cycle written_at, Cycle now) const noexcept {
  if (now <= written_at) return 0.0;
  const double t_s = clock_.seconds_for_cycles(now - written_at);
  return 1.0 - std::exp(-config_.accel * t_s / thermal_life_s_);
}

FaultModel::Collapse FaultModel::sample_collapse(Cycle written_at, Cycle now) {
  // Zero-length intervals (the line was written or already evaluated this
  // very cycle) are not trials: no time passed, nothing could decay.
  if (now <= written_at) return Collapse::kNone;
  lifetimes_.add(clock_.ns_for_cycles(now - written_at));
  ++trials_;
  const double p = collapse_probability(written_at, now);
  expected_ += p;
  if (!rng_.chance(p)) return Collapse::kNone;
  ++collapses_;
  // Poisson bit-error split: lambda expected bad bits given P(>=1 bad) = p.
  const double lambda = -std::log1p(-p);
  const double p_single = lambda * std::exp(-lambda) / p;
  return rng_.chance(p_single) ? Collapse::kSingleBit : Collapse::kMultiBit;
}

bool FaultModel::sample_write_failure() { return rng_.chance(write_fail_p_); }

FaultModel::WriteVerify FaultModel::run_write_verify() {
  WriteVerify wv;
  if (!sample_write_failure()) return wv;
  while (wv.retries < config_.write_retry_limit) {
    ++wv.retries;
    if (!sample_write_failure()) return wv;
  }
  wv.escalated = true;
  return wv;
}

}  // namespace sttgpu::sttl2
