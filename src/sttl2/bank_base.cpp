#include "sttl2/bank_base.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/telemetry.hpp"

namespace sttgpu::sttl2 {

namespace {
struct ReadyLater {
  bool operator()(const gpu::L2Response& a, const gpu::L2Response& b) const noexcept {
    return a.ready > b.ready;  // min-heap on ready
  }
};
}  // namespace

BankBase::BankBase(unsigned bank_id, unsigned line_bytes, unsigned input_queue_limit,
                   gpu::DramChannel& dram)
    : bank_id_(bank_id),
      line_bytes_(line_bytes),
      input_queue_limit_(input_queue_limit),
      dram_(&dram) {
  STTGPU_REQUIRE(is_pow2(line_bytes), "BankBase: line size must be a power of two");
  STTGPU_REQUIRE(input_queue_limit > 0, "BankBase: need a positive input queue limit");
}

bool BankBase::accepting() const { return input_.size() < input_queue_limit_; }

void BankBase::enqueue(const gpu::L2Request& request, Cycle /*now*/) {
  STTGPU_ASSERT_MSG(accepting(), "BankBase: enqueue on full input queue");
  input_.push_back(request);
}

void BankBase::on_dram_read_done(std::uint64_t cookie, Cycle /*now*/) {
  fills_ready_.push_back(static_cast<Addr>(cookie));
}

void BankBase::tick(Cycle now) {
  if (!fills_ready_.empty()) {
    // Swap into the member scratch first: process_fill may trigger new DRAM
    // reads, but those complete on later ticks only (DRAM latency > 0), so
    // fills_ready_ is not repopulated while the swapped-out batch is walked
    // — and both vectors keep their capacity across ticks.
    fills_scratch_.clear();
    fills_scratch_.swap(fills_ready_);
    for (const Addr line : fills_scratch_) process_fill(line, now);
  }
  while (!input_.empty()) {
    const gpu::L2Request req = input_.front();
    input_.pop_front();
    process_request(req, now);
  }
  // Deadline gate: with every implementation deadline in the future the
  // call would be a pure heap-top check per queue (provably no-op), so the
  // cached deadline — lowered at every scheduling site, recomputed after
  // every run — skips it without changing any result.
  if (now >= maint_next_) {
    maintenance(now);
    maint_next_ = impl_next_event();
  }
}

void BankBase::drain_responses(Cycle now, std::vector<gpu::L2Response>& out) {
  while (!responses_.empty() && responses_.front().ready <= now) {
    std::pop_heap(responses_.begin(), responses_.end(), ReadyLater{});
    out.push_back(responses_.back());
    responses_.pop_back();
  }
}

bool BankBase::idle() const {
  return input_.empty() && responses_.empty() && pending_.empty() &&
         fills_ready_.empty() && impl_idle();
}

Cycle BankBase::next_event_cycle() const {
  // Queued demand requests and arrived fills are processed on the next tick,
  // whenever that is: "event due now". (pending_ DRAM reads need no entry —
  // their completion is the owning DramChannel's event.)
  if (!input_.empty() || !fills_ready_.empty()) return 0;
  // The cached deadline is never later than the true implementation event
  // (see sched_impl_event), so it can stand in for the virtual call here.
  Cycle next = maint_next_;
  // responses_ is a min-heap on ready: front matures first.
  if (!responses_.empty() && responses_.front().ready < next) {
    next = responses_.front().ready;
  }
  return next;
}

void BankBase::request_fill(Addr line, const gpu::L2Request& request, Cycle now) {
  Waiters* w = pending_.find(line);
  const bool fresh = w == nullptr;
  if (fresh) {
    // Recycle a retired entry so the waiter vectors keep their capacity
    // instead of re-growing from empty on every fill.
    Waiters recycled;
    if (!free_waiters_.empty()) {
      recycled = std::move(free_waiters_.back());
      free_waiters_.pop_back();
      recycled.reads.clear();
      recycled.writes.clear();
    }
    w = &pending_[line];
    *w = std::move(recycled);
  }
  if (request.is_store) {
    w->writes.push_back(request);
  } else {
    w->reads.push_back(request);
  }
  if (fresh) {
    dram_->read(line, static_cast<std::uint64_t>(line), now);
    ++stats_.dram_reads;
  }
}

const BankBase::Waiters& BankBase::take_waiters(Addr line) {
  Waiters* w = pending_.find(line);
  STTGPU_ASSERT_MSG(w != nullptr, "BankBase: fill without waiters entry");
  waiters_scratch_.reads.clear();
  waiters_scratch_.writes.clear();
  waiters_scratch_.reads.swap(w->reads);
  waiters_scratch_.writes.swap(w->writes);
  free_waiters_.push_back(std::move(*w));
  pending_.erase(line);
  return waiters_scratch_;
}

void BankBase::respond(const gpu::L2Request& request, Cycle ready) {
  gpu::L2Response resp;
  resp.id = request.id;
  resp.addr = request.addr;
  resp.is_store = request.is_store;
  resp.sm_id = request.sm_id;
  resp.ready = ready;
  responses_.push_back(resp);
  std::push_heap(responses_.begin(), responses_.end(), ReadyLater{});
}

void BankBase::dram_writeback(Addr line, Cycle now) {
  dram_->write(line, now);
  ++stats_.dram_writebacks;
}

std::string BankBase::telemetry_prefix() const {
  return "l2b" + std::to_string(bank_id_) + '.';
}

void BankBase::sample_telemetry(Cycle /*now*/, Telemetry& out) {
  const std::string p = telemetry_prefix();
  out.counter(p + "read_hits", stats_.read_hits);
  out.counter(p + "read_misses", stats_.read_misses);
  out.counter(p + "write_hits", stats_.write_hits);
  out.counter(p + "write_misses", stats_.write_misses);
  out.counter(p + "dram_reads", stats_.dram_reads);
  out.counter(p + "dram_writebacks", stats_.dram_writebacks);
  // Every implementation counter (migrations, refreshes, expiries, fault
  // recoveries, ...) becomes a per-bank track; ids are interned at bank
  // construction so the set is stable across frames.
  for (CounterId id = 0; id < static_cast<CounterId>(counters_.size()); ++id) {
    out.counter(p + counters_.name(id), counters_.at(id));
  }
  out.gauge(p + "input_queue", static_cast<double>(input_.size()));
}

void BankBase::describe_state(std::ostream& os, Cycle /*now*/) const {
  os << "input=" << input_.size() << '/' << input_queue_limit_
     << " pending_fills=" << pending_.size() << " responses=" << responses_.size()
     << " fills_ready=" << fills_ready_.size();
}

}  // namespace sttgpu::sttl2
