// Per-line STT-RAM fault injection (Section 4's "early data bit collapse",
// made to actually happen in-sim).
//
// The analytic reliability report (reliability.hpp) scores the paper's
// retention trade *after the fact* from a lifetime histogram. This module is
// the in-simulation counterpart: every time a stored datum's lifetime ends —
// it is rewritten, refreshed, read out for a writeback, or accessed by a
// demand read — the owning bank asks the FaultModel whether the datum
// collapsed during that lifetime. The collapse probability is the same
// Néel–Arrhenius law the analytic model uses,
//
//     P(collapse within t) = 1 - exp(-accel * t / (retention * spec_margin)),
//
// so the injected failure count converges to the analyze_reliability
// prediction evaluated over the same lifetimes (the cross-validation test in
// tests/test_sttl2_faults.cpp). `accel` scales the hazard so statistics
// converge in feasible horizons; at accel=1 and realistic guard bands the
// per-run expectation is << 1, exactly as the analytic report says.
//
// Collapse severity follows a Poisson bit-error interpretation of the line
// hazard: with lambda = -ln(1 - P) expected collapsed bits, a collapsed line
// has exactly one bad bit with probability lambda*e^-lambda / (1 - e^-lambda)
// — which is what a SECDED code can repair — and more than one otherwise.
//
// Stochastic write failures model the MTJ's non-deterministic switching:
// each physical line write fails verification with write_fail_prob (times
// accel); the recovery policy (bounded retry, then a boosted pulse) lives in
// the banks, which charge the extra energy and occupancy per retry.
//
// Determinism: each FaultModel owns a private xoshiro stream seeded from
// (config seed, stream salt), so a (seed, workload) pair replays the exact
// fault sequence regardless of thread count or fast-forward mode. A
// disabled model performs no draws and the banks never call into it.
#pragma once

#include <cstdint>

#include "cache/tag_array.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/units.hpp"
#include "sttl2/config.hpp"

namespace sttgpu::sttl2 {

/// Start cycle of @p line's current *unevaluated* decay interval: the later
/// of the last fault evaluation and the last physical write. The write time
/// is derived from the retention deadline (deadline - retention) so that
/// refreshes and scrubs — which restart decay without touching
/// last_write_cycle — are honoured; lines that never set a deadline
/// (non-volatile arrays) fall back to last_write_cycle, then insert_cycle.
/// Evaluating disjoint intervals is exact for the exponential (memoryless)
/// collapse law: P(fail in [a,c] | alive at b) factors through [a,b], [b,c].
Cycle fault_interval_start(const cache::LineMeta& line, Cycle retention_cycles) noexcept;

class FaultModel {
 public:
  /// Outcome of one completed data lifetime.
  enum class Collapse {
    kNone,       ///< datum survived
    kSingleBit,  ///< one collapsed bit — SECDED-correctable
    kMultiBit,   ///< >= 2 collapsed bits — SECDED detects, cannot correct
  };

  /// @p retention_s quoted retention of the array's cells; @p stream_salt
  /// decorrelates per-bank / per-part RNG streams (e.g. bank_id * 2 + part).
  /// A non-positive retention (SRAM cells) force-disables the model: fault
  /// injection is an STT-RAM retention phenomenon, so an SRAM bank with
  /// faults "enabled" is simply inert rather than an error.
  FaultModel(const FaultInjectionConfig& config, double retention_s, const Clock& clock,
             std::uint64_t stream_salt);

  bool enabled() const noexcept { return config_.enabled; }
  const FaultInjectionConfig& config() const noexcept { return config_; }
  double retention_s() const noexcept { return retention_s_; }

  /// Collapse probability for a datum stored for [written_at, now].
  double collapse_probability(Cycle written_at, Cycle now) const noexcept;

  /// Samples one completed data lifetime [written_at, now]: records the
  /// trial (lifetime histogram + exact expectation) and draws the outcome.
  /// Precondition: enabled().
  Collapse sample_collapse(Cycle written_at, Cycle now);

  /// Samples one write attempt; true = the attempt failed verification.
  /// Precondition: enabled().
  bool sample_write_failure();

  /// Outcome of the write-verify policy for one physical line write.
  struct WriteVerify {
    unsigned retries = 0;  ///< re-issued pulses after the initial attempt
    bool escalated = false;  ///< every retry failed; boosted (2x) pulse issued
  };

  /// Runs the full write-verify loop: samples the initial attempt and up to
  /// write_retry_limit retries; if all fail, the controller escalates to a
  /// boosted pulse that always sticks. The caller charges the energy and
  /// array occupancy for each extra pulse. Precondition: enabled().
  WriteVerify run_write_verify();

  // --- cross-validation hooks (see tests/test_sttl2_faults.cpp) ---

  /// Every evaluated lifetime, in nanoseconds (fine geometric buckets, so
  /// analyze_reliability's bucket-midpoint assessment stays close to the
  /// exact per-lifetime expectation).
  const Histogram& lifetimes_ns() const noexcept { return lifetimes_; }

  /// Representative lifetime for the histogram's overflow bucket (pass as
  /// analyze_reliability's overflow_lifetime_ns).
  double overflow_lifetime_ns() const noexcept { return overflow_ns_; }

  /// Effective spec margin of the accelerated hazard: feeding this to
  /// analyze_reliability reproduces this model's probabilities exactly.
  /// (Only >= 1 — i.e. accel <= spec_margin — is accepted there.)
  double effective_spec_margin() const noexcept { return config_.spec_margin / config_.accel; }

  std::uint64_t trials() const noexcept { return trials_; }
  std::uint64_t collapses() const noexcept { return collapses_; }
  /// Exact analytic expectation Sum p_i over the evaluated lifetimes — what
  /// analyze_reliability computes, minus its bucketing approximation.
  double expected_collapses() const noexcept { return expected_; }

 private:
  FaultInjectionConfig config_;
  double retention_s_;
  double thermal_life_s_;  ///< retention * spec_margin / accel
  double write_fail_p_;    ///< write_fail_prob * accel, clamped to [0, 1]
  Clock clock_;
  Rng rng_;
  Histogram lifetimes_;
  double overflow_ns_;
  std::uint64_t trials_ = 0;
  std::uint64_t collapses_ = 0;
  double expected_ = 0.0;
};

}  // namespace sttgpu::sttl2
