#include "sttl2/reliability.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/units.hpp"

namespace sttgpu::sttl2 {

ReliabilityReport analyze_reliability(const Histogram& lifetimes_ns, double retention_s,
                                      double refresh_period_s,
                                      double overflow_lifetime_ns, double spec_margin,
                                      const nvm::MtjModel& mtj) {
  STTGPU_REQUIRE(retention_s > 0.0, "analyze_reliability: retention must be positive");
  STTGPU_REQUIRE(overflow_lifetime_ns > 0.0,
                 "analyze_reliability: overflow lifetime must be positive");
  STTGPU_REQUIRE(spec_margin >= 1.0, "analyze_reliability: spec margin must be >= 1");

  ReliabilityReport r;
  r.retention_s = retention_s;
  r.spec_margin = spec_margin;
  r.refresh_period_s = refresh_period_s;
  r.lifetimes = lifetimes_ns.total();
  // Mean thermal life = quoted retention x guard band.
  const double delta = mtj.delta_for_retention(retention_s * spec_margin);

  const auto lifetime_of_bucket = [&](std::size_t i) -> double {
    // Bucket midpoint as the representative lifetime; the caller-provided
    // value stands in for the unbounded overflow bucket.
    double raw;
    if (i + 1 < lifetimes_ns.bucket_count()) {
      const double lower = i == 0 ? 0.0 : lifetimes_ns.upper_edge(i - 1);
      raw = 0.5 * (lower + lifetimes_ns.upper_edge(i));
    } else {
      raw = overflow_lifetime_ns;
    }
    // Refresh rewrites the cell every refresh period, so no stored datum
    // decays for longer than that.
    if (refresh_period_s > 0.0) {
      return std::min(raw, seconds_to_ns(refresh_period_s));
    }
    return raw;
  };

  for (std::size_t i = 0; i < lifetimes_ns.bucket_count(); ++i) {
    const double t_s = ns_to_seconds(lifetime_of_bucket(i));
    r.expected_failures +=
        static_cast<double>(lifetimes_ns.bucket(i)) * mtj.failure_probability(delta, t_s);
  }
  r.failure_rate =
      r.lifetimes ? r.expected_failures / static_cast<double>(r.lifetimes) : 0.0;
  return r;
}

}  // namespace sttgpu::sttl2
