// Retention-reliability analysis.
//
// The paper (Section 4): "Reducing the retention time of STT-RAM cells
// increases the error rate because of early data bit collapse", and its
// architecture's answer is (a) keeping only the rapidly-rewritten WWS in the
// low-retention part and (b) counter-scheduled refresh bounding every data
// lifetime. This module quantifies that argument: given the measured
// distribution of data lifetimes (the rewrite-interval histogram, with
// refresh capping every lifetime at the refresh period), it computes the
// expected number of early-collapse events under the Néel–Arrhenius model
//
//     P(collapse within t) = 1 - exp(-t / t_ret).
#pragma once

#include "common/stats.hpp"
#include "nvm/mtj.hpp"

namespace sttgpu::sttl2 {

struct ReliabilityReport {
  double retention_s = 0.0;
  double spec_margin = 0.0;   ///< thermal life / quoted retention
  double refresh_period_s = 0.0;  ///< 0 => no refresh
  std::uint64_t lifetimes = 0;    ///< analyzed data lifetimes
  double expected_failures = 0.0; ///< expected collapse events over the run
  /// expected_failures / lifetimes — the per-lifetime failure rate.
  double failure_rate = 0.0;
};

/// Analyzes a lifetime histogram (values in nanoseconds; the histogram's
/// bucket upper edges bound each lifetime) for a cell whose *quoted*
/// retention is @p retention_s. Quoted retention times carry a reliability
/// guard band: the underlying mean thermal life is spec_margin times longer
/// (default 20x), so data refreshed before the quoted deadline fails only
/// rarely while data that overstays decays quickly — matching how the
/// multi-retention literature (the paper's refs [12][14]) specifies parts.
/// With @p refresh_period_s > 0 every lifetime is capped at the refresh
/// period (refresh rewrites the cell, restarting the decay clock).
/// Conservative: each bucket is assessed at its upper edge; the overflow
/// bucket at @p overflow_lifetime_ns.
ReliabilityReport analyze_reliability(const Histogram& lifetimes_ns, double retention_s,
                                      double refresh_period_s,
                                      double overflow_lifetime_ns,
                                      double spec_margin = 20.0,
                                      const nvm::MtjModel& mtj = nvm::MtjModel{});

}  // namespace sttgpu::sttl2
