#include "sttl2/retention.hpp"

#include "common/error.hpp"

namespace sttgpu::sttl2 {

RetentionClock::RetentionClock(double retention_s, unsigned counter_bits,
                               const Clock& clock)
    : bits_(counter_bits) {
  STTGPU_REQUIRE(retention_s > 0.0, "RetentionClock: retention must be positive");
  STTGPU_REQUIRE(counter_bits >= 1 && counter_bits <= 16,
                 "RetentionClock: counter bits out of range");
  retention_cycles_ = clock.cycles_for_ns(seconds_to_ns(retention_s));
  const Cycle ticks = Cycle{1} << bits_;
  tick_cycles_ = retention_cycles_ / ticks;
  STTGPU_REQUIRE(tick_cycles_ >= 1,
                 "RetentionClock: counter too wide for this retention time");
}

unsigned RetentionClock::counter_value(Cycle written_at, Cycle now) const noexcept {
  if (now <= written_at) return 0;
  const Cycle age = now - written_at;
  const Cycle ticks = age / tick_cycles_;
  const Cycle max = (Cycle{1} << bits_) - 1;
  return static_cast<unsigned>(ticks > max ? max : ticks);
}

}  // namespace sttgpu::sttl2
