// Configuration structures for the L2 bank implementations.
#pragma once

#include <cstdint>

#include "nvm/cell.hpp"

namespace sttgpu::sttl2 {

/// How the two tag arrays of the two-part cache are probed (paper Section 5:
/// "Two possible approaches include parallel and sequential searches").
enum class SearchPolicy : std::uint8_t {
  /// Probe both parts at once: lowest latency, both tag arrays burn energy.
  kParallel,
  /// Probe the likely part first (writes: LR first; reads: HR first); probe
  /// the other only on a miss. Saves tag energy, may add tag latency.
  kSequential,
};

const char* to_string(SearchPolicy p) noexcept;

/// In-simulation STT-RAM fault injection (fault_model.hpp). Off by default:
/// with enabled == false no RNG is constructed, no counter is interned and
/// no code path diverges, so results are byte-identical to a build without
/// the subsystem. All probabilities derive from the same Néel–Arrhenius
/// device model the analytic reliability report uses, which is what makes
/// the injected/predicted cross-validation meaningful.
struct FaultInjectionConfig {
  bool enabled = false;
  std::uint64_t seed = 42;  ///< fault RNG seed (independent of workload seed)

  /// Hazard acceleration factor: multiplies the retention collapse rate so
  /// failure statistics converge in feasible simulation horizons. 1.0 is the
  /// physical rate (per-run expectations << 1 at realistic guard bands).
  double accel = 1.0;

  /// SECDED-style line ECC: correct single-bit collapses (with a scrub
  /// write), detect multi-bit ones. Off => every dirty-line collapse is
  /// silent data loss.
  bool ecc = true;

  /// Thermal guard band of the quoted retention time (mean thermal life =
  /// retention * spec_margin) — same convention and default as
  /// analyze_reliability().
  double spec_margin = 20.0;

  /// Per-attempt probability that a line write fails verification (also
  /// scaled by accel when accel > 1; accel < 1 never weakens it, so
  /// accel=0 isolates the write-failure mechanism from retention faults).
  double write_fail_prob = 1e-4;

  /// Write-verify retries before the controller escalates to a boosted
  /// (2x-energy) pulse that always succeeds.
  unsigned write_retry_limit = 3;
};

/// A conventional single-array L2 bank (SRAM baseline or naive STT baseline).
struct UniformBankConfig {
  std::uint64_t capacity_bytes = 64 * 1024;  ///< per bank
  unsigned associativity = 8;
  unsigned line_bytes = 256;
  nvm::CellParams cell = nvm::sram_cell();
  /// Early write termination (see TwoPartBankConfig): scales write energy
  /// by ewt_flip_fraction when enabled.
  bool early_write_termination = false;
  double ewt_flip_fraction = 0.35;
  /// Extra response latency of the bank pipeline (queues, ECC, controller).
  unsigned pipeline_cycles = 16;
  unsigned input_queue = 32;
  /// Independently ported subarrays within the data array.
  unsigned subbanks = 2;
  /// Fault injection (inert for SRAM cells and when disabled).
  FaultInjectionConfig faults;
};

/// The paper's proposed two-part bank.
struct TwoPartBankConfig {
  // High-retention part (per bank)
  std::uint64_t hr_bytes = 224 * 1024;  ///< C1: 1344KB / 6 banks
  unsigned hr_assoc = 7;
  double hr_retention_s = 40e-3;
  unsigned hr_counter_bits = 2;  ///< per-line retention counter (Section 5)

  // Low-retention part (per bank)
  std::uint64_t lr_bytes = 32 * 1024;  ///< C1: 192KB / 6 banks
  unsigned lr_assoc = 2;               ///< 0 => fully associative
  double lr_retention_s = 26.5e-6;
  unsigned lr_counter_bits = 4;

  unsigned line_bytes = 256;

  /// Writes to an HR line whose write counter has already reached this value
  /// migrate the line to LR. 1 == the conventional modified bit (the paper's
  /// TH1, shown optimal in Fig. 4).
  unsigned write_threshold = 1;

  /// Extension (beyond the paper): adapt the write threshold at runtime.
  /// Every adapt_interval cycles the bank inspects its LR churn (evictions
  /// per migration): heavy churn means the WWS exceeds the LR capacity, so
  /// the monitor becomes pickier (threshold up, toward max_threshold); calm
  /// intervals relax it back toward write_threshold.
  bool adaptive_threshold = false;
  unsigned adapt_interval = 8192;
  unsigned max_threshold = 8;

  /// Extension (i2WAP-flavoured, the paper's ref [15]): periodically rotate
  /// the LR set mapping to level inter-set write wear. A rotation flushes
  /// the LR part back to HR (through the normal eviction path, so the cost
  /// is modelled) and shifts the index by one set.
  bool lr_wear_leveling = false;
  std::uint64_t wear_level_period = 100000;  ///< LR writes between rotations

  /// Extension: early write termination (Zhou et al., ICCAD'09 — the
  /// paper's ref [17]): bit-writes matching the stored value abort early,
  /// scaling write energy by the expected flipped-bit fraction.
  bool early_write_termination = false;
  double ewt_flip_fraction = 0.35;

  /// Capacity of each swap buffer (HR->LR and LR->HR), in cache lines.
  unsigned buffer_lines = 10;

  SearchPolicy search = SearchPolicy::kSequential;

  unsigned pipeline_cycles = 16;
  unsigned input_queue = 32;
  /// Independently ported subarrays within each part's data array.
  unsigned hr_subbanks = 2;
  unsigned lr_subbanks = 2;
  /// Fault injection (one model per part, seeded independently).
  FaultInjectionConfig faults;
};

}  // namespace sttgpu::sttl2
