// Retention-counter bookkeeping (after Cache Revive [7] / the paper's
// Section 5): each line in a volatile STT-RAM array carries an n-bit counter
// clocked at retention_time / 2^n. The counter value approximates the age of
// the line's data; refresh is postponed to the last counter period before
// expiry ("postpone refresh of data blocks to the last cycles of retention
// period").
//
// RetentionClock converts between the device retention time and core cycles
// and answers, for a line (re)written at cycle W:
//   * deadline(W)     — the cycle at which data becomes unreliable;
//   * refresh_due(W)  — the cycle at which the refresh must be performed
//                       (one counter tick before the deadline).
#pragma once

#include "common/types.hpp"
#include "common/units.hpp"

namespace sttgpu::sttl2 {

class RetentionClock {
 public:
  /// @p retention_s device retention time; @p counter_bits per-line counter
  /// width; @p clock the core clock the cycle numbers are expressed in.
  RetentionClock(double retention_s, unsigned counter_bits, const Clock& clock);

  Cycle retention_cycles() const noexcept { return retention_cycles_; }
  Cycle tick_cycles() const noexcept { return tick_cycles_; }
  unsigned counter_bits() const noexcept { return bits_; }

  Cycle deadline(Cycle written_at) const noexcept { return written_at + retention_cycles_; }

  /// Refresh must happen in the last counter period before the deadline.
  Cycle refresh_due(Cycle written_at) const noexcept {
    return written_at + retention_cycles_ - tick_cycles_;
  }

  /// Counter value an observer would read at @p now for data written at
  /// @p written_at (saturates at 2^bits - 1 == expired).
  unsigned counter_value(Cycle written_at, Cycle now) const noexcept;

 private:
  unsigned bits_;
  Cycle retention_cycles_;
  Cycle tick_cycles_;
};

}  // namespace sttgpu::sttl2
