// Shared plumbing for L2 bank implementations: input queue, fill (MSHR)
// table, DRAM interplay, response emission, energy ledger and a single-
// server occupancy model per data array.
//
// Timing model: each data array is a FIFO single server. An operation
// starting at `now` begins at max(now, server.free), occupies the array for
// its access latency, and the server's free time advances — so long
// STT-RAM writes delay everything queued behind them, which is the paper's
// performance mechanism for both the naive STT baseline's regressions and
// the LR part's recovery of them.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/flat_map.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "common/units.hpp"
#include "gpu/dram.hpp"
#include "gpu/l2_bank.hpp"
#include "power/energy.hpp"

namespace sttgpu::sttl2 {

/// FIFO single-server resource (a data array port).
class ArrayServer {
 public:
  /// Starts an operation of @p occupancy cycles at or after @p now; returns
  /// the completion cycle.
  Cycle occupy(Cycle now, Cycle occupancy) noexcept {
    const Cycle start = free_ > now ? free_ : now;
    free_ = start + occupancy;
    return free_;
  }
  Cycle free_at() const noexcept { return free_; }
  Cycle backlog(Cycle now) const noexcept { return free_ > now ? free_ - now : 0; }

 private:
  Cycle free_ = 0;
};

/// A data array split into independently ported subarrays (as CACTI mats):
/// operations on different subbanks overlap; the subbank is selected by a
/// hash of the line address. Models the internal banking of large caches,
/// without which long STT-RAM write pulses would serialize the whole bank.
class SubbankedServer {
 public:
  explicit SubbankedServer(unsigned subbanks) : servers_(subbanks ? subbanks : 1) {}

  Cycle occupy(Addr line_addr, Cycle now, Cycle occupancy) noexcept {
    return servers_[index(line_addr)].occupy(now, occupancy);
  }
  Cycle backlog(Addr line_addr, Cycle now) const noexcept {
    return servers_[index(line_addr)].backlog(now);
  }
  unsigned subbanks() const noexcept { return static_cast<unsigned>(servers_.size()); }

 private:
  std::size_t index(Addr line_addr) const noexcept {
    // Multiplicative hash decorrelates the subbank from the L2-bank
    // interleaving bits (which are also low line-number bits).
    const std::uint64_t h = (line_addr >> 6) * 0x9E3779B97F4A7C15ull;
    return static_cast<std::size_t>(h >> 32) % servers_.size();
  }
  std::vector<ArrayServer> servers_;
};

class BankBase : public gpu::L2Bank {
 public:
  BankBase(unsigned bank_id, unsigned line_bytes, unsigned input_queue_limit,
           gpu::DramChannel& dram);

  // --- gpu::L2Bank ---
  bool accepting() const final;
  void enqueue(const gpu::L2Request& request, Cycle now) final;
  void tick(Cycle now) final;
  void drain_responses(Cycle now, std::vector<gpu::L2Response>& out) final;
  void on_dram_read_done(std::uint64_t cookie, Cycle now) final;
  bool idle() const final;
  Cycle next_event_cycle() const final;
  const gpu::L2BankStats& stats() const final { return stats_; }
  const power::EnergyLedger& energy() const final { return energy_; }

  /// Remembers the sink so implementations can mark timeline events
  /// (refresh storms, fault data loss) as they happen.
  void attach_telemetry(Telemetry* sink) override { telemetry_ = sink; }

  /// Dumps the shared hit/miss/DRAM stats plus every implementation counter
  /// as "l2bN."-prefixed counter tracks and the input-queue fill as a gauge.
  /// Implementations extend this with their own gauges (occupancy, buffer
  /// depths) by overriding and calling the base first.
  void sample_telemetry(Cycle now, Telemetry& out) override;

  /// Shared-queue depths (input, outstanding fills, buffered responses) for
  /// watchdog diagnostic dumps; implementations append their own state.
  void describe_state(std::ostream& os, Cycle now) const override;

  /// Implementation-specific counters for reports.
  const CounterSet& counters() const noexcept { return counters_; }

 protected:
  /// One demand request ready to be serviced (input queue head).
  virtual void process_request(const gpu::L2Request& request, Cycle now) = 0;

  /// A previously requested DRAM line arrived.
  virtual void process_fill(Addr line_addr, Cycle now) = 0;

  /// Deadline housekeeping (refresh, expiry, threshold adaptation, wear
  /// rotation). Called from tick() only when the cached implementation
  /// deadline (see sched_impl_event) has matured — a call with every
  /// deadline in the future must be a no-op, which is exactly the
  /// impl_next_event() contract the event-driven fast-forward already
  /// relies on.
  virtual void maintenance(Cycle /*now*/) {}

  /// Implementation has in-flight work beyond the shared queues.
  virtual bool impl_idle() const { return true; }

  /// Earliest absolute cycle of an implementation-scheduled deadline
  /// (refresh due, retention expiry, threshold adaptation); kNoCycle when
  /// none. Conservative (early) values are safe — the tick is then a no-op,
  /// exactly as it would be in a cycle-by-cycle loop. Called by the base
  /// only right after maintenance() ran, to refresh the cached deadline;
  /// between maintenance calls implementations must announce any new or
  /// earlier deadline through sched_impl_event().
  virtual Cycle impl_next_event() const { return kNoCycle; }

  /// Announces an implementation deadline at @p when: lowers the cached
  /// deadline that gates maintenance() (and feeds next_event_cycle()).
  /// Stale-low values are safe (one extra no-op maintenance call); every
  /// site that schedules a deadline — queue push, rotation trigger — must
  /// call this, or the deadline could be skipped entirely.
  void sched_impl_event(Cycle when) noexcept {
    if (when < maint_next_) maint_next_ = when;
  }

  /// Seeds the cached deadline from impl_next_event(). Every concrete bank
  /// constructor must call this last (the base constructor cannot: virtual
  /// dispatch is not live yet). The default (0, "due now") is merely
  /// conservative — one no-op maintenance on the first tick — but it also
  /// pins next_event_cycle() to 0 and defeats fast-forward on idle banks.
  void init_impl_deadline() noexcept { maint_next_ = impl_next_event(); }

  // --- helpers for implementations ---

  Addr line_base(Addr addr) const noexcept { return align_down(addr, line_bytes_); }

  /// Registers a demand miss on @p line: merges with an outstanding fill or
  /// issues a new DRAM read. Store requests are replayed as writes when the
  /// line arrives (fetch-on-write).
  void request_fill(Addr line, const gpu::L2Request& request, Cycle now);

  /// True if a fill for @p line is already outstanding.
  bool fill_outstanding(Addr line) const noexcept { return pending_.contains(line); }

  /// Takes the requests waiting on @p line (fill arrived). The returned
  /// reference aliases a member scratch buffer: it stays valid until the
  /// next take_waiters call, and replaying the requests (which may register
  /// new fills) does not disturb it.
  struct Waiters {
    std::vector<gpu::L2Request> reads;
    std::vector<gpu::L2Request> writes;
  };
  const Waiters& take_waiters(Addr line);

  /// Emits the response for @p request at completion time @p ready.
  void respond(const gpu::L2Request& request, Cycle ready);

  /// Issues a DRAM writeback (dirty eviction / forced writeback).
  void dram_writeback(Addr line, Cycle now);

  power::EnergyLedger& ledger() noexcept { return energy_; }
  CounterSet& mutable_counters() noexcept { return counters_; }
  gpu::L2BankStats& mutable_stats() noexcept { return stats_; }
  unsigned bank_id() const noexcept { return bank_id_; }
  unsigned line_bytes() const noexcept { return line_bytes_; }

  /// Attached telemetry sink; null while telemetry is off — every use in an
  /// implementation must be gated on it.
  Telemetry* telemetry() const noexcept { return telemetry_; }
  /// Track-name prefix scoping samples/events to this bank ("l2bN.").
  std::string telemetry_prefix() const;

 private:
  unsigned bank_id_;
  unsigned line_bytes_;
  unsigned input_queue_limit_;
  gpu::DramChannel* dram_;

  std::deque<gpu::L2Request> input_;
  /// Cached min over the implementation's scheduled deadlines: lowered by
  /// sched_impl_event(), recomputed from impl_next_event() after each
  /// maintenance() run. Never stale-high, so gating maintenance on it is
  /// exact; starts due so the first tick initializes it from the impl.
  Cycle maint_next_ = 0;
  std::vector<gpu::L2Response> responses_;  // min-heap keyed by ready cycle
  FlatU64Map<Waiters> pending_;
  std::vector<Addr> fills_ready_;  // lines whose DRAM read completed

  // Hot-path scratch: reused across ticks/fills so the steady state makes no
  // per-event allocations (vectors keep their high-water capacity).
  std::vector<Addr> fills_scratch_;
  Waiters waiters_scratch_;
  std::vector<Waiters> free_waiters_;

  gpu::L2BankStats stats_;
  power::EnergyLedger energy_;
  CounterSet counters_;
  Telemetry* telemetry_ = nullptr;
};

}  // namespace sttgpu::sttl2
