// Rewrite-interval tracking for the paper's Figure 6 (distribution of the
// time between successive writes to the same resident line in the LR part)
// and the Section 4 claim that a 40ms HR retention covers >90% of HR
// rewrites.
#pragma once

#include "common/stats.hpp"
#include "common/types.hpp"
#include "common/units.hpp"

namespace sttgpu::sttl2 {

class RewriteTracker {
 public:
  /// @p clock converts cycle intervals to wall time for the histogram.
  /// Default bucket edges are the Fig. 6 ones; pass custom @p edges_ns
  /// (strictly increasing, in nanoseconds) for other analyses, e.g. a 40ms
  /// edge for the HR-retention claim.
  explicit RewriteTracker(const Clock& clock);
  RewriteTracker(const Clock& clock, std::vector<double> edges_ns);

  /// Records a write at @p now to a line whose previous write (while
  /// resident in the same part) was at @p previous. kNoCycle previous means
  /// first write — not an interval.
  void record(Cycle previous, Cycle now);

  /// Fig. 6 buckets: <=10us, <=50us, <=100us, <=1ms, <=2.5ms, >2.5ms.
  const Histogram& histogram() const noexcept { return hist_; }

  /// Fraction of rewrite intervals at or below @p ns.
  double fraction_within_ns(double ns) const;

  std::uint64_t intervals() const noexcept { return hist_.total(); }

 private:
  Clock clock_;
  Histogram hist_;
};

}  // namespace sttgpu::sttl2
