#include "sttl2/rewrite_tracker.hpp"

namespace sttgpu::sttl2 {

namespace {
// Fig. 6 bucket upper edges, in nanoseconds.
std::vector<double> fig6_edges() {
  return {us_to_ns(10.0), us_to_ns(50.0), us_to_ns(100.0), ms_to_ns(1.0), ms_to_ns(2.5)};
}
}  // namespace

RewriteTracker::RewriteTracker(const Clock& clock) : clock_(clock), hist_(fig6_edges()) {}

RewriteTracker::RewriteTracker(const Clock& clock, std::vector<double> edges_ns)
    : clock_(clock), hist_(std::move(edges_ns)) {}

void RewriteTracker::record(Cycle previous, Cycle now) {
  if (previous == kNoCycle || now < previous) return;
  hist_.add(clock_.ns_for_cycles(now - previous));
}

double RewriteTracker::fraction_within_ns(double ns) const {
  if (hist_.total() == 0) return 0.0;
  std::uint64_t within = 0;
  for (std::size_t i = 0; i < hist_.bucket_count(); ++i) {
    const bool bounded = i + 1 < hist_.bucket_count();
    if (bounded && hist_.upper_edge(i) <= ns) {
      within += hist_.bucket(i);
    }
  }
  return static_cast<double>(within) / static_cast<double>(hist_.total());
}

}  // namespace sttgpu::sttl2
