#include "sttl2/uniform_bank.hpp"

#include "common/error.hpp"
#include "common/telemetry.hpp"

namespace sttgpu::sttl2 {

namespace {

power::ArrayCosts cost_array(const UniformBankConfig& c) {
  power::ArraySpec spec;
  spec.capacity_bytes = c.capacity_bytes;
  spec.associativity = c.associativity;
  spec.line_bytes = c.line_bytes;
  spec.data_cell = c.cell;
  spec.extra_tag_bits_per_line = c.cell.needs_refresh ? 2 : 0;  // retention counter
  return power::evaluate_array(spec);
}

}  // namespace

UniformBank::UniformBank(unsigned bank_id, const UniformBankConfig& config,
                         const Clock& clock, gpu::DramChannel& dram)
    : BankBase(bank_id, config.line_bytes, config.input_queue, dram),
      config_(config),
      clock_(clock),
      costs_(cost_array(config)),
      tags_({config.capacity_bytes, config.associativity, config.line_bytes},
            cache::ReplacementKind::kLru, /*seed=*/bank_id + 17),
      data_(config.subbanks),
      // SRAM cells (retention_s == 0) force the model inert inside the ctor.
      faults_(config.faults, config.cell.retention_s, clock, bank_id),
      rewrites_(clock),
      write_var_(tags_.geometry().num_sets(), tags_.geometry().associativity()) {
  tag_lat_ = clock_.cycles_for_ns(costs_.tag_latency_ns);
  read_occ_ = clock_.cycles_for_ns(costs_.data_read_latency_ns);
  write_occ_ = clock_.cycles_for_ns(costs_.data_write_latency_ns);
  if (config_.cell.retention_s > 0.0 && config_.cell.needs_refresh) {
    retention_cycles_ = clock_.cycles_for_ns(seconds_to_ns(config_.cell.retention_s));
  }
  if (config_.early_write_termination) {
    STTGPU_REQUIRE(config_.ewt_flip_fraction > 0.0 && config_.ewt_flip_fraction <= 1.0,
                   "UniformBank: ewt_flip_fraction must be in (0, 1]");
    write_energy_scale_ = config_.ewt_flip_fraction;
  }
  e_.tag_probe = ledger().intern("l2.tag_probe");
  e_.tag_update = ledger().intern("l2.tag_update");
  e_.data_read = ledger().intern("l2.data_read");
  e_.data_write = ledger().intern("l2.data_write");
  c_.evict_dirty = mutable_counters().intern("evict_dirty");
  c_.evict_clean = mutable_counters().intern("evict_clean");
  c_.expired_dirty = mutable_counters().intern("expired_dirty");
  c_.expired_clean = mutable_counters().intern("expired_clean");
  if (faults_.enabled()) {
    e_.fault_scrub = ledger().intern("l2.fault.scrub");
    CounterSet& cs = mutable_counters();
    c_.fault_ecc_corrected = cs.intern("fault_ecc_corrected");
    c_.fault_ecc_detected = cs.intern("fault_ecc_detected");
    c_.fault_clean_refetch = cs.intern("fault_clean_refetch");
    c_.fault_data_loss = cs.intern("fault_data_loss");
    c_.fault_wv_retries = cs.intern("fault_wv_retries");
    c_.fault_wv_escalations = cs.intern("fault_wv_escalations");
  }
  init_impl_deadline();
}

Cycle UniformBank::impl_next_event() const {
  // Possibly-stale entries are fine: the tick at entry.deadline pops and
  // discards them, exactly as the per-cycle loop does.
  return expiry_.empty() ? kNoCycle : expiry_.top().deadline;
}

void UniformBank::schedule_expiry(std::uint64_t set, unsigned way, Cycle deadline) {
  if (retention_cycles_ == 0) return;
  expiry_.push({deadline, set, way});
  sched_impl_event(deadline);
}

Cycle UniformBank::data_write(Addr line_addr, Cycle now) {
  Cycle done = data_.occupy(line_addr, now, write_occ_);
  ledger().add(e_.data_write, costs_.data_write_pj * write_energy_scale_);
  if (faults_.enabled()) {
    const FaultModel::WriteVerify wv = faults_.run_write_verify();
    if (wv.retries != 0) {
      mutable_counters().at(c_.fault_wv_retries) += wv.retries;
      for (unsigned i = 0; i < wv.retries; ++i) {
        done = data_.occupy(line_addr, done, write_occ_);
        ledger().add(e_.data_write, costs_.data_write_pj * write_energy_scale_);
      }
    }
    if (wv.escalated) {
      // Boosted pulse: twice the energy and pulse width, always sticks.
      mutable_counters().at(c_.fault_wv_escalations) += 1;
      done = data_.occupy(line_addr, done, 2 * write_occ_);
      ledger().add(e_.data_write, 2.0 * costs_.data_write_pj * write_energy_scale_);
    }
  }
  return done;
}

bool UniformBank::fault_read_check(Addr line_addr, unsigned way, Cycle now) {
  if (!faults_.enabled()) return false;
  const std::uint64_t set = tags_.geometry().set_index(line_addr);
  cache::LineMeta& line = tags_.line(set, way);
  const auto collapse = faults_.sample_collapse(fault_interval_start(line, retention_cycles_), now);
  line.fault_check_cycle = now;
  if (collapse == FaultModel::Collapse::kNone) return false;
  if (config_.faults.ecc && collapse == FaultModel::Collapse::kSingleBit) {
    // SECDED corrects in flight; the controller scrubs (rewrites the
    // corrected line), which restarts the decay clock.
    mutable_counters().at(c_.fault_ecc_corrected) += 1;
    data_.occupy(line_addr, now, write_occ_);
    ledger().add(e_.fault_scrub, costs_.data_write_pj * write_energy_scale_);
    if (retention_cycles_ != 0) {
      line.retention_deadline = now + retention_cycles_;
      schedule_expiry(set, way, line.retention_deadline);
    }
    return false;
  }
  if (!line.dirty) {
    // Clean data collapsed: the demand access re-fetches from DRAM.
    mutable_counters().at(c_.fault_clean_refetch) += 1;
  } else {
    if (config_.faults.ecc) mutable_counters().at(c_.fault_ecc_detected) += 1;
    mutable_counters().at(c_.fault_data_loss) += 1;
    if (telemetry() != nullptr) {
      telemetry()->instant(telemetry_prefix() + "faults", "data_loss", now);
    }
  }
  tags_.invalidate(line_addr, way);
  return true;
}

UniformBank::Carry UniformBank::fault_carry_trial(cache::LineMeta& line, Cycle now) {
  if (!faults_.enabled()) return Carry::kOk;
  const auto collapse = faults_.sample_collapse(fault_interval_start(line, retention_cycles_), now);
  line.fault_check_cycle = now;
  if (collapse == FaultModel::Collapse::kNone) return Carry::kOk;
  if (config_.faults.ecc && collapse == FaultModel::Collapse::kSingleBit) {
    mutable_counters().at(c_.fault_ecc_corrected) += 1;  // corrected in flight
    return Carry::kOk;
  }
  if (!line.dirty) {
    mutable_counters().at(c_.fault_clean_refetch) += 1;
    return Carry::kDrop;
  }
  if (config_.faults.ecc) mutable_counters().at(c_.fault_ecc_detected) += 1;
  mutable_counters().at(c_.fault_data_loss) += 1;
  if (telemetry() != nullptr) {
    telemetry()->instant(telemetry_prefix() + "faults", "data_loss", now);
  }
  return Carry::kDrop;
}

void UniformBank::write_line(cache::LineMeta& line, std::uint64_t set, unsigned way,
                             Cycle now) {
  write_var_.record_write(set, way);
  line.dirty = true;
  rewrites_.record(line.last_write_cycle, now);
  line.write_count += 1;
  line.last_write_cycle = now;
  if (retention_cycles_ != 0) {
    line.retention_deadline = now + retention_cycles_;
    schedule_expiry(set, way, line.retention_deadline);
  }
}

void UniformBank::process_request(const gpu::L2Request& request, Cycle now) {
  const Addr line_addr = line_base(request.addr);
  auto& s = mutable_stats();

  ledger().add(e_.tag_probe, costs_.tag_probe_pj);

  // A line with an outstanding fill is not yet present; merge.
  if (fill_outstanding(line_addr)) {
    request.is_store ? ++s.write_misses : ++s.read_misses;
    request_fill(line_addr, request, now);
    return;
  }

  auto way = tags_.probe(line_addr);
  // Fault injection: a hit observes the stored data; evaluate its decay
  // interval. An unrecoverable collapse drops the line and the access falls
  // through to the miss path (transparent DRAM re-fetch).
  if (way && fault_read_check(line_addr, *way, now)) way.reset();
  if (way) {
    const std::uint64_t set = tags_.geometry().set_index(line_addr);
    cache::LineMeta& line = tags_.line(set, *way);
    tags_.touch(line_addr, *way);
    if (request.is_store) {
      ++s.write_hits;
      const Cycle done = data_write(line_addr, now);
      ledger().add(e_.tag_update, costs_.tag_update_pj);
      write_line(line, set, *way, now);
      respond(request, done + tag_lat_ + config_.pipeline_cycles);
    } else {
      ++s.read_hits;
      const Cycle done = data_.occupy(line_addr, now, read_occ_);
      ledger().add(e_.data_read, costs_.data_read_pj);
      respond(request, done + tag_lat_ + config_.pipeline_cycles);
    }
    return;
  }

  request.is_store ? ++s.write_misses : ++s.read_misses;
  request_fill(line_addr, request, now);
}

void UniformBank::process_fill(Addr line_addr, Cycle now) {
  // Victim handling.
  const unsigned victim = tags_.pick_victim(line_addr);
  const std::uint64_t set = tags_.geometry().set_index(line_addr);
  if (tags_.valid(set, victim) && tags_.line(set, victim).dirty) {
    const Addr victim_addr = tags_.addr_of(set, victim);
    data_.occupy(victim_addr, now, read_occ_);  // read the victim out
    ledger().add(e_.data_read, costs_.data_read_pj);
    if (fault_carry_trial(tags_.line(set, victim), now) == Carry::kOk) {
      dram_writeback(victim_addr, now);
    }
    mutable_counters().at(c_.evict_dirty) += 1;
  } else if (tags_.valid(set, victim)) {
    mutable_counters().at(c_.evict_clean) += 1;
  }

  // Install the line (a full-line write into the data array).
  cache::LineMeta& line = tags_.fill(line_addr, victim, now);
  Cycle done = data_write(line_addr, now);
  ledger().add(e_.tag_update, costs_.tag_update_pj);
  if (retention_cycles_ != 0) {
    line.retention_deadline = now + retention_cycles_;
    schedule_expiry(set, victim, line.retention_deadline);
  }

  // Wake the merged requests: reads complete with the fill; stores are then
  // applied (fetch-on-write) and complete after their write.
  const Waiters& w = take_waiters(line_addr);
  for (const auto& req : w.reads) respond(req, done + tag_lat_ + config_.pipeline_cycles);
  for (const auto& req : w.writes) {
    done = data_write(line_addr, now);
    write_line(line, set, victim, now);
    respond(req, done + tag_lat_ + config_.pipeline_cycles);
  }
}

void UniformBank::maintenance(Cycle now) {
  while (!expiry_.empty() && expiry_.top().deadline <= now) {
    const ExpiryEntry e = expiry_.top();
    expiry_.pop();
    if (!tags_.valid(e.set, e.way)) continue;  // stale
    cache::LineMeta& line = tags_.line(e.set, e.way);
    if (line.retention_deadline != e.deadline) continue;  // stale
    const Addr addr = tags_.addr_of(e.set, e.way);
    if (line.dirty) {
      data_.occupy(addr, now, read_occ_);
      ledger().add(e_.data_read, costs_.data_read_pj);
      if (fault_carry_trial(line, now) == Carry::kOk) dram_writeback(addr, now);
      mutable_counters().at(c_.expired_dirty) += 1;
    } else {
      mutable_counters().at(c_.expired_clean) += 1;
    }
    tags_.invalidate(addr, e.way);
  }
}

void UniformBank::sample_telemetry(Cycle now, Telemetry& out) {
  BankBase::sample_telemetry(now, out);
  out.gauge(telemetry_prefix() + "occupancy",
            static_cast<double>(tags_.valid_count()) /
                static_cast<double>(tags_.geometry().num_lines()));
}

}  // namespace sttgpu::sttl2
