// Conventional single-array L2 bank.
//
// With SRAM cells this is the paper's *SRAM baseline*; with 10-year STT-RAM
// cells and 4x the capacity it is the *STT-RAM baseline* the paper compares
// against (Table 2 row "baseline STT-RAM"). With volatile STT cells it also
// supports retention expiry (invalidate clean / write back dirty lines whose
// data aged out), so it can model any single-retention design point.
//
// Policy: write-back, write-allocate (fetch-on-write), LRU.
#pragma once

#include <queue>

#include "cache/tag_array.hpp"
#include "cache/write_stats.hpp"
#include "power/array_model.hpp"
#include "sttl2/bank_base.hpp"
#include "sttl2/config.hpp"
#include "sttl2/fault_model.hpp"
#include "sttl2/rewrite_tracker.hpp"

namespace sttgpu::sttl2 {

class UniformBank final : public BankBase {
 public:
  UniformBank(unsigned bank_id, const UniformBankConfig& config, const Clock& clock,
              gpu::DramChannel& dram);

  Watt leakage_w() const override { return costs_.leakage_w; }

  /// Base counters plus the array-occupancy gauge.
  void sample_telemetry(Cycle now, Telemetry& out) override;

  const power::ArrayCosts& array_costs() const noexcept { return costs_; }
  const RewriteTracker& rewrite_intervals() const noexcept { return rewrites_; }
  const cache::TagArray& tags() const noexcept { return tags_; }

  /// Demand-write variation across sets/ways (i2WAP COV, paper Fig. 3).
  const cache::WriteVariationTracker& write_variation() const noexcept { return write_var_; }

  /// Fault-injection stream (auto-inert for SRAM cells or when disabled).
  const FaultModel& faults() const noexcept { return faults_; }

 protected:
  void process_request(const gpu::L2Request& request, Cycle now) override;
  void process_fill(Addr line_addr, Cycle now) override;
  void maintenance(Cycle now) override;
  Cycle impl_next_event() const override;

 private:
  struct ExpiryEntry {
    Cycle deadline;
    std::uint64_t set;
    unsigned way;
    bool operator>(const ExpiryEntry& o) const noexcept { return deadline > o.deadline; }
  };

  void write_line(cache::LineMeta& line, std::uint64_t set, unsigned way, Cycle now);
  void schedule_expiry(std::uint64_t set, unsigned way, Cycle deadline);

  // --- fault injection (every helper is a no-op when faults are inert) ---

  /// One physical data-array write incl. write-verify retries.
  Cycle data_write(Addr line_addr, Cycle now);
  /// Decay evaluation + recovery on a demand hit; true = line invalidated
  /// (the access falls through to the miss path).
  bool fault_read_check(Addr line_addr, unsigned way, Cycle now);
  enum class Carry { kOk, kDrop };
  /// Decay evaluation on data read out for a writeback; kDrop = do not
  /// propagate (clean re-fetchable or counted data loss).
  Carry fault_carry_trial(cache::LineMeta& line, Cycle now);

  UniformBankConfig config_;
  Clock clock_;
  power::ArrayCosts costs_;
  cache::TagArray tags_;
  SubbankedServer data_;
  FaultModel faults_;

  // cycles
  Cycle tag_lat_;
  Cycle read_occ_;
  Cycle write_occ_;
  Cycle retention_cycles_ = 0;  // 0 => non-volatile at simulation horizons

  std::priority_queue<ExpiryEntry, std::vector<ExpiryEntry>, std::greater<>> expiry_;
  RewriteTracker rewrites_;
  cache::WriteVariationTracker write_var_;
  double write_energy_scale_ = 1.0;  ///< EWT factor (1.0 when disabled)

  // Handles interned once at construction for the per-access path.
  struct EnergyIds {
    power::EnergyId tag_probe, tag_update, data_read, data_write;
    power::EnergyId fault_scrub = 0;  ///< interned only when faults are live
  } e_;
  struct CounterIds {
    CounterId evict_dirty, evict_clean, expired_dirty, expired_clean;
    // Fault-injection counters; interned only when faults are live (a
    // CounterId of 0 would alias the first real counter, so uses are gated).
    CounterId fault_ecc_corrected = 0, fault_ecc_detected = 0;
    CounterId fault_clean_refetch = 0, fault_data_loss = 0;
    CounterId fault_wv_retries = 0, fault_wv_escalations = 0;
  } c_;
};

}  // namespace sttgpu::sttl2
