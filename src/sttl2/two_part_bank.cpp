#include "sttl2/two_part_bank.hpp"

#include "common/error.hpp"
#include "common/telemetry.hpp"
#include "nvm/cell.hpp"

namespace sttgpu::sttl2 {

namespace {

power::ArrayCosts cost_hr(const TwoPartBankConfig& c) {
  power::ArraySpec spec;
  spec.capacity_bytes = c.hr_bytes;
  spec.associativity = c.hr_assoc;
  spec.line_bytes = c.line_bytes;
  spec.data_cell = nvm::stt_cell_for_retention(c.hr_retention_s);
  spec.extra_tag_bits_per_line = c.hr_counter_bits;  // RC; WC is the dirty bit
  return power::evaluate_array(spec);
}

power::ArrayCosts cost_lr(const TwoPartBankConfig& c) {
  power::ArraySpec spec;
  spec.capacity_bytes = c.lr_bytes;
  const unsigned lines = static_cast<unsigned>(c.lr_bytes / c.line_bytes);
  spec.associativity = c.lr_assoc == 0 ? lines : c.lr_assoc;
  spec.line_bytes = c.line_bytes;
  spec.data_cell = nvm::stt_cell_for_retention(c.lr_retention_s);
  spec.extra_tag_bits_per_line = c.lr_counter_bits;
  return power::evaluate_array(spec);
}

cache::CacheGeometry lr_geometry(const TwoPartBankConfig& c) {
  const unsigned lines = static_cast<unsigned>(c.lr_bytes / c.line_bytes);
  const unsigned assoc = c.lr_assoc == 0 ? lines : c.lr_assoc;
  return {c.lr_bytes, assoc, c.line_bytes};
}

}  // namespace

TwoPartBank::TwoPartBank(unsigned bank_id, const TwoPartBankConfig& config,
                         const Clock& clock, gpu::DramChannel& dram)
    : BankBase(bank_id, config.line_bytes, config.input_queue, dram),
      config_(config),
      clock_(clock),
      hr_costs_(cost_hr(config)),
      lr_costs_(cost_lr(config)),
      hr_tags_({config.hr_bytes, config.hr_assoc, config.line_bytes},
               cache::ReplacementKind::kLru, bank_id + 31),
      lr_tags_(lr_geometry(config), cache::ReplacementKind::kLru, bank_id + 37),
      hr_retention_(config.hr_retention_s, config.hr_counter_bits, clock),
      lr_retention_(config.lr_retention_s, config.lr_counter_bits, clock),
      // Distinct RNG streams per (bank, part) keep the fault sequence
      // deterministic regardless of thread count or fast-forward mode.
      lr_faults_(config.faults, config.lr_retention_s, clock, bank_id * 2ull),
      hr_faults_(config.faults, config.hr_retention_s, clock, bank_id * 2ull + 1),
      hr_data_(config.hr_subbanks),
      lr_data_(config.lr_subbanks),
      hr2lr_(config.buffer_lines),
      lr2hr_(config.buffer_lines),
      lr_rewrites_(clock),
      hr_rewrites_(clock, {ms_to_ns(1.0), ms_to_ns(10.0), ms_to_ns(40.0), ms_to_ns(100.0)}),
      lr_wear_(lr_tags_.geometry().num_sets(), lr_tags_.geometry().associativity()),
      hr_wear_(hr_tags_.geometry().num_sets(), hr_tags_.geometry().associativity()),
      threshold_(config.write_threshold) {
  STTGPU_REQUIRE(config.lr_retention_s < config.hr_retention_s,
                 "TwoPartBank: LR retention must be below HR retention");
  hr_tag_lat_ = clock_.cycles_for_ns(hr_costs_.tag_latency_ns);
  lr_tag_lat_ = clock_.cycles_for_ns(lr_costs_.tag_latency_ns);
  hr_read_occ_ = clock_.cycles_for_ns(hr_costs_.data_read_latency_ns);
  hr_write_occ_ = clock_.cycles_for_ns(hr_costs_.data_write_latency_ns);
  lr_read_occ_ = clock_.cycles_for_ns(lr_costs_.data_read_latency_ns);
  lr_write_occ_ = clock_.cycles_for_ns(lr_costs_.data_write_latency_ns);
  // Swap-buffer entries are small SRAM: one line read in + one read out.
  const auto sram = nvm::sram_cell();
  buffer_entry_pj_ = config.line_bytes * 8.0 *
                     (sram.read_energy_pj_per_bit + sram.write_energy_pj_per_bit);
  if (config_.early_write_termination) {
    STTGPU_REQUIRE(config_.ewt_flip_fraction > 0.0 && config_.ewt_flip_fraction <= 1.0,
                   "TwoPartBank: ewt_flip_fraction must be in (0, 1]");
    write_energy_scale_ = config_.ewt_flip_fraction;
  }
  next_adapt_ = config_.adapt_interval;

  // Intern every category/counter this bank will ever charge: per-access
  // sites below use the dense handles only.
  e_.lr_data_write = ledger().intern("l2.lr.data_write");
  e_.lr_tag_update = ledger().intern("l2.lr.tag_update");
  e_.lr_tag_probe = ledger().intern("l2.lr.tag_probe");
  e_.lr_data_read = ledger().intern("l2.lr.data_read");
  e_.lr_refresh = ledger().intern("l2.lr.refresh");
  e_.hr_data_write = ledger().intern("l2.hr.data_write");
  e_.hr_tag_update = ledger().intern("l2.hr.tag_update");
  e_.hr_tag_probe = ledger().intern("l2.hr.tag_probe");
  e_.hr_data_read = ledger().intern("l2.hr.data_read");
  e_.buffer = ledger().intern("l2.buffer");

  CounterSet& cs = mutable_counters();
  c_.w_demand = cs.intern("w_demand");
  c_.w_lr = cs.intern("w_lr");
  c_.w_lr_hit = cs.intern("w_lr_hit");
  c_.w_hr = cs.intern("w_hr");
  c_.tag_probes_lr = cs.intern("tag_probes_lr");
  c_.tag_probes_hr = cs.intern("tag_probes_hr");
  c_.lr_phys_writes = cs.intern("lr_phys_writes");
  c_.hr_phys_writes = cs.intern("hr_phys_writes");
  c_.migrations = cs.intern("migrations");
  c_.migrations_blocked = cs.intern("migrations_blocked");
  c_.lr_evictions = cs.intern("lr_evictions");
  c_.lr_forced_wb = cs.intern("lr_forced_wb");
  c_.lr_forced_drop = cs.intern("lr_forced_drop");
  c_.hr_evict_dirty = cs.intern("hr_evict_dirty");
  c_.hr_evict_clean = cs.intern("hr_evict_clean");
  c_.refreshes = cs.intern("refreshes");
  c_.refresh_forced_wb = cs.intern("refresh_forced_wb");
  c_.refresh_forced_drop = cs.intern("refresh_forced_drop");
  c_.hr_expired_dirty = cs.intern("hr_expired_dirty");
  c_.hr_expired_clean = cs.intern("hr_expired_clean");
  c_.wear_rotations = cs.intern("wear_rotations");
  c_.threshold_up = cs.intern("threshold_up");
  c_.threshold_down = cs.intern("threshold_down");
  if (config_.faults.enabled) {
    e_.fault_scrub = ledger().intern("l2.fault.scrub");
    c_.fault_ecc_corrected = cs.intern("fault_ecc_corrected");
    c_.fault_ecc_detected = cs.intern("fault_ecc_detected");
    c_.fault_clean_refetch = cs.intern("fault_clean_refetch");
    c_.fault_data_loss = cs.intern("fault_data_loss");
    c_.fault_wv_retries = cs.intern("fault_wv_retries");
    c_.fault_wv_escalations = cs.intern("fault_wv_escalations");
  }
  init_impl_deadline();
}

Cycle TwoPartBank::impl_next_event() const {
  // A pending wear rotation fires on the very next maintenance() call, so
  // the bank must keep ticking until it runs: reporting a later event here
  // would let the fast-forward (and the hot-path tick gating) skip cycles
  // and delay the rotation, shifting every result after it.
  if (config_.lr_wear_leveling && lr_writes_since_rotation_ >= config_.wear_level_period) {
    return 0;
  }
  Cycle next = kNoCycle;
  if (!refresh_q_.empty() && refresh_q_.top().when < next) next = refresh_q_.top().when;
  if (!hr_expiry_q_.empty() && hr_expiry_q_.top().when < next) next = hr_expiry_q_.top().when;
  // The adaptation deadline must be an event even with nothing else going
  // on: adapt_threshold() reschedules relative to the cycle it runs at, so
  // firing late would shift every later interval.
  if (config_.adaptive_threshold && next_adapt_ < next) next = next_adapt_;
  return next;
}

void TwoPartBank::charge_lr_write(Addr addr) {
  ++lr_writes_since_rotation_;
  // Crossing the wear-level period arms a rotation that must run on the very
  // next maintenance() call (impl_next_event reports 0 for it); announce the
  // deadline so the maintenance gate opens this tick, as it would ungated.
  if (config_.lr_wear_leveling && lr_writes_since_rotation_ >= config_.wear_level_period) {
    sched_impl_event(0);
  }
  ledger().add(e_.lr_data_write, lr_costs_.data_write_pj * write_energy_scale_);
  ledger().add(e_.lr_tag_update, lr_costs_.tag_update_pj);
  mutable_counters().at(c_.lr_phys_writes) += 1;
  const std::uint64_t set = lr_tags_.geometry().set_index(addr);
  if (const auto way = lr_tags_.probe(addr)) lr_wear_.record_write(set, *way);
}

void TwoPartBank::charge_hr_write(Addr addr) {
  ledger().add(e_.hr_data_write, hr_costs_.data_write_pj * write_energy_scale_);
  ledger().add(e_.hr_tag_update, hr_costs_.tag_update_pj);
  mutable_counters().at(c_.hr_phys_writes) += 1;
  const std::uint64_t set = hr_tags_.geometry().set_index(addr);
  if (const auto way = hr_tags_.probe(addr)) hr_wear_.record_write(set, *way);
}

Cycle TwoPartBank::apply_write_verify(FaultModel& fm, SubbankedServer& data, Addr key,
                                      Cycle done, Cycle occ, power::EnergyId cat,
                                      PicoJoule pulse_pj) {
  const FaultModel::WriteVerify wv = fm.run_write_verify();
  if (wv.retries != 0) {
    mutable_counters().at(c_.fault_wv_retries) += wv.retries;
    for (unsigned i = 0; i < wv.retries; ++i) {
      done = data.occupy(key, done, occ);
      ledger().add(cat, pulse_pj);
    }
  }
  if (wv.escalated) {
    // Boosted pulse: twice the energy and pulse width, always sticks.
    mutable_counters().at(c_.fault_wv_escalations) += 1;
    done = data.occupy(key, done, 2 * occ);
    ledger().add(cat, 2.0 * pulse_pj);
  }
  return done;
}

Cycle TwoPartBank::lr_data_write(Addr key, Cycle now) {
  Cycle done = lr_data_.occupy(key, now, lr_write_occ_);
  charge_lr_write(key);
  if (lr_faults_.enabled()) {
    done = apply_write_verify(lr_faults_, lr_data_, key, done, lr_write_occ_,
                              e_.lr_data_write, lr_costs_.data_write_pj * write_energy_scale_);
  }
  return done;
}

Cycle TwoPartBank::hr_data_write(Addr addr, Cycle now) {
  Cycle done = hr_data_.occupy(addr, now, hr_write_occ_);
  charge_hr_write(addr);
  if (hr_faults_.enabled()) {
    done = apply_write_verify(hr_faults_, hr_data_, addr, done, hr_write_occ_,
                              e_.hr_data_write, hr_costs_.data_write_pj * write_energy_scale_);
  }
  return done;
}

bool TwoPartBank::fault_read_check(bool lr_part, Addr key, unsigned way, Cycle now) {
  FaultModel& fm = lr_part ? lr_faults_ : hr_faults_;
  if (!fm.enabled()) return false;
  cache::TagArray& tags = lr_part ? lr_tags_ : hr_tags_;
  const RetentionClock& rc = lr_part ? lr_retention_ : hr_retention_;
  const std::uint64_t set = tags.geometry().set_index(key);
  cache::LineMeta& line = tags.line(set, way);
  const auto collapse = fm.sample_collapse(fault_interval_start(line, rc.retention_cycles()), now);
  line.fault_check_cycle = now;
  if (collapse == FaultModel::Collapse::kNone) return false;
  if (config_.faults.ecc && collapse == FaultModel::Collapse::kSingleBit) {
    // SECDED corrects the word in flight; the controller scrubs (rewrites
    // the corrected line), which restarts the decay clock.
    mutable_counters().at(c_.fault_ecc_corrected) += 1;
    (lr_part ? lr_data_ : hr_data_).occupy(key, now, lr_part ? lr_write_occ_ : hr_write_occ_);
    ledger().add(e_.fault_scrub,
                 (lr_part ? lr_costs_ : hr_costs_).data_write_pj * write_energy_scale_);
    line.retention_deadline = rc.deadline(now);
    if (lr_part) {
      const Cycle due = rc.refresh_due(now);
      refresh_q_.push({due, set, way, line.retention_deadline});
      sched_impl_event(due);
    } else {
      hr_expiry_q_.push({line.retention_deadline, set, way, line.retention_deadline});
      sched_impl_event(line.retention_deadline);
    }
    return false;
  }
  if (!line.dirty) {
    // Clean data collapsed: drop the line; the demand access falls through
    // to the miss path and re-fetches from DRAM transparently.
    mutable_counters().at(c_.fault_clean_refetch) += 1;
  } else {
    // Dirty and uncorrectable: the only up-to-date copy is gone. The line
    // is dropped so later accesses at least see consistent (stale) data.
    if (config_.faults.ecc) mutable_counters().at(c_.fault_ecc_detected) += 1;
    mutable_counters().at(c_.fault_data_loss) += 1;
    if (telemetry() != nullptr) {
      telemetry()->instant(telemetry_prefix() + "faults", "data_loss", now);
    }
  }
  tags.invalidate(key, way);
  return true;
}

TwoPartBank::Carry TwoPartBank::fault_carry_trial(FaultModel& fm, cache::LineMeta& line,
                                                  Cycle retention_cycles, Cycle now) {
  if (!fm.enabled()) return Carry::kOk;
  const auto collapse = fm.sample_collapse(fault_interval_start(line, retention_cycles), now);
  line.fault_check_cycle = now;
  if (collapse == FaultModel::Collapse::kNone) return Carry::kOk;
  if (config_.faults.ecc && collapse == FaultModel::Collapse::kSingleBit) {
    mutable_counters().at(c_.fault_ecc_corrected) += 1;  // corrected in flight
    return Carry::kOk;
  }
  if (!line.dirty) {
    mutable_counters().at(c_.fault_clean_refetch) += 1;
    return Carry::kDrop;
  }
  if (config_.faults.ecc) mutable_counters().at(c_.fault_ecc_detected) += 1;
  mutable_counters().at(c_.fault_data_loss) += 1;
  if (telemetry() != nullptr) {
    telemetry()->instant(telemetry_prefix() + "faults", "data_loss", now);
  }
  return Carry::kDrop;
}

double TwoPartBank::lr_write_utilization() const noexcept {
  const std::uint64_t demand = counters().get("w_demand");
  if (demand == 0) return 0.0;
  // Direct LR write hits only: a migration means the previous write working
  // set placement failed to keep the block resident in LR, so the paper's
  // "write utilization of the LR part" penalizes it.
  return static_cast<double>(counters().get("w_lr_hit")) / static_cast<double>(demand);
}

void TwoPartBank::process_request(const gpu::L2Request& request, Cycle now) {
  service(request, now, /*replay=*/false);
}

void TwoPartBank::service(const gpu::L2Request& request, Cycle now, bool replay) {
  const Addr line_addr = line_base(request.addr);
  auto& s = mutable_stats();

  if (fill_outstanding(line_addr)) {
    if (!replay) {
      request.is_store ? ++s.write_misses : ++s.read_misses;
      if (request.is_store) mutable_counters().at(c_.w_demand) += 1;
    }
    request_fill(line_addr, request, now);
    return;
  }

  // --- cache search (Section 5's search selector) ---
  bool in_lr = false, in_hr = false;
  std::optional<unsigned> way;
  Cycle search_lat = 0;
  const Addr lr_key = to_lr(line_addr);
  const auto probe_lr = [&] {
    mutable_counters().at(c_.tag_probes_lr) += 1;
    ledger().add(e_.lr_tag_probe, lr_costs_.tag_probe_pj);
    way = lr_tags_.probe(lr_key);
    in_lr = way.has_value();
  };
  const auto probe_hr = [&] {
    mutable_counters().at(c_.tag_probes_hr) += 1;
    ledger().add(e_.hr_tag_probe, hr_costs_.tag_probe_pj);
    way = hr_tags_.probe(line_addr);
    in_hr = way.has_value();
  };

  if (config_.search == SearchPolicy::kParallel) {
    probe_lr();
    const auto lr_way = way;
    probe_hr();
    if (in_lr) {
      way = lr_way;
      in_hr = false;  // invariant: a line lives in exactly one part
    }
    search_lat = std::max(hr_tag_lat_, lr_tag_lat_);
  } else if (request.is_store) {
    probe_lr();
    search_lat = lr_tag_lat_;
    if (!in_lr) {
      probe_hr();
      search_lat += hr_tag_lat_;
    }
  } else {
    probe_hr();
    search_lat = hr_tag_lat_;
    if (!in_hr) {
      probe_lr();
      search_lat += lr_tag_lat_;
    }
  }

  // Fault injection: a hit observes the line's stored data, so its decay
  // interval is evaluated here. An unrecoverable collapse invalidates the
  // line and the access falls through to the miss path — the transparent
  // re-fetch from DRAM. (No-op when faults are disabled.)
  if (in_lr && fault_read_check(/*lr_part=*/true, lr_key, *way, now)) {
    in_lr = false;
    way.reset();
  } else if (in_hr && fault_read_check(/*lr_part=*/false, line_addr, *way, now)) {
    in_hr = false;
    way.reset();
  }

  const Cycle start = now + search_lat;

  if (request.is_store) {
    if (!replay) mutable_counters().at(c_.w_demand) += 1;
    if (in_lr) {
      if (!replay) ++s.write_hits;
      const Cycle done = lr_write_hit(lr_key, *way, start);
      respond(request, done + config_.pipeline_cycles);
      return;
    }
    if (in_hr) {
      if (!replay) ++s.write_hits;
      const Cycle done = hr_write_hit(line_addr, *way, start);
      respond(request, done + config_.pipeline_cycles);
      return;
    }
    if (!replay) ++s.write_misses;
    request_fill(line_addr, request, now);
    return;
  }

  // Loads.
  if (in_hr) {
    if (!replay) ++s.read_hits;
    hr_tags_.touch(line_addr, *way);
    const Cycle done = hr_data_.occupy(line_addr, start, hr_read_occ_);
    ledger().add(e_.hr_data_read, hr_costs_.data_read_pj);
    respond(request, done + config_.pipeline_cycles);
    return;
  }
  if (in_lr) {
    if (!replay) ++s.read_hits;
    lr_tags_.touch(lr_key, *way);
    const Cycle done = lr_data_.occupy(lr_key, start, lr_read_occ_);
    ledger().add(e_.lr_data_read, lr_costs_.data_read_pj);
    respond(request, done + config_.pipeline_cycles);
    return;
  }
  if (!replay) ++s.read_misses;
  request_fill(line_addr, request, now);
}

Cycle TwoPartBank::lr_write_hit(Addr lr_key, unsigned way, Cycle start) {
  const Addr line_addr = lr_key;  // already in LR key space
  const std::uint64_t set = lr_tags_.geometry().set_index(line_addr);
  cache::LineMeta& line = lr_tags_.line(set, way);
  lr_tags_.touch(line_addr, way);
  lr_rewrites_.record(line.last_write_cycle, start);
  line.dirty = true;
  line.write_count += 1;
  line.last_write_cycle = start;
  line.retention_deadline = lr_retention_.deadline(start);
  const Cycle refresh_due = lr_retention_.refresh_due(start);
  refresh_q_.push({refresh_due, set, way, line.retention_deadline});
  sched_impl_event(refresh_due);

  const Cycle done = lr_data_write(line_addr, start);
  mutable_counters().at(c_.w_lr) += 1;
  mutable_counters().at(c_.w_lr_hit) += 1;  // served directly by an LR hit
  return done;
}

Cycle TwoPartBank::hr_write_hit(Addr line_addr, unsigned way, Cycle start) {
  const std::uint64_t set = hr_tags_.geometry().set_index(line_addr);
  cache::LineMeta& line = hr_tags_.line(set, way);
  hr_rewrites_.record(line.last_write_cycle, start);

  if (line.write_count >= threshold_ && !hr2lr_.full(start)) {
    // WWS monitor fired: migrate this block to LR and perform the write there.
    mutable_counters().at(c_.migrations) += 1;
    ++interval_migrations_;
    const std::uint32_t wc = line.write_count + 1;
    hr_data_.occupy(line_addr, start, hr_read_occ_);  // read the block out of HR
    ledger().add(e_.hr_data_read, hr_costs_.data_read_pj);
    ledger().add(e_.hr_tag_update, hr_costs_.tag_update_pj);
    ledger().add(e_.buffer, buffer_entry_pj_);
    hr_tags_.invalidate(line_addr, way);

    const Cycle done = lr_install(line_addr, /*dirty=*/true, wc, start, start);
    hr2lr_.add(done);
    return done;
  }

  if (line.write_count >= threshold_) mutable_counters().at(c_.migrations_blocked) += 1;

  hr_tags_.touch(line_addr, way);
  line.dirty = true;
  line.write_count += 1;
  line.last_write_cycle = start;
  line.retention_deadline = hr_retention_.deadline(start);
  hr_expiry_q_.push({line.retention_deadline, set, way, line.retention_deadline});
  sched_impl_event(line.retention_deadline);

  const Cycle done = hr_data_write(line_addr, start);
  mutable_counters().at(c_.w_hr) += 1;
  return done;
}

Cycle TwoPartBank::lr_install(Addr addr, bool dirty, std::uint32_t write_count,
                              Cycle last_write, Cycle now) {
  const Addr key = to_lr(addr);
  const unsigned way = lr_tags_.pick_victim(key);
  const std::uint64_t set = lr_tags_.geometry().set_index(key);
  if (lr_tags_.valid(set, way)) lr_evict(set, way, now);

  cache::LineMeta& line = lr_tags_.fill(key, way, now);
  line.dirty = dirty;
  line.write_count = write_count;
  line.last_write_cycle = last_write;
  line.retention_deadline = lr_retention_.deadline(now);
  const Cycle refresh_due = lr_retention_.refresh_due(now);
  refresh_q_.push({refresh_due, set, way, line.retention_deadline});
  sched_impl_event(refresh_due);

  const Cycle done = lr_data_write(key, now);
  mutable_counters().at(c_.w_lr) += 1;
  return done;
}

void TwoPartBank::lr_evict(std::uint64_t set, unsigned way, Cycle now) {
  const cache::LineMeta old = lr_tags_.line(set, way);
  const Addr key = lr_tags_.addr_of(set, way);
  const Addr addr = from_lr(key);  // back to true address space
  mutable_counters().at(c_.lr_evictions) += 1;
  ++interval_evictions_;

  lr_data_.occupy(key, now, lr_read_occ_);  // read the block out of LR
  ledger().add(e_.lr_data_read, lr_costs_.data_read_pj);
  const Carry carry =
      fault_carry_trial(lr_faults_, lr_tags_.line(set, way), lr_retention_.retention_cycles(), now);
  lr_tags_.invalidate(key, way);
  if (carry == Carry::kDrop) return;  // collapsed in LR: nothing usable to carry

  if (!lr2hr_.full(now)) {
    ledger().add(e_.buffer, buffer_entry_pj_);
    // The write counter counts writes since (re)insertion into HR and
    // restarts here. With TH1 the monitor is the modified bit, which a
    // dirty block naturally carries back into HR (the paper's free WWS
    // monitor); higher thresholds make returning blocks re-earn migration.
    const std::uint32_t wc = (threshold_ == 1 && old.dirty) ? 1 : 0;
    const Cycle done = hr_install(addr, old.dirty, wc, now);
    lr2hr_.add(done);
    return;
  }
  // Paper: on buffer full, dirty lines are forced to main memory.
  if (old.dirty) {
    dram_writeback(addr, now);
    mutable_counters().at(c_.lr_forced_wb) += 1;
  } else {
    mutable_counters().at(c_.lr_forced_drop) += 1;
  }
}

Cycle TwoPartBank::hr_install(Addr addr, bool dirty, std::uint32_t write_count, Cycle now) {
  const unsigned victim = hr_tags_.pick_victim(addr);
  const std::uint64_t set = hr_tags_.geometry().set_index(addr);
  if (hr_tags_.valid(set, victim) && hr_tags_.line(set, victim).dirty) {
    const Addr victim_addr = hr_tags_.addr_of(set, victim);
    hr_data_.occupy(victim_addr, now, hr_read_occ_);
    ledger().add(e_.hr_data_read, hr_costs_.data_read_pj);
    if (fault_carry_trial(hr_faults_, hr_tags_.line(set, victim),
                          hr_retention_.retention_cycles(), now) == Carry::kOk) {
      dram_writeback(victim_addr, now);
    }
    mutable_counters().at(c_.hr_evict_dirty) += 1;
  } else if (hr_tags_.valid(set, victim)) {
    mutable_counters().at(c_.hr_evict_clean) += 1;
  }

  cache::LineMeta& line = hr_tags_.fill(addr, victim, now);
  line.dirty = dirty;
  line.write_count = write_count;
  line.last_write_cycle = write_count != 0 ? now : kNoCycle;
  line.retention_deadline = hr_retention_.deadline(now);
  hr_expiry_q_.push({line.retention_deadline, set, victim, line.retention_deadline});
  sched_impl_event(line.retention_deadline);

  const Cycle done = hr_data_write(addr, now);
  return done;
}

void TwoPartBank::process_fill(Addr line_addr, Cycle now) {
  const Cycle done = hr_install(line_addr, /*dirty=*/false, /*write_count=*/0, now);

  const Waiters& w = take_waiters(line_addr);
  for (const auto& req : w.reads) {
    respond(req, done + hr_tag_lat_ + config_.pipeline_cycles);
  }
  // Fetch-on-write: replay the merged stores against the now-present line.
  for (const auto& req : w.writes) service(req, now, /*replay=*/true);
}

void TwoPartBank::maintenance(Cycle now) {
  do_refresh(now);
  do_hr_expiry(now);
  if (config_.adaptive_threshold) adapt_threshold(now);
  if (config_.lr_wear_leveling && lr_writes_since_rotation_ >= config_.wear_level_period) {
    rotate_lr_mapping(now);
  }
}

void TwoPartBank::rotate_lr_mapping(Cycle now) {
  // Flush the LR part back to HR through the normal eviction path (the
  // swap buffer and write costs are charged as usual), then shift the
  // index mapping by one set so hot lines land on fresh cells.
  for (std::uint64_t set = 0; set < lr_tags_.geometry().num_sets(); ++set) {
    for (unsigned way = 0; way < lr_tags_.geometry().associativity(); ++way) {
      if (lr_tags_.valid(set, way)) lr_evict(set, way, now);
    }
  }
  lr_offset_ = (lr_offset_ + 1) % lr_tags_.geometry().num_sets();
  lr_writes_since_rotation_ = 0;
  mutable_counters().at(c_.wear_rotations) += 1;
}

void TwoPartBank::adapt_threshold(Cycle now) {
  if (now < next_adapt_) return;
  next_adapt_ = now + config_.adapt_interval;
  // Churn = LR evictions per migration over the last interval. High churn
  // means migrated blocks bounce straight back out: the LR is oversubscribed
  // and the monitor should demand more rewrites before migrating.
  if (interval_migrations_ >= 8) {
    const double churn = static_cast<double>(interval_evictions_) /
                         static_cast<double>(interval_migrations_);
    if (churn > 0.5 && threshold_ < config_.max_threshold) {
      ++threshold_;
      mutable_counters().at(c_.threshold_up) += 1;
    } else if (churn < 0.25 && threshold_ > config_.write_threshold) {
      --threshold_;
      mutable_counters().at(c_.threshold_down) += 1;
    }
  }
  interval_migrations_ = 0;
  interval_evictions_ = 0;
}

void TwoPartBank::do_refresh(Cycle now) {
  // Telemetry bookkeeping for the batch ("refresh storm"): how many live
  // lines this call touched and when the last staged rewrite completes.
  std::uint64_t storm_lines = 0;
  Cycle storm_end = now;
  while (!refresh_q_.empty() && refresh_q_.top().when <= now) {
    const TimedLineRef e = refresh_q_.top();
    refresh_q_.pop();
    if (!lr_tags_.valid(e.set, e.way)) continue;  // stale
    cache::LineMeta& line = lr_tags_.line(e.set, e.way);
    if (line.retention_deadline != e.deadline) continue;  // stale
    ++storm_lines;

    // Refresh-as-scrub: the refresh read passes through the ECC check, so a
    // collapse that happened since the last write is caught here rather
    // than refreshed into a "fresh" corrupt line. Correctable collapses are
    // repaired by the rewrite below; unrecoverable ones drop the line.
    if (lr_faults_.enabled() &&
        fault_carry_trial(lr_faults_, line, lr_retention_.retention_cycles(), now) ==
            Carry::kDrop) {
      lr_tags_.invalidate(lr_tags_.addr_of(e.set, e.way), e.way);
      continue;
    }

    if (!lr2hr_.full(now)) {
      // In-place refresh staged through the LR->HR buffer: read + rewrite.
      const Addr raddr = lr_tags_.addr_of(e.set, e.way);
      lr_data_.occupy(raddr, now, lr_read_occ_);
      Cycle done = lr_data_.occupy(raddr, now, lr_write_occ_);
      ledger().add(e_.lr_refresh,
                   lr_costs_.data_read_pj + lr_costs_.data_write_pj * write_energy_scale_);
      mutable_counters().at(c_.refreshes) += 1;
      mutable_counters().at(c_.lr_phys_writes) += 1;
      lr_wear_.record_write(e.set, e.way);
      line.retention_deadline = lr_retention_.deadline(now);
      refresh_q_.push({lr_retention_.refresh_due(now), e.set, e.way, line.retention_deadline});
      if (lr_faults_.enabled()) {
        done = apply_write_verify(lr_faults_, lr_data_, raddr, done, lr_write_occ_,
                                  e_.lr_refresh, lr_costs_.data_write_pj * write_energy_scale_);
      }
      if (done > storm_end) storm_end = done;
      lr2hr_.add(done);
      continue;
    }
    // No buffer slot: avoid data loss by writing back (dirty) / dropping.
    const Addr key = lr_tags_.addr_of(e.set, e.way);
    if (line.dirty) {
      dram_writeback(from_lr(key), now);
      mutable_counters().at(c_.refresh_forced_wb) += 1;
    } else {
      mutable_counters().at(c_.refresh_forced_drop) += 1;
    }
    lr_tags_.invalidate(key, e.way);
  }
  if (telemetry() != nullptr && storm_lines > 0) {
    telemetry()->slice(telemetry_prefix() + "refresh",
                       "refresh x" + std::to_string(storm_lines), now, storm_end);
  }
}

void TwoPartBank::do_hr_expiry(Cycle now) {
  while (!hr_expiry_q_.empty() && hr_expiry_q_.top().when <= now) {
    const TimedLineRef e = hr_expiry_q_.top();
    hr_expiry_q_.pop();
    if (!hr_tags_.valid(e.set, e.way)) continue;  // stale
    cache::LineMeta& line = hr_tags_.line(e.set, e.way);
    if (line.retention_deadline != e.deadline) continue;  // stale
    const Addr addr = hr_tags_.addr_of(e.set, e.way);
    if (line.dirty) {
      hr_data_.occupy(addr, now, hr_read_occ_);
      ledger().add(e_.hr_data_read, hr_costs_.data_read_pj);
      // The expiry writeback reads the data out at the very end of its
      // retention window — the most collapse-prone moment in HR.
      if (fault_carry_trial(hr_faults_, line, hr_retention_.retention_cycles(), now) ==
          Carry::kOk) {
        dram_writeback(addr, now);
      }
      mutable_counters().at(c_.hr_expired_dirty) += 1;
    } else {
      mutable_counters().at(c_.hr_expired_clean) += 1;
    }
    hr_tags_.invalidate(addr, e.way);
  }
}

void TwoPartBank::sample_telemetry(Cycle now, Telemetry& out) {
  BankBase::sample_telemetry(now, out);
  const std::string p = telemetry_prefix();
  out.gauge(p + "lr_occupancy",
            static_cast<double>(lr_tags_.valid_count()) /
                static_cast<double>(lr_tags_.geometry().num_lines()));
  out.gauge(p + "hr_occupancy",
            static_cast<double>(hr_tags_.valid_count()) /
                static_cast<double>(hr_tags_.geometry().num_lines()));
  // in_use() prunes entries whose destination write already completed —
  // idempotent at a fixed `now`, so sampling never perturbs timing.
  out.gauge(p + "lr2hr_depth", static_cast<double>(lr2hr_.in_use(now)));
  out.gauge(p + "hr2lr_depth", static_cast<double>(hr2lr_.in_use(now)));
  out.gauge(p + "write_threshold", static_cast<double>(threshold_));
}

void TwoPartBank::describe_state(std::ostream& os, Cycle now) const {
  BankBase::describe_state(os, now);
  os << " | hr2lr=" << hr2lr_.in_use_at(now) << '/' << hr2lr_.capacity()
     << " lr2hr=" << lr2hr_.in_use_at(now) << '/' << lr2hr_.capacity()
     << " threshold=" << threshold_ << " refresh_q=" << refresh_q_.size()
     << " hr_expiry_q=" << hr_expiry_q_.size();
}

}  // namespace sttgpu::sttl2
