// sttgpu — command-line front end to the simulator.
//
//   sttgpu list
//       Print the available architectures and benchmark models.
//
//   sttgpu run arch=C1 benchmark=bfs [scale=0.5] [json=out.json]
//       Simulate one (architecture, benchmark) pair; print the metrics and
//       the bank counters; optionally dump the full result as JSON.
//
//   sttgpu matrix [scale=0.5] [cache=fig8_cache.csv] [jobs=N] [json=matrix.json]
//       Run the full Fig. 8 matrix and print/export it. Runs fan out over
//       `jobs` worker threads (default: all hardware threads; jobs=1 is
//       strictly sequential) with deterministic output ordering. Results
//       persist write-through to the cache (format v2, scale- and
//       config-fingerprinted), so an interrupted matrix resumes.
//       Supervision knobs (all run-mode only, results are unaffected):
//         watchdog=<s>     abort a job with no forward progress for s seconds
//         job_timeout=<s>  per-job wall-clock budget
//         retry=<n>        extra attempts for transiently failing jobs
//         keep_going=1     quarantine failures, print a manifest, return the
//                          partial matrix instead of failing fast
//
//   sttgpu store <fsck|compact|stats> [store=fig8_cache.store]
//       Maintain the crash-safe WAL result store that shadows the matrix
//       cache. `fsck` opens the store (recovering a torn tail, quarantining
//       corruption) and reports; it exits 5 while the quarantine sidecar is
//       non-empty — inspect and delete "<store>.quarantine" to acknowledge.
//       `compact` rewrites the log down to live records; `stats` prints the
//       index/log/quarantine summary.
//
//   sttgpu serve [socket=sttgpu.sock] [port=<tcp>] [cache=fig8_cache.csv]
//               [jobs=N] [watchdog=<s>] [job_timeout=<s>] [retry=<n>]
//               [sandbox=1] [mem_limit=<MiB>] [max_queue=N] [read_deadline=<s>]
//       Run the sweep-service daemon: submissions from the client verbs
//       below are deduplicated against the result store and against each
//       other before anything simulates, misses run on a supervised worker
//       pool, and the CSV export is kept byte-identical to a direct matrix
//       run. With sandbox=1 (default) each simulation runs in a forked child
//       — a crash, OOM (against mem_limit=) or wedge is reaped and retried/
//       reported without taking the daemon down. Submissions that would push
//       the queue past max_queue= are shed with a structured "overloaded"
//       error carrying a retry_after_ms hint; connections that send no
//       request within read_deadline= seconds are dropped. Acknowledged
//       submissions are journaled next to the store ("<cache>.journal") and
//       replayed after a crash — even SIGKILL loses no accepted work.
//       SIGINT/SIGTERM drains gracefully (in-flight work finishes and is
//       persisted) and exits 0.
//
//   sttgpu submit [socket=...] [archs=C1,C2] [benchmarks=bfs] [scale=0.5]
//                 [wait=1] [json=out.json] [<run knobs>...]
//   sttgpu status [socket=...] [id=N]
//   sttgpu watch  [socket=...] id=N
//   sttgpu cancel [socket=...] id=N
//   sttgpu result [socket=...] [id=N | arch=C1 benchmark=bfs scale=0.5]
//   sttgpu health [socket=...]
//       Clients of a running `sttgpu serve`. submit sends a matrix slice
//       (wait=1 blocks, streams progress, and prints the result table) and
//       retries with jittered backoff when the server sheds it as
//       overloaded; watch streams a submission's NDJSON events; result
//       fetches stored rows — by-key output is byte-identical to the metrics
//       block of the equivalent direct `sttgpu run`; health prints uptime,
//       queue depth, and the shed/retry/child-kill/journal counters.
//
// Exit codes (common/exit_codes.hpp):
//   0  success
//   1  simulation/setup error
//   2  usage error (unknown command or knob)
//   3  interrupted (SIGINT/SIGTERM) — completed rows are cached; rerun with
//      the same cache= to resume
//   4  a job was killed by the watchdog or per-job timeout
//   5  store fsck: quarantined data awaiting acknowledgement
//   6  serve: cannot bind/listen on the requested socket or port
//   7  client/server protocol version mismatch
//   8  submission shed by admission control (retries exhausted)
//   9  serve: the submission journal is unusable
//
//   sttgpu record arch=sram benchmark=bfs trace=bfs.trace [scale=0.5]
//       Run once and capture the L2 demand stream to a CSV trace.
//
//   sttgpu replay trace=bfs.trace arch=C1
//       Drive the chosen architecture's L2 banks from a trace (no GPU) and
//       print the resulting cache statistics — fast architecture sweeps.
//
//   sttgpu help
//       Print the full knob reference (generated from the registry) to
//       stdout and exit 0.
//
// Every knob each subcommand accepts is declared once in sim/knobs.hpp;
// parsing, typo/type rejection, defaults, and the usage text all come from
// that registry. run/record accept telemetry knobs:
//   telemetry=1        sample per-interval counters during the run
//   interval=<cycles>  sampling window (default 50000)
//   trace_out=<path>   Chrome trace-event JSON (load in ui.perfetto.dev)
//   telemetry_csv=<p>  interval series as CSV
#include <chrono>
#include <csignal>
#include <fstream>
#include <iostream>
#include <memory>
#include <random>
#include <sstream>
#include <thread>

#include "common/atomic_file.hpp"
#include "common/cancel.hpp"
#include "common/config.hpp"
#include "common/error.hpp"
#include "common/exit_codes.hpp"
#include "common/json.hpp"
#include "common/table.hpp"
#include "common/telemetry.hpp"
#include "serve/client.hpp"
#include "serve/journal.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "sim/executor.hpp"
#include "sim/knobs.hpp"
#include "sim/probe.hpp"
#include "sim/report.hpp"
#include "sim/runner.hpp"
#include "sim/trace.hpp"
#include "store/record.hpp"
#include "store/result_store.hpp"

namespace {

using namespace sttgpu;

/// Process-wide cancellation source, flipped by SIGINT/SIGTERM. Every
/// command that simulates passes it down; the Gpu cycle loop observes it at
/// supervision points and unwinds with Cancelled, so sinks finalize and
/// completed matrix rows stay cached.
CancelToken g_cancel;

void on_terminate_signal(int /*sig*/) { g_cancel.request(CancelReason::kUser); }

void install_signal_handlers() {
  std::signal(SIGINT, on_terminate_signal);
  std::signal(SIGTERM, on_terminate_signal);
}

/// Builds the telemetry sink requested by the telemetry=/interval= knobs;
/// nullptr (disabled, the default) leaves every output byte-identical.
/// A trace_out=/telemetry_csv= path implies telemetry=1.
std::unique_ptr<Telemetry> telemetry_from(const Config& cfg, sim::KnobCommand cmd) {
  const bool wants_export = !sim::knob_string(cfg, cmd, "trace_out").empty() ||
                            !sim::knob_string(cfg, cmd, "telemetry_csv").empty();
  if (!sim::knob_bool(cfg, cmd, "telemetry") && !wants_export) return nullptr;
  const std::int64_t interval = sim::knob_int(cfg, cmd, "interval");
  STTGPU_REQUIRE(interval > 0, "interval= must be a positive cycle count");
  return std::make_unique<Telemetry>(static_cast<Cycle>(interval));
}

/// Writes the trace_out=/telemetry_csv= exports, if requested.
void export_telemetry(const Config& cfg, sim::KnobCommand cmd, const Telemetry& tel) {
  // atomic_write_file: an interrupt or crash racing the export never leaves
  // a torn half-written artifact — either the old file or the complete one.
  const std::string trace_out = sim::knob_string(cfg, cmd, "trace_out");
  if (!trace_out.empty()) {
    atomic_write_file(trace_out, [&tel](std::ostream& out) {
      tel.write_chrome_trace(out);
      out << "\n";
    });
    std::cout << "  trace      " << trace_out << " (" << tel.frame_count()
              << " intervals; load in ui.perfetto.dev)\n";
  }
  const std::string csv = sim::knob_string(cfg, cmd, "telemetry_csv");
  if (!csv.empty()) {
    atomic_write_file(csv, [&tel](std::ostream& out) { tel.write_csv(out); });
    std::cout << "  telemetry  " << csv << " (" << tel.track_count() << " tracks x "
              << tel.frame_count() << " intervals)\n";
  }
}

int cmd_list() {
  std::cout << "architectures:\n";
  for (const auto arch : sim::all_architectures()) {
    const sim::ArchSpec spec = sim::make_arch(arch);
    std::cout << "  " << spec.name << "  L2 " << spec.l2_total_bytes() / 1024 << "KB"
              << (spec.two_part ? " (two-part)" : " (uniform)") << ", "
              << spec.gpu.registers_per_sm << " regs/SM\n";
  }
  std::cout << "\nbenchmarks:\n";
  for (const auto& name : workload::benchmark_names()) {
    const workload::Workload w = workload::make_benchmark(name);
    std::cout << "  " << name << "  (region " << w.region << ", "
              << w.total_instructions() / 1000 << "k warp instructions)\n";
  }
  return 0;
}

int cmd_run(const Config& cfg) {
  constexpr auto kCmd = sim::kKnobRun;
  sim::validate_knobs(cfg, kCmd, "run");
  const std::string arch_name = sim::knob_string(cfg, kCmd, "arch");
  const std::string benchmark = sim::knob_string(cfg, kCmd, "benchmark");
  const double scale = sim::knob_double(cfg, kCmd, "scale");
  const std::unique_ptr<Telemetry> tel = telemetry_from(cfg, kCmd);

  sim::RunOptions opts;
  opts.fast_forward = sim::knob_bool(cfg, kCmd, "fastforward");
  opts.hotpath = static_cast<unsigned>(sim::knob_int(cfg, kCmd, "hotpath"));
  opts.tick_jobs = static_cast<unsigned>(sim::knob_int(cfg, kCmd, "tick_jobs"));
  opts.faults = sim::fault_knobs(cfg, kCmd);
  opts.telemetry = tel.get();
  opts.cancel = &g_cancel;
  sim::FaultSummary fault_summary;
  opts.inspect = [&fault_summary](gpu::Gpu& g) {
    fault_summary = sim::collect_fault_summary(g);
  };

  const sim::ArchSpec spec = sim::make_arch(sim::architecture_from_string(arch_name));
  const workload::Workload w = workload::make_benchmark(benchmark, scale);
  gpu::RunResult run;
  sim::Metrics m;
  try {
    m = sim::run_one_detailed(spec, w, run, opts);
  } catch (const Cancelled& c) {
    // Finalize what exists before unwinding: the partial telemetry is valid
    // (complete intervals only) and a requested JSON becomes a small valid
    // document recording the interruption instead of a missing/torn file.
    if (tel) export_telemetry(cfg, kCmd, *tel);
    if (cfg.has("json")) {
      atomic_write_file(sim::knob_string(cfg, kCmd, "json"), [&c](std::ostream& out) {
        out << "{\"interrupted\": true, \"reason\": \"" << cancel_reason_name(c.reason())
            << "\"}\n";
      });
    }
    throw;
  }

  // Shared with `sttgpu result`: a row fetched from the sweep service
  // prints byte-identically to this direct run.
  sim::print_metrics_block(std::cout, m, scale);
  if (!run.l2_counters.all().empty()) {
    std::cout << "  counters:\n";
    for (const auto& [name, value] : run.l2_counters.all()) {
      std::cout << "    " << name << " = " << value << "\n";
    }
  }
  if (fault_summary.enabled) {
    std::cout << "  faults (seed " << opts.faults.seed << ", accel " << opts.faults.accel
              << ", ecc " << (opts.faults.ecc ? "on" : "off") << "):\n"
              << "    lifetime trials     " << fault_summary.trials << "\n"
              << "    injected collapses  " << fault_summary.collapses << "\n"
              << "    expected collapses  " << fault_summary.expected << "\n"
              << "    predicted (analytic " << fault_summary.predicted
              << " via analyze_reliability)\n"
              << "    ecc corrected " << fault_summary.ecc_corrected << ", detected "
              << fault_summary.ecc_detected << ", clean refetch "
              << fault_summary.clean_refetch << ", data loss "
              << fault_summary.data_loss << "\n"
              << "    write-verify retries " << fault_summary.wv_retries
              << ", escalations " << fault_summary.wv_escalations << "\n";
  }
  if (tel) export_telemetry(cfg, kCmd, *tel);

  if (cfg.has("json")) {
    atomic_write_file(sim::knob_string(cfg, kCmd, "json"), [&](std::ostream& out) {
      sim::write_run_json(out, m, run, fault_summary.enabled ? &fault_summary : nullptr,
                          tel.get());
      out << "\n";
    });
  }
  return kExitOk;
}

int cmd_matrix(const Config& cfg) {
  constexpr auto kCmd = sim::kKnobMatrix;
  sim::validate_knobs(cfg, kCmd, "matrix");
  sim::RunOptions opts;
  opts.scale = sim::knob_double(cfg, kCmd, "scale");
  opts.cache_path = sim::knob_string(cfg, kCmd, "cache");
  opts.jobs = sim::resolve_jobs(sim::knob_int(cfg, kCmd, "jobs"));
  opts.fast_forward = sim::knob_bool(cfg, kCmd, "fastforward");
  opts.hotpath = static_cast<unsigned>(sim::knob_int(cfg, kCmd, "hotpath"));
  opts.tick_jobs = static_cast<unsigned>(sim::knob_int(cfg, kCmd, "tick_jobs"));
  opts.faults = sim::fault_knobs(cfg, kCmd);
  opts.cancel = &g_cancel;
  opts.watchdog_s = sim::knob_double(cfg, kCmd, "watchdog");
  opts.job_timeout_s = sim::knob_double(cfg, kCmd, "job_timeout");
  STTGPU_REQUIRE(opts.watchdog_s >= 0.0, "watchdog= must be >= 0 seconds");
  STTGPU_REQUIRE(opts.job_timeout_s >= 0.0, "job_timeout= must be >= 0 seconds");
  const std::int64_t retries = sim::knob_int(cfg, kCmd, "retry");
  STTGPU_REQUIRE(retries >= 0, "retry= must be >= 0");
  opts.retries = static_cast<unsigned>(retries);
  opts.keep_going = sim::knob_bool(cfg, kCmd, "keep_going");
  sim::SupervisedResult report;
  opts.report = &report;
  const auto rows = sim::run_matrix(sim::all_architectures(), opts);

  TextTable table({"arch", "benchmark", "IPC", "dyn W", "total W"});
  for (const auto& m : rows) {
    table.add_row({m.arch, m.benchmark, TextTable::fmt(m.ipc, 3),
                   TextTable::fmt(m.dynamic_w, 3), TextTable::fmt(m.total_w, 3)});
  }
  table.print(std::cout);

  if (cfg.has("json")) {
    atomic_write_file(sim::knob_string(cfg, kCmd, "json"), [&rows](std::ostream& out) {
      sim::write_matrix_json(out, rows);
      out << "\n";
    });
  }
  // keep_going quarantines failures instead of throwing: the table/JSON
  // above hold the partial matrix, the manifest already went to stderr —
  // still exit non-zero so scripts notice the sweep is incomplete.
  if (!report.all_ok()) {
    if (report.count(sim::JobStatus::kWatchdog) > 0 ||
        report.count(sim::JobStatus::kTimeout) > 0) {
      return kExitWatchdog;
    }
    return kExitError;
  }
  return kExitOk;
}

int cmd_record(const Config& cfg) {
  constexpr auto kCmd = sim::kKnobRecord;
  sim::validate_knobs(cfg, kCmd, "record");
  const sim::ArchSpec spec =
      sim::make_arch(sim::architecture_from_string(sim::knob_string(cfg, kCmd, "arch")));
  const workload::Workload w = workload::make_benchmark(
      sim::knob_string(cfg, kCmd, "benchmark"), sim::knob_double(cfg, kCmd, "scale"));
  const std::string path = sim::knob_string(cfg, kCmd, "trace");
  const std::unique_ptr<Telemetry> tel = telemetry_from(cfg, kCmd);

  sim::RunOptions opts;
  opts.fast_forward = sim::knob_bool(cfg, kCmd, "fastforward");
  opts.hotpath = static_cast<unsigned>(sim::knob_int(cfg, kCmd, "hotpath"));
  opts.tick_jobs = static_cast<unsigned>(sim::knob_int(cfg, kCmd, "tick_jobs"));
  opts.telemetry = tel.get();
  opts.cancel = &g_cancel;
  const sim::Metrics m = sim::record_trace(spec, w, path, opts);
  std::cout << "recorded " << path << " (ipc " << m.ipc << ", "
            << m.l2_write_share * 100 << "% writes)\n";
  if (tel) export_telemetry(cfg, kCmd, *tel);
  return kExitOk;
}

int cmd_replay(const Config& cfg) {
  constexpr auto kCmd = sim::kKnobReplay;
  sim::validate_knobs(cfg, kCmd, "replay");
  const auto records = sim::load_trace(sim::knob_string(cfg, kCmd, "trace"));
  const sim::ArchSpec spec =
      sim::make_arch(sim::architecture_from_string(sim::knob_string(cfg, kCmd, "arch")));
  const sim::ReplayResult r =
      spec.two_part ? sim::replay_trace(records, spec.two_part_cfg, spec.gpu)
                    : sim::replay_trace(records, spec.uniform, spec.gpu);
  std::cout << "replayed " << records.size() << " requests on " << spec.name << "\n"
            << "  miss rate   " << r.stats.miss_rate() * 100 << "%\n"
            << "  write share " << r.stats.write_share() * 100 << "%\n"
            << "  dram reads  " << r.stats.dram_reads << ", writebacks "
            << r.stats.dram_writebacks << "\n"
            << "  dyn energy  " << r.dynamic_energy_pj * 1e-6 << " uJ, leakage "
            << r.leakage_w << " W\n";
  for (const auto& [name, value] : r.counters.all()) {
    std::cout << "  " << name << " = " << value << "\n";
  }
  return 0;
}

/// Prints the shared stats block of `store fsck` / `store stats`.
void print_store_stats(const std::string& path, const store::StoreStats& s) {
  std::cout << path << ":\n"
            << "  live rows    " << s.live_rows << " (" << s.groups << " group"
            << (s.groups == 1 ? "" : "s") << " of fingerprint x scale)\n"
            << "  log          " << s.file_bytes << " bytes, " << s.applied_records
            << " record" << (s.applied_records == 1 ? "" : "s") << " (" << s.dead_records
            << " dead)\n";
  if (s.repaired_torn_bytes > 0) {
    std::cout << "  repaired     torn tail of " << s.repaired_torn_bytes
              << " bytes truncated (interrupted append)\n";
  }
  if (s.quarantined_new_incidents > 0) {
    std::cout << "  quarantined  " << s.quarantined_new_incidents << " new corrupt range"
              << (s.quarantined_new_incidents == 1 ? "" : "s") << " ("
              << s.quarantined_new_bytes << " bytes) this pass\n";
  }
  if (s.quarantine_incidents > 0) {
    std::cout << "  quarantine   " << s.quarantine_incidents << " incident"
              << (s.quarantine_incidents == 1 ? "" : "s") << ", " << s.quarantine_bytes
              << " bytes preserved in "
              << store::ResultStore::quarantine_path_for(path) << "\n";
  }
}

/// Exit-code mapping for fsck/stats: 5 while the quarantine sidecar holds
/// unacknowledged data, 0 otherwise.
int store_exit(const std::string& path, const store::FsckReport& r) {
  if (r.healthy()) return kExitOk;
  std::cout << "store holds quarantined data; inspect and delete "
            << store::ResultStore::quarantine_path_for(path)
            << " to acknowledge (affected rows re-simulate on the next matrix run)\n";
  return kExitQuarantine;
}

int cmd_store(const std::string& verb, const Config& cfg) {
  constexpr auto kCmd = sim::kKnobStore;
  sim::validate_knobs(cfg, kCmd, "store");
  const std::string path = sim::knob_string(cfg, kCmd, "store");
  store::StoreOptions so;
  so.log = [](const std::string& line) { sim::log_line(line); };
  so.cancel = &g_cancel;

  if (verb == "fsck" || verb == "stats") {
    // Opening the store IS the recovery pass: fsck and stats differ only in
    // how a missing file is reported.
    const store::FsckReport r = store::ResultStore::fsck(path, so);
    if (!r.present) {
      std::cout << path << ": no store file (cold — the next matrix run creates it)\n";
      return verb == "fsck" ? store_exit(path, r) : kExitOk;
    }
    print_store_stats(path, r.stats);
    if (verb == "fsck" && r.healthy()) std::cout << "  clean\n";
    return verb == "fsck" ? store_exit(path, r) : kExitOk;
  }
  if (verb == "compact") {
    std::ifstream probe(path);
    STTGPU_REQUIRE(static_cast<bool>(probe),
                   "store: no store file at " + path + " — nothing to compact");
    store::ResultStore db(path, so);
    db.compact();
    print_store_stats(path, db.stats());
    return kExitOk;
  }
  std::cerr << "unknown store verb '" << verb << "' (expected fsck, compact or stats)\n";
  return kExitUsage;
}

// --- sweep-service verbs ---------------------------------------------------

int cmd_serve(const Config& cfg) {
  constexpr auto kCmd = sim::kKnobServe;
  sim::validate_knobs(cfg, kCmd, "serve");
  serve::ServerOptions so;
  so.socket_path = sim::knob_string(cfg, kCmd, "socket");
  so.tcp_port = static_cast<int>(sim::knob_int(cfg, kCmd, "port"));
  so.cache_path = sim::knob_string(cfg, kCmd, "cache");
  so.jobs = sim::resolve_jobs(sim::knob_int(cfg, kCmd, "jobs"));
  so.watchdog_s = sim::knob_double(cfg, kCmd, "watchdog");
  so.job_timeout_s = sim::knob_double(cfg, kCmd, "job_timeout");
  STTGPU_REQUIRE(so.watchdog_s >= 0.0, "watchdog= must be >= 0 seconds");
  STTGPU_REQUIRE(so.job_timeout_s >= 0.0, "job_timeout= must be >= 0 seconds");
  const std::int64_t retries = sim::knob_int(cfg, kCmd, "retry");
  STTGPU_REQUIRE(retries >= 0, "retry= must be >= 0");
  so.retries = static_cast<unsigned>(retries);
  so.sandbox = sim::knob_bool(cfg, kCmd, "sandbox");
  const std::int64_t mem_limit = sim::knob_int(cfg, kCmd, "mem_limit");
  STTGPU_REQUIRE(mem_limit >= 0, "mem_limit= must be >= 0 MiB");
  so.mem_limit_bytes = static_cast<std::uint64_t>(mem_limit) << 20;
  const std::int64_t max_queue = sim::knob_int(cfg, kCmd, "max_queue");
  STTGPU_REQUIRE(max_queue >= 0, "max_queue= must be >= 0");
  so.max_queue = static_cast<std::size_t>(max_queue);
  so.read_deadline_s = sim::knob_double(cfg, kCmd, "read_deadline");
  STTGPU_REQUIRE(so.read_deadline_s >= 0.0, "read_deadline= must be >= 0 seconds");
  so.log = [](const std::string& line) { sim::log_line(line); };

  serve::SweepServer server(std::move(so));
  server.start();
  // Serve until SIGINT/SIGTERM, then drain gracefully: in-flight and queued
  // work finishes and persists, the final CSV export is published, and the
  // store is left fsck-clean — so the signal exit is a success (0), not the
  // resumable-interrupt code a torn matrix run reports.
  while (!g_cancel.requested()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  sim::log_line("[serve] " + std::string(cancel_reason_name(g_cancel.reason())) +
                " interrupt — draining");
  server.stop();
  return kExitOk;
}

/// Builds the {"protocol_version":..,"verb":..,"id":..,"options":{...}}
/// request envelope. Transport/client-only knobs never go on the wire.
std::string client_request(const std::string& verb, const Config& cfg,
                           std::int64_t id = 0) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.key("protocol_version").value(serve::kProtocolVersion);
  w.key("verb").value(verb);
  if (id > 0) w.key("id").value(static_cast<std::int64_t>(id));
  w.key("options").begin_object();
  for (const auto& [key, value] : cfg.all()) {
    if (key == "socket" || key == "port" || key == "wait" || key == "json" ||
        key == "id") {
      continue;
    }
    // Values travel as the raw key=value text the user typed; the server
    // re-parses them through the same knob registry as argv.
    w.key(key).value(value);
  }
  w.end_object();
  w.end_object();
  return os.str();
}

serve::Client client_connect(const Config& cfg, sim::KnobCommand cmd) {
  return serve::Client::connect(sim::knob_string(cfg, cmd, "socket"),
                                static_cast<int>(sim::knob_int(cfg, cmd, "port")));
}

/// Decodes the "rows" array of a result/submit response (store "put ..."
/// payload lines) back into Metrics, exactly as the store itself would.
std::vector<sim::Metrics> rows_from_response(const JsonValue& response) {
  std::vector<sim::Metrics> rows;
  const JsonValue* arr = response.find("rows");
  if (arr == nullptr) return rows;
  for (std::size_t i = 0; i < arr->size(); ++i) {
    const auto rec = store::decode_put(arr->at(i).as_string());
    STTGPU_REQUIRE(rec.has_value(), "server sent an undecodable result row");
    rows.push_back(sim::from_store_row(rec->row));
  }
  return rows;
}

void print_rows_table(const std::vector<sim::Metrics>& rows) {
  TextTable table({"arch", "benchmark", "IPC", "dyn W", "total W"});
  for (const auto& m : rows) {
    table.add_row({m.arch, m.benchmark, TextTable::fmt(m.ipc, 3),
                   TextTable::fmt(m.dynamic_w, 3), TextTable::fmt(m.total_w, 3)});
  }
  table.print(std::cout);
}

/// Follows a submission's event stream, narrating progress to stderr.
/// Returns the terminal "complete" event.
JsonValue follow(const Config& cfg, sim::KnobCommand cmd, std::int64_t id) {
  serve::Client watcher = client_connect(cfg, cmd);
  Config watch_cfg;  // watch carries no options, just the id
  return watcher.stream(client_request("watch", watch_cfg, id),
                        [](const std::string&, const JsonValue& ev) {
    const std::string kind = ev.at("event").as_string();
    if (kind == "start" || kind == "done" || kind == "failed") {
      std::string line = "[serve] " + kind + " " + ev.at("arch").as_string() + "/" +
                         ev.at("benchmark").as_string();
      const JsonValue* status = ev.find("status");
      if (status != nullptr && status->as_string() != "ok") {
        line += " (" + status->as_string() + ")";
      }
      sim::log_line(line);
    }
  });
}

/// Sends the submit request, honoring the server's admission control: an
/// "overloaded" refusal is retried with the server's retry_after_ms hint
/// plus client-side jitter (so a herd of shed clients doesn't re-arrive in
/// lockstep). Throws the final Overloaded when the retry budget runs out.
JsonValue submit_with_backoff(const Config& cfg, sim::KnobCommand cmd) {
  constexpr int kMaxOverloadRetries = 8;
  std::mt19937 rng{std::random_device{}()};
  std::uniform_real_distribution<double> jitter(0.0, 0.5);
  for (int attempt = 0;; ++attempt) {
    serve::Client client = client_connect(cfg, cmd);
    try {
      return client.request(client_request("submit", cfg));
    } catch (const serve::Overloaded& e) {
      if (attempt >= kMaxOverloadRetries) throw;
      const double ms = static_cast<double>(e.retry_after_ms()) * (1.0 + jitter(rng));
      std::cerr << "server overloaded; retrying in " << static_cast<std::int64_t>(ms)
                << "ms (attempt " << attempt + 1 << "/" << kMaxOverloadRetries << ")\n";
      std::this_thread::sleep_for(
          std::chrono::milliseconds(static_cast<std::int64_t>(ms)));
    }
  }
}

int cmd_submit(const Config& cfg) {
  constexpr auto kCmd = sim::kKnobSubmit;
  sim::validate_knobs(cfg, kCmd, "submit");
  const JsonValue response = submit_with_backoff(cfg, kCmd);
  const std::int64_t id = response.at("id").as_int();
  std::cout << "submitted " << id << ": " << response.at("total").as_int()
            << " configs, " << response.at("hits").as_int() << " store hits, "
            << response.at("scheduled").as_int() << " scheduled, "
            << response.at("attached").as_int() << " attached\n";
  if (!sim::knob_bool(cfg, kCmd, "wait")) return kExitOk;

  const JsonValue final_event = follow(cfg, kCmd, id);
  serve::Client fetcher = client_connect(cfg, kCmd);
  Config result_cfg;
  const JsonValue result = fetcher.request(client_request("result", result_cfg, id));
  const std::vector<sim::Metrics> rows = rows_from_response(result);
  print_rows_table(rows);
  if (cfg.has("json")) {
    atomic_write_file(sim::knob_string(cfg, kCmd, "json"), [&rows](std::ostream& out) {
      sim::write_matrix_json(out, rows);
      out << "\n";
    });
  }
  const std::string state = final_event.at("state").as_string();
  if (state == "complete") return kExitOk;
  std::cerr << "submission " << id << " " << state << " ("
            << final_event.at("failed").as_int() << " of "
            << final_event.at("total").as_int() << " configs failed)\n";
  return state == "cancelled" ? kExitInterrupted : kExitError;
}

int cmd_status(const Config& cfg) {
  constexpr auto kCmd = sim::kKnobStatus;
  sim::validate_knobs(cfg, kCmd, "status");
  const std::int64_t id = sim::knob_int(cfg, kCmd, "id");
  serve::Client client = client_connect(cfg, kCmd);
  Config empty;
  const JsonValue response = client.request(client_request("status", empty, id));
  if (id == 0) {
    const JsonValue& s = response.at("server");
    std::cout << "server:\n"
              << "  submissions     " << s.at("submissions").as_int() << "\n"
              << "  simulated       " << s.at("tasks_simulated").as_int() << " task"
              << (s.at("tasks_simulated").as_int() == 1 ? "" : "s") << " ("
              << s.at("tasks_failed").as_int() << " failed)\n"
              << "  store hits      " << s.at("store_hits").as_int() << " (+"
              << s.at("attached").as_int() << " attached to in-flight tasks)\n"
              << "  store rows      " << s.at("store_rows").as_int() << " ("
              << s.at("merged_rows").as_int() << " merged from other writers)\n"
              << "  queue           " << s.at("queued").as_int() << " waiting, "
              << s.at("workers").as_int() << " worker"
              << (s.at("workers").as_int() == 1 ? "" : "s") << "\n";
    return kExitOk;
  }
  std::cout << "submission " << response.at("id").as_int() << ": "
            << response.at("state").as_string() << " ("
            << response.at("hits").as_int() << " hits, "
            << response.at("simulated").as_int() << " simulated, "
            << response.at("failed").as_int() << " failed, "
            << response.at("pending").as_int() << " pending of "
            << response.at("total").as_int() << ")\n";
  return kExitOk;
}

int cmd_watch(const Config& cfg) {
  constexpr auto kCmd = sim::kKnobWatch;
  sim::validate_knobs(cfg, kCmd, "watch");
  const std::int64_t id = sim::knob_int(cfg, kCmd, "id");
  STTGPU_REQUIRE(id > 0, "watch needs id=<submission>");
  serve::Client client = client_connect(cfg, kCmd);
  Config empty;
  // Events pass through verbatim: `sttgpu watch` IS the NDJSON stream.
  client.stream(client_request("watch", empty, id),
                [](const std::string& line, const JsonValue&) {
                  std::cout << line << "\n" << std::flush;
                });
  return kExitOk;
}

int cmd_cancel(const Config& cfg) {
  constexpr auto kCmd = sim::kKnobCancel;
  sim::validate_knobs(cfg, kCmd, "cancel");
  const std::int64_t id = sim::knob_int(cfg, kCmd, "id");
  STTGPU_REQUIRE(id > 0, "cancel needs id=<submission>");
  serve::Client client = client_connect(cfg, kCmd);
  Config empty;
  const JsonValue response = client.request(client_request("cancel", empty, id));
  std::cout << "submission " << response.at("id").as_int() << ": "
            << response.at("state").as_string() << "\n";
  return kExitOk;
}

int cmd_result(const Config& cfg) {
  constexpr auto kCmd = sim::kKnobResult;
  sim::validate_knobs(cfg, kCmd, "result");
  const std::int64_t id = sim::knob_int(cfg, kCmd, "id");
  serve::Client client = client_connect(cfg, kCmd);
  const JsonValue response = client.request(client_request("result", cfg, id));
  const std::vector<sim::Metrics> rows = rows_from_response(response);
  if (id > 0) {
    print_rows_table(rows);
    const JsonValue& missing = response.at("missing");
    if (missing.size() > 0) {
      std::cerr << missing.size() << " of " << rows.size() + missing.size()
                << " rows are not in the store (failed or still pending)\n";
      return kExitError;
    }
    return kExitOk;
  }
  // By-key lookup prints the exact metrics block a direct `sttgpu run` of
  // the same config prints: the row round-trips the store's max_digits10
  // encoding, so every double is bit-identical.
  STTGPU_REQUIRE(!rows.empty(), "no stored result");
  sim::print_metrics_block(std::cout, rows.front(), sim::knob_double(cfg, kCmd, "scale"));
  return kExitOk;
}

int cmd_health(const Config& cfg) {
  constexpr auto kCmd = sim::kKnobHealth;
  sim::validate_knobs(cfg, kCmd, "health");
  serve::Client client = client_connect(cfg, kCmd);
  Config empty;
  const JsonValue response = client.request(client_request("health", empty));
  const JsonValue& h = response.at("health");
  std::ostringstream up;
  up.setf(std::ios::fixed);
  up.precision(1);
  up << h.at("uptime_s").as_double();
  std::cout << "server: up " << up.str() << "s, " << h.at("workers").as_int()
            << " worker" << (h.at("workers").as_int() == 1 ? "" : "s") << ", sandbox "
            << (h.at("sandbox").as_bool() ? "on" : "off") << "\n"
            << "  queue        " << h.at("queued").as_int() << " waiting, "
            << h.at("inflight").as_int() << " in flight ("
            << h.at("connections").as_int() << " connection"
            << (h.at("connections").as_int() == 1 ? "" : "s") << ")\n"
            << "  journal      " << h.at("journal_pending").as_int() << " pending of "
            << h.at("journal_records").as_int() << " recorded ("
            << h.at("replayed").as_int() << " replayed at startup)\n"
            << "  admission    " << h.at("shed").as_int() << " shed, "
            << h.at("read_deadline_drops").as_int() << " silent-client drops\n"
            << "  children     " << h.at("child_kills").as_int() << " kills, "
            << h.at("child_crashes").as_int() << " crashes, "
            << h.at("task_retries").as_int() << " retries\n"
            << "  tasks        " << h.at("tasks_simulated").as_int() << " simulated, "
            << h.at("tasks_failed").as_int() << " failed, "
            << h.at("submissions").as_int() << " submissions\n";
  return kExitOk;
}

int usage() {
  std::cerr << sim::knob_usage();
  return kExitUsage;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  install_signal_handlers();
  const std::string command = argv[1];
  try {
    if (command == "help") {
      std::cout << sim::knob_usage();
      return kExitOk;
    }
    if (command == "store") {
      // The verb rides as argv[2] (not key=value), so the knob Config
      // parses from the arguments after it.
      if (argc < 3) return usage();
      const Config cfg = Config::from_args(argc - 2, argv + 2);
      return cmd_store(argv[2], cfg);
    }
    const Config cfg = Config::from_args(argc - 1, argv + 1);
    if (command == "list") return cmd_list();
    if (command == "run") return cmd_run(cfg);
    if (command == "matrix") return cmd_matrix(cfg);
    if (command == "record") return cmd_record(cfg);
    if (command == "replay") return cmd_replay(cfg);
    if (command == "serve") return cmd_serve(cfg);
    if (command == "submit") return cmd_submit(cfg);
    if (command == "status") return cmd_status(cfg);
    if (command == "watch") return cmd_watch(cfg);
    if (command == "cancel") return cmd_cancel(cfg);
    if (command == "result") return cmd_result(cfg);
    if (command == "health") return cmd_health(cfg);
    return usage();
  } catch (const serve::BindError& e) {
    std::cerr << "error: " << e.what() << "\n";
    return kExitBind;
  } catch (const serve::Overloaded& e) {
    std::cerr << "error: " << e.what() << "\n";
    return kExitOverloaded;
  } catch (const serve::JournalError& e) {
    std::cerr << "error: " << e.what() << "\n";
    return kExitJournal;
  } catch (const serve::ProtocolMismatch& e) {
    std::cerr << "error: " << e.what() << "\n";
    return kExitProtocol;
  } catch (const Cancelled& c) {
    // Artifacts (cache, telemetry, JSON) were finalized before the unwind;
    // the exit code tells scripts whether this is resumable (3 = user
    // interrupt; rerun to resume) or a supervision kill (4).
    std::cerr << "interrupted: " << c.what() << "\n";
    return c.reason() == CancelReason::kUser ? kExitInterrupted : kExitWatchdog;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return kExitError;
  }
}
