// sttgpu — command-line front end to the simulator.
//
//   sttgpu list
//       Print the available architectures and benchmark models.
//
//   sttgpu run arch=C1 benchmark=bfs [scale=0.5] [json=out.json]
//       Simulate one (architecture, benchmark) pair; print the metrics and
//       the bank counters; optionally dump the full result as JSON.
//
//   sttgpu matrix [scale=0.5] [cache=fig8_cache.csv] [jobs=N] [json=matrix.json]
//       Run the full Fig. 8 matrix and print/export it. Runs fan out over
//       `jobs` worker threads (default: all hardware threads; jobs=1 is
//       strictly sequential) with deterministic output ordering. Results
//       persist write-through to the cache (format v2, scale- and
//       config-fingerprinted), so an interrupted matrix resumes.
//
//   sttgpu record arch=sram benchmark=bfs trace=bfs.trace [scale=0.5]
//       Run once and capture the L2 demand stream to a CSV trace.
//
//   sttgpu replay trace=bfs.trace arch=C1
//       Drive the chosen architecture's L2 banks from a trace (no GPU) and
//       print the resulting cache statistics — fast architecture sweeps.
#include <fstream>
#include <initializer_list>
#include <iostream>

#include "common/config.hpp"
#include "common/error.hpp"
#include "common/table.hpp"
#include "sim/executor.hpp"
#include "sim/probe.hpp"
#include "sim/report.hpp"
#include "sim/runner.hpp"
#include "sim/trace.hpp"

namespace {

using namespace sttgpu;

/// Rejects typo'd knobs: every key must appear in @p valid, otherwise the
/// command aborts with a SimError naming the knobs it does accept. Without
/// this a misspelling like `fastfoward=0` would silently run the default.
void require_known_keys(const Config& cfg, const std::string& command,
                        std::initializer_list<const char*> valid) {
  for (const auto& [key, value] : cfg.all()) {
    bool known = false;
    for (const char* v : valid) {
      if (key == v) {
        known = true;
        break;
      }
    }
    if (known) continue;
    std::string msg = "unknown knob '" + key + "' for 'sttgpu " + command + "'; valid knobs:";
    for (const char* v : valid) {
      msg += ' ';
      msg += v;
    }
    throw SimError(msg);
  }
}

/// Builds the fault-injection config shared by run/matrix from the
/// `faults= fault_seed= fault_accel= ecc=` knobs (defaults: disabled).
sttl2::FaultInjectionConfig fault_config_from(const Config& cfg) {
  sttl2::FaultInjectionConfig f;
  f.enabled = cfg.get_int("faults", 0) != 0;
  f.seed = static_cast<std::uint64_t>(
      cfg.get_int("fault_seed", static_cast<std::int64_t>(f.seed)));
  f.accel = cfg.get_double("fault_accel", f.accel);
  f.ecc = cfg.get_bool("ecc", f.ecc);
  return f;
}

int cmd_list() {
  std::cout << "architectures:\n";
  for (const auto arch : sim::all_architectures()) {
    const sim::ArchSpec spec = sim::make_arch(arch);
    std::cout << "  " << spec.name << "  L2 " << spec.l2_total_bytes() / 1024 << "KB"
              << (spec.two_part ? " (two-part)" : " (uniform)") << ", "
              << spec.gpu.registers_per_sm << " regs/SM\n";
  }
  std::cout << "\nbenchmarks:\n";
  for (const auto& name : workload::benchmark_names()) {
    const workload::Workload w = workload::make_benchmark(name);
    std::cout << "  " << name << "  (region " << w.region << ", "
              << w.total_instructions() / 1000 << "k warp instructions)\n";
  }
  return 0;
}

int cmd_run(const Config& cfg) {
  require_known_keys(cfg, "run",
                     {"arch", "benchmark", "scale", "json", "fastforward", "faults",
                      "fault_seed", "fault_accel", "ecc"});
  const std::string arch_name = cfg.get_string("arch", "C1");
  const std::string benchmark = cfg.get_string("benchmark", "bfs");
  const double scale = cfg.get_double("scale", 0.5);
  const sttl2::FaultInjectionConfig faults = fault_config_from(cfg);

  sim::ArchSpec spec = sim::make_arch(sim::architecture_from_string(arch_name));
  spec.gpu.fast_forward = cfg.get_int("fastforward", 1) != 0;
  if (spec.two_part) {
    spec.two_part_cfg.faults = faults;
  } else {
    spec.uniform.faults = faults;
  }
  const workload::Workload w = workload::make_benchmark(benchmark, scale);
  gpu::RunResult run;
  sim::FaultSummary fault_summary;
  const sim::Metrics m = sim::run_one_detailed(
      spec, w, run, [&fault_summary](gpu::Gpu& g) {
        fault_summary = sim::collect_fault_summary(g);
      });

  std::cout << arch_name << " / " << benchmark << " (scale " << scale << ")\n"
            << "  IPC        " << m.ipc << "\n"
            << "  cycles     " << m.cycles << "\n"
            << "  L2 power   " << m.total_w << " W (dyn " << m.dynamic_w << " + leak "
            << m.leakage_w << ")\n"
            << "  writes     " << m.l2_write_share * 100 << "% of L2 accesses\n"
            << "  miss rate  " << m.l2_miss_rate * 100 << "%\n";
  if (!run.l2_counters.all().empty()) {
    std::cout << "  counters:\n";
    for (const auto& [name, value] : run.l2_counters.all()) {
      std::cout << "    " << name << " = " << value << "\n";
    }
  }
  if (fault_summary.enabled) {
    std::cout << "  faults (seed " << faults.seed << ", accel " << faults.accel
              << ", ecc " << (faults.ecc ? "on" : "off") << "):\n"
              << "    lifetime trials     " << fault_summary.trials << "\n"
              << "    injected collapses  " << fault_summary.collapses << "\n"
              << "    expected collapses  " << fault_summary.expected << "\n"
              << "    predicted (analytic " << fault_summary.predicted
              << " via analyze_reliability)\n"
              << "    ecc corrected " << fault_summary.ecc_corrected << ", detected "
              << fault_summary.ecc_detected << ", clean refetch "
              << fault_summary.clean_refetch << ", data loss "
              << fault_summary.data_loss << "\n"
              << "    write-verify retries " << fault_summary.wv_retries
              << ", escalations " << fault_summary.wv_escalations << "\n";
  }

  if (cfg.has("json")) {
    std::ofstream out(cfg.get_string("json", ""));
    STTGPU_REQUIRE(static_cast<bool>(out), "cannot open json output file");
    sim::write_run_json(out, m, run, fault_summary.enabled ? &fault_summary : nullptr);
    out << "\n";
  }
  return 0;
}

int cmd_matrix(const Config& cfg) {
  require_known_keys(cfg, "matrix",
                     {"scale", "cache", "jobs", "json", "fastforward", "faults",
                      "fault_seed", "fault_accel", "ecc"});
  const double scale = cfg.get_double("scale", 0.5);
  const std::string cache = cfg.get_string("cache", "fig8_cache.csv");
  const unsigned jobs = sim::resolve_jobs(cfg.get_int("jobs", 0));
  const bool fast_forward = cfg.get_int("fastforward", 1) != 0;
  const sttl2::FaultInjectionConfig faults = fault_config_from(cfg);
  const auto rows =
      sim::run_matrix(sim::all_architectures(), scale, cache, jobs, fast_forward, faults);

  TextTable table({"arch", "benchmark", "IPC", "dyn W", "total W"});
  for (const auto& m : rows) {
    table.add_row({m.arch, m.benchmark, TextTable::fmt(m.ipc, 3),
                   TextTable::fmt(m.dynamic_w, 3), TextTable::fmt(m.total_w, 3)});
  }
  table.print(std::cout);

  if (cfg.has("json")) {
    std::ofstream out(cfg.get_string("json", ""));
    STTGPU_REQUIRE(static_cast<bool>(out), "cannot open json output file");
    sim::write_matrix_json(out, rows);
    out << "\n";
  }
  return 0;
}

int cmd_record(const Config& cfg) {
  require_known_keys(cfg, "record", {"arch", "benchmark", "trace", "scale", "fastforward"});
  sim::ArchSpec spec =
      sim::make_arch(sim::architecture_from_string(cfg.get_string("arch", "sram")));
  spec.gpu.fast_forward = cfg.get_int("fastforward", 1) != 0;
  const workload::Workload w =
      workload::make_benchmark(cfg.get_string("benchmark", "bfs"), cfg.get_double("scale", 0.5));
  const std::string path = cfg.get_string("trace", "l2.trace");
  const sim::Metrics m = sim::record_trace(spec, w, path);
  std::cout << "recorded " << path << " (ipc " << m.ipc << ", "
            << m.l2_write_share * 100 << "% writes)\n";
  return 0;
}

int cmd_replay(const Config& cfg) {
  require_known_keys(cfg, "replay", {"trace", "arch"});
  const auto records = sim::load_trace(cfg.get_string("trace", "l2.trace"));
  const sim::ArchSpec spec =
      sim::make_arch(sim::architecture_from_string(cfg.get_string("arch", "C1")));
  const sim::ReplayResult r =
      spec.two_part ? sim::replay_trace(records, spec.two_part_cfg, spec.gpu)
                    : sim::replay_trace(records, spec.uniform, spec.gpu);
  std::cout << "replayed " << records.size() << " requests on " << spec.name << "\n"
            << "  miss rate   " << r.stats.miss_rate() * 100 << "%\n"
            << "  write share " << r.stats.write_share() * 100 << "%\n"
            << "  dram reads  " << r.stats.dram_reads << ", writebacks "
            << r.stats.dram_writebacks << "\n"
            << "  dyn energy  " << r.dynamic_energy_pj * 1e-6 << " uJ, leakage "
            << r.leakage_w << " W\n";
  for (const auto& [name, value] : r.counters.all()) {
    std::cout << "  " << name << " = " << value << "\n";
  }
  return 0;
}

int usage() {
  std::cerr << "usage: sttgpu <list|run|matrix|record|replay> [key=value ...]\n"
               "  run:    arch=<sram|stt-base|C1|C2|C3> benchmark=<name> [scale=] [json=]\n"
               "  matrix: [scale=] [cache=] [jobs=] [json=]\n"
               "  record: arch= benchmark= trace=<path> [scale=]\n"
               "  replay: trace=<path> arch=\n"
               "  run/matrix/record also accept fastforward=<0|1> (default 1): toggles the\n"
               "  event-driven idle-cycle skip in the simulator core; results are identical.\n"
               "  run/matrix also accept STT-RAM fault injection (see EXPERIMENTS.md):\n"
               "    faults=<0|1>     enable the seeded retention/write-failure injector\n"
               "    fault_seed=<n>   RNG seed (default 42)\n"
               "    fault_accel=<x>  error-rate acceleration factor (default 1)\n"
               "    ecc=<0|1>        SECDED recovery on collapsed lines (default 1)\n"
               "  fault runs use a separate matrix cache fingerprint; faults=0 is\n"
               "  byte-identical to builds without the injector.\n"
               "  unknown key=value knobs are rejected with the valid list for the command.\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  try {
    const Config cfg = Config::from_args(argc - 1, argv + 1);
    if (command == "list") return cmd_list();
    if (command == "run") return cmd_run(cfg);
    if (command == "matrix") return cmd_matrix(cfg);
    if (command == "record") return cmd_record(cfg);
    if (command == "replay") return cmd_replay(cfg);
    return usage();
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
