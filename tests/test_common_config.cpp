#include "common/config.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace sttgpu {
namespace {

Config parse(std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  return Config::from_args(static_cast<int>(args.size()), args.data());
}

TEST(Config, ParsesKeyValueArgs) {
  const Config cfg = parse({"scale=0.5", "benchmark=bfs", "verbose=true", "n=42"});
  EXPECT_DOUBLE_EQ(cfg.get_double("scale", 1.0), 0.5);
  EXPECT_EQ(cfg.get_string("benchmark", ""), "bfs");
  EXPECT_TRUE(cfg.get_bool("verbose", false));
  EXPECT_EQ(cfg.get_int("n", 0), 42);
}

TEST(Config, FallbacksWhenMissing) {
  const Config cfg = parse({});
  EXPECT_DOUBLE_EQ(cfg.get_double("scale", 0.25), 0.25);
  EXPECT_EQ(cfg.get_string("name", "dflt"), "dflt");
  EXPECT_FALSE(cfg.get_bool("flag", false));
  EXPECT_EQ(cfg.get_int("n", -1), -1);
}

TEST(Config, RejectsMalformedTokens) {
  EXPECT_THROW(parse({"noequals"}), SimError);
  EXPECT_THROW(parse({"=value"}), SimError);
}

TEST(Config, RejectsBadTypes) {
  const Config cfg = parse({"n=abc", "d=1.2.3", "b=maybe"});
  EXPECT_THROW(cfg.get_int("n", 0), SimError);
  EXPECT_THROW(cfg.get_double("d", 0.0), SimError);
  EXPECT_THROW(cfg.get_bool("b", false), SimError);
}

TEST(Config, BooleanSpellings) {
  const Config cfg = parse({"a=1", "b=0", "c=yes", "d=off", "e=true", "f=no"});
  EXPECT_TRUE(cfg.get_bool("a", false));
  EXPECT_FALSE(cfg.get_bool("b", true));
  EXPECT_TRUE(cfg.get_bool("c", false));
  EXPECT_FALSE(cfg.get_bool("d", true));
  EXPECT_TRUE(cfg.get_bool("e", false));
  EXPECT_FALSE(cfg.get_bool("f", true));
}

TEST(Config, HasAndSet) {
  Config cfg;
  EXPECT_FALSE(cfg.has("k"));
  cfg.set("k", "v");
  EXPECT_TRUE(cfg.has("k"));
  EXPECT_EQ(cfg.get_string("k", ""), "v");
}

TEST(Config, HexIntegers) {
  const Config cfg = parse({"addr=0x100"});
  EXPECT_EQ(cfg.get_int("addr", 0), 256);
}

}  // namespace
}  // namespace sttgpu
