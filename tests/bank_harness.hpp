// Shared test harness driving a single L2 bank with its private DRAM
// channel, without the rest of the GPU.
#pragma once

#include <memory>
#include <vector>

#include "gpu/dram.hpp"
#include "gpu/gpu_config.hpp"
#include "sttl2/two_part_bank.hpp"
#include "sttl2/uniform_bank.hpp"

namespace sttgpu::testing {

template <typename BankT, typename ConfigT>
class BankHarness {
 public:
  explicit BankHarness(const ConfigT& bank_cfg, gpu::GpuConfig gpu_cfg = {})
      : gpu_cfg_(gpu_cfg) {
    dram_ = std::make_unique<gpu::DramChannel>(
        gpu_cfg_, [this](std::uint64_t cookie, Cycle now) {
          bank_->on_dram_read_done(cookie, now);
        });
    bank_ = std::make_unique<BankT>(/*bank_id=*/0, bank_cfg, gpu_cfg_.clock(), *dram_);
  }

  BankT& bank() { return *bank_; }
  Cycle now() const { return now_; }

  /// Sends one request into the bank at the current cycle.
  std::uint64_t send(Addr addr, bool is_store) {
    gpu::L2Request req;
    req.id = next_id_++;
    req.addr = addr;
    req.is_store = is_store;
    req.sm_id = 0;
    req.created = now_;
    bank_->enqueue(req, now_);
    return req.id;
  }

  /// Advances @p cycles, collecting responses.
  void run(Cycle cycles) {
    for (Cycle i = 0; i < cycles; ++i) {
      dram_->tick(now_);
      bank_->tick(now_);
      bank_->drain_responses(now_, responses_);
      ++now_;
    }
  }

  /// Runs until the bank and DRAM are idle (bounded by @p limit cycles).
  void drain(Cycle limit = 100000) {
    const Cycle end = now_ + limit;
    while ((!bank_->idle() || !dram_->idle()) && now_ < end) run(1);
  }

  std::vector<gpu::L2Response>& responses() { return responses_; }

  /// True if a response for @p id has been collected.
  bool responded(std::uint64_t id) const {
    for (const auto& r : responses_) {
      if (r.id == id) return true;
    }
    return false;
  }

  gpu::DramChannel& dram() { return *dram_; }

 private:
  gpu::GpuConfig gpu_cfg_;
  std::unique_ptr<gpu::DramChannel> dram_;
  std::unique_ptr<BankT> bank_;
  Cycle now_ = 0;
  std::uint64_t next_id_ = 1;
  std::vector<gpu::L2Response> responses_;
};

using UniformHarness = BankHarness<sttl2::UniformBank, sttl2::UniformBankConfig>;
using TwoPartHarness = BankHarness<sttl2::TwoPartBank, sttl2::TwoPartBankConfig>;

}  // namespace sttgpu::testing
