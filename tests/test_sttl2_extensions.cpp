// Tests of the extension features beyond the paper: adaptive write
// threshold, early write termination (EWT) energy scaling, and the
// endurance (wear) trackers.
#include <gtest/gtest.h>

#include "bank_harness.hpp"
#include "common/rng.hpp"

namespace sttgpu::sttl2 {
namespace {

using Harness = sttgpu::testing::TwoPartHarness;

TwoPartBankConfig small_cfg() {
  TwoPartBankConfig c;
  c.hr_bytes = 14 * 1024;
  c.lr_bytes = 2 * 1024;  // 8 lines: easy to oversubscribe
  return c;
}

/// Hot store traffic over more distinct lines than the LR can hold.
void hammer(Harness& h, unsigned lines, int rounds, Cycle gap = 12) {
  Rng rng(3);
  for (int r = 0; r < rounds; ++r) {
    h.send(rng.next_below(lines) * 256, /*is_store=*/true);
    h.run(gap);
  }
  h.drain();
}

TEST(AdaptiveThreshold, RaisesThresholdUnderChurn) {
  TwoPartBankConfig cfg = small_cfg();
  cfg.adaptive_threshold = true;
  cfg.adapt_interval = 2048;
  Harness h(cfg);
  hammer(h, /*lines=*/32, /*rounds=*/2000, /*gap=*/6);  // 32 hot lines vs 8 LR slots
  EXPECT_GT(h.bank().current_threshold(), 1u);
  EXPECT_GT(h.bank().counters().get("threshold_up"), 0u);
}

TEST(AdaptiveThreshold, StaysAtBaseWhenLrSuffices) {
  TwoPartBankConfig cfg = small_cfg();
  cfg.adaptive_threshold = true;
  cfg.adapt_interval = 2048;
  Harness h(cfg);
  hammer(h, /*lines=*/4, /*rounds=*/2000, /*gap=*/6);  // 4 hot lines: fits LR
  EXPECT_EQ(h.bank().current_threshold(), 1u);
}

TEST(AdaptiveThreshold, DisabledByDefault) {
  Harness h(small_cfg());
  hammer(h, 32, 1500, 6);
  EXPECT_EQ(h.bank().current_threshold(), 1u);
  EXPECT_EQ(h.bank().counters().get("threshold_up"), 0u);
}

TEST(AdaptiveThreshold, ReducesChurnOnOversubscribedLr) {
  TwoPartBankConfig base = small_cfg();
  TwoPartBankConfig adaptive = small_cfg();
  adaptive.adaptive_threshold = true;
  adaptive.adapt_interval = 2048;

  Harness hb(base), ha(adaptive);
  hammer(hb, 32, 3000, 6);
  hammer(ha, 32, 3000, 6);
  EXPECT_LT(ha.bank().counters().get("lr_evictions"),
            hb.bank().counters().get("lr_evictions"));
}

TEST(Ewt, ScalesWriteEnergyOnly) {
  TwoPartBankConfig plain = small_cfg();
  TwoPartBankConfig ewt = small_cfg();
  ewt.early_write_termination = true;
  ewt.ewt_flip_fraction = 0.35;

  const auto run_traffic = [](const TwoPartBankConfig& cfg) {
    Harness h(cfg);
    hammer(h, 8, 500, 10);
    return std::pair{h.bank().energy().category_pj("l2.lr.data_write") +
                         h.bank().energy().category_pj("l2.hr.data_write"),
                     h.bank().energy().category_pj("l2.hr.data_read") +
                         h.bank().energy().category_pj("l2.lr.data_read")};
  };

  const auto [w_plain, r_plain] = run_traffic(plain);
  const auto [w_ewt, r_ewt] = run_traffic(ewt);
  EXPECT_NEAR(w_ewt / w_plain, 0.35, 0.01);  // writes scaled by flip fraction
  EXPECT_DOUBLE_EQ(r_ewt, r_plain);          // reads untouched
}

TEST(Ewt, RejectsInvalidFlipFraction) {
  TwoPartBankConfig cfg = small_cfg();
  cfg.early_write_termination = true;
  cfg.ewt_flip_fraction = 0.0;
  gpu::GpuConfig gcfg;
  gpu::DramChannel dram(gcfg, [](std::uint64_t, Cycle) {});
  EXPECT_THROW(TwoPartBank(0, cfg, gcfg.clock(), dram), SimError);
}

TEST(Ewt, WorksOnUniformBank) {
  UniformBankConfig plain;
  plain.capacity_bytes = 16 * 1024;
  UniformBankConfig ewt = plain;
  ewt.early_write_termination = true;
  ewt.ewt_flip_fraction = 0.5;

  const auto energy = [](const UniformBankConfig& cfg) {
    sttgpu::testing::UniformHarness h(cfg);
    for (int i = 0; i < 50; ++i) {
      h.send(static_cast<Addr>(i % 8) * 256, true);
      h.run(10);
    }
    h.drain();
    return h.bank().energy().category_pj("l2.data_write");
  };
  EXPECT_NEAR(energy(ewt) / energy(plain), 0.5, 0.01);
}

TEST(Wear, TracksPhysicalWritesPerPart) {
  Harness h(small_cfg());
  hammer(h, 8, 400, 10);
  const auto& c = h.bank().counters();
  EXPECT_EQ(h.bank().lr_wear().total_writes(), c.get("lr_phys_writes"));
  EXPECT_EQ(h.bank().hr_wear().total_writes(), c.get("hr_phys_writes"));
  EXPECT_GT(h.bank().lr_wear().total_writes(), 0u);
  EXPECT_GT(h.bank().hr_wear().total_writes(), 0u);
}

TEST(WearLeveling, RotationsLevelInterSetWear) {
  // One hot line without leveling wears a single LR set; with rotation the
  // wear spreads across sets.
  const auto run_hot = [](bool leveling) {
    TwoPartBankConfig cfg = small_cfg();
    cfg.lr_wear_leveling = leveling;
    cfg.wear_level_period = 64;
    Harness h(cfg);
    for (int i = 0; i < 600; ++i) {
      h.send(0x100, true);
      h.run(10);
    }
    h.drain();
    return std::pair{h.bank().lr_wear().inter_set_cov(),
                     h.bank().counters().get("wear_rotations")};
  };
  const auto [cov_plain, rot_plain] = run_hot(false);
  const auto [cov_level, rot_level] = run_hot(true);
  EXPECT_EQ(rot_plain, 0u);
  EXPECT_GT(rot_level, 2u);
  EXPECT_LT(cov_level, 0.7 * cov_plain);
}

TEST(WearLeveling, DataSurvivesRotation) {
  TwoPartBankConfig cfg = small_cfg();
  cfg.lr_wear_leveling = true;
  cfg.wear_level_period = 32;
  Harness h(cfg);
  Rng rng(5);
  // Mixed hot traffic across several lines, forcing multiple rotations.
  for (int i = 0; i < 400; ++i) {
    h.send(rng.next_below(6) * 256, rng.chance(0.7));
    h.run(12);
  }
  h.drain();
  ASSERT_GT(h.bank().counters().get("wear_rotations"), 0u);
  // Every line is still cached somewhere (LR or HR) and readable without
  // a DRAM fetch.
  const auto reads_before = h.dram().reads();
  for (Addr a = 0; a < 6 * 256; a += 256) h.send(a, false);
  h.drain();
  EXPECT_EQ(h.dram().reads(), reads_before);
  // Accounting still balances.
  const auto& c = h.bank().counters();
  EXPECT_EQ(c.get("w_demand"), c.get("w_lr") + c.get("w_hr"));
}

TEST(Wear, HotTrafficSkewsLrWear) {
  // One violently hot line: its LR cells wear far more than average.
  Harness h(small_cfg());
  for (int i = 0; i < 300; ++i) {
    h.send(0x100, true);
    h.run(10);
  }
  h.drain();
  EXPECT_GT(h.bank().lr_wear().inter_set_cov(), 0.5);
}

}  // namespace
}  // namespace sttgpu::sttl2
