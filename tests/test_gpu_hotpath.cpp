// Hot-path stepping equivalence: the per-component event-lane scheduler
// (hotpath=1), the event wheel (hotpath=2) and the batched bank ticks
// (tick_jobs>1) are pure scheduling optimizations — every reported metric
// must be byte-identical to the plain per-cycle loop, in every combination
// with the event-driven fast-forward, with fault injection, and with a
// telemetry sink attached. Plus unit tests of the TickPool worker pool.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "common/telemetry.hpp"
#include "gpu/gpu.hpp"
#include "gpu/tick_pool.hpp"
#include "sim/arch.hpp"
#include "sim/runner.hpp"
#include "sttl2/factories.hpp"
#include "workload/benchmarks.hpp"

namespace sttgpu::gpu {
namespace {

workload::Workload tiny_workload() {
  workload::KernelSpec k;
  k.name = "tiny";
  k.grid_blocks = 30;
  k.threads_per_block = 64;
  k.regs_per_thread = 16;
  k.instructions_per_warp = 300;
  k.mem_fraction = 0.3;
  k.store_fraction = 0.25;
  k.pattern.kind = workload::PatternKind::kRandom;
  k.pattern.footprint_bytes = 256 * 1024;
  k.pattern.reuse_fraction = 0.3;
  k.pattern.wws_lines = 32;
  return workload::Workload{.name = "tiny", .region = "test", .kernels = {k}, .seed = 5};
}

workload::Workload sparse_workload() {
  workload::KernelSpec k;
  k.name = "sparse";
  k.grid_blocks = 2;
  k.threads_per_block = 32;
  k.instructions_per_warp = 400;
  k.mem_fraction = 0.5;
  k.store_fraction = 0.1;
  k.pattern.kind = workload::PatternKind::kRandom;
  k.pattern.footprint_bytes = 64ull << 20;
  k.pattern.reuse_fraction = 0.0;
  k.pattern.wws_lines = 0;
  return workload::Workload{.name = "sparse", .region = "test", .kernels = {k}, .seed = 9};
}

struct Mode {
  unsigned hotpath;  ///< 0 = plain loop, 1 = event lanes, 2 = event wheel
  bool fast_forward;
  unsigned tick_jobs;
};

GpuConfig small_config(const Mode& m) {
  GpuConfig cfg;
  cfg.num_sms = 4;
  cfg.num_l2_banks = 2;
  cfg.hotpath = m.hotpath;
  cfg.fast_forward = m.fast_forward;
  cfg.tick_jobs = m.tick_jobs;
  return cfg;
}

/// The full mode matrix; the first entry is the plain reference loop.
const Mode kModes[] = {
    {0, false, 1}, {0, true, 1}, {1, false, 1}, {1, true, 1}, {1, false, 4},
    {1, true, 4},  {2, false, 1}, {2, true, 1}, {2, false, 4}, {2, true, 4},
};

void expect_identical(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.instructions, b.instructions);
  EXPECT_EQ(a.ipc, b.ipc);
  EXPECT_EQ(a.runtime_s, b.runtime_s);

  EXPECT_EQ(a.l2.read_hits, b.l2.read_hits);
  EXPECT_EQ(a.l2.read_misses, b.l2.read_misses);
  EXPECT_EQ(a.l2.write_hits, b.l2.write_hits);
  EXPECT_EQ(a.l2.write_misses, b.l2.write_misses);
  EXPECT_EQ(a.l2.dram_reads, b.l2.dram_reads);
  EXPECT_EQ(a.l2.dram_writebacks, b.l2.dram_writebacks);
  EXPECT_EQ(a.l2_leakage_w, b.l2_leakage_w);

  EXPECT_EQ(a.dram_reads, b.dram_reads);
  EXPECT_EQ(a.dram_writes, b.dram_writes);
  EXPECT_EQ(a.l1d_hits, b.l1d_hits);
  EXPECT_EQ(a.l1d_misses, b.l1d_misses);

  EXPECT_EQ(a.sm.issued_instructions, b.sm.issued_instructions);
  EXPECT_EQ(a.sm.issued_loads, b.sm.issued_loads);
  EXPECT_EQ(a.sm.issued_stores, b.sm.issued_stores);
  EXPECT_EQ(a.sm.load_transactions, b.sm.load_transactions);
  EXPECT_EQ(a.sm.store_transactions, b.sm.store_transactions);
  EXPECT_EQ(a.sm.idle_cycles, b.sm.idle_cycles);
  EXPECT_EQ(a.sm.stall_cycles, b.sm.stall_cycles);
  EXPECT_EQ(a.sm.mshr_merges, b.sm.mshr_merges);

  EXPECT_EQ(a.l2_counters.all(), b.l2_counters.all());
  EXPECT_EQ(a.l2_energy.total_pj(), b.l2_energy.total_pj());
  const auto cat_a = a.l2_energy.categories();
  const auto cat_b = b.l2_energy.categories();
  ASSERT_EQ(cat_a.size(), cat_b.size());
  for (auto ia = cat_a.begin(), ib = cat_b.begin(); ia != cat_a.end(); ++ia, ++ib) {
    EXPECT_EQ(ia->first, ib->first);
    EXPECT_EQ(ia->second, ib->second) << "category " << ia->first;
  }
}

TEST(HotpathEquivalence, UniformSramBankAllModes) {
  for (const bool sparse : {false, true}) {
    const workload::Workload w = sparse ? sparse_workload() : tiny_workload();
    sttl2::UniformBankConfig bank;
    bank.capacity_bytes = 64 * 1024;
    sttl2::UniformBankFactory f_ref(bank, small_config(kModes[0]).clock());
    Gpu ref_gpu(small_config(kModes[0]), f_ref);
    const RunResult ref = ref_gpu.run(w);
    for (std::size_t m = 1; m < std::size(kModes); ++m) {
      sttl2::UniformBankFactory f(bank, small_config(kModes[m]).clock());
      Gpu gpu(small_config(kModes[m]), f);
      SCOPED_TRACE((sparse ? "sparse" : "tiny") + std::string(" mode=") +
                   std::to_string(m));
      expect_identical(ref, gpu.run(w));
    }
  }
}

TEST(HotpathEquivalence, TwoPartBankWithAllEventSources) {
  // Refresh queue, HR expiry queue, adaptive-threshold timer and wear
  // rotation all active at once — every per-component lane has to stay a
  // conservative lower bound for each of them.
  sttl2::TwoPartBankConfig bank;
  bank.hr_bytes = 32 * 1024;
  bank.hr_assoc = 4;
  bank.lr_bytes = 8 * 1024;
  bank.adaptive_threshold = true;
  bank.adapt_interval = 2048;
  bank.lr_wear_leveling = true;
  bank.wear_level_period = 2000;
  for (const bool sparse : {false, true}) {
    const workload::Workload w = sparse ? sparse_workload() : tiny_workload();
    sttl2::TwoPartBankFactory f_ref(bank, small_config(kModes[0]).clock());
    Gpu ref_gpu(small_config(kModes[0]), f_ref);
    const RunResult ref = ref_gpu.run(w);
    for (std::size_t m = 1; m < std::size(kModes); ++m) {
      sttl2::TwoPartBankFactory f(bank, small_config(kModes[m]).clock());
      Gpu gpu(small_config(kModes[m]), f);
      SCOPED_TRACE((sparse ? "sparse" : "tiny") + std::string(" mode=") +
                   std::to_string(m));
      expect_identical(ref, gpu.run(w));
    }
  }
}

TEST(HotpathEquivalence, FaultInjectionRunsAreIdentical) {
  // Fault injection adds seeded per-bank error events; the hot path must
  // replay them identically (bank partitions own their fault RNGs).
  const sim::ArchSpec spec = sim::make_arch(sim::Architecture::kC1);
  const workload::Workload w = workload::make_benchmark("bfs", 0.05);
  sim::RunOptions ref_opts;
  ref_opts.hotpath = 0;
  ref_opts.fast_forward = false;
  ref_opts.faults.enabled = true;
  ref_opts.faults.seed = 42;
  ref_opts.faults.accel = 1e3;
  RunResult ref_run;
  const sim::Metrics ref = sim::run_one_detailed(spec, w, ref_run, ref_opts);
  for (const Mode& m : kModes) {
    sim::RunOptions opts = ref_opts;
    opts.hotpath = m.hotpath;
    opts.fast_forward = m.fast_forward;
    opts.tick_jobs = m.tick_jobs;
    RunResult run;
    const sim::Metrics got = sim::run_one_detailed(spec, w, run, opts);
    SCOPED_TRACE("hotpath=" + std::to_string(m.hotpath) +
                 " ff=" + (m.fast_forward ? std::string("1") : std::string("0")) +
                 " tick_jobs=" + std::to_string(m.tick_jobs));
    expect_identical(ref_run, run);
    EXPECT_EQ(ref.ipc, got.ipc);
    EXPECT_EQ(ref.cycles, got.cycles);
    EXPECT_EQ(ref.dynamic_w, got.dynamic_w);
    EXPECT_EQ(ref.l2_miss_rate, got.l2_miss_rate);
  }
}

TEST(HotpathEquivalence, TelemetryRunsMatchPlainAggregates) {
  // A telemetry sink is purely observational; with one attached the hot path
  // must produce the same aggregates (it falls back to sequential bank
  // ticks, since the sink is shared state).
  const sim::ArchSpec spec = sim::make_arch(sim::Architecture::kC1);
  const workload::Workload w = workload::make_benchmark("bfs", 0.05);
  sim::RunOptions plain;
  plain.hotpath = 0;
  plain.fast_forward = false;
  RunResult ref_run;
  (void)sim::run_one_detailed(spec, w, ref_run, plain);
  for (const unsigned hotpath : {1u, 2u}) {
    for (const unsigned tick_jobs : {1u, 4u}) {
      Telemetry tel(10000);
      sim::RunOptions opts;
      opts.hotpath = hotpath;
      opts.tick_jobs = tick_jobs;
      opts.telemetry = &tel;
      RunResult run;
      (void)sim::run_one_detailed(spec, w, run, opts);
      SCOPED_TRACE("hotpath=" + std::to_string(hotpath) +
                   " tick_jobs=" + std::to_string(tick_jobs));
      expect_identical(ref_run, run);
      EXPECT_GT(tel.frame_count(), 0u);
    }
  }
}

TEST(TickPool, RunsEveryItemExactlyOncePerBatch) {
  TickPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  for (int batch = 0; batch < 3; ++batch) {
    for (auto& h : hits) h.store(0);
    pool.run(static_cast<unsigned>(hits.size()),
             [&](unsigned i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "item " << i << " batch " << batch;
    }
  }
}

TEST(TickPool, SingleWorkerRunsInline) {
  TickPool pool(1);
  std::vector<int> hits(10, 0);
  pool.run(10, [&](unsigned i) { hits[i] += 1; });
  for (const int h : hits) EXPECT_EQ(h, 1);
}

TEST(TickPool, EmptyBatchIsANoOp) {
  TickPool pool(2);
  pool.run(0, [](unsigned) { FAIL() << "no item should run"; });
}

TEST(TickPool, ExceptionPropagatesAndPoolStaysUsable) {
  TickPool pool(3);
  EXPECT_THROW(pool.run(8,
                        [&](unsigned i) {
                          if (i == 5) throw std::runtime_error("boom");
                        }),
               std::runtime_error);
  std::vector<std::atomic<int>> hits(8);
  for (auto& h : hits) h.store(0);
  pool.run(8, [&](unsigned i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

}  // namespace
}  // namespace sttgpu::gpu
