#include "workload/stream.hpp"

#include <gtest/gtest.h>

#include "workload/benchmarks.hpp"

namespace sttgpu::workload {
namespace {

KernelSpec test_kernel() {
  KernelSpec k;
  k.name = "t";
  k.instructions_per_warp = 1000;
  k.mem_fraction = 0.4;
  k.store_fraction = 0.25;
  k.stores_at_end_fraction = 0.5;
  k.epilogue_fraction = 0.1;
  k.pattern.footprint_bytes = 1 << 20;
  k.pattern.wws_lines = 32;
  return k;
}

TEST(WarpStream, ExactInstructionCount) {
  const KernelSpec k = test_kernel();
  WarpStream s(k, 0, 128, 42);
  std::uint64_t n = 0;
  while (!s.done()) {
    s.next();
    ++n;
  }
  EXPECT_EQ(n, k.instructions_per_warp);
  EXPECT_EQ(s.issued(), n);
  EXPECT_EQ(s.remaining(), 0u);
}

TEST(WarpStream, DeterministicPerWarp) {
  const KernelSpec k = test_kernel();
  WarpStream a(k, 7, 128, 42), b(k, 7, 128, 42);
  while (!a.done()) {
    const WarpInstr ia = a.next();
    const WarpInstr ib = b.next();
    EXPECT_EQ(ia.kind, ib.kind);
    EXPECT_EQ(ia.space, ib.space);
    EXPECT_EQ(ia.transactions, ib.transactions);
  }
}

TEST(WarpStream, DifferentWarpsDiffer) {
  const KernelSpec k = test_kernel();
  WarpStream a(k, 0, 128, 42), b(k, 1, 128, 42);
  int same = 0, total = 0;
  while (!a.done() && !b.done()) {
    const WarpInstr ia = a.next();
    const WarpInstr ib = b.next();
    if (ia.kind == WarpInstr::Kind::kLoad && ib.kind == WarpInstr::Kind::kLoad &&
        !ia.transactions.empty() && !ib.transactions.empty()) {
      ++total;
      same += ia.transactions[0] == ib.transactions[0];
    }
  }
  EXPECT_GT(total, 10);
  EXPECT_LT(same, total / 2);
}

TEST(WarpStream, MemFractionApproximatelyHonored) {
  const KernelSpec k = test_kernel();
  WarpStream s(k, 3, 128, 42);
  int mem = 0;
  while (!s.done()) mem += s.next().kind != WarpInstr::Kind::kCompute;
  EXPECT_NEAR(static_cast<double>(mem) / k.instructions_per_warp, k.mem_fraction, 0.08);
}

TEST(WarpStream, StoresConcentrateInEpilogue) {
  KernelSpec k = test_kernel();
  k.instructions_per_warp = 20000;  // enough samples
  WarpStream s(k, 3, 128, 42);
  std::uint64_t stores_main = 0, stores_epi = 0;
  const std::uint64_t epi_start =
      static_cast<std::uint64_t>(k.instructions_per_warp * (1.0 - k.epilogue_fraction));
  for (std::uint64_t i = 0; i < k.instructions_per_warp; ++i) {
    const WarpInstr instr = s.next();
    if (instr.kind == WarpInstr::Kind::kStore) {
      (i >= epi_start ? stores_epi : stores_main) += 1;
    }
  }
  const double at_end =
      static_cast<double>(stores_epi) / static_cast<double>(stores_epi + stores_main);
  EXPECT_NEAR(at_end, k.stores_at_end_fraction, 0.1);
}

TEST(WarpStream, TransactionsWithinWarpBounds) {
  KernelSpec k = test_kernel();
  k.pattern.transactions_per_access = 6.0;
  WarpStream s(k, 1, 128, 42);
  while (!s.done()) {
    const WarpInstr instr = s.next();
    if (instr.kind != WarpInstr::Kind::kCompute) {
      EXPECT_GE(instr.transactions.size(), 1u);
      EXPECT_LE(instr.transactions.size(), 32u);
      for (const Addr t : instr.transactions) EXPECT_EQ(t % 128, 0u);
    } else {
      EXPECT_TRUE(instr.transactions.empty());
      EXPECT_EQ(instr.latency, k.compute_latency);
    }
  }
}

TEST(WarpStream, PerfectCoalescingYieldsOneTransaction) {
  KernelSpec k = test_kernel();
  k.pattern.transactions_per_access = 1.0;
  WarpStream s(k, 1, 128, 42);
  while (!s.done()) {
    const WarpInstr instr = s.next();
    if (instr.kind != WarpInstr::Kind::kCompute) {
      EXPECT_EQ(instr.transactions.size(), 1u);
    }
  }
}

TEST(WarpStream, SharedMemoryOpsCarryConflictLatency) {
  KernelSpec k = test_kernel();
  k.const_fraction = 0.0;
  k.shared_fraction = 1.0;  // every memory op hits the scratchpad
  k.shared_latency = 2;
  k.shared_conflict_avg = 4.0;
  WarpStream s(k, 1, 128, 42);
  std::uint64_t shared_ops = 0;
  double latency_sum = 0;
  while (!s.done()) {
    const WarpInstr instr = s.next();
    if (instr.kind == WarpInstr::Kind::kCompute) continue;
    EXPECT_EQ(instr.space, MemSpace::kShared);
    EXPECT_TRUE(instr.transactions.empty());
    EXPECT_GE(instr.latency, k.shared_latency);
    ++shared_ops;
    latency_sum += instr.latency;
  }
  EXPECT_GT(shared_ops, 100u);
  // Mean latency reflects the conflict degree (2 cycles x ~4-way).
  EXPECT_GT(latency_sum / static_cast<double>(shared_ops), 4.0);
}

TEST(WarpStream, ConflictFreeSharedOpsAreFast) {
  KernelSpec k = test_kernel();
  k.const_fraction = 0.0;
  k.shared_fraction = 1.0;
  k.shared_conflict_avg = 1.0;
  WarpStream s(k, 1, 128, 42);
  while (!s.done()) {
    const WarpInstr instr = s.next();
    if (instr.space == MemSpace::kShared) {
      EXPECT_EQ(instr.latency, k.shared_latency);
    }
  }
}

TEST(WarpStream, RejectsInvalidKernels) {
  KernelSpec k = test_kernel();
  k.threads_per_block = 100;  // not a warp multiple
  EXPECT_THROW(WarpStream(k, 0, 1, 42), SimError);
  KernelSpec k2 = test_kernel();
  k2.instructions_per_warp = 0;
  EXPECT_THROW(WarpStream(k2, 0, 1, 42), SimError);
}

TEST(WarpStream, NextPastEndAsserts) {
  KernelSpec k = test_kernel();
  k.instructions_per_warp = 1;
  WarpStream s(k, 0, 1, 42);
  s.next();
  EXPECT_THROW(s.next(), std::logic_error);
}

}  // namespace
}  // namespace sttgpu::workload
