#include "store/csv_format.hpp"

#include <gtest/gtest.h>

#include <sys/stat.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/atomic_file.hpp"
#include "common/error.hpp"

namespace sttgpu::store {
namespace {

constexpr std::uint64_t kFp = 0xd180d94558f98587ull;

ResultRow sample_row() {
  ResultRow r;
  r.arch = "C1";
  r.benchmark = "bfs";
  r.ipc = 1.0 / 3.0;
  r.cycles = 123456;
  r.dynamic_w = 0.5;
  r.leakage_w = 0.1;
  r.total_w = 0.6;
  r.write_share = 0.4;
  r.miss_rate = 0.2;
  return r;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

struct LogCapture {
  std::vector<std::string> lines;
  LogFn fn() {
    return [this](const std::string& l) { lines.push_back(l); };
  }
};

TEST(StoreCsv, WriteReadRoundTripIsBitExact) {
  const std::string path = "test_store_csv_roundtrip.csv";
  std::remove(path.c_str());
  write_csv_v2(path, 0.5, kFp, {sample_row()});
  const std::string first = slurp(path);
  LogCapture log;
  const std::vector<ResultRow> rows = read_csv_v2(path, 0.5, kFp, log.fn());
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].ipc, sample_row().ipc);
  EXPECT_EQ(rows[0].cycles, sample_row().cycles);
  EXPECT_TRUE(log.lines.empty());
  // Re-exporting the loaded rows regenerates the byte-identical file — the
  // property the checked-in fig8_cache.csv depends on.
  write_csv_v2(path, 0.5, kFp, rows);
  EXPECT_EQ(slurp(path), first);
  std::remove(path.c_str());
}

TEST(StoreCsv, EmptyOrWhitespaceFileIsAColdCacheWithoutWarnings) {
  const std::string path = "test_store_csv_empty.csv";
  for (const std::string content : {std::string(), std::string("\n \t\n  \n")}) {
    std::ofstream(path, std::ios::trunc) << content;
    LogCapture log;
    EXPECT_TRUE(read_csv_v2(path, 0.5, kFp, log.fn()).empty());
    EXPECT_TRUE(log.lines.empty()) << log.lines.front();
  }
  std::remove(path.c_str());
}

TEST(StoreCsv, MissingFileIsAColdCacheWithoutWarnings) {
  LogCapture log;
  EXPECT_TRUE(read_csv_v2("no_such_csv_xyz.csv", 0.5, kFp, log.fn()).empty());
  EXPECT_TRUE(log.lines.empty());
}

TEST(StoreCsv, ScaleOrFingerprintMismatchDiscardsWithOneWarning) {
  const std::string path = "test_store_csv_mismatch.csv";
  std::remove(path.c_str());
  write_csv_v2(path, 0.5, kFp, {sample_row()});
  {
    LogCapture log;
    EXPECT_TRUE(read_csv_v2(path, 1.0, kFp, log.fn()).empty());
    EXPECT_EQ(log.lines.size(), 1u);
  }
  {
    LogCapture log;
    EXPECT_TRUE(read_csv_v2(path, 0.5, kFp + 1, log.fn()).empty());
    EXPECT_EQ(log.lines.size(), 1u);
  }
  std::remove(path.c_str());
}

TEST(StoreCsv, MalformedRowsAreSkippedAndSummarized) {
  const std::string path = "test_store_csv_badrows.csv";
  std::remove(path.c_str());
  write_csv_v2(path, 0.5, kFp, {sample_row()});
  {
    std::ofstream out(path, std::ios::app);
    out << "C2,bfs,2.5,99\n"                  // short row
        << "C3,bfs,nan?,1,2,3,4,5,6\n";       // non-numeric cell
  }
  LogCapture log;
  const std::vector<ResultRow> rows = read_csv_v2(path, 0.5, kFp, log.fn());
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].arch, "C1");
  EXPECT_FALSE(log.lines.empty());
  std::remove(path.c_str());
}

// --- atomic_write_file failure semantics ------------------------------------

TEST(AtomicFile, UnwritableDirectoryThrowsWithErrnoContext) {
  try {
    atomic_write_file("no_such_dir_xyz/file.txt", [](std::ostream& os) { os << "x"; });
    FAIL() << "expected SimError";
  } catch (const SimError& e) {
    const std::string what = e.what();
    // The message must carry the OS-level cause, not just "cannot write".
    EXPECT_NE(what.find('('), std::string::npos) << what;
    EXPECT_NE(what.find(')'), std::string::npos) << what;
    EXPECT_NE(what.find("no_such_dir_xyz"), std::string::npos) << what;
  }
}

TEST(AtomicFile, FailedReplaceUnlinksTheTempFile) {
  // Renaming a file over a non-empty directory fails after the temp file
  // was fully written — exactly the path that used to leak "<path>.tmp".
  const std::string dir = "test_atomic_target_dir";
  ::mkdir(dir.c_str(), 0755);
  std::ofstream(dir + "/occupant") << "x";
  EXPECT_THROW(atomic_write_file(dir, [](std::ostream& os) { os << "payload"; }),
               SimError);
  EXPECT_FALSE(std::ifstream(dir + ".tmp").good()) << "temp file leaked";
  std::remove((dir + "/occupant").c_str());
  ::rmdir(dir.c_str());
}

TEST(AtomicFile, SuccessfulWriteLeavesNoTempBehind) {
  const std::string path = "test_atomic_ok.txt";
  atomic_write_file(path, [](std::ostream& os) { os << "hello"; });
  EXPECT_EQ(slurp(path), "hello");
  EXPECT_FALSE(std::ifstream(path + ".tmp").good());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace sttgpu::store
