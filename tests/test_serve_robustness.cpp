// Robustness tests of the hardened sweep service: fair-queue scheduling,
// frame-parser abuse over a raw socket, read deadlines for silent clients,
// admission-control shedding, the health verb, crash containment through the
// server, and journal replay on restart.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/json.hpp"
#include "serve/client.hpp"
#include "serve/fair_queue.hpp"
#include "serve/journal.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"

namespace sttgpu::serve {
namespace {

TEST(FairQueue, RoundRobinsAcrossClients) {
  FairQueue<std::string> q;
  q.push("a", "a1");
  q.push("a", "a2");
  q.push("a", "a3");
  q.push("b", "b1");
  q.push("c", "c1");
  q.push("c", "c2");
  EXPECT_EQ(q.size(), 6u);
  EXPECT_EQ(q.clients(), 3u);

  std::vector<std::string> order;
  while (auto item = q.pop()) order.push_back(*item);
  const std::vector<std::string> expected = {"a1", "b1", "c1", "a2", "c2", "a3"};
  EXPECT_EQ(order, expected);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.clients(), 0u);
}

TEST(FairQueue, LaneDrainsAndReappears) {
  FairQueue<int> q;
  q.push("x", 1);
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_FALSE(q.pop().has_value());
  q.push("x", 2);  // a drained lane was removed; re-pushing recreates it
  EXPECT_EQ(q.pop().value(), 2);
}

struct TempDir {
  std::string path;
  TempDir() {
    std::string tmpl = (std::filesystem::temp_directory_path() / "sttgpu_robust_XXXXXX");
    path = ::mkdtemp(tmpl.data());
  }
  ~TempDir() { std::filesystem::remove_all(path); }
};

struct FaultEnv {
  explicit FaultEnv(const char* spec) { ::setenv("STTGPU_SANDBOX_FAULT", spec, 1); }
  ~FaultEnv() { ::unsetenv("STTGPU_SANDBOX_FAULT"); }
};

/// Raw unix-socket connection, for speaking *broken* protocol on purpose.
struct RawConn {
  int fd = -1;
  explicit RawConn(const std::string& path) {
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    EXPECT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)), 0);
  }
  ~RawConn() {
    if (fd >= 0) ::close(fd);
  }
  void send(const void* buf, std::size_t n) { write_all(fd, buf, n); }
};

class RobustServeTest : public ::testing::Test {
 protected:
  void StartServer(ServerOptions so) {
    so.socket_path = dir_.path + "/s.sock";
    so.cache_path = dir_.path + "/c.csv";
    server_ = std::make_unique<SweepServer>(std::move(so));
    server_->start();
  }

  void TearDown() override {
    if (server_) server_->stop();
  }

  Client connect() { return Client::connect(server_->socket_path()); }

  static std::string submit_request(const std::string& archs,
                                    const std::string& benchmarks,
                                    const char* scale = "0.05") {
    std::ostringstream os;
    JsonWriter w(os);
    w.begin_object();
    w.key("protocol_version").value(kProtocolVersion);
    w.key("verb").value("submit");
    w.key("options").begin_object();
    w.key("archs").value(archs);
    w.key("benchmarks").value(benchmarks);
    w.key("scale").value(scale);
    w.end_object();
    w.end_object();
    return os.str();
  }

  static std::string verb_request(const std::string& verb, std::int64_t id = 0) {
    std::ostringstream os;
    JsonWriter w(os);
    w.begin_object();
    w.key("protocol_version").value(kProtocolVersion);
    w.key("verb").value(verb);
    if (id > 0) w.key("id").value(id);
    w.end_object();
    return os.str();
  }

  /// The server must still answer ordinary requests — the liveness probe
  /// after every abuse case.
  void ExpectServerAlive() {
    const JsonValue resp = connect().request(verb_request("health"));
    EXPECT_TRUE(resp.at("ok").as_bool());
  }

  TempDir dir_;
  std::unique_ptr<SweepServer> server_;
};

TEST_F(RobustServeTest, GarbageBytesGetAProtocolErrorNotAHang) {
  StartServer(ServerOptions{});
  RawConn conn(server_->socket_path());
  const char garbage[] = "GET / HTTP/1.1\r\n\r\n";
  conn.send(garbage, sizeof garbage - 1);
  // The server answers with a well-formed "protocol" error frame.
  const std::optional<std::string> reply = read_frame(conn.fd);
  ASSERT_TRUE(reply.has_value());
  const JsonValue resp = parse_json(*reply);
  EXPECT_FALSE(resp.at("ok").as_bool());
  EXPECT_EQ(resp.at("kind").as_string(), "protocol");
  ExpectServerAlive();
}

TEST_F(RobustServeTest, OversizedLengthIsRefusedWithoutAllocating) {
  StartServer(ServerOptions{});
  RawConn conn(server_->socket_path());
  std::string header(kFrameMagic, sizeof kFrameMagic);
  const std::uint32_t huge = kMaxFramePayload + 1;
  header.append(reinterpret_cast<const char*>(&huge), sizeof huge);
  conn.send(header.data(), header.size());
  const std::optional<std::string> reply = read_frame(conn.fd);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(parse_json(*reply).at("kind").as_string(), "protocol");
  ExpectServerAlive();
}

TEST_F(RobustServeTest, ZeroLengthFrameIsAProtocolError) {
  StartServer(ServerOptions{});
  RawConn conn(server_->socket_path());
  std::string header(kFrameMagic, sizeof kFrameMagic);
  const std::uint32_t zero = 0;
  header.append(reinterpret_cast<const char*>(&zero), sizeof zero);
  conn.send(header.data(), header.size());
  const std::optional<std::string> reply = read_frame(conn.fd);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(parse_json(*reply).at("kind").as_string(), "protocol");
  ExpectServerAlive();
}

TEST_F(RobustServeTest, TruncatedMagicThenHangupDoesNotWedgeTheServer) {
  StartServer(ServerOptions{});
  {
    RawConn conn(server_->socket_path());
    conn.send("SW", 2);  // half a magic, then close
  }
  ExpectServerAlive();
}

TEST_F(RobustServeTest, SilentClientIsDroppedAtTheReadDeadline) {
  ServerOptions so;
  so.read_deadline_s = 0.2;
  StartServer(std::move(so));
  RawConn conn(server_->socket_path());
  // Say nothing. The server must hang up on us, not wait forever.
  char byte = 0;
  const bool readable = wait_readable(conn.fd, /*timeout_ms=*/5000);
  ASSERT_TRUE(readable);
  EXPECT_EQ(::read(conn.fd, &byte, 1), 0);  // clean EOF: we were dropped
  // Poll the counter: the handler increments it after closing our fd.
  for (int i = 0; i < 100 && server_->stats().read_deadline_drops == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(server_->stats().read_deadline_drops, 1u);
  ExpectServerAlive();
}

TEST_F(RobustServeTest, OverflowingSubmissionIsShedWithRetryHint) {
  const FaultEnv env("C1/bfs=hang");  // pin the single worker on a wedge
  ServerOptions so;
  so.jobs = 1;
  so.max_queue = 2;
  StartServer(std::move(so));

  // Occupies the worker (C1/bfs hangs in its sandbox child) and one queue
  // slot (C2/bfs waits behind it).
  const JsonValue busy = connect().request(submit_request("C1,C2", "bfs"));
  const std::int64_t busy_id = busy.at("id").as_int();
  // Wait for the worker to pick up C1/bfs, leaving exactly C2/bfs queued —
  // the admission arithmetic below assumes a settled queue.
  for (int i = 0; i < 500 && server_->stats().queued > 1; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_EQ(server_->stats().queued, 1u);

  // 3 more fresh tasks cannot fit a queue capped at 2 with 1 already waiting.
  try {
    connect().request(submit_request("C1,C2,C3", "nw"));
    FAIL() << "expected Overloaded";
  } catch (const Overloaded& e) {
    EXPECT_GT(e.retry_after_ms(), 0);
    EXPECT_NE(std::string(e.what()).find("max_queue"), std::string::npos);
  }
  EXPECT_EQ(server_->stats().shed, 1u);

  // A submission that fits (1 new task) is still admitted: shedding is
  // per-submission, not a global lockout.
  const JsonValue small = connect().request(submit_request("C3", "bfs"));
  EXPECT_EQ(small.at("scheduled").as_int(), 1);

  // Unwedge: cancelling the hung submission SIGKILLs the sandbox child.
  connect().request(verb_request("cancel", busy_id));
  const JsonValue final_event = connect().stream(
      verb_request("watch", busy_id), [](const std::string&, const JsonValue&) {});
  EXPECT_EQ(final_event.at("state").as_string(), "cancelled");
}

TEST_F(RobustServeTest, HealthVerbReportsTheRobustnessCounters) {
  StartServer(ServerOptions{});
  const JsonValue resp = connect().request(verb_request("health"));
  ASSERT_TRUE(resp.at("ok").as_bool());
  const JsonValue& h = resp.at("health");
  EXPECT_GE(h.at("uptime_s").as_double(), 0.0);
  EXPECT_TRUE(h.at("sandbox").as_bool());
  EXPECT_EQ(h.at("queued").as_int(), 0);
  EXPECT_EQ(h.at("inflight").as_int(), 0);
  EXPECT_EQ(h.at("shed").as_int(), 0);
  EXPECT_EQ(h.at("child_kills").as_int(), 0);
  EXPECT_EQ(h.at("child_crashes").as_int(), 0);
  EXPECT_EQ(h.at("journal_pending").as_int(), 0);
  EXPECT_EQ(h.at("replayed").as_int(), 0);
  EXPECT_GE(h.at("connections").as_int(), 1);  // ours
}

TEST_F(RobustServeTest, CrashingChildIsQuarantinedOthersUnaffected) {
  const FaultEnv env("C1/bfs=abort");
  StartServer(ServerOptions{});
  const JsonValue resp = connect().request(submit_request("C1,C2", "bfs"));
  const JsonValue final_event =
      connect().stream(verb_request("watch", resp.at("id").as_int()),
                       [](const std::string&, const JsonValue&) {});
  EXPECT_EQ(final_event.at("state").as_string(), "failed");
  EXPECT_EQ(final_event.at("failed").as_int(), 1);    // C1/bfs crashed
  EXPECT_EQ(final_event.at("simulated").as_int(), 1);  // C2/bfs finished
  const ServerStats s = server_->stats();
  EXPECT_EQ(s.child_crashes, 1u);
  EXPECT_EQ(s.tasks_failed, 1u);
  EXPECT_EQ(s.tasks_simulated, 1u);
  ExpectServerAlive();
}

TEST_F(RobustServeTest, JournaledSubmissionIsReplayedOnRestart) {
  // A dead server's journal: submission 7, acknowledged but never run.
  const std::string journal_path = Journal::derive_path(dir_.path + "/c.csv");
  {
    Journal j(journal_path);
    j.record_submission(7, R"({"archs":"C1","benchmarks":"bfs","scale":"0.05"})");
  }

  StartServer(ServerOptions{});  // replays before accepting connections
  // Drain: the replayed submission finishes and retires its record.
  for (int i = 0; i < 600 && server_->stats().journal_pending > 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  const ServerStats s = server_->stats();
  EXPECT_EQ(s.replayed, 1u);
  EXPECT_EQ(s.journal_pending, 0u);
  EXPECT_EQ(s.tasks_simulated, 1u);

  // The replayed row is served; new ids never collide with journaled ones.
  const JsonValue row = connect().request(verb_request("result", 7));
  EXPECT_EQ(row.at("rows").size(), 1u);
  const JsonValue fresh = connect().request(submit_request("C1", "bfs"));
  EXPECT_GE(fresh.at("id").as_int(), 8);
  EXPECT_EQ(fresh.at("hits").as_int(), 1);  // pure store hit from the replay
}

TEST_F(RobustServeTest, CompletedSubmissionRetiresItsJournalRecord) {
  StartServer(ServerOptions{});
  const JsonValue resp = connect().request(submit_request("C1", "bfs"));
  connect().stream(verb_request("watch", resp.at("id").as_int()),
                   [](const std::string&, const JsonValue&) {});
  // sub + done both recorded; nothing left pending.
  const ServerStats s = server_->stats();
  EXPECT_EQ(s.journal_pending, 0u);
  EXPECT_GE(s.journal_records, 2u);
}

}  // namespace
}  // namespace sttgpu::serve
