#include "sttl2/retention.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace sttgpu::sttl2 {
namespace {

const Clock kClock(700e6);

TEST(RetentionClock, RejectsInvalidParameters) {
  EXPECT_THROW(RetentionClock(0.0, 4, kClock), SimError);
  EXPECT_THROW(RetentionClock(-1.0, 4, kClock), SimError);
  EXPECT_THROW(RetentionClock(26.5e-6, 0, kClock), SimError);
  // Counter so wide its tick would be < 1 cycle.
  EXPECT_THROW(RetentionClock(26.5e-6, 16, kClock), SimError);
}

TEST(RetentionClock, CyclesMatchPhysics) {
  const RetentionClock rc(26.5e-6, 4, kClock);
  // 26.5us at 700MHz = 18550 cycles.
  EXPECT_EQ(rc.retention_cycles(), 18550u);
  EXPECT_EQ(rc.tick_cycles(), 18550u / 16);
}

TEST(RetentionClock, DeadlineAndRefreshDue) {
  const RetentionClock rc(26.5e-6, 4, kClock);
  const Cycle written = 1000;
  EXPECT_EQ(rc.deadline(written), written + rc.retention_cycles());
  // Refresh is postponed to the last counter period before expiry.
  EXPECT_EQ(rc.refresh_due(written), rc.deadline(written) - rc.tick_cycles());
  EXPECT_LT(rc.refresh_due(written), rc.deadline(written));
  EXPECT_GT(rc.refresh_due(written), written);
}

TEST(RetentionClock, CounterValueTracksAge) {
  const RetentionClock rc(26.5e-6, 4, kClock);
  const Cycle written = 500;
  EXPECT_EQ(rc.counter_value(written, written), 0u);
  EXPECT_EQ(rc.counter_value(written, written - 10), 0u);  // clock skew safe
  EXPECT_EQ(rc.counter_value(written, written + rc.tick_cycles()), 1u);
  EXPECT_EQ(rc.counter_value(written, written + 5 * rc.tick_cycles()), 5u);
  // Saturates at 2^bits - 1.
  EXPECT_EQ(rc.counter_value(written, written + 100 * rc.retention_cycles()), 15u);
}

// Property over widths: refresh_due is always inside (written, deadline),
// and a wider counter postpones refresh further (smaller tick).
class CounterWidths : public ::testing::TestWithParam<unsigned> {};

TEST_P(CounterWidths, RefreshWindowShrinksWithWidth) {
  const unsigned bits = GetParam();
  const RetentionClock rc(26.5e-6, bits, kClock);
  const Cycle w = 42;
  EXPECT_GT(rc.refresh_due(w), w);
  EXPECT_LT(rc.refresh_due(w), rc.deadline(w));
  if (bits > 2) {
    const RetentionClock narrower(26.5e-6, bits - 1, kClock);
    EXPECT_GT(rc.refresh_due(w), narrower.refresh_due(w));
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, CounterWidths, ::testing::Values(2u, 3u, 4u, 6u, 8u));

TEST(RetentionClock, HrParametersFromThePaper) {
  // HR: 40ms with a 2-bit counter.
  const RetentionClock rc(40e-3, 2, kClock);
  EXPECT_EQ(rc.retention_cycles(), 28'000'000u);
  EXPECT_EQ(rc.tick_cycles(), 7'000'000u);
}

}  // namespace
}  // namespace sttgpu::sttl2
