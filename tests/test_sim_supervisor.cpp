#include "sim/supervisor.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common/cancel.hpp"
#include "common/error.hpp"
#include "sim/runner.hpp"
#include "store/result_store.hpp"

namespace sttgpu::sim {
namespace {

// Removes a test cache CSV together with its store sidecars; a stale store
// from a previous run would satisfy the whole matrix and defeat the
// interrupt-and-resume scenario below.
void remove_cache_files(const std::string& csv_path) {
  std::remove(csv_path.c_str());
  const std::string store = store::ResultStore::derive_path(csv_path);
  std::remove(store.c_str());
  std::remove((store + ".lock").c_str());
  std::remove(store::ResultStore::quarantine_path_for(store).c_str());
}

// Every wall-clock budget in this file is chosen so the slow side (a
// livelocked loop) trips it within a few monitor polls while the fast side
// (instant jobs) finishes orders of magnitude earlier — no flaky margins.
constexpr double kShortBudget = 0.15;   // seconds: watchdog/timeout budgets
constexpr double kTinyBackoff = 0.001;  // seconds: retry backoff base

Job supervised_job(std::string label, std::function<void(const JobControl&)> fn) {
  Job j;
  j.label = std::move(label);
  j.supervised = std::move(fn);
  return j;
}

/// Spins until the job's token is requested, checkpointing every iteration
/// but never advancing the heartbeat: the watchdog's livelock case.
void livelock(const JobControl& ctl) {
  for (;;) {
    ctl.checkpoint();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

TEST(CancelToken, FirstRequestWins) {
  CancelToken t;
  EXPECT_FALSE(t.requested());
  EXPECT_EQ(t.reason(), CancelReason::kNone);
  t.request(CancelReason::kWatchdog);
  t.request(CancelReason::kUser);  // late, must lose
  EXPECT_TRUE(t.requested());
  EXPECT_EQ(t.reason(), CancelReason::kWatchdog);
}

TEST(CancelToken, CheckpointThrowsWithReason) {
  CancelToken t;
  const JobControl quiet{&t, nullptr};
  quiet.checkpoint();  // not requested: no-op
  t.request(CancelReason::kTimeout);
  try {
    quiet.checkpoint();
    FAIL() << "expected Cancelled";
  } catch (const Cancelled& c) {
    EXPECT_EQ(c.reason(), CancelReason::kTimeout);
    EXPECT_NE(std::string(c.what()).find("timeout"), std::string::npos) << c.what();
  }
}

TEST(CancelToken, NullHandlesAreNoOps) {
  const JobControl none{};
  EXPECT_FALSE(none.cancelled());
  none.beat(42);       // no heartbeat attached
  none.checkpoint();   // no token attached
}

TEST(Supervisor, AllJobsOkReportsOkOutcomes) {
  std::atomic<int> ran{0};
  std::vector<Job> jobs;
  for (int i = 0; i < 8; ++i) {
    jobs.push_back(supervised_job("ok" + std::to_string(i),
                                  [&ran](const JobControl&) { ++ran; }));
  }
  const SupervisedResult r = run_supervised(std::move(jobs), 4);
  EXPECT_EQ(ran.load(), 8);
  EXPECT_TRUE(r.all_ok());
  EXPECT_FALSE(r.interrupted);
  EXPECT_EQ(r.manifest(), "");
  for (const JobOutcome& o : r.outcomes) {
    EXPECT_EQ(o.status, JobStatus::kOk);
    EXPECT_EQ(o.attempts, 1u);
    EXPECT_EQ(o.error, "");
  }
}

TEST(Supervisor, RetrySucceedsAfterTransientFailures) {
  std::atomic<int> calls{0};
  std::vector<Job> jobs;
  jobs.push_back(supervised_job("flaky", [&calls](const JobControl&) {
    if (++calls < 3) throw SimError("transient");
  }));
  SupervisorOptions opts;
  opts.retries = 5;
  opts.retry_backoff_s = kTinyBackoff;
  const SupervisedResult r = run_supervised(std::move(jobs), 1, opts);
  EXPECT_EQ(calls.load(), 3);
  ASSERT_EQ(r.outcomes.size(), 1u);
  EXPECT_EQ(r.outcomes[0].status, JobStatus::kOk);
  EXPECT_EQ(r.outcomes[0].attempts, 3u);
  EXPECT_EQ(r.outcomes[0].error, "");
}

TEST(Supervisor, RetryExhaustionFailsFastAndSkipsRest) {
  std::atomic<int> calls{0};
  bool later_ran = false;
  std::vector<Job> jobs;
  jobs.push_back(supervised_job(
      "doomed", [&calls](const JobControl&) { ++calls; throw SimError("permanent"); }));
  jobs.push_back(supervised_job("later", [&later_ran](const JobControl&) {
    later_ran = true;
  }));
  SupervisorOptions opts;
  opts.retries = 2;
  opts.retry_backoff_s = kTinyBackoff;
  const SupervisedResult r = run_supervised(std::move(jobs), 1, opts);
  EXPECT_EQ(calls.load(), 3);  // 1 attempt + 2 retries
  EXPECT_FALSE(later_ran);
  EXPECT_EQ(r.outcomes[0].status, JobStatus::kFailed);
  EXPECT_EQ(r.outcomes[0].attempts, 3u);
  EXPECT_NE(r.outcomes[0].error.find("permanent"), std::string::npos);
  EXPECT_EQ(r.outcomes[1].status, JobStatus::kSkipped);
  EXPECT_EQ(r.outcomes[1].attempts, 0u);
  EXPECT_THROW(throw_on_failures(r), SimError);
}

TEST(Supervisor, KeepGoingQuarantinesAndBuildsManifest) {
  std::atomic<int> ran{0};
  std::vector<Job> jobs;
  for (int i = 0; i < 6; ++i) {
    const bool fails = i % 2 == 1;
    jobs.push_back(supervised_job("q" + std::to_string(i),
                                  [&ran, fails](const JobControl&) {
                                    ++ran;
                                    if (fails) throw SimError("odd job broke");
                                  }));
  }
  SupervisorOptions opts;
  opts.keep_going = true;
  const SupervisedResult r = run_supervised(std::move(jobs), 2, opts);
  EXPECT_EQ(ran.load(), 6);  // nothing skipped
  EXPECT_EQ(r.count(JobStatus::kOk), 3u);
  EXPECT_EQ(r.count(JobStatus::kFailed), 3u);
  const std::string m = r.manifest();
  EXPECT_NE(m.find("3 of 6 jobs did not complete"), std::string::npos) << m;
  EXPECT_NE(m.find("3 failed"), std::string::npos) << m;
  EXPECT_NE(m.find("[failed] q1"), std::string::npos) << m;
  EXPECT_NE(m.find("odd job broke"), std::string::npos) << m;
}

TEST(Supervisor, PreCancelledTokenRunsNothing) {
  CancelToken cancel;
  cancel.request(CancelReason::kUser);
  std::atomic<int> ran{0};
  std::vector<Job> jobs;
  for (int i = 0; i < 4; ++i) {
    jobs.push_back(supervised_job("j" + std::to_string(i),
                                  [&ran](const JobControl&) { ++ran; }));
  }
  SupervisorOptions opts;
  opts.external = &cancel;
  const SupervisedResult r = run_supervised(std::move(jobs), 2, opts);
  EXPECT_EQ(ran.load(), 0);
  EXPECT_TRUE(r.interrupted);
  for (const JobOutcome& o : r.outcomes) {
    EXPECT_TRUE(o.status == JobStatus::kSkipped || o.status == JobStatus::kCancelled);
  }
}

TEST(Supervisor, ExternalCancelStopsInFlightJobs) {
  CancelToken cancel;
  std::atomic<bool> entered{false};
  std::vector<Job> jobs;
  jobs.push_back(supervised_job("spinner", [&entered](const JobControl& ctl) {
    entered = true;
    livelock(ctl);
  }));
  SupervisorOptions opts;
  opts.external = &cancel;
  std::thread killer([&cancel, &entered]() {
    while (!entered.load()) std::this_thread::yield();
    cancel.request(CancelReason::kUser);
  });
  const SupervisedResult r = run_supervised(std::move(jobs), 2, opts);
  killer.join();
  EXPECT_TRUE(r.interrupted);
  ASSERT_EQ(r.outcomes.size(), 1u);
  EXPECT_EQ(r.outcomes[0].status, JobStatus::kCancelled);
}

TEST(Supervisor, WatchdogKillsStalledJobHealthyJobSurvives) {
  // "stall" checkpoints but never advances its heartbeat; "healthy" beats a
  // fresh value on every iteration for well past the watchdog budget. Only
  // the stalled job may be killed.
  std::vector<Job> jobs;
  jobs.push_back(supervised_job("stall", livelock));
  jobs.push_back(supervised_job("healthy", [](const JobControl& ctl) {
    const auto start = std::chrono::steady_clock::now();
    std::uint64_t beat = 0;
    while (std::chrono::steady_clock::now() - start <
           std::chrono::duration<double>(3 * kShortBudget)) {
      ctl.checkpoint();
      ctl.beat(++beat);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }));
  SupervisorOptions opts;
  opts.watchdog_s = kShortBudget;
  opts.keep_going = true;  // the kill must not cancel the healthy job
  const SupervisedResult r = run_supervised(std::move(jobs), 2, opts);
  ASSERT_EQ(r.outcomes.size(), 2u);
  EXPECT_EQ(r.outcomes[0].status, JobStatus::kWatchdog);
  EXPECT_NE(r.outcomes[0].error.find("watchdog"), std::string::npos)
      << r.outcomes[0].error;
  EXPECT_EQ(r.outcomes[1].status, JobStatus::kOk);
  EXPECT_FALSE(r.interrupted);
}

TEST(Supervisor, JobTimeoutFiresDespiteProgress) {
  // The job advances its heartbeat constantly, so the watchdog never fires —
  // only the absolute per-attempt budget can kill it.
  std::vector<Job> jobs;
  jobs.push_back(supervised_job("busy", [](const JobControl& ctl) {
    std::uint64_t beat = 0;
    for (;;) {
      ctl.checkpoint();
      ctl.beat(++beat);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }));
  SupervisorOptions opts;
  opts.job_timeout_s = kShortBudget;
  opts.watchdog_s = 60.0;
  const SupervisedResult r = run_supervised(std::move(jobs), 2, opts);
  ASSERT_EQ(r.outcomes.size(), 1u);
  EXPECT_EQ(r.outcomes[0].status, JobStatus::kTimeout);
  EXPECT_EQ(r.outcomes[0].attempts, 1u);  // supervision kills are not retried
}

TEST(Supervisor, WatchdogKillIsNotRetried) {
  std::atomic<int> calls{0};
  std::vector<Job> jobs;
  jobs.push_back(supervised_job("relapse", [&calls](const JobControl& ctl) {
    ++calls;
    livelock(ctl);
  }));
  SupervisorOptions opts;
  opts.watchdog_s = kShortBudget;
  opts.retries = 5;
  opts.retry_backoff_s = kTinyBackoff;
  const SupervisedResult r = run_supervised(std::move(jobs), 2, opts);
  EXPECT_EQ(calls.load(), 1);  // a livelocked job would livelock again
  EXPECT_EQ(r.outcomes[0].status, JobStatus::kWatchdog);
}

TEST(Supervisor, BackoffIsDeterministicPerLabelAndAttempt) {
  // Two identical runs of the same flaky job must make the same attempts —
  // the jitter is keyed on (label, attempt), not on a random source.
  const auto run_once = [] {
    std::atomic<int> calls{0};
    std::vector<Job> jobs;
    jobs.push_back(supervised_job("det", [&calls](const JobControl&) {
      if (++calls < 4) throw SimError("flaky " + std::to_string(calls));
    }));
    SupervisorOptions opts;
    opts.retries = 4;
    opts.retry_backoff_s = kTinyBackoff;
    return run_supervised(std::move(jobs), 1, opts);
  };
  const SupervisedResult a = run_once();
  const SupervisedResult b = run_once();
  EXPECT_EQ(a.outcomes[0].attempts, b.outcomes[0].attempts);
  EXPECT_EQ(a.outcomes[0].attempts, 4u);
  EXPECT_EQ(a.outcomes[0].status, JobStatus::kOk);
}

// --- integration with the Gpu cycle loop and the matrix runner ---

constexpr double kTinyScale = 0.04;

TEST(SupervisedRun, PreCancelledRunThrowsCancelled) {
  CancelToken cancel;
  cancel.request(CancelReason::kUser);
  RunOptions opts;
  opts.scale = kTinyScale;
  opts.cancel = &cancel;
  try {
    run_one(Architecture::kC1, "bfs", opts);
    FAIL() << "expected Cancelled";
  } catch (const Cancelled& c) {
    EXPECT_EQ(c.reason(), CancelReason::kUser);
    EXPECT_NE(std::string(c.what()).find("cancelled at cycle"), std::string::npos)
        << c.what();
  }
}

TEST(SupervisedRun, WatchdogReasonCarriesDiagnosticStateDump) {
  CancelToken cancel;
  cancel.request(CancelReason::kWatchdog);
  RunOptions opts;
  opts.scale = kTinyScale;
  opts.cancel = &cancel;
  try {
    run_one(Architecture::kC1, "bfs", opts);
    FAIL() << "expected Cancelled";
  } catch (const Cancelled& c) {
    const std::string what = c.what();
    EXPECT_EQ(c.reason(), CancelReason::kWatchdog);
    EXPECT_NE(what.find("watchdog abort"), std::string::npos) << what;
    EXPECT_NE(what.find("diagnostic state at cycle"), std::string::npos) << what;
    EXPECT_NE(what.find("l2b0:"), std::string::npos) << what;
  }
}

TEST(SupervisedRun, HeartbeatAdvancesDuringARun) {
  std::atomic<std::uint64_t> heartbeat{0};
  RunOptions opts;
  opts.scale = kTinyScale;
  opts.heartbeat = &heartbeat;
  const Metrics m = run_one(Architecture::kC1, "bfs", opts);
  EXPECT_GT(heartbeat.load(), 0u);
  EXPECT_LE(heartbeat.load(), m.cycles);
}

TEST(SupervisedRun, SupervisionDoesNotChangeResults) {
  CancelToken cancel;  // never requested
  std::atomic<std::uint64_t> heartbeat{0};
  RunOptions plain;
  plain.scale = kTinyScale;
  RunOptions supervised = plain;
  supervised.cancel = &cancel;
  supervised.heartbeat = &heartbeat;
  const Metrics a = run_one(Architecture::kC2, "kmeans", plain);
  const Metrics b = run_one(Architecture::kC2, "kmeans", supervised);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_DOUBLE_EQ(a.ipc, b.ipc);
  EXPECT_DOUBLE_EQ(a.dynamic_w, b.dynamic_w);
  EXPECT_DOUBLE_EQ(a.leakage_w, b.leakage_w);
}

TEST(Supervisor, CriticalSectionDefersWatchdogKill) {
  // While a job holds a CriticalSection (e.g. a durable store append), the
  // watchdog must hold its fire even with a stone-dead heartbeat; the kill
  // lands once the section closes.
  std::atomic<bool> cancelled_during_critical{false};
  std::vector<Job> jobs;
  jobs.push_back(supervised_job("persisting", [&](const JobControl& ctl) {
    {
      const CriticalSection cs(ctl);
      const auto start = std::chrono::steady_clock::now();
      while (std::chrono::steady_clock::now() - start <
             std::chrono::duration<double>(3 * kShortBudget)) {
        if (ctl.cancelled()) cancelled_during_critical = true;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
    livelock(ctl);  // section closed: the deferred watchdog may now land
  }));
  SupervisorOptions opts;
  opts.watchdog_s = kShortBudget;
  const SupervisedResult r = run_supervised(std::move(jobs), 1, opts);
  EXPECT_FALSE(cancelled_during_critical.load());
  ASSERT_EQ(r.outcomes.size(), 1u);
  EXPECT_EQ(r.outcomes[0].status, JobStatus::kWatchdog);
}

TEST(Supervisor, CriticalSectionDoesNotDeferUserCancellation) {
  // User interrupts stay prompt: only watchdog/timeout kills are deferred.
  CancelToken cancel;
  std::atomic<bool> entered{false};
  std::vector<Job> jobs;
  jobs.push_back(supervised_job("interruptible", [&entered](const JobControl& ctl) {
    const CriticalSection cs(ctl);
    entered = true;
    livelock(ctl);
  }));
  SupervisorOptions opts;
  opts.external = &cancel;
  std::thread killer([&cancel, &entered]() {
    while (!entered.load()) std::this_thread::yield();
    cancel.request(CancelReason::kUser);
  });
  const SupervisedResult r = run_supervised(std::move(jobs), 1, opts);
  killer.join();
  EXPECT_TRUE(r.interrupted);
  ASSERT_EQ(r.outcomes.size(), 1u);
  EXPECT_EQ(r.outcomes[0].status, JobStatus::kCancelled);
}

TEST(SupervisedRun, MatrixInterruptReportsResumableState) {
  const std::string path = "test_supervisor_matrix_cache.csv";
  remove_cache_files(path);
  CancelToken cancel;
  cancel.request(CancelReason::kUser);
  RunOptions opts;
  opts.scale = kTinyScale;
  opts.cache_path = path;
  opts.jobs = 1;
  opts.cancel = &cancel;
  SupervisedResult report;
  opts.report = &report;
  try {
    run_matrix({Architecture::kSramBaseline}, {"bfs", "hotspot"}, opts);
    FAIL() << "expected Cancelled";
  } catch (const Cancelled& c) {
    EXPECT_EQ(c.reason(), CancelReason::kUser);
    const std::string what = c.what();
    EXPECT_NE(what.find("matrix interrupted"), std::string::npos) << what;
    EXPECT_NE(what.find("resume"), std::string::npos) << what;
  }
  EXPECT_TRUE(report.interrupted);
  // The cache file was still initialized (header write), so a rerun with
  // the token cleared resumes cleanly and completes the matrix.
  RunOptions resume = opts;
  resume.cancel = nullptr;
  resume.report = nullptr;
  const auto rows = run_matrix({Architecture::kSramBaseline}, {"bfs", "hotspot"}, resume);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_GT(rows[0].cycles, 0u);
  EXPECT_GT(rows[1].cycles, 0u);
  remove_cache_files(path);
}

TEST(SupervisedRun, MatrixKeepGoingStillCompletes) {
  // keep_going on a healthy matrix must be invisible: full results, OK
  // report, no manifest.
  RunOptions opts;
  opts.scale = kTinyScale;
  opts.jobs = 2;
  opts.keep_going = true;
  SupervisedResult report;
  opts.report = &report;
  const auto rows = run_matrix({Architecture::kC1}, {"bfs", "hotspot"}, opts);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_GT(rows[0].cycles, 0u);
  EXPECT_TRUE(report.all_ok());
  EXPECT_EQ(report.manifest(), "");
}

}  // namespace
}  // namespace sttgpu::sim
