// End-to-end GPU integration tests: a full simulated run over the memory
// hierarchy with SRAM and two-part L2 banks, checking completion, accounting
// consistency and determinism.
#include <gtest/gtest.h>

#include "gpu/gpu.hpp"
#include "sttl2/factories.hpp"

namespace sttgpu::gpu {
namespace {

workload::Workload tiny_workload() {
  // Shrunk benchmark-like kernel: 30 blocks, 2 warps each, mixed traffic.
  workload::KernelSpec k;
  k.name = "tiny";
  k.grid_blocks = 30;
  k.threads_per_block = 64;
  k.regs_per_thread = 16;
  k.instructions_per_warp = 300;
  k.mem_fraction = 0.3;
  k.store_fraction = 0.25;
  k.pattern.kind = workload::PatternKind::kRandom;
  k.pattern.footprint_bytes = 256 * 1024;
  k.pattern.reuse_fraction = 0.3;
  k.pattern.wws_lines = 32;
  return workload::Workload{.name = "tiny", .region = "test", .kernels = {k}, .seed = 5};
}

GpuConfig small_config() {
  GpuConfig cfg;
  cfg.num_sms = 4;
  cfg.num_l2_banks = 2;
  return cfg;
}

RunResult run_sram(const GpuConfig& cfg, const workload::Workload& w) {
  sttl2::UniformBankConfig bank;
  bank.capacity_bytes = 64 * 1024;
  sttl2::UniformBankFactory factory(bank, cfg.clock());
  Gpu gpu(cfg, factory);
  return gpu.run(w);
}

TEST(GpuIntegration, RunsToCompletion) {
  const workload::Workload w = tiny_workload();
  const RunResult r = run_sram(small_config(), w);
  EXPECT_EQ(r.instructions, w.total_instructions());
  EXPECT_GT(r.cycles, 0u);
  EXPECT_GT(r.ipc, 0.0);
  EXPECT_GT(r.runtime_s, 0.0);
}

TEST(GpuIntegration, DeterministicAcrossRuns) {
  const workload::Workload w = tiny_workload();
  const RunResult a = run_sram(small_config(), w);
  const RunResult b = run_sram(small_config(), w);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.instructions, b.instructions);
  EXPECT_EQ(a.l2.accesses(), b.l2.accesses());
  EXPECT_EQ(a.dram_reads, b.dram_reads);
  EXPECT_DOUBLE_EQ(a.l2_energy.total_pj(), b.l2_energy.total_pj());
}

TEST(GpuIntegration, AccountingIsConsistent) {
  const workload::Workload w = tiny_workload();
  const RunResult r = run_sram(small_config(), w);
  // Every L2 access originates from an SM transaction (or an L1 writeback);
  // an L1 miss can fetch at most one L2 access per load transaction.
  EXPECT_GT(r.sm.load_transactions, 0u);
  EXPECT_GT(r.sm.store_transactions, 0u);
  EXPECT_GT(r.l2.accesses(), 0u);
  EXPECT_LE(r.l2.read_misses + r.l2.write_misses, r.l2.accesses());
  // DRAM reads correspond to L2 miss fills (merged misses share one fill).
  EXPECT_LE(r.dram_reads, r.l2.read_misses + r.l2.write_misses);
  EXPECT_GT(r.dram_reads, 0u);
  // Energy was charged.
  EXPECT_GT(r.l2_energy.total_pj(), 0.0);
  EXPECT_GT(r.l2_leakage_w, 0.0);
}

TEST(GpuIntegration, MultiKernelWorkloadsRunSequentially) {
  workload::Workload w = tiny_workload();
  w.kernels.push_back(w.kernels[0]);  // two grids
  const RunResult r = run_sram(small_config(), w);
  EXPECT_EQ(r.instructions, w.total_instructions());
}

TEST(GpuIntegration, TwoPartBankCompletesSameWork) {
  const GpuConfig cfg = small_config();
  sttl2::TwoPartBankConfig bank;
  bank.hr_bytes = 56 * 1024;
  bank.lr_bytes = 8 * 1024;
  sttl2::TwoPartBankFactory factory(bank, cfg.clock());
  Gpu gpu(cfg, factory);
  const workload::Workload w = tiny_workload();
  const RunResult r = gpu.run(w);
  EXPECT_EQ(r.instructions, w.total_instructions());
  // Two-part counters surfaced through the factory collector.
  EXPECT_GT(r.l2_counters.get("w_demand"), 0u);
}

TEST(GpuIntegration, BiggerCacheNeverIncreasesMissRate) {
  const workload::Workload w = tiny_workload();
  sttl2::UniformBankConfig small_bank, big_bank;
  small_bank.capacity_bytes = 16 * 1024;
  big_bank.capacity_bytes = 256 * 1024;
  const GpuConfig cfg = small_config();

  sttl2::UniformBankFactory f_small(small_bank, cfg.clock());
  Gpu g_small(cfg, f_small);
  const RunResult r_small = g_small.run(w);

  sttl2::UniformBankFactory f_big(big_bank, cfg.clock());
  Gpu g_big(cfg, f_big);
  const RunResult r_big = g_big.run(w);

  EXPECT_LT(r_big.l2.miss_rate(), r_small.l2.miss_rate());
}

TEST(GpuIntegration, MoreWarpsHelpLatencyBoundKernels) {
  workload::Workload w = tiny_workload();
  w.kernels[0].regs_per_thread = 60;  // register limited on the small RF
  GpuConfig starved = small_config();
  starved.registers_per_sm = 8 * 1024;
  GpuConfig roomy = small_config();
  roomy.registers_per_sm = 32 * 1024;

  const RunResult r_starved = run_sram(starved, w);
  const RunResult r_roomy = run_sram(roomy, w);
  EXPECT_GT(r_roomy.ipc, r_starved.ipc);
}

}  // namespace
}  // namespace sttgpu::gpu
