// Behavioural tests of the paper's two-part LR/HR L2 bank: migration on the
// write threshold, fills landing in HR, LR refresh keeping data alive,
// eviction back to HR, buffer-overflow forced writebacks, the
// single-residency invariant and search-policy equivalence.
#include <gtest/gtest.h>

#include "bank_harness.hpp"
#include "common/rng.hpp"

namespace sttgpu::sttl2 {
namespace {

using Harness = sttgpu::testing::TwoPartHarness;

TwoPartBankConfig small_cfg() {
  TwoPartBankConfig c;
  c.hr_bytes = 14 * 1024;  // 56 lines, 7-way => 8 sets
  c.lr_bytes = 2 * 1024;   // 8 lines, 2-way => 4 sets
  return c;
}

/// True iff the line holding @p addr is valid in the given tag array.
bool resident(const cache::TagArray& tags, Addr addr) {
  return tags.probe(addr).has_value();
}

TEST(TwoPartBank, RejectsInvertedRetentions) {
  TwoPartBankConfig c = small_cfg();
  c.lr_retention_s = 1.0;
  c.hr_retention_s = 1e-6;
  gpu::GpuConfig gcfg;
  gpu::DramChannel dram(gcfg, [](std::uint64_t, Cycle) {});
  EXPECT_THROW(TwoPartBank(0, c, gcfg.clock(), dram), SimError);
}

TEST(TwoPartBank, FillsLandInHr) {
  Harness h(small_cfg());
  const auto id = h.send(0x1000, false);
  h.drain();
  EXPECT_TRUE(h.responded(id));
  EXPECT_TRUE(resident(h.bank().hr_tags(), 0x1000));
  EXPECT_FALSE(resident(h.bank().lr_tags(), 0x1000));
}

TEST(TwoPartBank, FirstWriteStaysInHr) {
  Harness h(small_cfg());
  h.send(0x1000, false);  // fill
  h.drain();
  h.send(0x1000, true);   // first write: counter 0 < threshold 1
  h.drain();
  EXPECT_TRUE(resident(h.bank().hr_tags(), 0x1000));
  EXPECT_FALSE(resident(h.bank().lr_tags(), 0x1000));
  EXPECT_EQ(h.bank().counters().get("migrations"), 0u);
  EXPECT_EQ(h.bank().counters().get("w_hr"), 1u);
}

TEST(TwoPartBank, SecondWriteMigratesToLr) {
  // The paper's WWS monitor with TH1 == the modified bit: a write to an
  // already-dirty HR block moves it to the LR part.
  Harness h(small_cfg());
  h.send(0x1000, false);
  h.drain();
  h.send(0x1000, true);
  h.drain();
  h.send(0x1000, true);
  h.drain();
  EXPECT_EQ(h.bank().counters().get("migrations"), 1u);
  EXPECT_FALSE(resident(h.bank().hr_tags(), 0x1000));
  EXPECT_TRUE(resident(h.bank().lr_tags(), 0x1000));
  EXPECT_EQ(h.bank().counters().get("w_lr"), 1u);

  // Subsequent reads are served from LR (no DRAM trip).
  const auto reads_before = h.dram().reads();
  const auto id = h.send(0x1000, false);
  h.drain();
  EXPECT_TRUE(h.responded(id));
  EXPECT_EQ(h.dram().reads(), reads_before);
}

TEST(TwoPartBank, HigherThresholdDelaysMigration) {
  TwoPartBankConfig cfg = small_cfg();
  cfg.write_threshold = 3;
  Harness h(cfg);
  h.send(0x1000, false);
  h.drain();
  for (int i = 0; i < 3; ++i) {
    h.send(0x1000, true);
    h.drain();
  }
  EXPECT_EQ(h.bank().counters().get("migrations"), 0u);
  h.send(0x1000, true);  // 4th write: counter reached 3
  h.drain();
  EXPECT_EQ(h.bank().counters().get("migrations"), 1u);
}

TEST(TwoPartBank, StoreMissFetchesAndAppliesInHr) {
  Harness h(small_cfg());
  const auto id = h.send(0x2000, true);
  h.drain();
  EXPECT_TRUE(h.responded(id));
  EXPECT_EQ(h.dram().reads(), 1u);  // fetch-on-write
  EXPECT_TRUE(resident(h.bank().hr_tags(), 0x2000));
  EXPECT_EQ(h.bank().counters().get("w_hr"), 1u);
}

TEST(TwoPartBank, LrEvictionReturnsBlockToHr) {
  // LR is 4 sets x 2 ways; lines 0x0, 0x400, 0x800 share LR set 0
  // (LR set stride = 4 * 256 = 1KB). Migrate three of them.
  Harness h(small_cfg());
  const Addr addrs[] = {0x0, 0x400, 0x800};
  for (const Addr a : addrs) {
    h.send(a, false);
    h.drain();
    h.send(a, true);
    h.drain();
    h.send(a, true);  // migrate
    h.drain();
  }
  EXPECT_EQ(h.bank().counters().get("migrations"), 3u);
  EXPECT_EQ(h.bank().counters().get("lr_evictions"), 1u);
  // The evicted block (LRU: the first) is back in HR, still cached.
  EXPECT_TRUE(resident(h.bank().hr_tags(), 0x0));
  EXPECT_TRUE(resident(h.bank().lr_tags(), 0x400));
  EXPECT_TRUE(resident(h.bank().lr_tags(), 0x800));
}

TEST(TwoPartBank, SingleResidencyInvariantUnderRandomTraffic) {
  // Property: no line address is ever valid in both parts.
  Harness h(small_cfg());
  Rng rng(99);
  for (int burst = 0; burst < 200; ++burst) {
    for (int i = 0; i < 4; ++i) {
      const Addr a = rng.next_below(64) * 256;  // 64 distinct lines
      h.send(a, rng.chance(0.5));
    }
    h.run(30);
  }
  h.drain();
  std::size_t checked = 0;
  for (Addr a = 0; a < 64 * 256; a += 256) {
    const bool in_lr = resident(h.bank().lr_tags(), a);
    const bool in_hr = resident(h.bank().hr_tags(), a);
    EXPECT_FALSE(in_lr && in_hr) << "line " << std::hex << a << " in both parts";
    checked += (in_lr || in_hr);
  }
  EXPECT_GT(checked, 0u);
}

TEST(TwoPartBank, DemandStoreAccountingBalances) {
  Harness h(small_cfg());
  Rng rng(7);
  for (int i = 0; i < 300; ++i) {
    h.send(rng.next_below(48) * 256, rng.chance(0.6));
    h.run(10);
  }
  h.drain();
  const auto& c = h.bank().counters();
  // Every demand store was eventually applied in exactly one part.
  EXPECT_EQ(c.get("w_demand"), c.get("w_lr") + c.get("w_hr"));
  EXPECT_GT(c.get("w_demand"), 0u);
}

TEST(TwoPartBank, RefreshKeepsLrDataAlive) {
  Harness h(small_cfg());  // LR retention 26.5us = 18550 cycles
  h.send(0x1000, false);
  h.drain();
  h.send(0x1000, true);
  h.drain();
  h.send(0x1000, true);  // now in LR
  h.drain();
  ASSERT_TRUE(resident(h.bank().lr_tags(), 0x1000));

  const auto reads_before = h.dram().reads();
  h.run(60000);  // ~3 retention periods
  EXPECT_GE(h.bank().counters().get("refreshes"), 2u);
  // Still resident and still served without DRAM.
  EXPECT_TRUE(resident(h.bank().lr_tags(), 0x1000));
  const auto id = h.send(0x1000, false);
  h.drain();
  EXPECT_TRUE(h.responded(id));
  EXPECT_EQ(h.dram().reads(), reads_before);
  EXPECT_GT(h.bank().energy().category_pj("l2.lr.refresh"), 0.0);
}

TEST(TwoPartBank, RefreshForcedWritebackWhenBufferFull) {
  TwoPartBankConfig cfg = small_cfg();
  cfg.buffer_lines = 1;
  Harness h(cfg);
  // Put two lines into LR in different LR sets.
  for (const Addr a : {Addr{0x0}, Addr{0x100}}) {
    h.send(a, false);
    h.drain();
    h.send(a, true);
    h.drain();
    h.send(a, true);
    h.drain();
  }
  ASSERT_TRUE(resident(h.bank().lr_tags(), 0x0));
  ASSERT_TRUE(resident(h.bank().lr_tags(), 0x100));
  // Rewrite both lines in the same tick so their refresh deadlines land in
  // the same window; capacity 1 then forces one line to be written back to
  // DRAM and invalidated instead of refreshed.
  h.send(0x0, true);
  h.send(0x100, true);
  h.run(40000);
  const auto& c = h.bank().counters();
  EXPECT_GT(c.get("refresh_forced_wb") + c.get("refresh_forced_drop"), 0u);
}

TEST(TwoPartBank, HrExpiryInvalidatesStaleLines) {
  TwoPartBankConfig cfg = small_cfg();
  cfg.hr_retention_s = 1e-3;  // 700k cycles, test-friendly
  Harness h(cfg);
  h.send(0x1000, true);  // dirty line in HR
  h.send(0x3000, false); // clean line in HR
  h.drain();
  const auto writes_before = h.dram().writes();
  h.run(750'000);
  EXPECT_EQ(h.bank().counters().get("hr_expired_dirty"), 1u);
  EXPECT_EQ(h.bank().counters().get("hr_expired_clean"), 1u);
  EXPECT_EQ(h.dram().writes(), writes_before + 1);
  EXPECT_FALSE(resident(h.bank().hr_tags(), 0x1000));
}

TEST(TwoPartBank, SearchPoliciesAgreeOnOutcomes) {
  const auto run_traffic = [](SearchPolicy policy) {
    TwoPartBankConfig cfg = small_cfg();
    cfg.search = policy;
    Harness h(cfg);
    Rng rng(5);
    for (int i = 0; i < 400; ++i) {
      h.send(rng.next_below(40) * 256, rng.chance(0.4));
      h.run(8);
    }
    h.drain();
    return std::tuple{h.bank().stats().read_hits, h.bank().stats().write_hits,
                      h.bank().counters().get("migrations"),
                      h.bank().counters().get("tag_probes_lr") +
                          h.bank().counters().get("tag_probes_hr")};
  };

  const auto seq = run_traffic(SearchPolicy::kSequential);
  const auto par = run_traffic(SearchPolicy::kParallel);
  EXPECT_EQ(std::get<0>(seq), std::get<0>(par));
  EXPECT_EQ(std::get<1>(seq), std::get<1>(par));
  EXPECT_EQ(std::get<2>(seq), std::get<2>(par));
  // Sequential search saves tag probes (its whole point).
  EXPECT_LT(std::get<3>(seq), std::get<3>(par));
}

TEST(TwoPartBank, FullyAssociativeLrWorks) {
  TwoPartBankConfig cfg = small_cfg();
  cfg.lr_assoc = 0;  // fully associative
  Harness h(cfg);
  for (const Addr a : {Addr{0x0}, Addr{0x400}, Addr{0x800}}) {
    h.send(a, false);
    h.drain();
    h.send(a, true);
    h.drain();
    h.send(a, true);
    h.drain();
  }
  // With 8 fully-associative LR lines, all three coexist (no set conflicts).
  EXPECT_EQ(h.bank().counters().get("lr_evictions"), 0u);
  EXPECT_TRUE(resident(h.bank().lr_tags(), 0x0));
  EXPECT_TRUE(resident(h.bank().lr_tags(), 0x400));
  EXPECT_TRUE(resident(h.bank().lr_tags(), 0x800));
}

TEST(TwoPartBank, EnergyCategoriesCharged) {
  Harness h(small_cfg());
  h.send(0x1000, false);
  h.drain();
  h.send(0x1000, true);
  h.drain();
  h.send(0x1000, true);  // migration
  h.drain();
  const auto& e = h.bank().energy();
  EXPECT_GT(e.category_pj("l2.hr.tag_probe"), 0.0);
  EXPECT_GT(e.category_pj("l2.lr.tag_probe"), 0.0);
  EXPECT_GT(e.category_pj("l2.hr.data_write"), 0.0);
  EXPECT_GT(e.category_pj("l2.lr.data_write"), 0.0);
  EXPECT_GT(e.category_pj("l2.buffer"), 0.0);
}

TEST(TwoPartBank, LrWritesAreCheaperThanHrWrites) {
  // Device-level sanity at the bank level: per-line write energy in LR is
  // below HR (that is the whole point of relaxed retention).
  Harness h(small_cfg());
  EXPECT_LT(h.bank().lr_costs().data_write_pj, h.bank().hr_costs().data_write_pj);
  EXPECT_LT(h.bank().lr_costs().data_write_latency_ns,
            h.bank().hr_costs().data_write_latency_ns);
}

TEST(TwoPartBank, RewriteIntervalsRecordedInLr) {
  Harness h(small_cfg());
  h.send(0x1000, false);
  h.drain();
  h.send(0x1000, true);
  h.drain();
  h.send(0x1000, true);  // migrate to LR
  h.drain();
  h.run(700);  // ~1us
  h.send(0x1000, true);  // rewrite in LR
  h.drain();
  EXPECT_EQ(h.bank().lr_rewrites().intervals(), 1u);
  // The interval (~1us) falls in the <=10us bucket.
  EXPECT_EQ(h.bank().lr_rewrites().histogram().bucket(0), 1u);
}

}  // namespace
}  // namespace sttgpu::sttl2
