// Unit tests of the sweep service's process-isolated simulation runner
// (serve/sandbox.hpp): byte-identity of sandboxed rows, crash/OOM/wedge
// containment via the STTGPU_SANDBOX_FAULT hook, retry/backoff, and
// cancellation — all without a server in the loop.
#include "serve/sandbox.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common/cancel.hpp"
#include "sim/runner.hpp"
#include "store/record.hpp"

namespace sttgpu::serve {
namespace {

/// Scoped STTGPU_SANDBOX_FAULT so a failing test can't poison its neighbors.
struct FaultEnv {
  explicit FaultEnv(const char* spec) { ::setenv("STTGPU_SANDBOX_FAULT", spec, 1); }
  ~FaultEnv() { ::unsetenv("STTGPU_SANDBOX_FAULT"); }
};

SandboxJob small_job() {
  SandboxJob j;
  j.arch_id = sim::architecture_from_string("C1");
  j.arch = "C1";
  j.bench = "bfs";
  j.base.scale = 0.05;
  j.fp = sim::config_fingerprint(j.base.faults);
  j.scale17 = store::scale_text(j.base.scale);
  return j;
}

bool asan_active() {
#if defined(__SANITIZE_ADDRESS__)
  return true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
  return true;
#else
  return false;
#endif
#else
  return false;
#endif
}

TEST(ServeSandbox, RowIsByteIdenticalToInProcessRun) {
  const SandboxJob job = small_job();
  const SandboxResult res = run_sandboxed(job, SandboxOptions{});
  ASSERT_EQ(res.status, SandboxStatus::kOk) << res.error;
  EXPECT_EQ(res.attempts, 1u);
  EXPECT_EQ(res.kills, 0u);
  EXPECT_EQ(res.crashes, 0u);

  sim::RunOptions direct = job.base;
  const sim::Metrics m = sim::run_one(job.arch_id, job.bench, direct);
  EXPECT_EQ(res.row_line, store::encode_put(job.fp, job.scale17, sim::to_store_row(m)));
}

TEST(ServeSandbox, ChildAbortIsContainedAndReportedAsCrash) {
  const FaultEnv env("C1/bfs=abort");
  const SandboxResult res = run_sandboxed(small_job(), SandboxOptions{});
  EXPECT_EQ(res.status, SandboxStatus::kCrashed);
  EXPECT_EQ(res.attempts, 1u);
  EXPECT_EQ(res.crashes, 1u);
  EXPECT_NE(res.error.find("signal"), std::string::npos) << res.error;
}

TEST(ServeSandbox, MemLimitTurnsRunawayAllocationIntoOom) {
  if (asan_active()) GTEST_SKIP() << "RLIMIT_AS is incompatible with ASan shadow maps";
  const FaultEnv env("C1/bfs=oom");
  SandboxOptions opts;
  opts.mem_limit_bytes = 256ull << 20;
  const SandboxResult res = run_sandboxed(small_job(), opts);
  EXPECT_EQ(res.status, SandboxStatus::kOom) << res.error;
  EXPECT_EQ(res.crashes, 1u);
  EXPECT_NE(res.error.find("mem_limit"), std::string::npos) << res.error;
}

TEST(ServeSandbox, WatchdogKillsAWedgedChild) {
  const FaultEnv env("C1/bfs=hang");
  SandboxOptions opts;
  opts.watchdog_s = 0.3;
  const SandboxResult res = run_sandboxed(small_job(), opts);
  EXPECT_EQ(res.status, SandboxStatus::kWatchdog);
  EXPECT_EQ(res.kills, 1u);
  EXPECT_EQ(res.attempts, 1u);  // wedges are never retried
}

TEST(ServeSandbox, JobTimeoutBoundsOneAttempt) {
  const FaultEnv env("C1/bfs=hang");
  SandboxOptions opts;
  opts.job_timeout_s = 0.3;
  opts.retries = 3;  // must be ignored: a timed-out run would time out again
  const SandboxResult res = run_sandboxed(small_job(), opts);
  EXPECT_EQ(res.status, SandboxStatus::kTimeout);
  EXPECT_EQ(res.kills, 1u);
  EXPECT_EQ(res.attempts, 1u);
}

TEST(ServeSandbox, TransientCrashIsRetriedToSuccess) {
  const FaultEnv env("C1/bfs=abort@1");  // crash on attempt 1 only
  SandboxOptions opts;
  opts.retries = 1;
  opts.retry_backoff_s = 0.01;
  const SandboxResult res = run_sandboxed(small_job(), opts);
  ASSERT_EQ(res.status, SandboxStatus::kOk) << res.error;
  EXPECT_EQ(res.attempts, 2u);
  EXPECT_EQ(res.crashes, 1u);
  EXPECT_FALSE(res.row_line.empty());
}

TEST(ServeSandbox, PreCancelledTokenSkipsTheFork) {
  CancelToken token;
  token.request(CancelReason::kUser);
  SandboxOptions opts;
  opts.cancel = &token;
  const SandboxResult res = run_sandboxed(small_job(), opts);
  EXPECT_EQ(res.status, SandboxStatus::kCancelled);
  EXPECT_EQ(res.attempts, 0u);
}

TEST(ServeSandbox, LiveCancellationKillsTheChild) {
  const FaultEnv env("C1/bfs=hang");
  CancelToken token;
  SandboxOptions opts;
  opts.cancel = &token;
  std::thread killer([&token] {
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    token.request(CancelReason::kUser);
  });
  const SandboxResult res = run_sandboxed(small_job(), opts);
  killer.join();
  EXPECT_EQ(res.status, SandboxStatus::kCancelled);
  EXPECT_EQ(res.kills, 1u);
}

TEST(ServeSandbox, TelemetryFramesAreForwardedAcrossThePipe) {
  SandboxJob job = small_job();
  job.want_telemetry = true;
  job.interval = 1000;
  std::vector<std::string> events;
  const SandboxResult res = run_sandboxed(
      job, SandboxOptions{}, [&events](const std::string& e) { events.push_back(e); });
  ASSERT_EQ(res.status, SandboxStatus::kOk) << res.error;
  ASSERT_FALSE(events.empty());
  for (const std::string& e : events) {
    EXPECT_NE(e.find("\"event\":\"telemetry\""), std::string::npos) << e;
    EXPECT_NE(e.find("\"arch\":\"C1\""), std::string::npos) << e;
  }
}

}  // namespace
}  // namespace sttgpu::serve
