#include "common/units.hpp"

#include <gtest/gtest.h>

namespace sttgpu {
namespace {

TEST(Units, Conversions) {
  EXPECT_DOUBLE_EQ(nanojoule_to_pj(0.5), 500.0);
  EXPECT_DOUBLE_EQ(pj_to_nanojoule(500.0), 0.5);
  EXPECT_DOUBLE_EQ(us_to_ns(26.5), 26500.0);
  EXPECT_DOUBLE_EQ(ms_to_ns(40.0), 40e6);
  EXPECT_DOUBLE_EQ(seconds_to_ns(1.0), 1e9);
  EXPECT_DOUBLE_EQ(ns_to_seconds(1e9), 1.0);
}

TEST(Clock, PeriodAt700MHz) {
  const Clock clock(700e6);
  EXPECT_NEAR(clock.period_ns(), 1.42857, 1e-4);
}

TEST(Clock, CyclesForNsRoundsUpAndIsAtLeastOne) {
  const Clock clock(700e6);
  EXPECT_EQ(clock.cycles_for_ns(0.1), 1u);   // sub-cycle latencies cost a cycle
  EXPECT_EQ(clock.cycles_for_ns(1.4), 1u);
  EXPECT_EQ(clock.cycles_for_ns(1.5), 2u);
  EXPECT_EQ(clock.cycles_for_ns(14.2857), 10u);
}

TEST(Clock, RoundTripSeconds) {
  const Clock clock(kDefaultCoreClockHz);
  EXPECT_NEAR(clock.seconds_for_cycles(700'000'000), 1.0, 1e-9);
}

// Property: cycles_for_ns never undershoots the physical latency.
class ClockProperty : public ::testing::TestWithParam<double> {};

TEST_P(ClockProperty, NeverFree) {
  const Clock clock(GetParam());
  for (double ns = 0.05; ns < 100.0; ns *= 1.7) {
    const Cycle c = clock.cycles_for_ns(ns);
    EXPECT_GE(c, 1u);
    EXPECT_GE(clock.ns_for_cycles(c) + 1e-9, ns) << "freq=" << GetParam() << " ns=" << ns;
  }
}

INSTANTIATE_TEST_SUITE_P(Frequencies, ClockProperty,
                         ::testing::Values(300e6, 700e6, 1.4e9, 2.0e9));

}  // namespace
}  // namespace sttgpu
