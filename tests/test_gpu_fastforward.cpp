// Event-driven fast-forward: equivalence with the plain per-cycle loop
// (every reported metric must be byte-identical) plus unit tests of each
// component's next_event_cycle().
#include <gtest/gtest.h>

#include "bank_harness.hpp"
#include "gpu/gpu.hpp"
#include "gpu/interconnect.hpp"
#include "gpu/sm.hpp"
#include "sttl2/factories.hpp"

namespace sttgpu::gpu {
namespace {

workload::Workload tiny_workload() {
  workload::KernelSpec k;
  k.name = "tiny";
  k.grid_blocks = 30;
  k.threads_per_block = 64;
  k.regs_per_thread = 16;
  k.instructions_per_warp = 300;
  k.mem_fraction = 0.3;
  k.store_fraction = 0.25;
  k.pattern.kind = workload::PatternKind::kRandom;
  k.pattern.footprint_bytes = 256 * 1024;
  k.pattern.reuse_fraction = 0.3;
  k.pattern.wws_lines = 32;
  return workload::Workload{.name = "tiny", .region = "test", .kernels = {k}, .seed = 5};
}

/// Sparse workload with long quiescent DRAM waits — the fast-forward's
/// target regime, where skips actually fire.
workload::Workload sparse_workload() {
  workload::KernelSpec k;
  k.name = "sparse";
  k.grid_blocks = 2;
  k.threads_per_block = 32;
  k.instructions_per_warp = 400;
  k.mem_fraction = 0.5;
  k.store_fraction = 0.1;
  k.pattern.kind = workload::PatternKind::kRandom;
  k.pattern.footprint_bytes = 64ull << 20;
  k.pattern.reuse_fraction = 0.0;
  k.pattern.wws_lines = 0;
  return workload::Workload{.name = "sparse", .region = "test", .kernels = {k}, .seed = 9};
}

GpuConfig small_config(bool fast_forward) {
  GpuConfig cfg;
  cfg.num_sms = 4;
  cfg.num_l2_banks = 2;
  cfg.fast_forward = fast_forward;
  return cfg;
}

RunResult run_with(L2BankFactory& factory, const GpuConfig& cfg,
                   const workload::Workload& w) {
  Gpu gpu(cfg, factory);
  return gpu.run(w);
}

/// Every field of RunResult — including the full counter and per-category
/// energy maps — must match exactly between the two modes.
void expect_identical(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.instructions, b.instructions);
  EXPECT_EQ(a.ipc, b.ipc);
  EXPECT_EQ(a.runtime_s, b.runtime_s);

  EXPECT_EQ(a.l2.read_hits, b.l2.read_hits);
  EXPECT_EQ(a.l2.read_misses, b.l2.read_misses);
  EXPECT_EQ(a.l2.write_hits, b.l2.write_hits);
  EXPECT_EQ(a.l2.write_misses, b.l2.write_misses);
  EXPECT_EQ(a.l2.dram_reads, b.l2.dram_reads);
  EXPECT_EQ(a.l2.dram_writebacks, b.l2.dram_writebacks);
  EXPECT_EQ(a.l2_leakage_w, b.l2_leakage_w);

  EXPECT_EQ(a.dram_reads, b.dram_reads);
  EXPECT_EQ(a.dram_writes, b.dram_writes);
  EXPECT_EQ(a.l1d_hits, b.l1d_hits);
  EXPECT_EQ(a.l1d_misses, b.l1d_misses);

  EXPECT_EQ(a.sm.issued_instructions, b.sm.issued_instructions);
  EXPECT_EQ(a.sm.issued_loads, b.sm.issued_loads);
  EXPECT_EQ(a.sm.issued_stores, b.sm.issued_stores);
  EXPECT_EQ(a.sm.load_transactions, b.sm.load_transactions);
  EXPECT_EQ(a.sm.store_transactions, b.sm.store_transactions);
  EXPECT_EQ(a.sm.idle_cycles, b.sm.idle_cycles);
  EXPECT_EQ(a.sm.stall_cycles, b.sm.stall_cycles);
  EXPECT_EQ(a.sm.mshr_merges, b.sm.mshr_merges);

  EXPECT_EQ(a.l2_counters.all(), b.l2_counters.all());
  EXPECT_EQ(a.l2_energy.total_pj(), b.l2_energy.total_pj());
  const auto cat_a = a.l2_energy.categories();
  const auto cat_b = b.l2_energy.categories();
  ASSERT_EQ(cat_a.size(), cat_b.size());
  for (auto ia = cat_a.begin(), ib = cat_b.begin(); ia != cat_a.end(); ++ia, ++ib) {
    EXPECT_EQ(ia->first, ib->first);
    EXPECT_EQ(ia->second, ib->second) << "category " << ia->first;
  }
}

TEST(FastForwardEquivalence, UniformSramBank) {
  for (const auto* w : {"tiny", "sparse"}) {
    const workload::Workload work = w == std::string("tiny") ? tiny_workload()
                                                             : sparse_workload();
    sttl2::UniformBankConfig bank;
    bank.capacity_bytes = 64 * 1024;
    sttl2::UniformBankFactory f_off(bank, small_config(false).clock());
    sttl2::UniformBankFactory f_on(bank, small_config(true).clock());
    const RunResult off = run_with(f_off, small_config(false), work);
    const RunResult on = run_with(f_on, small_config(true), work);
    SCOPED_TRACE(w);
    expect_identical(off, on);
  }
}

TEST(FastForwardEquivalence, UniformVolatileSttBank) {
  // Volatile cells make the expiry queue an event source.
  sttl2::UniformBankConfig bank;
  bank.capacity_bytes = 64 * 1024;
  bank.cell = nvm::stt_cell_for_retention(1e-3);
  sttl2::UniformBankFactory f_off(bank, small_config(false).clock());
  sttl2::UniformBankFactory f_on(bank, small_config(true).clock());
  const workload::Workload w = sparse_workload();
  expect_identical(run_with(f_off, small_config(false), w),
                   run_with(f_on, small_config(true), w));
}

TEST(FastForwardEquivalence, TwoPartBankWithAllEventSources) {
  // Refresh queue, HR expiry queue, adaptive-threshold timer and wear
  // rotation all active at once.
  sttl2::TwoPartBankConfig bank;
  bank.hr_bytes = 32 * 1024;
  bank.hr_assoc = 4;
  bank.lr_bytes = 8 * 1024;
  bank.adaptive_threshold = true;
  bank.adapt_interval = 2048;
  bank.lr_wear_leveling = true;
  bank.wear_level_period = 2000;
  for (const bool sparse : {false, true}) {
    const workload::Workload w = sparse ? sparse_workload() : tiny_workload();
    sttl2::TwoPartBankFactory f_off(bank, small_config(false).clock());
    sttl2::TwoPartBankFactory f_on(bank, small_config(true).clock());
    SCOPED_TRACE(sparse ? "sparse" : "tiny");
    expect_identical(run_with(f_off, small_config(false), w),
                     run_with(f_on, small_config(true), w));
  }
}

TEST(NextEventCycle, DramChannelEmptyThenPending) {
  GpuConfig cfg;
  std::uint64_t done_cookie = 0;
  DramChannel dram(cfg, [&](std::uint64_t cookie, Cycle) { done_cookie = cookie; });
  EXPECT_EQ(dram.next_event_cycle(), kNoCycle);

  dram.read(0x1000, /*cookie=*/7, /*now=*/10);
  const Cycle ready = dram.next_event_cycle();
  ASSERT_NE(ready, kNoCycle);
  EXPECT_GT(ready, 10u);

  dram.tick(ready - 1);
  EXPECT_EQ(done_cookie, 0u);  // not yet due
  dram.tick(ready);
  EXPECT_EQ(done_cookie, 7u);  // delivered exactly at its event cycle
  EXPECT_EQ(dram.next_event_cycle(), kNoCycle);
}

TEST(NextEventCycle, InterconnectTracksArrivalsAndInFlight) {
  GpuConfig cfg;
  cfg.num_sms = 2;
  cfg.num_l2_banks = 2;
  Interconnect icnt(cfg);
  EXPECT_TRUE(icnt.idle());
  EXPECT_EQ(icnt.next_event_cycle(), kNoCycle);

  L2Request req;
  req.id = 1;
  req.addr = 0x100;
  icnt.send_request(0, req, /*now=*/5);
  EXPECT_FALSE(icnt.idle());
  EXPECT_EQ(icnt.next_event_cycle(), 5 + cfg.icnt_latency);

  unsigned delivered = 0;
  icnt.deliver_requests(
      0, /*now=*/5 + cfg.icnt_latency, [] { return true; },
      [&](const L2Request&) { ++delivered; });
  EXPECT_EQ(delivered, 1u);
  EXPECT_TRUE(icnt.idle());
  EXPECT_EQ(icnt.next_event_cycle(), kNoCycle);
}

TEST(NextEventCycle, SmWithNoKernelHasNoEvents) {
  GpuConfig cfg;
  Sm sm(0, cfg, /*seed=*/1);
  EXPECT_EQ(sm.next_event_cycle(), kNoCycle);
  // Skipped-cycle accounting is a no-op without active warps.
  sm.account_skipped_cycles(100);
  EXPECT_EQ(sm.stats().idle_cycles, 0u);
}

TEST(NextEventCycle, UniformBankInputResponseAndExpiry) {
  sttl2::UniformBankConfig cfg;
  cfg.capacity_bytes = 16 * 1024;
  cfg.cell = nvm::stt_cell_for_retention(1e-4);  // volatile: expiry events exist
  testing::UniformHarness h(cfg);
  EXPECT_EQ(h.bank().next_event_cycle(), kNoCycle);

  h.send(0x1000, /*is_store=*/true);
  EXPECT_EQ(h.bank().next_event_cycle(), 0u);  // queued input => tick now

  h.run(1);  // consume the input; a DRAM fill is now outstanding
  h.drain();
  // The store was installed into a volatile line, so a retention-expiry
  // deadline must be scheduled in the future.
  const Cycle expiry = h.bank().next_event_cycle();
  ASSERT_NE(expiry, kNoCycle);
  EXPECT_GT(expiry, h.now());
}

TEST(NextEventCycle, TwoPartBankRefreshDeadlineIsEarliest) {
  sttl2::TwoPartBankConfig cfg;
  cfg.hr_bytes = 16 * 1024;
  cfg.hr_assoc = 4;
  cfg.lr_bytes = 4 * 1024;
  testing::TwoPartHarness h(cfg);
  EXPECT_EQ(h.bank().next_event_cycle(), kNoCycle);

  // A store miss fills into HR; the second store is a write hit that crosses
  // the write threshold and migrates the line into the LR part, scheduling
  // its periodic refresh. The refresh deadline (LR retention ~26.5us) is far
  // earlier than the HR expiry (~40ms), so it must be the bank's next event.
  h.send(0x2000, /*is_store=*/true);
  h.drain();
  h.send(0x2000, /*is_store=*/true);
  h.drain();
  const Cycle next = h.bank().next_event_cycle();
  ASSERT_NE(next, kNoCycle);
  EXPECT_GT(next, h.now());
  const Cycle lr_refresh_bound =
      gpu::GpuConfig{}.clock().cycles_for_ns(seconds_to_ns(cfg.lr_retention_s)) + h.now() + 1;
  EXPECT_LE(next, lr_refresh_bound);
}

TEST(NextEventCycle, TwoPartAdaptiveThresholdIsAnEventSource) {
  sttl2::TwoPartBankConfig cfg;
  cfg.hr_bytes = 16 * 1024;
  cfg.hr_assoc = 4;
  cfg.lr_bytes = 4 * 1024;
  cfg.adaptive_threshold = true;
  cfg.adapt_interval = 512;
  testing::TwoPartHarness h(cfg);
  // Even a completely idle bank must wake for its adapt timer, or the
  // fast-forward would jump past it and shift every later adapt interval.
  EXPECT_EQ(h.bank().next_event_cycle(), 512u);
}

}  // namespace
}  // namespace sttgpu::gpu
