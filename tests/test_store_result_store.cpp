#include "store/result_store.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "store/wal.hpp"

namespace sttgpu::store {
namespace {

constexpr std::uint64_t kFp = 0xd180d94558f98587ull;
constexpr double kScale = 0.04;

void remove_store_files(const std::string& store_path) {
  std::remove(store_path.c_str());
  std::remove((store_path + ".lock").c_str());
  std::remove(ResultStore::quarantine_path_for(store_path).c_str());
}

ResultRow row(const std::string& arch, const std::string& bench, double ipc) {
  ResultRow r;
  r.arch = arch;
  r.benchmark = bench;
  r.ipc = ipc;
  r.cycles = 1000 + static_cast<std::uint64_t>(ipc * 100);
  r.dynamic_w = 0.5;
  r.leakage_w = 0.1;
  r.total_w = 0.6;
  r.write_share = 0.4;
  r.miss_rate = 0.2;
  return r;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

TEST(ResultStoreTest, PutGetRoundTripAndReopen) {
  const std::string path = "test_store_rs_roundtrip.store";
  remove_store_files(path);
  {
    ResultStore store(path);
    EXPECT_EQ(store.size(), 0u);
    EXPECT_FALSE(store.get(kFp, kScale, "C1", "bfs").has_value());
    store.put(kFp, kScale, row("C1", "bfs", 1.25));
    store.put(kFp, kScale, row("C2", "kmeans", 2.5));
    ASSERT_TRUE(store.get(kFp, kScale, "C1", "bfs").has_value());
    EXPECT_EQ(store.get(kFp, kScale, "C1", "bfs")->ipc, 1.25);
    // A different fingerprint or scale is a different group entirely.
    EXPECT_FALSE(store.get(kFp + 1, kScale, "C1", "bfs").has_value());
    EXPECT_FALSE(store.get(kFp, 0.5, "C1", "bfs").has_value());
  }
  ResultStore reopened(path);
  EXPECT_EQ(reopened.size(), 2u);
  ASSERT_TRUE(reopened.get(kFp, kScale, "C2", "kmeans").has_value());
  EXPECT_EQ(reopened.get(kFp, kScale, "C2", "kmeans")->ipc, 2.5);
  const StoreStats st = reopened.stats();
  EXPECT_EQ(st.applied_records, 2u);
  EXPECT_EQ(st.dead_records, 0u);
  EXPECT_EQ(st.groups, 1u);
  EXPECT_TRUE(ResultStore::fsck(path).healthy());
  remove_store_files(path);
}

TEST(ResultStoreTest, DerivedPaths) {
  EXPECT_EQ(ResultStore::derive_path("fig8_cache.csv"), "fig8_cache.store");
  EXPECT_EQ(ResultStore::derive_path("dir/a.csv"), "dir/a.store");
  EXPECT_EQ(ResultStore::derive_path("results.bin"), "results.bin.store");
  EXPECT_EQ(ResultStore::quarantine_path_for("a.store"), "a.store.quarantine");
}

TEST(ResultStoreTest, LastWriterWinsAndDeadRecordsAreCounted) {
  const std::string path = "test_store_rs_lww.store";
  remove_store_files(path);
  ResultStore store(path);
  store.put(kFp, kScale, row("C1", "bfs", 1.0));
  store.put(kFp, kScale, row("C1", "bfs", 2.0));
  store.put(kFp, kScale, row("C1", "bfs", 3.0));
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.get(kFp, kScale, "C1", "bfs")->ipc, 3.0);
  const StoreStats st = store.stats();
  EXPECT_EQ(st.applied_records, 3u);
  EXPECT_EQ(st.dead_records, 2u);
  remove_store_files(path);
}

TEST(ResultStoreTest, EmptyFileIsAColdStore) {
  // Touching the path (0 bytes) must read as cold, not as a framing error —
  // the same grace the CSV layer gives an empty cache file.
  const std::string path = "test_store_rs_empty.store";
  remove_store_files(path);
  std::ofstream(path, std::ios::trunc).flush();
  std::vector<std::string> log_lines;
  StoreOptions opts;
  opts.log = [&log_lines](const std::string& l) { log_lines.push_back(l); };
  ResultStore store(path, opts);
  EXPECT_EQ(store.size(), 0u);
  EXPECT_TRUE(log_lines.empty()) << log_lines.front();
  EXPECT_TRUE(ResultStore::fsck(path).healthy());
  remove_store_files(path);
}

TEST(ResultStoreTest, TornTailIsTruncatedToLastCompleteRecord) {
  const std::string path = "test_store_rs_torn.store";
  remove_store_files(path);
  std::uint64_t clean_size = 0;
  {
    ResultStore store(path);
    store.put(kFp, kScale, row("C1", "bfs", 1.25));
    store.put(kFp, kScale, row("C2", "kmeans", 2.5));
    clean_size = store.stats().file_bytes;
  }
  {
    // Simulate a crash mid-append: a partial frame at the tail.
    const std::string frame = frame_record("put deadbeef 0.5 C3 lud 1 2 3 4 5 6 7");
    std::ofstream out(path, std::ios::app | std::ios::binary);
    out << frame.substr(0, frame.size() - 5);
  }
  std::vector<std::string> log_lines;
  StoreOptions opts;
  opts.log = [&log_lines](const std::string& l) { log_lines.push_back(l); };
  ResultStore store(path, opts);
  EXPECT_EQ(store.size(), 2u);
  const StoreStats st = store.stats();
  EXPECT_EQ(st.file_bytes, clean_size);  // tail gone
  EXPECT_GT(st.repaired_torn_bytes, 0u);
  EXPECT_EQ(st.quarantine_incidents, 0u);  // torn != corrupt
  ASSERT_EQ(log_lines.size(), 1u);
  EXPECT_NE(log_lines[0].find("torn tail"), std::string::npos) << log_lines[0];
  remove_store_files(path);
}

TEST(ResultStoreTest, CorruptionIsQuarantinedAndNeighboursSurvive) {
  const std::string path = "test_store_rs_corrupt.store";
  remove_store_files(path);
  {
    ResultStore store(path);
    store.put(kFp, kScale, row("C1", "bfs", 1.0));
    store.put(kFp, kScale, row("C2", "kmeans", 2.0));
    store.put(kFp, kScale, row("C3", "hotspot", 3.0));
  }
  {
    // Bit rot inside the middle record's payload: its CRC no longer checks.
    std::string bytes = slurp(path);
    const std::size_t at = bytes.find("kmeans");
    ASSERT_NE(at, std::string::npos);
    bytes[at] ^= 0x40;
    std::ofstream(path, std::ios::trunc | std::ios::binary) << bytes;
  }
  {
    ResultStore store(path);
    EXPECT_EQ(store.size(), 2u);  // C1 and C3 survive
    EXPECT_TRUE(store.get(kFp, kScale, "C1", "bfs").has_value());
    EXPECT_FALSE(store.get(kFp, kScale, "C2", "kmeans").has_value());
    EXPECT_TRUE(store.get(kFp, kScale, "C3", "hotspot").has_value());
    const StoreStats st = store.stats();
    EXPECT_EQ(st.quarantined_new_incidents, 1u);
    EXPECT_GT(st.quarantined_new_bytes, 0u);
    EXPECT_EQ(st.quarantine_incidents, 1u);
    EXPECT_GE(st.compactions, 1u);  // the corrupt range was excised
  }
  // The sidecar records the incident; fsck stays unhealthy until a human
  // acknowledges by deleting it.
  EXPECT_FALSE(ResultStore::fsck(path).healthy());
  std::remove(ResultStore::quarantine_path_for(path).c_str());
  EXPECT_TRUE(ResultStore::fsck(path).healthy());
  // The excision is durable: a fresh open sees a clean two-row store.
  ResultStore again(path);
  EXPECT_EQ(again.size(), 2u);
  EXPECT_EQ(again.stats().quarantined_new_incidents, 0u);
  remove_store_files(path);
}

TEST(ResultStoreTest, ExplicitCompactionDropsDeadRecords) {
  const std::string path = "test_store_rs_compact.store";
  remove_store_files(path);
  StoreOptions opts;
  opts.auto_compact = false;
  ResultStore store(path, opts);
  for (int i = 0; i < 10; ++i) store.put(kFp, kScale, row("C1", "bfs", 1.0 + i));
  store.put(kFp, kScale, row("C2", "kmeans", 42.0));
  const std::uint64_t before = store.stats().file_bytes;
  store.compact();
  const StoreStats st = store.stats();
  EXPECT_LT(st.file_bytes, before);
  EXPECT_EQ(st.applied_records, 2u);
  EXPECT_EQ(st.dead_records, 0u);
  EXPECT_EQ(st.compactions, 1u);
  EXPECT_EQ(store.get(kFp, kScale, "C1", "bfs")->ipc, 10.0);  // last write won
  EXPECT_EQ(store.get(kFp, kScale, "C2", "kmeans")->ipc, 42.0);
  remove_store_files(path);
}

TEST(ResultStoreTest, AutoCompactionFiresWhenDeadRecordsDominate) {
  const std::string path = "test_store_rs_autocompact.store";
  remove_store_files(path);
  StoreOptions opts;
  opts.compact_min_records = 8;
  ResultStore store(path, opts);
  for (int i = 0; i < 20; ++i) store.put(kFp, kScale, row("C1", "bfs", 1.0 + i));
  const StoreStats st = store.stats();
  EXPECT_GE(st.compactions, 1u);
  EXPECT_LE(st.dead_records, 8u);  // the log never drowns in dead records
  EXPECT_EQ(store.get(kFp, kScale, "C1", "bfs")->ipc, 20.0);
  remove_store_files(path);
}

TEST(ResultStoreTest, RefreshFoldsInAnotherHandlesAppends) {
  const std::string path = "test_store_rs_refresh.store";
  remove_store_files(path);
  ResultStore reader(path);
  ResultStore writer(path);
  writer.put(kFp, kScale, row("C1", "bfs", 7.0));
  EXPECT_FALSE(reader.get(kFp, kScale, "C1", "bfs").has_value());  // snapshot
  reader.refresh();
  ASSERT_TRUE(reader.get(kFp, kScale, "C1", "bfs").has_value());
  EXPECT_EQ(reader.get(kFp, kScale, "C1", "bfs")->ipc, 7.0);
  remove_store_files(path);
}

TEST(ResultStoreTest, RefreshSurvivesAnotherHandlesCompaction) {
  const std::string path = "test_store_rs_replace.store";
  remove_store_files(path);
  StoreOptions no_auto;
  no_auto.auto_compact = false;
  ResultStore reader(path);
  ResultStore writer(path, no_auto);
  for (int i = 0; i < 5; ++i) writer.put(kFp, kScale, row("C1", "bfs", 1.0 + i));
  writer.compact();  // renames a fresh inode over the log
  writer.put(kFp, kScale, row("C2", "kmeans", 9.0));
  reader.refresh();  // must notice the replaced file, not tail the dead inode
  EXPECT_EQ(reader.size(), 2u);
  EXPECT_EQ(reader.get(kFp, kScale, "C1", "bfs")->ipc, 5.0);
  EXPECT_EQ(reader.get(kFp, kScale, "C2", "kmeans")->ipc, 9.0);
  remove_store_files(path);
}

TEST(ResultStoreTest, RowsForSortsByArchThenBenchmark) {
  const std::string path = "test_store_rs_rowsfor.store";
  remove_store_files(path);
  ResultStore store(path);
  store.put(kFp, kScale, row("C2", "bfs", 3.0));
  store.put(kFp, kScale, row("C1", "kmeans", 2.0));
  store.put(kFp, kScale, row("C1", "bfs", 1.0));
  store.put(kFp + 1, kScale, row("C9", "other-group", 9.0));
  const std::vector<ResultRow> rows = store.rows_for(kFp, kScale);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].arch, "C1");
  EXPECT_EQ(rows[0].benchmark, "bfs");
  EXPECT_EQ(rows[1].arch, "C1");
  EXPECT_EQ(rows[1].benchmark, "kmeans");
  EXPECT_EQ(rows[2].arch, "C2");
  EXPECT_TRUE(store.rows_for(kFp + 2, kScale).empty());
  remove_store_files(path);
}

TEST(ResultStoreTest, NewerFormatVersionIsRefusedOnOpen) {
  const std::string path = "test_store_rs_version.store";
  remove_store_files(path);
  std::ofstream(path, std::ios::trunc | std::ios::binary)
      << frame_record("meta sttgpu-store v99");
  EXPECT_THROW(ResultStore{path}, SimError);
  remove_store_files(path);
}

TEST(ResultStoreTest, PutRejectsKeyTokensThatWouldCorruptThePayload) {
  const std::string path = "test_store_rs_tokens.store";
  remove_store_files(path);
  ResultStore store(path);
  ResultRow bad = row("C 1", "bfs", 1.0);
  EXPECT_THROW(store.put(kFp, kScale, bad), SimError);
  bad = row("C1", "b\tfs", 1.0);
  EXPECT_THROW(store.put(kFp, kScale, bad), SimError);
  EXPECT_EQ(store.size(), 0u);
  remove_store_files(path);
}

TEST(ResultStoreTest, FsckOnMissingStoreReportsAbsentWithoutCreatingIt) {
  const std::string path = "test_store_rs_missing.store";
  remove_store_files(path);
  const FsckReport r = ResultStore::fsck(path);
  EXPECT_FALSE(r.present);
  EXPECT_TRUE(r.healthy());
  EXPECT_FALSE(std::ifstream(path).good());  // fsck must not create the file
  remove_store_files(path);
}

}  // namespace
}  // namespace sttgpu::store
