#include "workload/pattern.hpp"

#include <gtest/gtest.h>

namespace sttgpu::workload {
namespace {

constexpr Addr kBase = 0x1000'0000;

AccessPatternSpec spec(PatternKind kind) {
  AccessPatternSpec s;
  s.kind = kind;
  s.footprint_bytes = 1 << 20;
  s.wws_lines = 64;
  return s;
}

TEST(Pattern, MainAddressesStayInFootprint) {
  for (const auto kind : {PatternKind::kStreaming, PatternKind::kTiled, PatternKind::kRandom}) {
    const AccessPatternSpec s = spec(kind);
    AddressGenerator gen(s, kBase, 3, 64, 42);
    Rng rng(1);
    for (int i = 0; i < 2000; ++i) {
      const Addr a = gen.next_main_addr(rng, i % 3 == 0);
      EXPECT_GE(a, kBase);
      EXPECT_LT(a, kBase + s.footprint_bytes);
      EXPECT_EQ(a % 128, 0u) << "transaction-aligned";
    }
  }
}

TEST(Pattern, WwsAddressesLandInWwsRegion) {
  const AccessPatternSpec s = spec(PatternKind::kRandom);
  AddressGenerator gen(s, kBase, 0, 64, 42);
  Rng rng(2);
  const Addr wws_base = gen.wws_base();
  EXPECT_GE(wws_base, kBase + s.footprint_bytes);
  for (int i = 0; i < 2000; ++i) {
    const Addr a = gen.next_wws_addr(rng);
    EXPECT_GE(a, wws_base);
    EXPECT_LT(a, wws_base + s.wws_lines * 256);
  }
}

TEST(Pattern, WwsIsSkewed) {
  const AccessPatternSpec s = spec(PatternKind::kRandom);
  AddressGenerator gen(s, kBase, 0, 64, 42);
  Rng rng(3);
  std::map<Addr, int> counts;
  for (int i = 0; i < 20000; ++i) counts[gen.next_wws_addr(rng)]++;
  // The hottest line receives far more than the uniform share.
  int max_count = 0;
  for (const auto& [a, c] : counts) max_count = std::max(max_count, c);
  EXPECT_GT(max_count, 3 * 20000 / 64);
}

TEST(Pattern, StreamingWalksSequentially) {
  AccessPatternSpec s = spec(PatternKind::kStreaming);
  AddressGenerator gen(s, kBase, 0, 4, 42);
  Rng rng(4);
  const Addr a0 = gen.next_main_addr(rng, false);
  const Addr a1 = gen.next_main_addr(rng, false);
  const Addr a2 = gen.next_main_addr(rng, false);
  EXPECT_EQ(a1, a0 + 128);
  EXPECT_EQ(a2, a1 + 128);
}

TEST(Pattern, StreamingWarpsPartitionTheArray) {
  AccessPatternSpec s = spec(PatternKind::kStreaming);
  AddressGenerator g0(s, kBase, 0, 4, 42);
  AddressGenerator g1(s, kBase, 1, 4, 42);
  Rng rng(5);
  const Addr a0 = g0.next_main_addr(rng, false);
  const Addr a1 = g1.next_main_addr(rng, false);
  EXPECT_EQ(a1 - a0, s.footprint_bytes / 4);
}

TEST(Pattern, ReuseReturnsRememberedLines) {
  AccessPatternSpec s = spec(PatternKind::kRandom);
  s.reuse_fraction = 1.0;  // always reuse when possible
  s.reuse_window = 1;      // a single slot, so the remembered line is chosen
  AddressGenerator gen(s, kBase, 0, 4, 42);
  Rng rng(6);
  Addr out = 0;
  EXPECT_FALSE(gen.try_reuse(rng, &out));  // nothing remembered yet
  gen.remember(0xABC00);
  ASSERT_TRUE(gen.try_reuse(rng, &out));
  EXPECT_EQ(out, 0xABC00u);
}

TEST(Pattern, ConstAndTextureRegionsAreDisjointFromData) {
  const AccessPatternSpec s = spec(PatternKind::kRandom);
  AddressGenerator gen(s, kBase, 0, 4, 42);
  Rng rng(7);
  for (int i = 0; i < 500; ++i) {
    const Addr c = gen.next_const_addr(rng);
    const Addr t = gen.next_texture_addr(rng);
    EXPECT_GE(c, kBase + s.footprint_bytes);
    EXPECT_GT(t, c);  // texture region lies above the constant region
  }
}

TEST(Pattern, RejectsDegenerateFootprint) {
  AccessPatternSpec s = spec(PatternKind::kRandom);
  s.footprint_bytes = 16;
  EXPECT_THROW(AddressGenerator(s, kBase, 0, 4, 42), SimError);
}

TEST(Pattern, HotStoreDecisionRespectsFraction) {
  AccessPatternSpec s = spec(PatternKind::kRandom);
  s.hot_store_fraction = 0.0;
  AddressGenerator gen0(s, kBase, 0, 4, 42);
  Rng rng(8);
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(gen0.store_goes_hot(rng));

  s.hot_store_fraction = 1.0;
  AddressGenerator gen1(s, kBase, 0, 4, 42);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(gen1.store_goes_hot(rng));

  s.wws_lines = 0;  // no WWS region => never hot
  AddressGenerator gen2(s, kBase, 0, 4, 42);
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(gen2.store_goes_hot(rng));
}

}  // namespace
}  // namespace sttgpu::workload
