#include "cache/write_stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace sttgpu::cache {
namespace {

TEST(WriteStats, RejectsEmptyGeometry) {
  EXPECT_THROW(WriteVariationTracker(0, 4), SimError);
  EXPECT_THROW(WriteVariationTracker(4, 0), SimError);
}

TEST(WriteStats, UniformWritesHaveZeroVariation) {
  WriteVariationTracker t(8, 4);
  for (std::uint64_t s = 0; s < 8; ++s) {
    for (unsigned w = 0; w < 4; ++w) t.record_write(s, w);
  }
  EXPECT_DOUBLE_EQ(t.inter_set_cov(), 0.0);
  EXPECT_DOUBLE_EQ(t.intra_set_cov(), 0.0);
  EXPECT_EQ(t.total_writes(), 32u);
}

TEST(WriteStats, HotSetDrivesInterSetCov) {
  WriteVariationTracker t(4, 2);
  for (int i = 0; i < 100; ++i) t.record_write(0, 0);
  // One hot set among four: inter-set COV = sqrt(3).
  EXPECT_NEAR(t.inter_set_cov(), std::sqrt(3.0), 1e-9);
  // Within the hot set, one hot way of two: per-set COV = 1 (only written
  // sets count).
  EXPECT_NEAR(t.intra_set_cov(), 1.0, 1e-9);
}

TEST(WriteStats, IntraSetIgnoresUntouchedSets) {
  WriteVariationTracker t(16, 4);
  // Only set 3 sees traffic, spread evenly over its ways.
  for (unsigned w = 0; w < 4; ++w) t.record_write(3, w);
  EXPECT_DOUBLE_EQ(t.intra_set_cov(), 0.0);
  EXPECT_GT(t.inter_set_cov(), 0.0);
}

TEST(WriteStats, AccessorsAndReset) {
  WriteVariationTracker t(2, 2);
  t.record_write(1, 0);
  t.record_write(1, 0);
  EXPECT_EQ(t.set_writes(1), 2u);
  EXPECT_EQ(t.way_writes(1, 0), 2u);
  EXPECT_EQ(t.way_writes(1, 1), 0u);
  t.reset();
  EXPECT_EQ(t.total_writes(), 0u);
  EXPECT_EQ(t.set_writes(1), 0u);
}

TEST(WriteStats, SkewedTrafficBeatsUniformTraffic) {
  // Property: Zipf-skewed write placement produces higher COV than uniform.
  WriteVariationTracker uniform(64, 8), skewed(64, 8);
  Rng rng(5);
  ZipfSampler zipf(64, 1.2);
  for (int i = 0; i < 20000; ++i) {
    uniform.record_write(rng.next_below(64), static_cast<unsigned>(rng.next_below(8)));
    skewed.record_write(zipf.sample(rng), static_cast<unsigned>(rng.next_below(8)));
  }
  EXPECT_GT(skewed.inter_set_cov(), 3.0 * uniform.inter_set_cov());
}

}  // namespace
}  // namespace sttgpu::cache
