#include "store/wal.hpp"

#include <gtest/gtest.h>

#include <fcntl.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace sttgpu::store {
namespace {

struct Scan {
  WalScanReport report;
  std::vector<std::pair<std::uint64_t, std::string>> records;
  std::vector<std::pair<std::uint64_t, std::string>> corrupt;
};

Scan scan(std::string_view buf, std::uint64_t base = 0) {
  Scan s;
  s.report = scan_wal_buffer(
      buf, base,
      [&s](std::uint64_t off, std::string_view p) { s.records.emplace_back(off, std::string(p)); },
      [&s](std::uint64_t off, std::string_view p) { s.corrupt.emplace_back(off, std::string(p)); });
  return s;
}

TEST(StoreWal, FrameLayoutIsMagicLenCrcPayload) {
  const std::string f = frame_record("hello");
  ASSERT_EQ(f.size(), kWalHeaderBytes + 5);
  EXPECT_EQ(f.substr(0, 4), "STR1");
  EXPECT_EQ(static_cast<unsigned char>(f[4]), 5u);  // little-endian length
  EXPECT_EQ(f.substr(kWalHeaderBytes), "hello");
}

TEST(StoreWal, FrameRecordRejectsEmptyAndOversizedPayloads) {
  EXPECT_THROW(frame_record(""), SimError);
  EXPECT_THROW(frame_record(std::string(kWalMaxPayload + 1, 'x')), SimError);
  EXPECT_NO_THROW(frame_record(std::string(kWalMaxPayload, 'x')));
}

TEST(StoreWal, ScanWalksCleanBuffer) {
  const std::string buf = frame_record("one") + frame_record("two") + frame_record("three");
  const Scan s = scan(buf);
  EXPECT_TRUE(s.report.clean());
  EXPECT_EQ(s.report.records, 3u);
  EXPECT_EQ(s.report.scanned_end, buf.size());
  ASSERT_EQ(s.records.size(), 3u);
  EXPECT_EQ(s.records[0].second, "one");
  EXPECT_EQ(s.records[1].first, frame_record("one").size());
  EXPECT_EQ(s.records[2].second, "three");
}

TEST(StoreWal, EmptyBufferIsClean) {
  const Scan s = scan("");
  EXPECT_TRUE(s.report.clean());
  EXPECT_EQ(s.report.records, 0u);
}

TEST(StoreWal, TornTailAtEveryTruncationOffsetIsDetected) {
  // A crash can cut the last append at ANY byte. Every proper prefix of a
  // trailing frame must classify as torn — never corrupt, never valid.
  const std::string head = frame_record("durable");
  const std::string tail = frame_record("in-flight record");
  for (std::size_t cut = 0; cut < tail.size(); ++cut) {
    const std::string buf = head + tail.substr(0, cut);
    const Scan s = scan(buf);
    EXPECT_EQ(s.report.records, 1u) << "cut=" << cut;
    EXPECT_EQ(s.report.corrupt_ranges, 0u) << "cut=" << cut;
    EXPECT_EQ(s.report.torn_tail, cut != 0) << "cut=" << cut;
    if (cut != 0) EXPECT_EQ(s.report.torn_bytes, cut) << "cut=" << cut;
    EXPECT_EQ(s.report.scanned_end, head.size()) << "cut=" << cut;
  }
}

TEST(StoreWal, BitRotInOneFrameDoesNotTakeDownItsNeighbours) {
  const std::string f1 = frame_record("first");
  const std::string f2 = frame_record("second");
  const std::string f3 = frame_record("third");
  std::string buf = f1 + f2 + f3;
  buf[f1.size() + kWalHeaderBytes] ^= 0x40;  // flip a payload bit in frame 2
  const Scan s = scan(buf);
  EXPECT_EQ(s.report.records, 2u);
  EXPECT_EQ(s.report.corrupt_ranges, 1u);
  EXPECT_EQ(s.report.corrupt_bytes, f2.size());
  ASSERT_EQ(s.records.size(), 2u);
  EXPECT_EQ(s.records[0].second, "first");
  EXPECT_EQ(s.records[1].second, "third");
  ASSERT_EQ(s.corrupt.size(), 1u);
  EXPECT_EQ(s.corrupt[0].first, f1.size());
  EXPECT_EQ(s.corrupt[0].second.size(), f2.size());
  EXPECT_FALSE(s.report.torn_tail);
}

TEST(StoreWal, GarbageBetweenFramesResyncsToNextVerifiableFrame) {
  const std::string f1 = frame_record("keep-a");
  const std::string f2 = frame_record("keep-b");
  const std::string buf = f1 + "GARBAGE-NOT-A-FRAME" + f2;
  const Scan s = scan(buf);
  EXPECT_EQ(s.report.records, 2u);
  EXPECT_EQ(s.report.corrupt_ranges, 1u);
  ASSERT_EQ(s.corrupt.size(), 1u);
  EXPECT_EQ(s.corrupt[0].second, "GARBAGE-NOT-A-FRAME");
  EXPECT_EQ(s.report.scanned_end, buf.size());
}

TEST(StoreWal, StrayMagicInsideGarbageDoesNotFoolTheResync) {
  // The resync demands a verifiable candidate frame, so corrupt bytes that
  // happen to contain "STR1" are still one quarantined range.
  const std::string f1 = frame_record("ok");
  const std::string junk = "xxSTR1xxxxxxxxxxxxxxxx";  // magic + absurd header
  const std::string f2 = frame_record("also-ok");
  const Scan s = scan(f1 + junk + f2);
  EXPECT_EQ(s.report.records, 2u);
  EXPECT_EQ(s.report.corrupt_ranges, 1u);
  ASSERT_EQ(s.corrupt.size(), 1u);
  EXPECT_EQ(s.corrupt[0].second, junk);
}

TEST(StoreWal, BaseOffsetShiftsReportedOffsets) {
  const std::string f = frame_record("tailrec");
  const Scan s = scan(f, 4096);
  ASSERT_EQ(s.records.size(), 1u);
  EXPECT_EQ(s.records[0].first, 4096u);
  EXPECT_EQ(s.report.scanned_end, 4096u + f.size());
}

TEST(StoreWal, AppendedFramesScanBackVerbatim) {
  const std::string path = "test_store_wal_append.bin";
  std::remove(path.c_str());
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  ASSERT_GE(fd, 0);
  wal_append(fd, frame_record("alpha"), path);
  wal_append(fd, frame_record("beta") + frame_record("gamma"), path);
  ::close(fd);
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  const Scan s = scan(os.str());
  EXPECT_TRUE(s.report.clean());
  ASSERT_EQ(s.records.size(), 3u);
  EXPECT_EQ(s.records[0].second, "alpha");
  EXPECT_EQ(s.records[1].second, "beta");
  EXPECT_EQ(s.records[2].second, "gamma");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace sttgpu::store
