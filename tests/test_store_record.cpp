#include "store/record.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "common/error.hpp"

namespace sttgpu::store {
namespace {

ResultRow sample_row() {
  ResultRow r;
  r.arch = "C1";
  r.benchmark = "bfs";
  r.ipc = 1.0 / 3.0;  // needs all 17 digits to round-trip exactly
  r.cycles = 123456789;
  r.dynamic_w = 0.5;
  r.leakage_w = 0.1;
  r.total_w = 0.6;
  r.write_share = 0.4;
  r.miss_rate = 0.2;
  return r;
}

TEST(StoreRecord, ScaleTextRoundTripsExactly) {
  for (const double s : {0.04, 0.5, 1.0, 1.0 / 3.0, 0.123456789012345}) {
    EXPECT_EQ(std::strtod(scale_text(s).c_str(), nullptr), s) << scale_text(s);
  }
}

TEST(StoreRecord, FingerprintHexMatchesCsvHeaderSpelling) {
  // The checked-in fig8 cache spells its fingerprint exactly like this.
  EXPECT_EQ(fingerprint_hex(0xd180d94558f98587ull), "d180d94558f98587");
  EXPECT_EQ(fingerprint_hex(0x0ull), "0");
  EXPECT_EQ(fingerprint_hex(0xABCDEFull), "abcdef");
}

TEST(StoreRecord, StoreKeyConcatenatesTokens) {
  EXPECT_EQ(store_key(0xff, "0.5", "C1", "bfs"), "ff 0.5 C1 bfs");
}

TEST(StoreRecord, ValidateKeyTokenRejectsUnsafeValues) {
  validate_key_token("arch", "C1");  // fine
  validate_key_token("benchmark", "two-part_v2.1");
  EXPECT_THROW(validate_key_token("arch", ""), SimError);
  EXPECT_THROW(validate_key_token("arch", "a b"), SimError);
  EXPECT_THROW(validate_key_token("arch", "a\tb"), SimError);
  EXPECT_THROW(validate_key_token("arch", "a\nb"), SimError);
  EXPECT_THROW(validate_key_token("arch", std::string("a\x01") + "b"), SimError);
}

TEST(StoreRecord, MetaRecordVersionGate) {
  EXPECT_TRUE(is_meta(kMetaPayload));
  EXPECT_TRUE(meta_supported(kMetaPayload));
  EXPECT_TRUE(is_meta("meta sttgpu-store v99"));
  EXPECT_FALSE(meta_supported("meta sttgpu-store v99"));
  EXPECT_FALSE(is_meta("put ff 0.5 C1 bfs 1 2 3 4 5 6 7"));
}

TEST(StoreRecord, EncodeDecodeRoundTripsEveryField) {
  const ResultRow row = sample_row();
  const std::uint64_t fp = 0xd180d94558f98587ull;
  const std::string payload = encode_put(fp, 0.04, row);
  const auto dec = decode_put(payload);
  ASSERT_TRUE(dec.has_value());
  EXPECT_EQ(dec->fingerprint, fp);
  EXPECT_EQ(dec->scale17, scale_text(0.04));
  EXPECT_EQ(dec->row.arch, row.arch);
  EXPECT_EQ(dec->row.benchmark, row.benchmark);
  EXPECT_EQ(dec->row.ipc, row.ipc);
  EXPECT_EQ(dec->row.cycles, row.cycles);
  EXPECT_EQ(dec->row.dynamic_w, row.dynamic_w);
  EXPECT_EQ(dec->row.leakage_w, row.leakage_w);
  EXPECT_EQ(dec->row.total_w, row.total_w);
  EXPECT_EQ(dec->row.write_share, row.write_share);
  EXPECT_EQ(dec->row.miss_rate, row.miss_rate);
  // Re-encoding the decoded record (compaction's path) is byte-identical.
  EXPECT_EQ(encode_put(dec->fingerprint, dec->scale17, dec->row), payload);
}

TEST(StoreRecord, DecodeRejectsMalformedPayloads) {
  const std::string good = encode_put(0xff, 0.5, sample_row());
  ASSERT_TRUE(decode_put(good).has_value());
  EXPECT_FALSE(decode_put("").has_value());
  EXPECT_FALSE(decode_put("get ff 0.5 C1 bfs").has_value());
  EXPECT_FALSE(decode_put(good + " extra").has_value());          // trailing junk
  EXPECT_FALSE(decode_put(good.substr(0, good.rfind(' '))).has_value());  // short
  EXPECT_FALSE(decode_put("put zz 0.5 C1 bfs 1 2 3 4 5 6 7").has_value());  // bad hex
  EXPECT_FALSE(decode_put("put ff 0.5 C1 bfs x 2 3 4 5 6 7").has_value());  // bad num
  EXPECT_FALSE(decode_put("put ff 0.5 C1 bfs 1 2.5 3 4 5 6 7").has_value());  // cycles
}

}  // namespace
}  // namespace sttgpu::store
