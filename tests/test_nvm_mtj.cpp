#include "nvm/mtj.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "nvm/cell.hpp"

namespace sttgpu::nvm {
namespace {

TEST(Mtj, RetentionIsNeelArrhenius) {
  MtjModel mtj;
  // tau0 * e^delta with tau0 = 1ns.
  EXPECT_NEAR(mtj.retention_seconds(0.0), 1e-9, 1e-15);
  EXPECT_NEAR(mtj.retention_seconds(10.185), 26.5e-6, 0.5e-6);
  EXPECT_NEAR(mtj.retention_seconds(17.504), 40e-3, 1e-3);
}

TEST(Mtj, DeltaForRetentionIsInverse) {
  MtjModel mtj;
  for (const double ret : {1e-6, 26.5e-6, 40e-3, 1.0, 3.156e8}) {
    const double delta = mtj.delta_for_retention(ret);
    EXPECT_NEAR(mtj.retention_seconds(delta), ret, ret * 1e-9);
  }
}

TEST(Mtj, DeltaForRetentionRejectsNonPositive) {
  MtjModel mtj;
  EXPECT_THROW(mtj.delta_for_retention(0.0), SimError);
  EXPECT_THROW(mtj.delta_for_retention(-1.0), SimError);
}

TEST(Mtj, AnchorsReproduced) {
  MtjModel mtj;
  EXPECT_NEAR(mtj.write_pulse_ns(10.185), 2.3, 1e-9);
  EXPECT_NEAR(mtj.write_pulse_ns(17.504), 5.0, 1e-9);
  EXPECT_NEAR(mtj.write_pulse_ns(40.293), 10.0, 1e-9);
  EXPECT_NEAR(mtj.write_energy_nj_per_line(10.185), 0.19, 1e-9);
  EXPECT_NEAR(mtj.write_energy_nj_per_line(40.293), 1.45, 1e-9);
}

// The paper's Table 1 trend: write cost is monotone non-decreasing in delta
// (i.e. in retention). Property-swept over the whole range.
class MtjMonotone : public ::testing::TestWithParam<double> {};

TEST_P(MtjMonotone, WriteCostMonotone) {
  MtjModel mtj;
  const double delta = GetParam();
  const double next = delta + 0.5;
  EXPECT_LE(mtj.write_pulse_ns(delta), mtj.write_pulse_ns(next) + 1e-12);
  EXPECT_LE(mtj.write_energy_nj_per_line(delta),
            mtj.write_energy_nj_per_line(next) + 1e-12);
  EXPECT_GT(mtj.write_pulse_ns(delta), 0.0);
  EXPECT_GT(mtj.write_energy_nj_per_line(delta), 0.0);
}

INSTANTIATE_TEST_SUITE_P(DeltaSweep, MtjMonotone,
                         ::testing::Values(5.0, 8.0, 10.185, 12.0, 15.0, 17.504, 20.0,
                                           25.0, 30.0, 35.0, 40.293, 45.0));

TEST(Mtj, FailureProbabilityBoundsAndMonotonicity) {
  MtjModel mtj;
  const double delta = 10.185;  // 26.5us retention
  EXPECT_DOUBLE_EQ(mtj.failure_probability(delta, 0.0), 0.0);
  double prev = 0.0;
  for (double t = 1e-6; t < 1e-3; t *= 3) {
    const double p = mtj.failure_probability(delta, t);
    EXPECT_GE(p, prev);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
    prev = p;
  }
  // Far beyond retention the data is almost surely gone.
  EXPECT_GT(mtj.failure_probability(delta, 1.0), 0.999);
  // A 10-year cell over a 1ms horizon is safe.
  EXPECT_LT(mtj.failure_probability(40.293, 1e-3), 1e-9);
}

TEST(Mtj, CustomAnchorsValidated) {
  EXPECT_THROW(MtjModel({{10.0, 2.0, 0.2}}), SimError);  // too few
  EXPECT_THROW(MtjModel({{10.0, 2.0, 0.2}, {9.0, 3.0, 0.3}}), SimError);  // unsorted
  EXPECT_THROW(MtjModel({{10.0, 5.0, 0.2}, {20.0, 3.0, 0.3}}), SimError);  // non-monotone
  EXPECT_NO_THROW(MtjModel({{10.0, 2.0, 0.2}, {20.0, 3.0, 0.3}}));
}

TEST(Mtj, ExtrapolationStaysPositive) {
  MtjModel mtj;
  EXPECT_GT(mtj.write_pulse_ns(1.0), 0.0);
  EXPECT_GT(mtj.write_energy_nj_per_line(1.0), 0.0);
  EXPECT_GT(mtj.write_pulse_ns(60.0), mtj.write_pulse_ns(40.293));
}

}  // namespace
}  // namespace sttgpu::nvm
