#include "common/types.hpp"

#include <gtest/gtest.h>

namespace sttgpu {
namespace {

TEST(Types, IsPow2) {
  EXPECT_FALSE(is_pow2(0));
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_TRUE(is_pow2(1ull << 40));
  EXPECT_FALSE(is_pow2((1ull << 40) + 1));
}

TEST(Types, Log2Floor) {
  EXPECT_EQ(log2_floor(1), 0u);
  EXPECT_EQ(log2_floor(2), 1u);
  EXPECT_EQ(log2_floor(3), 1u);
  EXPECT_EQ(log2_floor(1024), 10u);
  EXPECT_EQ(log2_floor(1ull << 63), 63u);
}

TEST(Types, Log2ExactMatchesPowersOfTwo) {
  for (unsigned i = 0; i < 64; ++i) {
    EXPECT_EQ(log2_exact(std::uint64_t{1} << i), i);
  }
}

TEST(Types, AlignDownUp) {
  EXPECT_EQ(align_down(1000, 256), 768u);
  EXPECT_EQ(align_up(1000, 256), 1024u);
  EXPECT_EQ(align_down(1024, 256), 1024u);
  EXPECT_EQ(align_up(1024, 256), 1024u);
  EXPECT_EQ(align_down(0, 64), 0u);
}

// Property: align_down <= v <= align_up, both multiples of the alignment.
class AlignProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AlignProperty, Brackets) {
  const std::uint64_t align = GetParam();
  for (std::uint64_t v = 0; v < 4 * align; v += align / 4 + 1) {
    const std::uint64_t down = align_down(v, align);
    const std::uint64_t up = align_up(v, align);
    EXPECT_LE(down, v);
    EXPECT_GE(up, v);
    EXPECT_EQ(down % align, 0u);
    EXPECT_EQ(up % align, 0u);
    EXPECT_LE(up - down, align);
  }
}

INSTANTIATE_TEST_SUITE_P(Alignments, AlignProperty,
                         ::testing::Values(2, 64, 128, 256, 4096));

TEST(Types, CeilDiv) {
  EXPECT_EQ(ceil_div(0, 4), 0u);
  EXPECT_EQ(ceil_div(1, 4), 1u);
  EXPECT_EQ(ceil_div(4, 4), 1u);
  EXPECT_EQ(ceil_div(5, 4), 2u);
  EXPECT_EQ(ceil_div(1000, 7), 143u);
}

}  // namespace
}  // namespace sttgpu
