#include <gtest/gtest.h>

#include "sttl2/two_part_bank.hpp"

namespace sttgpu::sttl2 {
namespace {

TEST(BufferWindow, EmptyIsNotFull) {
  BufferWindow buf(2);
  EXPECT_FALSE(buf.full(0));
  EXPECT_EQ(buf.in_use(0), 0u);
  EXPECT_EQ(buf.capacity(), 2u);
}

TEST(BufferWindow, FillsToCapacity) {
  BufferWindow buf(2);
  buf.add(100);
  EXPECT_FALSE(buf.full(0));
  buf.add(200);
  EXPECT_TRUE(buf.full(0));
  EXPECT_EQ(buf.in_use(0), 2u);
}

TEST(BufferWindow, EntriesExpireWhenTheirMoveCompletes) {
  BufferWindow buf(1);
  buf.add(50);
  EXPECT_TRUE(buf.full(10));
  EXPECT_TRUE(buf.full(49));
  EXPECT_FALSE(buf.full(50));  // completion at 50 frees the slot
  EXPECT_EQ(buf.in_use(51), 0u);
}

TEST(BufferWindow, MixedCompletionTimes) {
  BufferWindow buf(3);
  buf.add(10);
  buf.add(30);
  buf.add(20);
  EXPECT_EQ(buf.in_use(5), 3u);
  EXPECT_EQ(buf.in_use(15), 2u);
  EXPECT_EQ(buf.in_use(25), 1u);
  EXPECT_EQ(buf.in_use(35), 0u);
}

}  // namespace
}  // namespace sttgpu::sttl2
