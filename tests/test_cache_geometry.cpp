#include "cache/geometry.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace sttgpu::cache {
namespace {

TEST(Geometry, RejectsInvalidParameters) {
  EXPECT_THROW(CacheGeometry(0, 8, 256), SimError);
  EXPECT_THROW(CacheGeometry(64 * 1024, 0, 256), SimError);
  EXPECT_THROW(CacheGeometry(64 * 1024, 8, 100), SimError);        // non-pow2 line
  EXPECT_THROW(CacheGeometry(64 * 1024 + 3, 8, 256), SimError);    // not line multiple
  EXPECT_THROW(CacheGeometry(64 * 1024, 7, 256), SimError);        // 256 % 7 != 0
  EXPECT_THROW(CacheGeometry(256, 8, 256), SimError);              // assoc > lines
}

TEST(Geometry, BasicDerivation) {
  const CacheGeometry g(64 * 1024, 8, 256);
  EXPECT_EQ(g.num_sets(), 32u);
  EXPECT_EQ(g.num_lines(), 256u);
  EXPECT_EQ(g.offset_bits(), 8u);
  EXPECT_FALSE(g.fully_associative());
}

TEST(Geometry, SevenWayModuloMapping) {
  // 56KB 7-way 256B => 32 sets (pow2 sets even with odd assoc).
  const CacheGeometry g(56 * 1024, 7, 256);
  EXPECT_EQ(g.num_sets(), 32u);
  // 224KB 7-way => 128 sets.
  const CacheGeometry g2(224 * 1024, 7, 256);
  EXPECT_EQ(g2.num_sets(), 128u);
}

TEST(Geometry, NonPow2SetsUseModulo) {
  // 48KB 4-way 256B => 48 sets (not a power of two).
  const CacheGeometry g(48 * 1024, 4, 256);
  EXPECT_EQ(g.num_sets(), 48u);
  for (Addr a = 0; a < 1 << 20; a += 12345) {
    EXPECT_LT(g.set_index(a), 48u);
  }
}

TEST(Geometry, FullyAssociative) {
  const CacheGeometry g(8 * 1024, 32, 256);
  EXPECT_TRUE(g.fully_associative());
  EXPECT_EQ(g.num_sets(), 1u);
  EXPECT_EQ(g.set_index(0xdeadbeef), 0u);
}

TEST(Geometry, LineBase) {
  const CacheGeometry g(64 * 1024, 8, 256);
  EXPECT_EQ(g.line_base(0x1234), 0x1200u);
  EXPECT_EQ(g.line_base(0x1200), 0x1200u);
}

TEST(Geometry, TagRoundTrip) {
  const CacheGeometry g(64 * 1024, 8, 256);
  for (Addr a = 0; a < 1 << 22; a += 7777) {
    const Addr tag = g.tag_of(a);
    const Addr back = g.addr_of_tag(tag);
    EXPECT_EQ(g.line_base(a), back);
    EXPECT_EQ(g.set_index(back), g.set_index(a));
  }
}

// Property over shapes: same-line addresses share set+tag; consecutive lines
// map to consecutive sets (modulo).
class GeometryShapes
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, unsigned, unsigned>> {};

TEST_P(GeometryShapes, ConsistentIndexing) {
  const auto [bytes, assoc, line] = GetParam();
  const CacheGeometry g(bytes, assoc, line);
  for (Addr raw = 0; raw < 1 << 20; raw += 64 * 1024 - 128) {
    const Addr base = g.line_base(raw);
    const Addr a1 = base;
    const Addr a2 = base + line - 1;  // same line
    EXPECT_EQ(g.set_index(a1), g.set_index(a2));
    EXPECT_EQ(g.tag_of(a1), g.tag_of(a2));
    const Addr next_line = base + line;
    if (g.num_sets() > 1) {
      EXPECT_EQ(g.set_index(next_line), (g.set_index(a1) + 1) % g.num_sets());
    }
    EXPECT_NE(g.tag_of(next_line), g.tag_of(a1));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GeometryShapes,
    ::testing::Values(std::tuple<std::uint64_t, unsigned, unsigned>{16 * 1024, 4, 128},
                      std::tuple<std::uint64_t, unsigned, unsigned>{64 * 1024, 8, 256},
                      std::tuple<std::uint64_t, unsigned, unsigned>{56 * 1024, 7, 256},
                      std::tuple<std::uint64_t, unsigned, unsigned>{8 * 1024, 2, 256},
                      std::tuple<std::uint64_t, unsigned, unsigned>{12 * 1024, 4, 64}));

}  // namespace
}  // namespace sttgpu::cache
