// Tests for the interval-telemetry subsystem (common/telemetry.hpp) and
// its integration with the runner:
//   * sampling semantics (counter deltas, gauge carry-forward, misuse);
//   * telemetry is observational — aggregates byte-identical on vs. off;
//   * fastforward=0 and fastforward=1 produce the exact same series;
//   * Chrome trace export is valid JSON with non-decreasing timestamps;
//   * the declarative CLI knob registry (sim/knobs.hpp).
#include "common/telemetry.hpp"

#include <gtest/gtest.h>

#include <cctype>
#include <sstream>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/error.hpp"
#include "common/json.hpp"
#include "sim/knobs.hpp"
#include "sim/report.hpp"
#include "sim/runner.hpp"

namespace sttgpu::sim {
namespace {

// ---- sampling semantics ----

TEST(Telemetry, CounterDeltasAndGaugeCarryForward) {
  Telemetry tel(100);
  tel.begin_frame(100);
  tel.counter("c", 10);
  tel.gauge("g", 1.5);
  tel.end_frame();
  tel.begin_frame(200);
  tel.counter("c", 25);  // "g" is unsampled: carries forward
  tel.end_frame();

  ASSERT_EQ(tel.frame_count(), 2u);
  EXPECT_EQ(tel.frame_cycle(0), 100u);
  EXPECT_EQ(tel.frame_cycle(1), 200u);

  const std::size_t c = tel.find_track("c");
  const std::size_t g = tel.find_track("g");
  ASSERT_NE(c, Telemetry::npos);
  ASSERT_NE(g, Telemetry::npos);
  EXPECT_TRUE(tel.track_is_counter(c));
  EXPECT_FALSE(tel.track_is_counter(g));
  EXPECT_EQ(tel.track_deltas(c), (std::vector<double>{10.0, 15.0}));
  EXPECT_EQ(tel.track_samples(g), (std::vector<double>{1.5, 1.5}));
}

TEST(Telemetry, LateRegisteredTrackIsBackfilledWithZeros) {
  Telemetry tel(10);
  tel.begin_frame(10);
  tel.counter("a", 1);
  tel.end_frame();
  tel.begin_frame(20);
  tel.counter("a", 2);
  tel.counter("late", 7);
  tel.end_frame();
  const std::size_t late = tel.find_track("late");
  ASSERT_NE(late, Telemetry::npos);
  EXPECT_EQ(tel.track_samples(late), (std::vector<double>{0.0, 7.0}));
}

TEST(Telemetry, MisuseThrows) {
  EXPECT_THROW(Telemetry(0), SimError);
  Telemetry tel(10);
  EXPECT_THROW(tel.counter("c", 1), SimError);  // outside a frame
  tel.begin_frame(10);
  EXPECT_THROW(tel.begin_frame(20), SimError);  // nested frame
  tel.counter("c", 1);
  EXPECT_THROW(tel.counter("c", 2), SimError);  // sampled twice
  EXPECT_THROW(tel.gauge("c", 1.0), SimError);  // counter reused as gauge
  tel.end_frame();
  EXPECT_THROW(tel.begin_frame(10), SimError);  // not strictly increasing
  EXPECT_THROW(tel.slice("t", "s", 5, 4), SimError);
}

// ---- runner integration ----

constexpr double kScale = 0.05;
constexpr Cycle kInterval = 2000;

RunOptions with_telemetry(Telemetry& tel, bool fast_forward = true) {
  RunOptions opts;
  opts.telemetry = &tel;
  opts.fast_forward = fast_forward;
  return opts;
}

TEST(TelemetryRun, AggregatesAreIdenticalWithTelemetryOnAndOff) {
  const ArchSpec spec = make_arch(Architecture::kC1);
  const workload::Workload w = workload::make_benchmark("bfs", kScale);

  gpu::RunResult base_run;
  const Metrics base = run_one_detailed(spec, w, base_run);

  Telemetry tel(kInterval);
  gpu::RunResult tel_run;
  const Metrics m = run_one_detailed(spec, w, tel_run, with_telemetry(tel));

  EXPECT_EQ(base.cycles, m.cycles);
  EXPECT_EQ(base.ipc, m.ipc);
  EXPECT_EQ(base.total_w, m.total_w);
  EXPECT_EQ(base.l2_write_share, m.l2_write_share);
  EXPECT_EQ(base.l2_miss_rate, m.l2_miss_rate);
  EXPECT_EQ(base_run.l2_counters.all(), tel_run.l2_counters.all());
  EXPECT_EQ(base_run.l2_energy.categories(), tel_run.l2_energy.categories());

  // And the sink actually observed the run.
  EXPECT_GT(tel.frame_count(), 0u);
  EXPECT_GT(tel.track_count(), 0u);
  EXPECT_GE(tel.slice_count(), w.kernels.size());  // one slice per kernel
  EXPECT_NE(tel.find_track("sm0.instructions"), Telemetry::npos);
  EXPECT_NE(tel.find_track("l2b0.read_hits"), Telemetry::npos);
  EXPECT_NE(tel.find_track("l2b0.lr_occupancy"), Telemetry::npos);
  EXPECT_NE(tel.find_track("dram0.reads"), Telemetry::npos);
  EXPECT_NE(tel.find_track("icnt.request_flits"), Telemetry::npos);
}

TEST(TelemetryRun, SeriesIsIdenticalWithAndWithoutFastForward) {
  const ArchSpec spec = make_arch(Architecture::kC1);
  const workload::Workload w = workload::make_benchmark("hotspot", kScale);

  Telemetry ff(kInterval);
  Telemetry plain(kInterval);
  (void)run_one(spec, w, with_telemetry(ff, /*fast_forward=*/true));
  (void)run_one(spec, w, with_telemetry(plain, /*fast_forward=*/false));

  ASSERT_EQ(ff.frame_count(), plain.frame_count());
  ASSERT_EQ(ff.track_count(), plain.track_count());
  for (std::size_t f = 0; f < ff.frame_count(); ++f) {
    EXPECT_EQ(ff.frame_cycle(f), plain.frame_cycle(f));
  }
  for (std::size_t t = 0; t < ff.track_count(); ++t) {
    EXPECT_EQ(ff.track_name(t), plain.track_name(t));
    EXPECT_EQ(ff.track_samples(t), plain.track_samples(t)) << ff.track_name(t);
  }
  EXPECT_EQ(ff.slice_count(), plain.slice_count());
  EXPECT_EQ(ff.instant_count(), plain.instant_count());
}

TEST(TelemetryRun, FramesAreMonotonicAtTheConfiguredInterval) {
  const ArchSpec spec = make_arch(Architecture::kSramBaseline);
  const workload::Workload w = workload::make_benchmark("bfs", kScale);
  Telemetry tel(kInterval);
  const Metrics m = run_one(spec, w, with_telemetry(tel));

  ASSERT_GT(tel.frame_count(), 1u);
  for (std::size_t f = 0; f + 1 < tel.frame_count(); ++f) {
    EXPECT_EQ(tel.frame_cycle(f), kInterval * (f + 1));
    EXPECT_LT(tel.frame_cycle(f), tel.frame_cycle(f + 1));
  }
  // The final (possibly partial) frame lands exactly at the end of the run.
  EXPECT_EQ(tel.frame_cycle(tel.frame_count() - 1), m.cycles);

  // The interval series sums back to the whole-run aggregate.
  const std::size_t instr = tel.find_track("sm0.instructions");
  ASSERT_NE(instr, Telemetry::npos);
  double sum = 0.0;
  for (const double d : tel.track_deltas(instr)) sum += d;
  EXPECT_EQ(sum, tel.track_samples(instr).back());
}

TEST(TelemetryRun, MatrixRejectsASharedTelemetrySink) {
  Telemetry tel(kInterval);
  RunOptions opts;
  opts.scale = kScale;
  opts.telemetry = &tel;
  EXPECT_THROW(
      run_matrix({Architecture::kSramBaseline}, {std::string("bfs")}, opts), SimError);
}

// ---- exports ----

/// Minimal recursive-descent JSON validator — the repo only has a writer,
/// and the trace files must load in external viewers, so the test checks
/// grammar conformance rather than substring shape.
class JsonValidator {
 public:
  explicit JsonValidator(const std::string& text) : s_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }
  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E' || s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool literal(const char* word) {
    const std::size_t n = std::string(word).size();
    if (s_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }
  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) ++pos_;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

TEST(TelemetryExport, ChromeTraceIsValidJsonWithMonotonicTimestamps) {
  const ArchSpec spec = make_arch(Architecture::kC1);
  const workload::Workload w = workload::make_benchmark("bfs", kScale);
  Telemetry tel(kInterval);
  (void)run_one(spec, w, with_telemetry(tel));

  std::ostringstream os;
  tel.write_chrome_trace(os);
  const std::string trace = os.str();

  EXPECT_TRUE(JsonValidator(trace).valid()) << trace.substr(0, 200);
  EXPECT_NE(trace.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"C\""), std::string::npos);  // counter tracks
  EXPECT_NE(trace.find("\"ph\":\"X\""), std::string::npos);  // kernel slices

  // Trace viewers require events sorted by timestamp.
  double last_ts = -1.0;
  std::size_t n_ts = 0;
  for (std::size_t pos = trace.find("\"ts\":"); pos != std::string::npos;
       pos = trace.find("\"ts\":", pos + 1)) {
    const double ts = std::stod(trace.substr(pos + 5));
    EXPECT_GE(ts, last_ts);
    last_ts = ts;
    ++n_ts;
  }
  EXPECT_GT(n_ts, tel.frame_count());
}

TEST(TelemetryExport, CsvHasHeaderAndOneRowPerFrame) {
  Telemetry tel(100);
  tel.begin_frame(100);
  tel.counter("c", 4);
  tel.gauge("g", 0.5);
  tel.end_frame();
  tel.begin_frame(200);
  tel.counter("c", 6);
  tel.gauge("g", 0.25);
  tel.end_frame();

  std::ostringstream os;
  tel.write_csv(os);
  std::istringstream in(os.str());
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "cycle,c,g");
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "100,4,0.5");
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "200,2,0.25");  // counter column is the per-interval delta
  EXPECT_FALSE(std::getline(in, line));
}

TEST(TelemetryExport, RunJsonGainsTelemetryBlockOnlyWhenAttached) {
  const ArchSpec spec = make_arch(Architecture::kSramBaseline);
  const workload::Workload w = workload::make_benchmark("nw", kScale);

  gpu::RunResult base_run;
  const Metrics base = run_one_detailed(spec, w, base_run);
  std::ostringstream base_os;
  write_run_json(base_os, base, base_run);
  EXPECT_EQ(base_os.str().find("\"telemetry\""), std::string::npos);

  Telemetry tel(kInterval);
  gpu::RunResult tel_run;
  const Metrics m = run_one_detailed(spec, w, tel_run, with_telemetry(tel));
  std::ostringstream tel_os;
  write_run_json(tel_os, m, tel_run, nullptr, &tel);
  const std::string out = tel_os.str();
  EXPECT_NE(out.find("\"telemetry\":{\"interval\":"), std::string::npos);
  EXPECT_NE(out.find("\"counters\":{"), std::string::npos);
  EXPECT_TRUE(JsonValidator(out).valid());

  // With the sink attached but not passed to the writer, output matches the
  // baseline byte for byte (telemetry never leaks into the report).
  std::ostringstream silent_os;
  write_run_json(silent_os, m, tel_run);
  EXPECT_EQ(silent_os.str(), base_os.str());
}

// ---- CLI knob registry ----

TEST(Knobs, UnknownAndMistypedKnobsAreRejected) {
  Config typo;
  typo.set("fastfoward", "0");  // misspelled
  EXPECT_THROW(validate_knobs(typo, kKnobRun, "run"), SimError);

  Config wrong_cmd;
  wrong_cmd.set("jobs", "4");  // matrix-only knob
  EXPECT_THROW(validate_knobs(wrong_cmd, kKnobRun, "run"), SimError);

  Config bad_value;
  bad_value.set("scale", "fast");
  EXPECT_THROW(validate_knobs(bad_value, kKnobRun, "run"), SimError);

  Config ok;
  ok.set("scale", "0.25");
  ok.set("telemetry", "1");
  EXPECT_NO_THROW(validate_knobs(ok, kKnobRun, "run"));
}

TEST(Knobs, DefaultsResolvePerCommand) {
  const Config empty;
  EXPECT_EQ(knob_string(empty, kKnobRun, "arch"), "C1");
  EXPECT_EQ(knob_string(empty, kKnobRecord, "arch"), "sram");
  EXPECT_EQ(knob_string(empty, kKnobReplay, "arch"), "C1");
  EXPECT_DOUBLE_EQ(knob_double(empty, kKnobRun, "scale"), 0.5);
  EXPECT_EQ(knob_int(empty, kKnobMatrix, "jobs"), 0);
  EXPECT_TRUE(knob_bool(empty, kKnobRun, "fastforward"));
  EXPECT_FALSE(knob_bool(empty, kKnobRun, "telemetry"));
  EXPECT_EQ(knob_int(empty, kKnobRun, "interval"), 50000);
  EXPECT_EQ(knob_string(empty, kKnobRun, "trace_out"), "");

  Config set;
  set.set("interval", "1234");
  EXPECT_EQ(knob_int(set, kKnobRun, "interval"), 1234);
}

TEST(Knobs, UsageListsEveryRegisteredKnob) {
  const std::string usage = knob_usage();
  for (const KnobSpec& k : knob_registry()) {
    EXPECT_NE(usage.find(std::string(k.name) + "=<"), std::string::npos) << k.name;
  }
  for (const char* cmd : {"run:", "matrix:", "record:", "replay:"}) {
    EXPECT_NE(usage.find(cmd), std::string::npos) << cmd;
  }
}

TEST(Knobs, FaultKnobsBuildTheInjectorConfig) {
  Config cfg;
  cfg.set("faults", "1");
  cfg.set("fault_seed", "7");
  cfg.set("fault_accel", "2.5");
  cfg.set("ecc", "0");
  const sttl2::FaultInjectionConfig f = fault_knobs(cfg, kKnobRun);
  EXPECT_TRUE(f.enabled);
  EXPECT_EQ(f.seed, 7u);
  EXPECT_DOUBLE_EQ(f.accel, 2.5);
  EXPECT_FALSE(f.ecc);
}

}  // namespace
}  // namespace sttgpu::sim
