// simd::match_u64 equivalence tests: the vector path must agree bit-for-bit
// with a plain scalar reference over every lane count (including odd tails)
// and arbitrary key/lane contents — SIMD is a throughput lever, never a
// semantic one.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "common/simd.hpp"

namespace sttgpu::simd {
namespace {

std::uint64_t match_reference(const std::uint64_t* a, unsigned n, std::uint64_t key) {
  std::uint64_t m = 0;
  for (unsigned i = 0; i < n; ++i) {
    if (a[i] == key) m |= 1ull << i;
  }
  return m;
}

TEST(SimdMatch, EmptyAndSingle) {
  const std::uint64_t lanes[1] = {7};
  EXPECT_EQ(match_u64(lanes, 0, 7), 0u);
  EXPECT_EQ(match_u64(lanes, 1, 7), 1u);
  EXPECT_EQ(match_u64(lanes, 1, 8), 0u);
}

TEST(SimdMatch, KnownPattern) {
  const std::uint64_t lanes[8] = {5, 9, 5, 5, 0, 5, 1, 5};
  EXPECT_EQ(match_u64(lanes, 8, 5), 0b10101101u);
  EXPECT_EQ(match_u64(lanes, 8, 0), 0b00010000u);
  EXPECT_EQ(match_u64(lanes, 8, 2), 0u);
}

TEST(SimdMatch, OddTailLaneIsCovered) {
  // n odd forces the scalar tail after the 2-wide vector loop; the last lane
  // must still be compared.
  const std::uint64_t lanes[7] = {1, 2, 3, 4, 5, 6, 42};
  EXPECT_EQ(match_u64(lanes, 7, 42), 1ull << 6);
  EXPECT_EQ(match_u64(lanes, 6, 42), 0u);  // shorter n must not see lane 6
}

TEST(SimdMatch, AgreesWithScalarReferenceOverAllLaneCounts) {
  std::mt19937_64 rng(0xC0FFEEu);
  for (unsigned n = 0; n <= 64; ++n) {
    std::vector<std::uint64_t> lanes(n != 0 ? n : 1);
    for (unsigned trial = 0; trial < 50; ++trial) {
      // Draw from a small value alphabet so matches are frequent.
      for (auto& v : lanes) v = rng() % 8;
      const std::uint64_t key = rng() % 8;
      EXPECT_EQ(match_u64(lanes.data(), n, key), match_reference(lanes.data(), n, key))
          << "n=" << n << " key=" << key;
    }
  }
}

TEST(SimdMatch, ExtremeValues) {
  const std::uint64_t kMax = ~0ull;
  const std::uint64_t lanes[4] = {kMax, 0, kMax - 1, kMax};
  EXPECT_EQ(match_u64(lanes, 4, kMax), 0b1001u);
  EXPECT_EQ(match_u64(lanes, 4, 0), 0b0010u);
  // Values whose 32-bit halves cross-match (low half of one equals high half
  // of another) must not fool the SSE2 pairwise-AND emulation.
  const std::uint64_t tricky[4] = {0x00000001'00000002ull, 0x00000002'00000001ull,
                                   0x00000001'00000001ull, 0x00000002'00000002ull};
  EXPECT_EQ(match_u64(tricky, 4, 0x00000001'00000002ull), 0b0001u);
  EXPECT_EQ(match_u64(tricky, 4, 0x00000001'00000001ull), 0b0100u);
}

TEST(SimdMatch, ValidMaskAndSemantics) {
  // How TagArray::probe consumes the mask: AND with packed valid bits, then
  // countr_zero for the way index.
  const std::uint64_t tags[8] = {3, 3, 3, 7, 3, 7, 3, 3};
  const std::uint64_t valid = 0b01101000;  // ways 3, 5, 6 valid
  const std::uint64_t hits = match_u64(tags, 8, 3) & valid;
  EXPECT_EQ(hits, 0b01000000u);  // ways 3 and 5 hold tag 7; only way 6 hits
  EXPECT_EQ(std::countr_zero(hits), 6);
}

}  // namespace
}  // namespace sttgpu::simd
