#include "sttl2/rewrite_tracker.hpp"

#include <gtest/gtest.h>

namespace sttgpu::sttl2 {
namespace {

const Clock kClock(700e6);

TEST(RewriteTracker, IgnoresFirstWrites) {
  RewriteTracker t(kClock);
  t.record(kNoCycle, 100);
  EXPECT_EQ(t.intervals(), 0u);
}

TEST(RewriteTracker, BucketsByWallTime) {
  RewriteTracker t(kClock);
  // 700 cycles = 1us -> <=10us bucket.
  t.record(0, 700);
  // 70000 cycles = 100us -> <=100us bucket (edge inclusive).
  t.record(0, 70000);
  // 7e6 cycles = 10ms -> overflow (>2.5ms).
  t.record(0, 7'000'000);
  EXPECT_EQ(t.intervals(), 3u);
  const Histogram& h = t.histogram();
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(2), 1u);
  EXPECT_EQ(h.overflow(), 1u);
}

TEST(RewriteTracker, FractionWithin) {
  RewriteTracker t(kClock);
  for (int i = 0; i < 9; ++i) t.record(0, 700);  // 1us each
  t.record(0, 7'000'000);                        // 10ms
  EXPECT_NEAR(t.fraction_within_ns(us_to_ns(10.0)), 0.9, 1e-12);
  EXPECT_NEAR(t.fraction_within_ns(ms_to_ns(2.5)), 0.9, 1e-12);
}

TEST(RewriteTracker, CustomEdgesForHrClaim) {
  RewriteTracker t(kClock, {ms_to_ns(1.0), ms_to_ns(10.0), ms_to_ns(40.0), ms_to_ns(100.0)});
  t.record(0, 700'000);      // 1ms
  t.record(0, 21'000'000);   // 30ms -> <=40ms bucket
  t.record(0, 49'000'000);   // 70ms -> <=100ms bucket
  EXPECT_NEAR(t.fraction_within_ns(ms_to_ns(40.0)), 2.0 / 3.0, 1e-12);
}

TEST(RewriteTracker, OutOfOrderTimestampsIgnored) {
  RewriteTracker t(kClock);
  t.record(100, 50);  // now < previous: dropped
  EXPECT_EQ(t.intervals(), 0u);
}

}  // namespace
}  // namespace sttgpu::sttl2
