#include "sim/executor.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "sim/supervisor.hpp"

namespace sttgpu::sim {
namespace {

std::vector<Job> square_jobs(std::vector<int>& out, std::size_t n) {
  out.assign(n, -1);
  std::vector<Job> jobs;
  for (std::size_t i = 0; i < n; ++i) {
    jobs.push_back(Job{"sq" + std::to_string(i),
                       [&out, i]() { out[i] = static_cast<int>(i * i); }});
  }
  return jobs;
}

TEST(Executor, DefaultJobsIsAtLeastOne) { EXPECT_GE(default_jobs(), 1u); }

TEST(Executor, ResolveJobsAutoAndExplicit) {
  EXPECT_EQ(resolve_jobs(0), default_jobs());
  EXPECT_EQ(resolve_jobs(-3), default_jobs());
  EXPECT_EQ(resolve_jobs(1), 1u);
  EXPECT_EQ(resolve_jobs(7), 7u);
}

TEST(Executor, ResolveJobsClampsAbsurdRequests) {
  // jobs=100000 must not spawn an unbounded pool: it is clamped to
  // max_jobs() (a small multiple of the hardware concurrency, floor 8).
  EXPECT_GE(max_jobs(), 8u);
  EXPECT_GE(max_jobs(), default_jobs());
  EXPECT_EQ(resolve_jobs(100000), max_jobs());
  EXPECT_EQ(resolve_jobs(std::numeric_limits<std::int64_t>::max()), max_jobs());
  // Values at or below the cap pass through untouched.
  EXPECT_EQ(resolve_jobs(static_cast<std::int64_t>(max_jobs())), max_jobs());
  EXPECT_EQ(resolve_jobs(2), 2u);
}

TEST(Executor, EmptyJobListIsANoOp) { run_jobs({}, 4); }

TEST(Executor, ResultsLandInIndexOrderSequential) {
  std::vector<int> out;
  run_jobs(square_jobs(out, 10), 1);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], static_cast<int>(i * i));
}

TEST(Executor, ResultsLandInIndexOrderParallel) {
  std::vector<int> out;
  run_jobs(square_jobs(out, 100), 4);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], static_cast<int>(i * i));
}

TEST(Executor, SequentialModeRunsInline) {
  // jobs=1 must not spawn threads: every job sees the calling thread's id.
  const std::thread::id caller = std::this_thread::get_id();
  bool inline_run = false;
  run_jobs({Job{"probe", [&]() { inline_run = std::this_thread::get_id() == caller; }}}, 1);
  EXPECT_TRUE(inline_run);
}

TEST(Executor, MoreThreadsThanJobsStillRunsEverything) {
  std::vector<int> out;
  run_jobs(square_jobs(out, 3), 16);
  EXPECT_EQ(out, (std::vector<int>{0, 1, 4}));
}

TEST(Executor, ExceptionCarriesJobLabel) {
  std::vector<Job> jobs;
  jobs.push_back(Job{"ok", []() {}});
  jobs.push_back(Job{"C1/bfs", []() { throw SimError("bank exploded"); }});
  try {
    run_jobs(std::move(jobs), 2);
    FAIL() << "expected SimError";
  } catch (const SimError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("C1/bfs"), std::string::npos) << what;
    EXPECT_NE(what.find("bank exploded"), std::string::npos) << what;
  }
}

TEST(Executor, SequentialFailureStopsLaterJobs) {
  bool later_ran = false;
  std::vector<Job> jobs;
  jobs.push_back(Job{"boom", []() { throw SimError("boom"); }});
  jobs.push_back(Job{"later", [&]() { later_ran = true; }});
  EXPECT_THROW(run_jobs(std::move(jobs), 1), SimError);
  EXPECT_FALSE(later_ran);
}

TEST(Executor, ParallelFailureReportsLowestIndex) {
  // Both failures are dispatched before either can set the failed flag
  // (two workers, two jobs), so both land in the error list; the report
  // must pick index 0 deterministically, not completion order.
  std::vector<Job> jobs;
  jobs.push_back(Job{"first", []() {
                       std::this_thread::sleep_for(std::chrono::milliseconds(50));
                       throw SimError("slow failure");
                     }});
  jobs.push_back(Job{"second", []() { throw SimError("fast failure"); }});
  try {
    run_jobs(std::move(jobs), 2);
    FAIL() << "expected SimError";
  } catch (const SimError& e) {
    EXPECT_NE(std::string(e.what()).find("first"), std::string::npos) << e.what();
  }
}

TEST(Executor, AggregatesMultipleFailuresWithCountAndLabels) {
  // All eight jobs rendezvous before any of them throws, so every failure is
  // in flight when the fail-fast flag trips and all eight must be reported:
  // a count, the first five labels in index order, and a tally of the rest.
  constexpr int kJobs = 8;
  std::atomic<int> started{0};
  std::vector<Job> jobs;
  for (int i = 0; i < kJobs; ++i) {
    jobs.push_back(Job{"fail" + std::to_string(i), [&started]() {
                         ++started;
                         while (started.load() < kJobs) std::this_thread::yield();
                         throw SimError("boom");
                       }});
  }
  try {
    run_jobs(std::move(jobs), kJobs);
    FAIL() << "expected SimError";
  } catch (const SimError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("8 jobs failed"), std::string::npos) << what;
    for (int i = 0; i < 5; ++i) {
      EXPECT_NE(what.find("'fail" + std::to_string(i) + "'"), std::string::npos) << what;
    }
    EXPECT_EQ(what.find("'fail5'"), std::string::npos) << what;
    EXPECT_NE(what.find("and 3 more"), std::string::npos) << what;
    EXPECT_NE(what.find("boom"), std::string::npos) << what;
  }
}

TEST(Executor, ParallelRunsAllJobsWhenHealthy) {
  std::atomic<int> count{0};
  std::vector<Job> jobs;
  for (int i = 0; i < 64; ++i) jobs.push_back(Job{"j", [&]() { ++count; }});
  run_jobs(std::move(jobs), 8);
  EXPECT_EQ(count.load(), 64);
}

// --- stress: hundreds of jobs, injected failures, cancellation races ---

TEST(ExecutorStress, HundredsOfJobsLandDeterministically) {
  constexpr std::size_t kJobs = 400;
  std::vector<int> out;
  run_jobs(square_jobs(out, kJobs), 16);
  for (std::size_t i = 0; i < kJobs; ++i) {
    ASSERT_EQ(out[i], static_cast<int>(i * i)) << "slot " << i;
  }
}

TEST(ExecutorStress, InjectedFailuresRetryToCompletion) {
  // Every third job fails on its first two attempts; with retries=2 the
  // whole fleet must converge with exactly the expected attempt counts.
  constexpr std::size_t kJobs = 300;
  std::vector<std::atomic<int>> calls(kJobs);
  std::vector<Job> jobs;
  for (std::size_t i = 0; i < kJobs; ++i) {
    Job j;
    j.label = "s" + std::to_string(i);
    const bool flaky = i % 3 == 0;
    j.supervised = [&calls, i, flaky](const JobControl&) {
      if (flaky && ++calls[i] < 3) throw SimError("injected");
    };
    jobs.push_back(std::move(j));
  }
  SupervisorOptions opts;
  opts.retries = 2;
  opts.retry_backoff_s = 0.0;  // stress throughput, not the backoff clock
  const SupervisedResult r = run_supervised(std::move(jobs), 8, opts);
  EXPECT_TRUE(r.all_ok());
  for (std::size_t i = 0; i < kJobs; ++i) {
    EXPECT_EQ(r.outcomes[i].attempts, i % 3 == 0 ? 3u : 1u) << "job " << i;
  }
}

TEST(ExecutorStress, KeepGoingAggregatesEveryPermanentFailure) {
  // A deterministic subset fails permanently; quarantine must record every
  // single one (complete failure aggregation) while the rest complete.
  constexpr std::size_t kJobs = 250;
  std::vector<Job> jobs;
  for (std::size_t i = 0; i < kJobs; ++i) {
    Job j;
    j.label = "k" + std::to_string(i);
    const bool doomed = i % 10 == 7;
    j.supervised = [doomed](const JobControl&) {
      if (doomed) throw SimError("permanent");
    };
    jobs.push_back(std::move(j));
  }
  SupervisorOptions opts;
  opts.keep_going = true;
  const SupervisedResult r = run_supervised(std::move(jobs), 8, opts);
  std::size_t failed = 0;
  for (std::size_t i = 0; i < kJobs; ++i) {
    const bool doomed = i % 10 == 7;
    EXPECT_EQ(r.outcomes[i].status, doomed ? JobStatus::kFailed : JobStatus::kOk)
        << "job " << i;
    failed += doomed;
  }
  EXPECT_EQ(r.count(JobStatus::kFailed), failed);
  EXPECT_EQ(r.count(JobStatus::kSkipped), 0u);
}

TEST(ExecutorStress, MidRunCancellationStopsTheFleet) {
  // Cancel once a prefix has completed: completed jobs stay OK, nothing
  // deadlocks, and the remainder is cancelled or skipped — never lost.
  constexpr std::size_t kJobs = 200;
  CancelToken cancel;
  std::atomic<std::size_t> done{0};
  std::vector<Job> jobs;
  for (std::size_t i = 0; i < kJobs; ++i) {
    Job j;
    j.label = "c" + std::to_string(i);
    j.supervised = [&cancel, &done](const JobControl& ctl) {
      if (++done == 40) cancel.request(CancelReason::kUser);
      // Give the monitor time to observe and forward the request so the
      // tail of the fleet is reliably cancelled, not raced to completion.
      for (int spin = 0; spin < 20; ++spin) {
        ctl.checkpoint();
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    };
    jobs.push_back(std::move(j));
  }
  SupervisorOptions opts;
  opts.external = &cancel;
  const SupervisedResult r = run_supervised(std::move(jobs), 8, opts);
  EXPECT_TRUE(r.interrupted);
  std::size_t ok = 0, stopped = 0;
  for (const JobOutcome& o : r.outcomes) {
    switch (o.status) {
      case JobStatus::kOk: ++ok; break;
      case JobStatus::kCancelled:
      case JobStatus::kSkipped: ++stopped; break;
      default: FAIL() << "unexpected status for " << o.label;
    }
  }
  EXPECT_GE(ok, 1u);
  EXPECT_GE(stopped, 1u);
  EXPECT_EQ(ok + stopped, kJobs);
}

}  // namespace
}  // namespace sttgpu::sim
